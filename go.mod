module polar

go 1.22
