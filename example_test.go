package polar_test

import (
	"fmt"
	"log"

	"polar"
)

// Example demonstrates the full Fig. 3 pipeline on the paper's running
// People example: taint analysis picks the target, hardening rewrites
// the accesses, and the hardened program behaves identically while
// every allocation carries its own layout.
func Example() {
	src := `
module "doc"

struct %People { fptr vtable; i32 age; i32 height; }

global @in 16

func @main() i64 {
entry:
  %r0 = call @input_len()
  call @input_read(@in, 0, %r0)
  %r1 = alloc %People
  %r2 = load i8, @in
  %r3 = fieldptr %People, %r1, 2
  store i32 %r2, %r3
  %r4 = load i32, %r3
  %r5 = mul %r4, 10
  free %r1
  ret %r5
}
`
	m, err := polar.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	input := []byte{17}

	rep, err := polar.AnalyzeTaint(m, [][]byte{input})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tainted classes:", rep.TaintedClasses())

	h, err := polar.Harden(m, rep.TaintedClasses())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rewrote %d alloc, %d accesses, %d free\n",
		h.RewrittenAllocs, h.RewrittenAccesses, h.RewrittenFrees)

	res, err := polar.RunHardened(h, polar.WithInput(input), polar.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("result:", res.Value)
	fmt.Println("randomized allocations:", res.Runtime.Allocs)
	// Output:
	// tainted classes: [People]
	// rewrote 1 alloc, 1 accesses, 1 free
	// result: 170
	// randomized allocations: 1
}

// ExampleRunHardened_violation shows how an attack symptom surfaces: a
// dangling member access is flagged as a use-after-free violation.
func ExampleRunHardened_violation() {
	src := `
module "uafdoc"
struct %S { i64 x; i64 y; }
func @main() i64 {
entry:
  %r0 = alloc %S
  free %r0
  %r1 = fieldptr %S, %r0, 1
  %r2 = load i64, %r1
  ret %r2
}
`
	m, err := polar.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	h, err := polar.Harden(m, nil)
	if err != nil {
		log.Fatal(err)
	}
	_, err = polar.RunHardened(h, polar.WithSeed(1))
	fmt.Println(err)
	// Output:
	// @main.entry: polar: use-after-free detected at 0x40000000 (class S)
}
