package polar

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"polar/internal/telemetry"
)

// TestTelemetryEndToEnd drives the quickstart program through the full
// hardened pipeline with telemetry attached and pins the two acceptance
// contracts: the metrics snapshot is deterministic (byte-identical JSON
// across same-seed runs) and carries counters plus at least two
// populated histograms, and the trace output is a valid Chrome
// trace-event JSON array covering the pipeline phases.
func TestTelemetryEndToEnd(t *testing.T) {
	src, err := os.ReadFile("examples/quickstart/quickstart.ir")
	if err != nil {
		t.Fatal(err)
	}

	run := func() ([]byte, string) {
		t.Helper()
		m, err := Parse(string(src))
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		var traceBuf bytes.Buffer
		tr := NewTracer(&traceBuf)
		tel := NewTelemetry().WithTracer(tr)
		h, err := HardenTraced(m, nil, tel)
		if err != nil {
			t.Fatalf("harden: %v", err)
		}
		res, err := RunHardened(h, WithSeed(42), WithTelemetry(tel))
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if res.Value == 0 {
			t.Fatal("quickstart returned 0")
		}
		data, err := tel.Registry.Snapshot().EncodeJSON()
		if err != nil {
			t.Fatalf("encode snapshot: %v", err)
		}
		if err := tr.Close(); err != nil {
			t.Fatalf("close tracer: %v", err)
		}
		return data, traceBuf.String()
	}

	snap1, trace := run()
	snap2, _ := run()
	if !bytes.Equal(snap1, snap2) {
		t.Fatalf("same-seed snapshots differ:\n%s\nvs\n%s", snap1, snap2)
	}

	s, err := telemetry.DecodeSnapshot(snap1)
	if err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	for _, c := range []string{"event.alloc", "event.layout-gen", "core.allocs", "vm.instructions"} {
		if s.Counters[c] == 0 {
			t.Fatalf("counter %q missing or zero in snapshot:\n%s", c, snap1)
		}
	}
	populated := 0
	for name, h := range s.Histograms {
		if h.Count > 0 {
			populated++
			continue
		}
		t.Logf("histogram %q empty", name)
	}
	if populated < 2 {
		t.Fatalf("%d populated histograms, want >= 2:\n%s", populated, snap1)
	}
	for _, name := range []string{telemetry.MetricLayoutEntropy, telemetry.MetricHeapAllocSize} {
		if s.Histograms[name].Count == 0 {
			t.Fatalf("histogram %q not populated:\n%s", name, snap1)
		}
	}

	var events []map[string]any
	if err := json.Unmarshal([]byte(trace), &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v\n%s", err, trace)
	}
	phases := map[string]bool{}
	for _, e := range events {
		for _, field := range []string{"name", "cat", "ph", "ts", "pid", "tid"} {
			if _, ok := e[field]; !ok {
				t.Fatalf("trace event %v missing field %q", e, field)
			}
		}
		if name, ok := e["name"].(string); ok {
			phases[name] = true
		}
	}
	for _, want := range []string{"cie", "instrument", "run"} {
		if !phases[want] {
			t.Fatalf("trace missing %q span; have %v", want, phases)
		}
	}
}
