// Package polar is the public API of the POLaR reproduction: a
// per-allocation object layout randomization toolchain (DSN 2019) over
// a miniature typed IR and virtual machine.
//
// The pipeline mirrors the paper's Fig. 3:
//
//	m, _ := polar.Parse(src)                // or build with the ir.Builder
//	rep, _ := polar.AnalyzeTaint(m, corpus) // TaintClass: pick targets
//	h, _ := polar.Harden(m, rep.TaintedClasses()) // instrument + CIE
//	res, _ := polar.RunHardened(h, input, polar.WithSeed(42))
//
// Harden clones and rewrites the module so allocations, member
// accesses, frees and object copies of the target classes go through
// the POLaR runtime, which gives every allocation an independently
// randomized in-object layout, plants booby-trap dummies around
// function pointers, and flags use-after-free, double-free and
// type-confused accesses.
package polar

import (
	"fmt"
	"io"
	"os"

	"polar/internal/analysis"
	"polar/internal/classinfo"
	"polar/internal/core"
	"polar/internal/fuzz"
	"polar/internal/instrument"
	"polar/internal/ir"
	"polar/internal/layout"
	"polar/internal/policy"
	"polar/internal/taint"
	"polar/internal/telemetry"
	"polar/internal/telemetry/exectrace"
	"polar/internal/telemetry/flight"
	"polar/internal/telemetry/profile"
	"polar/internal/vm"
)

// Module is a program in the POLaR IR.
type Module = ir.Module

// TaintReport is the TaintClass verdict for a program.
type TaintReport = taint.Report

// RuntimeStats are the POLaR runtime counters (Table III's columns).
type RuntimeStats = core.Stats

// Violation is the error produced when the runtime detects an attack
// symptom under the abort policy.
type Violation = core.Violation

// ViolationRecord is the structured record kept for every detection
// (under both policies); see Result.Violations.
type ViolationRecord = core.ViolationRecord

// ViolationLog bundles the detection records with their truncation
// state (the structured log is capped; the counters are not).
type ViolationLog = core.RecordSet

// Telemetry is the unified observability layer: a typed event bus, a
// metrics registry and an optional pipeline tracer. Create one with
// NewTelemetry, pass it via WithTelemetry, and snapshot its Registry
// after the run.
type Telemetry = telemetry.Telemetry

// MetricsSnapshot is a point-in-time copy of a telemetry registry.
type MetricsSnapshot = telemetry.Snapshot

// NewTelemetry returns an enabled observability layer whose event bus
// feeds per-kind event counters in the registry.
func NewTelemetry() *Telemetry { return telemetry.New() }

// Tracer emits Chrome trace-event–format JSON (chrome://tracing).
type Tracer = telemetry.Tracer

// TraceSpan is an open phase on a Tracer's timeline.
type TraceSpan = telemetry.Span

// NewTracer returns a tracer writing trace-event JSON to w; attach it
// with Telemetry.WithTracer and Close it when the pipeline is done.
func NewTracer(w io.Writer) *Tracer { return telemetry.NewTracer(w) }

// SiteProfiler accumulates the VM-level hot-site profile: interpreted
// cycles, member resolutions and metadata-table probes attributed to IR
// instruction sites ("@fn.block"). Create one with NewSiteProfiler,
// attach it via WithProfiler, then render Report(n) or WritePprof.
type SiteProfiler = profile.SiteProfiler

// NewSiteProfiler returns an empty hot-site profiler.
func NewSiteProfiler() *SiteProfiler { return profile.NewSiteProfiler() }

// Engine selects the VM execution strategy: the lowered bytecode engine
// (default, fast) or the tree-walking reference interpreter. The two
// are semantically bit-identical — same results, stats, outputs and
// violation records — which the differential test suite enforces; the
// legacy engine stays selectable so the evaluation can ablate engine
// choice (polarun/polarbench -engine=legacy).
type Engine = vm.Engine

// Engine values.
const (
	EngineBytecode = vm.EngineBytecode
	EngineLegacy   = vm.EngineLegacy
)

// ParseEngine parses an -engine flag value ("bytecode" or "legacy").
func ParseEngine(s string) (Engine, error) { return vm.ParseEngine(s) }

// SetDefaultEngine sets the process-wide engine used by runs that do
// not pass WithEngine (what the CLIs' -engine flag calls).
func SetDefaultEngine(e Engine) { vm.SetDefaultEngine(e) }

// PGOProfile is a hot-site profile exported from a prior run, used at
// compile time to rank fusion candidates by real dynamic weight (the
// CLIs' -pgo flag reads one from disk).
type PGOProfile = profile.PGO

// ReadPGOFile loads a JSON profile written by WritePGOFile.
func ReadPGOFile(path string) (*PGOProfile, error) { return profile.ReadPGOFile(path) }

// WritePGOFile exports a profiler's accumulated hot-site weights as a
// deterministic JSON profile suitable for -pgo.
func WritePGOFile(path string, p *SiteProfiler) error {
	return profile.WritePGOFile(path, p.ExportPGO())
}

// SetDefaultPGO installs the process-wide compile options — a fusion
// profile and a top-K bound — used by every subsequent compilation that
// does not pass explicit options (what the CLIs' -pgo/-pgo-topk flags
// call). A nil profile with topK 0 restores the static default.
// IC-seeding facts installed by SetDefaultFacts are preserved.
func SetDefaultPGO(p *PGOProfile, topK int) {
	opts := vm.DefaultPGO()
	opts.Profile, opts.FusionTopK = p, topK
	vm.SetDefaultPGO(opts)
}

// CompileFacts is the static olr_getptr site classification consumed at
// compile time for inline-cache seeding (DESIGN.md §14): sites proven
// polymorphic lose their IC slot, monomorphic sites proven to address
// one runs-once object share a single slot. Produced by polarlint
// -facts, loaded with ReadFactsFile.
type CompileFacts = vm.StaticFacts

// ReadFactsFile loads a polarlint -facts artifact and converts it into
// the compiler-facing seeding form.
func ReadFactsFile(path string) (*CompileFacts, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sf, err := analysis.DecodeSiteFacts(data)
	if err != nil {
		return nil, err
	}
	return sf.CompileFacts(), nil
}

// SetDefaultFacts merges static IC-seeding facts into the process-wide
// compile options used by compilations that do not pass explicit
// options (what the CLIs' -facts flag calls). Nil clears the facts;
// PGO options installed by SetDefaultPGO are preserved.
func SetDefaultFacts(f *CompileFacts) {
	opts := vm.DefaultPGO()
	opts.Facts = f
	vm.SetDefaultPGO(opts)
}

// Parse reads the textual IR form (see internal/ir: Print/Parse).
func Parse(src string) (*Module, error) { return ir.Parse(src) }

// Format renders a module in the textual IR form.
func Format(m *Module) string { return ir.Print(m) }

// Validate checks module well-formedness.
func Validate(m *Module) error { return ir.Validate(m) }

// Hardened is a POLaR-instrumented program: the rewritten module plus
// the embedded class information (CIE output).
type Hardened struct {
	Module *Module
	table  *classinfo.Table

	// perClass holds taint-tuned layout overrides (see TuneFromTaint).
	perClass map[uint64]layout.Config

	// RewrittenAllocs etc. count what the pass changed.
	RewrittenAllocs    int
	RewrittenAccesses  int
	RewrittenFrees     int
	RewrittenCopies    int
	SkippedRawAccesses int
}

// TuneFromTaint derives per-class layout configurations from a
// TaintClass report — the §IV.B.1 feedback loop ("TaintClass identifies
// exactly which object members ... are tainted. This information is
// used later for optimizing the efficacy and dummy variable insertion
// of POLaR"):
//
//   - classes whose *pointer* members are input-tainted are the juicy
//     hijack targets: they get booby traps plus an extra dummy member
//     (more entropy where it matters);
//   - classes whose life cycle is input-controlled (alloc/free under
//     tainted branches — the UAF grooming surface) keep traps and the
//     default dummies;
//   - classes tainted only in plain data members get the base
//     configuration with one fewer dummy (cheaper, still randomized).
//
// The overrides take effect in the next RunHardened.
func (h *Hardened) TuneFromTaint(rep *TaintReport) {
	base := layout.DefaultConfig()
	h.perClass = make(map[uint64]layout.Config)
	for _, cls := range h.table.Classes() {
		obj, ok := rep.Object(cls.Name())
		if !ok || !obj.Tainted() {
			continue
		}
		cfg := base
		pointerTainted := false
		for _, ft := range obj.SortedFields() {
			if ft.IsPointer {
				pointerTainted = true
			}
		}
		switch {
		case pointerTainted:
			cfg.BoobyTraps = true
			cfg.MinDummies = base.MinDummies + 1
			cfg.MaxDummies = base.MaxDummies + 1
		case obj.AllocTainted || obj.FreeTainted:
			// keep base: traps + default dummies
		default:
			if cfg.MinDummies > 0 {
				cfg.MinDummies--
			}
			if cfg.MaxDummies > cfg.MinDummies+1 {
				cfg.MaxDummies--
			}
		}
		h.perClass[cls.Hash] = cfg
	}
}

// HardenWithPolicy instruments exactly the classes a policy file names
// and applies its per-class tuning — the polarc -policy path of the
// taintclass → polarc pipeline.
func HardenWithPolicy(m *Module, p *policy.Policy) (*Hardened, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	h, err := Harden(m, p.Targets)
	if err != nil {
		return nil, err
	}
	h.perClass = make(map[uint64]layout.Config, len(p.Classes))
	for name, cp := range p.Classes {
		cls, ok := h.table.ByName(name)
		if !ok {
			// The class may be annotated norandom; the table filtered it.
			continue
		}
		h.perClass[cls.Hash] = cp.LayoutConfig()
	}
	return h, nil
}

// PolicyFromTaint builds the serializable policy artifact from a
// TaintClass report (what taintclass -o writes).
func PolicyFromTaint(rep *TaintReport, generator string) *policy.Policy {
	return policy.FromTaintReport(rep, generator)
}

// Policy re-exports the policy-file type for cmd use.
type Policy = policy.Policy

// LoadPolicy reads a policy file.
func LoadPolicy(path string) (*Policy, error) { return policy.Load(path) }

// PerClassConfig exposes the tuned configuration for one class (tests,
// diagnostics).
func (h *Hardened) PerClassConfig(className string) (layout.Config, bool) {
	cls, ok := h.table.ByName(className)
	if !ok || h.perClass == nil {
		return layout.Config{}, false
	}
	cfg, ok := h.perClass[cls.Hash]
	return cfg, ok
}

// Harden instruments accesses to the target classes (nil = all classes,
// as in the paper's whole-program compatibility experiment §V.A;
// normally pass a TaintClass report's TaintedClasses()).
func Harden(m *Module, targets []string) (*Hardened, error) {
	return HardenTraced(m, targets, nil)
}

// HardenTraced is Harden with pipeline tracing: when t carries a
// tracer, the CIE and rewrite phases appear as spans on its timeline.
func HardenTraced(m *Module, targets []string, t *Telemetry) (*Hardened, error) {
	var tr *telemetry.Tracer
	if t != nil {
		tr = t.Tracer
	}
	res, err := instrument.ApplyTraced(m, targets, tr)
	if err != nil {
		return nil, err
	}
	return &Hardened{
		Module:             res.Module,
		table:              res.Table,
		RewrittenAllocs:    res.Rewrites.Allocs,
		RewrittenAccesses:  res.Rewrites.FieldPtrs,
		RewrittenFrees:     res.Rewrites.Frees,
		RewrittenCopies:    res.Rewrites.Memcpys,
		SkippedRawAccesses: res.Rewrites.SkippedRawAccess,
	}, nil
}

// options collects run configuration.
type options struct {
	seed          int64
	input         []byte
	args          []int64
	fuel          uint64
	warnOnly      bool
	noUAF         bool
	noRerand      bool
	cacheSize     int
	resolveMode   core.LayoutMode
	rekeyEvery    int
	dummiesMin    int
	dummiesMax    int
	setDummies    bool
	metaIntegrity bool
	traceW        io.Writer
	traceMax      int
	policy        *policy.Policy
	tel           *telemetry.Telemetry
	prof          *profile.SiteProfiler
	flight        *flight.Recorder
	xtrace        *exectrace.Writer
	runtimeObs    func(LiveRuntime)
	engine        Engine
	engineSet     bool
}

// Option configures Run and RunHardened.
type Option func(*options)

// WithSeed sets the randomization seed (each real execution would use
// fresh entropy; experiments pin it).
func WithSeed(seed int64) Option { return func(o *options) { o.seed = seed } }

// WithInput provides the untrusted program input.
func WithInput(b []byte) Option { return func(o *options) { o.input = b } }

// WithArgs passes integer arguments to @main.
func WithArgs(args ...int64) Option { return func(o *options) { o.args = args } }

// WithFuel bounds execution length.
func WithFuel(n uint64) Option { return func(o *options) { o.fuel = n } }

// WithWarnPolicy counts violations instead of aborting on them.
func WithWarnPolicy() Option { return func(o *options) { o.warnOnly = true } }

// WithoutUAFDetection disables ghost-metadata use-after-free checks.
func WithoutUAFDetection() Option { return func(o *options) { o.noUAF = true } }

// WithoutCopyRerandomization makes object copies share the source
// layout (the cheaper §IV.A.2 mode).
func WithoutCopyRerandomization() Option { return func(o *options) { o.noRerand = true } }

// WithCacheSize sets the offset-lookup cache capacity (-1 disables).
// In stateless mode the same knob sizes the derivation memo.
func WithCacheSize(n int) Option { return func(o *options) { o.cacheSize = n } }

// LayoutMode selects the layout-resolution strategy: LayoutModeMetadata
// (the paper's per-object metadata table, the default) or
// LayoutModeStateless (SPAM-style keyed derivation from the base
// address — zero metadata bytes, no UAF detection). Parse textual flag
// values with ParseLayoutMode.
type LayoutMode = core.LayoutMode

// Layout-resolution strategies (see LayoutMode).
const (
	LayoutModeMetadata  = core.LayoutModeMetadata
	LayoutModeStateless = core.LayoutModeStateless
)

// ParseLayoutMode maps flag spellings ("metadata", "table", "stateless",
// "") to a LayoutMode.
func ParseLayoutMode(s string) (LayoutMode, error) { return core.ParseLayoutMode(s) }

// WithLayoutMode selects the layout-resolution strategy for the run.
// Per-class overrides (norandom/pinned classes) apply in every mode.
func WithLayoutMode(m LayoutMode) Option { return func(o *options) { o.resolveMode = m } }

// WithRekeyEvery makes stateless mode advance its derivation epoch —
// re-randomizing every live object's layout in place — after every n
// instrumented frees (0, the default, disables rekeying). Ignored in
// metadata mode, which re-randomizes per object on copy instead.
func WithRekeyEvery(n int) Option { return func(o *options) { o.rekeyEvery = n } }

// WithDummies overrides the dummy-member count range.
func WithDummies(min, max int) Option {
	return func(o *options) { o.dummiesMin, o.dummiesMax, o.setDummies = min, max, true }
}

// WithMetadataIntegrity seals metadata records with a keyed MAC that is
// verified on lookup (the §VI.A hardening against metadata corruption).
func WithMetadataIntegrity() Option { return func(o *options) { o.metaIntegrity = true } }

// WithTrace streams the first maxLines executed instructions to w
// (0 = unlimited) — a debugging aid; see polarun -trace.
func WithTrace(w io.Writer, maxLines int) Option {
	return func(o *options) { o.traceW, o.traceMax = w, maxLines }
}

// WithPolicy applies a policy file's per-class tuning at run time
// (polarun -policy): the textual hardened-module form does not carry
// tuning, so the runtime re-applies it from the artifact.
func WithPolicy(p *Policy) Option { return func(o *options) { o.policy = p } }

// WithTelemetry attaches an observability layer to the run: olr_* and
// VM events go to its bus, metrics to its registry, and — when a tracer
// is attached — the run appears as a span on its timeline. Disabled
// (nil, the default) telemetry costs one branch per emission point.
func WithTelemetry(t *Telemetry) Option { return func(o *options) { o.tel = t } }

// FlightRecorder is the security flight recorder: a fixed-size ring of
// recent runtime events that the POLaR runtime snapshots into a
// deterministic forensic dump on every detected violation (and on
// demand via CaptureFinal). Create one with NewFlightRecorder and pass
// it via WithFlightRecorder alongside WithTelemetry.
type FlightRecorder = flight.Recorder

// ForensicDump is one captured flight-recorder snapshot.
type ForensicDump = flight.Dump

// NewFlightRecorder returns a flight recorder retaining the last
// ringCap events (<= 0 selects the default of 256).
func NewFlightRecorder(ringCap int) *FlightRecorder { return flight.NewRecorder(ringCap) }

// WithFlightRecorder attaches a flight recorder to the run. Requires
// WithTelemetry (the recorder's event window is fed from the telemetry
// bus); without it the recorder sees no events and captures nothing.
func WithFlightRecorder(r *FlightRecorder) Option { return func(o *options) { o.flight = r } }

// ExecTraceWriter streams the deterministic execution trace (schema
// polar-exectrace/v1): block entries, calls, every olr_* operation
// with its resolved offset, fuel checkpoints and violations, in
// program order with no wall-clock state — the same module under the
// same seed produces a byte-identical trace on either engine. Create
// one per run with NewExecTrace, pass it via WithExecTrace, and Close
// it after the run to write the footer. Inspect, aggregate and diff
// traces with cmd/polartrace.
type ExecTraceWriter = exectrace.Writer

// NewExecTrace returns an execution-trace writer streaming to w. The
// writer buffers internally; Close flushes and appends the footer but
// does not close w.
func NewExecTrace(w io.Writer) *ExecTraceWriter { return exectrace.NewWriter(w) }

// NewExecTraceLimit is NewExecTrace with a record cap: events past
// maxRecords are dropped (and counted), while the string table and
// footer stay intact so the truncated trace still parses.
func NewExecTraceLimit(w io.Writer, maxRecords uint64) *ExecTraceWriter {
	return exectrace.NewWriterLimit(w, maxRecords)
}

// WithExecTrace attaches an execution-trace writer to the run. A run
// with a trace but no WithTelemetry gets a private telemetry layer, so
// the trace still carries the bus-fed records (fuel checkpoints, raw
// VM allocations, violations). Writers are single-owner: give each
// concurrent run its own.
func WithExecTrace(w *ExecTraceWriter) Option { return func(o *options) { o.xtrace = w } }

// WithProfiler attaches a hot-site profiler to the run: the VM charges
// interpreted cycles to each basic block it enters, and the runtime
// attributes member resolutions and metadata probes to the olr_* call
// sites. Sharing one profiler across runs aggregates their profiles.
func WithProfiler(p *SiteProfiler) Option { return func(o *options) { o.prof = p } }

// LiveRuntime is the live view of the POLaR runtime attached to a run
// in flight. It structurally matches the introspection endpoint's
// violation source, so an observer callback can hand it straight to a
// live HTTP surface.
type LiveRuntime interface {
	// ViolationLog returns the structured violation log with its
	// truncation state, as of the moment of the call.
	ViolationLog() ViolationLog
}

// WithEngine pins the execution engine for this run, overriding the
// process default (SetDefaultEngine). Runs with WithTrace attached fall
// back to the tree-walker regardless — instruction tracing is a
// reference-engine facility.
func WithEngine(e Engine) Option {
	return func(o *options) { o.engine, o.engineSet = e, true }
}

// WithRuntimeObserver registers fn to receive the live runtime just
// before a hardened run begins executing. The runtime outlives the
// call — an introspection endpoint may keep querying it while (and
// after) the program runs. Ignored on baseline runs, which have no
// POLaR runtime.
func WithRuntimeObserver(fn func(LiveRuntime)) Option {
	return func(o *options) { o.runtimeObs = fn }
}

// Result is the outcome of one execution.
type Result struct {
	// Value is @main's return value.
	Value int64
	// Output is what the program printed.
	Output []byte
	// Runtime holds the POLaR counters (zero-valued for baseline runs).
	Runtime RuntimeStats
	// VM holds the interpreter counters.
	VM vm.Stats
	// Perf holds the bytecode engine's performance-path counters
	// (inline layout-cache hits/misses, fused dispatches). Zero-valued
	// on tree-walker runs except for the inline-cache counters, which
	// both engines share.
	Perf vm.Perf
	// Violations are the structured detection records, in order
	// (populated on hardened runs; capped — see core.ViolationRecords).
	Violations []ViolationRecord
	// ViolationsTruncated reports that the record log filled and
	// Violations is a prefix of the detection history;
	// ViolationsDropped counts the records lost past the cap. The
	// per-kind counters in Runtime.Violations still include them.
	ViolationsTruncated bool
	ViolationsDropped   uint64
}

// Prepared is the compiled, ready-to-run form of a program: the module
// is cloned and validated once, globals are laid out once, and (for
// hardened programs) the class table is resolved once. Each Run stamps
// out a cheap per-run instance, so repeated executions pay only for
// the run itself.
//
// A Prepared is safe for concurrent use: any number of goroutines may
// call Run simultaneously, each getting an isolated instance. Hardened
// instances share one layout-deduplication table, so identical layouts
// regenerated across runs intern to a single record.
type Prepared struct {
	prog     *vm.Program
	table    *classinfo.Table
	perClass map[uint64]layout.Config
	interner *core.LayoutInterner
	hardened bool
}

// Prepare compiles a baseline (unhardened) module for repeated runs.
func Prepare(m *Module) (*Prepared, error) {
	prog, err := vm.Compile(ir.Clone(m))
	if err != nil {
		return nil, err
	}
	return &Prepared{prog: prog}, nil
}

// PrepareHardened compiles a hardened program for repeated runs under
// the POLaR runtime.
func PrepareHardened(h *Hardened) (*Prepared, error) {
	mod := ir.Clone(h.Module)
	prog, err := vm.Compile(mod)
	if err != nil {
		return nil, err
	}
	// The hardened module carries its own CIE table; rebuild against the
	// clone's struct identities. A module that went through text form
	// (polarc output) loses the embedded table, but class hashes are
	// deterministic functions of the declarations, so recomputing the
	// CIE over every struct restores it.
	table := classinfo.TableFromModuleClassTable(mod)
	if table.Len() == 0 {
		table, err = classinfo.FromModule(mod, nil)
		if err != nil {
			return nil, fmt.Errorf("polar: rebuilding class table: %w", err)
		}
	}
	return &Prepared{
		prog:     prog,
		table:    table,
		perClass: h.perClass,
		interner: core.NewLayoutInterner(),
		hardened: true,
	}, nil
}

// LoweredFuncStats summarizes the lowered bytecode of one function:
// dispatch counts vs. source instructions, fused runs and micro-ops,
// inline-cache sites and the operand-file width after register
// allocation (polarstat's -lowered section).
type LoweredFuncStats = vm.LoweredFuncStats

// LoweredStats reports per-function lowering statistics of the
// compiled program.
func (p *Prepared) LoweredStats() []LoweredFuncStats { return p.prog.LoweredStats() }

// Fingerprint digests the complete lowered instruction stream. Equal
// fingerprints mean identical bytecode; the PGO-determinism gate
// asserts that recompiling under the same profile agrees here.
func (p *Prepared) Fingerprint() uint64 { return p.prog.Fingerprint() }

// Run executes the prepared program once on a fresh instance.
func (p *Prepared) Run(opts ...Option) (*Result, error) {
	o := gather(opts)
	v, err := p.prog.NewInstance(vmOptions(o)...)
	if err != nil {
		return nil, err
	}
	if !p.hardened {
		val, err := runSpan(v, o)
		if err != nil {
			return nil, err
		}
		publishVM(v, o)
		return &Result{Value: val, Output: v.Output(), VM: v.Stats, Perf: v.Perf}, nil
	}
	cfg := runtimeConfig(o, p.table, p.perClass)
	cfg.Interner = p.interner
	rt := core.New(p.table, cfg)
	rt.Attach(v)
	if o.runtimeObs != nil {
		o.runtimeObs(rt)
	}
	val, err := runSpan(v, o)
	if err != nil {
		return nil, err
	}
	publishVM(v, o)
	vlog := rt.ViolationLog()
	return &Result{
		Value: val, Output: v.Output(), Runtime: rt.Stats(),
		VM: v.Stats, Perf: v.Perf, Violations: vlog.Records,
		ViolationsTruncated: vlog.Truncated, ViolationsDropped: vlog.Dropped,
	}, nil
}

// Run executes an unhardened module.
func Run(m *Module, opts ...Option) (*Result, error) {
	p, err := Prepare(m)
	if err != nil {
		return nil, err
	}
	return p.Run(opts...)
}

// runSpan executes @main, wrapped in a "run" pipeline span when a
// tracer is attached.
func runSpan(v *vm.VM, o *options) (int64, error) {
	if o.tel != nil && o.tel.Tracer != nil {
		sp := o.tel.Tracer.Begin("run", "pipeline")
		defer sp.End()
	}
	return v.Run(o.args...)
}

// publishVM snapshots interpreter and allocator counters into the
// attached registry (no-op without telemetry).
func publishVM(v *vm.VM, o *options) {
	if o.tel == nil {
		return
	}
	v.Stats.Publish(o.tel.Registry)
	v.Perf.Publish(o.tel.Registry)
	v.Heap.Stats().Publish(o.tel.Registry)
}

// RunHardened executes a hardened program under the POLaR runtime.
// For a single run it prepares and executes in one step; callers
// running the same program repeatedly should PrepareHardened once and
// Run many times.
func RunHardened(h *Hardened, opts ...Option) (*Result, error) {
	p, err := PrepareHardened(h)
	if err != nil {
		return nil, err
	}
	return p.Run(opts...)
}

// runtimeConfig assembles the core runtime configuration from the run
// options, the resolved class table and the hardened program's
// per-class tuning.
func runtimeConfig(o *options, table *classinfo.Table, perClass map[uint64]layout.Config) core.Config {
	cfg := core.DefaultConfig(o.seed)
	cfg.Telemetry = o.tel
	cfg.Profiler = o.prof
	cfg.Flight = o.flight
	cfg.ExecTrace = o.xtrace
	if o.warnOnly {
		cfg.Policy = core.PolicyWarn
	}
	if o.noUAF {
		cfg.DetectUAF = false
	}
	if o.noRerand {
		cfg.RerandomizeOnCopy = false
	}
	if o.cacheSize != 0 {
		cfg.CacheSize = o.cacheSize
	}
	cfg.LayoutMode = o.resolveMode
	if o.rekeyEvery > 0 {
		cfg.RekeyEvery = o.rekeyEvery
	}
	if o.setDummies {
		cfg.Layout.MinDummies, cfg.Layout.MaxDummies = o.dummiesMin, o.dummiesMax
	}
	if o.metaIntegrity {
		cfg.MetadataIntegrity = true
	}
	if len(perClass) > 0 {
		cfg.PerClass = perClass
	}
	if o.policy != nil {
		// Merge into a copy: cfg.PerClass may alias the prepared
		// program's shared tuning map, and concurrent runs must not
		// write into it.
		merged := make(map[uint64]layout.Config, len(cfg.PerClass)+len(o.policy.Classes))
		for hash, lc := range cfg.PerClass {
			merged[hash] = lc
		}
		for name, cp := range o.policy.Classes {
			if cls, ok := table.ByName(name); ok {
				merged[cls.Hash] = cp.LayoutConfig()
			}
		}
		cfg.PerClass = merged
	}
	return cfg
}

func gather(opts []Option) *options {
	o := &options{seed: 1}
	for _, f := range opts {
		f(o)
	}
	if o.xtrace != nil && o.tel == nil {
		// The trace's fuel-checkpoint, raw-allocation and violation
		// records ride the telemetry bus; a traced run without an
		// explicit observability layer gets a private one so the trace
		// is complete either way.
		o.tel = telemetry.New()
	}
	return o
}

func vmOptions(o *options) []vm.Option {
	vmOpts := []vm.Option{vm.WithInput(o.input)}
	if o.fuel > 0 {
		vmOpts = append(vmOpts, vm.WithFuel(o.fuel))
	}
	if o.traceW != nil {
		vmOpts = append(vmOpts, vm.WithTrace(o.traceW, o.traceMax))
	}
	if o.tel != nil {
		vmOpts = append(vmOpts, vm.WithTelemetry(o.tel))
	}
	if o.prof != nil {
		vmOpts = append(vmOpts, vm.WithProfiler(o.prof))
	}
	if o.xtrace != nil {
		vmOpts = append(vmOpts, vm.WithExecTrace(o.xtrace))
	}
	if o.engineSet {
		vmOpts = append(vmOpts, vm.WithEngine(o.engine))
	}
	return vmOpts
}

// AnalyzeTaint runs the TaintClass analysis (DFSan-analogue data-flow
// tracking) over the corpus and returns the merged object report.
func AnalyzeTaint(m *Module, corpus [][]byte) (*TaintReport, error) {
	return taint.Analyze(m, corpus, taint.RunOptions{IgnoreRunErrors: true})
}

// FuzzResult summarizes a coverage-guided campaign.
type FuzzResult struct {
	Corpus   [][]byte
	Crashers [][]byte
	Execs    int
	Edges    int
}

// FuzzForCoverage runs the libFuzzer-analogue campaign used by
// TaintClass to widen taint coverage (§IV.B.2).
func FuzzForCoverage(m *Module, seeds [][]byte, iterations int, seed int64) (*FuzzResult, error) {
	res, err := fuzz.Run(m, seeds, fuzz.Config{
		Iterations: iterations, MaxInputLen: 4096, Seed: seed, Fuel: 30_000_000,
	})
	if err != nil {
		return nil, err
	}
	return &FuzzResult{Corpus: res.Corpus, Crashers: res.Crashers, Execs: res.Execs, Edges: res.Edges}, nil
}

// SelectAndHarden is the full Fig. 3 pipeline: fuzz for coverage, run
// TaintClass, harden exactly the input-dependent classes.
func SelectAndHarden(m *Module, seeds [][]byte, fuzzIters int, seed int64) (*Hardened, *TaintReport, error) {
	corpus := seeds
	if fuzzIters > 0 {
		fr, err := FuzzForCoverage(m, seeds, fuzzIters, seed)
		if err != nil {
			return nil, nil, err
		}
		corpus = append(corpus, fr.Corpus...)
		corpus = append(corpus, fr.Crashers...)
	}
	rep, err := AnalyzeTaint(m, corpus)
	if err != nil {
		return nil, nil, err
	}
	h, err := Harden(m, rep.TaintedClasses())
	if err != nil {
		return nil, nil, err
	}
	h.TuneFromTaint(rep)
	return h, rep, nil
}
