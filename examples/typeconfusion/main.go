// Typeconfusion: the paper's §III.A.1 scenario. A live Attacker object
// (eight user-controlled 32-bit fields) is misinterpreted as a Victim
// whose third member is a function pointer. The attacker places the
// payload in the fields that overlap the pointer's byte offset.
package main

import (
	"fmt"
	"log"

	"polar/internal/exploit"
)

func main() {
	const trials = 400
	fmt.Printf("type-confusion attack, %d trials per defense\n", trials)
	fmt.Println("attacker goal: ((Victim*)attackerObj)->handler reads the planted payload")
	fmt.Println()
	for _, def := range exploit.AllDefenses() {
		res, err := exploit.RunTypeConfusion(def, trials, 4321)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("  " + res.String())
	}
	fmt.Println()
	fmt.Println("reading the results:")
	fmt.Println("  none        the 32-bit field pair at byte offset 16 overlaps the pointer:")
	fmt.Println("              deterministic hijack, one distinct outcome across all trials")
	fmt.Println("  olr-public  the attacker recomputes the overlap from the binary and wins")
	fmt.Println("  polar       the metadata's class hash exposes the confused access, and the")
	fmt.Println("              value actually read varies per allocation (distinct > 1):")
	fmt.Println("              the determinism the exploit depends on is gone (§III.B.2)")
	fmt.Println()

	over, err := exploit.RunOverflow(exploit.DefensePOLaR, trials, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bonus — linear heap overflow against POLaR (booby traps, §IV.A.3):")
	fmt.Println("  " + over.String())
	fmt.Println("  the contiguous write tramples the canary dummies planted in front of the")
	fmt.Println("  function pointer, so the corruption is caught at the next free")
}
