// Fuzzing: shows why TaintClass couples DFSan-style tracking with
// coverage-guided input generation (§IV.B.2). A single canonical input
// leaves whole chunk handlers of the mini-JPEG parser unexecuted; the
// fuzzer's corpus lights them up, and the taint report grows to the
// full Table I inventory.
package main

import (
	"fmt"
	"log"

	"polar"
	"polar/internal/workload"
)

func main() {
	jpeg := workload.LibJPEG()
	fmt.Printf("target: %s\n\n", jpeg.Name)

	// A deliberately minimal seed: SOI + EOI only. No frame header, no
	// Huffman tables, no scan — most handlers never run.
	seed := []byte{0xFF, 0xD8, 0xFF, 0xD9}
	rep, err := polar.AnalyzeTaint(jpeg.Module, [][]byte{seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("taint analysis with the minimal seed only: %d tainted types %v\n",
		rep.Count(), rep.TaintedClasses())

	// Coverage-guided fuzzing from the same seed.
	for _, iters := range []int{200, 1000, 4000} {
		fr, err := polar.FuzzForCoverage(jpeg.Module, [][]byte{seed, jpeg.Input}, iters, 5)
		if err != nil {
			log.Fatal(err)
		}
		corpus := append(fr.Corpus, fr.Crashers...)
		rep, err := polar.AnalyzeTaint(jpeg.Module, corpus)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("after %5d fuzz execs (%3d edges, corpus %2d): %d tainted types %v\n",
			fr.Execs, fr.Edges, len(corpus), rep.Count(), rep.TaintedClasses())
	}

	fmt.Println()
	fmt.Printf("paper Table I reports %d tainted objects for libjpeg-turbo\n", jpeg.PaperTaintedCount)
	fmt.Println("the fuzzing step is what closes the gap between the seed's coverage and that list")
}
