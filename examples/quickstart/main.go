// Quickstart: build a program against the paper's Fig. 1 People class,
// harden it, and watch per-allocation layout randomization at work —
// the same member resolves to a different offset in every instance,
// while the program's behaviour is unchanged.
package main

import (
	"fmt"
	"log"

	"polar"
)

// The program below allocates several People objects, writes their
// fields through normal member accesses, and sums the heights. The
// textual IR form is what polarc/polarun consume; the ir.Builder API
// (internal/ir) constructs the same thing programmatically.
const src = `
module "quickstart"

struct %People { fptr vtable; i32 age; i32 height; i64 id; }

global @people 80

func @main() i64 {
entry:
  %r0 = local i64
  store i64 0, %r0
  %r1 = local i64
  store i64 0, %r1
  br loop.head
loop.head:
  %r2 = load i64, %r1
  %r3 = lt %r2, 10
  condbr %r3, loop.body, loop.done
loop.body:
  %r4 = load i64, %r1
  %r5 = alloc %People
  %r6 = fieldptr %People, %r5, 2      # height
  %r7 = mul %r4, 3
  %r8 = add %r7, 150
  store i32 %r8, %r6
  %r9 = fieldptr %People, %r5, 1      # age
  store i32 %r4, %r9
  %r10 = fieldptr %People, %r5, 3     # id
  store i64 %r4, %r10
  %r11 = elemptr i64, @people, %r4
  store i64 %r5, %r11
  %r12 = load i64, %r0
  %r13 = fieldptr %People, %r5, 2
  %r14 = load i32, %r13
  %r15 = add %r12, %r14
  store i64 %r15, %r0
  %r16 = add %r4, 1
  store i64 %r16, %r1
  br loop.head
loop.done:
  %r17 = load i64, %r0
  call @print_i64(%r17)
  ret %r17
}
`

func main() {
	m, err := polar.Parse(src)
	if err != nil {
		log.Fatal(err)
	}

	base, err := polar.Run(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline result: %d\n", base.Value)

	h, err := polar.Harden(m, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hardened: %d allocs, %d member accesses, %d frees, %d copies rewritten\n",
		h.RewrittenAllocs, h.RewrittenAccesses, h.RewrittenFrees, h.RewrittenCopies)

	// Same program, three different executions: results identical,
	// layouts (and therefore metadata) fresh every time.
	for seed := int64(1); seed <= 3; seed++ {
		res, err := polar.RunHardened(h, polar.WithSeed(seed))
		if err != nil {
			log.Fatal(err)
		}
		st := res.Runtime
		fmt.Printf("seed %d: result=%d allocs=%d member-accesses=%d cache-hits=%d unique-layouts=%d\n",
			seed, res.Value, st.Allocs, st.MemberAccess, st.CacheHits, st.Meta.LayoutsUnique)
		if res.Value != base.Value {
			log.Fatalf("hardened result diverged: %d != %d", res.Value, base.Value)
		}
	}
	fmt.Println()
	fmt.Println("ten allocations of the same type produced multiple distinct layouts")
	fmt.Println("(the property compile-time OLR cannot provide, paper §III.B)")
}
