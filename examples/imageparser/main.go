// Imageparser: the paper's motivating client-side scenario — a document
// parser fed untrusted files. Runs the TaintClass framework (fuzzing +
// DFSan-analogue taint tracking) over the mini-libpng chunk parser,
// prints the discovered input-dependent object types, then hardens
// exactly those classes and re-parses the canonical image.
package main

import (
	"fmt"
	"log"

	"polar"
	"polar/internal/workload"
)

func main() {
	png := workload.LibPNG()
	fmt.Printf("target: %s\n%s\n\n", png.Name, png.Description)

	// Fig. 3 pipeline: coverage-guided fuzzing widens the corpus, the
	// taint engine marks input-dependent classes, Harden instruments
	// exactly those.
	h, rep, err := polar.SelectAndHarden(png.Module, [][]byte{png.Input}, 400, 7)
	if err != nil {
		log.Fatal(err)
	}
	classes := rep.TaintedClasses()
	fmt.Printf("TaintClass discovered %d input-dependent object types:\n", len(classes))
	fmt.Print(rep.String())
	fmt.Printf("\ninstrumented: %d allocs, %d member accesses, %d frees, %d copies\n\n",
		h.RewrittenAllocs, h.RewrittenAccesses, h.RewrittenFrees, h.RewrittenCopies)

	// The hardened parser still parses the canonical image correctly.
	base, err := polar.Run(png.Module, polar.WithInput(png.Input))
	if err != nil {
		log.Fatal(err)
	}
	hard, err := polar.RunHardened(h, polar.WithInput(png.Input), polar.WithSeed(99))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("canonical image checksum: baseline=%d hardened=%d (equal: %v)\n",
		base.Value, hard.Value, base.Value == hard.Value)

	// And the CVE-shaped inputs of Table IV touch exactly the object
	// types the real exploits abused.
	fmt.Println("\nCVE-shaped inputs (Table IV):")
	for _, c := range workload.LibPNGCVECases() {
		cvRep, err := polar.AnalyzeTaint(png.Module, [][]byte{c.Input})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  CVE-%-11s %-50s -> %v\n", c.CVE, c.Description, cvRep.TaintedClasses())
	}
}
