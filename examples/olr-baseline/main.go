// Olr-baseline: the compile-time OLR world POLaR improves on (§II.C,
// §VII.A). Shows three randstruct-style "binaries" built from the same
// source, each with a different — but frozen — layout; how reading the
// binary reveals everything; and how the norandom annotation exempts
// wire-format structs.
package main

import (
	"fmt"
	"log"

	"polar/internal/ir"
	"polar/internal/olr"
	"polar/internal/vm"
)

const src = `
module "server"

struct %Session { fptr on_close; i64 uid; i32 perms; i32 refcnt; i64 token; }
struct %PacketHeader norandom { i32 magic; i16 version; i16 flags; i64 seq; }

func @main() i64 {
entry:
  %r0 = alloc %Session
  %r1 = fieldptr %Session, %r0, 1
  store i64 4242, %r1
  %r2 = fieldptr %Session, %r0, 4
  store i64 777, %r2
  %r3 = load i64, %r1
  %r4 = load i64, %r2
  %r5 = add %r3, %r4
  ret %r5
}
`

func main() {
	m, err := ir.Parse(src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("one source, three compile-time-randomized binaries:")
	fmt.Println()
	for _, seed := range []int64{101, 202, 303} {
		res, err := olr.Apply(m, nil, olr.DefaultConfig(seed))
		if err != nil {
			log.Fatal(err)
		}
		offs, _ := res.StaticOffsets("Session")
		fmt.Printf("binary (seed %d): Session offsets uid=%d perms=%d refcnt=%d token=%d on_close=%d\n",
			seed, offs[1], offs[2], offs[3], offs[4], offs[0])

		// The program still works — the compiler rewrote every access.
		v, err := vm.New(res.Module)
		if err != nil {
			log.Fatal(err)
		}
		out, err := v.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  result: %d (unchanged)\n", out)

		// Run the SAME binary twice: identical layout both times — the
		// §III.B.2 reproduction problem.
		res2, _ := olr.Apply(m, nil, olr.DefaultConfig(seed))
		offs2, _ := res2.StaticOffsets("Session")
		same := true
		for i := range offs {
			if offs[i] != offs2[i] {
				same = false
			}
		}
		fmt.Printf("  rebuild with same seed -> identical layout: %v\n", same)

		// The annotated wire struct was left alone in every binary.
		if _, randomized := res.Perm["PacketHeader"]; randomized {
			log.Fatal("norandom annotation ignored!")
		}
		hdr := res.Module.Structs["PacketHeader"]
		fmt.Printf("  PacketHeader (norandom): magic@%d version@%d seq@%d — wire format preserved\n",
			hdr.Offset(0), hdr.Offset(1), hdr.Offset(3))
		fmt.Println()
	}

	fmt.Println("the catch (§III.B.1): each binary carries its layout as static data.")
	fmt.Println("an attacker with the file recovers the offsets exactly the way this")
	fmt.Println("program just did — olr.Result.StaticOffsets IS the reverse-engineering")
	fmt.Println("step. POLaR's per-allocation layouts have no such artifact to read;")
	fmt.Println("see examples/exploit-uaf for the measured difference.")
}
