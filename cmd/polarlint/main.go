// Command polarlint runs the static analysis passes over textual IR
// modules: the layout-compatibility lint (§VI.B idioms that break
// under per-allocation randomization), the definite use-after-free /
// double-free detector, and the static TaintClass pass.
//
// Usage:
//
//	polarlint [flags] program.ir [more.ir ...]
//
//	-json          machine-readable findings on stdout
//	-fail-on SEV   exit 1 if any finding is at or above SEV
//	               (info|warning|error|none; default error)
//	-taint         print the ranked static TaintClass table
//	-policy FILE   write a randomization policy derived from the
//	               static taint pass (single input only)
//	-metrics       print per-pass timing and finding counts to stderr
//
// Exit status: 0 clean (below the gate), 1 findings at/above -fail-on,
// 2 usage or parse errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"polar"
	"polar/internal/analysis"
	"polar/internal/telemetry"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	failOn := flag.String("fail-on", "error", "minimum severity that fails the run (info|warning|error|none)")
	taintOut := flag.Bool("taint", false, "print the ranked static TaintClass table")
	policyOut := flag.String("policy", "", "write a policy file derived from the static taint pass")
	metricsOut := flag.Bool("metrics", false, "print per-pass metrics to stderr")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: polarlint [-json] [-fail-on sev] [-taint] [-policy out.json] [-metrics] program.ir ...")
		os.Exit(2)
	}
	if *policyOut != "" && flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "polarlint: -policy needs exactly one input module")
		os.Exit(2)
	}

	var gate analysis.Severity
	if *failOn != "none" {
		sev, err := analysis.ParseSeverity(*failOn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "polarlint:", err)
			os.Exit(2)
		}
		gate = sev
	}

	reg := telemetry.NewRegistry()
	failed := false
	var jsonResults []*analysis.Result
	for _, path := range flag.Args() {
		res, err := lintFile(path, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "polarlint:", err)
			os.Exit(2)
		}
		if gate != 0 && res.Findings.CountAtLeast(gate) > 0 {
			failed = true
		}
		if *jsonOut {
			jsonResults = append(jsonResults, res)
			continue
		}
		if flag.NArg() > 1 {
			fmt.Printf("== %s (%s)\n", path, res.Module)
		}
		fmt.Print(res.Findings.Render())
		if *taintOut {
			printTaint(res)
		}
		if *policyOut != "" {
			pol := res.Taint.Policy("polarlint -policy")
			if err := pol.Save(*policyOut); err != nil {
				fmt.Fprintln(os.Stderr, "polarlint:", err)
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "polarlint: wrote policy for %d classes to %s\n", len(pol.Targets), *policyOut)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if len(jsonResults) == 1 {
			_ = enc.Encode(jsonResults[0])
		} else {
			_ = enc.Encode(jsonResults)
		}
	}
	if *metricsOut {
		printMetrics(reg)
	}
	if failed {
		os.Exit(1)
	}
}

func lintFile(path string, reg *telemetry.Registry) (*analysis.Result, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := polar.Parse(string(src))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return analysis.Analyze(m, analysis.Options{Metrics: reg}), nil
}

func printTaint(res *analysis.Result) {
	if res.Taint == nil || len(res.Taint.Classes) == 0 {
		fmt.Println("static taint: no input-tainted classes")
		return
	}
	fmt.Println("static taint (ranked):")
	for _, c := range res.Taint.Classes {
		marks := ""
		if c.ContentTainted {
			marks += "C"
		}
		if c.AllocTainted {
			marks += "A"
		}
		if c.FreeTainted {
			marks += "F"
		}
		fields := ""
		for i, f := range c.Fields {
			if i > 0 {
				fields += ","
			}
			fields += f.Name
			if f.IsPointer {
				fields += "*"
			}
		}
		fmt.Printf("  %-28s score=%.2f  [%s]  %s\n", c.Class, c.Score, marks, fields)
	}
}

func printMetrics(reg *telemetry.Registry) {
	snap := reg.Snapshot()
	names := make([]string, 0, len(snap.Gauges)+len(snap.Counters))
	for n := range snap.Gauges {
		names = append(names, n)
	}
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if g, ok := snap.Gauges[n]; ok {
			fmt.Fprintf(os.Stderr, "%-28s %.6f\n", n, g)
		} else {
			fmt.Fprintf(os.Stderr, "%-28s %d\n", n, snap.Counters[n])
		}
	}
}
