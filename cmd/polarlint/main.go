// Command polarlint runs the static analysis passes over textual IR
// modules: the layout-compatibility lint (§VI.B idioms that break
// under per-allocation randomization), the definite use-after-free /
// double-free detector, and the static TaintClass pass.
//
// Usage:
//
//	polarlint [flags] program.ir [more.ir ...]
//
//	-json          machine-readable findings on stdout
//	-fail-on SEV   exit 1 if any finding is at or above SEV
//	               (info|warning|error|none; default error)
//	-taint         print the ranked static TaintClass table
//	-policy FILE   write a randomization policy derived from the
//	               static taint pass (single input only)
//	-context K     call-string depth for heap cloning (default 2;
//	               0 disables context sensitivity entirely)
//	-facts FILE    write the olr_getptr site classification (the
//	               SiteFacts artifact polarc/polarun -facts consume;
//	               single input only)
//	-suggest       propose norandom tags for untainted wire-format
//	               classes
//	-taint-report FILE  dynamic-campaign policy file (taintclass -o);
//	               its targets additionally veto -suggest proposals
//	-metrics       print per-pass timing and finding counts to stderr
//
// Exit status: 0 clean (below the gate), 1 findings at/above -fail-on,
// 2 usage or parse errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"polar"
	"polar/internal/analysis"
	"polar/internal/ir"
	"polar/internal/policy"
	"polar/internal/telemetry"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	failOn := flag.String("fail-on", "error", "minimum severity that fails the run (info|warning|error|none)")
	taintOut := flag.Bool("taint", false, "print the ranked static TaintClass table")
	policyOut := flag.String("policy", "", "write a policy file derived from the static taint pass")
	contextK := flag.Int("context", 2, "call-string depth for heap cloning (0 = context-insensitive)")
	factsOut := flag.String("facts", "", "write the SiteFacts artifact for analysis-guided compilation")
	suggest := flag.Bool("suggest", false, "propose norandom tags for untainted wire-format classes")
	taintReport := flag.String("taint-report", "", "dynamic-campaign policy file whose targets veto -suggest")
	metricsOut := flag.Bool("metrics", false, "print per-pass metrics to stderr")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: polarlint [-json] [-fail-on sev] [-taint] [-policy out.json] [-metrics] program.ir ...")
		os.Exit(2)
	}
	if *policyOut != "" && flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "polarlint: -policy needs exactly one input module")
		os.Exit(2)
	}
	if *factsOut != "" && flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "polarlint: -facts needs exactly one input module")
		os.Exit(2)
	}
	var dynTainted []string
	if *taintReport != "" {
		pol, err := policy.Load(*taintReport)
		if err != nil {
			fmt.Fprintln(os.Stderr, "polarlint:", err)
			os.Exit(2)
		}
		dynTainted = pol.Targets
	}

	var gate analysis.Severity
	if *failOn != "none" {
		sev, err := analysis.ParseSeverity(*failOn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "polarlint:", err)
			os.Exit(2)
		}
		gate = sev
	}

	k := analysis.ContextInsensitive
	if *contextK > 0 {
		k = *contextK
	}
	reg := telemetry.NewRegistry()
	failed := false
	var jsonResults []*analysis.Result
	for _, path := range flag.Args() {
		m, res, err := lintFile(path, analysis.Options{
			Metrics: reg, ContextK: k, SiteFacts: *factsOut != "",
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "polarlint:", err)
			os.Exit(2)
		}
		if *factsOut != "" {
			data, err := res.Sites.EncodeJSON()
			if err == nil {
				err = os.WriteFile(*factsOut, data, 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "polarlint:", err)
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "polarlint: wrote facts for %d sites to %s\n",
				len(res.Sites.Sites), *factsOut)
		}
		if gate != 0 && res.Findings.CountAtLeast(gate) > 0 {
			failed = true
		}
		if *jsonOut {
			jsonResults = append(jsonResults, res)
			continue
		}
		if flag.NArg() > 1 {
			fmt.Printf("== %s (%s)\n", path, res.Module)
		}
		fmt.Print(res.Findings.Render())
		if *taintOut {
			printTaint(res)
		}
		if *suggest {
			printSuggestions(m, res, dynTainted)
		}
		if *policyOut != "" {
			pol := res.Taint.Policy("polarlint -policy")
			if err := pol.Save(*policyOut); err != nil {
				fmt.Fprintln(os.Stderr, "polarlint:", err)
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "polarlint: wrote policy for %d classes to %s\n", len(pol.Targets), *policyOut)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if len(jsonResults) == 1 {
			_ = enc.Encode(jsonResults[0])
		} else {
			_ = enc.Encode(jsonResults)
		}
	}
	if *metricsOut {
		printMetrics(reg)
	}
	if failed {
		os.Exit(1)
	}
}

func lintFile(path string, opts analysis.Options) (*ir.Module, *analysis.Result, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	m, err := polar.Parse(string(src))
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, analysis.Analyze(m, opts), nil
}

func printSuggestions(m *ir.Module, res *analysis.Result, dynTainted []string) {
	sug := analysis.SuggestNoRandom(m, res, dynTainted)
	if len(sug) == 0 {
		fmt.Println("suggest: no norandom candidates")
		return
	}
	for _, s := range sug {
		fmt.Printf("suggest: norandom %%%s — %s [%s]\n",
			s.Class, s.Reason, strings.Join(s.Rules, ", "))
	}
}

func printTaint(res *analysis.Result) {
	if res.Taint == nil || len(res.Taint.Classes) == 0 {
		fmt.Println("static taint: no input-tainted classes")
		return
	}
	fmt.Println("static taint (ranked):")
	for _, c := range res.Taint.Classes {
		marks := ""
		if c.ContentTainted {
			marks += "C"
		}
		if c.AllocTainted {
			marks += "A"
		}
		if c.FreeTainted {
			marks += "F"
		}
		fields := ""
		for i, f := range c.Fields {
			if i > 0 {
				fields += ","
			}
			fields += f.Name
			if f.IsPointer {
				fields += "*"
			}
		}
		fmt.Printf("  %-28s score=%.2f  [%s]  %s\n", c.Class, c.Score, marks, fields)
	}
}

func printMetrics(reg *telemetry.Registry) {
	snap := reg.Snapshot()
	names := make([]string, 0, len(snap.Gauges)+len(snap.Counters))
	for n := range snap.Gauges {
		names = append(names, n)
	}
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if g, ok := snap.Gauges[n]; ok {
			fmt.Fprintf(os.Stderr, "%-28s %.6f\n", n, g)
		} else {
			fmt.Fprintf(os.Stderr, "%-28s %d\n", n, snap.Counters[n])
		}
	}
}
