// Command polartrace inspects, aggregates and diffs deterministic
// execution traces (schema polar-exectrace/v1) written by polarun
// -exectrace, polarbench -exectrace or polar.WithExecTrace.
//
// Usage:
//
//	polartrace inspect [-kind k] [-site s] [-class hex] [-n max] trace.xt
//	polartrace stats   [-metrics snapshot.json] trace.xt
//	polartrace diff    a.xt b.xt
//
// inspect prints records one per line in program order, optionally
// filtered by record kind ("alloc", "getptr", ...), site substring, or
// class hash. stats aggregates the trace (record mix, resolution-path
// split, per-class and per-site tallies) and, given a polarun -metrics
// JSON snapshot, cross-checks the trace against the counter registry.
//
// diff is the divergence localizer: because traces are byte-identical
// for the same module and seed, the first differing record between two
// traces is the first differing runtime event. It prints the shared
// context, both divergent records, and exits 1 — or exits 0 silently
// when the traces are identical. Typical use is pinning down where the
// bytecode and legacy engines (or two builds) part ways:
//
//	polarun -harden -seed 7 -exectrace a.xt prog.ir
//	polarun -harden -seed 7 -engine legacy -exectrace b.xt prog.ir
//	polartrace diff a.xt b.xt
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"polar/internal/telemetry"
	"polar/internal/telemetry/exectrace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "inspect":
		err = inspect(os.Args[2:])
	case "stats":
		err = stats(os.Args[2:])
	case "diff":
		err = diff(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "polartrace: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "polartrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  polartrace inspect [-kind k] [-site s] [-class hex] [-n max] trace.xt
  polartrace stats   [-metrics snapshot.json] trace.xt
  polartrace diff    a.xt b.xt`)
}

// inspect prints the records of one trace, filtered.
func inspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	kind := fs.String("kind", "", "only records of this kind (alloc, free, getptr, block, call, fuel, violation, layout-gen, rerand, event)")
	site := fs.String("site", "", "only records whose site or function contains this substring")
	class := fs.String("class", "", "only records with this class hash (hex or decimal)")
	max := fs.Int("n", 0, "stop after printing this many records (0 = all)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("inspect wants exactly one trace file")
	}
	var classHash uint64
	if *class != "" {
		v, err := strconv.ParseUint(strings.TrimPrefix(*class, "0x"), 16, 64)
		if err != nil {
			if v, err = strconv.ParseUint(*class, 10, 64); err != nil {
				return fmt.Errorf("bad -class %q: %w", *class, err)
			}
		}
		classHash = v
	}
	t, err := exectrace.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	printed := 0
	for i, r := range t.Records {
		if *kind != "" && r.Kind.String() != *kind {
			continue
		}
		if *site != "" && !strings.Contains(r.Site, *site) && !strings.Contains(r.Fn, *site) {
			continue
		}
		if *class != "" && r.Class != classHash {
			continue
		}
		fmt.Printf("%6d  %s\n", i, r.Format())
		printed++
		if *max > 0 && printed >= *max {
			break
		}
	}
	if !t.Complete {
		fmt.Fprintln(os.Stderr, "polartrace: warning: trace has no footer (producer did not Close; it may be truncated)")
	}
	if t.Dropped > 0 {
		fmt.Fprintf(os.Stderr, "polartrace: warning: producer dropped %d records (cap or write error)\n", t.Dropped)
	}
	return nil
}

// stats aggregates one trace and optionally cross-checks it against a
// polarun -metrics JSON snapshot.
func stats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	metrics := fs.String("metrics", "", "cross-check the trace against this polarun -metrics JSON snapshot")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("stats wants exactly one trace file")
	}
	t, err := exectrace.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	s := exectrace.Compute(t)
	fmt.Print(s.Format())
	if *metrics != "" {
		data, err := os.ReadFile(*metrics)
		if err != nil {
			return err
		}
		var snap telemetry.Snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return fmt.Errorf("parsing %s: %w", *metrics, err)
		}
		if problems := exectrace.CrossCheck(s, snap); len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintln(os.Stderr, "polartrace: cross-check:", p)
			}
			return fmt.Errorf("trace disagrees with the metrics registry (%d mismatches)", len(problems))
		}
		fmt.Println("cross-check: trace agrees with the metrics registry")
	}
	return nil
}

// diff localizes the first divergent record between two traces.
func diff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("diff wants exactly two trace files")
	}
	a, err := exectrace.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := exectrace.ReadFile(fs.Arg(1))
	if err != nil {
		return err
	}
	if d := exectrace.Diff(a, b); d != nil {
		fmt.Print(d.Format(fs.Arg(0), fs.Arg(1)))
		os.Exit(1)
	}
	fmt.Printf("traces identical (%d records)\n", len(a.Records))
	return nil
}
