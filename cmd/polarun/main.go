// Command polarun executes an IR program on the POLaR virtual machine.
//
// Usage:
//
//	polarun [-hardened] [-input file] [-seed n] [-stats] program.ir [args...]
//
// Plain modules run on the bare VM; pass -hardened for modules produced
// by polarc (the POLaR runtime is attached and the class table
// recomputed from the declarations). The program's printed output goes
// to stdout and @main's return value becomes a "result: N" line.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"polar"
)

func main() {
	hardened := flag.Bool("hardened", false, "attach the POLaR runtime (for polarc output)")
	inputPath := flag.String("input", "", "file whose bytes become the untrusted program input")
	seed := flag.Int64("seed", 1, "randomization seed for the POLaR runtime")
	stats := flag.Bool("stats", false, "print runtime counters to stderr")
	warn := flag.Bool("warn", false, "count violations instead of aborting")
	trace := flag.Int("trace", 0, "trace the first N executed instructions to stderr")
	policyPath := flag.String("policy", "", "apply a policy file's per-class tuning (with -hardened)")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: polarun [-hardened] [-input file] [-seed n] program.ir [args...]")
		os.Exit(2)
	}
	if err := run(*hardened, *inputPath, *seed, *stats, *warn, *trace, *policyPath); err != nil {
		fmt.Fprintln(os.Stderr, "polarun:", err)
		os.Exit(1)
	}
}

func run(hardened bool, inputPath string, seed int64, stats, warn bool, trace int, policyPath string) error {
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}
	m, err := polar.Parse(string(src))
	if err != nil {
		return err
	}
	var input []byte
	if inputPath != "" {
		if input, err = os.ReadFile(inputPath); err != nil {
			return err
		}
	}
	var args []int64
	for _, a := range flag.Args()[1:] {
		v, err := strconv.ParseInt(a, 0, 64)
		if err != nil {
			return fmt.Errorf("bad argument %q: %w", a, err)
		}
		args = append(args, v)
	}

	opts := []polar.Option{polar.WithSeed(seed), polar.WithInput(input), polar.WithArgs(args...)}
	if warn {
		opts = append(opts, polar.WithWarnPolicy())
	}
	if trace > 0 {
		opts = append(opts, polar.WithTrace(os.Stderr, trace))
	}
	if policyPath != "" {
		pol, err := polar.LoadPolicy(policyPath)
		if err != nil {
			return err
		}
		opts = append(opts, polar.WithPolicy(pol))
	}
	var res *polar.Result
	if hardened {
		res, err = polar.RunHardened(&polar.Hardened{Module: m}, opts...)
	} else {
		res, err = polar.Run(m, opts...)
	}
	if err != nil {
		return err
	}
	os.Stdout.Write(res.Output)
	fmt.Printf("result: %d\n", res.Value)
	if stats && hardened {
		s := res.Runtime
		fmt.Fprintf(os.Stderr, "allocs=%d frees=%d memcpys=%d member=%d cachehit=%d violations=%v\n",
			s.Allocs, s.Frees, s.Memcpys, s.MemberAccess, s.CacheHits, s.Violations)
	}
	return nil
}
