// Command polarun executes an IR program on the POLaR virtual machine.
//
// Usage:
//
//	polarun [-hardened|-harden] [-engine bytecode|legacy] [-input file]
//	        [-seed n] [-stats] [-runs n] [-parallel n] [-metrics]
//	        [-trace-json file] [-profile file] [-pgo file] [-http addr]
//	        program.ir [args...]
//
// -engine selects the execution engine: the default bytecode engine
// (compile-time lowering with fused superinstructions, DESIGN.md §8)
// or the tree-walking reference engine ("legacy"; also "tree"). The
// two are differentially tested to produce identical results, stats
// and violations; legacy is the one to pin when bisecting a suspected
// engine bug. VMs with taint hooks or -trace attached fall back to the
// tree-walker automatically.
//
// Plain modules run on the bare VM; pass -hardened for modules produced
// by polarc (the POLaR runtime is attached and the class table
// recomputed from the declarations), or -harden to instrument a plain
// module in-process before running it. The program's printed output
// goes to stdout and @main's return value becomes a "result: N" line.
//
// -runs executes the program N times from one compiled form (the
// module is validated and laid out once; every run is a cheap
// instance). -parallel spreads the runs over a worker pool. Each run
// gets a seed derived from (-seed, run index), every run's output is
// verified identical to the first (layout randomization is
// semantics-preserving), and per-run metric registries are merged in
// run order so the -metrics snapshot is deterministic at any
// parallelism.
//
// Observability:
//
//	-stats        one-line counter summaries on stderr
//	-metrics      deterministic JSON metrics snapshot (counters, gauges,
//	              histograms) on stdout after the run
//	-trace-json   Chrome trace-event timeline (parse → cie → instrument →
//	              run phases, violation markers) written to the file;
//	              load it in chrome://tracing or Perfetto
//	-exectrace    deterministic binary execution trace (schema
//	              polar-exectrace/v1): block entries, calls, every olr_*
//	              operation with its resolved offset. Byte-identical for
//	              the same module+seed on either engine; inspect and
//	              diff with polartrace. -exectrace-limit caps records.
//	              With -runs the trace rides run 0, like -flight.
//	-profile      hot-site profile: interpreted cycles, member
//	              resolutions and metadata probes per IR site. The text
//	              top-N report goes to stderr and the pprof-compatible
//	              protobuf to the named file (`go tool pprof file`)
//	-profile-top  rows in the text report (default 15)
//	-pgo          compile under a hot-site profile recorded by a prior
//	              -pgo-record run: the fuser ranks superinstruction
//	              candidates by real dynamic weight instead of the
//	              static loop-depth estimate (DESIGN.md §13)
//	-pgo-topk     fuse only the K hottest candidate runs (0 = all;
//	              negative disables generalized fusion)
//	-pgo-record   write the run's hot-site weights as a JSON profile to
//	              this file for later -pgo compilation (implies the
//	              profiler)
//	-facts        compile under a static site classification written by
//	              polarlint -facts: proven-polymorphic olr_getptr sites
//	              get no inline-cache slot, monomorphic sites proven to
//	              address one runs-once object share a pre-seeded slot
//	              (DESIGN.md §14). Observationally identical to an
//	              unseeded compile — only IC hit rates change
//	-cpuprofile   Go-level CPU profile of the interpreter itself
//	-memprofile   Go-level allocation profile, written after the run
//	-http         serve /debug/polar/{metrics,events,hotsites,
//	              violations,reservoir} and /debug/pprof/* on this
//	              address while the program runs
//	-http-hold    keep serving after the run until interrupted
//	-reservoir    capacity of the event sample behind
//	              /debug/polar/reservoir (with -http; default 256)
//
// Forensics & health (DESIGN.md §10):
//
//	-prom         OpenMetrics text exposition of the metrics snapshot
//	              written to the file ("-" = stdout) after the run
//	-flight       attach the security flight recorder with a ring of N
//	              events (0 = off); on every violation the runtime
//	              snapshots a deterministic forensic dump
//	-flight-dump  write the forensic report JSON to this file after the
//	              run ("-" = stdout); implies -flight 256 if unset
//	-health       attach the live health monitor (entropy gauges,
//	              offset-probe-scan and entropy-depletion detectors);
//	              report JSON on stderr after the run, and
//	              /debug/polar/health with -http. The detector
//	              thresholds are tunable via -health-scan-offsets,
//	              -health-scan-violations, -health-depletion-allocs,
//	              -health-depletion-live, -health-depletion-layouts and
//	              -health-recompute (defaults unchanged)
//	-log          structured slog JSON for violations and health
//	              transitions appended to this file ("-" = stderr)
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"

	"log/slog"

	"polar"
	"polar/internal/evalrun"
	"polar/internal/telemetry"
	"polar/internal/telemetry/health"
	"polar/internal/telemetry/introspect"
	"polar/internal/telemetry/profile"
	"polar/internal/telemetry/sample"
)

// runConfig carries the parsed flags.
type runConfig struct {
	hardened, harden bool
	inputPath        string
	seed             int64
	stats, warn      bool
	trace            int
	runs             int
	parallel         int
	metrics          bool
	traceJSON        string
	policyPath       string
	profilePath      string
	profileTop       int
	cpuProfile       string
	memProfile       string
	httpAddr         string
	httpHold         bool
	reservoirCap     int
	engine           string
	prom             string
	flightCap        int
	flightDump       string
	health           bool
	healthCfg        health.Config
	logPath          string
	exectrace        string
	exectraceLimit   uint64
	layoutMode       string
	rekeyEpoch       int
	pgoPath          string
	pgoTopK          int
	pgoRecord        string
	factsPath        string
}

// outputConflict rejects two flags writing into the same file: the
// last writer would silently clobber the first, and for the binary
// execution trace any interleaving corrupts the stream. Streams ("-",
// "") are exempt — stdout/stderr interleaving is the caller's choice.
func outputConflict(c runConfig) error {
	seen := make(map[string]string)
	for _, t := range []struct{ flag, path string }{
		{"-trace-json", c.traceJSON},
		{"-exectrace", c.exectrace},
		{"-flight-dump", c.flightDump},
		{"-prom", c.prom},
		{"-profile", c.profilePath},
		{"-cpuprofile", c.cpuProfile},
		{"-memprofile", c.memProfile},
		{"-log", c.logPath},
		{"-pgo-record", c.pgoRecord},
	} {
		if t.path == "" || t.path == "-" {
			continue
		}
		if prev, dup := seen[t.path]; dup {
			return fmt.Errorf("%s and %s both write to %q: choose distinct output files", prev, t.flag, t.path)
		}
		seen[t.path] = t.flag
	}
	if c.exectrace == "-" {
		return fmt.Errorf("-exectrace cannot write the binary trace to stdout (it would interleave with program output); name a file")
	}
	return nil
}

func main() {
	var c runConfig
	flag.BoolVar(&c.hardened, "hardened", false, "attach the POLaR runtime (for polarc output)")
	flag.BoolVar(&c.harden, "harden", false, "instrument the module in-process, then run hardened")
	flag.StringVar(&c.inputPath, "input", "", "file whose bytes become the untrusted program input")
	flag.Int64Var(&c.seed, "seed", 1, "randomization seed for the POLaR runtime")
	flag.BoolVar(&c.stats, "stats", false, "print runtime counters to stderr")
	flag.BoolVar(&c.warn, "warn", false, "count violations instead of aborting")
	flag.IntVar(&c.trace, "trace", 0, "trace the first N executed instructions to stderr")
	flag.IntVar(&c.runs, "runs", 1, "execute the program this many times from one compiled form")
	flag.IntVar(&c.parallel, "parallel", 0, "worker pool width for -runs (0 = GOMAXPROCS, 1 = serial)")
	flag.BoolVar(&c.metrics, "metrics", false, "print a JSON metrics snapshot to stdout after the run")
	flag.StringVar(&c.traceJSON, "trace-json", "", "write a Chrome trace-event timeline to this file")
	flag.StringVar(&c.policyPath, "policy", "", "apply a policy file's per-class tuning (with -hardened)")
	flag.StringVar(&c.profilePath, "profile", "", "write a pprof-format hot-site profile to this file (text report on stderr)")
	flag.IntVar(&c.profileTop, "profile-top", 15, "rows in the hot-site text report")
	flag.StringVar(&c.cpuProfile, "cpuprofile", "", "write a Go CPU profile of the interpreter to this file")
	flag.StringVar(&c.memProfile, "memprofile", "", "write a Go allocation profile to this file after the run")
	flag.StringVar(&c.httpAddr, "http", "", "serve the live introspection endpoint on this address (e.g. :6070)")
	flag.BoolVar(&c.httpHold, "http-hold", false, "with -http: keep serving after the run until interrupted")
	flag.IntVar(&c.reservoirCap, "reservoir", 256, "event-sample capacity behind /debug/polar/reservoir (with -http)")
	flag.StringVar(&c.engine, "engine", "bytecode", "execution engine: bytecode (lowered, fast) or legacy (tree-walking reference)")
	flag.StringVar(&c.prom, "prom", "", "write an OpenMetrics text exposition to this file after the run (\"-\" = stdout)")
	flag.IntVar(&c.flightCap, "flight", 0, "attach the security flight recorder with a ring of N events (0 = off)")
	flag.StringVar(&c.flightDump, "flight-dump", "", "write the forensic report JSON to this file (\"-\" = stdout; implies -flight)")
	flag.BoolVar(&c.health, "health", false, "attach the live health monitor (report on stderr; /debug/polar/health with -http)")
	hdef := health.DefaultConfig()
	flag.IntVar(&c.healthCfg.ScanMinOffsets, "health-scan-offsets", hdef.ScanMinOffsets, "health: distinct violation offsets per class before the scan detector fires")
	flag.Uint64Var(&c.healthCfg.ScanMinViolations, "health-scan-violations", hdef.ScanMinViolations, "health: violations per class before the scan detector fires")
	flag.Uint64Var(&c.healthCfg.DepletionMinAllocs, "health-depletion-allocs", hdef.DepletionMinAllocs, "health: allocations per class before depletion is considered")
	flag.Uint64Var(&c.healthCfg.DepletionMinLive, "health-depletion-live", hdef.DepletionMinLive, "health: live objects per class before depletion is considered")
	flag.IntVar(&c.healthCfg.DepletionMaxLayouts, "health-depletion-layouts", hdef.DepletionMaxLayouts, "health: live-layout count at or below which a class is depleted")
	flag.Uint64Var(&c.healthCfg.RecomputeEvery, "health-recompute", hdef.RecomputeEvery, "health: events between full entropy recomputations")
	flag.StringVar(&c.logPath, "log", "", "append slog JSON records for violations and health transitions to this file (\"-\" = stderr)")
	flag.StringVar(&c.exectrace, "exectrace", "", "write the deterministic binary execution trace (polar-exectrace/v1) to this file")
	flag.Uint64Var(&c.exectraceLimit, "exectrace-limit", 0, "stop recording execution-trace events after N records (0 = unbounded; overflow is counted)")
	flag.StringVar(&c.layoutMode, "layout-mode", "metadata", "layout-resolution strategy: metadata (per-object table) or stateless (keyed derivation, no UAF detection)")
	flag.IntVar(&c.rekeyEpoch, "rekey-epoch", 0, "stateless mode: re-randomize every live object's layout after every N frees (0 = never)")
	flag.StringVar(&c.pgoPath, "pgo", "", "compile under this hot-site profile (JSON written by -pgo-record)")
	flag.IntVar(&c.pgoTopK, "pgo-topk", 0, "fuse only the K hottest candidate runs (0 = all, negative = classic pairs only)")
	flag.StringVar(&c.pgoRecord, "pgo-record", "", "write the run's hot-site weights as a -pgo profile to this file")
	flag.StringVar(&c.factsPath, "facts", "", "compile under this static site classification (JSON written by polarlint -facts)")
	flag.Parse()
	if err := outputConflict(c); err != nil {
		fmt.Fprintln(os.Stderr, "polarun:", err)
		os.Exit(2)
	}
	eng, err := polar.ParseEngine(c.engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polarun:", err)
		os.Exit(2)
	}
	polar.SetDefaultEngine(eng)
	if c.pgoPath != "" || c.pgoTopK != 0 {
		var prof *polar.PGOProfile
		if c.pgoPath != "" {
			if prof, err = polar.ReadPGOFile(c.pgoPath); err != nil {
				fmt.Fprintln(os.Stderr, "polarun:", err)
				os.Exit(2)
			}
		}
		polar.SetDefaultPGO(prof, c.pgoTopK)
	}
	if c.factsPath != "" {
		facts, err := polar.ReadFactsFile(c.factsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "polarun:", err)
			os.Exit(2)
		}
		polar.SetDefaultFacts(facts)
	}
	if _, err := polar.ParseLayoutMode(c.layoutMode); err != nil {
		fmt.Fprintln(os.Stderr, "polarun:", err)
		os.Exit(2)
	}
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: polarun [-hardened|-harden] [-input file] [-seed n] program.ir [args...]")
		os.Exit(2)
	}
	if err := run(c); err != nil {
		fmt.Fprintln(os.Stderr, "polarun:", err)
		os.Exit(1)
	}
}

func run(c runConfig) error {
	// The observability layer is created up front so the parse phase is
	// already on the trace timeline. The live endpoint needs a bus and
	// registry even when -metrics wasn't asked for.
	if c.flightDump != "" && c.flightCap <= 0 {
		c.flightCap = 256
	}
	var tel *polar.Telemetry
	if c.metrics || c.traceJSON != "" || c.httpAddr != "" ||
		c.prom != "" || c.flightCap > 0 || c.health || c.logPath != "" ||
		c.exectrace != "" {
		tel = polar.NewTelemetry()
	}
	var logger *slog.Logger
	if c.logPath != "" {
		w := os.Stderr
		if c.logPath != "-" {
			f, err := os.OpenFile(c.logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		logger = slog.New(slog.NewJSONHandler(w, nil))
		tel.Bus.Attach(telemetry.NewSlogSink(logger))
	}
	var rec *polar.FlightRecorder
	if c.flightCap > 0 {
		rec = polar.NewFlightRecorder(c.flightCap)
	}
	var hmon *health.Monitor
	if c.health {
		hmon = health.NewMonitorWith(c.healthCfg, logger)
		hmon.AttachOnce(tel.Bus)
	}
	if c.traceJSON != "" {
		f, err := os.Create(c.traceJSON)
		if err != nil {
			return err
		}
		bw := bufio.NewWriter(f)
		tr := polar.NewTracer(bw)
		// Cleanup order matters and must run on every exit path —
		// including error returns mid-pipeline — so even an aborted run
		// leaves a parseable timeline: the tracer terminates the JSON
		// array, the buffer flushes it, the file closes. Failures are
		// surfaced (a silently truncated trace looks complete).
		defer func() {
			if err := tr.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "polarun: closing trace:", err)
			}
			if err := bw.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "polarun: flushing trace:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "polarun: closing trace file:", err)
			}
		}()
		tel.WithTracer(tr)
	}
	var xw *polar.ExecTraceWriter
	if c.exectrace != "" {
		f, err := os.Create(c.exectrace)
		if err != nil {
			return err
		}
		if c.exectraceLimit > 0 {
			xw = polar.NewExecTraceLimit(f, c.exectraceLimit)
		} else {
			xw = polar.NewExecTrace(f)
		}
		// Deliberately a separate defer from the -trace-json one: each
		// trace must land on disk complete (footer, flush, close) even
		// when the other — or the run itself — fails.
		defer func() {
			if err := xw.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "polarun: closing execution trace:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "polarun: closing execution trace file:", err)
			}
		}()
	}
	var prof *polar.SiteProfiler
	if c.profilePath != "" || c.httpAddr != "" || c.pgoRecord != "" {
		prof = polar.NewSiteProfiler()
	}
	var ih *introspect.Handler
	if c.httpAddr != "" {
		// Listen before the run so address errors surface immediately,
		// then serve in the background for the program's lifetime.
		ln, err := net.Listen("tcp", c.httpAddr)
		if err != nil {
			return fmt.Errorf("introspection endpoint: %w", err)
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "polarun: introspection at http://%s/debug/polar/metrics\n", ln.Addr())
		ih = introspect.New(tel, prof)
		if hmon != nil {
			ih.SetHealth(hmon)
		}
		if rec != nil {
			ih.SetFlight(rec)
		}
		if xw != nil {
			ih.SetExecTrace(xw)
		}
		// A reservoir sample of the event stream backs the
		// /debug/polar/reservoir download; the bus fans every event into
		// it alongside the live subscribers.
		rsv := sample.NewReservoir(c.reservoirCap, c.seed)
		tel.Bus.Attach(rsv)
		ih.SetReservoir(rsv)
		srv := &http.Server{Handler: ih.Mux()}
		go srv.Serve(ln)
	}
	if c.cpuProfile != "" {
		f, err := os.Create(c.cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		stop, err := profile.StartCPUProfile(f)
		if err != nil {
			return err
		}
		defer stop()
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}
	var sp *polar.TraceSpan
	if tel != nil && tel.Tracer != nil {
		sp = tel.Tracer.Begin("parse", "pipeline")
	}
	m, err := polar.Parse(string(src))
	sp.End()
	if err != nil {
		return err
	}
	var input []byte
	if c.inputPath != "" {
		if input, err = os.ReadFile(c.inputPath); err != nil {
			return err
		}
	}
	var args []int64
	for _, a := range flag.Args()[1:] {
		v, err := strconv.ParseInt(a, 0, 64)
		if err != nil {
			return fmt.Errorf("bad argument %q: %w", a, err)
		}
		args = append(args, v)
	}

	// Compile once: the module is validated and its globals laid out a
	// single time; every run below stamps a cheap instance off the
	// shared program.
	var prep *polar.Prepared
	switch {
	case c.harden:
		h, herr := polar.HardenTraced(m, nil, tel)
		if herr != nil {
			return herr
		}
		prep, err = polar.PrepareHardened(h)
	case c.hardened:
		prep, err = polar.PrepareHardened(&polar.Hardened{Module: m})
	default:
		prep, err = polar.Prepare(m)
	}
	if err != nil {
		return err
	}
	var pol *polar.Policy
	if c.policyPath != "" {
		if pol, err = polar.LoadPolicy(c.policyPath); err != nil {
			return err
		}
	}

	runs := c.runs
	if runs < 1 {
		runs = 1
	}
	// Run 0 keeps the live telemetry (bus, tracer) and the instruction
	// trace; later runs get private registries that are merged below in
	// run order, so the -metrics snapshot is deterministic at any
	// parallelism. A single run keeps the exact -seed; multiple runs
	// derive per-run seeds so layouts differ while outputs must not.
	tels := make([]*polar.Telemetry, runs)
	results := make([]*polar.Result, runs)
	optsFor := func(i int) []polar.Option {
		seed := c.seed
		if runs > 1 {
			seed = evalrun.TaskSeed(c.seed, fmt.Sprintf("run/%d", i))
		}
		opts := []polar.Option{polar.WithSeed(seed), polar.WithInput(input), polar.WithArgs(args...)}
		// Validated at startup; the zero value (metadata) applies on "".
		mode, _ := polar.ParseLayoutMode(c.layoutMode)
		opts = append(opts, polar.WithLayoutMode(mode))
		if c.rekeyEpoch > 0 {
			opts = append(opts, polar.WithRekeyEvery(c.rekeyEpoch))
		}
		if c.warn {
			opts = append(opts, polar.WithWarnPolicy())
		}
		if c.trace > 0 && i == 0 {
			opts = append(opts, polar.WithTrace(os.Stderr, c.trace))
		}
		if tel != nil {
			t := tel
			if i > 0 {
				t = polar.NewTelemetry()
				tels[i] = t
			}
			opts = append(opts, polar.WithTelemetry(t))
		}
		if prof != nil {
			opts = append(opts, polar.WithProfiler(prof))
		}
		// The flight recorder rides run 0 only: its ring is fed from run
		// 0's live bus, and a single run keeps dumps deterministic under
		// -parallel.
		if rec != nil && i == 0 {
			opts = append(opts, polar.WithFlightRecorder(rec))
		}
		// Like the flight recorder, the execution trace rides run 0 only:
		// one writer, one program-ordered stream, deterministic bytes at
		// any -parallel width.
		if xw != nil && i == 0 {
			opts = append(opts, polar.WithExecTrace(xw))
		}
		if pol != nil {
			opts = append(opts, polar.WithPolicy(pol))
		}
		if ih != nil && (c.hardened || c.harden) {
			opts = append(opts, polar.WithRuntimeObserver(func(rt polar.LiveRuntime) { ih.SetViolations(rt) }))
		}
		return opts
	}
	if err := evalrun.ForEach(runs, c.parallel, func(i int) error {
		var sp *polar.TraceSpan
		if tel != nil && tel.Tracer != nil {
			sp = tel.Tracer.Begin(fmt.Sprintf("run/%d", i), "pipeline")
		}
		r, rerr := prep.Run(optsFor(i)...)
		sp.End()
		if rerr != nil {
			if runs > 1 {
				return fmt.Errorf("run %d: %w", i, rerr)
			}
			return rerr
		}
		results[i] = r
		return nil
	}); err != nil {
		return err
	}
	res := results[0]
	for i := 1; i < runs; i++ {
		if tels[i] != nil {
			if err := tel.Registry.Merge(tels[i].Registry.Snapshot()); err != nil {
				return fmt.Errorf("merging run %d metrics: %w", i, err)
			}
		}
		if results[i].Value != res.Value || !bytes.Equal(results[i].Output, res.Output) {
			return fmt.Errorf("run %d diverged from run 0: layout randomization must be semantics-preserving", i)
		}
	}
	if runs > 1 {
		fmt.Fprintf(os.Stderr, "polarun: %d runs, all outputs identical\n", runs)
	}
	os.Stdout.Write(res.Output)
	fmt.Printf("result: %d\n", res.Value)
	if c.stats {
		fmt.Fprintf(os.Stderr, "vm: %s\n", res.VM)
		fmt.Fprintf(os.Stderr, "vm-perf: %s\n", res.Perf)
		if c.hardened || c.harden {
			fmt.Fprintf(os.Stderr, "runtime: %s\n", res.Runtime)
			if res.ViolationsTruncated {
				fmt.Fprintf(os.Stderr, "runtime: violation log truncated (%d records dropped)\n", res.ViolationsDropped)
			}
		}
	}
	if c.profilePath != "" {
		fmt.Fprint(os.Stderr, prof.Report(c.profileTop))
		f, err := os.Create(c.profilePath)
		if err != nil {
			return err
		}
		if err := prof.WritePprof(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if c.pgoRecord != "" {
		if err := polar.WritePGOFile(c.pgoRecord, prof); err != nil {
			return err
		}
	}
	if c.memProfile != "" {
		f, err := os.Create(c.memProfile)
		if err != nil {
			return err
		}
		if err := profile.WriteAllocProfile(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	// Fold the loss counters owned by attached components into the
	// registry so the -metrics/-prom snapshots surface trace and ring
	// drops (nil receivers are no-ops).
	rec.Publish(telRegistry(tel))
	xw.Publish(telRegistry(tel))
	if c.metrics {
		data, err := tel.Registry.Snapshot().EncodeJSON()
		if err != nil {
			return err
		}
		os.Stdout.Write(data)
		fmt.Println()
	}
	if c.prom != "" {
		if err := writeProm(c.prom, tel); err != nil {
			return err
		}
	}
	if rec != nil {
		rec.CaptureFinal()
		if c.flightDump != "" {
			data, err := rec.Encode()
			if err != nil {
				return err
			}
			if c.flightDump == "-" {
				os.Stdout.Write(data)
				fmt.Println()
			} else if err := os.WriteFile(c.flightDump, data, 0o644); err != nil {
				return err
			}
		}
	}
	if hmon != nil {
		rep := hmon.Report()
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "polarun: health %s\n%s\n", rep.Status, data)
	}
	if c.httpAddr != "" && c.httpHold {
		fmt.Fprintln(os.Stderr, "polarun: run finished; holding introspection endpoint open (interrupt to exit)")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
	// Checked last so -http-hold keeps the introspection endpoint up for
	// incident inspection before the process reports the failure.
	if hmon != nil && hmon.Status() == health.StatusCritical {
		return fmt.Errorf("health monitor CRITICAL: %v", hmon.Report().Reasons)
	}
	return nil
}

// telRegistry unwraps the registry from a possibly-nil telemetry.
func telRegistry(tel *polar.Telemetry) *telemetry.Registry {
	if tel == nil {
		return nil
	}
	return tel.Registry
}

// writeProm renders the registry snapshot in OpenMetrics text format.
func writeProm(path string, tel *polar.Telemetry) error {
	snap := tel.Registry.Snapshot()
	if path == "-" {
		return snap.WriteOpenMetrics(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WriteOpenMetrics(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
