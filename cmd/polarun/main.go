// Command polarun executes an IR program on the POLaR virtual machine.
//
// Usage:
//
//	polarun [-hardened|-harden] [-input file] [-seed n] [-stats]
//	        [-metrics] [-trace-json file] [-profile file] [-http addr]
//	        program.ir [args...]
//
// Plain modules run on the bare VM; pass -hardened for modules produced
// by polarc (the POLaR runtime is attached and the class table
// recomputed from the declarations), or -harden to instrument a plain
// module in-process before running it. The program's printed output
// goes to stdout and @main's return value becomes a "result: N" line.
//
// Observability:
//
//	-stats        one-line counter summaries on stderr
//	-metrics      deterministic JSON metrics snapshot (counters, gauges,
//	              histograms) on stdout after the run
//	-trace-json   Chrome trace-event timeline (parse → cie → instrument →
//	              run phases, violation markers) written to the file;
//	              load it in chrome://tracing or Perfetto
//	-profile      hot-site profile: interpreted cycles, member
//	              resolutions and metadata probes per IR site. The text
//	              top-N report goes to stderr and the pprof-compatible
//	              protobuf to the named file (`go tool pprof file`)
//	-profile-top  rows in the text report (default 15)
//	-cpuprofile   Go-level CPU profile of the interpreter itself
//	-memprofile   Go-level allocation profile, written after the run
//	-http         serve /debug/polar/{metrics,events,hotsites} and
//	              /debug/pprof/* on this address while the program runs
//	-http-hold    keep serving after the run until interrupted
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"

	"polar"
	"polar/internal/telemetry/introspect"
	"polar/internal/telemetry/profile"
)

// runConfig carries the parsed flags.
type runConfig struct {
	hardened, harden bool
	inputPath        string
	seed             int64
	stats, warn      bool
	trace            int
	metrics          bool
	traceJSON        string
	policyPath       string
	profilePath      string
	profileTop       int
	cpuProfile       string
	memProfile       string
	httpAddr         string
	httpHold         bool
}

func main() {
	var c runConfig
	flag.BoolVar(&c.hardened, "hardened", false, "attach the POLaR runtime (for polarc output)")
	flag.BoolVar(&c.harden, "harden", false, "instrument the module in-process, then run hardened")
	flag.StringVar(&c.inputPath, "input", "", "file whose bytes become the untrusted program input")
	flag.Int64Var(&c.seed, "seed", 1, "randomization seed for the POLaR runtime")
	flag.BoolVar(&c.stats, "stats", false, "print runtime counters to stderr")
	flag.BoolVar(&c.warn, "warn", false, "count violations instead of aborting")
	flag.IntVar(&c.trace, "trace", 0, "trace the first N executed instructions to stderr")
	flag.BoolVar(&c.metrics, "metrics", false, "print a JSON metrics snapshot to stdout after the run")
	flag.StringVar(&c.traceJSON, "trace-json", "", "write a Chrome trace-event timeline to this file")
	flag.StringVar(&c.policyPath, "policy", "", "apply a policy file's per-class tuning (with -hardened)")
	flag.StringVar(&c.profilePath, "profile", "", "write a pprof-format hot-site profile to this file (text report on stderr)")
	flag.IntVar(&c.profileTop, "profile-top", 15, "rows in the hot-site text report")
	flag.StringVar(&c.cpuProfile, "cpuprofile", "", "write a Go CPU profile of the interpreter to this file")
	flag.StringVar(&c.memProfile, "memprofile", "", "write a Go allocation profile to this file after the run")
	flag.StringVar(&c.httpAddr, "http", "", "serve the live introspection endpoint on this address (e.g. :6070)")
	flag.BoolVar(&c.httpHold, "http-hold", false, "with -http: keep serving after the run until interrupted")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: polarun [-hardened|-harden] [-input file] [-seed n] program.ir [args...]")
		os.Exit(2)
	}
	if err := run(c); err != nil {
		fmt.Fprintln(os.Stderr, "polarun:", err)
		os.Exit(1)
	}
}

func run(c runConfig) error {
	// The observability layer is created up front so the parse phase is
	// already on the trace timeline. The live endpoint needs a bus and
	// registry even when -metrics wasn't asked for.
	var tel *polar.Telemetry
	if c.metrics || c.traceJSON != "" || c.httpAddr != "" {
		tel = polar.NewTelemetry()
	}
	if c.traceJSON != "" {
		f, err := os.Create(c.traceJSON)
		if err != nil {
			return err
		}
		bw := bufio.NewWriter(f)
		tr := polar.NewTracer(bw)
		// Cleanup order matters and must run on every exit path —
		// including error returns mid-pipeline — so even an aborted run
		// leaves a parseable timeline: the tracer terminates the JSON
		// array, the buffer flushes it, the file closes. Failures are
		// surfaced (a silently truncated trace looks complete).
		defer func() {
			if err := tr.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "polarun: closing trace:", err)
			}
			if err := bw.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "polarun: flushing trace:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "polarun: closing trace file:", err)
			}
		}()
		tel.WithTracer(tr)
	}
	var prof *polar.SiteProfiler
	if c.profilePath != "" || c.httpAddr != "" {
		prof = polar.NewSiteProfiler()
	}
	if c.httpAddr != "" {
		// Listen before the run so address errors surface immediately,
		// then serve in the background for the program's lifetime.
		ln, err := net.Listen("tcp", c.httpAddr)
		if err != nil {
			return fmt.Errorf("introspection endpoint: %w", err)
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "polarun: introspection at http://%s/debug/polar/metrics\n", ln.Addr())
		srv := &http.Server{Handler: introspect.New(tel, prof).Mux()}
		go srv.Serve(ln)
	}
	if c.cpuProfile != "" {
		f, err := os.Create(c.cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		stop, err := profile.StartCPUProfile(f)
		if err != nil {
			return err
		}
		defer stop()
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}
	var sp *polar.TraceSpan
	if tel != nil && tel.Tracer != nil {
		sp = tel.Tracer.Begin("parse", "pipeline")
	}
	m, err := polar.Parse(string(src))
	sp.End()
	if err != nil {
		return err
	}
	var input []byte
	if c.inputPath != "" {
		if input, err = os.ReadFile(c.inputPath); err != nil {
			return err
		}
	}
	var args []int64
	for _, a := range flag.Args()[1:] {
		v, err := strconv.ParseInt(a, 0, 64)
		if err != nil {
			return fmt.Errorf("bad argument %q: %w", a, err)
		}
		args = append(args, v)
	}

	opts := []polar.Option{polar.WithSeed(c.seed), polar.WithInput(input), polar.WithArgs(args...)}
	if c.warn {
		opts = append(opts, polar.WithWarnPolicy())
	}
	if c.trace > 0 {
		opts = append(opts, polar.WithTrace(os.Stderr, c.trace))
	}
	if tel != nil {
		opts = append(opts, polar.WithTelemetry(tel))
	}
	if prof != nil {
		opts = append(opts, polar.WithProfiler(prof))
	}
	if c.policyPath != "" {
		pol, err := polar.LoadPolicy(c.policyPath)
		if err != nil {
			return err
		}
		opts = append(opts, polar.WithPolicy(pol))
	}
	var res *polar.Result
	switch {
	case c.harden:
		h, herr := polar.HardenTraced(m, nil, tel)
		if herr != nil {
			return herr
		}
		res, err = polar.RunHardened(h, opts...)
	case c.hardened:
		res, err = polar.RunHardened(&polar.Hardened{Module: m}, opts...)
	default:
		res, err = polar.Run(m, opts...)
	}
	if err != nil {
		return err
	}
	os.Stdout.Write(res.Output)
	fmt.Printf("result: %d\n", res.Value)
	if c.stats {
		fmt.Fprintf(os.Stderr, "vm: %s\n", res.VM)
		if c.hardened || c.harden {
			fmt.Fprintf(os.Stderr, "runtime: %s\n", res.Runtime)
			if res.ViolationsTruncated {
				fmt.Fprintf(os.Stderr, "runtime: violation log truncated (%d records dropped)\n", res.ViolationsDropped)
			}
		}
	}
	if c.profilePath != "" {
		fmt.Fprint(os.Stderr, prof.Report(c.profileTop))
		f, err := os.Create(c.profilePath)
		if err != nil {
			return err
		}
		if err := prof.WritePprof(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if c.memProfile != "" {
		f, err := os.Create(c.memProfile)
		if err != nil {
			return err
		}
		if err := profile.WriteAllocProfile(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if c.metrics {
		data, err := tel.Registry.Snapshot().EncodeJSON()
		if err != nil {
			return err
		}
		os.Stdout.Write(data)
		fmt.Println()
	}
	if c.httpAddr != "" && c.httpHold {
		fmt.Fprintln(os.Stderr, "polarun: run finished; holding introspection endpoint open (interrupt to exit)")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
	return nil
}
