// Command polarun executes an IR program on the POLaR virtual machine.
//
// Usage:
//
//	polarun [-hardened|-harden] [-input file] [-seed n] [-stats]
//	        [-metrics] [-trace-json file] program.ir [args...]
//
// Plain modules run on the bare VM; pass -hardened for modules produced
// by polarc (the POLaR runtime is attached and the class table
// recomputed from the declarations), or -harden to instrument a plain
// module in-process before running it. The program's printed output
// goes to stdout and @main's return value becomes a "result: N" line.
//
// Observability:
//
//	-stats       one-line counter summaries on stderr
//	-metrics     deterministic JSON metrics snapshot (counters, gauges,
//	             histograms) on stdout after the run
//	-trace-json  Chrome trace-event timeline (parse → cie → instrument →
//	             run phases, violation markers) written to the file;
//	             load it in chrome://tracing or Perfetto
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"polar"
)

func main() {
	hardened := flag.Bool("hardened", false, "attach the POLaR runtime (for polarc output)")
	harden := flag.Bool("harden", false, "instrument the module in-process, then run hardened")
	inputPath := flag.String("input", "", "file whose bytes become the untrusted program input")
	seed := flag.Int64("seed", 1, "randomization seed for the POLaR runtime")
	stats := flag.Bool("stats", false, "print runtime counters to stderr")
	warn := flag.Bool("warn", false, "count violations instead of aborting")
	trace := flag.Int("trace", 0, "trace the first N executed instructions to stderr")
	metrics := flag.Bool("metrics", false, "print a JSON metrics snapshot to stdout after the run")
	traceJSON := flag.String("trace-json", "", "write a Chrome trace-event timeline to this file")
	policyPath := flag.String("policy", "", "apply a policy file's per-class tuning (with -hardened)")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: polarun [-hardened|-harden] [-input file] [-seed n] program.ir [args...]")
		os.Exit(2)
	}
	if err := run(*hardened, *harden, *inputPath, *seed, *stats, *warn, *trace, *metrics, *traceJSON, *policyPath); err != nil {
		fmt.Fprintln(os.Stderr, "polarun:", err)
		os.Exit(1)
	}
}

func run(hardened, harden bool, inputPath string, seed int64, stats, warn bool, trace int, metrics bool, traceJSON, policyPath string) error {
	// The observability layer is created up front so the parse phase is
	// already on the trace timeline.
	var tel *polar.Telemetry
	if metrics || traceJSON != "" {
		tel = polar.NewTelemetry()
	}
	if traceJSON != "" {
		f, err := os.Create(traceJSON)
		if err != nil {
			return err
		}
		defer f.Close()
		tr := polar.NewTracer(f)
		defer tr.Close()
		tel.WithTracer(tr)
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}
	var sp *polar.TraceSpan
	if tel != nil && tel.Tracer != nil {
		sp = tel.Tracer.Begin("parse", "pipeline")
	}
	m, err := polar.Parse(string(src))
	sp.End()
	if err != nil {
		return err
	}
	var input []byte
	if inputPath != "" {
		if input, err = os.ReadFile(inputPath); err != nil {
			return err
		}
	}
	var args []int64
	for _, a := range flag.Args()[1:] {
		v, err := strconv.ParseInt(a, 0, 64)
		if err != nil {
			return fmt.Errorf("bad argument %q: %w", a, err)
		}
		args = append(args, v)
	}

	opts := []polar.Option{polar.WithSeed(seed), polar.WithInput(input), polar.WithArgs(args...)}
	if warn {
		opts = append(opts, polar.WithWarnPolicy())
	}
	if trace > 0 {
		opts = append(opts, polar.WithTrace(os.Stderr, trace))
	}
	if tel != nil {
		opts = append(opts, polar.WithTelemetry(tel))
	}
	if policyPath != "" {
		pol, err := polar.LoadPolicy(policyPath)
		if err != nil {
			return err
		}
		opts = append(opts, polar.WithPolicy(pol))
	}
	var res *polar.Result
	switch {
	case harden:
		h, herr := polar.HardenTraced(m, nil, tel)
		if herr != nil {
			return herr
		}
		res, err = polar.RunHardened(h, opts...)
	case hardened:
		res, err = polar.RunHardened(&polar.Hardened{Module: m}, opts...)
	default:
		res, err = polar.Run(m, opts...)
	}
	if err != nil {
		return err
	}
	os.Stdout.Write(res.Output)
	fmt.Printf("result: %d\n", res.Value)
	if stats {
		fmt.Fprintf(os.Stderr, "vm: %s\n", res.VM)
		if hardened || harden {
			fmt.Fprintf(os.Stderr, "runtime: %s\n", res.Runtime)
		}
	}
	if metrics {
		data, err := tel.Registry.Snapshot().EncodeJSON()
		if err != nil {
			return err
		}
		os.Stdout.Write(data)
		fmt.Println()
	}
	return nil
}
