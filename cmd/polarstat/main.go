// Command polarstat prints static statistics for an IR module or a
// built-in workload: per-class randomization entropy and
// instrumentation surface, function sizes and the opcode mix.
//
// Usage:
//
//	polarstat program.ir
//	polarstat -workload 458.sjeng
package main

import (
	"flag"
	"fmt"
	"os"

	"polar"
	"polar/internal/irstat"
	"polar/internal/layout"
	"polar/internal/workload"
)

func main() {
	wl := flag.String("workload", "", "analyze a built-in workload by name")
	flag.Parse()
	if err := run(*wl); err != nil {
		fmt.Fprintln(os.Stderr, "polarstat:", err)
		os.Exit(1)
	}
}

func run(wl string) error {
	var m *polar.Module
	switch {
	case wl != "":
		w, err := workload.ByName(wl)
		if err != nil {
			return err
		}
		m = w.Module
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return err
		}
		if m, err = polar.Parse(string(src)); err != nil {
			return err
		}
	default:
		return fmt.Errorf("give -workload NAME or an IR file")
	}
	fmt.Print(irstat.Analyze(m, layout.DefaultConfig()).Render())
	return nil
}
