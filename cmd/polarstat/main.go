// Command polarstat prints static statistics for an IR module or a
// built-in workload: per-class randomization entropy and
// instrumentation surface, function sizes and the opcode mix.
//
// Usage:
//
//	polarstat program.ir
//	polarstat -workload 458.sjeng
//	polarstat -json program.ir
//	polarstat -lowered -workload 429.mcf
//	polarstat -exec program.ir
//
// -json emits the same report as deterministic JSON for scripts and CI.
//
// -lowered appends the lowered-bytecode section: per-function dispatch
// counts vs. source instructions, fused superinstruction runs and their
// micro-op totals, inline layout-cache sites and the operand-file width
// after register allocation, plus the program fingerprint the
// PGO-determinism gate pins (DESIGN.md §13). -pgo FILE/-pgo-topk K
// compile under a recorded hot-site profile (polarun -pgo-record), the
// same flags polarun and polarbench take; the CI determinism gate runs
// polarstat -lowered -pgo twice and compares fingerprints across
// processes.
//
// -exec hardens the program in-process, runs it once on the bytecode
// engine, and reports the engine performance counters
// (vm.inline_cache.hits, vm.inline_cache.misses, vm.fused_dispatches
// and the derived inline-cache hit rate).
package main

import (
	"flag"
	"fmt"
	"os"

	"polar"
	"polar/internal/irstat"
	"polar/internal/layout"
	"polar/internal/workload"
)

func main() {
	wl := flag.String("workload", "", "analyze a built-in workload by name")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	lowered := flag.Bool("lowered", false, "append the lowered-bytecode section (fused runs, inline-cache sites, operand regs, fingerprint)")
	exec := flag.Bool("exec", false, "harden and run the program once, reporting vm.inline_cache.{hits,misses} and vm.fused_dispatches")
	seed := flag.Int64("seed", 1, "randomization seed for -exec")
	pgoPath := flag.String("pgo", "", "compile under a recorded hot-site profile (JSON from polarun -pgo-record)")
	pgoTopK := flag.Int("pgo-topk", 0, "fuse only the K hottest candidate runs (0 = all, <0 = classic pairs only)")
	flag.Parse()
	if *pgoPath != "" || *pgoTopK != 0 {
		var prof *polar.PGOProfile
		if *pgoPath != "" {
			var err error
			if prof, err = polar.ReadPGOFile(*pgoPath); err != nil {
				fmt.Fprintln(os.Stderr, "polarstat:", err)
				os.Exit(1)
			}
		}
		polar.SetDefaultPGO(prof, *pgoTopK)
	}
	if err := run(*wl, *jsonOut, *lowered, *exec, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "polarstat:", err)
		os.Exit(1)
	}
}

func run(wl string, jsonOut, lowered, exec bool, seed int64) error {
	var m *polar.Module
	var w *workload.Workload
	switch {
	case wl != "":
		var err error
		if w, err = workload.ByName(wl); err != nil {
			return err
		}
		m = w.Module
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return err
		}
		if m, err = polar.Parse(string(src)); err != nil {
			return err
		}
	default:
		return fmt.Errorf("give -workload NAME or an IR file")
	}
	stats := irstat.Analyze(m, layout.DefaultConfig())
	if jsonOut {
		data, err := stats.EncodeJSON()
		if err != nil {
			return err
		}
		os.Stdout.Write(data)
		fmt.Println()
	} else {
		fmt.Print(stats.Render())
	}
	if lowered {
		if err := printLowered(m); err != nil {
			return err
		}
	}
	if exec {
		if err := runOnce(m, w, seed); err != nil {
			return err
		}
	}
	return nil
}

// printLowered compiles the module under the process-default options
// and renders the per-function lowering summary.
func printLowered(m *polar.Module) error {
	prep, err := polar.Prepare(m)
	if err != nil {
		return err
	}
	fmt.Printf("\nlowered bytecode (fingerprint %016x)\n", prep.Fingerprint())
	fmt.Printf("%-20s %8s %10s %6s %7s %8s %4s %8s\n",
		"function", "source", "dispatches", "fused", "micros", "classic", "ic", "regs")
	for _, fs := range prep.LoweredStats() {
		fmt.Printf("%-20s %8d %10d %6d %7d %8d %4d %8s\n",
			fs.Name, fs.SourceInstrs, fs.Dispatches, fs.FusedRuns, fs.FusedMicros,
			fs.ClassicPairs, fs.ICSites, fmt.Sprintf("%d/%d", fs.OperandRegs, fs.SourceRegs))
	}
	return nil
}

// runOnce hardens the module, executes it once and prints the engine
// performance counters under their registry names.
func runOnce(m *polar.Module, w *workload.Workload, seed int64) error {
	h, err := polar.Harden(m, nil)
	if err != nil {
		return err
	}
	opts := []polar.Option{polar.WithSeed(seed)}
	if w != nil {
		opts = append(opts, polar.WithInput(w.Input), polar.WithArgs(w.Args...))
	}
	res, err := polar.RunHardened(h, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("\nengine performance counters (one hardened run, seed %d)\n", seed)
	fmt.Printf("  %-28s %d\n", "vm.inline_cache.hits", res.Perf.InlineHits)
	fmt.Printf("  %-28s %d\n", "vm.inline_cache.misses", res.Perf.InlineMisses)
	fmt.Printf("  %-28s %d\n", "vm.fused_dispatches", res.Perf.FusedDispatches)
	fmt.Printf("  %-28s %.1f%%\n", "inline-cache hit rate", 100*res.Perf.HitRate())
	return nil
}
