// Command polarstat prints static statistics for an IR module or a
// built-in workload: per-class randomization entropy and
// instrumentation surface, function sizes and the opcode mix.
//
// Usage:
//
//	polarstat program.ir
//	polarstat -workload 458.sjeng
//	polarstat -json program.ir
//
// -json emits the same report as deterministic JSON for scripts and CI.
package main

import (
	"flag"
	"fmt"
	"os"

	"polar"
	"polar/internal/irstat"
	"polar/internal/layout"
	"polar/internal/workload"
)

func main() {
	wl := flag.String("workload", "", "analyze a built-in workload by name")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	flag.Parse()
	if err := run(*wl, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "polarstat:", err)
		os.Exit(1)
	}
}

func run(wl string, jsonOut bool) error {
	var m *polar.Module
	switch {
	case wl != "":
		w, err := workload.ByName(wl)
		if err != nil {
			return err
		}
		m = w.Module
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return err
		}
		if m, err = polar.Parse(string(src)); err != nil {
			return err
		}
	default:
		return fmt.Errorf("give -workload NAME or an IR file")
	}
	stats := irstat.Analyze(m, layout.DefaultConfig())
	if jsonOut {
		data, err := stats.EncodeJSON()
		if err != nil {
			return err
		}
		os.Stdout.Write(data)
		fmt.Println()
		return nil
	}
	fmt.Print(stats.Render())
	return nil
}
