// Command polarbench regenerates every table and figure of the paper's
// evaluation (§V) plus the security case studies and the design-choice
// ablations.
//
// Usage:
//
//	polarbench [-reps n] [-trials n] [-fuzz n] [-only table1,fig6,...]
//	           [-seed n] [-parallel n] [-format text|csv] [-metrics]
//	           [-prom dir] [-trace-json file] [-layout-mode all|metadata|stateless]
//	           [-rekey-epoch n] [-pgo file] [-pgo-topk k]
//
// -pgo compiles every workload under a hot-site profile recorded by
// `polarun -pgo-record` (the fuser ranks superinstruction candidates by
// real dynamic weight); -pgo-topk bounds fusion to the K hottest runs
// (0 = all, negative = classic pairs only). Lowered code is a pure
// function of (module, profile, topK), so profiled builds stay
// byte-identical across reruns — the traces experiment gates that.
//
// Experiments: table1, table2, table3, table4, fig6, fig7, security,
// static, traces, seeding, ablation. Default runs all of them. seeding
// is the static IC-seeding differential (DESIGN.md §14): every workload
// compiles with and without the analysis-computed site classification,
// both arms run under one seed with execution traces attached, and the
// gate requires byte-identical traces plus a strict inline-cache miss
// reduction on at least three workloads. traces is the
// trace-level engine-differential suite: every workload runs hardened
// under the bytecode and legacy engines with a deterministic execution
// trace attached (DESIGN.md §11), the traces must be byte-identical,
// and -exectrace DIR keeps them for polartrace. The text format is what
// EXPERIMENTS.md records; csv is plotting-ready. -metrics appends a
// deterministic JSON metrics snapshot after each experiment's output
// (machine-readable companion to the tables). -prom additionally
// writes each experiment's snapshot as an OpenMetrics text exposition
// to <dir>/<experiment>.prom — scrape-ready files a Prometheus
// file-based collector (or promtool) can consume directly.
// -trace-json records the whole suite as one Chrome-trace timeline: an
// outer span per experiment with nested spans for each workload,
// kernel, CVE case and security scenario (load it in chrome://tracing
// or Perfetto).
//
// -parallel spreads each experiment's sub-steps over N workers
// (default GOMAXPROCS). Every sub-step runs under a seed derived from
// (-seed, task ID), so the non-timing experiments (table1, table3,
// table4, security) emit byte-identical output at any parallelism;
// the timing experiments keep each workload's repetitions pinned to
// one worker so min-of-N stays valid, but wall-clock numbers naturally
// vary run to run.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"polar/internal/core"
	"polar/internal/evalrun"
	"polar/internal/telemetry"
	"polar/internal/telemetry/profile"
	"polar/internal/vm"
)

func main() {
	reps := flag.Int("reps", 5, "timing repetitions per configuration (interleaved min taken)")
	trials := flag.Int("trials", 200, "trials per security-scenario cell")
	fuzzIters := flag.Int("fuzz", 300, "fuzzing iterations per app for Table I")
	only := flag.String("only", "", "comma-separated subset of experiments")
	seed := flag.Int64("seed", 11, "experiment seed")
	parallel := flag.Int("parallel", 0, "experiment worker pool width (0 = GOMAXPROCS, 1 = serial)")
	format := flag.String("format", "text", "output format: text or csv")
	metrics := flag.Bool("metrics", false, "print a JSON metrics snapshot after each experiment")
	promDir := flag.String("prom", "", "write each experiment's OpenMetrics exposition to <dir>/<experiment>.prom")
	traceJSON := flag.String("trace-json", "", "write a Chrome trace-event timeline of the suite to this file")
	engine := flag.String("engine", "bytecode", "execution engine for every experiment: bytecode or legacy")
	exectraceDir := flag.String("exectrace", "", "traces experiment: also write each workload's per-engine execution trace to <dir>/<app>.<engine>.xt")
	layoutMode := flag.String("layout-mode", "all", "traces experiment: layout-resolution modes to gate — all, metadata or stateless")
	rekeyEpoch := flag.Int("rekey-epoch", 0, "stateless mode: advance the derivation epoch every n frees (0 disables)")
	pgoPath := flag.String("pgo", "", "compile every workload under this hot-site profile (JSON from polarun -pgo-record)")
	pgoTopK := flag.Int("pgo-topk", 0, "fuse only the K hottest candidate runs (0 = all, negative = classic pairs only)")
	flag.Parse()
	eng, err := vm.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polarbench:", err)
		os.Exit(2)
	}
	vm.SetDefaultEngine(eng)
	if *pgoPath != "" || *pgoTopK != 0 {
		var prof *profile.PGO
		if *pgoPath != "" {
			if prof, err = profile.ReadPGOFile(*pgoPath); err != nil {
				fmt.Fprintln(os.Stderr, "polarbench:", err)
				os.Exit(2)
			}
		}
		vm.SetDefaultPGO(vm.CompileOpts{Profile: prof, FusionTopK: *pgoTopK})
	}
	var traceModes []core.LayoutMode
	if *layoutMode != "all" && *layoutMode != "" {
		m, err := core.ParseLayoutMode(*layoutMode)
		if err != nil {
			fmt.Fprintln(os.Stderr, "polarbench:", err)
			os.Exit(2)
		}
		traceModes = []core.LayoutMode{m}
	}
	evalrun.SetRekeyEpoch(*rekeyEpoch)

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }
	evalrun.SetParallelism(*parallel)
	csv := *format == "csv"
	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "polarbench: unknown format %q\n", *format)
		os.Exit(2)
	}

	// Explicit cleanup rather than defer: os.Exit on a failed run must
	// still leave a parseable trace behind.
	cleanup := func() {}
	if *traceJSON != "" {
		var err error
		if cleanup, err = startTrace(*traceJSON); err != nil {
			fmt.Fprintln(os.Stderr, "polarbench:", err)
			os.Exit(1)
		}
	}
	if *promDir != "" {
		if err := os.MkdirAll(*promDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "polarbench:", err)
			os.Exit(1)
		}
	}
	if *exectraceDir != "" {
		if err := os.MkdirAll(*exectraceDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "polarbench:", err)
			os.Exit(1)
		}
	}
	err = run(sel, csv, emitConfig{json: *metrics, promDir: *promDir}, *reps, *trials, *fuzzIters, *seed, *exectraceDir, traceModes)
	cleanup()
	if err != nil {
		fmt.Fprintln(os.Stderr, "polarbench:", err)
		os.Exit(1)
	}
}

// startTrace attaches a suite-wide tracer writing to path. The cleanup
// closes the JSON array, flushes and closes the file — in that order —
// so even an aborted suite leaves a parseable timeline.
func startTrace(path string) (func(), error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriter(f)
	tr := telemetry.NewTracer(bw)
	evalrun.SetTracer(tr)
	return func() {
		evalrun.SetTracer(nil)
		if err := tr.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "polarbench: closing trace:", err)
		}
		if err := bw.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "polarbench: flushing trace:", err)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "polarbench: closing trace file:", err)
		}
	}, nil
}

// emitConfig selects the machine-readable companions each experiment
// emits: the JSON snapshot on stdout (-metrics) and/or an OpenMetrics
// exposition file per experiment (-prom dir).
type emitConfig struct {
	json    bool
	promDir string
}

// emitMetrics renders one experiment's registry snapshot in the
// requested formats (no-op when neither -metrics nor -prom is set).
func emitMetrics(cfg emitConfig, name string, fill func(*telemetry.Registry)) error {
	if cfg.json {
		out, err := evalrun.SnapshotJSON(fill)
		if err != nil {
			return err
		}
		fmt.Printf("metrics[%s]:\n%s", name, out)
	}
	if cfg.promDir != "" {
		data, err := evalrun.SnapshotOpenMetrics(fill)
		if err != nil {
			return err
		}
		path := filepath.Join(cfg.promDir, name+".prom")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func run(sel func(string) bool, csv bool, metrics emitConfig, reps, trials, fuzzIters int, seed int64, exectraceDir string, traceModes []core.LayoutMode) error {
	if sel("table1") {
		sp := evalrun.Span("table1", "experiment")
		rows, err := evalrun.TableI(fuzzIters, seed)
		sp.End()
		if err != nil {
			return err
		}
		if csv {
			fmt.Print(evalrun.CSVTableI(rows))
		} else {
			fmt.Println(evalrun.RenderTableI(rows))
		}
		if err := emitMetrics(metrics, "table1", func(reg *telemetry.Registry) { evalrun.PublishTableI(rows, reg) }); err != nil {
			return err
		}
	}
	if sel("fig6") {
		sp := evalrun.Span("fig6", "experiment")
		rows, err := evalrun.Figure6(reps, seed)
		sp.End()
		if err != nil {
			return err
		}
		if csv {
			fmt.Print(evalrun.CSVFigure6(rows))
		} else {
			fmt.Println(evalrun.RenderFigure6(rows))
		}
		if err := emitMetrics(metrics, "fig6", func(reg *telemetry.Registry) { evalrun.PublishFigure6(rows, reg) }); err != nil {
			return err
		}
	}
	var jsRows []evalrun.JSRow
	if sel("table2") || sel("fig7") {
		var err error
		sp := evalrun.Span("fig7", "experiment")
		jsRows, err = evalrun.Figure7(reps, seed)
		sp.End()
		if err != nil {
			return err
		}
	}
	if sel("table2") {
		agg := evalrun.TableII(jsRows)
		if csv {
			fmt.Print(evalrun.CSVTableII(agg))
		} else {
			fmt.Println(evalrun.RenderTableII(agg))
		}
		if err := emitMetrics(metrics, "table2", func(reg *telemetry.Registry) { evalrun.PublishTableII(agg, reg) }); err != nil {
			return err
		}
	}
	if sel("table3") {
		sp := evalrun.Span("table3", "experiment")
		rows, err := evalrun.TableIII(seed)
		sp.End()
		if err != nil {
			return err
		}
		if csv {
			fmt.Print(evalrun.CSVTableIII(rows))
		} else {
			fmt.Println(evalrun.RenderTableIII(rows))
		}
		if err := emitMetrics(metrics, "table3", func(reg *telemetry.Registry) { evalrun.PublishTableIII(rows, reg) }); err != nil {
			return err
		}
	}
	if sel("table4") {
		sp := evalrun.Span("table4", "experiment")
		rows, err := evalrun.TableIV()
		sp.End()
		if err != nil {
			return err
		}
		if csv {
			fmt.Print(evalrun.CSVTableIV(rows))
		} else {
			fmt.Println(evalrun.RenderTableIV(rows))
		}
		if err := emitMetrics(metrics, "table4", func(reg *telemetry.Registry) { evalrun.PublishTableIV(rows, reg) }); err != nil {
			return err
		}
	}
	if sel("fig7") {
		if csv {
			fmt.Print(evalrun.CSVFigure7(jsRows))
		} else {
			fmt.Println(evalrun.RenderFigure7(jsRows))
		}
		if err := emitMetrics(metrics, "fig7", func(reg *telemetry.Registry) { evalrun.PublishFigure7(jsRows, reg) }); err != nil {
			return err
		}
	}
	if sel("security") {
		sp := evalrun.Span("security", "experiment")
		rep, err := evalrun.Security(trials, seed)
		sp.End()
		if err != nil {
			return err
		}
		if csv {
			fmt.Print(evalrun.CSVSecurity(rep))
		} else {
			fmt.Println(rep.Render())
		}
		if err := emitMetrics(metrics, "security", func(reg *telemetry.Registry) { evalrun.PublishSecurity(rep, reg) }); err != nil {
			return err
		}
	}
	if sel("static") {
		sp := evalrun.Span("static", "experiment")
		rows, err := evalrun.StaticTaint(fuzzIters, seed)
		sp.End()
		if err != nil {
			return err
		}
		if csv {
			fmt.Print(evalrun.CSVStaticTaint(rows))
		} else {
			fmt.Println(evalrun.RenderStaticTaint(rows))
		}
		if err := emitMetrics(metrics, "static", func(reg *telemetry.Registry) { evalrun.PublishStaticTaint(rows, reg) }); err != nil {
			return err
		}
	}
	if sel("traces") {
		sp := evalrun.Span("traces", "experiment")
		rows, err := evalrun.Traces(exectraceDir, seed, traceModes...)
		sp.End()
		if err != nil {
			return err
		}
		if csv {
			fmt.Print(evalrun.CSVTraces(rows))
		} else {
			fmt.Println(evalrun.RenderTraces(rows))
		}
		if err := emitMetrics(metrics, "traces", func(reg *telemetry.Registry) { evalrun.PublishTraces(rows, reg) }); err != nil {
			return err
		}
		// The trace-level engine-differential contract is a hard gate:
		// byte-divergent traces mean the engines disagree about runtime
		// events, which no timing table should paper over.
		if evalrun.TracesDiverged(rows) {
			return fmt.Errorf("traces: engines diverged (see table above)")
		}
	}
	if sel("seeding") {
		sp := evalrun.Span("seeding", "experiment")
		rows, err := evalrun.Seeding(seed)
		sp.End()
		if err != nil {
			return err
		}
		if csv {
			fmt.Print(evalrun.CSVSeeding(rows))
		} else {
			fmt.Println(evalrun.RenderSeeding(rows))
		}
		if err := emitMetrics(metrics, "seeding", func(reg *telemetry.Registry) { evalrun.PublishSeeding(rows, reg) }); err != nil {
			return err
		}
		// Hard gates, like the traces experiment: static seeding must be
		// observably invisible (byte-identical traces) and must actually
		// cut inline-cache misses on a share of the workloads.
		if v := evalrun.SeedingViolations(rows, 3); len(v) > 0 {
			return fmt.Errorf("seeding: %s", strings.Join(v, "; "))
		}
	}
	if sel("ablation") {
		sp := evalrun.Span("ablation", "experiment")
		rows, err := evalrun.Ablation(reps, seed)
		sp.End()
		if err != nil {
			return err
		}
		if csv {
			fmt.Print(evalrun.CSVAblation(rows))
		} else {
			fmt.Println(evalrun.RenderAblation(rows))
		}
		if err := emitMetrics(metrics, "ablation", func(reg *telemetry.Registry) { evalrun.PublishAblation(rows, reg) }); err != nil {
			return err
		}
	}
	return nil
}
