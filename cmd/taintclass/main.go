// Command taintclass runs the TaintClass framework (§IV.B) over a
// program: optional coverage-guided fuzzing to widen input coverage,
// then DFSan-analogue taint analysis, printing the object report that
// feeds POLaR's target selection.
//
// Usage:
//
//	taintclass [-fuzz n] [-seed n] [-workload name | program.ir] [inputs...]
//
// Either give a built-in workload name (e.g. 400.perlbench,
// libpng-1.6.34 — see -list) or an IR file plus seed-input files.
package main

import (
	"flag"
	"fmt"
	"os"

	"polar"
	"polar/internal/workload"
)

func main() {
	fuzzIters := flag.Int("fuzz", 0, "coverage-guided fuzzing iterations before analysis")
	seed := flag.Int64("seed", 1, "fuzzing seed")
	wl := flag.String("workload", "", "analyze a built-in workload by name")
	list := flag.Bool("list", false, "list built-in workload names")
	out := flag.String("o", "", "write a randomization policy file (JSON) for polarc -policy")
	flag.Parse()

	if *list {
		for _, w := range workload.All() {
			fmt.Printf("%-22s %s\n", w.Name, w.Description)
		}
		return
	}
	if err := run(*wl, *fuzzIters, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "taintclass:", err)
		os.Exit(1)
	}
}

func run(wl string, fuzzIters int, seed int64, out string) error {
	var m *polar.Module
	var seeds [][]byte
	switch {
	case wl != "":
		w, err := workload.ByName(wl)
		if err != nil {
			return err
		}
		m = w.Module
		seeds = [][]byte{w.Input}
	case flag.NArg() >= 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return err
		}
		if m, err = polar.Parse(string(src)); err != nil {
			return err
		}
		for _, p := range flag.Args()[1:] {
			b, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			seeds = append(seeds, b)
		}
		if len(seeds) == 0 {
			seeds = [][]byte{nil}
		}
	default:
		return fmt.Errorf("give -workload NAME or an IR file (see -list)")
	}

	corpus := seeds
	if fuzzIters > 0 {
		fr, err := polar.FuzzForCoverage(m, seeds, fuzzIters, seed)
		if err != nil {
			return err
		}
		fmt.Printf("fuzzing: %d execs, %d edges, corpus %d, crashers %d\n",
			fr.Execs, fr.Edges, len(fr.Corpus), len(fr.Crashers))
		corpus = append(corpus, fr.Corpus...)
		corpus = append(corpus, fr.Crashers...)
	}
	rep, err := polar.AnalyzeTaint(m, corpus)
	if err != nil {
		return err
	}
	classes := rep.TaintedClasses()
	fmt.Printf("%d tainted object types:\n", len(classes))
	fmt.Print(rep.String())
	if out != "" {
		pol := polar.PolicyFromTaint(rep, fmt.Sprintf("taintclass -fuzz %d -seed %d", fuzzIters, seed))
		if err := pol.Save(out); err != nil {
			return err
		}
		fmt.Printf("policy written to %s (%d targets)\n", out, len(pol.Targets))
	}
	return nil
}
