// Command polarc is the POLaR "compiler driver": it reads a textual IR
// module, applies the POLaR instrumentation pass (and the CIE), and
// writes the hardened module back out.
//
// Usage:
//
//	polarc [-targets a,b,c] [-facts facts.json] [-o out.ir] program.ir
//
// With no -targets flag every class is hardened (the paper's §V.A
// compatibility configuration). The rewritten module embeds its class
// table, so polarun can execute it directly.
//
// -facts writes the static olr_getptr site classification (computed on
// the module BEFORE instrumentation, whose in-place rewrite keeps the
// "@fn.block#idx" positions stable) to the named file; polarun -facts
// feeds it back at compile time to pre-seed inline layout caches
// (DESIGN.md §14). It is the same artifact polarlint -facts emits.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"polar"
	"polar/internal/analysis"
)

func main() {
	targets := flag.String("targets", "", "comma-separated class names to randomize (default: all)")
	policyPath := flag.String("policy", "", "randomization policy file from taintclass -o")
	out := flag.String("o", "", "output file (default: stdout)")
	stats := flag.Bool("stats", false, "print rewrite statistics to stderr")
	lint := flag.Bool("lint", false, "run the static analysis passes before instrumenting; abort on error-severity findings")
	factsOut := flag.String("facts", "", "write the pre-instrumentation SiteFacts artifact (for polarun -facts)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: polarc [-lint] [-targets a,b,c | -policy p.json] [-facts f.json] [-o out.ir] program.ir")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *targets, *policyPath, *out, *factsOut, *stats, *lint); err != nil {
		fmt.Fprintln(os.Stderr, "polarc:", err)
		os.Exit(1)
	}
}

func run(path, targets, policyPath, out, factsOut string, stats, lint bool) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	m, err := polar.Parse(string(src))
	if err != nil {
		return err
	}
	if lint || factsOut != "" {
		// Analyze the module while it is still uninstrumented — after the
		// layout pass the fieldptr idioms the rules look for are gone, and
		// the site classification must key the original positions.
		res := analysis.Analyze(m, analysis.Options{Lint: true, UAF: true, SiteFacts: factsOut != ""})
		if factsOut != "" {
			data, err := res.Sites.EncodeJSON()
			if err == nil {
				err = os.WriteFile(factsOut, data, 0o644)
			}
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "polarc: wrote facts for %d sites to %s\n", len(res.Sites.Sites), factsOut)
		}
		if lint {
			if len(res.Findings) > 0 {
				fmt.Fprint(os.Stderr, res.Findings.Render())
			}
			if n := res.Findings.CountAtLeast(analysis.SevError); n > 0 {
				return fmt.Errorf("lint: %d error-severity finding(s); not instrumenting", n)
			}
		}
	}
	var h *polar.Hardened
	switch {
	case policyPath != "":
		if targets != "" {
			return fmt.Errorf("-targets and -policy are mutually exclusive")
		}
		pol, err := polar.LoadPolicy(policyPath)
		if err != nil {
			return err
		}
		if h, err = polar.HardenWithPolicy(m, pol); err != nil {
			return err
		}
	default:
		var tlist []string
		if targets != "" {
			tlist = strings.Split(targets, ",")
		}
		if h, err = polar.Harden(m, tlist); err != nil {
			return err
		}
	}
	if stats {
		fmt.Fprintf(os.Stderr,
			"rewrote %d allocs, %d member accesses, %d frees, %d copies; %d raw accesses left alone\n",
			h.RewrittenAllocs, h.RewrittenAccesses, h.RewrittenFrees, h.RewrittenCopies,
			h.SkippedRawAccesses)
	}
	text := polar.Format(h.Module)
	if out == "" {
		fmt.Print(text)
		return nil
	}
	return os.WriteFile(out, []byte(text), 0o644)
}
