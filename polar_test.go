package polar

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"polar/internal/core"
	"polar/internal/workload"
)

func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

const facadeSrc = `
module "facade"

struct %Widget { fptr draw; i32 w; i32 h; i64 id; }

global @buf 64

func @main() i64 {
entry:
  %r0 = call @input_len()
  call @input_read(@buf, 0, %r0)
  %r1 = alloc %Widget
  %r2 = load i8, @buf
  %r3 = fieldptr %Widget, %r1, 1
  store i32 %r2, %r3
  %r4 = fieldptr %Widget, %r1, 2
  store i32 40, %r4
  %r5 = load i32, %r3
  %r6 = load i32, %r4
  %r7 = mul %r5, %r6
  free %r1
  ret %r7
}
`

func TestFacadePipeline(t *testing.T) {
	m, err := Parse(facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(m); err != nil {
		t.Fatal(err)
	}
	input := []byte{7, 1, 2, 3}

	base, err := Run(m, WithInput(input))
	if err != nil {
		t.Fatal(err)
	}
	if base.Value != 7*40 {
		t.Fatalf("baseline = %d, want %d", base.Value, 7*40)
	}

	rep, err := AnalyzeTaint(m, [][]byte{input})
	if err != nil {
		t.Fatal(err)
	}
	classes := rep.TaintedClasses()
	if len(classes) != 1 || classes[0] != "Widget" {
		t.Fatalf("tainted classes = %v, want [Widget]", classes)
	}

	h, err := Harden(m, classes)
	if err != nil {
		t.Fatal(err)
	}
	if h.RewrittenAllocs != 1 || h.RewrittenFrees != 1 || h.RewrittenAccesses != 2 {
		t.Fatalf("rewrites = %d/%d/%d, want 1/1/2",
			h.RewrittenAllocs, h.RewrittenFrees, h.RewrittenAccesses)
	}

	for seed := int64(1); seed <= 5; seed++ {
		res, err := RunHardened(h, WithInput(input), WithSeed(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Value != base.Value {
			t.Fatalf("seed %d: hardened %d != baseline %d", seed, res.Value, base.Value)
		}
		if res.Runtime.Allocs != 1 || res.Runtime.MemberAccess != 2 {
			t.Fatalf("seed %d: runtime stats %+v", seed, res.Runtime)
		}
	}
}

func TestFacadeTextRoundTripOfHardenedModule(t *testing.T) {
	// polarc's path: harden, print, re-parse, run — the class table is
	// recomputed from declarations.
	m, err := Parse(facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Harden(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(h.Module)
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	res, err := RunHardened(&Hardened{Module: back}, WithInput([]byte{9}), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 9*40 {
		t.Fatalf("round-tripped hardened result = %d, want %d", res.Value, 9*40)
	}
}

func TestFacadeOptions(t *testing.T) {
	m, err := Parse(facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Harden(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Disabled cache still resolves correctly.
	res, err := RunHardened(h, WithInput([]byte{5}), WithSeed(2), WithCacheSize(-1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 200 {
		t.Fatalf("cache-off result = %d, want 200", res.Value)
	}
	if res.Runtime.CacheHits != 0 {
		t.Fatalf("cache disabled but hits = %d", res.Runtime.CacheHits)
	}
	// Dummy override changes layout sizes but not semantics.
	res, err = RunHardened(h, WithInput([]byte{5}), WithSeed(2), WithDummies(4, 6))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 200 {
		t.Fatalf("dummies result = %d, want 200", res.Value)
	}
}

func TestFacadeViolationSurfacesAsTypedError(t *testing.T) {
	src := `
module "uaf"
struct %S { i64 x; i64 y; }
func @main() i64 {
entry:
  %r0 = alloc %S
  free %r0
  %r1 = fieldptr %S, %r0, 1
  %r2 = load i64, %r1
  ret %r2
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Harden(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunHardened(h, WithSeed(4))
	var viol *Violation
	if !errors.As(err, &viol) {
		t.Fatalf("want *Violation, got %v", err)
	}
	if viol.Kind != core.ViolationUAF {
		t.Fatalf("kind = %v, want UAF", viol.Kind)
	}
	// Warn policy keeps running and counts instead.
	res, err := RunHardened(h, WithSeed(4), WithWarnPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime.Violations[core.ViolationUAF] == 0 {
		t.Fatal("warn policy recorded no UAF violation")
	}
}

func TestSelectAndHardenPipeline(t *testing.T) {
	jpeg := workload.LibJPEG()
	h, rep, err := SelectAndHarden(jpeg.Module, [][]byte{jpeg.Input}, 150, 9)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count() == 0 {
		t.Fatal("pipeline found no tainted classes")
	}
	base, err := Run(jpeg.Module, WithInput(jpeg.Input))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunHardened(h, WithInput(jpeg.Input), WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != base.Value || !bytes.Equal(res.Output, base.Output) {
		t.Fatalf("hardened output diverged: %d vs %d", res.Value, base.Value)
	}
}

func TestTuneFromTaint(t *testing.T) {
	// Pointer-tainted class gets extra dummies + traps; data-only class
	// gets the lighter configuration; both still run correctly.
	src := `
module "tune"
struct %PtrHot { fptr cb; i64 n; ptr link; }
struct %DataOnly { i64 a; i64 b; }
global @buf 32
func @main() i64 {
entry:
  %r0 = call @input_len()
  call @input_read(@buf, 0, %r0)
  %r1 = alloc %PtrHot
  %r2 = load i64, @buf
  %r3 = fieldptr %PtrHot, %r1, 2
  store ptr %r2, %r3
  %r4 = alloc %DataOnly
  %r5 = load i8, @buf
  %r6 = fieldptr %DataOnly, %r4, 0
  store i64 %r5, %r6
  %r7 = load i64, %r6
  ret %r7
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	input := []byte{9, 8, 7, 6, 5, 4, 3, 2}
	h, rep, err := SelectAndHarden(m, [][]byte{input}, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count() != 2 {
		t.Fatalf("tainted classes = %v", rep.TaintedClasses())
	}
	hot, ok := h.PerClassConfig("PtrHot")
	if !ok {
		t.Fatal("PtrHot has no tuned config")
	}
	dat, ok := h.PerClassConfig("DataOnly")
	if !ok {
		t.Fatal("DataOnly has no tuned config")
	}
	if hot.MinDummies <= dat.MinDummies {
		t.Errorf("pointer-tainted class should get more dummies: %d vs %d", hot.MinDummies, dat.MinDummies)
	}
	if !hot.BoobyTraps {
		t.Error("pointer-tainted class lost booby traps")
	}
	res, err := RunHardened(h, WithInput(input), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 9 {
		t.Fatalf("tuned run result = %d, want 9", res.Value)
	}
}
