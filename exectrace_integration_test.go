package polar

import (
	"bytes"
	"fmt"
	"testing"

	"polar/internal/evalrun"
	"polar/internal/exploit"
	"polar/internal/ir"
	"polar/internal/telemetry/exectrace"
)

// traceCaseStudy hardens m, runs it once under engine e with an
// execution trace attached (warn policy, so attack scenarios complete),
// and returns the encoded trace.
func traceCaseStudy(t *testing.T, m *ir.Module, e Engine, seed int64, args []int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	xw := NewExecTrace(&buf)
	h, err := Harden(ir.Clone(m), nil)
	if err != nil {
		t.Fatalf("harden: %v", err)
	}
	if _, err := RunHardened(h, WithEngine(e), WithSeed(seed), WithWarnPolicy(),
		WithExecTrace(xw), WithArgs(args...)); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := xw.Close(); err != nil {
		t.Fatalf("close trace: %v", err)
	}
	return buf.Bytes()
}

// TestEngineDifferentialTraces extends the engine-differential suite to
// the execution trace itself: every security case study must produce a
// byte-identical trace on the bytecode and legacy engines — not merely
// the same outputs and stats, but the same runtime events in the same
// order with the same resolved offsets.
func TestEngineDifferentialTraces(t *testing.T) {
	for _, cs := range exploit.CaseStudies() {
		cs := cs
		t.Run(cs.Name, func(t *testing.T) {
			bc := traceCaseStudy(t, cs.Build(), EngineBytecode, 99, cs.AttackArgs)
			lg := traceCaseStudy(t, cs.Build(), EngineLegacy, 99, cs.AttackArgs)
			if bytes.Equal(bc, lg) {
				return
			}
			ta, errA := exectrace.Read(bytes.NewReader(bc))
			tb, errB := exectrace.Read(bytes.NewReader(lg))
			if errA != nil || errB != nil {
				t.Fatalf("traces differ and do not decode: %v / %v", errA, errB)
			}
			if d := exectrace.Diff(ta, tb); d != nil {
				t.Fatalf("engine traces diverge:\n%s", d.Format("bytecode", "legacy"))
			}
			t.Fatal("engine traces byte-differ but records match (encoding drift)")
		})
	}
}

// TestEngineDifferentialWorkloadTraces runs the full workload catalog
// through the trace-level engine differential (the polarbench "traces"
// experiment) and demands byte identity everywhere.
func TestEngineDifferentialWorkloadTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload catalog; covered by the CI trace job")
	}
	// A rekey schedule makes the stateless arm also exercise the
	// epoch-advance and live-object remap paths under the differential.
	evalrun.SetRekeyEpoch(64)
	defer evalrun.SetRekeyEpoch(0)
	rows, err := evalrun.Traces("", 11)
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[string]int{}
	for _, r := range rows {
		byMode[r.Mode]++
		if !r.Identical {
			t.Errorf("%s/%s: engine traces diverged: %s", r.Mode, r.App, r.Divergence)
		}
		if r.Records == 0 {
			t.Errorf("%s/%s: empty trace", r.Mode, r.App)
		}
	}
	if byMode["metadata"] == 0 || byMode["stateless"] == 0 ||
		byMode["metadata"] != byMode["stateless"] {
		t.Fatalf("mode coverage = %v, want the full catalog per layout mode", byMode)
	}
}

// TestExecTraceParallelWidthIdentical gives each of eight tasks its own
// writer and runs the pool at width 1 and width 8: every task's trace
// must be byte-identical across widths. Scheduling may reorder task
// execution, but each trace is single-owner and seed-derived, so the
// bytes cannot care.
func TestExecTraceParallelWidthIdentical(t *testing.T) {
	cs := exploit.CaseStudies()[0]
	h, err := Harden(cs.Build(), nil)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := PrepareHardened(h)
	if err != nil {
		t.Fatal(err)
	}
	const tasks = 8
	collect := func(width int) [][]byte {
		t.Helper()
		bufs := make([]bytes.Buffer, tasks)
		if err := evalrun.ForEach(tasks, width, func(i int) error {
			xw := NewExecTrace(&bufs[i])
			seed := evalrun.TaskSeed(42, fmt.Sprintf("run/%d", i))
			if _, err := prep.Run(WithSeed(seed), WithWarnPolicy(),
				WithExecTrace(xw), WithArgs(cs.AttackArgs...)); err != nil {
				return err
			}
			return xw.Close()
		}); err != nil {
			t.Fatal(err)
		}
		out := make([][]byte, tasks)
		for i := range bufs {
			out[i] = bufs[i].Bytes()
		}
		return out
	}
	serial, parallel := collect(1), collect(tasks)
	for i := range serial {
		if len(serial[i]) == 0 {
			t.Fatalf("task %d: empty trace", i)
		}
		if !bytes.Equal(serial[i], parallel[i]) {
			t.Errorf("task %d: trace bytes differ between -parallel 1 and -parallel %d", i, tasks)
		}
	}
}

// TestExecTraceLocalizesSeedPerturbation perturbs the seed and checks
// the diff names the exact first divergent record — which must be the
// first seed-dependent event (a layout generation or randomized
// allocation), never a block or call (control flow is seed-independent
// for this module).
func TestExecTraceLocalizesSeedPerturbation(t *testing.T) {
	cs := exploit.CaseStudies()[0]
	a := traceCaseStudy(t, cs.Build(), EngineBytecode, 42, cs.AttackArgs)
	b := traceCaseStudy(t, cs.Build(), EngineBytecode, 43, cs.AttackArgs)
	ta, err := exectrace.Read(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	tb, err := exectrace.Read(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	d := exectrace.Diff(ta, tb)
	if d == nil {
		t.Fatal("different seeds produced identical traces")
	}
	// Exactness: every record before the reported index matches, and the
	// reported pair differs.
	for i := 0; i < d.Index; i++ {
		if ta.Records[i] != tb.Records[i] {
			t.Fatalf("records differ at %d, before reported divergence %d", i, d.Index)
		}
	}
	if d.A == nil || d.B == nil || *d.A == *d.B {
		t.Fatalf("reported divergence is not a divergence: %+v vs %+v", d.A, d.B)
	}
	switch d.A.Kind {
	case exectrace.KindBlock, exectrace.KindCall:
		t.Errorf("first divergence is control flow (%s), want a seed-dependent event", d.A.Kind)
	}
}
