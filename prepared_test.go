package polar

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"polar/internal/telemetry"
)

// TestPreparedConcurrentRuns drives the public compile-once API the way
// a server would: one PrepareHardened'd program, many simultaneous
// Run calls with distinct seeds. Layouts differ per run (that's the
// point of per-allocation randomization) but results must not, and —
// under -race — the shared program, class table, tuning map and
// layout-dedup pool must be free of write races. Every run attaches a
// private Telemetry (the polarun -parallel -metrics path): wiring each
// run's registry into the shared interner's chain-length histogram is
// exactly where a write/write race on the shared field would live.
func TestPreparedConcurrentRuns(t *testing.T) {
	m, err := Parse(facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Harden(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := PrepareHardened(h)
	if err != nil {
		t.Fatal(err)
	}
	input := []byte{7, 1, 2, 3}

	const workers = 8
	const runsPerWorker = 4
	results := make([]*Result, workers*runsPerWorker)
	tels := make([]*Telemetry, workers*runsPerWorker)
	errs := make([]error, workers*runsPerWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < runsPerWorker; r++ {
				i := w*runsPerWorker + r
				tels[i] = NewTelemetry()
				results[i], errs[i] = prep.Run(WithSeed(int64(i)+1), WithInput(input), WithTelemetry(tels[i]))
			}
		}(w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	want := results[0]
	if want.Value != 7*40 {
		t.Fatalf("hardened value = %d, want %d", want.Value, 7*40)
	}
	for i, r := range results[1:] {
		if r.Value != want.Value || !bytes.Equal(r.Output, want.Output) {
			t.Fatalf("run %d diverged: value %d vs %d", i+1, r.Value, want.Value)
		}
	}
	// The shared interner attaches the first run's chain-length
	// histogram for its lifetime; merging every per-run registry must
	// therefore recover all Intern observations, one per olr_malloc.
	merged := NewTelemetry()
	var allocs, interns uint64
	for i, tel := range tels {
		if err := merged.Registry.Merge(tel.Registry.Snapshot()); err != nil {
			t.Fatalf("merging run %d registry: %v", i, err)
		}
		allocs += results[i].Runtime.Allocs
	}
	interns = merged.Registry.Snapshot().Histograms[telemetry.MetricInternChainLen].Count
	if allocs == 0 || interns != allocs {
		t.Fatalf("intern-chain observations = %d, want one per alloc (%d)", interns, allocs)
	}
}

// TestPreparedMatchesRunHardened pins the compat contract: the one-shot
// RunHardened and an explicit Prepare+Run must agree bit-for-bit for
// the same seed.
func TestPreparedMatchesRunHardened(t *testing.T) {
	build := func() *Hardened {
		m, err := Parse(facadeSrc)
		if err != nil {
			t.Fatal(err)
		}
		h, err := Harden(m, nil)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	input := []byte{7, 1, 2, 3}
	one, err := RunHardened(build(), WithSeed(23), WithInput(input))
	if err != nil {
		t.Fatal(err)
	}
	prep, err := PrepareHardened(build())
	if err != nil {
		t.Fatal(err)
	}
	two, err := prep.Run(WithSeed(23), WithInput(input))
	if err != nil {
		t.Fatal(err)
	}
	a := fmt.Sprintf("%d %q %s %s", one.Value, one.Output, one.VM, one.Runtime)
	b := fmt.Sprintf("%d %q %s %s", two.Value, two.Output, two.VM, two.Runtime)
	if a != b {
		t.Fatalf("Prepare+Run diverged from RunHardened:\n%s\n%s", a, b)
	}
}
