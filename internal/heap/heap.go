// Package heap implements the simulated heap allocator underneath the
// POLaR virtual machine.
//
// The allocator mimics the behaviour that matters for the paper's
// security experiments: freed chunks are recycled last-in-first-out per
// size class, so a use-after-free attacker who frees an object and
// immediately allocates a same-sized buffer gets the same address back —
// exactly the reallocation primitive the paper's §III.A.2 exploit
// scenario requires. An optional quarantine delays reuse, modelling the
// redzone-style mitigations discussed in §VII.C.
package heap

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"polar/internal/telemetry"
)

// Error sentinels. Callers match with errors.Is.
var (
	ErrOutOfMemory = errors.New("heap: out of memory")
	ErrInvalidFree = errors.New("heap: free of non-allocated address")
	ErrDoubleFree  = errors.New("heap: double free")
	ErrBadSize     = errors.New("heap: invalid allocation size")
)

// sizeClasses are the chunk sizes the allocator hands out. Requests are
// rounded up to the nearest class; larger requests get exact-size
// "large" chunks.
var sizeClasses = []int{16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 1024, 2048, 4096, 8192, 16384, 32768}

// Stats holds allocator counters.
type Stats struct {
	Allocs     uint64
	Frees      uint64
	BytesLive  uint64
	BytesPeak  uint64
	Reuses     uint64 // allocations served from a free list
	FreshCarve uint64 // allocations carved from fresh arena space
}

type chunk struct {
	addr uint64
	size int // usable size (== size class or exact for large)
	live bool
}

// Allocator is a segregated-freelist bump allocator over a flat address
// range [base, base+limit). The zero value is not usable; call New.
type Allocator struct {
	base    uint64
	next    uint64
	limit   uint64
	chunks  map[uint64]*chunk // addr -> chunk (live and freed)
	free    map[int][]uint64  // size class -> LIFO free stack
	largeFr map[int][]uint64  // exact size -> free stack for large chunks
	quarLen int               // quarantine length (0 = immediate reuse)
	quarQ   []uint64          // FIFO quarantine of freed addrs
	// rng, when non-nil, randomizes placement: free-list picks are
	// uniform instead of LIFO and fresh carves get random gaps — the
	// inter-chunk (heap-layout) randomization of §VII.B, implemented
	// here to demonstrate its orthogonality to in-object randomization.
	rng   *rand.Rand
	stats Stats

	// sizeHist, when non-nil, observes the requested size of every
	// allocation (instrumented or raw — everything funnels through
	// Alloc) into the unified metrics registry.
	sizeHist *telemetry.Histogram
}

// Option configures an Allocator.
type Option func(*Allocator)

// WithQuarantine delays reuse of freed chunks until n further frees have
// occurred (0 disables, the default).
func WithQuarantine(n int) Option {
	return func(a *Allocator) { a.quarLen = n }
}

// WithRandomPlacement enables inter-chunk randomization (§VII.B): freed
// chunks are reused in random order and fresh chunks are carved with
// random gaps, making the relative distance between allocations
// unpredictable without any code instrumentation.
func WithRandomPlacement(seed int64) Option {
	return func(a *Allocator) { a.rng = rand.New(rand.NewSource(seed)) }
}

// WithTelemetry attaches the observability layer: the allocator feeds
// the allocation-size histogram. Disabled telemetry (the default) costs
// one branch per allocation.
func WithTelemetry(t *telemetry.Telemetry) Option {
	return func(a *Allocator) {
		if t != nil {
			a.sizeHist = t.Registry.Histogram(telemetry.MetricHeapAllocSize, telemetry.AllocSizeBuckets)
		}
	}
}

// New returns an allocator managing [base, base+limit).
func New(base, limit uint64, opts ...Option) *Allocator {
	a := &Allocator{
		base:    base,
		next:    base,
		limit:   base + limit,
		chunks:  make(map[uint64]*chunk),
		free:    make(map[int][]uint64),
		largeFr: make(map[int][]uint64),
	}
	for _, o := range opts {
		o(a)
	}
	return a
}

func classFor(n int) int {
	for _, c := range sizeClasses {
		if n <= c {
			return c
		}
	}
	return n // large: exact size, 16-aligned by caller path
}

// Alloc returns the base address of a fresh chunk of at least size
// bytes. The chunk contents are NOT zeroed when recycled — deliberate,
// so stale data survives into re-allocations as on a real heap.
func (a *Allocator) Alloc(size int) (uint64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("%w: %d", ErrBadSize, size)
	}
	if a.sizeHist != nil {
		a.sizeHist.Observe(float64(size))
	}
	cls := classFor(size)
	// Serve from free list first (LIFO).
	var list map[int][]uint64
	if cls > sizeClasses[len(sizeClasses)-1] {
		cls = alignUp16(cls)
		list = a.largeFr
	} else {
		list = a.free
	}
	if st := list[cls]; len(st) > 0 {
		pick := len(st) - 1
		if a.rng != nil {
			pick = a.rng.Intn(len(st))
		}
		addr := st[pick]
		st[pick] = st[len(st)-1]
		list[cls] = st[:len(st)-1]
		c := a.chunks[addr]
		c.live = true
		a.stats.Allocs++
		a.stats.Reuses++
		a.addLive(uint64(c.size))
		return addr, nil
	}
	// Carve fresh space (with a random inter-chunk gap when placement
	// randomization is on).
	addr := alignUp16u(a.next)
	if a.rng != nil {
		addr += uint64(a.rng.Intn(8)) * 16
	}
	if addr+uint64(cls) > a.limit {
		return 0, fmt.Errorf("%w: need %d bytes", ErrOutOfMemory, cls)
	}
	a.next = addr + uint64(cls)
	c := &chunk{addr: addr, size: cls, live: true}
	a.chunks[addr] = c
	a.stats.Allocs++
	a.stats.FreshCarve++
	a.addLive(uint64(cls))
	return addr, nil
}

func (a *Allocator) addLive(n uint64) {
	a.stats.BytesLive += n
	if a.stats.BytesLive > a.stats.BytesPeak {
		a.stats.BytesPeak = a.stats.BytesLive
	}
}

// Free releases the chunk at addr.
func (a *Allocator) Free(addr uint64) error {
	c, ok := a.chunks[addr]
	if !ok {
		return fmt.Errorf("%w: 0x%x", ErrInvalidFree, addr)
	}
	if !c.live {
		return fmt.Errorf("%w: 0x%x", ErrDoubleFree, addr)
	}
	c.live = false
	a.stats.Frees++
	a.stats.BytesLive -= uint64(c.size)
	if a.quarLen > 0 {
		a.quarQ = append(a.quarQ, addr)
		if len(a.quarQ) > a.quarLen {
			rel := a.quarQ[0]
			a.quarQ = a.quarQ[1:]
			a.release(a.chunks[rel])
		}
		return nil
	}
	a.release(c)
	return nil
}

func (a *Allocator) release(c *chunk) {
	if c.size > sizeClasses[len(sizeClasses)-1] {
		a.largeFr[c.size] = append(a.largeFr[c.size], c.addr)
	} else {
		a.free[c.size] = append(a.free[c.size], c.addr)
	}
}

// SizeOf returns the usable size of the chunk at addr and whether it is
// currently live. ok is false if addr is not a chunk base.
func (a *Allocator) SizeOf(addr uint64) (size int, live, ok bool) {
	c, found := a.chunks[addr]
	if !found {
		return 0, false, false
	}
	return c.size, c.live, true
}

// FindChunk locates the chunk containing addr (not only chunk bases).
// It is a linear probe backwards over 16-byte alignment slots, bounded
// by the maximum size class, so it is intended for diagnostics and
// taint attribution, not hot paths.
func (a *Allocator) FindChunk(addr uint64) (base uint64, size int, live, ok bool) {
	probe := addr &^ 15
	maxBack := uint64(sizeClasses[len(sizeClasses)-1])
	for back := uint64(0); back <= maxBack; back += 16 {
		if probe < back+a.base {
			break
		}
		p := probe - back
		if c, found := a.chunks[p]; found {
			if addr < c.addr+uint64(c.size) {
				return c.addr, c.size, c.live, true
			}
			return 0, 0, false, false
		}
	}
	return 0, 0, false, false
}

// ChunkInfo describes one chunk for diagnostics (the heap-neighborhood
// section of forensic dumps).
type ChunkInfo struct {
	Base uint64
	Size int
	Live bool
}

// Adjacent returns the chunk containing addr (when there is one)
// together with up to k address-adjacent chunks on each side, in
// ascending base order. It sorts the full chunk table, so like
// FindChunk it is for diagnostics — the violation path — never hot
// paths.
func (a *Allocator) Adjacent(addr uint64, k int) []ChunkInfo {
	if len(a.chunks) == 0 || k < 0 {
		return nil
	}
	bases := make([]uint64, 0, len(a.chunks))
	for b := range a.chunks {
		bases = append(bases, b)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	// idx: the chunk containing addr, or the nearest chunk above it.
	idx := sort.Search(len(bases), func(i int) bool {
		c := a.chunks[bases[i]]
		return addr < c.addr+uint64(c.size)
	})
	if idx == len(bases) {
		idx = len(bases) - 1 // addr above every chunk: anchor on the top
	}
	lo, hi := idx-k, idx+k+1
	if lo < 0 {
		lo = 0
	}
	if hi > len(bases) {
		hi = len(bases)
	}
	out := make([]ChunkInfo, 0, hi-lo)
	for _, b := range bases[lo:hi] {
		c := a.chunks[b]
		out = append(out, ChunkInfo{Base: c.addr, Size: c.size, Live: c.live})
	}
	return out
}

// Contains reports whether addr lies in the managed range.
func (a *Allocator) Contains(addr uint64) bool { return addr >= a.base && addr < a.limit }

// Stats returns a copy of the allocator counters.
func (a *Allocator) Stats() Stats { return a.stats }

// String renders the counters as a one-line key=value summary.
func (s Stats) String() string {
	return fmt.Sprintf("allocs=%d frees=%d bytes-live=%d bytes-peak=%d reuses=%d fresh-carves=%d",
		s.Allocs, s.Frees, s.BytesLive, s.BytesPeak, s.Reuses, s.FreshCarve)
}

// MarshalJSON implements json.Marshaler with stable snake_case keys.
func (s Stats) MarshalJSON() ([]byte, error) {
	return json.Marshal(map[string]uint64{
		"allocs":       s.Allocs,
		"frees":        s.Frees,
		"bytes_live":   s.BytesLive,
		"bytes_peak":   s.BytesPeak,
		"reuses":       s.Reuses,
		"fresh_carves": s.FreshCarve,
	})
}

// Publish snapshots the counters into a telemetry registry under the
// "heap." prefix.
func (s Stats) Publish(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("heap.allocs").Set(s.Allocs)
	reg.Counter("heap.frees").Set(s.Frees)
	reg.Counter("heap.reuses").Set(s.Reuses)
	reg.Counter("heap.fresh_carves").Set(s.FreshCarve)
	reg.Gauge("heap.bytes_live").Set(float64(s.BytesLive))
	reg.Gauge("heap.bytes_peak").Set(float64(s.BytesPeak))
}

// LiveCount returns the number of live chunks (O(n); for tests).
func (a *Allocator) LiveCount() int {
	n := 0
	for _, c := range a.chunks {
		if c.live {
			n++
		}
	}
	return n
}

// Reset returns the allocator to its initial empty state, keeping
// configuration.
func (a *Allocator) Reset() {
	a.next = a.base
	a.chunks = make(map[uint64]*chunk)
	a.free = make(map[int][]uint64)
	a.largeFr = make(map[int][]uint64)
	a.quarQ = nil
	a.stats = Stats{}
}

func alignUp16(n int) int { return (n + 15) &^ 15 }

func alignUp16u(n uint64) uint64 { return (n + 15) &^ 15 }
