package heap

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"polar/internal/telemetry"
)

func newTestAllocator(opts ...Option) *Allocator {
	return New(0x1000, 1<<20, opts...)
}

func TestAllocBasic(t *testing.T) {
	a := newTestAllocator()
	p, err := a.Alloc(24)
	if err != nil {
		t.Fatal(err)
	}
	if p%16 != 0 {
		t.Errorf("address %#x not 16-aligned", p)
	}
	size, live, ok := a.SizeOf(p)
	if !ok || !live {
		t.Fatalf("SizeOf(%#x) = %d %v %v", p, size, live, ok)
	}
	if size < 24 {
		t.Errorf("usable size %d < requested 24", size)
	}
}

func TestAllocRejectsBadSizes(t *testing.T) {
	a := newTestAllocator()
	for _, n := range []int{0, -1, -100} {
		if _, err := a.Alloc(n); !errors.Is(err, ErrBadSize) {
			t.Errorf("Alloc(%d) = %v, want ErrBadSize", n, err)
		}
	}
}

func TestFreeErrors(t *testing.T) {
	a := newTestAllocator()
	if err := a.Free(0xdead); !errors.Is(err, ErrInvalidFree) {
		t.Errorf("free of junk = %v, want ErrInvalidFree", err)
	}
	p, _ := a.Alloc(32)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); !errors.Is(err, ErrDoubleFree) {
		t.Errorf("double free = %v, want ErrDoubleFree", err)
	}
}

// TestLIFOReuse is the property the UAF experiments rely on: freeing a
// chunk and allocating the same size class immediately returns the same
// address.
func TestLIFOReuse(t *testing.T) {
	a := newTestAllocator()
	p, _ := a.Alloc(48)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	q, _ := a.Alloc(40) // same class (48)
	if q != p {
		t.Fatalf("no LIFO reuse: freed %#x, got %#x", p, q)
	}
	st := a.Stats()
	if st.Reuses != 1 {
		t.Errorf("reuses = %d, want 1", st.Reuses)
	}
}

func TestQuarantineDelaysReuse(t *testing.T) {
	a := newTestAllocator(WithQuarantine(2))
	p, _ := a.Alloc(32)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	q, _ := a.Alloc(32)
	if q == p {
		t.Fatal("quarantined chunk reused immediately")
	}
	// Push p out of the quarantine with two more frees.
	r1, _ := a.Alloc(32)
	r2, _ := a.Alloc(32)
	if err := a.Free(r1); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(r2); err != nil {
		t.Fatal(err)
	}
	got, _ := a.Alloc(32)
	if got != p {
		t.Fatalf("expected %#x released from quarantine, got %#x", p, got)
	}
}

func TestLargeAllocations(t *testing.T) {
	a := newTestAllocator()
	p, err := a.Alloc(100_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	q, err := a.Alloc(100_000)
	if err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Errorf("large chunk not reused: %#x vs %#x", p, q)
	}
}

func TestOutOfMemory(t *testing.T) {
	a := New(0x1000, 1024)
	if _, err := a.Alloc(512); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(4096); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("want ErrOutOfMemory, got %v", err)
	}
}

func TestFindChunk(t *testing.T) {
	a := newTestAllocator()
	p, _ := a.Alloc(64)
	base, size, live, ok := a.FindChunk(p + 37)
	if !ok || base != p || !live || size < 64 {
		t.Fatalf("FindChunk(interior) = %#x %d %v %v", base, size, live, ok)
	}
	if _, _, _, ok := a.FindChunk(p + 1<<19); ok {
		t.Error("FindChunk found a chunk in untouched space")
	}
}

func TestStatsAndReset(t *testing.T) {
	a := newTestAllocator()
	p1, _ := a.Alloc(32)
	p2, _ := a.Alloc(128)
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.Allocs != 2 || st.Frees != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.BytesPeak < st.BytesLive {
		t.Errorf("peak %d < live %d", st.BytesPeak, st.BytesLive)
	}
	if a.LiveCount() != 1 {
		t.Errorf("live count = %d, want 1", a.LiveCount())
	}
	_ = p2
	a.Reset()
	if a.LiveCount() != 0 || a.Stats().Allocs != 0 {
		t.Error("reset did not clear state")
	}
}

// TestAllocatorInvariantsQuick drives random alloc/free sequences and
// checks: no two live chunks overlap, addresses stay in range, and
// SizeOf is consistent.
func TestAllocatorInvariantsQuick(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := newTestAllocator()
		type chunkRec struct {
			addr uint64
			size int
		}
		var live []chunkRec
		for op := 0; op < 300; op++ {
			if len(live) == 0 || rng.Intn(3) != 0 {
				n := 1 + rng.Intn(300)
				p, err := a.Alloc(n)
				if err != nil {
					return false
				}
				if !a.Contains(p) {
					return false
				}
				sz, liveNow, ok := a.SizeOf(p)
				if !ok || !liveNow || sz < n {
					return false
				}
				live = append(live, chunkRec{p, sz})
			} else {
				i := rng.Intn(len(live))
				if err := a.Free(live[i].addr); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
		}
		// Overlap check over live chunks.
		for i := range live {
			for j := i + 1; j < len(live); j++ {
				aLo, aHi := live[i].addr, live[i].addr+uint64(live[i].size)
				bLo, bHi := live[j].addr, live[j].addr+uint64(live[j].size)
				if aLo < bHi && bLo < aHi {
					return false
				}
			}
		}
		return a.LiveCount() == len(live)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFindChunkLargeAllocationLimitation(t *testing.T) {
	// FindChunk probes at most the largest size class backwards; for
	// large chunks only addresses within that window resolve. This is a
	// documented diagnostic limitation, pinned here.
	a := newTestAllocator()
	p, err := a.Alloc(100_000)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, ok := a.FindChunk(p + 16); !ok {
		t.Error("near-base interior address of large chunk should resolve")
	}
	if _, _, _, ok := a.FindChunk(p + 90_000); ok {
		t.Error("far interior of large chunk unexpectedly resolved (update the doc if FindChunk improved)")
	}
}

// TestStatsPublishUnderReuse drives a free-then-realloc workload (the
// reuse-heavy pattern of the UAF experiments) and checks that
// Stats.Publish mirrors every counter and gauge into the registry and
// that the allocation-size histogram saw every allocation — the ones
// served from free lists as much as the fresh carves.
func TestStatsPublishUnderReuse(t *testing.T) {
	tel := telemetry.New()
	a := newTestAllocator(WithTelemetry(tel))
	const rounds = 64
	for i := 0; i < rounds; i++ {
		p, err := a.Alloc(40)
		if err != nil {
			t.Fatal(err)
		}
		q, err := a.Alloc(100)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
		if err := a.Free(q); err != nil {
			t.Fatal(err)
		}
	}
	st := a.Stats()
	if st.Allocs != 2*rounds || st.Frees != 2*rounds {
		t.Fatalf("allocs=%d frees=%d, want %d each", st.Allocs, st.Frees, 2*rounds)
	}
	// After the first round every allocation is a free-list hit, so the
	// workload exercises both serving paths and they partition Allocs.
	if st.Reuses == 0 || st.FreshCarve == 0 {
		t.Fatalf("reuses=%d fresh=%d, want both nonzero", st.Reuses, st.FreshCarve)
	}
	if st.Reuses+st.FreshCarve != st.Allocs {
		t.Fatalf("reuses+fresh = %d, want allocs %d", st.Reuses+st.FreshCarve, st.Allocs)
	}
	if st.BytesLive != 0 {
		t.Fatalf("bytes live = %d after freeing everything", st.BytesLive)
	}
	if st.BytesPeak == 0 {
		t.Fatal("bytes peak not tracked")
	}

	st.Publish(tel.Registry)
	snap := tel.Registry.Snapshot()
	for name, want := range map[string]uint64{
		"heap.allocs":       st.Allocs,
		"heap.frees":        st.Frees,
		"heap.reuses":       st.Reuses,
		"heap.fresh_carves": st.FreshCarve,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}
	if got := snap.Gauges["heap.bytes_live"]; got != 0 {
		t.Errorf("gauge heap.bytes_live = %v, want 0", got)
	}
	if got := snap.Gauges["heap.bytes_peak"]; got != float64(st.BytesPeak) {
		t.Errorf("gauge heap.bytes_peak = %v, want %d", got, st.BytesPeak)
	}

	hist, ok := snap.Histograms[telemetry.MetricHeapAllocSize]
	if !ok {
		t.Fatalf("histogram %s not registered", telemetry.MetricHeapAllocSize)
	}
	if hist.Count != st.Allocs {
		t.Errorf("size histogram count = %d, want every allocation (%d)", hist.Count, st.Allocs)
	}
	if want := float64(rounds * (40 + 100)); hist.Sum != want {
		t.Errorf("size histogram sum = %v, want %v (requested, not rounded, sizes)", hist.Sum, want)
	}
}
