// Package instrument implements the POLaR LLVM-pass analogue (§IV.A.2):
// it rewrites a module so that every allocation, deallocation, member
// access and memory copy involving a randomization-target class goes
// through the olr_* runtime ABI.
//
// Rewrites performed (Fig. 4):
//
//	%p = alloc %T            ->  %p = call @olr_malloc(<hash T>)
//	free %p        (T-typed) ->  call @olr_free(%p)
//	%f = fieldptr %T, %p, i  ->  %f = call @olr_getptr(%p, i, <hash T>)
//	memcpy %d, %s, n (typed) ->  call @olr_memcpy(%d, %s, n, <hash T>)
//
// Raw-pointer arithmetic (ptradd) is deliberately left alone: code that
// "manually calculates the offset of a member variable" is outside what
// the pass can see, mirroring the paper's §VI.B compatibility
// discussion.
package instrument

import (
	"fmt"

	"polar/internal/classinfo"
	"polar/internal/ir"
	"polar/internal/telemetry"
)

// Result carries the hardened module and the CIE table embedded in it.
type Result struct {
	Module *ir.Module
	Table  *classinfo.Table
	// Rewrites counts instruction rewrites by kind (for reporting).
	Rewrites RewriteCounts
}

// RewriteCounts tallies what the pass changed.
type RewriteCounts struct {
	Allocs    int
	Frees     int
	FieldPtrs int
	Memcpys   int
	// SkippedRawAccess counts ptradd instructions whose base operand is
	// a known target-class pointer — accesses the pass cannot make safe
	// (§VI.B); reported so users can audit them.
	SkippedRawAccess int
}

// Apply clones m and instruments accesses to the target classes. A nil
// targets slice selects every struct in the module ("applied POLaR to
// the entire set of objects", §V.A); an explicit empty, non-nil slice
// selects none.
func Apply(m *ir.Module, targets []string) (*Result, error) {
	return ApplyTraced(m, targets, nil)
}

// ApplyTraced is Apply with pipeline-phase tracing: when tr is non-nil
// the CIE analysis and the rewrite pass are emitted as "cie" and
// "instrument" spans on the trace timeline.
func ApplyTraced(m *ir.Module, targets []string, tr *telemetry.Tracer) (*Result, error) {
	var sp *telemetry.Span
	if tr != nil {
		sp = tr.Begin("cie", "pipeline")
	}
	table, err := classinfo.FromModule(m, targets)
	sp.End()
	if err != nil {
		return nil, err
	}
	if tr != nil {
		sp = tr.Begin("instrument", "pipeline")
	}
	out := ir.Clone(m)
	res := &Result{Module: out, Table: retable(out, table)}
	for _, f := range out.Funcs {
		res.instrumentFunc(f)
	}
	res.Table.EmbedInModule(out)
	if err := ir.Validate(out); err != nil {
		return nil, fmt.Errorf("instrument: produced invalid module: %w", err)
	}
	sp.End()
	return res, nil
}

// retable rebuilds the class table against the cloned module's struct
// identities so Table.Has works by identity on the output module.
func retable(out *ir.Module, t *classinfo.Table) *classinfo.Table {
	var sts []*ir.StructType
	for _, c := range t.Classes() {
		if st, ok := out.Structs[c.Name()]; ok {
			sts = append(sts, st)
		}
	}
	return classinfo.NewTable(sts...)
}

// regTypes infers, per function, which registers statically hold
// pointers to target classes. The builder produces single-assignment
// registers, so one forward pass over blocks suffices.
func (r *Result) regTypes(f *ir.Func) map[int]*ir.StructType {
	types := make(map[int]*ir.StructType)
	note := func(reg int, t ir.Type) {
		if pt, ok := t.(ir.PtrType); ok {
			if st, ok := pt.Elem.(*ir.StructType); ok && r.Table.Has(st) {
				types[reg] = st
			}
		}
	}
	for i, p := range f.Params {
		note(i, p.Type)
	}
	for _, blk := range f.Blocks {
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			switch in.Op {
			case ir.OpAlloc, ir.OpLocal:
				if in.Struct != nil && r.Table.Has(in.Struct) && len(in.Args) == 0 {
					types[in.Dest] = in.Struct
				}
			case ir.OpLoad:
				note(in.Dest, in.Type)
			case ir.OpMov:
				if in.Args[0].Kind == ir.ValReg {
					if st, ok := types[in.Args[0].Reg]; ok {
						types[in.Dest] = st
					}
				}
			case ir.OpCall:
				if callee := moduleFunc(r.Module, in.Callee); callee != nil && in.Dest >= 0 {
					note(in.Dest, callee.Ret)
				}
			}
		}
	}
	return types
}

func moduleFunc(m *ir.Module, name string) *ir.Func {
	return m.Func(name)
}

func (r *Result) instrumentFunc(f *ir.Func) {
	types := r.regTypes(f)
	regStruct := func(v ir.Value) *ir.StructType {
		if v.Kind != ir.ValReg {
			return nil
		}
		return types[v.Reg]
	}
	for _, blk := range f.Blocks {
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			switch in.Op {
			case ir.OpAlloc:
				// Only single-object struct allocations are randomized;
				// array allocations of structs keep static layout (the
				// paper's serializable-buffer caveat, §VI.B).
				if in.Struct != nil && r.Table.Has(in.Struct) && len(in.Args) == 0 {
					cls, _ := r.Table.ByName(in.Struct.Name)
					*in = ir.Instr{
						Op: ir.OpCall, Dest: in.Dest, Callee: "olr_malloc",
						Args: []ir.Value{ir.Const(int64(cls.Hash))},
					}
					r.Rewrites.Allocs++
				}
			case ir.OpFree:
				if st := regStruct(in.Args[0]); st != nil {
					*in = ir.Instr{
						Op: ir.OpCall, Dest: -1, Callee: "olr_free",
						Args: []ir.Value{in.Args[0]},
					}
					r.Rewrites.Frees++
				}
			case ir.OpFieldPtr:
				if r.Table.Has(in.Struct) {
					cls, _ := r.Table.ByName(in.Struct.Name)
					*in = ir.Instr{
						Op: ir.OpCall, Dest: in.Dest, Callee: "olr_getptr",
						Args: []ir.Value{in.Args[0], ir.Const(int64(in.Field)), ir.Const(int64(cls.Hash))},
					}
					r.Rewrites.FieldPtrs++
				}
			case ir.OpMemcpy:
				st := regStruct(in.Args[1])
				if st == nil {
					st = regStruct(in.Args[0])
				}
				if st != nil {
					cls, _ := r.Table.ByName(st.Name)
					*in = ir.Instr{
						Op: ir.OpCall, Dest: -1, Callee: "olr_memcpy",
						Args: []ir.Value{in.Args[0], in.Args[1], in.Args[2], ir.Const(int64(cls.Hash))},
					}
					r.Rewrites.Memcpys++
				}
			case ir.OpPtrAdd:
				if regStruct(in.Args[0]) != nil {
					r.Rewrites.SkippedRawAccess++
				}
			}
		}
	}
}
