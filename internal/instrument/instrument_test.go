package instrument

import (
	"testing"

	"polar/internal/ir"
)

func buildVictimModule() *ir.Module {
	m := ir.NewModule("victim")
	st := m.MustStruct(ir.NewStruct("T",
		ir.Field{Name: "vt", Type: ir.Fptr},
		ir.Field{Name: "a", Type: ir.I64},
	))
	other := m.MustStruct(ir.NewStruct("U", ir.Field{Name: "x", Type: ir.I32}))
	_ = other

	b := ir.NewFunc(m, "main", ir.I64)
	p := b.Alloc(st)
	f := b.FieldPtrName(st, p, "a")
	b.Store(ir.I64, ir.Const(1), f)
	q := b.Alloc(st)
	b.Memcpy(q, p, ir.Const(int64(st.Size())))
	raw := b.PtrAdd(p, ir.Const(8)) // manual offset arithmetic
	_ = raw
	b.Free(p)
	b.Free(q)
	u := b.Alloc(m.Structs["U"])
	uf := b.FieldPtrName(m.Structs["U"], u, "x")
	b.Store(ir.I32, ir.Const(2), uf)
	arr := b.AllocN(st, ir.Const(4)) // array alloc: must NOT be rewritten
	_ = arr
	b.Ret(ir.Const(0))
	return m
}

func countCalls(m *ir.Module, callee string) int {
	n := 0
	for _, f := range m.Funcs {
		for _, blk := range f.Blocks {
			for i := range blk.Instrs {
				if blk.Instrs[i].Op == ir.OpCall && blk.Instrs[i].Callee == callee {
					n++
				}
			}
		}
	}
	return n
}

func TestApplyRewritesTargetedOps(t *testing.T) {
	m := buildVictimModule()
	res, err := Apply(m, []string{"T"})
	if err != nil {
		t.Fatal(err)
	}
	if got := countCalls(res.Module, "olr_malloc"); got != 2 {
		t.Errorf("olr_malloc calls = %d, want 2 (array alloc must be skipped)", got)
	}
	if got := countCalls(res.Module, "olr_getptr"); got != 1 {
		t.Errorf("olr_getptr calls = %d, want 1 (U access untouched)", got)
	}
	if got := countCalls(res.Module, "olr_free"); got != 2 {
		t.Errorf("olr_free calls = %d, want 2", got)
	}
	if got := countCalls(res.Module, "olr_memcpy"); got != 1 {
		t.Errorf("olr_memcpy calls = %d, want 1", got)
	}
	if res.Rewrites.Allocs != 2 || res.Rewrites.FieldPtrs != 1 ||
		res.Rewrites.Frees != 2 || res.Rewrites.Memcpys != 1 {
		t.Errorf("rewrite counts = %+v", res.Rewrites)
	}
	if res.Rewrites.SkippedRawAccess != 1 {
		t.Errorf("skipped raw accesses = %d, want 1 (the ptradd)", res.Rewrites.SkippedRawAccess)
	}
}

func TestApplyDoesNotMutateOriginal(t *testing.T) {
	m := buildVictimModule()
	before := ir.Print(m)
	if _, err := Apply(m, nil); err != nil {
		t.Fatal(err)
	}
	if after := ir.Print(m); after != before {
		t.Fatal("Apply mutated the input module")
	}
}

func TestApplyEmbedsClassTable(t *testing.T) {
	m := buildVictimModule()
	res, err := Apply(m, []string{"T"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Module.ClassTable) != 1 {
		t.Fatalf("class table entries = %d, want 1", len(res.Module.ClassTable))
	}
	if res.Module.ClassTable[0].Struct.Name != "T" {
		t.Errorf("embedded class = %s", res.Module.ClassTable[0].Struct.Name)
	}
	// The embedded struct must be the clone's, not the original's.
	if res.Module.ClassTable[0].Struct == m.Structs["T"] {
		t.Error("class table references the original module's struct")
	}
}

func TestApplyEmptyTargetsRewritesNothing(t *testing.T) {
	m := buildVictimModule()
	res, err := Apply(m, []string{})
	if err != nil {
		t.Fatal(err)
	}
	for _, callee := range []string{"olr_malloc", "olr_getptr", "olr_free", "olr_memcpy"} {
		if n := countCalls(res.Module, callee); n != 0 {
			t.Errorf("%s calls = %d with empty target set", callee, n)
		}
	}
}

func TestApplyUnknownTarget(t *testing.T) {
	m := buildVictimModule()
	if _, err := Apply(m, []string{"Ghost"}); err == nil {
		t.Fatal("unknown target accepted")
	}
}

// TestTypePropagationThroughLoadsAndCalls checks that pointer types
// flow through typed loads, movs and function returns so frees get
// instrumented.
func TestTypePropagationThroughLoadsAndCalls(t *testing.T) {
	m := ir.NewModule("prop")
	st := m.MustStruct(ir.NewStruct("T", ir.Field{Name: "a", Type: ir.I64}))
	if _, err := m.AddGlobal("slot", 8, nil); err != nil {
		t.Fatal(err)
	}

	mk := ir.NewFunc(m, "make", ir.PtrTo(st))
	p := mk.Alloc(st)
	mk.Ret(p)

	b := ir.NewFunc(m, "main", ir.I64)
	q := b.Call("make")
	b.Store(ir.I64, q, ir.Global("slot"))
	q2 := b.Load(ir.PtrTo(st), ir.Global("slot"))
	q3 := b.Mov(q2)
	b.Free(q3) // via call-return -> store/load -> mov
	b.Ret(ir.Const(0))

	res, err := Apply(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rewrites.Frees != 1 {
		t.Errorf("free through load+mov chain not instrumented (frees=%d)", res.Rewrites.Frees)
	}
	// Param-typed pointers propagate too.
	m2 := ir.NewModule("prop2")
	st2 := m2.MustStruct(ir.NewStruct("T", ir.Field{Name: "a", Type: ir.I64}))
	fb := ir.NewFunc(m2, "drop", ir.Void, ir.Param{Name: "p", Type: ir.PtrTo(st2)})
	fb.Free(fb.ParamReg(0))
	fb.Ret()
	mb := ir.NewFunc(m2, "main", ir.I64)
	pp := mb.Alloc(st2)
	mb.CallVoid("drop", pp)
	mb.Ret(ir.Const(0))
	res2, err := Apply(m2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rewrites.Frees != 1 {
		t.Errorf("free through typed param not instrumented (frees=%d)", res2.Rewrites.Frees)
	}
}

func TestApplyOutputValidates(t *testing.T) {
	m := buildVictimModule()
	res, err := Apply(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.Validate(res.Module); err != nil {
		t.Fatal(err)
	}
	// The hardened module must also survive a print/parse round trip.
	if _, err := ir.Parse(ir.Print(res.Module)); err != nil {
		t.Fatalf("hardened module does not re-parse: %v", err)
	}
}

// TestNoRandomAnnotationExcludesClass: the __no_randomize_layout
// analogue (§II.C) wins even over an explicit target list, and survives
// the textual round trip.
func TestNoRandomAnnotationExcludesClass(t *testing.T) {
	m := ir.NewModule("anno")
	wire := ir.NewStruct("WireHeader",
		ir.Field{Name: "magic", Type: ir.I32},
		ir.Field{Name: "len", Type: ir.I32},
	)
	wire.NoRandom = true
	m.MustStruct(wire)
	st := m.MustStruct(ir.NewStruct("T", ir.Field{Name: "x", Type: ir.I64}))

	b := ir.NewFunc(m, "main", ir.I64)
	w := b.Alloc(wire)
	b.Store(ir.I32, ir.Const(1), b.FieldPtrName(wire, w, "magic"))
	p := b.Alloc(st)
	b.Store(ir.I64, ir.Const(2), b.FieldPtr(st, p, 0))
	b.Ret(ir.Const(0))

	res, err := Apply(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Has(res.Module.Structs["WireHeader"]) {
		t.Fatal("annotated class entered the CIE table")
	}
	if res.Rewrites.Allocs != 1 || res.Rewrites.FieldPtrs != 1 {
		t.Fatalf("rewrites = %+v, want only T's sites", res.Rewrites)
	}
	// Explicit targeting cannot override the annotation.
	res2, err := Apply(m, []string{"WireHeader", "T"})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Table.Len() != 1 {
		t.Fatalf("annotation overridden: table has %d classes", res2.Table.Len())
	}
	// The tag round-trips through the textual form.
	back, err := ir.Parse(ir.Print(m))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Structs["WireHeader"].NoRandom || back.Structs["T"].NoRandom {
		t.Fatal("norandom tag lost or leaked in round trip")
	}
}
