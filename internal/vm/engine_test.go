package vm

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"polar/internal/ir"
	"polar/internal/telemetry/profile"
)

// richModule builds a module exercising every opcode — allocation,
// loads/stores of every width, the fused pairs (fieldptr+load,
// fieldptr+store, cmp+condbr), float ops, conversions, memcpy/memset,
// elemptr/ptradd, global and func-ref operands, recursion, builtins —
// so one differential run covers the whole lowering surface.
func richModule(t *testing.T) *ir.Module {
	t.Helper()
	m := ir.NewModule("rich")
	if _, err := m.AddGlobal("g", 64, []byte{0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x08}); err != nil {
		t.Fatal(err)
	}
	st := m.MustStruct(ir.NewStruct("Node",
		ir.Field{Name: "val", Type: ir.I64},
		ir.Field{Name: "small", Type: ir.I8},
		ir.Field{Name: "next", Type: ir.Raw},
	))

	fb := ir.NewFunc(m, "mix", ir.I64, ir.Param{Name: "n", Type: ir.I64})
	n := fb.ParamReg(0)
	small := fb.Cmp(ir.CmpLt, n, ir.Const(2))
	fb.If("base", small, func() { fb.Ret(n) }, nil)
	a := fb.Call("mix", fb.Bin(ir.BinSub, n, ir.Const(1)))
	b2 := fb.Call("mix", fb.Bin(ir.BinSub, n, ir.Const(2)))
	fb.Ret(fb.Bin(ir.BinAdd, a, b2))

	b := ir.NewFunc(m, "main", ir.I64, ir.Param{Name: "x", Type: ir.I64})
	sum := b.Local(ir.I64)
	b.Store(ir.I64, ir.Const(0), sum)

	// Heap object: fused fieldptr+store then fieldptr+load, with a
	// negative i8 store to exercise sign-extending fused loads.
	node := b.Alloc(st)
	b.Store(ir.I64, ir.Const(40), b.FieldPtr(st, node, 0))
	b.Store(ir.I8, ir.Const(-6), b.FieldPtr(st, node, 1))
	v0 := b.Load(ir.I64, b.FieldPtr(st, node, 0))
	v1 := b.Load(ir.I8, b.FieldPtr(st, node, 1))
	b.Store(ir.I64, b.Bin(ir.BinAdd, v0, v1), sum)

	// Loop with fused cmp+condbr, elemptr indexing, memset/memcpy.
	arr := b.AllocN(ir.I64, ir.Const(8))
	b.Memset(arr, ir.Const(0), ir.Const(64))
	b.CountedLoop("fill", ir.Const(8), func(i ir.Value) {
		b.Store(ir.I64, b.Bin(ir.BinMul, i, i), b.ElemPtr(ir.I64, arr, i))
	})
	b.Memcpy(b.PtrAdd(arr, ir.Const(8)), arr, ir.Const(24))
	loopAcc := b.Load(ir.I64, b.ElemPtr(ir.I64, arr, ir.Const(3)))
	b.Store(ir.I64, b.Bin(ir.BinAdd, b.Load(ir.I64, sum), loopAcc), sum)

	// Floats, conversions, global and func-ref operands.
	f := b.FBin(ir.BinMul, b.ItoF(b.ParamReg(0)), ir.ConstF(1.5))
	fcmp := b.FCmp(ir.CmpGt, f, ir.ConstF(2.0))
	gv := b.Load(ir.I64, ir.Global("g"))
	slot := b.Local(ir.Fptr)
	b.Store(ir.Fptr, ir.FuncRef("mix"), slot)
	handle := b.Load(ir.Fptr, slot)
	hbit := b.Bin(ir.BinAnd, handle, ir.Const(0xff))
	mixed := b.Bin(ir.BinXor, gv, b.Bin(ir.BinAdd, b.FtoI(f), fcmp))
	b.Store(ir.I64, b.Bin(ir.BinAdd, b.Load(ir.I64, sum), b.Bin(ir.BinAnd, mixed, ir.Const(0xffff))), sum)
	b.Store(ir.I64, b.Bin(ir.BinAdd, b.Load(ir.I64, sum), hbit), sum)

	// Calls (recursion), builtins, input, mov, free.
	fib := b.Call("mix", ir.Const(10))
	inb := b.Call("input_byte", ir.Const(0))
	b.CallVoid("print_i64", fib)
	moved := b.Mov(fib)
	b.Free(node)
	b.Free(arr)
	total := b.Bin(ir.BinAdd, b.Load(ir.I64, sum), b.Bin(ir.BinAdd, moved, inb))
	b.Ret(total)
	return m
}

// runEngine executes the module on one engine and returns everything
// observable.
func runEngine(t *testing.T, m *ir.Module, e Engine, opts []Option, args ...int64) (*VM, int64, error) {
	t.Helper()
	v, err := New(ir.Clone(m), append([]Option{WithEngine(e)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	res, runErr := v.Run(args...)
	return v, res, runErr
}

func TestEnginesDifferentialRichProgram(t *testing.T) {
	m := richModule(t)
	opts := []Option{WithInput([]byte{9, 8, 7}), WithCoverage()}
	vb, rb, eb := runEngine(t, m, EngineBytecode, opts, 5)
	vl, rl, el := runEngine(t, m, EngineLegacy, opts, 5)
	if (eb == nil) != (el == nil) || (eb != nil && eb.Error() != el.Error()) {
		t.Fatalf("errors differ: bytecode=%v legacy=%v", eb, el)
	}
	if rb != rl {
		t.Fatalf("results differ: bytecode=%d legacy=%d", rb, rl)
	}
	if vb.Stats != vl.Stats {
		t.Fatalf("stats differ:\nbytecode %+v\nlegacy   %+v", vb.Stats, vl.Stats)
	}
	if string(vb.Output()) != string(vl.Output()) {
		t.Fatalf("outputs differ: %q vs %q", vb.Output(), vl.Output())
	}
	if !reflect.DeepEqual(vb.Coverage(), vl.Coverage()) {
		t.Fatal("coverage bitmaps differ between engines")
	}
}

// TestEnginesDifferentialFuelSweep holds both engines to identical
// behavior at every fuel value: the same success/error (same message,
// same site) and the same Stats, including across superinstruction
// boundaries where the bytecode engine must execute exactly half a
// fused pair before reporting exhaustion.
func TestEnginesDifferentialFuelSweep(t *testing.T) {
	m := richModule(t)
	// Find the total instruction count once, then sweep past it.
	v, err := New(ir.Clone(m), WithEngine(EngineLegacy))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Run(5); err != nil {
		t.Fatal(err)
	}
	total := v.Stats.Instructions
	if total == 0 || total > 40_000 {
		t.Fatalf("unexpected program length %d", total)
	}
	for fuel := uint64(0); fuel <= total+2; fuel++ {
		opts := []Option{WithFuel(fuel), WithInput([]byte{9, 8, 7})}
		vb, rb, eb := runEngine(t, m, EngineBytecode, opts, 5)
		vl, rl, el := runEngine(t, m, EngineLegacy, opts, 5)
		if (eb == nil) != (el == nil) || (eb != nil && eb.Error() != el.Error()) {
			t.Fatalf("fuel=%d: errors differ:\nbytecode: %v\nlegacy:   %v", fuel, eb, el)
		}
		if rb != rl {
			t.Fatalf("fuel=%d: results differ: %d vs %d", fuel, rb, rl)
		}
		if vb.Stats != vl.Stats {
			t.Fatalf("fuel=%d: stats differ:\nbytecode %+v\nlegacy   %+v", fuel, vb.Stats, vl.Stats)
		}
		if fuel < total && eb == nil {
			t.Fatalf("fuel=%d < total=%d but run succeeded", fuel, total)
		}
	}
}

// TestEnginesDifferentialFaults checks fault parity: same wrapped error
// text and same instruction counts when the program dies mid-block.
func TestEnginesDifferentialFaults(t *testing.T) {
	build := func(f func(b *ir.Builder, st *ir.StructType)) *ir.Module {
		m := ir.NewModule("faulty")
		st := m.MustStruct(ir.NewStruct("S", ir.Field{Name: "x", Type: ir.I64}))
		b := ir.NewFunc(m, "main", ir.I64)
		f(b, st)
		return m
	}
	cases := map[string]*ir.Module{
		"null-deref": build(func(b *ir.Builder, st *ir.StructType) {
			b.Ret(b.Load(ir.I64, ir.Const(16)))
		}),
		"fused-load-fault": build(func(b *ir.Builder, st *ir.StructType) {
			// fieldptr+load fuses; the load half faults in the null guard.
			p := b.FieldPtr(st, ir.Const(0x10), 0)
			b.Ret(b.Load(ir.I64, p))
		}),
		"fused-store-fault": build(func(b *ir.Builder, st *ir.StructType) {
			p := b.FieldPtr(st, ir.Const(0x10), 0)
			b.Store(ir.I64, ir.Const(1), p)
			b.Ret(ir.Const(0))
		}),
		"div-zero": build(func(b *ir.Builder, st *ir.StructType) {
			b.Ret(b.Bin(ir.BinDiv, ir.Const(3), ir.Const(0)))
		}),
		"double-free": build(func(b *ir.Builder, st *ir.StructType) {
			p := b.Alloc(st)
			b.Free(p)
			b.Free(p)
			b.Ret(ir.Const(0))
		}),
		"unknown-builtin": build(func(b *ir.Builder, st *ir.StructType) {
			b.Ret(b.Call("rt_no_such_builtin"))
		}),
		"abort": build(func(b *ir.Builder, st *ir.StructType) {
			b.CallVoid("rt_abort", ir.Const(3))
			b.Ret(ir.Const(0))
		}),
	}
	for name, m := range cases {
		vb, _, eb := runEngine(t, m, EngineBytecode, nil)
		vl, _, el := runEngine(t, m, EngineLegacy, nil)
		if eb == nil || el == nil {
			t.Fatalf("%s: expected both engines to fail, got bytecode=%v legacy=%v", name, eb, el)
		}
		if eb.Error() != el.Error() {
			t.Fatalf("%s: error text differs:\nbytecode: %v\nlegacy:   %v", name, eb, el)
		}
		if vb.Stats != vl.Stats {
			t.Fatalf("%s: stats differ:\nbytecode %+v\nlegacy   %+v", name, vb.Stats, vl.Stats)
		}
	}
}

// TestFusedIntermediateRegisterVisible: the fieldptr register of a
// fused pair must hold the derived pointer afterwards — later
// instructions (here: a second store through the same register) depend
// on it.
func TestFusedIntermediateRegisterVisible(t *testing.T) {
	m := ir.NewModule("fusedreg")
	st := m.MustStruct(ir.NewStruct("S", ir.Field{Name: "x", Type: ir.I64}))
	b := ir.NewFunc(m, "main", ir.I64)
	p := b.Alloc(st)
	fp := b.FieldPtr(st, p, 0) // fuses with the next load
	first := b.Load(ir.I64, fp)
	// Store the pointer value itself through the fused pair's register.
	b.Store(ir.I64, fp, fp)
	second := b.Load(ir.I64, fp)
	b.Ret(b.Bin(ir.BinAdd, first, b.Bin(ir.BinSub, second, fp)))
	for _, e := range []Engine{EngineBytecode, EngineLegacy} {
		got, err := mustVM(t, ir.Clone(m), WithEngine(e)).Run()
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if got != 0 {
			t.Fatalf("%v: got %d, want 0", e, got)
		}
	}
}

// TestBytecodeFallsBackForObservers: hooks and instruction tracing are
// tree-walker facilities; a bytecode-configured VM must transparently
// run legacy when they are attached (and still produce the events).
func TestBytecodeFallsBackForObservers(t *testing.T) {
	m := ir.NewModule("fallback")
	b := ir.NewFunc(m, "main", ir.I64)
	b.Ret(b.Bin(ir.BinAdd, ir.Const(1), ir.Const(2)))

	var tr strings.Builder
	v := mustVM(t, ir.Clone(m), WithEngine(EngineBytecode), WithTrace(&tr, 0))
	if v.useBytecode() {
		t.Fatal("instruction tracing must fall back to the tree-walker")
	}
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr.String(), "add 1, 2") {
		t.Fatalf("trace empty under fallback: %q", tr.String())
	}

	h := &countingHooks{}
	v2 := mustVM(t, ir.Clone(m), WithEngine(EngineBytecode), WithHooks(h))
	if v2.useBytecode() {
		t.Fatal("hooks must fall back to the tree-walker")
	}
	if _, err := v2.Run(); err != nil {
		t.Fatal(err)
	}
	if h.enters == 0 || h.bins == 0 {
		t.Fatalf("hooks not fired under fallback: %+v", h)
	}

	v3 := mustVM(t, ir.Clone(m), WithEngine(EngineBytecode))
	if !v3.useBytecode() {
		t.Fatal("plain bytecode VM should not fall back")
	}
}

type countingHooks struct {
	enters, bins int
}

func (h *countingHooks) Enter(fn *ir.Func, args []ir.Value)     { h.enters++ }
func (h *countingHooks) Exit(retArg *ir.Value, callerDest int)  {}
func (h *countingHooks) Load(dest int, addr uint64, size int)   {}
func (h *countingHooks) Store(src ir.Value, addr uint64, n int) {}
func (h *countingHooks) Bin(dest int, a, b ir.Value)            { h.bins++ }
func (h *countingHooks) Un(dest int, a ir.Value)                {}
func (h *countingHooks) PtrDerive(dest int, base ir.Value)      {}
func (h *countingHooks) Memcpy(dst, src uint64, n int)          {}
func (h *countingHooks) Memset(dst uint64, n int)               {}
func (h *countingHooks) CondBr(cond ir.Value)                   {}
func (h *countingHooks) Alloc(dest int, addr uint64, size int, st *ir.StructType) {
}
func (h *countingHooks) Free(addr uint64) {}
func (h *countingHooks) Builtin(name string, args []ir.Value, argVals []int64, ret int64, dest int) {
}

// TestProfilerAttributionConservation: with per-instruction
// attribution, total profiled cycles must equal Stats.Instructions
// exactly — in both engines — and the per-site profiles must agree
// between engines.
func TestProfilerAttributionConservation(t *testing.T) {
	m := richModule(t)
	profiles := make(map[Engine][]profile.SiteSample)
	for _, e := range []Engine{EngineBytecode, EngineLegacy} {
		p := profile.NewSiteProfiler()
		v := mustVM(t, ir.Clone(m), WithEngine(e), WithProfiler(p), WithInput([]byte{9}))
		if _, err := v.Run(6); err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		cycles, _, _ := p.Totals()
		if cycles != v.Stats.Instructions {
			t.Fatalf("%v: profiled cycles %d != executed instructions %d", e, cycles, v.Stats.Instructions)
		}
		profiles[e] = p.Snapshot()
	}
	if !reflect.DeepEqual(profiles[EngineBytecode], profiles[EngineLegacy]) {
		t.Fatalf("per-site profiles differ:\nbytecode: %+v\nlegacy:   %+v",
			profiles[EngineBytecode], profiles[EngineLegacy])
	}
}

// TestProfilerEarlyExitNoOvercharge: a fault on the first instruction
// of a long block must charge 1 cycle, not the whole block (the old
// block-entry accounting charged all of it).
func TestProfilerEarlyExitNoOvercharge(t *testing.T) {
	m := ir.NewModule("early")
	b := ir.NewFunc(m, "main", ir.I64)
	v0 := b.Load(ir.I64, ir.Const(8)) // faults immediately
	pad := v0
	for i := 0; i < 20; i++ {
		pad = b.Bin(ir.BinAdd, pad, ir.Const(1))
	}
	b.Ret(pad)
	for _, e := range []Engine{EngineBytecode, EngineLegacy} {
		p := profile.NewSiteProfiler()
		v := mustVM(t, ir.Clone(m), WithEngine(e), WithProfiler(p))
		if _, err := v.Run(); err == nil {
			t.Fatalf("%v: expected fault", e)
		}
		cycles, _, _ := p.Totals()
		if cycles != 1 {
			t.Fatalf("%v: early fault charged %d cycles, want 1", e, cycles)
		}
		if v.Stats.Instructions != 1 {
			t.Fatalf("%v: Stats.Instructions = %d, want 1", e, v.Stats.Instructions)
		}
	}
}

// TestRegisterBuiltinRebindsBothEngines: re-registering a builtin after
// a run must take effect in the bytecode slot table and in the legacy
// engine's call-site binding cache.
func TestRegisterBuiltinRebindsBothEngines(t *testing.T) {
	m := ir.NewModule("rebind")
	b := ir.NewFunc(m, "main", ir.I64)
	b.Ret(b.Call("rt_custom"))
	for _, e := range []Engine{EngineBytecode, EngineLegacy} {
		v := mustVM(t, ir.Clone(m), WithEngine(e))
		if _, err := v.Run(); !errors.Is(err, ErrUnknownFunc) {
			t.Fatalf("%v: want ErrUnknownFunc before registration, got %v", e, err)
		}
		v.RegisterBuiltin("rt_custom", func(c *Call) (int64, error) { return 41, nil })
		if got, err := v.Run(); err != nil || got != 41 {
			t.Fatalf("%v: after registration: %d, %v", e, got, err)
		}
		v.RegisterBuiltin("rt_custom", func(c *Call) (int64, error) { return 42, nil })
		if got, err := v.Run(); err != nil || got != 42 {
			t.Fatalf("%v: after re-registration: %d, %v", e, got, err)
		}
	}
}

func TestParseEngine(t *testing.T) {
	cases := []struct {
		in   string
		want Engine
		err  bool
	}{
		{"bytecode", EngineBytecode, false},
		{"", EngineBytecode, false},
		{"legacy", EngineLegacy, false},
		{"tree", EngineLegacy, false},
		{"treewalk", EngineLegacy, false},
		{"warp", EngineBytecode, true},
	}
	for _, tc := range cases {
		got, err := ParseEngine(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseEngine(%q) = %v, %v", tc.in, got, err)
		}
	}
	if EngineBytecode.String() != "bytecode" || EngineLegacy.String() != "legacy" {
		t.Error("Engine.String mismatch")
	}
}

func TestDefaultEngineApplied(t *testing.T) {
	old := DefaultEngine()
	defer SetDefaultEngine(old)
	m := ir.NewModule("def")
	b := ir.NewFunc(m, "main", ir.I64)
	b.Ret(ir.Const(0))

	SetDefaultEngine(EngineLegacy)
	if v := mustVM(t, ir.Clone(m)); v.Engine() != EngineLegacy {
		t.Fatal("instance ignored process default")
	}
	// Explicit option beats the default.
	if v := mustVM(t, ir.Clone(m), WithEngine(EngineBytecode)); v.Engine() != EngineBytecode {
		t.Fatal("WithEngine did not override process default")
	}
	SetDefaultEngine(EngineBytecode)
	if v := mustVM(t, ir.Clone(m)); v.Engine() != EngineBytecode {
		t.Fatal("instance ignored restored default")
	}
}

// TestLoweringFusesPairs sanity-checks the lowered form itself: under
// the default fuse-all plan the rich module must contain generalized
// bcFused runs, and with generic fusion disabled (FusionTopK < 0) the
// classic peephole pairs must reappear — otherwise the differential
// tests exercise nothing on one of the two fusion paths.
func TestLoweringFusesPairs(t *testing.T) {
	countOps := func(p *Program) map[bcOp]int {
		found := map[bcOp]int{}
		for _, bf := range p.bcFuncs {
			for i := range bf.code {
				found[bf.code[i].op]++
			}
		}
		return found
	}
	checkWeights := func(p *Program) {
		// Weight bookkeeping: per function, block costs sum to the source
		// instruction count regardless of how the fuser carved the runs.
		for fi, bf := range p.bcFuncs {
			var lowered uint32
			for _, bb := range bf.blocks {
				lowered += bb.cost
			}
			var source uint32
			for _, blk := range p.mod.Funcs[fi].Blocks {
				source += uint32(len(blk.Instrs))
			}
			if lowered != source {
				t.Errorf("@%s: lowered weight %d != source instructions %d", bf.fn.Name, lowered, source)
			}
		}
	}

	p, err := Compile(richModule(t))
	if err != nil {
		t.Fatal(err)
	}
	found := countOps(p)
	if found[bcFused] == 0 {
		t.Errorf("fuse-all lowering produced no bcFused runs (counts: %v)", found)
	}
	// Every fused run must account as many source instructions as it
	// carries micro-ops.
	for _, bf := range p.bcFuncs {
		for i := range bf.code {
			if in := &bf.code[i]; in.op == bcFused {
				if len(in.micro) < 2 {
					t.Errorf("@%s: bcFused with %d micros", bf.fn.Name, len(in.micro))
				}
				if in.weight() != uint32(len(in.micro)) {
					t.Errorf("@%s: bcFused weight %d != %d micros", bf.fn.Name, in.weight(), len(in.micro))
				}
			}
		}
	}
	checkWeights(p)

	pc, err := CompileWith(richModule(t), CompileOpts{FusionTopK: -1})
	if err != nil {
		t.Fatal(err)
	}
	classic := countOps(pc)
	if classic[bcFused] != 0 {
		t.Errorf("FusionTopK=-1 still produced %d bcFused runs", classic[bcFused])
	}
	for _, op := range []bcOp{bcFieldLoad, bcFieldStore, bcCmpBr} {
		if classic[op] == 0 {
			t.Errorf("classic lowering contains no %d superinstruction (counts: %v)", op, classic)
		}
	}
	checkWeights(pc)
}

// TestFuelSweepSuccessStatsStable: once fuel suffices, Stats must be
// independent of the exact fuel value (no refund-accounting leaks).
func TestFuelSweepSuccessStatsStable(t *testing.T) {
	m := richModule(t)
	var want Stats
	for i, fuel := range []uint64{0, 1, 7, 1 << 30} {
		v := mustVM(t, ir.Clone(m), WithEngine(EngineBytecode), WithInput([]byte{9}))
		if fuel != 0 {
			v = mustVM(t, ir.Clone(m), WithEngine(EngineBytecode), WithInput([]byte{9}), WithFuel(1<<30+fuel))
		}
		if _, err := v.Run(4); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = v.Stats
		} else if v.Stats != want {
			t.Fatalf("fuel variant %d changed stats: %+v != %+v", fuel, v.Stats, want)
		}
	}
}

func ExampleParseEngine() {
	e, _ := ParseEngine("legacy")
	fmt.Println(e)
	// Output: legacy
}
