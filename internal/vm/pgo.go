package vm

import (
	"sort"
	"sync/atomic"

	"polar/internal/ir"
	"polar/internal/telemetry/profile"
)

// Profile-guided fusion selection. The hot-site profiler (PR 2) counts
// executed source instructions per block under the exact "@fn.block"
// site names the Program publishes; a profile exported from a prior run
// (profile.PGO) therefore weights every basic block of the module by
// its real dynamic cost. The selector below ranks straight-line runs of
// fusable instructions by that weight — or by a static loop-nesting
// estimate when no profile is given — and the lowering in lower.go
// collapses each selected run into a single dispatch.
//
// The plan is a pure function of (module, profile, topK): candidate
// enumeration walks blocks in order, ranking breaks ties by position,
// and the output ranges are re-sorted by position per block. Same
// profile + same module → byte-identical lowered code, which the
// Program fingerprint test pins (PGO determinism).

// CompileOpts selects the optimization inputs for Program compilation.
// The zero value means "no profile, fuse every candidate run" — the
// default static pipeline.
type CompileOpts struct {
	// Profile supplies dynamic block weights for fusion ranking. Nil
	// falls back to the static loop-depth estimate.
	Profile *profile.PGO
	// FusionTopK bounds generalized fusion: 0 fuses every candidate
	// run, K>0 fuses only the K hottest runs (classic pair fusion still
	// applies elsewhere), and K<0 disables generalized fusion entirely,
	// reproducing the historical three-pair peephole.
	FusionTopK int
	// Facts carries the static site classification for inline-cache
	// seeding (facts.go): churned sites lose their IC slot, proven
	// single-object monomorphic sites share one. Nil keeps the default
	// one-fresh-slot-per-site numbering.
	Facts *StaticFacts
}

// defaultOpts holds the process-wide compile options Compile() uses,
// settable by flags (-pgo/-pgo-topk) before workloads compile. The
// pointer is atomic for the same reason SetDefaultEngine's word is:
// evalrun compiles programs from worker goroutines.
var defaultOpts atomic.Pointer[CompileOpts]

// SetDefaultPGO installs the process-default compile options used by
// Compile (CompileWith ignores it).
func SetDefaultPGO(opts CompileOpts) {
	defaultOpts.Store(&opts)
}

// DefaultPGO returns the process-default compile options.
func DefaultPGO() CompileOpts {
	if p := defaultOpts.Load(); p != nil {
		return *p
	}
	return CompileOpts{}
}

// fusableIR reports whether a source instruction may join a fused run:
// straight-line register/memory/arithmetic work plus the block
// terminators. Ops with side channels beyond registers, memory and
// Stats.FieldAccess (alloc, local, free, memcpy, memset, calls, rets)
// stay un-fused so the micro loop needs no telemetry or accounting
// hooks. Cross-block runs are never formed: fuel-exhaustion errors name
// the block, so a run must not outlive its block's accounting.
func fusableIR(op ir.Op) bool {
	switch op {
	case ir.OpLoad, ir.OpStore, ir.OpFieldPtr, ir.OpElemPtr, ir.OpPtrAdd,
		ir.OpBin, ir.OpFBin, ir.OpCmp, ir.OpFCmp, ir.OpItoF, ir.OpFtoI,
		ir.OpMov, ir.OpBr, ir.OpCondBr:
		return true
	}
	return false
}

// fusionRun is one candidate: instructions [lo,hi) of a block, weighted
// by the block's dynamic (or estimated) execution count times the
// dispatches saved per execution.
type fusionRun struct {
	fn, blk, lo, hi int
	w               uint64
}

// fusionPlan maps (function, block) to the selected runs, sorted by
// start index. A nil byFunc disables generalized fusion.
type fusionPlan struct {
	byFunc [][][][2]int
}

// runsFor returns the per-block selected runs of function fi (nil when
// generalized fusion is off or nothing was selected there).
func (p fusionPlan) runsFor(fi int) [][][2]int {
	if p.byFunc == nil || fi >= len(p.byFunc) {
		return nil
	}
	return p.byFunc[fi]
}

// buildFusionPlan enumerates maximal fusable runs, weights them from
// the profile (falling back to static loop-depth weights per function),
// keeps the topK hottest when bounded, and lays the survivors out per
// block for the fuser.
func buildFusionPlan(m *ir.Module, opts CompileOpts) fusionPlan {
	if opts.FusionTopK < 0 {
		return fusionPlan{}
	}
	var runs []fusionRun
	for fi, f := range m.Funcs {
		weights := blockWeights(f, opts.Profile)
		for bi, blk := range f.Blocks {
			lo := -1
			flush := func(hi int) {
				if lo >= 0 && hi-lo >= 2 {
					runs = append(runs, fusionRun{
						fn: fi, blk: bi, lo: lo, hi: hi,
						// Dispatches saved per block execution is
						// (len-1); weighting by it prefers long hot
						// runs under a topK budget.
						w: weights[bi] * uint64(hi-lo-1),
					})
				}
				lo = -1
			}
			for ii := range blk.Instrs {
				if fusableIR(blk.Instrs[ii].Op) {
					if lo < 0 {
						lo = ii
					}
				} else {
					flush(ii)
				}
			}
			flush(len(blk.Instrs))
		}
	}
	if k := opts.FusionTopK; k > 0 && len(runs) > k {
		// Hottest first; position breaks ties so the selection is a
		// pure function of (module, profile, k).
		sort.Slice(runs, func(i, j int) bool {
			a, b := runs[i], runs[j]
			if a.w != b.w {
				return a.w > b.w
			}
			if a.fn != b.fn {
				return a.fn < b.fn
			}
			if a.blk != b.blk {
				return a.blk < b.blk
			}
			return a.lo < b.lo
		})
		runs = runs[:k]
	}
	plan := fusionPlan{byFunc: make([][][][2]int, len(m.Funcs))}
	for fi, f := range m.Funcs {
		plan.byFunc[fi] = make([][][2]int, len(f.Blocks))
	}
	for _, r := range runs {
		plan.byFunc[r.fn][r.blk] = append(plan.byFunc[r.fn][r.blk], [2]int{r.lo, r.hi})
	}
	for _, fn := range plan.byFunc {
		for _, sel := range fn {
			sort.Slice(sel, func(i, j int) bool { return sel[i][0] < sel[j][0] })
		}
	}
	return plan
}

// blockWeights returns one dynamic weight per block of f: measured
// cycles from the profile when it covers the function, otherwise the
// static loop-nesting estimate.
func blockWeights(f *ir.Func, pgo *profile.PGO) []uint64 {
	w := make([]uint64, len(f.Blocks))
	if pgo != nil && len(pgo.Weights) > 0 {
		covered := false
		for bi, blk := range f.Blocks {
			if c, ok := pgo.Weights["@"+f.Name+"."+blk.Name]; ok {
				w[bi] = c
				covered = true
			}
		}
		if covered {
			return w
		}
		// A function the profiled run never entered still fuses by the
		// static estimate — a partial profile must not deoptimize cold
		// code below the no-profile baseline.
	}
	for bi, d := range loopDepths(f) {
		if d > 6 {
			d = 6
		}
		w[bi] = 1 << (3 * uint(d))
	}
	return w
}

// loopDepths estimates the loop-nesting depth of every block: iterative
// dominators (Cooper-Harvey-Kennedy over the CFG's reverse postorder),
// back edges u→v where v dominates u, and the union of each header's
// natural loops. Unreachable blocks get depth 0.
func loopDepths(f *ir.Func) []int {
	n := len(f.Blocks)
	depth := make([]int, n)
	cfg := ir.BuildCFG(f)
	rpo := cfg.ReversePostorder()
	if len(rpo) == 0 {
		return depth
	}
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	entry := rpo[0]
	idom[entry] = entry
	intersect := func(a, b int) int {
		for a != b {
			for cfg.RPOIndex(a) > cfg.RPOIndex(b) {
				a = idom[a]
			}
			for cfg.RPOIndex(b) > cfg.RPOIndex(a) {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			newIdom := -1
			for _, p := range cfg.Preds[b] {
				if idom[p] < 0 {
					continue
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom >= 0 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	dominates := func(v, u int) bool {
		for u != v {
			if idom[u] < 0 || idom[u] == u {
				return false
			}
			u = idom[u]
		}
		return true
	}
	// Natural loops, merged per header so multiple back edges to one
	// header count as one loop, then nesting = memberships.
	bodies := make(map[int]map[int]bool)
	for _, u := range rpo {
		for _, v := range cfg.Succs[u] {
			if !cfg.Reachable(v) || !dominates(v, u) {
				continue
			}
			body := bodies[v]
			if body == nil {
				body = map[int]bool{v: true}
				bodies[v] = body
			}
			stack := []int{u}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if body[x] {
					continue
				}
				body[x] = true
				for _, p := range cfg.Preds[x] {
					if cfg.Reachable(p) {
						stack = append(stack, p)
					}
				}
			}
		}
	}
	for _, body := range bodies {
		for b := range body {
			depth[b]++
		}
	}
	return depth
}
