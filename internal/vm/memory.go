// Package vm implements the virtual machine that executes POLaR IR
// programs over a simulated byte-addressable address space.
//
// The VM plays the role of the native process in the paper: programs
// (instrumented or not) run over a simulated heap whose chunks are
// recycled like a real allocator's, so use-after-free, stale data and
// per-allocation randomization behave as they would in a C/C++ process.
package vm

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Address-space layout constants.
const (
	pageBits = 16
	pageSize = 1 << pageBits

	// NullGuard is the size of the unmapped region at address zero;
	// any access below it faults as a null dereference.
	NullGuard = 0x1000

	// GlobalBase is where module globals are laid out.
	GlobalBase = 0x0001_0000
	// StackBase is the start of the downward-growing-by-frame local
	// region (each frame bump-allocates upward within it).
	StackBase = 0x1000_0000
	// StackLimit bounds the local region.
	StackLimit = 0x3000_0000
	// HeapBase is where the simulated malloc carves chunks.
	HeapBase = 0x4000_0000
	// HeapSize is the virtual heap capacity.
	HeapSize = 0x4000_0000
)

// ErrNullDeref is wrapped by memory faults in the null guard page.
var ErrNullDeref = errors.New("vm: null pointer dereference")

// Memory is a sparse paged byte store. The zero value is not usable;
// use newMemory.
type Memory struct {
	pages map[uint64][]byte

	// Two-entry page cache: the interpreter has strong locality, but it
	// is typically split across two working pages at once (stack locals
	// vs a heap object), so one entry thrashes exactly on the hottest
	// load/store interleavings.
	lastIdx   uint64
	lastPage  []byte
	last2Idx  uint64
	last2Page []byte
}

func newMemory() *Memory {
	return &Memory{pages: make(map[uint64][]byte), lastIdx: ^uint64(0), last2Idx: ^uint64(0)}
}

func (m *Memory) page(idx uint64) []byte {
	if idx == m.lastIdx {
		return m.lastPage
	}
	if idx == m.last2Idx {
		// Swap to the front so the fast paths (which probe front first)
		// keep both working pages hittable.
		m.lastIdx, m.last2Idx = idx, m.lastIdx
		m.lastPage, m.last2Page = m.last2Page, m.lastPage
		return m.lastPage
	}
	p, ok := m.pages[idx]
	if !ok {
		p = make([]byte, pageSize)
		m.pages[idx] = p
	}
	m.last2Idx, m.last2Page = m.lastIdx, m.lastPage
	m.lastIdx, m.lastPage = idx, p
	return p
}

func (m *Memory) check(addr uint64, n int) error {
	if addr < NullGuard {
		return fmt.Errorf("%w at 0x%x", ErrNullDeref, addr)
	}
	_ = n
	return nil
}

// loadMask selects the low n bytes of an 8-byte load (readFast).
var loadMask = [9]uint64{1: 0xff, 2: 0xffff, 4: 0xffff_ffff, 8: ^uint64(0)}

// readFast is the bytecode engine's inline load path: the access must
// land whole in the cached page with 8 readable bytes at its offset
// (the wide load is masked down to n). Reports false — never faults —
// when any condition misses; the caller falls back to ReadU, which
// re-derives the fault or refills the page cache. Small on purpose so
// it inlines into the dispatch loop.
func (m *Memory) readFast(addr uint64, n int32) (uint64, bool) {
	off := addr & (pageSize - 1)
	if addr < NullGuard || off+8 > pageSize {
		return 0, false
	}
	if idx := addr >> pageBits; idx == m.lastIdx {
		return binary.LittleEndian.Uint64(m.lastPage[off:]) & loadMask[n], true
	} else if idx == m.last2Idx {
		return binary.LittleEndian.Uint64(m.last2Page[off:]) & loadMask[n], true
	}
	return 0, false
}

// readFast8 is readFast specialized to the full 8-byte width the
// lowering marks as mcLoad8 — no mask table on the hottest load path.
func (m *Memory) readFast8(addr uint64) (uint64, bool) {
	off := addr & (pageSize - 1)
	if addr < NullGuard || off+8 > pageSize {
		return 0, false
	}
	if idx := addr >> pageBits; idx == m.lastIdx {
		return binary.LittleEndian.Uint64(m.lastPage[off:]), true
	} else if idx == m.last2Idx {
		return binary.LittleEndian.Uint64(m.last2Page[off:]), true
	}
	return 0, false
}

// write8Fast is readFast's store counterpart for the dominant 8-byte
// width.
func (m *Memory) write8Fast(addr uint64, v uint64) bool {
	off := addr & (pageSize - 1)
	if addr < NullGuard || off+8 > pageSize {
		return false
	}
	if idx := addr >> pageBits; idx == m.lastIdx {
		binary.LittleEndian.PutUint64(m.lastPage[off:], v)
		return true
	} else if idx == m.last2Idx {
		binary.LittleEndian.PutUint64(m.last2Page[off:], v)
		return true
	}
	return false
}

// ReadU reads an n-byte little-endian unsigned integer (n ∈ {1,2,4,8}).
func (m *Memory) ReadU(addr uint64, n int) (uint64, error) {
	if err := m.check(addr, n); err != nil {
		return 0, err
	}
	off := addr & (pageSize - 1)
	if off+uint64(n) <= pageSize {
		p := m.page(addr >> pageBits)
		switch n {
		case 1:
			return uint64(p[off]), nil
		case 2:
			return uint64(binary.LittleEndian.Uint16(p[off:])), nil
		case 4:
			return uint64(binary.LittleEndian.Uint32(p[off:])), nil
		case 8:
			return binary.LittleEndian.Uint64(p[off:]), nil
		}
	}
	// Straddles a page boundary: byte-at-a-time.
	var v uint64
	for i := 0; i < n; i++ {
		b := m.page((addr + uint64(i)) >> pageBits)[(addr+uint64(i))&(pageSize-1)]
		v |= uint64(b) << (8 * i)
	}
	return v, nil
}

// WriteU writes an n-byte little-endian unsigned integer.
func (m *Memory) WriteU(addr uint64, n int, v uint64) error {
	if err := m.check(addr, n); err != nil {
		return err
	}
	off := addr & (pageSize - 1)
	if off+uint64(n) <= pageSize {
		p := m.page(addr >> pageBits)
		switch n {
		case 1:
			p[off] = byte(v)
			return nil
		case 2:
			binary.LittleEndian.PutUint16(p[off:], uint16(v))
			return nil
		case 4:
			binary.LittleEndian.PutUint32(p[off:], uint32(v))
			return nil
		case 8:
			binary.LittleEndian.PutUint64(p[off:], v)
			return nil
		}
	}
	for i := 0; i < n; i++ {
		m.page((addr + uint64(i)) >> pageBits)[(addr+uint64(i))&(pageSize-1)] = byte(v >> (8 * i))
	}
	return nil
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) ReadBytes(addr uint64, n int) ([]byte, error) {
	if err := m.check(addr, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	i := 0
	for i < n {
		off := (addr + uint64(i)) & (pageSize - 1)
		p := m.page((addr + uint64(i)) >> pageBits)
		c := copy(out[i:], p[off:])
		i += c
	}
	return out, nil
}

// WriteBytes copies b into memory at addr.
func (m *Memory) WriteBytes(addr uint64, b []byte) error {
	if err := m.check(addr, len(b)); err != nil {
		return err
	}
	i := 0
	for i < len(b) {
		off := (addr + uint64(i)) & (pageSize - 1)
		p := m.page((addr + uint64(i)) >> pageBits)
		c := copy(p[off:], b[i:])
		i += c
	}
	return nil
}

// Copy moves n bytes from src to dst (handles overlap like memmove).
func (m *Memory) Copy(dst, src uint64, n int) error {
	if n == 0 {
		return nil
	}
	b, err := m.ReadBytes(src, n)
	if err != nil {
		return err
	}
	return m.WriteBytes(dst, b)
}

// Set fills n bytes at dst with v.
func (m *Memory) Set(dst uint64, v byte, n int) error {
	if err := m.check(dst, n); err != nil {
		return err
	}
	i := 0
	for i < n {
		off := (dst + uint64(i)) & (pageSize - 1)
		p := m.page((dst + uint64(i)) >> pageBits)
		end := int(pageSize - off)
		if end > n-i {
			end = n - i
		}
		seg := p[off : int(off)+end]
		for j := range seg {
			seg[j] = v
		}
		i += end
	}
	return nil
}
