// Package vm implements the virtual machine that executes POLaR IR
// programs over a simulated byte-addressable address space.
//
// The VM plays the role of the native process in the paper: programs
// (instrumented or not) run over a simulated heap whose chunks are
// recycled like a real allocator's, so use-after-free, stale data and
// per-allocation randomization behave as they would in a C/C++ process.
package vm

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Address-space layout constants.
const (
	pageBits = 16
	pageSize = 1 << pageBits

	// NullGuard is the size of the unmapped region at address zero;
	// any access below it faults as a null dereference.
	NullGuard = 0x1000

	// GlobalBase is where module globals are laid out.
	GlobalBase = 0x0001_0000
	// StackBase is the start of the downward-growing-by-frame local
	// region (each frame bump-allocates upward within it).
	StackBase = 0x1000_0000
	// StackLimit bounds the local region.
	StackLimit = 0x3000_0000
	// HeapBase is where the simulated malloc carves chunks.
	HeapBase = 0x4000_0000
	// HeapSize is the virtual heap capacity.
	HeapSize = 0x4000_0000
)

// ErrNullDeref is wrapped by memory faults in the null guard page.
var ErrNullDeref = errors.New("vm: null pointer dereference")

// Memory is a sparse paged byte store. The zero value is not usable;
// use newMemory.
type Memory struct {
	pages map[uint64][]byte

	// Single-entry page cache: the interpreter has strong locality.
	lastIdx  uint64
	lastPage []byte
}

func newMemory() *Memory {
	return &Memory{pages: make(map[uint64][]byte), lastIdx: ^uint64(0)}
}

func (m *Memory) page(idx uint64) []byte {
	if idx == m.lastIdx {
		return m.lastPage
	}
	p, ok := m.pages[idx]
	if !ok {
		p = make([]byte, pageSize)
		m.pages[idx] = p
	}
	m.lastIdx, m.lastPage = idx, p
	return p
}

func (m *Memory) check(addr uint64, n int) error {
	if addr < NullGuard {
		return fmt.Errorf("%w at 0x%x", ErrNullDeref, addr)
	}
	_ = n
	return nil
}

// ReadU reads an n-byte little-endian unsigned integer (n ∈ {1,2,4,8}).
func (m *Memory) ReadU(addr uint64, n int) (uint64, error) {
	if err := m.check(addr, n); err != nil {
		return 0, err
	}
	off := addr & (pageSize - 1)
	if off+uint64(n) <= pageSize {
		p := m.page(addr >> pageBits)
		switch n {
		case 1:
			return uint64(p[off]), nil
		case 2:
			return uint64(binary.LittleEndian.Uint16(p[off:])), nil
		case 4:
			return uint64(binary.LittleEndian.Uint32(p[off:])), nil
		case 8:
			return binary.LittleEndian.Uint64(p[off:]), nil
		}
	}
	// Straddles a page boundary: byte-at-a-time.
	var v uint64
	for i := 0; i < n; i++ {
		b := m.page((addr + uint64(i)) >> pageBits)[(addr+uint64(i))&(pageSize-1)]
		v |= uint64(b) << (8 * i)
	}
	return v, nil
}

// WriteU writes an n-byte little-endian unsigned integer.
func (m *Memory) WriteU(addr uint64, n int, v uint64) error {
	if err := m.check(addr, n); err != nil {
		return err
	}
	off := addr & (pageSize - 1)
	if off+uint64(n) <= pageSize {
		p := m.page(addr >> pageBits)
		switch n {
		case 1:
			p[off] = byte(v)
			return nil
		case 2:
			binary.LittleEndian.PutUint16(p[off:], uint16(v))
			return nil
		case 4:
			binary.LittleEndian.PutUint32(p[off:], uint32(v))
			return nil
		case 8:
			binary.LittleEndian.PutUint64(p[off:], v)
			return nil
		}
	}
	for i := 0; i < n; i++ {
		m.page((addr + uint64(i)) >> pageBits)[(addr+uint64(i))&(pageSize-1)] = byte(v >> (8 * i))
	}
	return nil
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) ReadBytes(addr uint64, n int) ([]byte, error) {
	if err := m.check(addr, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	i := 0
	for i < n {
		off := (addr + uint64(i)) & (pageSize - 1)
		p := m.page((addr + uint64(i)) >> pageBits)
		c := copy(out[i:], p[off:])
		i += c
	}
	return out, nil
}

// WriteBytes copies b into memory at addr.
func (m *Memory) WriteBytes(addr uint64, b []byte) error {
	if err := m.check(addr, len(b)); err != nil {
		return err
	}
	i := 0
	for i < len(b) {
		off := (addr + uint64(i)) & (pageSize - 1)
		p := m.page((addr + uint64(i)) >> pageBits)
		c := copy(p[off:], b[i:])
		i += c
	}
	return nil
}

// Copy moves n bytes from src to dst (handles overlap like memmove).
func (m *Memory) Copy(dst, src uint64, n int) error {
	if n == 0 {
		return nil
	}
	b, err := m.ReadBytes(src, n)
	if err != nil {
		return err
	}
	return m.WriteBytes(dst, b)
}

// Set fills n bytes at dst with v.
func (m *Memory) Set(dst uint64, v byte, n int) error {
	if err := m.check(dst, n); err != nil {
		return err
	}
	i := 0
	for i < n {
		off := (dst + uint64(i)) & (pageSize - 1)
		p := m.page((dst + uint64(i)) >> pageBits)
		end := int(pageSize - off)
		if end > n-i {
			end = n - i
		}
		seg := p[off : int(off)+end]
		for j := range seg {
			seg[j] = v
		}
		i += end
	}
	return nil
}
