package vm

import (
	"reflect"
	"testing"

	"polar/internal/ir"
	"polar/internal/telemetry/profile"
)

// recordRichProfile runs the rich module once under the site profiler
// and distills the dynamic block weights into a PGO profile — the same
// path `polarun -pgo-record` takes.
func recordRichProfile(t *testing.T) *profile.PGO {
	t.Helper()
	p := profile.NewSiteProfiler()
	v := mustVM(t, richModule(t), WithEngine(EngineBytecode), WithProfiler(p), WithInput([]byte{9}))
	if _, err := v.Run(6); err != nil {
		t.Fatal(err)
	}
	pgo := p.ExportPGO()
	if len(pgo.Weights) == 0 {
		t.Fatal("profiler exported an empty profile")
	}
	return pgo
}

// compileVariants is the grid of optimization inputs the PGO tests
// sweep: the static default, generalized fusion off, a topK budget, a
// measured profile, and a profile under a budget.
func compileVariants(t *testing.T) map[string]CompileOpts {
	pgo := recordRichProfile(t)
	return map[string]CompileOpts{
		"static-fuse-all": {},
		"fusion-off":      {FusionTopK: -1},
		"static-top3":     {FusionTopK: 3},
		"profile-all":     {Profile: pgo},
		"profile-top2":    {Profile: pgo, FusionTopK: 2},
	}
}

// TestPGODeterministicLowering is the PGO-determinism gate's in-process
// form: compiling the same module under the same profile and topK twice
// must produce byte-identical lowered code (equal Fingerprint). The
// fusion plan, constant pooling and register allocation are all pure
// functions of (module, profile, topK) — any map-iteration or
// timestamp dependence in the pipeline would show up here.
func TestPGODeterministicLowering(t *testing.T) {
	prints := map[string]uint64{}
	for name, opts := range compileVariants(t) {
		a, err := CompileWith(richModule(t), opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := CompileWith(richModule(t), opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Errorf("%s: recompilation changed the lowered code: %016x vs %016x",
				name, a.Fingerprint(), b.Fingerprint())
		}
		prints[name] = a.Fingerprint()
	}
	// Sanity that the fingerprint discriminates at all: turning
	// generalized fusion off replaces every bcFused run with classic
	// lowering, which must hash differently from the fuse-all default.
	if prints["static-fuse-all"] == prints["fusion-off"] {
		t.Errorf("fusion-off and fuse-all share fingerprint %016x — the digest is blind to fusion",
			prints["fusion-off"])
	}
}

// TestPGODefaultOptsApplied: Compile consults the process-default opts
// installed by SetDefaultPGO, and CompileWith ignores them.
func TestPGODefaultOptsApplied(t *testing.T) {
	defer SetDefaultPGO(DefaultPGO())
	base, err := Compile(richModule(t))
	if err != nil {
		t.Fatal(err)
	}
	SetDefaultPGO(CompileOpts{FusionTopK: -1})
	off, err := Compile(richModule(t))
	if err != nil {
		t.Fatal(err)
	}
	if base.Fingerprint() == off.Fingerprint() {
		t.Fatal("SetDefaultPGO(FusionTopK=-1) did not reach Compile")
	}
	explicit, err := CompileWith(richModule(t), CompileOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if explicit.Fingerprint() != base.Fingerprint() {
		t.Fatal("CompileWith consulted the process default instead of its argument")
	}
}

// TestEnginesDifferentialUnderCompileOpts re-runs the engine
// differential under every fusion configuration: whatever runs the
// selector picks, the lowered program must match the tree-walker
// result-for-result and stat-for-stat, the profiler's per-site cycle
// attribution must still sum to Stats.Instructions exactly, and a
// sparse fuel sweep must agree at every sampled value (including the
// exhaustion boundary, where a fused run may be cut mid-sequence).
func TestEnginesDifferentialUnderCompileOpts(t *testing.T) {
	for name, opts := range compileVariants(t) {
		opts := opts
		t.Run(name, func(t *testing.T) {
			m := richModule(t)
			prog, err := CompileWith(ir.Clone(m), opts)
			if err != nil {
				t.Fatal(err)
			}
			runBC := func(extra ...Option) (*VM, int64, error) {
				v, err := prog.NewInstance(append([]Option{WithEngine(EngineBytecode), WithInput([]byte{9, 8, 7})}, extra...)...)
				if err != nil {
					t.Fatal(err)
				}
				r, runErr := v.Run(5)
				return v, r, runErr
			}
			runLegacy := func(extra ...Option) (*VM, int64, error) {
				return runEngine(t, m, EngineLegacy, append([]Option{WithInput([]byte{9, 8, 7})}, extra...), 5)
			}

			// Full run: result, stats, output and profiler attribution.
			pb, pl := profile.NewSiteProfiler(), profile.NewSiteProfiler()
			vb, rb, eb := runBC(WithProfiler(pb))
			vl, rl, el := runLegacy(WithProfiler(pl))
			if eb != nil || el != nil {
				t.Fatalf("errors: bytecode=%v legacy=%v", eb, el)
			}
			if rb != rl || vb.Stats != vl.Stats || string(vb.Output()) != string(vl.Output()) {
				t.Fatalf("engines diverge: result %d/%d stats\n%+v\n%+v", rb, rl, vb.Stats, vl.Stats)
			}
			if cycles, _, _ := pb.Totals(); cycles != vb.Stats.Instructions {
				t.Fatalf("profiled cycles %d != executed instructions %d", cycles, vb.Stats.Instructions)
			}
			if !reflect.DeepEqual(pb.Snapshot(), pl.Snapshot()) {
				t.Fatalf("per-site profiles differ under %s", name)
			}

			// Sparse fuel sweep: every 17th value plus the boundary
			// region, enough to land inside fused runs of any length
			// without the full-sweep cost times five variants.
			total := vb.Stats.Instructions
			var fuels []uint64
			for f := uint64(1); f < total; f += 17 {
				fuels = append(fuels, f)
			}
			fuels = append(fuels, total-1, total, total+1)
			for _, fuel := range fuels {
				fb, frb, feb := runBC(WithFuel(fuel))
				fl, frl, fel := runLegacy(WithFuel(fuel))
				if (feb == nil) != (fel == nil) || (feb != nil && feb.Error() != fel.Error()) {
					t.Fatalf("fuel=%d: errors differ:\nbytecode: %v\nlegacy:   %v", fuel, feb, fel)
				}
				if frb != frl || fb.Stats != fl.Stats {
					t.Fatalf("fuel=%d: engines diverge: %d/%d\n%+v\n%+v", fuel, frb, frl, fb.Stats, fl.Stats)
				}
			}
		})
	}
}
