package vm

import (
	"fmt"

	"polar/internal/ir"
)

// Static inline-cache seeding (analysis-guided compilation, DESIGN.md
// §14). The static analyzer classifies every olr_getptr site; the
// compiler consumes the verdicts through CompileOpts.Facts:
//
//   - a site proven CHURNED (its innermost loop also frees, so the
//     layout generation invalidates its entry before every reuse) gets
//     no IC slot at all (ic = -1): both engines go straight to the
//     resolver, exactly as they do for non-instrumented calls;
//   - monomorphic sites proven to address the same single runs-once
//     object (equal ShareKey) are UNIFIED onto one slot: the first
//     access memoizes the randomized offset for every sibling site —
//     compile-time cache pre-seeding with zero new runtime machinery.
//
// Neither transformation changes an observable: IC entries validate
// (base, class, field, generation) on every hit, a suppressed slot
// just replays the resolver path, and a shared-slot hit corresponds to
// the resolver's own offset-cache hit in an unseeded run. The
// seeded-vs-unseeded trace differential in internal/evalrun gates that
// byte-for-byte.
//
// The type is deliberately vm-local (the analysis package converts its
// artifact into it) so the dependency points analysis → vm and the
// taint/policy stack can keep importing vm freely.

// SiteSeed is the compiler-facing verdict for one olr_getptr site.
type SiteSeed struct {
	// Suppress removes the site's IC slot entirely.
	Suppress bool
	// ShareKey, when non-empty, unifies this site's slot with every
	// other site carrying the same key.
	ShareKey string
}

// StaticFacts maps "@fn.block#idx" source positions (the profiler's
// site vocabulary) to seeds. Sites without an entry get the default
// treatment: a fresh private IC slot.
type StaticFacts struct {
	Sites map[string]SiteSeed
}

// planICSites precomputes the IC slot of every olr_getptr call site
// from the static facts, walking the module in lowering order so slot
// numbering stays a pure function of (module, facts). Without facts
// the plan is nil and lowerOne numbers sites sequentially, as before.
func (p *Program) planICSites(facts *StaticFacts) {
	if facts == nil {
		return
	}
	p.icPlan = make(map[*ir.Instr]int32)
	shared := make(map[string]int32)
	next := int32(0)
	for _, f := range p.mod.Funcs {
		for _, blk := range f.Blocks {
			for ii := range blk.Instrs {
				in := &blk.Instrs[ii]
				if in.Op != ir.OpCall || in.Callee != olrGetptrName || len(in.Args) != 3 {
					continue
				}
				pos := fmt.Sprintf("@%s.%s#%d", f.Name, blk.Name, ii)
				seed, ok := facts.Sites[pos]
				switch {
				case ok && seed.Suppress:
					p.icPlan[in] = -1
				case ok && seed.ShareKey != "":
					slot, have := shared[seed.ShareKey]
					if !have {
						slot = next
						next++
						shared[seed.ShareKey] = slot
					}
					p.icPlan[in] = slot
				default:
					p.icPlan[in] = next
					next++
				}
			}
		}
	}
	p.numICSites = int(next)
}
