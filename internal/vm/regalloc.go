package vm

import "sort"

// Register allocation for the operand file. Lowered functions inherit
// the builder's virtual register numbering, which is append-only and
// sparse: a function that briefly used many temporaries drags a wide
// frame around forever, and every call pays to zero it (getFrame) while
// the hot registers scatter across cache lines. This pass renumbers the
// virtual registers into a small dense bank with a classic linear scan
// over the flat post-fusion instruction array:
//
//   - Backward liveness fixpoint over the lowered blocks (successors
//     read off each block's terminator, including one fused into a
//     bcFused run).
//   - Live intervals in flat pc positions, extended to block starts and
//     ends for regs live across edges. Registers live into the entry
//     block are read before any write on some path; their intervals
//     start at -1 so they keep virgin (zero-initialized) slots,
//     preserving the frame's zero-init semantics.
//   - Parameters are pinned to slots 0..n-1 (the call ABI copies args
//     positionally) and never recycled.
//   - Strict expiry (end < start) before reuse, so a def and a last use
//     at the same pc never share a slot.
//
// Only the lowered form is rewritten. The source IR, the tree-walker's
// frames, and the Call ABI's RawArgs keep the original numbering.

// forUses calls f for every register an instruction reads. Unused
// operand fields are zero bcArgs (reg=false), so visiting a/b/c
// unconditionally is exact, not conservative.
func (in *bcInstr) forUses(f func(r int32)) {
	if in.op == bcFused {
		return // handled per-micro, in order, by the callers below
	}
	if in.a.reg {
		f(int32(in.a.v))
	}
	if in.b.reg {
		f(int32(in.b.v))
	}
	if in.c.reg {
		f(int32(in.c.v))
	}
	for i := range in.args {
		if in.args[i].reg {
			f(int32(in.args[i].v))
		}
	}
}

// forDefs calls f for every register an instruction writes.
func (in *bcInstr) forDefs(f func(r int32)) {
	if in.op == bcFused {
		return
	}
	if in.dest >= 0 {
		f(in.dest)
	}
	if in.op == bcFieldLoad {
		// d2 is only meaningful (and only rewritten) here: every other
		// opcode leaves it zero, which is a real register index.
		f(in.d2)
	}
}

type raBitset []uint64

func newRaBitset(n int) raBitset { return make(raBitset, (n+63)/64) }

func (s raBitset) set(i int32)      { s[i>>6] |= 1 << (uint(i) & 63) }
func (s raBitset) get(i int32) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }

// orInto ors src into s, reporting whether s changed.
func (s raBitset) orInto(src raBitset) bool {
	changed := false
	for i, w := range src {
		if nw := s[i] | w; nw != s[i] {
			s[i] = nw
			changed = true
		}
	}
	return changed
}

func (s raBitset) forEach(f func(r int32)) {
	for i, w := range s {
		for w != 0 {
			b := w & -w
			r := int32(i<<6) + int32(popcnt(b-1))
			f(r)
			w &^= b
		}
	}
}

func popcnt(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// bcSuccs returns the successor block indices encoded in a block's
// final instruction.
func bcSuccs(in *bcInstr) []int32 {
	switch in.op {
	case bcBr:
		return []int32{in.t0}
	case bcCondBr, bcCmpBr:
		return []int32{in.t0, in.t1}
	case bcFused:
		if n := len(in.micro); n > 0 {
			switch m := &in.micro[n-1]; m.op {
			case mcBr:
				return []int32{m.off}
			case mcCondBr:
				return []int32{m.off, m.t1}
			}
		}
	}
	return nil
}

// allocRegisters renumbers bf's virtual registers in place and shrinks
// bf.numRegs to the operand-file size.
func allocRegisters(bf *bcFunc) {
	nr := bf.numRegs
	np := len(bf.fn.Params)
	if nr == 0 || len(bf.code) == 0 {
		return
	}
	nb := len(bf.blocks)
	blockEnd := func(bi int) int32 {
		if bi+1 < nb {
			return bf.blocks[bi+1].start - 1
		}
		return int32(len(bf.code)) - 1
	}

	// Per-block upward-exposed uses and defs. Within an instruction
	// uses are visited before defs (per micro for fused runs); the one
	// read-after-write operand (bcFieldStore's value, resolved after
	// the pointer register is written) is thereby treated as upward
	// exposed — conservative, never unsound.
	use := make([]raBitset, nb)
	def := make([]raBitset, nb)
	liveIn := make([]raBitset, nb)
	liveOut := make([]raBitset, nb)
	for bi := 0; bi < nb; bi++ {
		use[bi], def[bi] = newRaBitset(nr), newRaBitset(nr)
		liveIn[bi], liveOut[bi] = newRaBitset(nr), newRaBitset(nr)
		u, d := use[bi], def[bi]
		addUse := func(r int32) {
			if !d.get(r) {
				u.set(r)
			}
		}
		for pc := bf.blocks[bi].start; pc <= blockEnd(bi); pc++ {
			in := &bf.code[pc]
			if in.op == bcFused {
				for mi := range in.micro {
					m := &in.micro[mi]
					if m.aReg {
						addUse(int32(m.a))
					}
					if m.bReg {
						addUse(int32(m.b))
					}
					if m.dest >= 0 {
						d.set(m.dest)
					}
				}
				continue
			}
			in.forUses(addUse)
			in.forDefs(d.set)
		}
	}

	// Backward fixpoint: liveOut = ∪ liveIn(succ); liveIn = use ∪
	// (liveOut − def).
	for changed := true; changed; {
		changed = false
		for bi := nb - 1; bi >= 0; bi-- {
			for _, s := range bcSuccs(&bf.code[blockEnd(bi)]) {
				if liveOut[bi].orInto(liveIn[s]) {
					changed = true
				}
			}
			for i, w := range liveOut[bi] {
				nw := liveIn[bi][i] | use[bi][i] | (w &^ def[bi][i])
				if nw != liveIn[bi][i] {
					liveIn[bi][i] = nw
					changed = true
				}
			}
		}
	}

	// Live intervals in flat pc positions.
	const unseen = int32(-2)
	start := make([]int32, nr)
	end := make([]int32, nr)
	for r := range start {
		start[r], end[r] = unseen, unseen
	}
	touch := func(r int32, pos int32) {
		if start[r] == unseen || pos < start[r] {
			start[r] = pos
		}
		if end[r] == unseen || pos > end[r] {
			end[r] = pos
		}
	}
	for bi := 0; bi < nb; bi++ {
		bs, be := bf.blocks[bi].start, blockEnd(bi)
		liveIn[bi].forEach(func(r int32) { touch(r, bs) })
		liveOut[bi].forEach(func(r int32) { touch(r, be) })
		for pc := bs; pc <= be; pc++ {
			in := &bf.code[pc]
			if in.op == bcFused {
				for mi := range in.micro {
					m := &in.micro[mi]
					if m.aReg {
						touch(int32(m.a), pc)
					}
					if m.bReg {
						touch(int32(m.b), pc)
					}
					if m.dest >= 0 {
						touch(m.dest, pc)
					}
				}
				continue
			}
			in.forUses(func(r int32) { touch(r, pc) })
			in.forDefs(func(r int32) { touch(r, pc) })
		}
	}
	// Params materialize with the frame; regs live into the entry block
	// are read before any write on some path and rely on the zeroed
	// frame, so both classes start before pc 0 and can never inherit a
	// dirty slot.
	for r := 0; r < np && r < nr; r++ {
		touch(int32(r), -1)
	}
	liveIn[0].forEach(func(r int32) { touch(r, -1) })

	slot := make([]int32, nr)
	for r := range slot {
		slot[r] = -1
	}
	next := int32(np)
	for r := 0; r < np && r < nr; r++ {
		slot[r] = int32(r) // pinned by the call ABI, never recycled
	}
	order := make([]int32, 0, nr)
	for r := int32(0); r < int32(nr); r++ {
		if start[r] != unseen && r >= int32(np) {
			order = append(order, r)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if start[order[i]] != start[order[j]] {
			return start[order[i]] < start[order[j]]
		}
		return order[i] < order[j]
	})
	type active struct{ end, slot int32 }
	var live []active
	var free []int32
	for _, r := range order {
		// Strict expiry: a slot frees only once its interval ended
		// before this one starts, so a same-pc def/last-use pair stays
		// apart.
		kept := live[:0]
		for _, a := range live {
			if a.end < start[r] {
				free = append(free, a.slot)
			} else {
				kept = append(kept, a)
			}
		}
		live = kept
		var s int32
		if n := len(free); n > 0 {
			// LIFO reuse keeps the hottest slots hot; determinism comes
			// from the fixed expiry and allocation order.
			s = free[n-1]
			free = free[:n-1]
		} else {
			s = next
			next++
		}
		slot[r] = s
		live = append(live, active{end: end[r], slot: s})
	}

	// Rewrite the lowered stream in place.
	re := func(r int32) int32 { return slot[r] }
	for pc := range bf.code {
		in := &bf.code[pc]
		if in.op == bcFused {
			for mi := range in.micro {
				m := &in.micro[mi]
				if m.aReg {
					m.a = int64(re(int32(m.a)))
				}
				if m.bReg {
					m.b = int64(re(int32(m.b)))
				}
				if m.dest >= 0 {
					m.dest = re(m.dest)
				}
			}
			continue
		}
		if in.a.reg {
			in.a.v = int64(re(int32(in.a.v)))
		}
		if in.b.reg {
			in.b.v = int64(re(int32(in.b.v)))
		}
		if in.c.reg {
			in.c.v = int64(re(int32(in.c.v)))
		}
		for i := range in.args {
			if in.args[i].reg {
				in.args[i].v = int64(re(int32(in.args[i].v)))
			}
		}
		if in.dest >= 0 {
			in.dest = re(in.dest)
		}
		if in.op == bcFieldLoad {
			in.d2 = re(in.d2)
		}
	}
	if int(next) < nr {
		bf.numRegs = int(next)
	}
}

// microReads reports which operands a micro-op actually consumes.
func microReads(op mcOp) (a, b bool) {
	switch op {
	case mcStore, mcStore8, mcElemPtr, mcPtrAdd, mcBin, mcFBin, mcCmp, mcFCmp,
		mcAdd, mcSub, mcMul, mcAnd, mcOr, mcXor, mcShl, mcShr,
		mcCmpEq, mcCmpNe, mcCmpLt, mcCmpLe, mcCmpGt, mcCmpGe:
		return true, true
	case mcBr:
		return false, false
	default: // mcLoad, mcLoad8, mcFieldPtr, mcItoF, mcFtoI, mcMov, mcCondBr
		return true, false
	}
}

// poolMicroConstants rewrites every immediate micro operand into a
// pooled frame register (deduplicated per function, installed once per
// call), so the fused dispatch loop resolves all operands with an
// unconditional regs[idx] — no reg-vs-const branch per micro. Unused
// operands are normalized to register 0, which the loop may load and
// discard; the bank therefore guarantees at least one register for any
// function containing a fused run. Runs after allocRegisters: pooled
// slots sit above the allocated operand file and are never recycled.
func poolMicroConstants(bf *bcFunc) {
	pool := map[int64]int32{}
	slotFor := func(val int64) int32 {
		s, ok := pool[val]
		if !ok {
			s = int32(bf.numRegs + len(bf.consts))
			pool[val] = s
			bf.consts = append(bf.consts, bcConst{slot: s, val: val})
		}
		return s
	}
	fused := false
	for pc := range bf.code {
		in := &bf.code[pc]
		if in.op != bcFused {
			continue
		}
		fused = true
		for mi := range in.micro {
			m := &in.micro[mi]
			usesA, usesB := microReads(m.op)
			if usesA && !m.aReg {
				m.a = int64(slotFor(m.a))
				m.aReg = true
			} else if !usesA {
				m.a, m.aReg = 0, true
			}
			if usesB && !m.bReg {
				m.b = int64(slotFor(m.b))
				m.bReg = true
			} else if !usesB {
				m.b, m.bReg = 0, true
			}
		}
	}
	bf.numRegs += len(bf.consts)
	if fused && bf.numRegs == 0 {
		bf.numRegs = 1 // register 0 must exist for normalized operands
	}
}
