package vm

import (
	"errors"
	"fmt"
	"math"

	"polar/internal/ir"
	"polar/internal/telemetry"
	"polar/internal/telemetry/profile"
)

// This file is the bytecode engine's dispatch loop. It executes the
// lowered form produced in lower.go and is semantically bit-identical to
// the tree-walker in vm.go: same Stats at every fuel value, same error
// strings at the same sites, same telemetry events, same coverage edges,
// same violation records out of the POLaR runtime. The differential
// suite in engine_differential_test.go holds it to that contract.
//
// The speed comes from work moved to compile time (operand kinds, global
// addresses, func handles, field offsets, load widths, callee binding)
// plus two dynamic techniques:
//
//   - Batched accounting: when the remaining fuel covers a whole block,
//     fuel and the instruction counter are charged once at block entry.
//     Early exits (ret, fault, propagated error) refund the unexecuted
//     suffix using the precomputed wTo prefix weights, and a call
//     un-batches the suffix around the callee so fuel exhaustion surfaces
//     at the exact instruction the tree-walker reports.
//   - Superinstructions: the dominant adjacent pairs dispatch once but
//     account as two source instructions; at a fuel boundary the first
//     half executes alone (halfExec) so the cutoff is indistinguishable
//     from the tree-walker's.

var errFellOffBlock = errors.New("vm: fell off block end")

// halfExec performs the first source instruction of a fused pair. It is
// only reached on the fuel-scarce path when exactly one unit of fuel
// remains: the tree-walker would execute the first instruction and then
// fail the fuel check on the second.
func (v *VM) halfExec(in *bcInstr, regs []int64) {
	switch in.op {
	case bcFieldLoad, bcFieldStore:
		regs[in.dest] = int64(uint64(in.a.arg(regs)) + uint64(in.off))
		v.Stats.FieldAccess++
	case bcCmpBr:
		regs[in.dest] = evalCmp(ir.CmpKind(in.kind), in.a.arg(regs), in.b.arg(regs))
	}
}

// bcExitErr settles block accounting on an early error exit: the
// instruction at pc is priced in full (count-then-execute, matching the
// tree-walker), the unexecuted batched suffix is refunded, and the
// profiler is charged for what actually ran.
func (v *VM) bcExitErr(f *bcFunc, bb *bcBlock, pc int32, charged uint64, psc *profile.SiteCounts, err error) error {
	return v.bcExitErrAt(f, bb, pc, f.code[pc].weight(), charged, psc, err)
}

// bcExitErrAt is bcExitErr for an exit partway through a fused run: sub
// micro-ops of the instruction at pc were counted (the faulting micro
// included, count-then-execute per micro), the rest of the run and the
// batched suffix are refunded.
func (v *VM) bcExitErrAt(f *bcFunc, bb *bcBlock, pc int32, sub uint32, charged uint64, psc *profile.SiteCounts, err error) error {
	actual := f.executedThroughSub(bb, pc, sub)
	if refund := charged - actual; refund != 0 {
		v.fuelLeft += refund
		v.Stats.Instructions -= refund
	}
	if psc != nil && actual != 0 {
		psc.AddCycles(actual)
	}
	return err
}

// stepMicro executes one micro-op outside the hot loop — the
// fuel-scarce prefix path. Terminator micros never reach it: a partial
// prefix is strictly shorter than the run, and a terminator can only be
// the run's last micro.
func (v *VM) stepMicro(m *mcInstr, regs []int64) error {
	// Operands are always register indices (poolMicroConstants), exactly
	// as in the hot loop.
	av := regs[m.a]
	bv := regs[m.b]
	switch m.op {
	case mcLoad:
		u, err := v.Mem.ReadU(uint64(av), int(m.size))
		if err != nil {
			return err
		}
		if s := m.signShift; s != 0 {
			regs[m.dest] = int64(u<<s) >> s
		} else {
			regs[m.dest] = int64(u)
		}
	case mcStore:
		if err := v.Mem.WriteU(uint64(bv), int(m.size), uint64(av)); err != nil {
			return err
		}
	case mcFieldPtr:
		regs[m.dest] = int64(uint64(av) + uint64(m.off))
		v.Stats.FieldAccess++
	case mcElemPtr:
		regs[m.dest] = int64(uint64(av) + uint64(bv)*uint64(m.size))
	case mcPtrAdd:
		regs[m.dest] = int64(uint64(av) + uint64(bv))
	case mcBin:
		r, err := evalBin(ir.BinKind(m.kind), av, bv)
		if err != nil {
			return err
		}
		regs[m.dest] = r
	case mcFBin:
		a := math.Float64frombits(uint64(av))
		b := math.Float64frombits(uint64(bv))
		regs[m.dest] = int64(math.Float64bits(evalFBin(ir.BinKind(m.kind), a, b)))
	case mcCmp:
		regs[m.dest] = evalCmp(ir.CmpKind(m.kind), av, bv)
	case mcFCmp:
		a := math.Float64frombits(uint64(av))
		b := math.Float64frombits(uint64(bv))
		regs[m.dest] = evalFCmp(ir.CmpKind(m.kind), a, b)
	case mcItoF:
		regs[m.dest] = int64(math.Float64bits(float64(av)))
	case mcFtoI:
		regs[m.dest] = int64(math.Float64frombits(uint64(av)))
	case mcMov:
		regs[m.dest] = av
	case mcAdd:
		regs[m.dest] = av + bv
	case mcSub:
		regs[m.dest] = av - bv
	case mcMul:
		regs[m.dest] = av * bv
	case mcAnd:
		regs[m.dest] = av & bv
	case mcOr:
		regs[m.dest] = av | bv
	case mcXor:
		regs[m.dest] = av ^ bv
	case mcShl:
		regs[m.dest] = av << (uint64(bv) & 63)
	case mcShr:
		regs[m.dest] = int64(uint64(av) >> (uint64(bv) & 63))
	case mcLoad8:
		u, err := v.Mem.ReadU(uint64(av), 8)
		if err != nil {
			return err
		}
		regs[m.dest] = int64(u)
	case mcStore8:
		if err := v.Mem.WriteU(uint64(bv), 8, uint64(av)); err != nil {
			return err
		}
	case mcCmpEq:
		regs[m.dest] = evalCmp(ir.CmpEq, av, bv)
	case mcCmpNe:
		regs[m.dest] = evalCmp(ir.CmpNe, av, bv)
	case mcCmpLt:
		regs[m.dest] = evalCmp(ir.CmpLt, av, bv)
	case mcCmpLe:
		regs[m.dest] = evalCmp(ir.CmpLe, av, bv)
	case mcCmpGt:
		regs[m.dest] = evalCmp(ir.CmpGt, av, bv)
	case mcCmpGe:
		regs[m.dest] = evalCmp(ir.CmpGe, av, bv)
	}
	return nil
}

// fusedPartial runs the fuel-affordable prefix of a fused run when the
// remaining fuel cannot cover the whole dispatch: exactly what the
// tree-walker would do — execute fuelLeft more source instructions,
// then fail the fuel check (or fault mid-prefix with the prefix
// charged, count-then-execute per micro).
func (v *VM) fusedPartial(fn *ir.Func, bb *bcBlock, in *bcInstr, regs []int64, charged uint64, psc *profile.SiteCounts) error {
	k := v.fuelLeft
	v.fuelLeft = 0
	v.Stats.Instructions += k
	charged += k
	for mi := uint64(0); mi < k; mi++ {
		if err := v.stepMicro(&in.micro[mi], regs); err != nil {
			// Micro mi was counted and then faulted; refund the counted
			// but unexecuted tail of the prefix.
			refund := k - (mi + 1)
			v.fuelLeft += refund
			v.Stats.Instructions -= refund
			charged -= refund
			if psc != nil && charged != 0 {
				psc.AddCycles(charged)
			}
			return v.fault(fn, bb.irb, err)
		}
	}
	if psc != nil && charged != 0 {
		psc.AddCycles(charged)
	}
	return fmt.Errorf("%w in @%s.%s", ErrFuelExhausted, fn.Name, bb.irb.Name)
}

// callBC runs one lowered function to completion. It is the bytecode
// counterpart of VM.call; args are the caller's already-resolved
// operands (copied into the frame immediately, so the caller's scratch
// buffer is free for reuse by nested calls).
func (v *VM) callBC(f *bcFunc, args []int64) (int64, error) {
	fn := f.fn
	if v.depth >= maxCallDepth {
		return 0, fmt.Errorf("%w in @%s", ErrStackOverflow, fn.Name)
	}
	v.depth++
	if v.depth > v.Stats.MaxDepth {
		v.Stats.MaxDepth = v.depth
	}
	v.Stats.Calls++
	var xtFrames []uint32
	if v.xt != nil {
		xtFrames = v.xtEnter(fn)
	}
	savedStack := v.stackTop
	regs := v.getFrame(f.numRegs)
	defer func() {
		v.putFrame(regs)
		v.stackTop = savedStack
		v.depth--
	}()
	if n := len(fn.Params); n > 0 {
		if n > len(args) {
			n = len(args)
		}
		copy(regs, args[:n])
	}
	for i := range f.consts {
		regs[f.consts[i].slot] = f.consts[i].val
	}

	code := f.code
	mem := v.Mem
	var psc *profile.SiteCounts
	blk, prevBlk := 0, -1
blockLoop:
	for {
		bb := &f.blocks[blk]
		if xtFrames != nil {
			if f := xtFrames[blk]; !v.xt.FastAppend4(f) {
				v.xt.BlockFrameSlow(f)
			}
		}
		if v.profSites != nil {
			c, ok := v.profSites[bb.irb]
			if !ok {
				c = v.prof.Site(v.prog.SiteName(bb.irb))
				v.profSites[bb.irb] = c
			}
			psc = c
		}
		if v.coverage != nil {
			e := edgeHash(fn, prevBlk, blk)
			if c := &v.coverage[e]; *c < 255 {
				*c++
			}
		}
		end := int32(len(code))
		if blk+1 < len(f.blocks) {
			end = f.blocks[blk+1].start
		}
		cost := uint64(bb.cost)
		batched := v.fuelLeft >= cost
		var charged uint64
		if batched {
			v.fuelLeft -= cost
			v.Stats.Instructions += cost
			charged = cost
		}
		for pc := bb.start; pc < end; pc++ {
			in := &code[pc]
			if !batched {
				w := uint64(in.weight())
				if v.fuelLeft < w {
					if in.op == bcFused && v.fuelLeft > 0 {
						return 0, v.fusedPartial(fn, bb, in, regs, charged, psc)
					}
					if v.fuelLeft == 1 && w == 2 {
						v.halfExec(in, regs)
						v.fuelLeft--
						v.Stats.Instructions++
						charged++
					}
					if psc != nil && charged != 0 {
						psc.AddCycles(charged)
					}
					return 0, fmt.Errorf("%w in @%s.%s", ErrFuelExhausted, fn.Name, bb.irb.Name)
				}
				v.fuelLeft -= w
				v.Stats.Instructions += w
				charged += w
			}

			switch in.op {
			case bcAlloc:
				count := int(in.a.arg(regs))
				if count < 1 {
					count = 1
				}
				size := int(in.size) * count
				addr, err := v.Heap.Alloc(size)
				if err != nil {
					return 0, v.bcExitErr(f, bb, pc, charged, psc, v.fault(fn, bb.irb, err))
				}
				v.Stats.Allocs++
				regs[in.dest] = int64(addr)
				if in.st != nil && count == 1 {
					v.objects[addr] = in.st
				}
				if v.tel != nil {
					name := ""
					if in.st != nil {
						name = in.st.Name
					}
					v.tel.Emit(telemetry.Event{Kind: telemetry.EvAlloc, Addr: addr, Size: size, Detail: name})
				}
			case bcLocal:
				size := uint64((in.size + 15) &^ 15)
				if v.stackTop+size > StackLimit {
					return 0, v.bcExitErr(f, bb, pc, charged, psc, v.fault(fn, bb.irb, ErrStackOverflow))
				}
				addr := v.stackTop
				v.stackTop += size
				if err := v.Mem.Set(addr, 0, int(in.size)); err != nil {
					return 0, v.bcExitErr(f, bb, pc, charged, psc, v.fault(fn, bb.irb, err))
				}
				regs[in.dest] = int64(addr)
			case bcFree:
				addr := uint64(in.a.arg(regs))
				if err := v.Heap.Free(addr); err != nil {
					return 0, v.bcExitErr(f, bb, pc, charged, psc, v.fault(fn, bb.irb, err))
				}
				v.Stats.Frees++
				if v.icGen != nil {
					// A freed base may be recycled by a later alloc of a
					// different class; advancing the layout generation keeps
					// stale inline-cache entries from matching. (Same point
					// as the tree-walker's OpFree arm.)
					*v.icGen++
				}
				if v.tel != nil {
					v.tel.Emit(telemetry.Event{Kind: telemetry.EvFree, Addr: addr})
				}
				delete(v.objects, addr)
			case bcLoad:
				addr := uint64(in.a.arg(regs))
				u, ok := mem.readFast(addr, in.size)
				if !ok {
					var err error
					u, err = mem.ReadU(addr, int(in.size))
					if err != nil {
						return 0, v.bcExitErr(f, bb, pc, charged, psc, v.fault(fn, bb.irb, err))
					}
				}
				if s := in.signShift; s != 0 {
					regs[in.dest] = int64(u<<s) >> s
				} else {
					regs[in.dest] = int64(u)
				}
			case bcStore:
				addr := uint64(in.b.arg(regs))
				val := in.a.arg(regs)
				if in.size != 8 || !mem.write8Fast(addr, uint64(val)) {
					if err := mem.WriteU(addr, int(in.size), uint64(val)); err != nil {
						return 0, v.bcExitErr(f, bb, pc, charged, psc, v.fault(fn, bb.irb, err))
					}
				}
			case bcMemcpy:
				dst := uint64(in.a.arg(regs))
				src := uint64(in.b.arg(regs))
				n := int(in.c.arg(regs))
				if n < 0 {
					n = 0
				}
				if err := v.Mem.Copy(dst, src, n); err != nil {
					return 0, v.bcExitErr(f, bb, pc, charged, psc, v.fault(fn, bb.irb, err))
				}
				v.Stats.Memcpys++
			case bcMemset:
				dst := uint64(in.a.arg(regs))
				val := byte(in.b.arg(regs))
				n := int(in.c.arg(regs))
				if n < 0 {
					n = 0
				}
				if err := v.Mem.Set(dst, val, n); err != nil {
					return 0, v.bcExitErr(f, bb, pc, charged, psc, v.fault(fn, bb.irb, err))
				}
			case bcFieldPtr:
				regs[in.dest] = int64(uint64(in.a.arg(regs)) + uint64(in.off))
				v.Stats.FieldAccess++
			case bcFieldLoad:
				p := uint64(in.a.arg(regs)) + uint64(in.off)
				regs[in.dest] = int64(p)
				v.Stats.FieldAccess++
				u, ok := mem.readFast(p, in.size)
				if !ok {
					var err error
					u, err = mem.ReadU(p, int(in.size))
					if err != nil {
						return 0, v.bcExitErr(f, bb, pc, charged, psc, v.fault(fn, bb.irb, err))
					}
				}
				if s := in.signShift; s != 0 {
					regs[in.d2] = int64(u<<s) >> s
				} else {
					regs[in.d2] = int64(u)
				}
			case bcFieldStore:
				p := uint64(in.a.arg(regs)) + uint64(in.off)
				regs[in.dest] = int64(p)
				v.Stats.FieldAccess++
				// Resolve the value after the pointer register is written:
				// the store may name the fieldptr result itself.
				val := in.b.arg(regs)
				if in.size != 8 || !mem.write8Fast(p, uint64(val)) {
					if err := mem.WriteU(p, int(in.size), uint64(val)); err != nil {
						return 0, v.bcExitErr(f, bb, pc, charged, psc, v.fault(fn, bb.irb, err))
					}
				}
			case bcElemPtr:
				base := uint64(in.a.arg(regs))
				idx := in.b.arg(regs)
				regs[in.dest] = int64(base + uint64(idx)*uint64(in.size))
			case bcPtrAdd:
				base := uint64(in.a.arg(regs))
				off := in.b.arg(regs)
				regs[in.dest] = int64(base + uint64(off))
			case bcBin:
				r, err := evalBin(ir.BinKind(in.kind), in.a.arg(regs), in.b.arg(regs))
				if err != nil {
					return 0, v.bcExitErr(f, bb, pc, charged, psc, v.fault(fn, bb.irb, err))
				}
				regs[in.dest] = r
			case bcFBin:
				a := math.Float64frombits(uint64(in.a.arg(regs)))
				b := math.Float64frombits(uint64(in.b.arg(regs)))
				regs[in.dest] = int64(math.Float64bits(evalFBin(ir.BinKind(in.kind), a, b)))
			case bcCmp:
				regs[in.dest] = evalCmp(ir.CmpKind(in.kind), in.a.arg(regs), in.b.arg(regs))
			case bcFCmp:
				a := math.Float64frombits(uint64(in.a.arg(regs)))
				b := math.Float64frombits(uint64(in.b.arg(regs)))
				regs[in.dest] = evalFCmp(ir.CmpKind(in.kind), a, b)
			case bcItoF:
				regs[in.dest] = int64(math.Float64bits(float64(in.a.arg(regs))))
			case bcFtoI:
				regs[in.dest] = int64(math.Float64frombits(uint64(in.a.arg(regs))))
			case bcMov:
				regs[in.dest] = in.a.arg(regs)
			case bcBr:
				if psc != nil {
					psc.AddCycles(charged)
				}
				prevBlk, blk = blk, int(in.t0)
				continue blockLoop
			case bcCondBr:
				if psc != nil {
					psc.AddCycles(charged)
				}
				prevBlk = blk
				if in.a.arg(regs) != 0 {
					blk = int(in.t0)
				} else {
					blk = int(in.t1)
				}
				continue blockLoop
			case bcCmpBr:
				c := evalCmp(ir.CmpKind(in.kind), in.a.arg(regs), in.b.arg(regs))
				regs[in.dest] = c
				if psc != nil {
					psc.AddCycles(charged)
				}
				prevBlk = blk
				if c != 0 {
					blk = int(in.t0)
				} else {
					blk = int(in.t1)
				}
				continue blockLoop
			case bcFused:
				v.Perf.FusedDispatches++
				micro := in.micro
				for mi := 0; mi < len(micro); mi++ {
					// All micro operands are register indices after
					// poolMicroConstants (immediates live in the pooled
					// const bank; unused operands alias register 0).
					m := &micro[mi]
					av := regs[m.a]
					switch m.op {
					case mcBin:
						bv := regs[m.b]
						switch ir.BinKind(m.kind) {
						case ir.BinAdd:
							regs[m.dest] = av + bv
						case ir.BinSub:
							regs[m.dest] = av - bv
						case ir.BinMul:
							regs[m.dest] = av * bv
						case ir.BinAnd:
							regs[m.dest] = av & bv
						case ir.BinOr:
							regs[m.dest] = av | bv
						case ir.BinXor:
							regs[m.dest] = av ^ bv
						case ir.BinShl:
							regs[m.dest] = av << (uint64(bv) & 63)
						case ir.BinShr:
							regs[m.dest] = int64(uint64(av) >> (uint64(bv) & 63))
						default:
							r, err := evalBin(ir.BinKind(m.kind), av, bv)
							if err != nil {
								return 0, v.bcExitErrAt(f, bb, pc, uint32(mi+1), charged, psc, v.fault(fn, bb.irb, err))
							}
							regs[m.dest] = r
						}
					case mcLoad:
						u, ok := mem.readFast(uint64(av), m.size)
						if !ok {
							var err error
							u, err = mem.ReadU(uint64(av), int(m.size))
							if err != nil {
								return 0, v.bcExitErrAt(f, bb, pc, uint32(mi+1), charged, psc, v.fault(fn, bb.irb, err))
							}
						}
						if s := m.signShift; s != 0 {
							regs[m.dest] = int64(u<<s) >> s
						} else {
							regs[m.dest] = int64(u)
						}
					case mcStore:
						bv := regs[m.b]
						if m.size != 8 || !mem.write8Fast(uint64(bv), uint64(av)) {
							if err := mem.WriteU(uint64(bv), int(m.size), uint64(av)); err != nil {
								return 0, v.bcExitErrAt(f, bb, pc, uint32(mi+1), charged, psc, v.fault(fn, bb.irb, err))
							}
						}
					case mcFieldPtr:
						regs[m.dest] = int64(uint64(av) + uint64(m.off))
						v.Stats.FieldAccess++
					case mcElemPtr:
						regs[m.dest] = int64(uint64(av) + uint64(regs[m.b])*uint64(m.size))
					case mcPtrAdd:
						regs[m.dest] = int64(uint64(av) + uint64(regs[m.b]))
					case mcCmp:
						regs[m.dest] = evalCmp(ir.CmpKind(m.kind), av, regs[m.b])
					case mcFBin:
						fa := math.Float64frombits(uint64(av))
						fb := math.Float64frombits(uint64(regs[m.b]))
						regs[m.dest] = int64(math.Float64bits(evalFBin(ir.BinKind(m.kind), fa, fb)))
					case mcFCmp:
						fa := math.Float64frombits(uint64(av))
						fb := math.Float64frombits(uint64(regs[m.b]))
						regs[m.dest] = evalFCmp(ir.CmpKind(m.kind), fa, fb)
					case mcItoF:
						regs[m.dest] = int64(math.Float64bits(float64(av)))
					case mcFtoI:
						regs[m.dest] = int64(math.Float64frombits(uint64(av)))
					case mcMov:
						regs[m.dest] = av
					case mcAdd:
						regs[m.dest] = av + regs[m.b]
					case mcSub:
						regs[m.dest] = av - regs[m.b]
					case mcMul:
						regs[m.dest] = av * regs[m.b]
					case mcAnd:
						regs[m.dest] = av & regs[m.b]
					case mcOr:
						regs[m.dest] = av | regs[m.b]
					case mcXor:
						regs[m.dest] = av ^ regs[m.b]
					case mcShl:
						regs[m.dest] = av << (uint64(regs[m.b]) & 63)
					case mcShr:
						regs[m.dest] = int64(uint64(av) >> (uint64(regs[m.b]) & 63))
					case mcLoad8:
						u, ok := mem.readFast8(uint64(av))
						if !ok {
							var err error
							u, err = mem.ReadU(uint64(av), 8)
							if err != nil {
								return 0, v.bcExitErrAt(f, bb, pc, uint32(mi+1), charged, psc, v.fault(fn, bb.irb, err))
							}
						}
						regs[m.dest] = int64(u)
					case mcStore8:
						if !mem.write8Fast(uint64(regs[m.b]), uint64(av)) {
							if err := mem.WriteU(uint64(regs[m.b]), 8, uint64(av)); err != nil {
								return 0, v.bcExitErrAt(f, bb, pc, uint32(mi+1), charged, psc, v.fault(fn, bb.irb, err))
							}
						}
					case mcCmpEq:
						if av == regs[m.b] {
							regs[m.dest] = 1
						} else {
							regs[m.dest] = 0
						}
					case mcCmpNe:
						if av != regs[m.b] {
							regs[m.dest] = 1
						} else {
							regs[m.dest] = 0
						}
					case mcCmpLt:
						if av < regs[m.b] {
							regs[m.dest] = 1
						} else {
							regs[m.dest] = 0
						}
					case mcCmpLe:
						if av <= regs[m.b] {
							regs[m.dest] = 1
						} else {
							regs[m.dest] = 0
						}
					case mcCmpGt:
						if av > regs[m.b] {
							regs[m.dest] = 1
						} else {
							regs[m.dest] = 0
						}
					case mcCmpGe:
						if av >= regs[m.b] {
							regs[m.dest] = 1
						} else {
							regs[m.dest] = 0
						}
					case mcBr:
						if psc != nil {
							psc.AddCycles(charged)
						}
						prevBlk, blk = blk, int(m.off)
						continue blockLoop
					case mcCondBr:
						if psc != nil {
							psc.AddCycles(charged)
						}
						prevBlk = blk
						if av != 0 {
							blk = int(m.off)
						} else {
							blk = int(m.t1)
						}
						continue blockLoop
					}
				}
			case bcCallFunc:
				argv := v.argvScratch[:0]
				for i := range in.args {
					argv = append(argv, in.args[i].arg(regs))
				}
				v.argvScratch = argv[:0]
				var suffix uint64
				if batched {
					// Hand back the unexecuted tail of the block so the
					// callee sees the same fuel as under incremental
					// accounting; re-batch (or downgrade) on return.
					if suffix = cost - f.executedThrough(bb, pc); suffix != 0 {
						v.fuelLeft += suffix
						v.Stats.Instructions -= suffix
						charged -= suffix
					}
				}
				ret, err := v.callBC(v.prog.bcFuncs[in.off], argv)
				if err != nil {
					if psc != nil && charged != 0 {
						psc.AddCycles(charged)
					}
					return 0, err
				}
				if suffix != 0 {
					if v.fuelLeft >= suffix {
						v.fuelLeft -= suffix
						v.Stats.Instructions += suffix
						charged += suffix
					} else {
						batched = false
					}
				}
				if in.dest >= 0 {
					regs[in.dest] = ret
				}
			case bcCallBuiltin:
				if in.ic >= 0 && v.icGen != nil {
					// Inline layout cache: a monomorphic olr_getptr site
					// whose (base, field, class) still matches under the
					// current layout generation skips the resolver entirely.
					base := uint64(in.args[0].arg(regs))
					field := in.args[1].arg(regs)
					class := uint64(in.args[2].arg(regs))
					if e := &v.icSlots[in.ic]; e.gen == *v.icGen && e.base == base && e.field == field && e.class == class {
						v.Perf.InlineHits++
						v.icHit(v.prog.SiteName(bb.irb), base, field, class, e.off)
						if in.dest >= 0 {
							regs[in.dest] = int64(base + uint64(e.off))
						}
						break
					}
					v.Perf.InlineMisses++
				}
				bi := v.builtinSlots[in.off]
				if bi == nil {
					return 0, v.bcExitErr(f, bb, pc, charged, psc,
						v.fault(fn, bb.irb, fmt.Errorf("%w: @%s", ErrUnknownFunc, in.irIn.Callee)))
				}
				argv := v.argvScratch[:0]
				for i := range in.args {
					argv = append(argv, in.args[i].arg(regs))
				}
				v.argvScratch = argv[:0]
				v.callScratch = Call{VM: v, Name: in.irIn.Callee, Args: argv, RawArgs: in.irIn.Args, fn: fn, blk: bb.irb, ic: in.ic + 1}
				ret, err := bi(&v.callScratch)
				if err != nil {
					return 0, v.bcExitErr(f, bb, pc, charged, psc, v.fault(fn, bb.irb, err))
				}
				if in.dest >= 0 {
					regs[in.dest] = ret
				}
			case bcRet, bcRetVoid:
				var rv int64
				if in.op == bcRet {
					rv = in.a.arg(regs)
				}
				actual := f.executedThrough(bb, pc)
				if refund := charged - actual; refund != 0 {
					v.fuelLeft += refund
					v.Stats.Instructions -= refund
				}
				if psc != nil && actual != 0 {
					psc.AddCycles(actual)
				}
				return rv, nil
			default:
				return 0, v.bcExitErr(f, bb, pc, charged, psc,
					v.fault(fn, bb.irb, fmt.Errorf("vm: bad opcode %d", in.irIn.Op)))
			}
		}
		// Validation guarantees every block ends in a terminator; reaching
		// here mirrors the tree-walker's defensive check.
		if psc != nil && charged != 0 {
			psc.AddCycles(charged)
		}
		return 0, v.fault(fn, bb.irb, errFellOffBlock)
	}
}
