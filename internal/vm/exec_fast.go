package vm

import (
	"errors"
	"fmt"
	"math"

	"polar/internal/ir"
	"polar/internal/telemetry"
	"polar/internal/telemetry/profile"
)

// This file is the bytecode engine's dispatch loop. It executes the
// lowered form produced in lower.go and is semantically bit-identical to
// the tree-walker in vm.go: same Stats at every fuel value, same error
// strings at the same sites, same telemetry events, same coverage edges,
// same violation records out of the POLaR runtime. The differential
// suite in engine_differential_test.go holds it to that contract.
//
// The speed comes from work moved to compile time (operand kinds, global
// addresses, func handles, field offsets, load widths, callee binding)
// plus two dynamic techniques:
//
//   - Batched accounting: when the remaining fuel covers a whole block,
//     fuel and the instruction counter are charged once at block entry.
//     Early exits (ret, fault, propagated error) refund the unexecuted
//     suffix using the precomputed wTo prefix weights, and a call
//     un-batches the suffix around the callee so fuel exhaustion surfaces
//     at the exact instruction the tree-walker reports.
//   - Superinstructions: the dominant adjacent pairs dispatch once but
//     account as two source instructions; at a fuel boundary the first
//     half executes alone (halfExec) so the cutoff is indistinguishable
//     from the tree-walker's.

var errFellOffBlock = errors.New("vm: fell off block end")

// halfExec performs the first source instruction of a fused pair. It is
// only reached on the fuel-scarce path when exactly one unit of fuel
// remains: the tree-walker would execute the first instruction and then
// fail the fuel check on the second.
func (v *VM) halfExec(in *bcInstr, regs []int64) {
	switch in.op {
	case bcFieldLoad, bcFieldStore:
		regs[in.dest] = int64(uint64(in.a.arg(regs)) + uint64(in.off))
		v.Stats.FieldAccess++
	case bcCmpBr:
		regs[in.dest] = evalCmp(ir.CmpKind(in.kind), in.a.arg(regs), in.b.arg(regs))
	}
}

// bcExitErr settles block accounting on an early error exit: the
// instruction at pc is priced in full (count-then-execute, matching the
// tree-walker), the unexecuted batched suffix is refunded, and the
// profiler is charged for what actually ran.
func (v *VM) bcExitErr(f *bcFunc, bb *bcBlock, pc int32, charged uint64, psc *profile.SiteCounts, err error) error {
	actual := f.executedThrough(bb, pc)
	if refund := charged - actual; refund != 0 {
		v.fuelLeft += refund
		v.Stats.Instructions -= refund
	}
	if psc != nil && actual != 0 {
		psc.AddCycles(actual)
	}
	return err
}

// callBC runs one lowered function to completion. It is the bytecode
// counterpart of VM.call; args are the caller's already-resolved
// operands (copied into the frame immediately, so the caller's scratch
// buffer is free for reuse by nested calls).
func (v *VM) callBC(f *bcFunc, args []int64) (int64, error) {
	fn := f.fn
	if v.depth >= maxCallDepth {
		return 0, fmt.Errorf("%w in @%s", ErrStackOverflow, fn.Name)
	}
	v.depth++
	if v.depth > v.Stats.MaxDepth {
		v.Stats.MaxDepth = v.depth
	}
	v.Stats.Calls++
	var xtFrames []uint32
	if v.xt != nil {
		xtFrames = v.xtEnter(fn)
	}
	savedStack := v.stackTop
	regs := v.getFrame(f.numRegs)
	defer func() {
		v.putFrame(regs)
		v.stackTop = savedStack
		v.depth--
	}()
	if n := len(fn.Params); n > 0 {
		if n > len(args) {
			n = len(args)
		}
		copy(regs, args[:n])
	}

	code := f.code
	var psc *profile.SiteCounts
	blk, prevBlk := 0, -1
blockLoop:
	for {
		bb := &f.blocks[blk]
		if xtFrames != nil {
			if f := xtFrames[blk]; !v.xt.FastAppend4(f) {
				v.xt.BlockFrameSlow(f)
			}
		}
		if v.profSites != nil {
			c, ok := v.profSites[bb.irb]
			if !ok {
				c = v.prof.Site(v.prog.SiteName(bb.irb))
				v.profSites[bb.irb] = c
			}
			psc = c
		}
		if v.coverage != nil {
			e := edgeHash(fn, prevBlk, blk)
			if c := &v.coverage[e]; *c < 255 {
				*c++
			}
		}
		end := int32(len(code))
		if blk+1 < len(f.blocks) {
			end = f.blocks[blk+1].start
		}
		cost := uint64(bb.cost)
		batched := v.fuelLeft >= cost
		var charged uint64
		if batched {
			v.fuelLeft -= cost
			v.Stats.Instructions += cost
			charged = cost
		}
		for pc := bb.start; pc < end; pc++ {
			in := &code[pc]
			if !batched {
				w := uint64(in.op.weight())
				if v.fuelLeft < w {
					if v.fuelLeft == 1 && w == 2 {
						v.halfExec(in, regs)
						v.fuelLeft--
						v.Stats.Instructions++
						charged++
					}
					if psc != nil && charged != 0 {
						psc.AddCycles(charged)
					}
					return 0, fmt.Errorf("%w in @%s.%s", ErrFuelExhausted, fn.Name, bb.irb.Name)
				}
				v.fuelLeft -= w
				v.Stats.Instructions += w
				charged += w
			}

			switch in.op {
			case bcAlloc:
				count := int(in.a.arg(regs))
				if count < 1 {
					count = 1
				}
				size := int(in.size) * count
				addr, err := v.Heap.Alloc(size)
				if err != nil {
					return 0, v.bcExitErr(f, bb, pc, charged, psc, v.fault(fn, bb.irb, err))
				}
				v.Stats.Allocs++
				regs[in.dest] = int64(addr)
				if in.st != nil && count == 1 {
					v.objects[addr] = in.st
				}
				if v.tel != nil {
					name := ""
					if in.st != nil {
						name = in.st.Name
					}
					v.tel.Emit(telemetry.Event{Kind: telemetry.EvAlloc, Addr: addr, Size: size, Detail: name})
				}
			case bcLocal:
				size := uint64((in.size + 15) &^ 15)
				if v.stackTop+size > StackLimit {
					return 0, v.bcExitErr(f, bb, pc, charged, psc, v.fault(fn, bb.irb, ErrStackOverflow))
				}
				addr := v.stackTop
				v.stackTop += size
				if err := v.Mem.Set(addr, 0, int(in.size)); err != nil {
					return 0, v.bcExitErr(f, bb, pc, charged, psc, v.fault(fn, bb.irb, err))
				}
				regs[in.dest] = int64(addr)
			case bcFree:
				addr := uint64(in.a.arg(regs))
				if err := v.Heap.Free(addr); err != nil {
					return 0, v.bcExitErr(f, bb, pc, charged, psc, v.fault(fn, bb.irb, err))
				}
				v.Stats.Frees++
				if v.tel != nil {
					v.tel.Emit(telemetry.Event{Kind: telemetry.EvFree, Addr: addr})
				}
				delete(v.objects, addr)
			case bcLoad:
				addr := uint64(in.a.arg(regs))
				u, err := v.Mem.ReadU(addr, int(in.size))
				if err != nil {
					return 0, v.bcExitErr(f, bb, pc, charged, psc, v.fault(fn, bb.irb, err))
				}
				if s := in.signShift; s != 0 {
					regs[in.dest] = int64(u<<s) >> s
				} else {
					regs[in.dest] = int64(u)
				}
			case bcStore:
				addr := uint64(in.b.arg(regs))
				val := in.a.arg(regs)
				if err := v.Mem.WriteU(addr, int(in.size), uint64(val)); err != nil {
					return 0, v.bcExitErr(f, bb, pc, charged, psc, v.fault(fn, bb.irb, err))
				}
			case bcMemcpy:
				dst := uint64(in.a.arg(regs))
				src := uint64(in.b.arg(regs))
				n := int(in.c.arg(regs))
				if n < 0 {
					n = 0
				}
				if err := v.Mem.Copy(dst, src, n); err != nil {
					return 0, v.bcExitErr(f, bb, pc, charged, psc, v.fault(fn, bb.irb, err))
				}
				v.Stats.Memcpys++
			case bcMemset:
				dst := uint64(in.a.arg(regs))
				val := byte(in.b.arg(regs))
				n := int(in.c.arg(regs))
				if n < 0 {
					n = 0
				}
				if err := v.Mem.Set(dst, val, n); err != nil {
					return 0, v.bcExitErr(f, bb, pc, charged, psc, v.fault(fn, bb.irb, err))
				}
			case bcFieldPtr:
				regs[in.dest] = int64(uint64(in.a.arg(regs)) + uint64(in.off))
				v.Stats.FieldAccess++
			case bcFieldLoad:
				p := uint64(in.a.arg(regs)) + uint64(in.off)
				regs[in.dest] = int64(p)
				v.Stats.FieldAccess++
				u, err := v.Mem.ReadU(p, int(in.size))
				if err != nil {
					return 0, v.bcExitErr(f, bb, pc, charged, psc, v.fault(fn, bb.irb, err))
				}
				if s := in.signShift; s != 0 {
					regs[in.d2] = int64(u<<s) >> s
				} else {
					regs[in.d2] = int64(u)
				}
			case bcFieldStore:
				p := uint64(in.a.arg(regs)) + uint64(in.off)
				regs[in.dest] = int64(p)
				v.Stats.FieldAccess++
				// Resolve the value after the pointer register is written:
				// the store may name the fieldptr result itself.
				val := in.b.arg(regs)
				if err := v.Mem.WriteU(p, int(in.size), uint64(val)); err != nil {
					return 0, v.bcExitErr(f, bb, pc, charged, psc, v.fault(fn, bb.irb, err))
				}
			case bcElemPtr:
				base := uint64(in.a.arg(regs))
				idx := in.b.arg(regs)
				regs[in.dest] = int64(base + uint64(idx)*uint64(in.size))
			case bcPtrAdd:
				base := uint64(in.a.arg(regs))
				off := in.b.arg(regs)
				regs[in.dest] = int64(base + uint64(off))
			case bcBin:
				r, err := evalBin(ir.BinKind(in.kind), in.a.arg(regs), in.b.arg(regs))
				if err != nil {
					return 0, v.bcExitErr(f, bb, pc, charged, psc, v.fault(fn, bb.irb, err))
				}
				regs[in.dest] = r
			case bcFBin:
				a := math.Float64frombits(uint64(in.a.arg(regs)))
				b := math.Float64frombits(uint64(in.b.arg(regs)))
				regs[in.dest] = int64(math.Float64bits(evalFBin(ir.BinKind(in.kind), a, b)))
			case bcCmp:
				regs[in.dest] = evalCmp(ir.CmpKind(in.kind), in.a.arg(regs), in.b.arg(regs))
			case bcFCmp:
				a := math.Float64frombits(uint64(in.a.arg(regs)))
				b := math.Float64frombits(uint64(in.b.arg(regs)))
				regs[in.dest] = evalFCmp(ir.CmpKind(in.kind), a, b)
			case bcItoF:
				regs[in.dest] = int64(math.Float64bits(float64(in.a.arg(regs))))
			case bcFtoI:
				regs[in.dest] = int64(math.Float64frombits(uint64(in.a.arg(regs))))
			case bcMov:
				regs[in.dest] = in.a.arg(regs)
			case bcBr:
				if psc != nil {
					psc.AddCycles(charged)
				}
				prevBlk, blk = blk, int(in.t0)
				continue blockLoop
			case bcCondBr:
				if psc != nil {
					psc.AddCycles(charged)
				}
				prevBlk = blk
				if in.a.arg(regs) != 0 {
					blk = int(in.t0)
				} else {
					blk = int(in.t1)
				}
				continue blockLoop
			case bcCmpBr:
				c := evalCmp(ir.CmpKind(in.kind), in.a.arg(regs), in.b.arg(regs))
				regs[in.dest] = c
				if psc != nil {
					psc.AddCycles(charged)
				}
				prevBlk = blk
				if c != 0 {
					blk = int(in.t0)
				} else {
					blk = int(in.t1)
				}
				continue blockLoop
			case bcCallFunc:
				argv := v.argvScratch[:0]
				for i := range in.args {
					argv = append(argv, in.args[i].arg(regs))
				}
				v.argvScratch = argv[:0]
				var suffix uint64
				if batched {
					// Hand back the unexecuted tail of the block so the
					// callee sees the same fuel as under incremental
					// accounting; re-batch (or downgrade) on return.
					if suffix = cost - f.executedThrough(bb, pc); suffix != 0 {
						v.fuelLeft += suffix
						v.Stats.Instructions -= suffix
						charged -= suffix
					}
				}
				ret, err := v.callBC(v.prog.bcFuncs[in.off], argv)
				if err != nil {
					if psc != nil && charged != 0 {
						psc.AddCycles(charged)
					}
					return 0, err
				}
				if suffix != 0 {
					if v.fuelLeft >= suffix {
						v.fuelLeft -= suffix
						v.Stats.Instructions += suffix
						charged += suffix
					} else {
						batched = false
					}
				}
				if in.dest >= 0 {
					regs[in.dest] = ret
				}
			case bcCallBuiltin:
				bi := v.builtinSlots[in.off]
				if bi == nil {
					return 0, v.bcExitErr(f, bb, pc, charged, psc,
						v.fault(fn, bb.irb, fmt.Errorf("%w: @%s", ErrUnknownFunc, in.irIn.Callee)))
				}
				argv := v.argvScratch[:0]
				for i := range in.args {
					argv = append(argv, in.args[i].arg(regs))
				}
				v.argvScratch = argv[:0]
				v.callScratch = Call{VM: v, Name: in.irIn.Callee, Args: argv, RawArgs: in.irIn.Args, fn: fn, blk: bb.irb}
				ret, err := bi(&v.callScratch)
				if err != nil {
					return 0, v.bcExitErr(f, bb, pc, charged, psc, v.fault(fn, bb.irb, err))
				}
				if in.dest >= 0 {
					regs[in.dest] = ret
				}
			case bcRet, bcRetVoid:
				var rv int64
				if in.op == bcRet {
					rv = in.a.arg(regs)
				}
				actual := f.executedThrough(bb, pc)
				if refund := charged - actual; refund != 0 {
					v.fuelLeft += refund
					v.Stats.Instructions -= refund
				}
				if psc != nil && actual != 0 {
					psc.AddCycles(actual)
				}
				return rv, nil
			default:
				return 0, v.bcExitErr(f, bb, pc, charged, psc,
					v.fault(fn, bb.irb, fmt.Errorf("vm: bad opcode %d", in.irIn.Op)))
			}
		}
		// Validation guarantees every block ends in a terminator; reaching
		// here mirrors the tree-walker's defensive check.
		if psc != nil && charged != 0 {
			psc.AddCycles(charged)
		}
		return 0, v.fault(fn, bb.irb, errFellOffBlock)
	}
}
