package vm

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"polar/internal/ir"
)

func mustVM(t *testing.T, m *ir.Module, opts ...Option) *VM {
	t.Helper()
	v, err := New(m, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		op   ir.BinKind
		a, b int64
		want int64
	}{
		{ir.BinAdd, 7, 5, 12},
		{ir.BinSub, 7, 5, 2},
		{ir.BinMul, -3, 5, -15},
		{ir.BinDiv, 17, 5, 3},
		{ir.BinRem, 17, 5, 2},
		{ir.BinAnd, 0b1100, 0b1010, 0b1000},
		{ir.BinOr, 0b1100, 0b1010, 0b1110},
		{ir.BinXor, 0b1100, 0b1010, 0b0110},
		{ir.BinShl, 3, 4, 48},
		{ir.BinShr, -8, 1, int64(uint64(0xFFFFFFFFFFFFFFF8) >> 1)},
	}
	for _, tc := range cases {
		m := ir.NewModule("arith")
		b := ir.NewFunc(m, "main", ir.I64)
		r := b.Bin(tc.op, ir.Const(tc.a), ir.Const(tc.b))
		b.Ret(r)
		got, err := mustVM(t, m).Run()
		if err != nil {
			t.Fatalf("%v: %v", tc.op, err)
		}
		if got != tc.want {
			t.Errorf("%d %v %d = %d, want %d", tc.a, tc.op, tc.b, got, tc.want)
		}
	}
}

func TestDivByZeroFaults(t *testing.T) {
	m := ir.NewModule("div0")
	b := ir.NewFunc(m, "main", ir.I64)
	r := b.Bin(ir.BinDiv, ir.Const(1), ir.Const(0))
	b.Ret(r)
	if _, err := mustVM(t, m).Run(); !errors.Is(err, ErrDivByZero) {
		t.Fatalf("want ErrDivByZero, got %v", err)
	}
}

func TestFloatOpsAndConversion(t *testing.T) {
	m := ir.NewModule("float")
	b := ir.NewFunc(m, "main", ir.I64)
	x := b.ItoF(ir.Const(7))
	y := b.FBin(ir.BinDiv, x, ir.ConstF(2.0))
	z := b.FBin(ir.BinMul, y, ir.ConstF(1000))
	b.Ret(b.FtoI(z))
	got, err := mustVM(t, m).Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != 3500 {
		t.Fatalf("got %d, want 3500", got)
	}
}

func TestLoadStoreSignExtension(t *testing.T) {
	m := ir.NewModule("sext")
	b := ir.NewFunc(m, "main", ir.I64)
	slot := b.Local(ir.I64)
	b.Store(ir.I8, ir.Const(-1), slot)
	v8 := b.Load(ir.I8, slot)
	b.Store(ir.I32, ir.Const(-2), slot)
	v32 := b.Load(ir.I32, slot)
	b.Ret(b.Bin(ir.BinAdd, v8, v32))
	got, err := mustVM(t, m).Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != -3 {
		t.Fatalf("sign extension broken: got %d, want -3", got)
	}
}

func TestNullDereferenceFaults(t *testing.T) {
	m := ir.NewModule("null")
	b := ir.NewFunc(m, "main", ir.I64)
	v := b.Load(ir.I64, ir.Const(8))
	b.Ret(v)
	if _, err := mustVM(t, m).Run(); !errors.Is(err, ErrNullDeref) {
		t.Fatalf("want ErrNullDeref, got %v", err)
	}
}

func TestGlobalsInitialized(t *testing.T) {
	m := ir.NewModule("glob")
	if _, err := m.AddGlobal("g", 16, []byte{0x34, 0x12}); err != nil {
		t.Fatal(err)
	}
	b := ir.NewFunc(m, "main", ir.I64)
	v := b.Load(ir.I16, ir.Global("g"))
	b.Ret(v)
	got, err := mustVM(t, m).Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != 0x1234 {
		t.Fatalf("global init read %#x, want 0x1234", got)
	}
}

func TestCallsArgsAndReturn(t *testing.T) {
	m := ir.NewModule("calls")
	fb := ir.NewFunc(m, "fib", ir.I64, ir.Param{Name: "n", Type: ir.I64})
	n := fb.ParamReg(0)
	small := fb.Cmp(ir.CmpLt, n, ir.Const(2))
	fb.If("base", small, func() { fb.Ret(n) }, nil)
	a := fb.Call("fib", fb.Bin(ir.BinSub, n, ir.Const(1)))
	b2 := fb.Call("fib", fb.Bin(ir.BinSub, n, ir.Const(2)))
	fb.Ret(fb.Bin(ir.BinAdd, a, b2))

	b := ir.NewFunc(m, "main", ir.I64)
	b.Ret(b.Call("fib", ir.Const(15)))
	got, err := mustVM(t, m).Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != 610 {
		t.Fatalf("fib(15) = %d, want 610", got)
	}
}

func TestStackOverflowCaught(t *testing.T) {
	m := ir.NewModule("deep")
	fb := ir.NewFunc(m, "down", ir.I64, ir.Param{Name: "n", Type: ir.I64})
	fb.Ret(fb.Call("down", fb.Bin(ir.BinAdd, fb.ParamReg(0), ir.Const(1))))
	b := ir.NewFunc(m, "main", ir.I64)
	b.Ret(b.Call("down", ir.Const(0)))
	if _, err := mustVM(t, m).Run(); !errors.Is(err, ErrStackOverflow) {
		t.Fatalf("want ErrStackOverflow, got %v", err)
	}
}

func TestFuelExhaustion(t *testing.T) {
	m := ir.NewModule("spin")
	b := ir.NewFunc(m, "main", ir.I64)
	b.Br("loop")
	b.Block("loop")
	b.Br("loop")
	v := mustVM(t, m, WithFuel(10_000))
	if _, err := v.Run(); !errors.Is(err, ErrFuelExhausted) {
		t.Fatalf("want ErrFuelExhausted, got %v", err)
	}
}

func TestInputBuiltins(t *testing.T) {
	m := ir.NewModule("input")
	if _, err := m.AddGlobal("buf", 32, nil); err != nil {
		t.Fatal(err)
	}
	b := ir.NewFunc(m, "main", ir.I64)
	n := b.Call("input_len")
	got := b.Call("input_read", ir.Global("buf"), ir.Const(1), ir.Const(2))
	first := b.Load(ir.I8, ir.Global("buf"))
	oob := b.Call("input_byte", ir.Const(99))
	sum := b.Bin(ir.BinAdd, b.Bin(ir.BinMul, n, ir.Const(1000)), b.Bin(ir.BinMul, got, ir.Const(100)))
	sum = b.Bin(ir.BinAdd, sum, first)
	sum = b.Bin(ir.BinAdd, sum, b.Bin(ir.BinMul, oob, ir.Const(10000)))
	b.Ret(sum)
	v := mustVM(t, m, WithInput([]byte{10, 20, 30}))
	res, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	// n=3, copied=2 (bytes 20,30), first=20, oob=-1.
	want := int64(3*1000 + 2*100 + 20 - 10000)
	if res != want {
		t.Fatalf("got %d, want %d", res, want)
	}
}

func TestPrintBuiltins(t *testing.T) {
	m := ir.NewModule("print")
	b := ir.NewFunc(m, "main", ir.I64)
	b.CallVoid("print_i64", ir.Const(42))
	b.CallVoid("print_f64", ir.ConstF(2.5))
	b.Ret(ir.Const(0))
	v := mustVM(t, m)
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	out := string(v.Output())
	if !strings.Contains(out, "42\n") || !strings.Contains(out, "2.5\n") {
		t.Fatalf("output = %q", out)
	}
}

func TestFuncHandlesRoundTrip(t *testing.T) {
	m := ir.NewModule("fh")
	cb := ir.NewFunc(m, "callee", ir.I64)
	cb.Ret(ir.Const(5))
	b := ir.NewFunc(m, "main", ir.I64)
	slot := b.Local(ir.Fptr)
	b.Store(ir.Fptr, ir.FuncRef("callee"), slot)
	h := b.Load(ir.Fptr, slot)
	b.Ret(h)
	v := mustVM(t, m)
	hv, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	f, ok := v.FuncByHandle(hv)
	if !ok || f.Name != "callee" {
		t.Fatalf("handle %#x resolved to %v %v", hv, f, ok)
	}
	if _, ok := v.FuncByHandle(12345); ok {
		t.Error("bogus handle resolved")
	}
}

func TestHeapAllocFreeAndObjectTracking(t *testing.T) {
	m := ir.NewModule("heap")
	st := m.MustStruct(ir.NewStruct("S", ir.Field{Name: "x", Type: ir.I64}))
	b := ir.NewFunc(m, "main", ir.I64)
	p := b.Alloc(st)
	b.Store(ir.I64, ir.Const(11), b.FieldPtr(st, p, 0))
	val := b.Load(ir.I64, b.FieldPtr(st, p, 0))
	b.Free(p)
	b.Ret(val)
	v := mustVM(t, m)
	got, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != 11 {
		t.Fatalf("got %d", got)
	}
	if v.Stats.Allocs != 1 || v.Stats.Frees != 1 || v.Stats.FieldAccess != 2 {
		t.Fatalf("stats = %+v", v.Stats)
	}
	if v.Heap.LiveCount() != 0 {
		t.Fatal("chunk leaked")
	}
}

func TestCoverageBitmapDiffersByPath(t *testing.T) {
	m := ir.NewModule("cov")
	b := ir.NewFunc(m, "main", ir.I64, ir.Param{Name: "x", Type: ir.I64})
	c := b.Cmp(ir.CmpGt, b.ParamReg(0), ir.Const(0))
	b.If("branch", c, func() {
		b.CallVoid("print_i64", ir.Const(1))
	}, func() {
		b.CallVoid("print_i64", ir.Const(2))
	})
	b.Ret(ir.Const(0))

	edges := func(arg int64) map[int]bool {
		v := mustVM(t, ir.Clone(m), WithCoverage())
		if _, err := v.Run(arg); err != nil {
			t.Fatal(err)
		}
		set := make(map[int]bool)
		for i, c := range v.Coverage() {
			if c > 0 {
				set[i] = true
			}
		}
		return set
	}
	a, bb := edges(1), edges(-1)
	same := true
	for k := range a {
		if !bb[k] {
			same = false
		}
	}
	for k := range bb {
		if !a[k] {
			same = false
		}
	}
	if same {
		t.Fatal("different control flow produced identical coverage")
	}
}

func TestMemoryPageStraddle(t *testing.T) {
	mem := newMemory()
	// Write an 8-byte value across the 64KiB page boundary.
	addr := uint64(pageSize - 3)
	if err := mem.WriteU(addr, 8, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	got, err := mem.ReadU(addr, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0x1122334455667788 {
		t.Fatalf("straddled read = %#x", got)
	}
	b, err := mem.ReadBytes(addr-2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if b[2] != 0x88 || b[9] != 0x11 {
		t.Fatalf("ReadBytes straddle = %v", b)
	}
}

// TestMemoryQuick: random writes then reads return the written bytes.
func TestMemoryQuick(t *testing.T) {
	prop := func(off uint16, val uint64, n8 uint8) bool {
		n := 1 << (n8 % 4) // 1,2,4,8
		mem := newMemory()
		addr := uint64(0x10000) + uint64(off)
		if err := mem.WriteU(addr, n, val); err != nil {
			return false
		}
		got, err := mem.ReadU(addr, n)
		if err != nil {
			return false
		}
		mask := ^uint64(0)
		if n < 8 {
			mask = (1 << (8 * n)) - 1
		}
		return got == val&mask
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMemmoveOverlap(t *testing.T) {
	m := ir.NewModule("mov")
	if _, err := m.AddGlobal("g", 64, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	b := ir.NewFunc(m, "main", ir.I64)
	// Overlapping copy forward by 2.
	dst := b.PtrAdd(ir.Global("g"), ir.Const(2))
	b.Memcpy(dst, ir.Global("g"), ir.Const(6))
	v := b.Load(ir.I8, b.PtrAdd(ir.Global("g"), ir.Const(7)))
	b.Ret(v)
	got, err := mustVM(t, m).Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Fatalf("overlapping copy: got %d, want 6 (memmove semantics)", got)
	}
}

func TestFloatBitsPreserved(t *testing.T) {
	m := ir.NewModule("fbits")
	b := ir.NewFunc(m, "main", ir.I64)
	slot := b.Local(ir.F64)
	b.Store(ir.F64, ir.ConstF(math.Pi), slot)
	v := b.Load(ir.F64, slot)
	b.Ret(v)
	got, err := mustVM(t, m).Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64frombits(uint64(got)) != math.Pi {
		t.Fatalf("float round-trip = %v", math.Float64frombits(uint64(got)))
	}
}

func TestRunMissingMain(t *testing.T) {
	m := ir.NewModule("nomain")
	f := ir.NewFunc(m, "other", ir.I64)
	f.Ret(ir.Const(0))
	v := mustVM(t, m)
	if _, err := v.Run(); !errors.Is(err, ir.ErrNoMain) {
		t.Fatalf("want ErrNoMain, got %v", err)
	}
	if _, err := v.CallFunc("ghost"); !errors.Is(err, ErrUnknownFunc) {
		t.Fatalf("want ErrUnknownFunc, got %v", err)
	}
	if r, err := v.CallFunc("other"); err != nil || r != 0 {
		t.Fatalf("CallFunc(other) = %d, %v", r, err)
	}
}

func TestExecutionTracer(t *testing.T) {
	m := ir.NewModule("trace")
	b := ir.NewFunc(m, "main", ir.I64)
	x := b.Bin(ir.BinAdd, ir.Const(1), ir.Const(2))
	b.Ret(x)
	var buf strings.Builder
	v := mustVM(t, m, WithTrace(&buf, 0))
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "@main.entry\t%r0 = add 1, 2") {
		t.Fatalf("trace = %q", out)
	}
	if !strings.Contains(out, "ret %r0") {
		t.Fatalf("trace missing ret: %q", out)
	}
	// Line cap respected.
	var capped strings.Builder
	v2 := mustVM(t, ir.Clone(m), WithTrace(&capped, 1))
	if _, err := v2.Run(); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(capped.String(), "\n"); n != 1 {
		t.Fatalf("capped trace lines = %d, want 1", n)
	}
}
