package vm

import (
	"encoding/json"
	"fmt"

	"polar/internal/telemetry"
)

// String renders the counters as a one-line summary (the format CLI
// tools print; keep it grep-friendly, key=value).
func (s Stats) String() string {
	return fmt.Sprintf("instructions=%d allocs=%d frees=%d memcpys=%d field-access=%d calls=%d max-depth=%d",
		s.Instructions, s.Allocs, s.Frees, s.Memcpys, s.FieldAccess, s.Calls, s.MaxDepth)
}

// MarshalJSON implements json.Marshaler with stable snake_case keys.
func (s Stats) MarshalJSON() ([]byte, error) {
	return json.Marshal(map[string]uint64{
		"instructions": s.Instructions,
		"allocs":       s.Allocs,
		"frees":        s.Frees,
		"memcpys":      s.Memcpys,
		"field_access": s.FieldAccess,
		"calls":        s.Calls,
		"max_depth":    uint64(s.MaxDepth),
	})
}

// Publish snapshots the counters into a telemetry registry under the
// "vm." prefix. The VM increments its Stats natively (the interpreter
// loop is too hot for indirection); Publish is the bridge to the
// unified registry, called after a run or at sampling points.
func (s Stats) Publish(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("vm.instructions").Set(s.Instructions)
	reg.Counter("vm.allocs").Set(s.Allocs)
	reg.Counter("vm.frees").Set(s.Frees)
	reg.Counter("vm.memcpys").Set(s.Memcpys)
	reg.Counter("vm.field_access").Set(s.FieldAccess)
	reg.Counter("vm.calls").Set(s.Calls)
	reg.Gauge("vm.max_depth").Set(float64(s.MaxDepth))
}

// Perf holds engine-strategy counters: inline layout-cache traffic at
// olr_getptr sites and bcFused superinstruction dispatches. They are
// deliberately NOT part of Stats — the engine differential suite holds
// Stats to struct equality across engines, while these legitimately
// differ (the tree-walker never dispatches fused runs; a hooked run
// never serves inline-cache hits).
type Perf struct {
	// InlineHits/InlineMisses count inline layout-cache lookups at
	// eligible olr_getptr sites (a hit skips the core resolver; a miss
	// falls into it and may re-memoize).
	InlineHits   uint64
	InlineMisses uint64
	// FusedDispatches counts bcFused superinstruction dispatches (each
	// executes a whole micro-op run).
	FusedDispatches uint64
}

// String renders the perf counters key=value, like Stats.String.
func (p Perf) String() string {
	return fmt.Sprintf("inline-cache-hits=%d inline-cache-misses=%d fused-dispatches=%d",
		p.InlineHits, p.InlineMisses, p.FusedDispatches)
}

// HitRate returns the inline-cache hit fraction (0 when no lookups).
func (p Perf) HitRate() float64 {
	if t := p.InlineHits + p.InlineMisses; t > 0 {
		return float64(p.InlineHits) / float64(t)
	}
	return 0
}

// MarshalJSON implements json.Marshaler with stable snake_case keys.
func (p Perf) MarshalJSON() ([]byte, error) {
	return json.Marshal(map[string]uint64{
		"inline_cache_hits":   p.InlineHits,
		"inline_cache_misses": p.InlineMisses,
		"fused_dispatches":    p.FusedDispatches,
	})
}

// Publish snapshots the perf counters into a telemetry registry under
// the "vm." prefix (OpenMetrics: polar_vm_inline_cache_hits_total,
// polar_vm_inline_cache_misses_total, polar_vm_fused_dispatches_total).
func (p Perf) Publish(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("vm.inline_cache.hits").Set(p.InlineHits)
	reg.Counter("vm.inline_cache.misses").Set(p.InlineMisses)
	reg.Counter("vm.fused_dispatches").Set(p.FusedDispatches)
}
