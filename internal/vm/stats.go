package vm

import (
	"encoding/json"
	"fmt"

	"polar/internal/telemetry"
)

// String renders the counters as a one-line summary (the format CLI
// tools print; keep it grep-friendly, key=value).
func (s Stats) String() string {
	return fmt.Sprintf("instructions=%d allocs=%d frees=%d memcpys=%d field-access=%d calls=%d max-depth=%d",
		s.Instructions, s.Allocs, s.Frees, s.Memcpys, s.FieldAccess, s.Calls, s.MaxDepth)
}

// MarshalJSON implements json.Marshaler with stable snake_case keys.
func (s Stats) MarshalJSON() ([]byte, error) {
	return json.Marshal(map[string]uint64{
		"instructions": s.Instructions,
		"allocs":       s.Allocs,
		"frees":        s.Frees,
		"memcpys":      s.Memcpys,
		"field_access": s.FieldAccess,
		"calls":        s.Calls,
		"max_depth":    uint64(s.MaxDepth),
	})
}

// Publish snapshots the counters into a telemetry registry under the
// "vm." prefix. The VM increments its Stats natively (the interpreter
// loop is too hot for indirection); Publish is the bridge to the
// unified registry, called after a run or at sampling points.
func (s Stats) Publish(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("vm.instructions").Set(s.Instructions)
	reg.Counter("vm.allocs").Set(s.Allocs)
	reg.Counter("vm.frees").Set(s.Frees)
	reg.Counter("vm.memcpys").Set(s.Memcpys)
	reg.Counter("vm.field_access").Set(s.FieldAccess)
	reg.Counter("vm.calls").Set(s.Calls)
	reg.Gauge("vm.max_depth").Set(float64(s.MaxDepth))
}
