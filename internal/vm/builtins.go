package vm

import (
	"fmt"
	"math"
)

// registerDefaultBuiltins installs the core intrinsics every program can
// use:
//
//	input_len() -> i64                      length of untrusted input
//	input_read(dst, off, n) -> i64          copy input[off:off+n] to dst, returns copied
//	input_byte(off) -> i64                  one input byte (or -1 past end)
//	print_i64(v), print_f64(v)              append to the output log
//	print_str(ptr, n)                       append raw bytes to the output log
//	rt_rand(seed_slot_ptr) -> i64           xorshift PRNG stepping the seed in memory
//	rt_abort(code)                          terminate with an error
//	rt_sqrt(f) -> f64, rt_sin(f), rt_cos(f) float helpers (bit-cast args)
//
// The input_* family models the instrumented fread/MapViewOfFile entry
// points that TaintClass treats as taint sources (§IV.B.1).
func registerDefaultBuiltins(v *VM) {
	v.RegisterBuiltin("input_len", func(c *Call) (int64, error) {
		return int64(len(c.VM.input)), nil
	})
	v.RegisterBuiltin("input_read", func(c *Call) (int64, error) {
		dst := uint64(c.Arg(0))
		off := int(c.Arg(1))
		n := int(c.Arg(2))
		if off < 0 || off >= len(c.VM.input) || n <= 0 {
			return 0, nil
		}
		if off+n > len(c.VM.input) {
			n = len(c.VM.input) - off
		}
		if err := c.VM.Mem.WriteBytes(dst, c.VM.input[off:off+n]); err != nil {
			return 0, err
		}
		return int64(n), nil
	})
	v.RegisterBuiltin("input_byte", func(c *Call) (int64, error) {
		off := int(c.Arg(0))
		if off < 0 || off >= len(c.VM.input) {
			return -1, nil
		}
		return int64(c.VM.input[off]), nil
	})
	v.RegisterBuiltin("print_i64", func(c *Call) (int64, error) {
		c.VM.output = append(c.VM.output, []byte(fmt.Sprintf("%d\n", c.Arg(0)))...)
		return 0, nil
	})
	v.RegisterBuiltin("print_f64", func(c *Call) (int64, error) {
		f := math.Float64frombits(uint64(c.Arg(0)))
		c.VM.output = append(c.VM.output, []byte(fmt.Sprintf("%g\n", f))...)
		return 0, nil
	})
	v.RegisterBuiltin("print_str", func(c *Call) (int64, error) {
		b, err := c.VM.Mem.ReadBytes(uint64(c.Arg(0)), int(c.Arg(1)))
		if err != nil {
			return 0, err
		}
		c.VM.output = append(c.VM.output, b...)
		return 0, nil
	})
	v.RegisterBuiltin("rt_rand", func(c *Call) (int64, error) {
		slot := uint64(c.Arg(0))
		s, err := c.VM.Mem.ReadU(slot, 8)
		if err != nil {
			return 0, err
		}
		if s == 0 {
			s = 0x9e3779b97f4a7c15
		}
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		if err := c.VM.Mem.WriteU(slot, 8, s); err != nil {
			return 0, err
		}
		return int64(s >> 1), nil
	})
	v.RegisterBuiltin("rt_abort", func(c *Call) (int64, error) {
		return 0, fmt.Errorf("vm: program abort(%d)", c.Arg(0))
	})
	v.RegisterBuiltin("rt_sqrt", func(c *Call) (int64, error) {
		f := math.Float64frombits(uint64(c.Arg(0)))
		return int64(math.Float64bits(math.Sqrt(f))), nil
	})
	v.RegisterBuiltin("rt_sin", func(c *Call) (int64, error) {
		f := math.Float64frombits(uint64(c.Arg(0)))
		return int64(math.Float64bits(math.Sin(f))), nil
	})
	v.RegisterBuiltin("rt_cos", func(c *Call) (int64, error) {
		f := math.Float64frombits(uint64(c.Arg(0)))
		return int64(math.Float64bits(math.Cos(f))), nil
	})
}
