package vm

import (
	"sync"
	"testing"

	"polar/internal/ir"
)

// progModule exercises every piece of precomputed Program state: an
// initialized global, a cross-function call, a function-handle
// round-trip through memory and printed output.
func progModule(t *testing.T) *ir.Module {
	t.Helper()
	m := ir.NewModule("prog")
	if _, err := m.AddGlobal("g", 16, []byte{0x34, 0x12}); err != nil {
		t.Fatal(err)
	}
	cb := ir.NewFunc(m, "callee", ir.I64)
	cb.Ret(ir.Const(5))
	b := ir.NewFunc(m, "main", ir.I64)
	g := b.Load(ir.I16, ir.Global("g"))
	c := b.Call("callee")
	slot := b.Local(ir.Fptr)
	b.Store(ir.Fptr, ir.FuncRef("callee"), slot)
	h := b.Load(ir.Fptr, slot)
	nz := b.Cmp(ir.CmpNe, h, ir.Const(0))
	b.CallVoid("print_i64", g)
	b.Ret(b.Bin(ir.BinAdd, b.Bin(ir.BinAdd, g, c), nz))
	return m
}

func TestCompileRejectsInvalidModule(t *testing.T) {
	m := ir.NewModule("bad")
	b := ir.NewFunc(m, "main", ir.I64)
	b.Ret(b.Call("missing"))
	if _, err := Compile(m); err == nil {
		t.Fatal("Compile accepted a module with an undefined callee")
	}
}

// TestProgramConcurrentInstances is the deployment shape the
// Program/Instance split exists for: one compiled program, many
// simultaneous cheap instances. Each instance owns its memory, heap and
// output buffer; the shared globals layout, function index and handle
// table are read-only. Run under -race this is the regression test for
// that contract.
func TestProgramConcurrentInstances(t *testing.T) {
	prog, err := Compile(progModule(t))
	if err != nil {
		t.Fatal(err)
	}
	const workers = 16
	const runsPerWorker = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < runsPerWorker; r++ {
				v, err := prog.NewInstance()
				if err != nil {
					errs[w] = err
					return
				}
				got, err := v.Run()
				if err != nil {
					errs[w] = err
					return
				}
				if want := int64(0x1234 + 5 + 1); got != want {
					t.Errorf("worker %d run %d: got %d, want %d", w, r, got, want)
					return
				}
				if out := string(v.Output()); out != "4660\n" {
					t.Errorf("worker %d run %d: output %q", w, r, out)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}

// TestProgramGlobalsReplayedPerInstance checks instance isolation: a
// run that overwrites its global sees the write, while a fresh instance
// off the same program starts from the declared initializer again.
func TestProgramGlobalsReplayedPerInstance(t *testing.T) {
	m := ir.NewModule("iso")
	if _, err := m.AddGlobal("g", 8, []byte{7}); err != nil {
		t.Fatal(err)
	}
	b := ir.NewFunc(m, "main", ir.I64)
	old := b.Load(ir.I8, ir.Global("g"))
	b.Store(ir.I8, ir.Const(99), ir.Global("g"))
	b.Ret(old)
	prog, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		v, err := prog.NewInstance()
		if err != nil {
			t.Fatal(err)
		}
		got, err := v.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got != 7 {
			t.Fatalf("instance %d read %d from global, want the initializer 7", i, got)
		}
	}
}
