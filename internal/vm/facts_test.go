package vm

import (
	"fmt"
	"testing"

	"polar/internal/ir"
)

// factsModule emits four olr_getptr call sites in main, the raw shape
// instrument.Apply produces, and returns the module plus each site's
// "@fn.block#idx" position in lowering order.
func factsModule(t *testing.T) (*ir.Module, []string) {
	t.Helper()
	m := ir.NewModule("facts")
	b := ir.NewFunc(m, "main", ir.I64)
	p := b.Call("olr_malloc", ir.Const(7))
	for i := 0; i < 4; i++ {
		b.Call("olr_getptr", p, ir.Const(int64(i)), ir.Const(7))
	}
	b.Ret(ir.Const(0))
	if err := ir.Validate(m); err != nil {
		t.Fatal(err)
	}
	var pos []string
	for _, f := range m.Funcs {
		for _, blk := range f.Blocks {
			for ii := range blk.Instrs {
				in := &blk.Instrs[ii]
				if in.Op == ir.OpCall && in.Callee == "olr_getptr" {
					pos = append(pos, fmt.Sprintf("@%s.%s#%d", f.Name, blk.Name, ii))
				}
			}
		}
	}
	if len(pos) != 4 {
		t.Fatalf("found %d olr_getptr sites, want 4", len(pos))
	}
	return m, pos
}

// getptrSites returns the compiled program's olr_getptr instructions in
// lowering order (pointers into p.mod, the module planICSites keyed).
func getptrSites(p *Program) []*ir.Instr {
	var out []*ir.Instr
	for _, f := range p.mod.Funcs {
		for _, blk := range f.Blocks {
			for ii := range blk.Instrs {
				in := &blk.Instrs[ii]
				if in.Op == ir.OpCall && in.Callee == olrGetptrName {
					out = append(out, in)
				}
			}
		}
	}
	return out
}

// Static facts drive the IC slot plan: a suppressed site gets no slot,
// share-keyed sites collapse onto one, everything else keeps a fresh
// private slot — and the slot count shrinks accordingly.
func TestPlanICSitesFromFacts(t *testing.T) {
	m, pos := factsModule(t)
	facts := &StaticFacts{Sites: map[string]SiteSeed{
		pos[0]: {Suppress: true},
		pos[1]: {ShareKey: "K"},
		pos[2]: {ShareKey: "K"},
		// pos[3]: no entry — default fresh slot.
	}}
	prog, err := CompileWith(m, CompileOpts{Facts: facts})
	if err != nil {
		t.Fatal(err)
	}
	sites := getptrSites(prog)
	if len(sites) != 4 {
		t.Fatalf("compiled program has %d sites, want 4", len(sites))
	}
	if prog.numICSites != 2 {
		t.Errorf("numICSites = %d, want 2 (one shared + one fresh)", prog.numICSites)
	}
	if _, ok := prog.icSlotOf[sites[0]]; ok {
		t.Errorf("suppressed site still has an IC slot")
	}
	s1, ok1 := prog.icSlotOf[sites[1]]
	s2, ok2 := prog.icSlotOf[sites[2]]
	if !ok1 || !ok2 || s1 != s2 {
		t.Errorf("share-keyed sites not unified: %v/%v %v/%v", s1, ok1, s2, ok2)
	}
	s3, ok3 := prog.icSlotOf[sites[3]]
	if !ok3 || s3 == s1 {
		t.Errorf("unlisted site should keep a private slot distinct from the shared one: %v/%v", s3, ok3)
	}
}

// Without facts the historical sequential numbering is untouched: one
// fresh slot per site, in lowering order.
func TestPlanICSitesDefaultSequential(t *testing.T) {
	m, _ := factsModule(t)
	prog, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	if prog.icPlan != nil {
		t.Fatalf("no facts given but a plan was built")
	}
	if prog.numICSites != 4 {
		t.Errorf("numICSites = %d, want 4", prog.numICSites)
	}
	seen := map[int32]bool{}
	for i, in := range getptrSites(prog) {
		slot, ok := prog.icSlotOf[in]
		if !ok || slot != int32(i) || seen[slot] {
			t.Errorf("site %d: slot %v/%v, want fresh sequential", i, slot, ok)
		}
		seen[slot] = true
	}
}

// An empty facts table is not "no facts": the plan exists, every site
// falls through to the default arm, and numbering matches the
// sequential baseline — so a facts artifact for a module with no
// verdicts compiles byte-identically to an unseeded build.
func TestPlanICSitesEmptyFactsMatchesDefault(t *testing.T) {
	m, _ := factsModule(t)
	seeded, err := CompileWith(ir.Clone(m), CompileOpts{Facts: &StaticFacts{Sites: map[string]SiteSeed{}}})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := CompileWith(m, CompileOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if seeded.numICSites != plain.numICSites {
		t.Errorf("empty facts changed the slot count: %d vs %d", seeded.numICSites, plain.numICSites)
	}
	for i := range getptrSites(seeded) {
		ss := seeded.icSlotOf[getptrSites(seeded)[i]]
		ps := plain.icSlotOf[getptrSites(plain)[i]]
		if ss != ps {
			t.Errorf("site %d: slot %d under empty facts, %d unseeded", i, ss, ps)
		}
	}
}
