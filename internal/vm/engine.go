package vm

import (
	"fmt"
	"sync/atomic"
)

// Engine selects the execution strategy for a VM instance.
//
// EngineBytecode runs the lowered flat bytecode produced at Compile
// time: operands are pre-resolved (globals are absolute addresses,
// function references are handles, field offsets are immediates),
// callees are small-int indices into a per-Program callee table, and
// the dominant instruction pairs are fused into superinstructions. It
// is the default because it is substantially faster and — by the
// differential-test contract — produces bit-identical results, stats
// and violation records.
//
// EngineLegacy is the original tree-walking interpreter over *ir.Instr.
// It stays as the reference semantics and as the ablation baseline
// (polarun/polarbench -engine=legacy).
//
// Fine-grained instruction observers (WithHooks, WithTrace) are only
// implemented by the tree-walker; a VM configured for bytecode falls
// back to the legacy engine for the run when either is attached, so
// taint analysis and instruction tracing see exactly the semantics they
// always did.
type Engine uint8

// Engines.
const (
	EngineBytecode Engine = iota
	EngineLegacy
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EngineBytecode:
		return "bytecode"
	case EngineLegacy:
		return "legacy"
	default:
		return fmt.Sprintf("engine(%d)", uint8(e))
	}
}

// ParseEngine parses an -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "bytecode", "":
		return EngineBytecode, nil
	case "legacy", "tree", "treewalk":
		return EngineLegacy, nil
	default:
		return EngineBytecode, fmt.Errorf("vm: unknown engine %q (want bytecode or legacy)", s)
	}
}

// defaultEngine is the engine instances use when no WithEngine option
// is given. Atomic so a CLI may flip it at startup while experiment
// harnesses stamp instances from other goroutines.
var defaultEngine atomic.Uint32

// SetDefaultEngine sets the engine used by instances created without an
// explicit WithEngine option (the polarun/polarbench -engine flag).
func SetDefaultEngine(e Engine) { defaultEngine.Store(uint32(e)) }

// DefaultEngine returns the process-wide default engine.
func DefaultEngine() Engine { return Engine(defaultEngine.Load()) }

// WithEngine pins the execution engine for this instance, overriding
// the process default.
func WithEngine(e Engine) Option {
	return func(v *VM) { v.engine, v.engineSet = e, true }
}

// Engine returns the engine this instance was configured with. The
// effective engine for a run may still be EngineLegacy when hooks or an
// instruction trace are attached (see Engine's doc).
func (v *VM) Engine() Engine { return v.engine }

// useBytecode reports whether runs on this instance execute the lowered
// bytecode. Hooks and instruction tracing are tree-walker facilities;
// attaching either falls back to the reference engine.
func (v *VM) useBytecode() bool {
	return v.engine == EngineBytecode && v.hooks == nil && v.instrLog == nil
}
