package vm

import "polar/internal/ir"

// This file defines the lowered form the bytecode engine executes: a
// dense flat instruction array per function with every operand resolved
// at compile time. The lowering itself lives in lower.go, the dispatch
// loop in exec_fast.go.
//
// Operand pre-resolution collapses the five ir.Value kinds into two:
// registers and 64-bit immediates. Integer and float constants are
// immediates by definition; global symbols become the absolute
// addresses the Program's (compile-time, instance-independent) layout
// assigned them; function references become their precomputed handles.
// The dispatch loop therefore never touches a string map.

// bcOp is a lowered opcode. The set mirrors ir.Op plus the fused
// superinstructions the hot-site profiler surfaced as the dominant
// adjacent pairs (fieldptr feeding a load or store, and a compare
// feeding the block's conditional branch).
type bcOp uint8

// Lowered opcodes.
const (
	bcInvalid bcOp = iota
	bcAlloc
	bcLocal
	bcFree
	bcLoad
	bcStore
	bcMemcpy
	bcMemset
	bcFieldPtr
	bcElemPtr
	bcPtrAdd
	bcBin
	bcFBin
	bcCmp
	bcFCmp
	bcItoF
	bcFtoI
	bcMov
	bcBr
	bcCondBr
	bcCallFunc
	bcCallBuiltin
	bcRet
	bcRetVoid

	// Superinstructions. Each executes two source instructions and
	// weighs 2 in fuel/stats/profiler accounting; the intermediate
	// register is still written, so later (or out-of-order) uses of the
	// fieldptr result or the compare flag observe identical state.
	bcFieldLoad  // dest = base+off; d2 = load dest
	bcFieldStore // dest = base+off; store b through it
	bcCmpBr      // dest = cmp(a,b); branch on it

	// bcFused is the generalized superinstruction: one dispatch executes
	// an arbitrary straight-line run of fusable source instructions as a
	// micro-op sequence (bcInstr.micro). Its weight is the micro count,
	// so fuel, Stats.Instructions and per-site profiler cycles account
	// exactly as if each source instruction had dispatched on its own;
	// every intermediate register is still written. The run may end with
	// the block terminator (br/condbr), in which case the last micro
	// performs the branch.
	bcFused
)

// weight is the number of source instructions an instruction accounts
// for. It is a bcInstr method (not a bcOp one) because bcFused weighs
// len(micro).
func (in *bcInstr) weight() uint32 {
	switch {
	case in.op == bcFused:
		return uint32(len(in.micro))
	case in.op >= bcFieldLoad:
		return 2
	default:
		return 1
	}
}

// bcArg is a pre-resolved operand: an immediate, or a register index
// when reg is set.
type bcArg struct {
	v   int64
	reg bool
}

// arg evaluates an operand against the frame. This is the whole operand
// resolution path of the bytecode engine — compare VM.resolve.
func (a bcArg) arg(regs []int64) int64 {
	if a.reg {
		return regs[a.v]
	}
	return a.v
}

// mcOp is a micro-opcode inside a bcFused run. The set is exactly the
// fusable subset of bcOp: straight-line register/memory/arithmetic
// work plus the block terminators. Ops with side channels beyond
// registers, memory and Stats.FieldAccess (allocation, free, memcpy,
// memset, calls, returns) are never fused — they would need telemetry
// and accounting hooks inside the micro loop.
type mcOp uint8

// Micro-opcodes.
const (
	mcLoad mcOp = iota
	mcStore
	mcFieldPtr
	mcElemPtr
	mcPtrAdd
	mcBin
	mcFBin
	mcCmp
	mcFCmp
	mcItoF
	mcFtoI
	mcMov
	mcBr
	mcCondBr

	// Specialized forms the lowering splits off from the general micros
	// above: the non-faulting integer arithmetic kinds, the dominant
	// 8-byte memory width and the compare kinds each get a first-class
	// micro-opcode, so the hot dispatch is one flat switch with no
	// secondary kind/size/sign branch per micro. Semantics are exactly
	// those of the general form they specialize.
	mcAdd
	mcSub
	mcMul
	mcAnd
	mcOr
	mcXor
	mcShl
	mcShr
	mcLoad8  // 8-byte load (never sign-extended)
	mcStore8 // 8-byte store
	mcCmpEq
	mcCmpNe
	mcCmpLt
	mcCmpLe
	mcCmpGt
	mcCmpGe
)

// mcInstr is one micro-op of a fused run: a fully pre-decoded
// single-source-instruction operation. Operands collapse to an int64
// that is either an immediate or (when aReg/bReg) a register index.
// Field roles mirror bcInstr: size is the load/store width or elemptr
// element size, off the fieldptr byte offset or a branch's first
// target, t1 a condbr's false target.
type mcInstr struct {
	op         mcOp
	kind       uint8
	signShift  uint8
	aReg, bReg bool
	dest       int32
	size       int32
	off        int32
	t1         int32
	a, b       int64
}

// bcInstr is one lowered instruction. Field meaning varies by opcode:
//
//	dest       destination register (-1 if none)
//	d2         fused second destination (bcFieldLoad's load register)
//	size       load/store/local/memset width, elemptr element size,
//	           alloc element size
//	off        fieldptr byte offset (compile-time constant — the
//	           Struct.Offset call is gone from the hot path), or the
//	           callee index for calls
//	t0, t1     successor block indices for branches
//	kind       ir.BinKind / ir.CmpKind payload
//	signShift  64-8*size for sign-extending integer loads, 0 otherwise
//	st         struct type for typed allocations
//	irIn       the source instruction — kept for calls (builtin name and
//	           raw operands for the Call ABI) and diagnostics; never
//	           consulted by the straight-line hot path
//	args       call arguments
type bcInstr struct {
	op        bcOp
	kind      uint8
	signShift uint8
	dest      int32
	d2        int32
	size      int32
	off       int32
	t0, t1    int32
	a, b, c   bcArg
	st        *ir.StructType
	irIn      *ir.Instr
	args      []bcArg
	// micro is the pre-decoded micro-op sequence of a bcFused run (nil
	// for every other opcode); irIn then points at the run's first
	// source instruction.
	micro []mcInstr
	// ic is the instruction's inline layout-cache slot (bcCallBuiltin on
	// olr_getptr only; -1 everywhere else). Slots index the per-instance
	// VM.icSlots table; the Program only counts them.
	ic int32
}

// bcBlock locates one basic block inside a bcFunc's flat code array.
type bcBlock struct {
	start int32     // pc of the first instruction
	cost  uint32    // summed instruction weight (source-instruction count)
	irb   *ir.Block // source block (site names, diagnostics)
}

// bcFunc is the lowered form of one function.
type bcFunc struct {
	fn     *ir.Func
	code   []bcInstr
	blocks []bcBlock
	// wTo[pc] is the cumulative weight of code[:pc]; together with a
	// block's start it prices the executed prefix on the (rare) fault
	// and fuel-scarce paths without any per-instruction accounting.
	wTo     []uint32
	numRegs int
	// consts is the pooled-constant bank: immediate operands of fused
	// micro-ops are hoisted into dedicated frame registers (installed by
	// callBC right after the parameters), so the micro loop reads every
	// operand as regs[idx] with no reg-vs-const branch.
	consts []bcConst
}

// bcConst is one pooled micro-operand constant: val is written to frame
// register slot at function entry.
type bcConst struct {
	slot int32
	val  int64
}

// executedThrough returns the source-instruction count a block has
// charged once the instruction at pc completed (or faulted after being
// counted, matching the tree-walker's count-then-execute order).
func (f *bcFunc) executedThrough(b *bcBlock, pc int32) uint64 {
	return uint64(f.wTo[pc]-f.wTo[b.start]) + uint64(f.code[pc].weight())
}

// executedThroughSub prices a block prefix that ends partway through a
// fused run: the instructions before pc in full, plus sub micro-ops of
// the run at pc (sub = k after micro k-1 completed or faulted — the
// count-then-execute order applies per micro, exactly as the
// tree-walker applies it per source instruction).
func (f *bcFunc) executedThroughSub(b *bcBlock, pc int32, sub uint32) uint64 {
	return uint64(f.wTo[pc]-f.wTo[b.start]) + uint64(sub)
}
