package vm

import "polar/internal/ir"

// This file defines the lowered form the bytecode engine executes: a
// dense flat instruction array per function with every operand resolved
// at compile time. The lowering itself lives in lower.go, the dispatch
// loop in exec_fast.go.
//
// Operand pre-resolution collapses the five ir.Value kinds into two:
// registers and 64-bit immediates. Integer and float constants are
// immediates by definition; global symbols become the absolute
// addresses the Program's (compile-time, instance-independent) layout
// assigned them; function references become their precomputed handles.
// The dispatch loop therefore never touches a string map.

// bcOp is a lowered opcode. The set mirrors ir.Op plus the fused
// superinstructions the hot-site profiler surfaced as the dominant
// adjacent pairs (fieldptr feeding a load or store, and a compare
// feeding the block's conditional branch).
type bcOp uint8

// Lowered opcodes.
const (
	bcInvalid bcOp = iota
	bcAlloc
	bcLocal
	bcFree
	bcLoad
	bcStore
	bcMemcpy
	bcMemset
	bcFieldPtr
	bcElemPtr
	bcPtrAdd
	bcBin
	bcFBin
	bcCmp
	bcFCmp
	bcItoF
	bcFtoI
	bcMov
	bcBr
	bcCondBr
	bcCallFunc
	bcCallBuiltin
	bcRet
	bcRetVoid

	// Superinstructions. Each executes two source instructions and
	// weighs 2 in fuel/stats/profiler accounting; the intermediate
	// register is still written, so later (or out-of-order) uses of the
	// fieldptr result or the compare flag observe identical state.
	bcFieldLoad  // dest = base+off; d2 = load dest
	bcFieldStore // dest = base+off; store b through it
	bcCmpBr      // dest = cmp(a,b); branch on it
)

// weight is the number of source instructions an opcode accounts for.
func (op bcOp) weight() uint32 {
	if op >= bcFieldLoad {
		return 2
	}
	return 1
}

// bcArg is a pre-resolved operand: an immediate, or a register index
// when reg is set.
type bcArg struct {
	v   int64
	reg bool
}

// arg evaluates an operand against the frame. This is the whole operand
// resolution path of the bytecode engine — compare VM.resolve.
func (a bcArg) arg(regs []int64) int64 {
	if a.reg {
		return regs[a.v]
	}
	return a.v
}

// bcInstr is one lowered instruction. Field meaning varies by opcode:
//
//	dest       destination register (-1 if none)
//	d2         fused second destination (bcFieldLoad's load register)
//	size       load/store/local/memset width, elemptr element size,
//	           alloc element size
//	off        fieldptr byte offset (compile-time constant — the
//	           Struct.Offset call is gone from the hot path), or the
//	           callee index for calls
//	t0, t1     successor block indices for branches
//	kind       ir.BinKind / ir.CmpKind payload
//	signShift  64-8*size for sign-extending integer loads, 0 otherwise
//	st         struct type for typed allocations
//	irIn       the source instruction — kept for calls (builtin name and
//	           raw operands for the Call ABI) and diagnostics; never
//	           consulted by the straight-line hot path
//	args       call arguments
type bcInstr struct {
	op        bcOp
	kind      uint8
	signShift uint8
	dest      int32
	d2        int32
	size      int32
	off       int32
	t0, t1    int32
	a, b, c   bcArg
	st        *ir.StructType
	irIn      *ir.Instr
	args      []bcArg
}

// bcBlock locates one basic block inside a bcFunc's flat code array.
type bcBlock struct {
	start int32     // pc of the first instruction
	cost  uint32    // summed instruction weight (source-instruction count)
	irb   *ir.Block // source block (site names, diagnostics)
}

// bcFunc is the lowered form of one function.
type bcFunc struct {
	fn     *ir.Func
	code   []bcInstr
	blocks []bcBlock
	// wTo[pc] is the cumulative weight of code[:pc]; together with a
	// block's start it prices the executed prefix on the (rare) fault
	// and fuel-scarce paths without any per-instruction accounting.
	wTo     []uint32
	numRegs int
}

// executedThrough returns the source-instruction count a block has
// charged once the instruction at pc completed (or faulted after being
// counted, matching the tree-walker's count-then-execute order).
func (f *bcFunc) executedThrough(b *bcBlock, pc int32) uint64 {
	return uint64(f.wTo[pc]-f.wTo[b.start]) + uint64(f.code[pc].op.weight())
}
