package vm

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"polar/internal/heap"
	"polar/internal/ir"
	"polar/internal/telemetry"
	"polar/internal/telemetry/exectrace"
	"polar/internal/telemetry/profile"
)

// Execution error sentinels.
var (
	ErrFuelExhausted = errors.New("vm: instruction budget exhausted")
	ErrStackOverflow = errors.New("vm: stack overflow")
	ErrUnknownFunc   = errors.New("vm: unknown function")
	ErrDivByZero     = errors.New("vm: integer division by zero")
)

// Stats counts dynamic events for the whole program run.
type Stats struct {
	Instructions uint64
	Allocs       uint64
	Frees        uint64
	Memcpys      uint64
	FieldAccess  uint64 // OpFieldPtr executions (instrumented or not)
	Calls        uint64
	MaxDepth     int
}

// Hooks receives fine-grained execution events; the taint engine
// implements it. All methods are invoked after the VM has performed the
// operation. A nil Hooks disables tracing with no overhead beyond a nil
// check.
type Hooks interface {
	// Enter is called when a frame is pushed; args are the caller-frame
	// operands (so the hook can transfer operand taints to parameters).
	Enter(fn *ir.Func, args []ir.Value)
	// Exit is called when a frame is popped. retArg is the callee-frame
	// return operand (nil for void) and callerDest the caller register
	// receiving the result (-1 if discarded).
	Exit(retArg *ir.Value, callerDest int)
	// Load: dest register received size bytes from addr.
	Load(dest int, addr uint64, size int)
	// Store: operand src was written to addr (size bytes).
	Store(src ir.Value, addr uint64, size int)
	// Bin: dest = a op b (integer or float).
	Bin(dest int, a, b ir.Value)
	// Un: dest = f(a) for mov/itof/ftoi.
	Un(dest int, a ir.Value)
	// FieldPtr/ElemPtr/PtrAdd: dest derives from pointer operand base.
	PtrDerive(dest int, base ir.Value)
	// Memcpy after the copy; Memset after the fill.
	Memcpy(dst, src uint64, n int)
	Memset(dst uint64, n int)
	// CondBr observes the branch condition (for control-taint).
	CondBr(cond ir.Value)
	// Alloc observes a heap object birth (st may be nil for raw buffers).
	Alloc(dest int, addr uint64, size int, st *ir.StructType)
	// Free observes a heap object death.
	Free(addr uint64)
	// Builtin is called after a VM builtin ran; argVals are the resolved
	// integer arguments, ret the result, dest the receiving register
	// (-1 if none).
	Builtin(name string, args []ir.Value, argVals []int64, ret int64, dest int)
}

// Builtin is a native function callable from IR. Args arrive as resolved
// 64-bit values.
type Builtin func(c *Call) (int64, error)

// Call packages the VM state handed to builtins.
type Call struct {
	VM   *VM
	Name string
	Args []int64
	// RawArgs are the unresolved operands (register identity matters to
	// the POLaR runtime for type info recovery; the taint engine also
	// sees them via Hooks.Builtin).
	RawArgs []ir.Value

	// fn/blk locate the call instruction for diagnostics (see Site).
	fn  *ir.Func
	blk *ir.Block

	// ic is the call site's inline layout-cache slot plus one (0 = the
	// site carries no cache), so the zero Call is inert. Builtins opt
	// into memoization via Memoize.
	ic int32
}

// Site returns the instruction site of the call as "@fn.block" (empty
// when unknown). The POLaR runtime stamps violation records with it and
// the hot-site profiler attributes member accesses by it; the string is
// interned once per block in the Program, so repeated resolutions never
// reallocate.
func (c *Call) Site() string {
	if c == nil || c.fn == nil || c.blk == nil {
		return ""
	}
	if c.VM != nil && c.VM.prog != nil {
		if s := c.VM.prog.SiteName(c.blk); s != "" {
			return s
		}
	}
	return "@" + c.fn.Name + "." + c.blk.Name
}

// Arg returns argument i or 0 if absent.
func (c *Call) Arg(i int) int64 {
	if i < 0 || i >= len(c.Args) {
		return 0
	}
	return c.Args[i]
}

// Memoize installs the current olr_getptr resolution into the call
// site's inline layout cache: the next access at this site with the
// same (base, field, class) under the same layout generation skips the
// builtin entirely (both engines). The resolver must only call this on
// clean resolutions — a live, correctly-typed object whose offset will
// stay valid until the generation counter next advances. A no-op when
// the site carries no cache slot or no cache is installed.
func (c *Call) Memoize(off int64) {
	if c == nil || c.ic <= 0 || c.VM == nil || c.VM.icGen == nil || len(c.Args) < 3 {
		return
	}
	c.VM.icSlots[c.ic-1] = icEntry{
		base:  uint64(c.Args[0]),
		field: c.Args[1],
		class: uint64(c.Args[2]),
		off:   off,
		gen:   *c.VM.icGen,
	}
}

const (
	defaultFuel  = 4_000_000_000
	maxCallDepth = 512
	coverageSize = 1 << 16
)

// VM is one execution instance of a Program. A single VM is not safe
// for concurrent use — run one VM per goroutine — but many VMs stamped
// from the same Program may run concurrently.
type VM struct {
	Mod   *ir.Module
	Mem   *Memory
	Heap  *heap.Allocator
	Stats Stats
	// Perf holds engine-strategy counters (inline-cache traffic, fused
	// dispatches). They live outside Stats on purpose: Stats is held to
	// struct equality across engines by the differential suite, while
	// Perf legitimately differs (the tree-walker never fuses).
	Perf Perf

	// prog is the shared immutable Program this instance executes.
	prog *Program

	hooks    Hooks
	builtins map[string]Builtin

	// engine selects the execution strategy (see engine.go); engineSet
	// records an explicit WithEngine so NewInstance knows whether to
	// apply the process default.
	engine    Engine
	engineSet bool

	// builtinSlots is the bytecode engine's callee table: index = the
	// Program's compile-time slot for a builtin name, value = the
	// implementation RegisterBuiltin installed (nil = not registered,
	// faults like an unknown function).
	builtinSlots []Builtin

	// callBinds caches the legacy engine's callee resolution per call
	// instruction (module function or builtin), replacing two string-map
	// lookups per call with one pointer-map hit. RegisterBuiltin drops
	// the cache so re-registration keeps working.
	callBinds map[*ir.Instr]boundCallee

	// Per-call-site inline layout caches (nil/zero unless the compiled
	// module has olr_getptr sites and a layout runtime installed the
	// protocol): icSlots holds one entry per numbered site, icGen points
	// at the runtime's layout-generation counter (entries from an older
	// generation never hit; the counter starts at 1 so zeroed entries
	// are invalid), and icHit replays the runtime's fast-path
	// observables on a hit so both engines' event/trace streams stay
	// identical to a resolver fast-path resolution.
	icSlots []icEntry
	icGen   *uint64
	icHit   func(site string, base uint64, field int64, class uint64, off int64)

	input  []byte
	output []byte

	fuel     uint64
	fuelLeft uint64

	coverage []byte
	covOn    bool

	stackTop   uint64
	depth      int
	quarantine int
	heapRand   int64

	// objects maps live heap object base -> static struct type for every
	// typed allocation (instrumented or not); used by taint attribution
	// and diagnostics.
	objects map[uint64]*ir.StructType

	framePool   [][]int64
	argvScratch []int64
	callScratch Call

	// instrLog is the instruction tracer (nil unless WithTrace); the
	// line format is owned by telemetry.InstrLog.
	instrLog *telemetry.InstrLog
	// tel is the observability layer (nil = disabled; every emission is
	// guarded by one nil check).
	tel *telemetry.Telemetry

	// prof is the hot-site profiler (nil unless WithProfiler); profSites
	// caches the per-block counter cells so the steady-state cost is one
	// map hit per basic-block entry, not per instruction. The cells are
	// per-instance because the profiler is an instance option; the site
	// strings they key on are interned once in the Program.
	prof      *profile.SiteProfiler
	profSites map[*ir.Block]*profile.SiteCounts

	// xt is the deterministic execution-trace writer (nil unless
	// WithExecTrace). xtBlocks/xtFuncs cache precomputed block-record
	// frame words / interned function ids per instance; the maps are
	// per-instance but the Writer assigns ids in first-use order, which
	// both engines reach identically — that is what makes cross-engine
	// traces byte-comparable. Both engines hook it directly; attaching
	// a trace does NOT force the legacy engine (see useBytecode).
	xt       *exectrace.Writer
	xtBlocks map[*ir.Func][]uint32
	xtFuncs  map[*ir.Func]uint32
}

// xtEnter records entry into fn on the execution trace and returns
// fn's per-block table of precomputed exectrace.BlockFrame words for
// the dispatch loop to index by block number — a slice access plus an
// inlined 4-byte append per block entry instead of a map probe and an
// encoder, which is what keeps tracing inside its <5% budget. First
// entry into a function interns its name and every block site in one
// program-order batch; both engines enter functions identically, so
// the interning order (part of the determinism contract) is too.
func (v *VM) xtEnter(fn *ir.Func) []uint32 {
	id, ok := v.xtFuncs[fn]
	if !ok {
		id = v.xt.Intern("@" + fn.Name)
		v.xtFuncs[fn] = id
	}
	frames, ok := v.xtBlocks[fn]
	if !ok {
		frames = make([]uint32, len(fn.Blocks))
		for i, b := range fn.Blocks {
			frames[i] = exectrace.BlockFrame(v.xt.Intern(v.prog.SiteName(b)))
		}
		v.xtBlocks[fn] = frames
	}
	v.xt.Call(id)
	return frames
}

// traceInstr emits one trace line (called only when tracing is on).
func (v *VM) traceInstr(fn *ir.Func, blk *ir.Block, in *ir.Instr) {
	v.instrLog.Emit(fn.Name, blk.Name, ir.FormatInstr(fn, in))
}

// Option configures a VM.
type Option func(*VM)

// WithInput sets the untrusted program input (read via input_* builtins).
func WithInput(b []byte) Option {
	return func(v *VM) { v.input = append([]byte(nil), b...) }
}

// WithFuel bounds the number of executed instructions.
func WithFuel(n uint64) Option {
	return func(v *VM) { v.fuel = n }
}

// WithHooks attaches a tracer (taint engine).
func WithHooks(h Hooks) Option {
	return func(v *VM) { v.hooks = h }
}

// WithCoverage enables the edge-coverage bitmap (used by the fuzzer).
func WithCoverage() Option {
	return func(v *VM) { v.covOn = true }
}

// WithQuarantine configures the heap quarantine length.
func WithQuarantine(n int) Option {
	return func(v *VM) { v.quarantine = n }
}

// WithHeapRand enables inter-chunk placement randomization in the
// simulated heap (§VII.B's class of defenses; seed 0 disables).
func WithHeapRand(seed int64) Option {
	return func(v *VM) { v.heapRand = seed }
}

// WithTrace streams every executed instruction to w as
// "@fn.block\tinstr" lines, stopping after maxLines (0 = unlimited).
// Tracing is a debugging facility; it slows execution substantially.
// The stream is produced by a telemetry.InstrLog; the text format and
// this option's signature are stable.
func WithTrace(w io.Writer, maxLines int) Option {
	return func(v *VM) { v.instrLog = telemetry.NewInstrLog(w, maxLines) }
}

// WithTelemetry attaches the observability layer: the VM (and the heap
// it creates) emit events and metrics into t. A nil t disables
// telemetry with no overhead beyond a nil check.
func WithTelemetry(t *telemetry.Telemetry) Option {
	return func(v *VM) { v.tel = t }
}

// WithProfiler attaches a hot-site profiler: each "@fn.block" site is
// charged the instructions actually executed in that block, in both
// engines — early exits (a mid-block ret, a fault, fuel exhaustion)
// charge only the executed prefix, and instructions a callee runs are
// charged to the callee's sites, not the call site. Summed over all
// sites the cycle counts equal Stats.Instructions exactly.
// A nil p disables profiling with no overhead beyond a nil check.
func WithProfiler(p *profile.SiteProfiler) Option {
	return func(v *VM) { v.prof = p }
}

// WithExecTrace attaches a deterministic execution-trace writer: both
// engines record block entries and calls directly (the trace is not an
// instruction log — block granularity keeps the overhead inside the
// <5% budget), and NewInstance subscribes the writer to the telemetry
// bus (when one is attached) for allocation, fuel-checkpoint and
// violation records. A nil w disables tracing with no overhead beyond
// a nil check. The writer is single-owner, like the VM itself: give
// every concurrently running VM its own writer.
func WithExecTrace(w *exectrace.Writer) Option {
	return func(v *VM) { v.xt = w }
}

// ExecTrace returns the attached execution-trace writer (may be nil).
func (v *VM) ExecTrace() *exectrace.Writer { return v.xt }

// Profiler returns the attached hot-site profiler (may be nil).
func (v *VM) Profiler() *profile.SiteProfiler { return v.prof }

// Telemetry returns the attached observability layer (may be nil).
func (v *VM) Telemetry() *telemetry.Telemetry { return v.tel }

// New prepares a VM for the module: validates it, lays out globals and
// creates the heap. It is the single-run compatibility wrapper over the
// Program/Instance split — callers that execute a module more than once
// should Compile it once and stamp NewInstance per run instead.
func New(m *ir.Module, opts ...Option) (*VM, error) {
	p, err := Compile(m)
	if err != nil {
		return nil, err
	}
	return p.NewInstance(opts...)
}

// RegisterBuiltin installs (or replaces) a native function. The POLaR
// runtime uses this to provide the olr_* ABI. Registration also binds
// the builtin into the bytecode engine's callee table (when the
// compiled module calls the name) and invalidates the legacy engine's
// call-site bindings.
func (v *VM) RegisterBuiltin(name string, fn Builtin) {
	v.builtins[name] = fn
	if idx, ok := v.prog.builtinSlot[name]; ok {
		v.builtinSlots[idx] = fn
	}
	v.callBinds = nil
	// A re-registered olr_getptr must see every call again: zeroed
	// entries carry generation 0, which no installed runtime's counter
	// (starting at 1) ever matches.
	for i := range v.icSlots {
		v.icSlots[i] = icEntry{}
	}
}

// icEntry is one per-call-site inline layout-cache slot: the last clean
// olr_getptr resolution at that site, valid while the runtime's layout
// generation still equals gen.
type icEntry struct {
	base  uint64
	class uint64
	field int64
	off   int64
	gen   uint64
}

// InstallLayoutCache arms the per-call-site inline layout caches: gen
// is the runtime's layout-generation counter (bumped whenever any
// memoized offset may have gone stale — free, layout-changing copy,
// rerandomize), and onHit replays the runtime's fast-path observables
// (counters, events, trace record) for a served hit. The protocol is
// engine-independent; with hooks attached the caches stay cold so
// Hooks.Builtin still observes every call.
func (v *VM) InstallLayoutCache(gen *uint64, onHit func(site string, base uint64, field int64, class uint64, off int64)) {
	v.icGen = gen
	v.icHit = onHit
}

// Program returns the shared immutable Program this VM executes.
func (v *VM) Program() *Program { return v.prog }

// GlobalAddr returns the address of a module global.
func (v *VM) GlobalAddr(name string) (uint64, bool) {
	a, ok := v.prog.globals[name]
	return a, ok
}

// Input returns the program input bytes.
func (v *VM) Input() []byte { return v.input }

// Output returns everything the program printed.
func (v *VM) Output() []byte { return v.output }

// Coverage returns the edge-coverage bitmap (nil unless WithCoverage).
func (v *VM) Coverage() []byte { return v.coverage }

// ObjectType returns the static struct type recorded for a live heap
// object base address.
func (v *VM) ObjectType(base uint64) (*ir.StructType, bool) {
	st, ok := v.objects[base]
	return st, ok
}

// TrackObject records (or re-records) the struct type of a heap object;
// the POLaR runtime calls this from olr_malloc so taint attribution
// keeps working on instrumented binaries.
func (v *VM) TrackObject(base uint64, st *ir.StructType) { v.objects[base] = st }

// UntrackObject removes object tracking at free time.
func (v *VM) UntrackObject(base uint64) { delete(v.objects, base) }

// TrackedBases returns the base addresses of every tracked live object
// in ascending order. The sort matters: the stateless rekey walk emits
// per-object events, and map iteration order must not leak into the
// event or trace streams (they are byte-identical per seed).
func (v *VM) TrackedBases() []uint64 {
	out := make([]uint64, 0, len(v.objects))
	for base := range v.objects {
		out = append(out, base)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Hooks returns the attached tracer (may be nil).
func (v *VM) HooksAttached() Hooks { return v.hooks }

// Run executes @main with the given integer arguments.
func (v *VM) Run(args ...int64) (int64, error) {
	return v.runEntry("main", args)
}

// CallFunc executes an arbitrary module function with integer arguments.
func (v *VM) CallFunc(name string, args ...int64) (int64, error) {
	return v.runEntry(name, args)
}

// runEntry dispatches one top-level execution on whichever engine is
// active, bracketing it with fuel-checkpoint events when telemetry is
// attached. The checkpoints are engine-independent (both engines share
// this entry and maintain exact fuel parity), so event streams stay
// identical across engines.
func (v *VM) runEntry(name string, args []int64) (int64, error) {
	if v.tel != nil {
		v.tel.Emit(telemetry.Event{Kind: telemetry.EvFuelCheckpoint, Size: int(v.fuelLeft), Detail: "run-start"})
	}
	ret, err := v.dispatchEntry(name, args)
	if v.tel != nil {
		v.tel.Emit(telemetry.Event{Kind: telemetry.EvFuelCheckpoint, Size: int(v.fuelLeft), Detail: "run-end"})
	}
	return ret, err
}

func (v *VM) dispatchEntry(name string, args []int64) (int64, error) {
	if v.useBytecode() {
		idx, ok := v.prog.funcIdx[name]
		if !ok {
			if name == "main" {
				return 0, ir.ErrNoMain
			}
			return 0, fmt.Errorf("%w: @%s", ErrUnknownFunc, name)
		}
		return v.callBC(v.prog.bcFuncs[idx], args)
	}
	f := v.prog.Func(name)
	if f == nil {
		if name == "main" {
			return 0, ir.ErrNoMain
		}
		return 0, fmt.Errorf("%w: @%s", ErrUnknownFunc, name)
	}
	ops := make([]ir.Value, len(args))
	for i, a := range args {
		ops[i] = ir.Const(a)
	}
	return v.call(f, ops, nil, -1)
}

func (v *VM) getFrame(n int) []int64 {
	if l := len(v.framePool); l > 0 {
		fr := v.framePool[l-1]
		v.framePool = v.framePool[:l-1]
		if cap(fr) >= n {
			fr = fr[:n]
			for i := range fr {
				fr[i] = 0
			}
			return fr
		}
	}
	return make([]int64, n)
}

func (v *VM) putFrame(fr []int64) {
	if len(v.framePool) < 64 {
		v.framePool = append(v.framePool, fr)
	}
}

// call runs fn to completion. callerRegs/callerDest link results back;
// callerRegs is nil for top-level entries.
func (v *VM) call(fn *ir.Func, args []ir.Value, callerRegs []int64, callerDest int) (int64, error) {
	if v.depth >= maxCallDepth {
		return 0, fmt.Errorf("%w in @%s", ErrStackOverflow, fn.Name)
	}
	v.depth++
	if v.depth > v.Stats.MaxDepth {
		v.Stats.MaxDepth = v.depth
	}
	v.Stats.Calls++
	var xtFrames []uint32
	if v.xt != nil {
		xtFrames = v.xtEnter(fn)
	}
	savedStack := v.stackTop
	regs := v.getFrame(fn.NumRegs)
	defer func() {
		v.putFrame(regs)
		v.stackTop = savedStack
		v.depth--
	}()
	for i := range args {
		if i >= len(fn.Params) {
			break
		}
		regs[i] = v.resolve(callerRegs, args[i])
	}
	if v.hooks != nil {
		v.hooks.Enter(fn, args)
	}

	// Per-instruction profiler attribution: instead of charging a whole
	// block on entry (which overcharges early exits and faults), track
	// the instruction counter at block entry and flush the delta — the
	// instructions this frame actually executed in the block — on every
	// block transition and on every way out of the frame.
	profiling := v.profSites != nil
	var psc *profile.SiteCounts
	var profBase uint64
	if profiling {
		profBase = v.Stats.Instructions
		defer func() {
			if psc != nil {
				if d := v.Stats.Instructions - profBase; d != 0 {
					psc.AddCycles(d)
				}
			}
		}()
	}

	blk := 0
	prevBlk := -1
	for {
		b := fn.Blocks[blk]
		if xtFrames != nil {
			if f := xtFrames[blk]; !v.xt.FastAppend4(f) {
				v.xt.BlockFrameSlow(f)
			}
		}
		if profiling {
			if psc != nil {
				if d := v.Stats.Instructions - profBase; d != 0 {
					psc.AddCycles(d)
				}
			}
			profBase = v.Stats.Instructions
			c, ok := v.profSites[b]
			if !ok {
				c = v.prof.Site(v.prog.SiteName(b))
				v.profSites[b] = c
			}
			psc = c
		}
		if v.coverage != nil {
			e := edgeHash(fn, prevBlk, blk)
			c := &v.coverage[e]
			if *c < 255 {
				*c++
			}
		}
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if v.fuelLeft == 0 {
				return 0, fmt.Errorf("%w in @%s.%s", ErrFuelExhausted, fn.Name, b.Name)
			}
			v.fuelLeft--
			v.Stats.Instructions++
			if v.instrLog != nil {
				v.traceInstr(fn, b, in)
			}

			switch in.Op {
			case ir.OpAlloc:
				count := 1
				if len(in.Args) == 1 {
					count = int(v.resolve(regs, in.Args[0]))
					if count < 1 {
						count = 1
					}
				}
				size := in.Type.Size() * count
				addr, err := v.Heap.Alloc(size)
				if err != nil {
					return 0, v.fault(fn, b, err)
				}
				v.Stats.Allocs++
				regs[in.Dest] = int64(addr)
				if in.Struct != nil && count == 1 {
					v.objects[addr] = in.Struct
				}
				if v.hooks != nil {
					v.hooks.Alloc(in.Dest, addr, size, in.Struct)
				}
				if v.tel != nil {
					name := ""
					if in.Struct != nil {
						name = in.Struct.Name
					}
					v.tel.Emit(telemetry.Event{Kind: telemetry.EvAlloc, Addr: addr, Size: size, Detail: name})
				}
			case ir.OpLocal:
				size := uint64((in.Type.Size() + 15) &^ 15)
				if v.stackTop+size > StackLimit {
					return 0, v.fault(fn, b, ErrStackOverflow)
				}
				addr := v.stackTop
				v.stackTop += size
				// Locals are zeroed (Go/C++ stack reuse would not be, but
				// deterministic init keeps workloads reproducible).
				if err := v.Mem.Set(addr, 0, in.Type.Size()); err != nil {
					return 0, v.fault(fn, b, err)
				}
				regs[in.Dest] = int64(addr)
			case ir.OpFree:
				addr := uint64(v.resolve(regs, in.Args[0]))
				if err := v.Heap.Free(addr); err != nil {
					return 0, v.fault(fn, b, err)
				}
				v.Stats.Frees++
				if v.icGen != nil {
					// A raw free can recycle a base address out from under
					// a memoized resolution; advance the generation so
					// every inline-cached offset revalidates (same point
					// in both engines).
					*v.icGen++
				}
				// Hook first: the taint engine attributes the free via
				// the object-type tracking this delete removes.
				if v.hooks != nil {
					v.hooks.Free(addr)
				}
				if v.tel != nil {
					v.tel.Emit(telemetry.Event{Kind: telemetry.EvFree, Addr: addr})
				}
				delete(v.objects, addr)
			case ir.OpLoad:
				addr := uint64(v.resolve(regs, in.Args[0]))
				val, err := v.loadTyped(addr, in.Type)
				if err != nil {
					return 0, v.fault(fn, b, err)
				}
				regs[in.Dest] = val
				if v.hooks != nil {
					v.hooks.Load(in.Dest, addr, in.Type.Size())
				}
			case ir.OpStore:
				addr := uint64(v.resolve(regs, in.Args[1]))
				val := v.resolve(regs, in.Args[0])
				if err := v.storeTyped(addr, in.Type, val); err != nil {
					return 0, v.fault(fn, b, err)
				}
				if v.hooks != nil {
					v.hooks.Store(in.Args[0], addr, in.Type.Size())
				}
			case ir.OpMemcpy:
				dst := uint64(v.resolve(regs, in.Args[0]))
				src := uint64(v.resolve(regs, in.Args[1]))
				n := int(v.resolve(regs, in.Args[2]))
				if n < 0 {
					n = 0
				}
				if err := v.Mem.Copy(dst, src, n); err != nil {
					return 0, v.fault(fn, b, err)
				}
				v.Stats.Memcpys++
				if v.hooks != nil {
					v.hooks.Memcpy(dst, src, n)
				}
			case ir.OpMemset:
				dst := uint64(v.resolve(regs, in.Args[0]))
				val := byte(v.resolve(regs, in.Args[1]))
				n := int(v.resolve(regs, in.Args[2]))
				if n < 0 {
					n = 0
				}
				if err := v.Mem.Set(dst, val, n); err != nil {
					return 0, v.fault(fn, b, err)
				}
				if v.hooks != nil {
					v.hooks.Memset(dst, n)
				}
			case ir.OpFieldPtr:
				base := uint64(v.resolve(regs, in.Args[0]))
				regs[in.Dest] = int64(base + uint64(in.Struct.Offset(in.Field)))
				v.Stats.FieldAccess++
				if v.hooks != nil {
					v.hooks.PtrDerive(in.Dest, in.Args[0])
				}
			case ir.OpElemPtr:
				base := uint64(v.resolve(regs, in.Args[0]))
				idx := v.resolve(regs, in.Args[1])
				regs[in.Dest] = int64(base + uint64(idx)*uint64(in.Type.Size()))
				if v.hooks != nil {
					v.hooks.PtrDerive(in.Dest, in.Args[0])
				}
			case ir.OpPtrAdd:
				base := uint64(v.resolve(regs, in.Args[0]))
				off := v.resolve(regs, in.Args[1])
				regs[in.Dest] = int64(base + uint64(off))
				if v.hooks != nil {
					v.hooks.PtrDerive(in.Dest, in.Args[0])
				}
			case ir.OpBin:
				a := v.resolve(regs, in.Args[0])
				bb := v.resolve(regs, in.Args[1])
				r, err := evalBin(in.Bin, a, bb)
				if err != nil {
					return 0, v.fault(fn, b, err)
				}
				regs[in.Dest] = r
				if v.hooks != nil {
					v.hooks.Bin(in.Dest, in.Args[0], in.Args[1])
				}
			case ir.OpFBin:
				a := math.Float64frombits(uint64(v.resolve(regs, in.Args[0])))
				bb := math.Float64frombits(uint64(v.resolve(regs, in.Args[1])))
				regs[in.Dest] = int64(math.Float64bits(evalFBin(in.Bin, a, bb)))
				if v.hooks != nil {
					v.hooks.Bin(in.Dest, in.Args[0], in.Args[1])
				}
			case ir.OpCmp:
				a := v.resolve(regs, in.Args[0])
				bb := v.resolve(regs, in.Args[1])
				regs[in.Dest] = evalCmp(in.Cmp, a, bb)
				if v.hooks != nil {
					v.hooks.Bin(in.Dest, in.Args[0], in.Args[1])
				}
			case ir.OpFCmp:
				a := math.Float64frombits(uint64(v.resolve(regs, in.Args[0])))
				bb := math.Float64frombits(uint64(v.resolve(regs, in.Args[1])))
				regs[in.Dest] = evalFCmp(in.Cmp, a, bb)
				if v.hooks != nil {
					v.hooks.Bin(in.Dest, in.Args[0], in.Args[1])
				}
			case ir.OpItoF:
				regs[in.Dest] = int64(math.Float64bits(float64(v.resolve(regs, in.Args[0]))))
				if v.hooks != nil {
					v.hooks.Un(in.Dest, in.Args[0])
				}
			case ir.OpFtoI:
				f := math.Float64frombits(uint64(v.resolve(regs, in.Args[0])))
				regs[in.Dest] = int64(f)
				if v.hooks != nil {
					v.hooks.Un(in.Dest, in.Args[0])
				}
			case ir.OpMov:
				regs[in.Dest] = v.resolve(regs, in.Args[0])
				if v.hooks != nil {
					v.hooks.Un(in.Dest, in.Args[0])
				}
			case ir.OpBr:
				prevBlk, blk = blk, in.Blocks[0]
			case ir.OpCondBr:
				c := v.resolve(regs, in.Args[0])
				if v.hooks != nil {
					v.hooks.CondBr(in.Args[0])
				}
				if c != 0 {
					prevBlk, blk = blk, in.Blocks[0]
				} else {
					prevBlk, blk = blk, in.Blocks[1]
				}
			case ir.OpCall:
				if profiling {
					// The call instruction itself has been counted: flush
					// it to this site before the callee charges its own
					// sites, then rebase past whatever the callee ran.
					if d := v.Stats.Instructions - profBase; d != 0 {
						psc.AddCycles(d)
					}
				}
				ret, err := v.dispatchCall(fn, b, regs, in)
				if profiling {
					profBase = v.Stats.Instructions
				}
				if err != nil {
					return 0, err
				}
				if in.Dest >= 0 {
					regs[in.Dest] = ret
				}
			case ir.OpRet:
				var rv int64
				var retArg *ir.Value
				if len(in.Args) == 1 {
					rv = v.resolve(regs, in.Args[0])
					retArg = &in.Args[0]
				}
				if v.hooks != nil {
					v.hooks.Exit(retArg, callerDest)
				}
				return rv, nil
			default:
				return 0, v.fault(fn, b, fmt.Errorf("vm: bad opcode %d", in.Op))
			}
			if in.Op == ir.OpBr || in.Op == ir.OpCondBr {
				break
			}
		}
		if last := b.Instrs[len(b.Instrs)-1]; last.Op != ir.OpBr && last.Op != ir.OpCondBr {
			// Ret already returned; anything else is a validator bug.
			return 0, v.fault(fn, b, errors.New("vm: fell off block end"))
		}
	}
}

// boundCallee is a resolved call target: a module function, a builtin,
// or (both nil) a callee that resolves to nothing and faults. ic is the
// site's inline layout-cache slot plus one (0 = none), resolved from
// the Program's numbering once per bind.
type boundCallee struct {
	fn *ir.Func
	bi Builtin
	ic int32
}

func (v *VM) dispatchCall(fn *ir.Func, b *ir.Block, regs []int64, in *ir.Instr) (int64, error) {
	// Callee binding is stable per call site (module functions are fixed
	// at Compile; builtin re-registration drops the cache), so resolve
	// the two string maps once and hit a pointer-keyed map after that.
	bound, ok := v.callBinds[in]
	if !ok {
		bound.fn = v.prog.Func(in.Callee)
		if bound.fn == nil {
			bound.bi = v.builtins[in.Callee]
		}
		if slot, has := v.prog.icSlotOf[in]; has {
			bound.ic = slot + 1
		}
		if v.callBinds == nil {
			v.callBinds = make(map[*ir.Instr]boundCallee)
		}
		v.callBinds[in] = bound
	}
	if bound.fn != nil {
		return v.call(bound.fn, in.Args, regs, in.Dest)
	}
	if bound.bi == nil {
		return 0, v.fault(fn, b, fmt.Errorf("%w: @%s", ErrUnknownFunc, in.Callee))
	}
	// Inline layout-cache fast path, shared with the bytecode engine
	// (same slots, same generation check, same hit callback — that is
	// what keeps the engines' event and trace streams identical). Hooks
	// disable it: Hooks.Builtin must observe every call.
	if bound.ic > 0 && v.icGen != nil && v.hooks == nil {
		base := uint64(v.resolve(regs, in.Args[0]))
		field := v.resolve(regs, in.Args[1])
		class := uint64(v.resolve(regs, in.Args[2]))
		if e := &v.icSlots[bound.ic-1]; e.gen == *v.icGen && e.base == base && e.field == field && e.class == class {
			v.Perf.InlineHits++
			v.icHit(v.prog.SiteName(b), base, field, class, e.off)
			return int64(base + uint64(e.off)), nil
		}
		v.Perf.InlineMisses++
	}
	// Builtins never re-enter the interpreter, so one scratch argument
	// buffer and Call frame per VM suffice (keeps the hot olr_getptr
	// path allocation-free).
	argv := v.argvScratch[:0]
	for _, a := range in.Args {
		argv = append(argv, v.resolve(regs, a))
	}
	v.argvScratch = argv[:0]
	v.callScratch = Call{VM: v, Name: in.Callee, Args: argv, RawArgs: in.Args, fn: fn, blk: b, ic: bound.ic}
	ret, err := bound.bi(&v.callScratch)
	if err != nil {
		return 0, v.fault(fn, b, err)
	}
	if v.hooks != nil {
		v.hooks.Builtin(in.Callee, in.Args, argv, ret, in.Dest)
	}
	return ret, nil
}

// resolve evaluates an operand against a register frame.
func (v *VM) resolve(regs []int64, val ir.Value) int64 {
	switch val.Kind {
	case ir.ValConst:
		return val.Int
	case ir.ValConstF:
		return int64(math.Float64bits(val.Float))
	case ir.ValReg:
		return regs[val.Reg]
	case ir.ValGlobal:
		return int64(v.prog.globals[val.Sym])
	case ir.ValFunc:
		return v.prog.funcHandles[val.Sym]
	default:
		return 0
	}
}

// FuncByHandle resolves a function-pointer handle back to its function.
// Handles are stable pseudo-addresses precomputed at Compile time; they
// live far above the heap so they never collide with data addresses.
func (v *VM) FuncByHandle(h int64) (*ir.Func, bool) {
	idx := (uint64(h) - 0x7f00_0000_0000) / 16
	if uint64(h) < 0x7f00_0000_0000 || int(idx) >= len(v.Mod.Funcs) {
		return nil, false
	}
	return v.Mod.Funcs[idx], true
}

func (v *VM) loadTyped(addr uint64, t ir.Type) (int64, error) {
	n := t.Size()
	u, err := v.Mem.ReadU(addr, n)
	if err != nil {
		return 0, err
	}
	if t.Kind() == ir.KindInt && n < 8 {
		// Sign-extend.
		shift := uint(64 - 8*n)
		return int64(u<<shift) >> shift, nil
	}
	return int64(u), nil
}

func (v *VM) storeTyped(addr uint64, t ir.Type, val int64) error {
	return v.Mem.WriteU(addr, t.Size(), uint64(val))
}

func (v *VM) fault(fn *ir.Func, b *ir.Block, err error) error {
	return fmt.Errorf("@%s.%s: %w", fn.Name, b.Name, err)
}

func evalBin(op ir.BinKind, a, b int64) (int64, error) {
	switch op {
	case ir.BinAdd:
		return a + b, nil
	case ir.BinSub:
		return a - b, nil
	case ir.BinMul:
		return a * b, nil
	case ir.BinDiv:
		if b == 0 {
			return 0, ErrDivByZero
		}
		return a / b, nil
	case ir.BinRem:
		if b == 0 {
			return 0, ErrDivByZero
		}
		return a % b, nil
	case ir.BinAnd:
		return a & b, nil
	case ir.BinOr:
		return a | b, nil
	case ir.BinXor:
		return a ^ b, nil
	case ir.BinShl:
		return a << (uint64(b) & 63), nil
	case ir.BinShr:
		return int64(uint64(a) >> (uint64(b) & 63)), nil
	default:
		return 0, fmt.Errorf("vm: bad binop %d", op)
	}
}

func evalFBin(op ir.BinKind, a, b float64) float64 {
	switch op {
	case ir.BinAdd:
		return a + b
	case ir.BinSub:
		return a - b
	case ir.BinMul:
		return a * b
	case ir.BinDiv:
		return a / b
	case ir.BinRem:
		return math.Mod(a, b)
	default:
		return math.NaN()
	}
}

func evalCmp(op ir.CmpKind, a, b int64) int64 {
	var r bool
	switch op {
	case ir.CmpEq:
		r = a == b
	case ir.CmpNe:
		r = a != b
	case ir.CmpLt:
		r = a < b
	case ir.CmpLe:
		r = a <= b
	case ir.CmpGt:
		r = a > b
	case ir.CmpGe:
		r = a >= b
	}
	if r {
		return 1
	}
	return 0
}

func evalFCmp(op ir.CmpKind, a, b float64) int64 {
	var r bool
	switch op {
	case ir.CmpEq:
		r = a == b
	case ir.CmpNe:
		r = a != b
	case ir.CmpLt:
		r = a < b
	case ir.CmpLe:
		r = a <= b
	case ir.CmpGt:
		r = a > b
	case ir.CmpGe:
		r = a >= b
	}
	if r {
		return 1
	}
	return 0
}

func edgeHash(fn *ir.Func, prev, cur int) uint16 {
	h := uint64(14695981039346656037)
	for _, ch := range fn.Name {
		h = (h ^ uint64(ch)) * 1099511628211
	}
	h = (h ^ uint64(uint32(prev+1))) * 1099511628211
	h = (h ^ uint64(uint32(cur+1))) * 1099511628211
	return uint16(h)
}
