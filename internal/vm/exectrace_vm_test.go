package vm

import (
	"bytes"
	"testing"

	"polar/internal/telemetry/exectrace"
)

// TestExecTraceStaysOnBytecode pins the structural-zero contract: an
// execution-trace writer is NOT a tree-walker facility, so attaching
// one must not flip the instance off the bytecode engine (unlike hooks
// and the instruction trace), and an instance without one carries no
// trace state at all.
func TestExecTraceStaysOnBytecode(t *testing.T) {
	p, err := Compile(richModule(t))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := p.NewInstance(WithEngine(EngineBytecode))
	if err != nil {
		t.Fatal(err)
	}
	if plain.ExecTrace() != nil {
		t.Fatal("instance without WithExecTrace carries a trace writer")
	}
	if !plain.useBytecode() {
		t.Fatal("plain bytecode instance not on bytecode (test setup broken)")
	}

	var buf bytes.Buffer
	xw := exectrace.NewWriter(&buf)
	traced, err := p.NewInstance(WithEngine(EngineBytecode), WithExecTrace(xw))
	if err != nil {
		t.Fatal(err)
	}
	if !traced.useBytecode() {
		t.Fatal("WithExecTrace knocked the instance off the bytecode engine")
	}
	if _, err := traced.Run(6); err != nil {
		t.Fatal(err)
	}
	if xw.Records() == 0 {
		t.Fatal("traced bytecode run recorded nothing")
	}
}

// TestExecTraceEngineIdentity runs the opcode-mix module on both
// engines with fresh writers and demands byte-identical traces — the
// block/call hook placement must agree exactly between the bytecode
// dispatch loop and the tree-walker.
func TestExecTraceEngineIdentity(t *testing.T) {
	p, err := Compile(richModule(t))
	if err != nil {
		t.Fatal(err)
	}
	trace := func(e Engine) []byte {
		t.Helper()
		var buf bytes.Buffer
		xw := exectrace.NewWriter(&buf)
		v, err := p.NewInstance(WithEngine(e), WithExecTrace(xw))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := v.Run(6); err != nil {
			t.Fatal(err)
		}
		if err := xw.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	bc, lg := trace(EngineBytecode), trace(EngineLegacy)
	if !bytes.Equal(bc, lg) {
		ta, errA := exectrace.Read(bytes.NewReader(bc))
		tb, errB := exectrace.Read(bytes.NewReader(lg))
		if errA != nil || errB != nil {
			t.Fatalf("traces differ and do not decode: %v / %v", errA, errB)
		}
		if d := exectrace.Diff(ta, tb); d != nil {
			t.Fatalf("engine traces diverge:\n%s", d.Format("bytecode", "legacy"))
		}
		t.Fatal("engine traces byte-differ but records match (encoding drift)")
	}
}
