package vm

import (
	"fmt"
	"math"

	"polar/internal/ir"
)

// Lowering flattens each validated function into the bcFunc form at
// Compile time: one pass per function, peephole fusion over adjacent
// instruction pairs, every operand pre-resolved against the Program's
// global layout and function-handle table, every callee bound to a
// small-int index (module functions directly, builtins through the
// per-instance slot table RegisterBuiltin populates).

// lowerModule lowers every function of the compiled module.
func (p *Program) lowerModule() error {
	p.bcFuncs = make([]*bcFunc, len(p.mod.Funcs))
	for i, f := range p.mod.Funcs {
		bf, err := p.lowerFunc(f)
		if err != nil {
			return fmt.Errorf("vm: lowering @%s: %w", f.Name, err)
		}
		p.bcFuncs[i] = bf
	}
	return nil
}

// builtinSlotFor returns the callee-table slot for a non-module callee
// name, allocating one on first sight. Slots exist per Program; the
// Builtin values live per instance (see VM.builtinSlots).
func (p *Program) builtinSlotFor(name string) int {
	if idx, ok := p.builtinSlot[name]; ok {
		return idx
	}
	idx := len(p.builtinSlot)
	p.builtinSlot[name] = idx
	return idx
}

// lowerValue pre-resolves one operand. Globals and function references
// become immediates here — the per-execution string-map lookups the
// tree-walker performs in resolve() happen exactly once, at compile
// time.
func (p *Program) lowerValue(v ir.Value) bcArg {
	switch v.Kind {
	case ir.ValConst:
		return bcArg{v: v.Int}
	case ir.ValConstF:
		return bcArg{v: int64(math.Float64bits(v.Float))}
	case ir.ValReg:
		return bcArg{v: int64(v.Reg), reg: true}
	case ir.ValGlobal:
		return bcArg{v: int64(p.globals[v.Sym])}
	case ir.ValFunc:
		return bcArg{v: p.funcHandles[v.Sym]}
	default:
		// Mirrors resolve()'s zero for an invalid operand kind.
		return bcArg{}
	}
}

// loadShift returns the sign-extension shift for a typed load (the
// compile-time form of loadTyped's Kind/width check).
func loadShift(t ir.Type) uint8 {
	if n := t.Size(); t.Kind() == ir.KindInt && n < 8 {
		return uint8(64 - 8*n)
	}
	return 0
}

// lowerFunc flattens one function.
func (p *Program) lowerFunc(f *ir.Func) (*bcFunc, error) {
	bf := &bcFunc{fn: f, numRegs: f.NumRegs, blocks: make([]bcBlock, len(f.Blocks))}
	for bi, blk := range f.Blocks {
		start := int32(len(bf.code))
		cost := uint32(0)
		for ii := 0; ii < len(blk.Instrs); ii++ {
			in := &blk.Instrs[ii]
			var out bcInstr
			out.dest = int32(in.Dest)
			out.irIn = in
			fused := false

			switch in.Op {
			case ir.OpFieldPtr:
				off := int32(in.Struct.Offset(in.Field))
				// Superinstruction fusion: a fieldptr whose result feeds
				// the immediately following load or store collapses into
				// one dispatch. The fieldptr register is still written
				// first, so any later use — including a store value that
				// reads it — sees the tree-walker's exact state.
				if ii+1 < len(blk.Instrs) {
					next := &blk.Instrs[ii+1]
					switch {
					case next.Op == ir.OpLoad &&
						next.Args[0].Kind == ir.ValReg && next.Args[0].Reg == in.Dest:
						out.op = bcFieldLoad
						out.a = p.lowerValue(in.Args[0])
						out.off = off
						out.d2 = int32(next.Dest)
						out.size = int32(next.Type.Size())
						out.signShift = loadShift(next.Type)
						fused = true
					case next.Op == ir.OpStore &&
						next.Args[1].Kind == ir.ValReg && next.Args[1].Reg == in.Dest:
						out.op = bcFieldStore
						out.a = p.lowerValue(in.Args[0])
						out.off = off
						out.b = p.lowerValue(next.Args[0])
						out.size = int32(next.Type.Size())
						fused = true
					}
				}
				if !fused {
					out.op = bcFieldPtr
					out.a = p.lowerValue(in.Args[0])
					out.off = off
				}
			case ir.OpCmp:
				if ii+1 < len(blk.Instrs) {
					if next := &blk.Instrs[ii+1]; next.Op == ir.OpCondBr &&
						next.Args[0].Kind == ir.ValReg && next.Args[0].Reg == in.Dest {
						out.op = bcCmpBr
						out.kind = uint8(in.Cmp)
						out.a = p.lowerValue(in.Args[0])
						out.b = p.lowerValue(in.Args[1])
						out.t0 = int32(next.Blocks[0])
						out.t1 = int32(next.Blocks[1])
						fused = true
					}
				}
				if !fused {
					out.op = bcCmp
					out.kind = uint8(in.Cmp)
					out.a = p.lowerValue(in.Args[0])
					out.b = p.lowerValue(in.Args[1])
				}
			case ir.OpAlloc:
				out.op = bcAlloc
				out.size = int32(in.Type.Size())
				out.st = in.Struct
				if len(in.Args) == 1 {
					out.a = p.lowerValue(in.Args[0])
				} else {
					out.a = bcArg{v: 1}
				}
			case ir.OpLocal:
				out.op = bcLocal
				out.size = int32(in.Type.Size())
			case ir.OpFree:
				out.op = bcFree
				out.a = p.lowerValue(in.Args[0])
			case ir.OpLoad:
				out.op = bcLoad
				out.a = p.lowerValue(in.Args[0])
				out.size = int32(in.Type.Size())
				out.signShift = loadShift(in.Type)
			case ir.OpStore:
				out.op = bcStore
				out.a = p.lowerValue(in.Args[0])
				out.b = p.lowerValue(in.Args[1])
				out.size = int32(in.Type.Size())
			case ir.OpMemcpy:
				out.op = bcMemcpy
				out.a = p.lowerValue(in.Args[0])
				out.b = p.lowerValue(in.Args[1])
				out.c = p.lowerValue(in.Args[2])
			case ir.OpMemset:
				out.op = bcMemset
				out.a = p.lowerValue(in.Args[0])
				out.b = p.lowerValue(in.Args[1])
				out.c = p.lowerValue(in.Args[2])
			case ir.OpElemPtr:
				out.op = bcElemPtr
				out.a = p.lowerValue(in.Args[0])
				out.b = p.lowerValue(in.Args[1])
				out.size = int32(in.Type.Size())
			case ir.OpPtrAdd:
				out.op = bcPtrAdd
				out.a = p.lowerValue(in.Args[0])
				out.b = p.lowerValue(in.Args[1])
			case ir.OpBin:
				out.op = bcBin
				out.kind = uint8(in.Bin)
				out.a = p.lowerValue(in.Args[0])
				out.b = p.lowerValue(in.Args[1])
			case ir.OpFBin:
				out.op = bcFBin
				out.kind = uint8(in.Bin)
				out.a = p.lowerValue(in.Args[0])
				out.b = p.lowerValue(in.Args[1])
			case ir.OpFCmp:
				out.op = bcFCmp
				out.kind = uint8(in.Cmp)
				out.a = p.lowerValue(in.Args[0])
				out.b = p.lowerValue(in.Args[1])
			case ir.OpItoF:
				out.op = bcItoF
				out.a = p.lowerValue(in.Args[0])
			case ir.OpFtoI:
				out.op = bcFtoI
				out.a = p.lowerValue(in.Args[0])
			case ir.OpMov:
				out.op = bcMov
				out.a = p.lowerValue(in.Args[0])
			case ir.OpBr:
				out.op = bcBr
				out.t0 = int32(in.Blocks[0])
			case ir.OpCondBr:
				out.op = bcCondBr
				out.a = p.lowerValue(in.Args[0])
				out.t0 = int32(in.Blocks[0])
				out.t1 = int32(in.Blocks[1])
			case ir.OpCall:
				out.args = make([]bcArg, len(in.Args))
				for ai, a := range in.Args {
					out.args[ai] = p.lowerValue(a)
				}
				if idx, ok := p.funcIdx[in.Callee]; ok {
					out.op = bcCallFunc
					out.off = int32(idx)
				} else {
					out.op = bcCallBuiltin
					out.off = int32(p.builtinSlotFor(in.Callee))
				}
			case ir.OpRet:
				if len(in.Args) == 1 {
					out.op = bcRet
					out.a = p.lowerValue(in.Args[0])
				} else {
					out.op = bcRetVoid
				}
			default:
				// Validation rejects unknown opcodes before lowering runs;
				// keep a faulting instruction so a foreign module that
				// somehow bypassed it reports the same error as the
				// tree-walker.
				out.op = bcInvalid
			}

			bf.wTo = append(bf.wTo, 0) // filled below
			bf.code = append(bf.code, out)
			cost += out.op.weight()
			if fused {
				ii++ // the pair lowered to one superinstruction
			}
		}
		bf.blocks[bi] = bcBlock{start: start, cost: cost, irb: blk}
	}
	// Cumulative weights: wTo[pc] prices code[:pc].
	bf.wTo = append(bf.wTo, 0)
	w := uint32(0)
	for pc := range bf.code {
		bf.wTo[pc] = w
		w += bf.code[pc].op.weight()
	}
	bf.wTo[len(bf.code)] = w
	return bf, nil
}
