package vm

import (
	"fmt"
	"math"

	"polar/internal/ir"
)

// Lowering flattens each validated function into the bcFunc form at
// Compile time. It runs in three phases per function:
//
//  1. Straight 1:1 lowering of every source instruction, with every
//     operand pre-resolved against the Program's global layout and
//     function-handle table and every callee bound to a small-int index
//     (module functions directly, builtins through the per-instance
//     slot table RegisterBuiltin populates).
//  2. Fusion. The profile-guided plan built in pgo.go selects
//     straight-line runs of fusable instructions per block; each
//     selected run collapses into one dispatch — a classic pair
//     superinstruction when the run is exactly one of the three
//     dependent-pair patterns, a generalized bcFused micro-op sequence
//     otherwise. Outside selected runs the original peephole still
//     fuses the three classic pairs, so a topK-limited plan degrades to
//     the historical behavior rather than to no fusion at all.
//  3. Register allocation (regalloc.go): a linear-scan pass renumbers
//     the virtual registers into a small dense operand file, shrinking
//     the per-call frame the interpreter must zero and keeping hot
//     registers on the same cache lines.

// lowerModule lowers every function of the compiled module under the
// fusion plan derived from opts.
func (p *Program) lowerModule(opts CompileOpts) error {
	plan := buildFusionPlan(p.mod, opts)
	p.planICSites(opts.Facts)
	p.bcFuncs = make([]*bcFunc, len(p.mod.Funcs))
	for i, f := range p.mod.Funcs {
		bf, err := p.lowerFunc(f, plan.runsFor(i))
		if err != nil {
			return fmt.Errorf("vm: lowering @%s: %w", f.Name, err)
		}
		allocRegisters(bf)
		poolMicroConstants(bf)
		p.bcFuncs[i] = bf
	}
	return nil
}

// builtinSlotFor returns the callee-table slot for a non-module callee
// name, allocating one on first sight. Slots exist per Program; the
// Builtin values live per instance (see VM.builtinSlots).
func (p *Program) builtinSlotFor(name string) int {
	if idx, ok := p.builtinSlot[name]; ok {
		return idx
	}
	idx := len(p.builtinSlot)
	p.builtinSlot[name] = idx
	return idx
}

// lowerValue pre-resolves one operand. Globals and function references
// become immediates here — the per-execution string-map lookups the
// tree-walker performs in resolve() happen exactly once, at compile
// time.
func (p *Program) lowerValue(v ir.Value) bcArg {
	switch v.Kind {
	case ir.ValConst:
		return bcArg{v: v.Int}
	case ir.ValConstF:
		return bcArg{v: int64(math.Float64bits(v.Float))}
	case ir.ValReg:
		return bcArg{v: int64(v.Reg), reg: true}
	case ir.ValGlobal:
		return bcArg{v: int64(p.globals[v.Sym])}
	case ir.ValFunc:
		return bcArg{v: p.funcHandles[v.Sym]}
	default:
		// Mirrors resolve()'s zero for an invalid operand kind.
		return bcArg{}
	}
}

// loadShift returns the sign-extension shift for a typed load (the
// compile-time form of loadTyped's Kind/width check).
func loadShift(t ir.Type) uint8 {
	if n := t.Size(); t.Kind() == ir.KindInt && n < 8 {
		return uint8(64 - 8*n)
	}
	return 0
}

// olrGetptrName is the instrumented member-access builtin whose call
// sites carry per-site inline layout caches (3 args: base, field index,
// class hash — see internal/instrument).
const olrGetptrName = "olr_getptr"

// lowerOne lowers a single source instruction 1:1 (no fusion).
func (p *Program) lowerOne(in *ir.Instr) bcInstr {
	var out bcInstr
	out.dest = int32(in.Dest)
	out.irIn = in
	out.ic = -1

	switch in.Op {
	case ir.OpFieldPtr:
		out.op = bcFieldPtr
		out.a = p.lowerValue(in.Args[0])
		out.off = int32(in.Struct.Offset(in.Field))
	case ir.OpCmp:
		out.op = bcCmp
		out.kind = uint8(in.Cmp)
		out.a = p.lowerValue(in.Args[0])
		out.b = p.lowerValue(in.Args[1])
	case ir.OpAlloc:
		out.op = bcAlloc
		out.size = int32(in.Type.Size())
		out.st = in.Struct
		if len(in.Args) == 1 {
			out.a = p.lowerValue(in.Args[0])
		} else {
			out.a = bcArg{v: 1}
		}
	case ir.OpLocal:
		out.op = bcLocal
		out.size = int32(in.Type.Size())
	case ir.OpFree:
		out.op = bcFree
		out.a = p.lowerValue(in.Args[0])
	case ir.OpLoad:
		out.op = bcLoad
		out.a = p.lowerValue(in.Args[0])
		out.size = int32(in.Type.Size())
		out.signShift = loadShift(in.Type)
	case ir.OpStore:
		out.op = bcStore
		out.a = p.lowerValue(in.Args[0])
		out.b = p.lowerValue(in.Args[1])
		out.size = int32(in.Type.Size())
	case ir.OpMemcpy:
		out.op = bcMemcpy
		out.a = p.lowerValue(in.Args[0])
		out.b = p.lowerValue(in.Args[1])
		out.c = p.lowerValue(in.Args[2])
	case ir.OpMemset:
		out.op = bcMemset
		out.a = p.lowerValue(in.Args[0])
		out.b = p.lowerValue(in.Args[1])
		out.c = p.lowerValue(in.Args[2])
	case ir.OpElemPtr:
		out.op = bcElemPtr
		out.a = p.lowerValue(in.Args[0])
		out.b = p.lowerValue(in.Args[1])
		out.size = int32(in.Type.Size())
	case ir.OpPtrAdd:
		out.op = bcPtrAdd
		out.a = p.lowerValue(in.Args[0])
		out.b = p.lowerValue(in.Args[1])
	case ir.OpBin:
		out.op = bcBin
		out.kind = uint8(in.Bin)
		out.a = p.lowerValue(in.Args[0])
		out.b = p.lowerValue(in.Args[1])
	case ir.OpFBin:
		out.op = bcFBin
		out.kind = uint8(in.Bin)
		out.a = p.lowerValue(in.Args[0])
		out.b = p.lowerValue(in.Args[1])
	case ir.OpFCmp:
		out.op = bcFCmp
		out.kind = uint8(in.Cmp)
		out.a = p.lowerValue(in.Args[0])
		out.b = p.lowerValue(in.Args[1])
	case ir.OpItoF:
		out.op = bcItoF
		out.a = p.lowerValue(in.Args[0])
	case ir.OpFtoI:
		out.op = bcFtoI
		out.a = p.lowerValue(in.Args[0])
	case ir.OpMov:
		out.op = bcMov
		out.a = p.lowerValue(in.Args[0])
	case ir.OpBr:
		out.op = bcBr
		out.t0 = int32(in.Blocks[0])
	case ir.OpCondBr:
		out.op = bcCondBr
		out.a = p.lowerValue(in.Args[0])
		out.t0 = int32(in.Blocks[0])
		out.t1 = int32(in.Blocks[1])
	case ir.OpCall:
		out.args = make([]bcArg, len(in.Args))
		for ai, a := range in.Args {
			out.args[ai] = p.lowerValue(a)
		}
		if idx, ok := p.funcIdx[in.Callee]; ok {
			out.op = bcCallFunc
			out.off = int32(idx)
		} else {
			out.op = bcCallBuiltin
			out.off = int32(p.builtinSlotFor(in.Callee))
			if in.Callee == olrGetptrName && len(in.Args) == 3 {
				// Per-call-site inline layout cache slot. The Program
				// only numbers the sites; the entries live per instance
				// and the legacy engine finds its slot via icSlotOf.
				// Under static facts the precomputed plan decides the
				// slot instead — possibly shared, possibly none.
				if p.icPlan != nil {
					if slot, ok := p.icPlan[in]; ok && slot >= 0 {
						out.ic = slot
						p.icSlotOf[in] = out.ic
					}
				} else {
					out.ic = int32(p.numICSites)
					p.icSlotOf[in] = out.ic
					p.numICSites++
				}
			}
		}
	case ir.OpRet:
		if len(in.Args) == 1 {
			out.op = bcRet
			out.a = p.lowerValue(in.Args[0])
		} else {
			out.op = bcRetVoid
		}
	default:
		// Validation rejects unknown opcodes before lowering runs;
		// keep a faulting instruction so a foreign module that
		// somehow bypassed it reports the same error as the
		// tree-walker.
		out.op = bcInvalid
	}
	return out
}

// microFor pre-decodes one fusable source instruction into a micro-op.
// Only called for ops fusableIR admits.
func (p *Program) microFor(in *ir.Instr) mcInstr {
	m := mcInstr{dest: int32(in.Dest)}
	setA := func(v ir.Value) {
		a := p.lowerValue(v)
		m.a, m.aReg = a.v, a.reg
	}
	setB := func(v ir.Value) {
		b := p.lowerValue(v)
		m.b, m.bReg = b.v, b.reg
	}
	switch in.Op {
	case ir.OpLoad:
		m.op = mcLoad
		setA(in.Args[0])
		m.size = int32(in.Type.Size())
		m.signShift = loadShift(in.Type)
	case ir.OpStore:
		m.op = mcStore
		setA(in.Args[0])
		setB(in.Args[1])
		m.size = int32(in.Type.Size())
	case ir.OpFieldPtr:
		m.op = mcFieldPtr
		setA(in.Args[0])
		m.off = int32(in.Struct.Offset(in.Field))
	case ir.OpElemPtr:
		m.op = mcElemPtr
		setA(in.Args[0])
		setB(in.Args[1])
		m.size = int32(in.Type.Size())
	case ir.OpPtrAdd:
		m.op = mcPtrAdd
		setA(in.Args[0])
		setB(in.Args[1])
	case ir.OpBin:
		m.op = mcBin
		m.kind = uint8(in.Bin)
		setA(in.Args[0])
		setB(in.Args[1])
	case ir.OpFBin:
		m.op = mcFBin
		m.kind = uint8(in.Bin)
		setA(in.Args[0])
		setB(in.Args[1])
	case ir.OpCmp:
		m.op = mcCmp
		m.kind = uint8(in.Cmp)
		setA(in.Args[0])
		setB(in.Args[1])
	case ir.OpFCmp:
		m.op = mcFCmp
		m.kind = uint8(in.Cmp)
		setA(in.Args[0])
		setB(in.Args[1])
	case ir.OpItoF:
		m.op = mcItoF
		setA(in.Args[0])
	case ir.OpFtoI:
		m.op = mcFtoI
		setA(in.Args[0])
	case ir.OpMov:
		m.op = mcMov
		setA(in.Args[0])
	case ir.OpBr:
		m.op = mcBr
		m.off = int32(in.Blocks[0])
	case ir.OpCondBr:
		m.op = mcCondBr
		setA(in.Args[0])
		m.off = int32(in.Blocks[0])
		m.t1 = int32(in.Blocks[1])
	}
	return specializeMicro(m)
}

// specializeMicro rewrites a general micro-op into its dedicated
// single-dispatch form when one exists: non-faulting integer arithmetic
// kinds, 8-byte loads/stores and the compare kinds. Div/rem keep the
// general mcBin (they fault on zero), sub-word memory ops keep
// mcLoad/mcStore (they mask and sign-extend).
func specializeMicro(m mcInstr) mcInstr {
	switch m.op {
	case mcBin:
		switch ir.BinKind(m.kind) {
		case ir.BinAdd:
			m.op = mcAdd
		case ir.BinSub:
			m.op = mcSub
		case ir.BinMul:
			m.op = mcMul
		case ir.BinAnd:
			m.op = mcAnd
		case ir.BinOr:
			m.op = mcOr
		case ir.BinXor:
			m.op = mcXor
		case ir.BinShl:
			m.op = mcShl
		case ir.BinShr:
			m.op = mcShr
		}
	case mcCmp:
		switch ir.CmpKind(m.kind) {
		case ir.CmpEq:
			m.op = mcCmpEq
		case ir.CmpNe:
			m.op = mcCmpNe
		case ir.CmpLt:
			m.op = mcCmpLt
		case ir.CmpLe:
			m.op = mcCmpLe
		case ir.CmpGt:
			m.op = mcCmpGt
		case ir.CmpGe:
			m.op = mcCmpGe
		}
	case mcLoad:
		if m.size == 8 {
			m.op = mcLoad8 // loadShift is 0 for full-width loads
		}
	case mcStore:
		if m.size == 8 {
			m.op = mcStore8
		}
	}
	return m
}

// classicPair lowers a length-2 run that matches one of the three
// historical dependent-pair superinstructions, reporting ok=false when
// the pair is not one of those patterns (the caller then emits bcFused).
func (p *Program) classicPair(in, next *ir.Instr) (bcInstr, bool) {
	var out bcInstr
	out.dest = int32(in.Dest)
	out.irIn = in
	out.ic = -1
	switch {
	case in.Op == ir.OpFieldPtr && next.Op == ir.OpLoad &&
		next.Args[0].Kind == ir.ValReg && next.Args[0].Reg == in.Dest:
		out.op = bcFieldLoad
		out.a = p.lowerValue(in.Args[0])
		out.off = int32(in.Struct.Offset(in.Field))
		out.d2 = int32(next.Dest)
		out.size = int32(next.Type.Size())
		out.signShift = loadShift(next.Type)
		return out, true
	case in.Op == ir.OpFieldPtr && next.Op == ir.OpStore &&
		next.Args[1].Kind == ir.ValReg && next.Args[1].Reg == in.Dest:
		out.op = bcFieldStore
		out.a = p.lowerValue(in.Args[0])
		out.off = int32(in.Struct.Offset(in.Field))
		out.b = p.lowerValue(next.Args[0])
		out.size = int32(next.Type.Size())
		return out, true
	case in.Op == ir.OpCmp && next.Op == ir.OpCondBr &&
		next.Args[0].Kind == ir.ValReg && next.Args[0].Reg == in.Dest:
		out.op = bcCmpBr
		out.kind = uint8(in.Cmp)
		out.a = p.lowerValue(in.Args[0])
		out.b = p.lowerValue(in.Args[1])
		out.t0 = int32(next.Blocks[0])
		out.t1 = int32(next.Blocks[1])
		return out, true
	}
	return bcInstr{}, false
}

// lowerFunc flattens one function under the per-block fusion runs
// selected for it (nil = classic peephole only).
func (p *Program) lowerFunc(f *ir.Func, runs [][][2]int) (*bcFunc, error) {
	bf := &bcFunc{fn: f, numRegs: f.NumRegs, blocks: make([]bcBlock, len(f.Blocks))}
	for bi, blk := range f.Blocks {
		start := int32(len(bf.code))
		cost := uint32(0)
		var sel [][2]int
		if bi < len(runs) {
			sel = runs[bi]
		}
		ri := 0
		emit := func(out bcInstr) {
			bf.code = append(bf.code, out)
			cost += out.weight()
		}
		for ii := 0; ii < len(blk.Instrs); {
			// A selected fusion run starting here collapses into one
			// dispatch: a classic pair superinstruction when it is
			// exactly one of the three dependent-pair patterns, the
			// generalized micro-op sequence otherwise.
			if ri < len(sel) && sel[ri][0] == ii {
				lo, hi := sel[ri][0], sel[ri][1]
				ri++
				if hi-lo == 2 {
					if out, ok := p.classicPair(&blk.Instrs[lo], &blk.Instrs[lo+1]); ok {
						emit(out)
						ii = hi
						continue
					}
				}
				out := bcInstr{op: bcFused, dest: -1, ic: -1, irIn: &blk.Instrs[lo]}
				out.micro = make([]mcInstr, 0, hi-lo)
				for k := lo; k < hi; k++ {
					out.micro = append(out.micro, p.microFor(&blk.Instrs[k]))
				}
				emit(out)
				ii = hi
				continue
			}
			// Outside selected runs: the original peephole over the
			// three classic pairs, never crossing into a selected run.
			if ii+1 < len(blk.Instrs) && !(ri < len(sel) && sel[ri][0] == ii+1) {
				if out, ok := p.classicPair(&blk.Instrs[ii], &blk.Instrs[ii+1]); ok {
					emit(out)
					ii += 2
					continue
				}
			}
			emit(p.lowerOne(&blk.Instrs[ii]))
			ii++
		}
		bf.blocks[bi] = bcBlock{start: start, cost: cost, irb: blk}
	}
	// Cumulative weights: wTo[pc] prices code[:pc].
	bf.wTo = make([]uint32, len(bf.code)+1)
	w := uint32(0)
	for pc := range bf.code {
		bf.wTo[pc] = w
		w += bf.code[pc].weight()
	}
	bf.wTo[len(bf.code)] = w
	return bf, nil
}
