package vm

import (
	"fmt"

	"polar/internal/heap"
	"polar/internal/ir"
	"polar/internal/telemetry/profile"
)

// Program is the immutable, execution-ready form of a module: validated
// once, globals laid out once, function handles and per-block site names
// precomputed once. A Program is safe for concurrent use — any number of
// goroutines may stamp out Instances from it simultaneously — and the
// module it wraps must not be mutated after Compile.
//
// The split exists because the paper's evaluation is embarrassingly
// parallel (every workload × config × rep is an independent run): the
// per-run cost should be a cheap Instance, not a re-validation and
// re-layout of the whole module.
type Program struct {
	mod *ir.Module

	// globals maps global name -> address; the layout is fixed at
	// compile time and identical for every instance.
	globals map[string]uint64
	// globalInits records the (address, bytes) writes each fresh
	// instance replays to initialize its memory image.
	globalInits []globalInit

	// funcs and funcHandles resolve call targets and function-pointer
	// constants without the per-call linear scan Module.Func performs.
	funcs       map[string]*ir.Func
	funcHandles map[string]int64

	// siteNames interns the "@fn.block" site string for every block in
	// the module, so Call.Site and the profiler never re-intern
	// identical strings across runs (they used to be rebuilt per VM).
	siteNames map[*ir.Block]string

	// bcFuncs is the lowered bytecode for every function (index-aligned
	// with mod.Funcs); funcIdx maps function name -> that index, and
	// builtinSlot maps every non-module callee name the lowering saw to
	// its slot in the per-instance VM.builtinSlots table. All three are
	// produced once at Compile time and shared read-only by instances.
	bcFuncs     []*bcFunc
	funcIdx     map[string]int
	builtinSlot map[string]int

	// numICSites counts the inline layout-cache slots the lowering
	// allocated; icSlotOf maps each olr_getptr source instruction to
	// its slot so the tree-walker shares the per-instance cache
	// (VM.icSlots) with the bytecode engine. icPlan, when non-nil, is
	// the fact-driven slot assignment planICSites precomputed (facts.go)
	// — sites may then share a slot or carry none at all.
	numICSites int
	icSlotOf   map[*ir.Instr]int32
	icPlan     map[*ir.Instr]int32
}

type globalInit struct {
	addr uint64
	data []byte
}

// Compile validates m and precomputes everything runs share. The module
// must not be mutated afterwards; Clone it first if the caller keeps
// rewriting it.
func Compile(m *ir.Module) (*Program, error) {
	return CompileWith(m, DefaultPGO())
}

// CompileWith compiles under explicit optimization inputs (Compile uses
// the process default installed by SetDefaultPGO). The same module,
// profile and topK always produce byte-identical lowered code — see
// Fingerprint.
func CompileWith(m *ir.Module, opts CompileOpts) (*Program, error) {
	if err := ir.Validate(m); err != nil {
		return nil, err
	}
	p := &Program{
		mod:         m,
		globals:     make(map[string]uint64, len(m.Globals)),
		funcs:       make(map[string]*ir.Func, len(m.Funcs)),
		funcHandles: make(map[string]int64, len(m.Funcs)),
		siteNames:   make(map[*ir.Block]string),
		funcIdx:     make(map[string]int, len(m.Funcs)),
		builtinSlot: make(map[string]int),
		icSlotOf:    make(map[*ir.Instr]int32),
	}
	addr := uint64(GlobalBase)
	for _, g := range m.Globals {
		addr = (addr + 15) &^ 15
		p.globals[g.Name] = addr
		if len(g.Init) > 0 {
			p.globalInits = append(p.globalInits, globalInit{addr: addr, data: g.Init})
		}
		addr += uint64(g.Size)
	}
	for i, f := range m.Funcs {
		p.funcs[f.Name] = f
		p.funcIdx[f.Name] = i
		p.funcHandles[f.Name] = int64(0x7f00_0000_0000 + uint64(i)*16)
		for _, b := range f.Blocks {
			p.siteNames[b] = "@" + f.Name + "." + b.Name
		}
	}
	// Lower every function to flat bytecode (needs the complete funcIdx
	// for direct callee binding).
	if err := p.lowerModule(opts); err != nil {
		return nil, err
	}
	return p, nil
}

// Fingerprint hashes the complete lowered instruction stream (opcodes,
// operand kinds and values, micro-op sequences, weights, cache slots,
// block layout) into a stable 64-bit FNV-1a digest. Two Programs with
// equal fingerprints execute identical bytecode; the PGO-determinism
// gate asserts that compiling the same module under the same profile
// and seed twice agrees here.
func (p *Program) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	mixArg := func(a bcArg) {
		if a.reg {
			mix(1)
		} else {
			mix(0)
		}
		mix(uint64(a.v))
	}
	for _, bf := range p.bcFuncs {
		mix(uint64(len(bf.code)))
		mix(uint64(len(bf.blocks)))
		mix(uint64(bf.numRegs))
		mix(uint64(len(bf.consts)))
		for i := range bf.consts {
			mix(uint64(uint32(bf.consts[i].slot)))
			mix(uint64(bf.consts[i].val))
		}
		for bi := range bf.blocks {
			mix(uint64(bf.blocks[bi].start))
			mix(uint64(bf.blocks[bi].cost))
		}
		for pc := range bf.code {
			in := &bf.code[pc]
			mix(uint64(in.op))
			mix(uint64(in.kind))
			mix(uint64(in.signShift))
			mix(uint64(uint32(in.dest)))
			mix(uint64(uint32(in.d2)))
			mix(uint64(uint32(in.size)))
			mix(uint64(uint32(in.off)))
			mix(uint64(uint32(in.t0)))
			mix(uint64(uint32(in.t1)))
			mix(uint64(uint32(in.ic)))
			mixArg(in.a)
			mixArg(in.b)
			mixArg(in.c)
			mix(uint64(len(in.args)))
			for i := range in.args {
				mixArg(in.args[i])
			}
			mix(uint64(len(in.micro)))
			for mi := range in.micro {
				m := &in.micro[mi]
				mix(uint64(m.op))
				mix(uint64(m.kind))
				mix(uint64(m.signShift))
				if m.aReg {
					mix(1)
				} else {
					mix(0)
				}
				if m.bReg {
					mix(1)
				} else {
					mix(0)
				}
				mix(uint64(uint32(m.dest)))
				mix(uint64(uint32(m.size)))
				mix(uint64(uint32(m.off)))
				mix(uint64(uint32(m.t1)))
				mix(uint64(m.a))
				mix(uint64(m.b))
			}
		}
	}
	return h
}

// LoweredFuncStats summarizes the lowered form of one function for
// static introspection (cmd/polarstat).
type LoweredFuncStats struct {
	Name         string `json:"name"`
	SourceInstrs int    `json:"source_instrs"`
	Dispatches   int    `json:"dispatches"`
	FusedRuns    int    `json:"fused_runs"`
	FusedMicros  int    `json:"fused_micros"`
	ClassicPairs int    `json:"classic_pairs"`
	ICSites      int    `json:"ic_sites"`
	OperandRegs  int    `json:"operand_regs"`
	SourceRegs   int    `json:"source_regs"`
}

// LoweredStats reports per-function lowering statistics: how many
// dispatches the flat code needs for how many source instructions,
// where the fuser collapsed runs, how many olr_getptr sites carry
// inline caches, and how far register allocation shrank the operand
// file.
func (p *Program) LoweredStats() []LoweredFuncStats {
	out := make([]LoweredFuncStats, 0, len(p.bcFuncs))
	for _, bf := range p.bcFuncs {
		s := LoweredFuncStats{
			Name:        bf.fn.Name,
			Dispatches:  len(bf.code),
			OperandRegs: bf.numRegs,
			SourceRegs:  bf.fn.NumRegs,
		}
		for pc := range bf.code {
			in := &bf.code[pc]
			s.SourceInstrs += int(in.weight())
			switch {
			case in.op == bcFused:
				s.FusedRuns++
				s.FusedMicros += len(in.micro)
			case in.op >= bcFieldLoad:
				s.ClassicPairs++
			}
			if in.ic >= 0 {
				s.ICSites++
			}
		}
		out = append(out, s)
	}
	return out
}

// Module returns the compiled module. Treat it as read-only.
func (p *Program) Module() *ir.Module { return p.mod }

// Func resolves a function by name (nil if absent) without scanning.
func (p *Program) Func(name string) *ir.Func { return p.funcs[name] }

// SiteName returns the interned "@fn.block" site string for a block of
// the compiled module ("" for foreign blocks).
func (p *Program) SiteName(b *ir.Block) string { return p.siteNames[b] }

// NewInstance stamps out a fresh VM over the program: a private memory
// image, heap and register state sharing the compiled metadata. The
// instance itself is single-threaded (run one per goroutine), but any
// number of instances may run concurrently.
func (p *Program) NewInstance(opts ...Option) (*VM, error) {
	v := &VM{
		Mod:      p.mod,
		prog:     p,
		Mem:      newMemory(),
		builtins: make(map[string]Builtin),
		fuel:     defaultFuel,
		stackTop: StackBase,
		objects:  make(map[uint64]*ir.StructType),
	}
	for _, o := range opts {
		o(v)
	}
	if !v.engineSet {
		v.engine = DefaultEngine()
	}
	// The slot table must exist before any RegisterBuiltin call (the
	// defaults below, core.Runtime.Attach later) so every registration
	// lands in both the name map and the bytecode callee table.
	v.builtinSlots = make([]Builtin, len(p.builtinSlot))
	if p.numICSites > 0 {
		// Inline layout-cache entries are per instance (they memoize
		// instance-specific randomized offsets) and start invalid: a
		// zero entry's generation never matches a live runtime's, whose
		// generation counter starts at 1.
		v.icSlots = make([]icEntry, p.numICSites)
	}
	heapOpts := []heap.Option{heap.WithQuarantine(v.quarantine)}
	if v.heapRand != 0 {
		heapOpts = append(heapOpts, heap.WithRandomPlacement(v.heapRand))
	}
	if v.tel != nil {
		heapOpts = append(heapOpts, heap.WithTelemetry(v.tel))
	}
	v.Heap = heap.New(HeapBase, HeapSize, heapOpts...)
	if v.prof != nil {
		v.profSites = make(map[*ir.Block]*profile.SiteCounts)
	}
	if v.xt != nil {
		v.xtBlocks = make(map[*ir.Func][]uint32)
		v.xtFuncs = make(map[*ir.Func]uint32)
		// Ride the bus for everything that is not worth a direct hook
		// (raw allocs/frees, fuel checkpoints, violations). AttachOnce
		// keeps a writer shared between the VM and core subscribed once.
		if v.tel != nil {
			v.xt.AttachOnce(v.tel.Bus)
		}
	}
	v.fuelLeft = v.fuel
	if v.covOn {
		v.coverage = make([]byte, coverageSize)
	}
	for _, gi := range p.globalInits {
		if err := v.Mem.WriteBytes(gi.addr, gi.data); err != nil {
			return nil, fmt.Errorf("vm: init global at 0x%x: %w", gi.addr, err)
		}
	}
	registerDefaultBuiltins(v)
	return v, nil
}
