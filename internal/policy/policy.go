// Package policy defines the randomization policy file — the artifact
// that carries TaintClass's verdict (Fig. 3's "feedback data") from the
// analysis step to the compile step. taintclass -o writes one; polarc
// -policy consumes it.
//
// A policy names the randomization targets and, per class, the tuned
// layout knobs derived from what TaintClass learned about the class
// (§IV.B.1: which members are input-tainted, whether its life cycle is
// input-controlled).
package policy

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"polar/internal/layout"
	"polar/internal/taint"
)

// ClassPolicy is the per-class tuning record.
type ClassPolicy struct {
	// MinDummies/MaxDummies bound the dummy members inserted per
	// allocation of this class.
	MinDummies int `json:"minDummies"`
	MaxDummies int `json:"maxDummies"`
	// BoobyTraps plants canaries in front of function-pointer members.
	BoobyTraps bool `json:"boobyTraps"`
	// Why records the TaintClass evidence (documentation only).
	Why string `json:"why,omitempty"`
	// TaintedFields lists the input-tainted member names.
	TaintedFields []string `json:"taintedFields,omitempty"`
}

// Policy is the serializable randomization policy.
type Policy struct {
	// Generator records provenance (tool + parameters).
	Generator string `json:"generator,omitempty"`
	// Targets are the class names to randomize, sorted.
	Targets []string `json:"targets"`
	// Classes holds per-class tuning, keyed by class name.
	Classes map[string]ClassPolicy `json:"classes,omitempty"`
}

// ClassTaintInfo describes one tainted class independently of which
// analysis produced the verdict — the dynamic campaign (taint.Report)
// and the static pass (internal/analysis) both reduce to it.
type ClassTaintInfo struct {
	Class        string
	AllocTainted bool
	FreeTainted  bool
	// TaintedFields lists the input-tainted member names in member
	// order.
	TaintedFields []string
	// PointerTainted marks a tainted pointer (or function-pointer)
	// member.
	PointerTainted bool
}

// FromClassTaints builds a policy from per-class taint verdicts using
// the §IV.B.1 tuning rules (see polar.Hardened.TuneFromTaint for the
// same rules applied in-process).
func FromClassTaints(infos []ClassTaintInfo, generator string) *Policy {
	base := layout.DefaultConfig()
	p := &Policy{Generator: generator, Classes: make(map[string]ClassPolicy)}
	for _, info := range infos {
		cp := ClassPolicy{
			MinDummies:    base.MinDummies,
			MaxDummies:    base.MaxDummies,
			BoobyTraps:    base.BoobyTraps,
			TaintedFields: append([]string(nil), info.TaintedFields...),
		}
		switch {
		case info.PointerTainted:
			cp.MinDummies++
			cp.MaxDummies++
			cp.Why = "input-tainted pointer members"
		case info.AllocTainted || info.FreeTainted:
			cp.Why = "input-controlled life cycle"
		default:
			if cp.MinDummies > 0 {
				cp.MinDummies--
			}
			if cp.MaxDummies > cp.MinDummies+1 {
				cp.MaxDummies--
			}
			cp.Why = "input-tainted data members only"
		}
		p.Targets = append(p.Targets, info.Class)
		p.Classes[info.Class] = cp
	}
	sort.Strings(p.Targets)
	return p
}

// FromTaintReport builds a policy from a dynamic TaintClass report.
func FromTaintReport(rep *taint.Report, generator string) *Policy {
	var infos []ClassTaintInfo
	for _, name := range rep.TaintedClasses() {
		obj, _ := rep.Object(name)
		info := ClassTaintInfo{
			Class:        name,
			AllocTainted: obj.AllocTainted,
			FreeTainted:  obj.FreeTainted,
		}
		for _, ft := range obj.SortedFields() {
			info.TaintedFields = append(info.TaintedFields, ft.Name)
			if ft.IsPointer {
				info.PointerTainted = true
			}
		}
		infos = append(infos, info)
	}
	return FromClassTaints(infos, generator)
}

// LayoutConfig converts a class policy into a layout configuration.
func (cp ClassPolicy) LayoutConfig() layout.Config {
	cfg := layout.DefaultConfig()
	cfg.MinDummies = cp.MinDummies
	cfg.MaxDummies = cp.MaxDummies
	cfg.BoobyTraps = cp.BoobyTraps
	return cfg
}

// Validate checks internal consistency.
func (p *Policy) Validate() error {
	seen := make(map[string]bool, len(p.Targets))
	for _, t := range p.Targets {
		if t == "" {
			return fmt.Errorf("policy: empty target name")
		}
		if seen[t] {
			return fmt.Errorf("policy: duplicate target %q", t)
		}
		seen[t] = true
	}
	for name, cp := range p.Classes {
		if !seen[name] {
			return fmt.Errorf("policy: class %q tuned but not targeted", name)
		}
		if cp.MinDummies < 0 || cp.MaxDummies < cp.MinDummies {
			return fmt.Errorf("policy: class %q has invalid dummy range [%d,%d]", name, cp.MinDummies, cp.MaxDummies)
		}
	}
	return nil
}

// Marshal renders the policy as indented JSON.
func (p *Policy) Marshal() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(p, "", "  ")
}

// Parse reads a policy from JSON.
func Parse(data []byte) (*Policy, error) {
	var p Policy
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("policy: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Save writes the policy to a file.
func (p *Policy) Save(path string) error {
	data, err := p.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a policy from a file.
func Load(path string) (*Policy, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}
