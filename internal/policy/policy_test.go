package policy

import (
	"path/filepath"
	"testing"

	"polar/internal/ir"
	"polar/internal/taint"
)

func sampleReport(t *testing.T) *taint.Report {
	t.Helper()
	m := ir.NewModule("p")
	hot := m.MustStruct(ir.NewStruct("Hot",
		ir.Field{Name: "cb", Type: ir.Fptr},
		ir.Field{Name: "n", Type: ir.I64},
	))
	data := m.MustStruct(ir.NewStruct("DataOnly",
		ir.Field{Name: "a", Type: ir.I64},
	))
	if _, err := m.AddGlobal("buf", 16, nil); err != nil {
		t.Fatal(err)
	}
	b := ir.NewFunc(m, "main", ir.I64)
	b.Call("input_read", ir.Global("buf"), ir.Const(0), ir.Const(8))
	h := b.Alloc(hot)
	v := b.Load(ir.I64, ir.Global("buf"))
	b.Store(ir.Fptr, v, b.FieldPtrName(hot, h, "cb")) // tainted pointer member
	d := b.Alloc(data)
	b.Store(ir.I64, v, b.FieldPtrName(data, d, "a")) // tainted data member
	b.Ret(ir.Const(0))
	rep, err := taint.AnalyzeOne(m, []byte{1, 2, 3, 4, 5, 6, 7, 8}, taint.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestFromTaintReportRules(t *testing.T) {
	p := FromTaintReport(sampleReport(t), "test")
	if len(p.Targets) != 2 {
		t.Fatalf("targets = %v", p.Targets)
	}
	hot := p.Classes["Hot"]
	data := p.Classes["DataOnly"]
	if hot.MinDummies <= data.MinDummies {
		t.Errorf("pointer-tainted class dummies %d <= data-only %d", hot.MinDummies, data.MinDummies)
	}
	if !hot.BoobyTraps {
		t.Error("pointer-tainted class lost traps")
	}
	if len(hot.TaintedFields) == 0 || hot.TaintedFields[0] != "cb" {
		t.Errorf("tainted fields = %v", hot.TaintedFields)
	}
	if hot.Why == "" || data.Why == "" {
		t.Error("missing evidence strings")
	}
}

func TestPolicyRoundTrip(t *testing.T) {
	p := FromTaintReport(sampleReport(t), "test")
	path := filepath.Join(t.TempDir(), "pol.json")
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Targets) != len(p.Targets) || back.Generator != "test" {
		t.Fatalf("round trip lost data: %+v", back)
	}
	for name, cp := range p.Classes {
		b := back.Classes[name]
		if b.MinDummies != cp.MinDummies || b.BoobyTraps != cp.BoobyTraps {
			t.Errorf("%s: %+v != %+v", name, b, cp)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []Policy{
		{Targets: []string{""}},
		{Targets: []string{"A", "A"}},
		{Targets: []string{"A"}, Classes: map[string]ClassPolicy{"B": {}}},
		{Targets: []string{"A"}, Classes: map[string]ClassPolicy{"A": {MinDummies: 3, MaxDummies: 1}}},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
	if _, err := Parse([]byte("{not json")); err == nil {
		t.Error("bad JSON accepted")
	}
}

func TestLayoutConfigConversion(t *testing.T) {
	cp := ClassPolicy{MinDummies: 2, MaxDummies: 4, BoobyTraps: false}
	cfg := cp.LayoutConfig()
	if cfg.MinDummies != 2 || cfg.MaxDummies != 4 || cfg.BoobyTraps {
		t.Fatalf("converted = %+v", cfg)
	}
}
