package core

import (
	"sync"

	"polar/internal/layout"
	"polar/internal/telemetry"
)

// ObjectMeta is the per-object record of Fig. 4: base address → class
// hash + layout pointer. Freed metadata lingers (as a "ghost") until the
// chunk is re-registered, which is what lets olr_getptr flag obvious
// use-after-free attempts.
type ObjectMeta struct {
	Base      uint64
	ClassHash uint64
	Layout    *layout.Layout
	Size      int
	Freed     bool

	// mac is the integrity seal (0 unless Config.MetadataIntegrity).
	mac uint64
}

// MetaStats counts metadata-table events.
type MetaStats struct {
	Registered    uint64
	Retired       uint64
	LayoutsUnique uint64
	LayoutsShared uint64 // registrations served by the dedup table
}

// MetaStore is the POLaR object-tracking table plus the layout
// deduplication table (§V.B: "remove the duplicate metadata when two
// objects have the same randomized memory layout").
//
// The zero value is not usable; call NewMetaStore. Safe for concurrent
// use.
type MetaStore struct {
	mu      sync.Mutex
	objects map[uint64]*ObjectMeta
	// dedup buckets layouts by (class hash ^ layout hash); collisions
	// within a bucket are resolved with Layout.Equal.
	dedup map[uint64][]*layout.Layout
	stats MetaStats

	// chainHist, when non-nil, observes the dedup-bucket chain length
	// walked by each Intern (set by the runtime when telemetry is on).
	chainHist *telemetry.Histogram
}

// NewMetaStore returns an empty store.
func NewMetaStore() *MetaStore {
	return &MetaStore{
		objects: make(map[uint64]*ObjectMeta),
		dedup:   make(map[uint64][]*layout.Layout),
	}
}

// Intern returns the canonical layout equal to l for the class,
// registering it if new. The returned layout must be used in place of l
// so identical layouts share one metadata record.
func (s *MetaStore) Intern(classHash uint64, l *layout.Layout) *layout.Layout {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := classHash ^ l.Hash()
	if s.chainHist != nil {
		s.chainHist.Observe(float64(len(s.dedup[key])))
	}
	for _, prev := range s.dedup[key] {
		if prev.Equal(l) {
			s.stats.LayoutsShared++
			return prev
		}
	}
	s.dedup[key] = append(s.dedup[key], l)
	s.stats.LayoutsUnique++
	return l
}

// Register installs metadata for a freshly allocated object, replacing
// any ghost record at the same base. It returns the new record plus the
// replaced one (nil if none), so callers can invalidate caches covering
// the old object's fields.
func (s *MetaStore) Register(base uint64, classHash uint64, l *layout.Layout, size int) (*ObjectMeta, *ObjectMeta) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.objects[base]
	m := &ObjectMeta{Base: base, ClassHash: classHash, Layout: l, Size: size}
	s.objects[base] = m
	s.stats.Registered++
	return m, old
}

// Lookup returns the metadata at base (live or ghost).
func (s *MetaStore) Lookup(base uint64) (*ObjectMeta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.objects[base]
	return m, ok
}

// MarkFreed flags the object as freed but keeps the ghost record.
func (s *MetaStore) MarkFreed(base uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.objects[base]; ok && !m.Freed {
		m.Freed = true
		s.stats.Retired++
	}
}

// Drop removes metadata entirely (used when ghosts should not linger,
// e.g. when the VM recycles a chunk for an untracked allocation).
func (s *MetaStore) Drop(base uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.objects, base)
}

// LiveCount returns the number of non-freed records (O(n); tests only).
func (s *MetaStore) LiveCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, m := range s.objects {
		if !m.Freed {
			n++
		}
	}
	return n
}

// Stats returns a snapshot of the counters.
func (s *MetaStore) Stats() MetaStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Counts returns the live (non-freed) and total record counts — the
// inputs to the metadata-table load-factor gauge (O(n); called at
// snapshot points, not on hot paths).
func (s *MetaStore) Counts() (live, total int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range s.objects {
		if !m.Freed {
			live++
		}
	}
	return live, len(s.objects)
}
