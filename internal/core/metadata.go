package core

import (
	"sync"
	"sync/atomic"

	"polar/internal/layout"
	"polar/internal/telemetry"
)

// ObjectMeta is the per-object record of Fig. 4: base address → class
// hash + layout pointer. Freed metadata lingers (as a "ghost") until the
// chunk is re-registered, which is what lets olr_getptr flag obvious
// use-after-free attempts.
type ObjectMeta struct {
	Base      uint64
	ClassHash uint64
	Layout    *layout.Layout
	Size      int
	Freed     bool

	// mac is the integrity seal (0 unless Config.MetadataIntegrity).
	mac uint64
}

// MetaStats counts metadata-table events.
type MetaStats struct {
	Registered    uint64
	Retired       uint64
	LayoutsUnique uint64
	LayoutsShared uint64 // registrations served by the dedup table
	// Shards breaks the object table down per shard so load imbalance
	// across the 16 shards is visible (the aggregate counters above
	// cannot show one hot shard serializing everything).
	Shards []MetaShardStats
}

// MetaShardStats is one shard's slice of the object table.
type MetaShardStats struct {
	Registered uint64
	Retired    uint64
	Live       uint64 // non-freed records currently held
	Total      uint64 // records currently held (live + ghosts)
}

// numMetaShards is the shard count of the object table (power of two so
// shard selection is a mask). 16 shards keep the per-shard maps small
// and let register/free/lookup from many instances proceed without
// funneling through one lock.
const numMetaShards = 16

// metaShard is one slice of the object table: its own lock, its own
// map, its own event counters (summed on Stats so the hot path never
// touches shared counters).
type metaShard struct {
	mu         sync.RWMutex
	objects    map[uint64]*ObjectMeta
	registered uint64
	retired    uint64
}

// LayoutInterner is the layout deduplication table (§V.B: "remove the
// duplicate metadata when two objects have the same randomized memory
// layout"). It is independent of any object table so multiple runtimes
// — e.g. many VM instances of one Program — can share one interner and
// pool their dedup hits, while keeping private object tables (instance
// address spaces collide, layouts don't).
//
// Safe for concurrent use.
type LayoutInterner struct {
	mu sync.Mutex
	// dedup buckets layouts by (class hash ^ layout hash); collisions
	// within a bucket are resolved with Layout.Equal.
	dedup  map[uint64][]*layout.Layout
	unique uint64
	shared uint64

	// chainHist, when non-nil, observes the dedup-bucket chain length
	// walked by each Intern. It is attached (once) via AttachChainHist
	// by the first telemetry-carrying runtime built over this interner;
	// atomic because concurrent instances sharing the interner attach
	// and observe without holding mu.
	chainHist atomic.Pointer[telemetry.Histogram]
}

// NewLayoutInterner returns an empty dedup table.
func NewLayoutInterner() *LayoutInterner {
	return &LayoutInterner{dedup: make(map[uint64][]*layout.Layout)}
}

// AttachChainHist wires the histogram that Intern observes dedup-chain
// lengths into. The first attachment wins and later calls are no-ops,
// so a shared interner reports into one registry for its whole lifetime
// instead of being re-pointed at whichever concurrent run's registry
// was wired last. Safe for concurrent use.
func (in *LayoutInterner) AttachChainHist(h *telemetry.Histogram) {
	in.chainHist.CompareAndSwap(nil, h)
}

// Intern returns the canonical layout equal to l for the class,
// registering it if new. The returned layout must be used in place of l
// so identical layouts share one metadata record.
func (in *LayoutInterner) Intern(classHash uint64, l *layout.Layout) *layout.Layout {
	in.mu.Lock()
	defer in.mu.Unlock()
	key := classHash ^ l.Hash()
	if h := in.chainHist.Load(); h != nil {
		h.Observe(float64(len(in.dedup[key])))
	}
	for _, prev := range in.dedup[key] {
		if prev.Equal(l) {
			in.shared++
			return prev
		}
	}
	in.dedup[key] = append(in.dedup[key], l)
	in.unique++
	return l
}

// MetaStore is the POLaR object-tracking table plus the layout
// deduplication table. The object table is sharded by base-address hash
// (RWMutex per shard) so concurrent instances don't serialize on one
// lock; the dedup table lives in a LayoutInterner that may be shared
// across stores.
//
// The zero value is not usable; call NewMetaStore. Safe for concurrent
// use.
type MetaStore struct {
	shards   [numMetaShards]metaShard
	interner *LayoutInterner
}

// NewMetaStore returns an empty store with a private interner.
func NewMetaStore() *MetaStore { return NewSharedMetaStore(nil) }

// NewSharedMetaStore returns an empty store deduplicating layouts
// through in (a private interner is created when in is nil). Sharing
// one interner across stores pools their dedup tables; the object
// shards stay private.
func NewSharedMetaStore(in *LayoutInterner) *MetaStore {
	if in == nil {
		in = NewLayoutInterner()
	}
	s := &MetaStore{interner: in}
	for i := range s.shards {
		s.shards[i].objects = make(map[uint64]*ObjectMeta)
	}
	return s
}

// Interner exposes the layout-dedup table (for sharing across stores).
func (s *MetaStore) Interner() *LayoutInterner { return s.interner }

// shard picks the shard owning base. The multiply spreads the (heavily
// aligned) base addresses; the xor folds the high-entropy bits down
// into the mask.
func (s *MetaStore) shard(base uint64) *metaShard {
	h := base * 0x9e3779b97f4a7c15
	h ^= h >> 32
	return &s.shards[h&(numMetaShards-1)]
}

// Intern forwards to the store's layout interner.
func (s *MetaStore) Intern(classHash uint64, l *layout.Layout) *layout.Layout {
	return s.interner.Intern(classHash, l)
}

// Register installs metadata for a freshly allocated object, replacing
// any ghost record at the same base. It returns the new record plus the
// replaced one (nil if none), so callers can invalidate caches covering
// the old object's fields.
func (s *MetaStore) Register(base uint64, classHash uint64, l *layout.Layout, size int) (*ObjectMeta, *ObjectMeta) {
	sh := s.shard(base)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old := sh.objects[base]
	m := &ObjectMeta{Base: base, ClassHash: classHash, Layout: l, Size: size}
	sh.objects[base] = m
	sh.registered++
	return m, old
}

// Lookup returns the metadata at base (live or ghost).
func (s *MetaStore) Lookup(base uint64) (*ObjectMeta, bool) {
	sh := s.shard(base)
	sh.mu.RLock()
	m, ok := sh.objects[base]
	sh.mu.RUnlock()
	return m, ok
}

// MarkFreed flags the object as freed but keeps the ghost record.
func (s *MetaStore) MarkFreed(base uint64) {
	sh := s.shard(base)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if m, ok := sh.objects[base]; ok && !m.Freed {
		m.Freed = true
		sh.retired++
	}
}

// Drop removes metadata entirely (used when ghosts should not linger,
// e.g. when the VM recycles a chunk for an untracked allocation).
func (s *MetaStore) Drop(base uint64) {
	sh := s.shard(base)
	sh.mu.Lock()
	delete(sh.objects, base)
	sh.mu.Unlock()
}

// LiveCount returns the number of non-freed records (O(n); tests only).
func (s *MetaStore) LiveCount() int {
	live, _ := s.Counts()
	return live
}

// Stats returns a snapshot of the counters, merged across shards, plus
// the per-shard breakdown.
func (s *MetaStore) Stats() MetaStats {
	st := MetaStats{Shards: make([]MetaShardStats, numMetaShards)}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		ss := MetaShardStats{
			Registered: sh.registered,
			Retired:    sh.retired,
			Total:      uint64(len(sh.objects)),
		}
		for _, m := range sh.objects {
			if !m.Freed {
				ss.Live++
			}
		}
		sh.mu.RUnlock()
		st.Shards[i] = ss
		st.Registered += ss.Registered
		st.Retired += ss.Retired
	}
	s.interner.mu.Lock()
	st.LayoutsUnique = s.interner.unique
	st.LayoutsShared = s.interner.shared
	s.interner.mu.Unlock()
	return st
}

// Counts returns the live (non-freed) and total record counts — the
// inputs to the metadata-table load-factor gauge (O(n); called at
// snapshot points, not on hot paths).
func (s *MetaStore) Counts() (live, total int) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, m := range sh.objects {
			if !m.Freed {
				live++
			}
		}
		total += len(sh.objects)
		sh.mu.RUnlock()
	}
	return live, total
}
