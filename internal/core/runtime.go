package core

import (
	"fmt"
	"math/rand"

	"polar/internal/classinfo"
	"polar/internal/layout"
	"polar/internal/telemetry"
	"polar/internal/telemetry/exectrace"
	"polar/internal/telemetry/flight"
	"polar/internal/telemetry/profile"
	"polar/internal/vm"
)

// Config controls the POLaR runtime.
type Config struct {
	// Layout is the randomization configuration (mode, dummies, traps).
	Layout layout.Config
	// Seed drives per-allocation randomness. Each program execution in
	// the paper's threat model uses an unpredictable seed; experiments
	// pin it for reproducibility.
	Seed int64
	// Policy selects abort-on-violation vs count-and-continue.
	Policy Policy
	// CacheSize is the offset-lookup cache capacity in entries
	// (rounded up to a power of two); 0 disables the cache. Default 8192.
	CacheSize int
	// LayoutMode selects the layout-resolution strategy (resolver.go):
	// LayoutModeMetadata (zero value) is the paper's MetaStore-backed
	// path; LayoutModeStateless recomputes each object's permutation
	// from a keyed hash of its base address — no metadata probe, no
	// per-object record.
	LayoutMode LayoutMode
	// RekeyEvery, in stateless mode, advances the derivation epoch after
	// that many instrumented frees, re-randomizing every live managed
	// object in place. 0 disables rekeying. Ignored in metadata mode
	// (per-allocation layouts are already independent).
	RekeyEvery int
	// RerandomizeOnCopy controls whether olr_memcpy gives the duplicate
	// copy a fresh layout (the paper's default) or clones the source
	// layout ("could be disabled ... for performance-purposes", §IV.A.2).
	// Stateless mode re-randomizes copies inherently (the destination's
	// layout is derived from its own address), so the knob is inert there.
	RerandomizeOnCopy bool
	// DetectUAF enables ghost-metadata use-after-free detection.
	// Metadata mode only: stateless keeps no ghost records, so a
	// dangling access degrades to the static-fallback arm (DESIGN.md
	// §12 has the full per-mode detection matrix).
	DetectUAF bool
	// MetadataIntegrity seals every metadata record with a keyed MAC
	// verified on lookup — the §VI.A hardening (see integrity.go).
	// Metadata mode only: stateless has no records to seal (the keyed
	// derivation plays the equivalent role — forging a layout requires
	// the key).
	MetadataIntegrity bool
	// Interner, when non-nil, is a shared layout-dedup table: runtimes
	// given the same interner pool their canonical layouts, so many
	// instances of one program pay the layout-generation cost once per
	// distinct layout instead of once per instance. Object tables stay
	// private (instance address spaces collide; layouts don't). Nil
	// means a private interner.
	Interner *LayoutInterner
	// PerClass overrides the layout configuration for individual
	// classes (keyed by class hash). This is §IV.B.1's feedback loop:
	// TaintClass reports which members are input-tainted, and POLaR
	// tunes dummy insertion and booby traps per class accordingly.
	PerClass map[uint64]layout.Config
	// Telemetry, when non-nil, attaches the observability layer: olr_*
	// events go to its bus, and the runtime's histograms (offset-cache
	// probe length, layout entropy, intern-chain length) feed its
	// registry. Counters stay native — the member-access path is too hot
	// for atomics — and are snapshotted into the registry by Stats().
	// Note: sharing one Telemetry across runtimes aggregates their
	// metrics; use a fresh Telemetry per runtime for isolation. A
	// *shared* Interner keeps the first attached registry's chain-length
	// histogram for its lifetime, so with per-run registries those
	// observations are credited to the first run (totals survive any
	// Merge of the registries).
	Telemetry *telemetry.Telemetry
	// Flight, when non-nil, is the security flight recorder: the runtime
	// attaches it to the telemetry bus (requires Telemetry) and, on every
	// detected violation, snapshots its event ring into a forensic dump
	// annotated with the victim's heap neighborhood. Off by default; the
	// violation-free cost is one nil check on the (already rare)
	// violation path.
	Flight *flight.Recorder
	// Profiler, when non-nil, attributes member resolutions and
	// metadata-table probes to their instruction sites — the SPAM-style
	// per-access-path attribution the aggregate cache counters cannot
	// give. Share it with the VM (vm.WithProfiler) so sites carry both
	// interpreted cycles and probe counts.
	Profiler *profile.SiteProfiler
	// ExecTrace, when non-nil, is the deterministic execution-trace
	// writer: the runtime records every olr_malloc/olr_free and every
	// olr_getptr resolution (with the chosen offset and resolution
	// path) directly — richer than the bus events, which the writer
	// skips for these kinds to avoid double-counting. Share the writer
	// with the VM (vm.WithExecTrace) so block/call records interleave
	// with the olr_* records in program order.
	ExecTrace *exectrace.Writer
}

// DefaultConfig mirrors the paper's evaluation configuration.
func DefaultConfig(seed int64) Config {
	return Config{
		Layout:            layout.DefaultConfig(),
		Seed:              seed,
		Policy:            PolicyAbort,
		CacheSize:         8192,
		RerandomizeOnCopy: true,
		DetectUAF:         true,
	}
}

// Stats are the runtime counters behind Table III.
type Stats struct {
	Allocs       uint64
	Frees        uint64
	Memcpys      uint64
	MemberAccess uint64
	CacheHits    uint64
	CacheMisses  uint64
	// MetaProbes counts metadata-table lookups made by the member-access
	// path (olr_getptr cache misses in metadata mode; identically zero
	// in stateless mode — the ablation's "no cache needed" row).
	MetaProbes uint64
	// PeakLive is the high-water mark of resolver-managed live objects,
	// the denominator of the metadata-bytes-per-live-object column.
	PeakLive   uint64
	Violations map[ViolationKind]uint64
	// ViolationsDropped counts detections that arrived after the
	// structured record log filled (the counters above still include
	// them; only the per-record detail is lost).
	ViolationsDropped uint64
	Meta              MetaStats
}

// maxViolationRecords caps the structured violation log so a
// warn-policy run under attack cannot grow memory without bound.
const maxViolationRecords = 1024

// Runtime is the POLaR object-tracking runtime attached to one VM.
// It is not safe for concurrent use (the VM is single-threaded).
type Runtime struct {
	cfg   Config
	table *classinfo.Table
	// store/cache back the metadata strategy. They are always
	// constructed (diagnostics, forensics and tests read them) but the
	// stateless resolver never populates them.
	store  *MetaStore
	cache  *offsetCache
	rng    *rand.Rand
	secret uint64

	// resolver is the pluggable layout-resolution strategy: every olr_*
	// entry point delegates its strategy-specific ladder here.
	resolver LayoutResolver

	// layoutGen is the layout generation the engines' per-site inline
	// caches validate against (vm.InstallLayoutCache). Any event that can
	// change what (base, class, field) resolves to — a free (the base may
	// be recycled under another class), a re-registration, a stateless
	// epoch advance — increments it, invalidating every cached entry at
	// once. Starts at 1 so a zeroed (never-written) cache entry can never
	// match.
	layoutGen uint64

	allocs     uint64
	frees      uint64
	memcpys    uint64
	accesses   uint64
	metaProbes uint64
	// liveObjs/peakLive track the resolver-managed object population
	// (the bytes-per-live-object denominator).
	liveObjs   uint64
	peakLive   uint64
	violations map[ViolationKind]uint64

	// Structured violation log (capped; see maxViolationRecords).
	records        []ViolationRecord
	droppedRecords uint64
	// curCall is the olr_* builtin call currently being dispatched; it
	// carries the instruction site for violation records. Set by the
	// Attach wrappers, read only on the (rare) violation path.
	curCall *vm.Call
	// curField is the member index the dispatched call names (-1 when
	// the operation carries none); stamped into violation records so the
	// offset-probe-scan detector can distinguish probes at different
	// member offsets.
	curField int

	// Observability layer (all nil/zero when Config.Telemetry is unset;
	// the emission points then cost one branch each).
	tel         *telemetry.Telemetry
	histProbe   *telemetry.Histogram // olr_getptr probe length (1=cache hit)
	histEntropy *telemetry.Histogram // entropy bits of each generated layout

	// Execution-trace writer (nil when Config.ExecTrace is unset; the
	// emission points then cost one branch each).
	xt *exectrace.Writer

	// Hot-site profiler (nil when Config.Profiler is unset). profSites
	// caches the per-site counter cells keyed by the interned site
	// string, so attribution is one map hit per access.
	prof      *profile.SiteProfiler
	profSites map[string]*profile.SiteCounts
	// profGens caches the per-class layout-generation counter cells
	// (keyed by class hash), mirroring profSites.
	profGens map[uint64]*profile.GenCounts
}

// New creates a runtime for the classes in table.
func New(table *classinfo.Table, cfg Config) *Runtime {
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 8192
	}
	if cfg.CacheSize < 0 {
		cfg.CacheSize = 0 // explicit disable for ablation
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	r := &Runtime{
		cfg:        cfg,
		table:      table,
		store:      NewSharedMetaStore(cfg.Interner),
		cache:      newOffsetCache(cfg.CacheSize),
		rng:        rng,
		secret:     rng.Uint64() | 1,
		violations: make(map[ViolationKind]uint64),
		curField:   -1,
		layoutGen:  1,
	}
	// The stateless key halves are drawn after the canary secret, so the
	// metadata strategy's layout-generation stream is byte-identical to
	// what it was before the strategy layer existed.
	switch cfg.LayoutMode {
	case LayoutModeStateless:
		r.resolver = newStatelessResolver(r)
	default:
		r.resolver = &metaResolver{rt: r}
	}
	if t := cfg.Telemetry; t != nil {
		r.tel = t
		r.histProbe = t.Registry.Histogram(telemetry.MetricCacheProbeLen, telemetry.ProbeLenBuckets)
		r.histEntropy = t.Registry.Histogram(telemetry.MetricLayoutEntropy, telemetry.EntropyBuckets)
		// Attach-once: a shared interner (Prepared, evalrun) keeps the
		// first run's histogram for its lifetime; observations from all
		// runs land in that one registry (merged snapshots stay correct)
		// instead of racing to re-point the shared field per run.
		r.store.interner.AttachChainHist(t.Registry.Histogram(telemetry.MetricInternChainLen, telemetry.ChainLenBuckets))
		// The flight recorder needs the bus for its event window; attach
		// is idempotent so a recorder surviving across runs of one
		// Prepared program subscribes once.
		if cfg.Flight != nil {
			cfg.Flight.AttachOnce(t.Bus)
		}
		// The exectrace writer rides the bus for layout-gen, rerand,
		// violation and fuel-checkpoint events (its direct records below
		// cover the hot olr_* operations). Idempotent, like Flight.
		if cfg.ExecTrace != nil {
			cfg.ExecTrace.AttachOnce(t.Bus)
		}
	}
	if cfg.ExecTrace != nil {
		r.xt = cfg.ExecTrace
	}
	if cfg.Profiler != nil {
		r.prof = cfg.Profiler
		r.profSites = make(map[string]*profile.SiteCounts)
		r.profGens = make(map[uint64]*profile.GenCounts)
	}
	return r
}

// profSite returns the profiler cell for the current olr_* call site.
func (r *Runtime) profSite() *profile.SiteCounts {
	site := r.curCall.Site()
	sc, ok := r.profSites[site]
	if !ok {
		sc = r.prof.Site(site)
		r.profSites[site] = sc
	}
	return sc
}

// Telemetry returns the attached observability layer (nil if none).
func (r *Runtime) Telemetry() *telemetry.Telemetry { return r.cfg.Telemetry }

// Stats returns a snapshot of the counters. When telemetry is attached
// the snapshot is also published into the registry (counters under
// "core.", plus the metadata-table load-factor gauge), so a registry
// snapshot taken after Stats() reflects the runtime's full state.
func (r *Runtime) Stats() Stats {
	s := Stats{
		Allocs:            r.allocs,
		Frees:             r.frees,
		Memcpys:           r.memcpys,
		MemberAccess:      r.accesses,
		CacheHits:         r.cache.hits,
		CacheMisses:       r.cache.misses,
		MetaProbes:        r.metaProbes,
		PeakLive:          r.peakLive,
		Violations:        make(map[ViolationKind]uint64, len(r.violations)),
		ViolationsDropped: r.droppedRecords,
		Meta:              r.store.Stats(),
	}
	for k, v := range r.violations {
		s.Violations[k] = v
	}
	if r.tel != nil {
		s.Publish(r.tel.Registry)
		live, total := r.store.Counts()
		lf := 0.0
		if total > 0 {
			lf = float64(live) / float64(total)
		}
		r.tel.Registry.Gauge(telemetry.MetricMetaLoadFactor).Set(lf)
	}
	return s
}

// ViolationCount sums detections of the given kind.
func (r *Runtime) ViolationCount(kind ViolationKind) uint64 { return r.violations[kind] }

// ViolationRecords returns a copy of the structured violation log, in
// detection order (capped at maxViolationRecords; DroppedViolations
// reports overflow).
func (r *Runtime) ViolationRecords() []ViolationRecord {
	out := make([]ViolationRecord, len(r.records))
	copy(out, r.records)
	return out
}

// DroppedViolations returns how many violation records were discarded
// after the log filled.
func (r *Runtime) DroppedViolations() uint64 { return r.droppedRecords }

// ViolationLog returns the structured violation log together with its
// truncation state, so consumers cannot mistake a capped log for the
// complete detection history.
func (r *Runtime) ViolationLog() RecordSet {
	return RecordSet{
		Records:   r.ViolationRecords(),
		Truncated: r.droppedRecords > 0,
		Dropped:   r.droppedRecords,
	}
}

// Store exposes the metadata table (tests, diagnostics). In stateless
// mode it exists but stays empty.
func (r *Runtime) Store() *MetaStore { return r.store }

// Resolver exposes the active layout-resolution strategy.
func (r *Runtime) Resolver() LayoutResolver { return r.resolver }

// Rerandomize forces a global re-randomization pass (stateless epoch
// advance + live-object remap); reports false when the active strategy
// has no global rekey.
func (r *Runtime) Rerandomize(v *vm.VM) (bool, error) { return r.resolver.Rerandomize(v) }

// MetadataBytesPerLiveObject amortizes the strategy's per-object
// metadata footprint over the peak live population — the ablation's
// memory column. Identically zero in stateless mode.
func (r *Runtime) MetadataBytesPerLiveObject() float64 {
	if r.peakLive == 0 {
		return 0
	}
	return float64(r.resolver.MetadataBytes()) / float64(r.peakLive)
}

// noteLiveObject records one more resolver-managed live object.
func (r *Runtime) noteLiveObject() {
	r.liveObjs++
	if r.liveObjs > r.peakLive {
		r.peakLive = r.liveObjs
	}
}

// LookupObject returns the metadata for an object base, if tracked.
func (r *Runtime) LookupObject(base uint64) (*ObjectMeta, bool) { return r.store.Lookup(base) }

// violate records a detection. classHash 0 means the class is unknown
// (e.g. invalid free); meta, when non-nil, supplies the layout identity.
// Every detection — under both policies — appends a structured record
// and emits an EvViolation event; PolicyAbort additionally returns the
// *Violation error.
func (r *Runtime) violate(kind ViolationKind, addr uint64, classHash uint64, meta *ObjectMeta) error {
	var layoutID uint64
	if meta != nil && meta.Layout != nil {
		layoutID = meta.Layout.Hash()
	}
	return r.violateWith(kind, addr, classHash, layoutID, meta)
}

// violateWith is the metadata-free entry: stateless-mode detections
// carry a derived layout identity but no ObjectMeta (forensic dumps
// then locate the victim through the allocator instead of the record).
func (r *Runtime) violateWith(kind ViolationKind, addr, classHash, layoutID uint64, meta *ObjectMeta) error {
	r.violations[kind]++
	class := "?"
	if classHash != 0 {
		class = r.className(classHash)
	}
	site := r.curCall.Site()
	field := r.curField
	if len(r.records) < maxViolationRecords {
		r.records = append(r.records, ViolationRecord{
			Kind: kind, KindName: kind.String(), Addr: addr, Class: class,
			ClassHash: classHash, LayoutID: layoutID, Field: field, Site: site,
		})
	} else {
		r.droppedRecords++
	}
	if r.tel != nil {
		r.tel.Emit(telemetry.Event{
			Kind: telemetry.EvViolation, Addr: addr, Class: classHash,
			Layout: layoutID, Field: field, Site: site, Detail: kind.String(),
		})
	}
	if r.cfg.Flight != nil {
		// After the EvViolation emit, so the dump's event window includes
		// the violation itself.
		r.captureForensics(kind, addr, class, classHash, layoutID, field, site, meta)
	}
	if r.cfg.Policy == PolicyAbort {
		return &Violation{
			Kind: kind, Addr: addr, Class: class,
			ClassHash: classHash, LayoutID: layoutID, Field: field, Site: site,
		}
	}
	return nil
}

// canary derives the booby-trap value for a trap slot of the object at
// base. It depends on a per-run secret, so an attacker who can spray
// bytes cannot forge it without an information leak.
func (r *Runtime) canary(base uint64, slotOff int) uint64 {
	x := base ^ r.secret ^ (uint64(slotOff) * 0x9e3779b97f4a7c15)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// Attach registers the olr_* ABI on the VM. The class table used is the
// one embedded in the module if present (hardened binary), else the
// table given at construction. Each wrapper stashes the call so the
// violation path can stamp records with the instruction site.
func (r *Runtime) Attach(v *vm.VM) {
	v.RegisterBuiltin("olr_malloc", func(c *vm.Call) (int64, error) {
		r.curCall, r.curField = c, -1
		return r.olrMalloc(c.VM, uint64(c.Arg(0)))
	})
	v.RegisterBuiltin("olr_free", func(c *vm.Call) (int64, error) {
		r.curCall, r.curField = c, -1
		return 0, r.olrFree(c.VM, uint64(c.Arg(0)))
	})
	v.RegisterBuiltin("olr_getptr", func(c *vm.Call) (int64, error) {
		r.curCall, r.curField = c, int(c.Arg(1))
		return r.olrGetptr(c.VM, uint64(c.Arg(0)), int(c.Arg(1)), uint64(c.Arg(2)))
	})
	v.RegisterBuiltin("olr_memcpy", func(c *vm.Call) (int64, error) {
		r.curCall, r.curField = c, -1
		return 0, r.olrMemcpy(c.VM, uint64(c.Arg(0)), uint64(c.Arg(1)), int(c.Arg(2)), uint64(c.Arg(3)))
	})
	v.RegisterBuiltin("olr_check", func(c *vm.Call) (int64, error) {
		r.curCall, r.curField = c, -1
		return r.olrCheck(c.VM, uint64(c.Arg(0)))
	})
	// Hand the engines the inline layout-cache protocol: the generation
	// counter their cached entries validate against, and the hit callback
	// that replays this runtime's fast-path observables when a site skips
	// the resolver entirely.
	v.InstallLayoutCache(&r.layoutGen, r.icFieldHit)
}

// profSiteFor is profSite for a caller that carries the site string
// itself (the inline-cache hit callback runs without curCall set — the
// builtin dispatch was skipped).
func (r *Runtime) profSiteFor(site string) *profile.SiteCounts {
	sc, ok := r.profSites[site]
	if !ok {
		sc = r.prof.Site(site)
		r.profSites[site] = sc
	}
	return sc
}

// icFieldHit is the engines' inline-cache hit callback: a monomorphic
// olr_getptr site revalidated its memoized offset against the current
// layout generation and skipped the resolver. The runtime's observable
// stream must be indistinguishable from the strategy's own fast path —
// cross-engine trace identity depends on both engines calling this at
// the same points — so it replays exactly what that arm would have
// done: the metadata strategy's offset-cache hit (probe length 1,
// cache.hits) or the stateless memo hit (probe length 0, no cache
// counters — the stateless ablation row asserts they stay zero).
func (r *Runtime) icFieldHit(site string, base uint64, field int64, class uint64, off int64) {
	r.accesses++
	if r.prof != nil {
		r.profSiteFor(site).IncGetptr()
	}
	stateless := r.resolver.Mode() == LayoutModeStateless
	if !stateless {
		r.cache.hits++
	}
	if r.tel != nil {
		if stateless {
			r.histProbe.Observe(0)
		} else {
			r.histProbe.Observe(1)
		}
		r.tel.Emit(telemetry.Event{Kind: telemetry.EvFieldHit, Addr: base, Class: class, Field: int(field)})
	}
	if r.xt != nil {
		res := exectrace.ResCacheHit
		if stateless {
			res = exectrace.ResStateless
		}
		r.xt.Getptr(r.xt.Intern(site), class, int(field), base, int(off), res)
	}
}

// olrMalloc implements the instrumented allocation site: the resolver
// allocates and installs its per-object state (layout record or
// nothing), then the strategy-independent tail arms canaries, tracks
// the object type, and emits the alloc events.
func (r *Runtime) olrMalloc(v *vm.VM, classHash uint64) (int64, error) {
	cls, ok := r.table.ByHash(classHash)
	if !ok {
		if err := r.violate(ViolationBadClass, 0, classHash, nil); err != nil {
			return 0, err
		}
		return 0, nil
	}
	base, l, err := r.resolver.Alloc(v, cls)
	if err != nil {
		return 0, err
	}
	r.allocs++
	r.noteLiveObject()
	v.TrackObject(base, cls.Struct)
	if err := r.armTraps(v, base, l); err != nil {
		return 0, err
	}
	if r.tel != nil {
		r.tel.Emit(telemetry.Event{
			Kind: telemetry.EvAlloc, Addr: base, Size: l.TotalSize,
			Class: classHash, Layout: l.Hash(), Detail: cls.Name(),
		})
	}
	if r.xt != nil {
		r.xt.Alloc(r.xt.Intern(r.curCall.Site()), classHash, base, l.TotalSize, l.Hash(), r.xt.Intern(cls.Name()))
	}
	return int64(base), nil
}

// layoutConfigFor resolves the layout configuration for one class,
// honoring the per-class override map (§IV.B.1's feedback loop) in
// every strategy — norandom/pinned classes stay pinned in stateless
// mode too.
func (r *Runtime) layoutConfigFor(cls *classinfo.Class) layout.Config {
	cfg := r.cfg.Layout
	if over, ok := r.cfg.PerClass[cls.Hash]; ok {
		cfg = over
	}
	return cfg
}

func (r *Runtime) generateLayout(cls *classinfo.Class) (*layout.Layout, error) {
	return r.generateLayoutWith(cls, r.layoutConfigFor(cls))
}

// armTraps writes fresh canaries into every trap slot.
func (r *Runtime) armTraps(v *vm.VM, base uint64, l *layout.Layout) error {
	for _, s := range l.Slots {
		if !s.Trap {
			continue
		}
		if err := v.Mem.WriteU(base+uint64(s.Offset), 8, r.canary(base, s.Offset)); err != nil {
			return err
		}
	}
	return nil
}

// checkTraps verifies every canary; returns the first corrupted slot
// offset, or -1.
func (r *Runtime) checkTraps(v *vm.VM, base uint64, l *layout.Layout) (int, error) {
	for _, s := range l.Slots {
		if !s.Trap {
			continue
		}
		got, err := v.Mem.ReadU(base+uint64(s.Offset), 8)
		if err != nil {
			return -1, err
		}
		if got != r.canary(base, s.Offset) {
			return s.Offset, nil
		}
	}
	return -1, nil
}

// olrFree implements the instrumented deallocation site. The resolver
// validates the free (bad-free/double-free/UAF classification and the
// booby-trap sweep are strategy-specific), the strategy-independent
// tail emits the free events, then the per-object state is retired and
// the chunk released. AfterFree runs last — the stateless epoch-rekey
// schedule must only ever remap objects that survived this free.
func (r *Runtime) olrFree(v *vm.VM, base uint64) error {
	l, classHash, proceed, err := r.resolver.BeginFree(v, base)
	if err != nil || !proceed {
		return err
	}
	r.frees++
	if l != nil {
		if r.liveObjs > 0 {
			r.liveObjs--
		}
		if r.tel != nil {
			r.tel.Emit(telemetry.Event{Kind: telemetry.EvFree, Addr: base, Class: classHash, Layout: l.Hash()})
		}
		if r.xt != nil {
			r.xt.Free(r.xt.Intern(r.curCall.Site()), classHash, base, l.Hash())
		}
	}
	if err := r.resolver.FinishFree(v, base); err != nil {
		return err
	}
	v.UntrackObject(base)
	if err := v.Heap.Free(base); err != nil {
		return err
	}
	// The freed base may be recycled under another class/layout;
	// invalidate every inline-cache entry. (Plain frees bump the counter
	// at the engines' free opcode instead — olr_free never reaches it.)
	r.layoutGen++
	return r.resolver.AfterFree(v)
}

// olrGetptr implements the instrumented member access (Fig. 4's
// olr_getptr(A, 2)): the resolver maps (base, classHash, field) to the
// randomized offset, and emitGetptr — the single trace exit for every
// resolution path — records it. Probe lengths observed inside the
// resolvers use the one canonical bucket vocabulary documented at
// telemetry.ProbeLenBuckets.
func (r *Runtime) olrGetptr(v *vm.VM, base uint64, field int, classHash uint64) (int64, error) {
	r.accesses++
	if r.prof != nil {
		r.profSite().IncGetptr()
	}
	off, res, err := r.resolver.Resolve(v, base, field, classHash)
	if err != nil {
		// Error exits (abort-policy violations, seal failures,
		// out-of-range faults) record nothing: the run dies there, and
		// the bus-level violation record already marks the spot.
		return 0, err
	}
	r.emitGetptr(classHash, field, base, off, res)
	return int64(base + uint64(off)), nil
}

// emitGetptr records one completed olr_getptr resolution on the
// execution trace. Every resolver exit funnels through here, so a new
// strategy cannot miss (or double-emit) a trace record.
func (r *Runtime) emitGetptr(classHash uint64, field int, base uint64, off int, res exectrace.Resolution) {
	if r.xt != nil {
		r.xt.Getptr(r.xt.Intern(r.curCall.Site()), classHash, field, base, off, res)
	}
}

// olrMemcpy implements the instrumented object copy (§IV.A.2); the
// member-wise remap between source and destination layouts is
// strategy-specific.
func (r *Runtime) olrMemcpy(v *vm.VM, dst, src uint64, n int, classHash uint64) error {
	r.memcpys++
	return r.resolver.Memcpy(v, dst, src, n, classHash)
}

// layoutFitting picks the layout for a duplicate copy, no larger than
// limit. Under RerandomizeOnCopy it generates a fresh layout, degrading
// the configuration (fewer dummies, no traps, identity) until it fits;
// otherwise it clones the source layout (the cheaper mode of §IV.A.2).
// Returns nil if even the identity layout exceeds limit.
func (r *Runtime) layoutFitting(cls *classinfo.Class, srcLayout *layout.Layout, limit int) (*layout.Layout, error) {
	if !r.cfg.RerandomizeOnCopy {
		if srcLayout.TotalSize <= limit {
			return srcLayout, nil
		}
	} else {
		base := r.cfg.Layout
		if over, ok := r.cfg.PerClass[cls.Hash]; ok {
			base = over
		}
		noDummies := base
		noDummies.MinDummies, noDummies.MaxDummies = 0, 0
		noTraps := noDummies
		noTraps.BoobyTraps = false
		for _, cfg := range []layout.Config{base, noDummies, noTraps} {
			l, err := r.generateLayoutWith(cls, cfg)
			if err != nil {
				return nil, err
			}
			if l.TotalSize <= limit {
				return l, nil
			}
		}
	}
	l, err := r.generateLayoutWith(cls, layout.Config{Mode: layout.ModeIdentity})
	if err != nil {
		return nil, err
	}
	if l.TotalSize <= limit {
		return l, nil
	}
	return nil, nil
}

// fieldsOf converts a class's members into layout generation inputs,
// also counting function pointers (the entropy report needs them).
func fieldsOf(cls *classinfo.Class) ([]layout.FieldInfo, int) {
	fields := make([]layout.FieldInfo, len(cls.Members))
	nFptrs := 0
	for i, m := range cls.Members {
		fields[i] = layout.FieldInfo{Size: m.Size, Align: m.Align, IsFptr: m.Kind == classinfo.KindFuncPointer}
		if fields[i].IsFptr {
			nFptrs++
		}
	}
	return fields, nFptrs
}

// noteLayoutGen attributes one layout generation to its class: the
// hot-site profiler's per-class counter, the entropy histogram, and the
// EvLayoutGen event. Both strategies funnel through here (the stateless
// resolver also re-derives on memo misses, each a generation).
func (r *Runtime) noteLayoutGen(cls *classinfo.Class, cfg layout.Config, nFptrs int, l *layout.Layout) {
	if r.prof != nil {
		gc, ok := r.profGens[cls.Hash]
		if !ok {
			gc = r.prof.ClassGen(cls.Name())
			r.profGens[cls.Hash] = gc
		}
		gc.Inc()
	}
	if r.tel != nil {
		r.histEntropy.Observe(layout.EntropyBits(len(cls.Members), nFptrs, cfg))
		r.tel.Emit(telemetry.Event{
			Kind: telemetry.EvLayoutGen, Class: cls.Hash, Layout: l.Hash(),
			Size: l.TotalSize, Detail: cls.Name(),
		})
	}
}

func (r *Runtime) generateLayoutWith(cls *classinfo.Class, cfg layout.Config) (*layout.Layout, error) {
	fields, nFptrs := fieldsOf(cls)
	l, err := layout.Generate(fields, cfg, r.rng)
	if err != nil {
		return nil, err
	}
	r.noteLayoutGen(cls, cfg, nFptrs, l)
	return l, nil
}

func (r *Runtime) copyMemberwise(v *vm.VM, dst uint64, dl *layout.Layout, src uint64, sl *layout.Layout, cls *classinfo.Class) error {
	for i, m := range cls.Members {
		so, err := sl.FieldOffset(i)
		if err != nil {
			return err
		}
		do, err := dl.FieldOffset(i)
		if err != nil {
			return err
		}
		if err := v.Mem.Copy(dst+uint64(do), src+uint64(so), m.Size); err != nil {
			return err
		}
	}
	return nil
}

// copyRandomToStatic writes a randomized source image out to the
// compiler's static layout (untracked destination).
func (r *Runtime) copyRandomToStatic(v *vm.VM, dst, src uint64, sl *layout.Layout, cls *classinfo.Class) error {
	for i, m := range cls.Members {
		so, err := sl.FieldOffset(i)
		if err != nil {
			return err
		}
		if err := v.Mem.Copy(dst+uint64(m.StaticOffset), src+uint64(so), m.Size); err != nil {
			return err
		}
	}
	return nil
}

// copyStaticToRandom writes a static-layout source image into a managed
// destination's randomized layout.
func (r *Runtime) copyStaticToRandom(v *vm.VM, dst uint64, dl *layout.Layout, cls *classinfo.Class, src uint64) error {
	for i, m := range cls.Members {
		do, err := dl.FieldOffset(i)
		if err != nil {
			return err
		}
		if err := v.Mem.Copy(dst+uint64(do), src+uint64(m.StaticOffset), m.Size); err != nil {
			return err
		}
	}
	return nil
}

// olrCheck lets a program (or exploit experiment) force a booby-trap
// sweep of one object; returns 1 if intact, 0 if a trap fired (under
// PolicyWarn) and an error under PolicyAbort.
func (r *Runtime) olrCheck(v *vm.VM, base uint64) (int64, error) {
	return r.resolver.Check(v, base)
}

func (r *Runtime) className(hash uint64) string {
	if cls, ok := r.table.ByHash(hash); ok {
		return cls.Name()
	}
	return fmt.Sprintf("hash %#x", hash)
}
