package core

import (
	"fmt"

	"polar/internal/classinfo"
	"polar/internal/layout"
	"polar/internal/telemetry"
	"polar/internal/telemetry/exectrace"
	"polar/internal/vm"
)

// LayoutMode selects the layout-resolution strategy a runtime uses.
type LayoutMode int

const (
	// LayoutModeMetadata is the paper's design (§V.B): every allocation
	// registers a per-object layout record in the MetaStore, and
	// olr_getptr resolves through the offset cache and that table. This
	// is the zero value, so existing configurations are unchanged.
	LayoutModeMetadata LayoutMode = iota
	// LayoutModeStateless is the SPAM-style strategy (arXiv 2007.13808):
	// an object's permutation is recomputed at access time from a keyed
	// hash of its base address under the current re-randomization epoch
	// — no metadata probe, no per-object record.
	LayoutModeStateless
)

// String implements fmt.Stringer.
func (m LayoutMode) String() string {
	switch m {
	case LayoutModeMetadata:
		return "metadata"
	case LayoutModeStateless:
		return "stateless"
	default:
		return fmt.Sprintf("layout-mode(%d)", int(m))
	}
}

// ParseLayoutMode maps the CLI spelling to a LayoutMode.
func ParseLayoutMode(s string) (LayoutMode, error) {
	switch s {
	case "", "metadata", "table":
		return LayoutModeMetadata, nil
	case "stateless":
		return LayoutModeStateless, nil
	default:
		return 0, fmt.Errorf("unknown layout mode %q (want metadata or stateless)", s)
	}
}

// LayoutResolver is the pluggable layout-resolution strategy behind the
// olr_* ABI: one seam owns how (base, classHash, field) maps to a
// randomized offset and what per-object state, if any, backs that
// mapping. The Runtime keeps everything strategy-independent — counters,
// object tracking, canary arming, telemetry/trace emission at the
// operation exits — and delegates the strategy-specific ladder here.
// Implementations run on the VM goroutine; none are safe for concurrent
// use.
//
// Violations are recorded by the implementation (it is the only party
// that can classify them); under PolicyAbort the returned error carries
// the *Violation, under PolicyWarn the method continues on the
// documented degraded path. Plain errors (seal failures, out-of-range
// faults) abort the run with no trace record, matching the historical
// behavior of the metadata path.
type LayoutResolver interface {
	// Mode identifies the strategy.
	Mode() LayoutMode

	// Resolve maps a member access to its offset from base and reports
	// which path found it (the exectrace resolution kind). off 0 with a
	// nil error can also mean "land on the object base" for degraded
	// accesses (unknown class under PolicyWarn, confused member index).
	// Probe-length observations and EvFieldHit/EvFieldMiss events are
	// emitted here — their classification is strategy-specific — while
	// the trace record is emitted once at the olrGetptr exit.
	Resolve(v *vm.VM, base uint64, field int, classHash uint64) (off int, res exectrace.Resolution, err error)

	// Alloc allocates the heap chunk for one instrumented allocation of
	// cls and installs whatever per-object state the strategy needs,
	// returning the base address and the object's effective layout. The
	// caller arms booby traps and emits the alloc events.
	Alloc(v *vm.VM, cls *classinfo.Class) (base uint64, l *layout.Layout, err error)

	// BeginFree validates an instrumented free of base, including the
	// booby-trap sweep. proceed=false means a violation consumed the
	// free (the chunk is NOT released, matching the historical early
	// returns); l == nil with proceed=true frees a chunk the strategy
	// does not manage (no sweep, no per-class free events).
	BeginFree(v *vm.VM, base uint64) (l *layout.Layout, classHash uint64, proceed bool, err error)

	// FinishFree retires per-object state before the chunk is released:
	// cache invalidation plus ghost-marking or record drop for the
	// metadata strategy; a no-op for stateless (derivation is pure, so
	// there is nothing to retire).
	FinishFree(v *vm.VM, base uint64) error

	// AfterFree runs once the chunk is back in the allocator — the
	// stateless epoch-rekey schedule hooks here so a triggered rekey
	// never remaps the object that just died.
	AfterFree(v *vm.VM) error

	// Memcpy implements the instrumented object copy (§IV.A.2) for the
	// strategy, including the member-wise remap between source and
	// destination layouts.
	Memcpy(v *vm.VM, dst, src uint64, n int, classHash uint64) error

	// Check implements olr_check: sweep the object's booby traps if the
	// strategy manages one at base; 1 = intact or unmanaged, 0 = a trap
	// fired under PolicyWarn, error under PolicyAbort.
	Check(v *vm.VM, base uint64) (int64, error)

	// Rerandomize forces a global re-randomization pass now. Stateless
	// advances the derivation epoch and remaps every live managed
	// object; the metadata strategy reports false — its layouts are
	// already independent per allocation and re-randomize via
	// alloc/free/memcpy churn, not a global key.
	Rerandomize(v *vm.VM) (bool, error)

	// MetadataBytes estimates the per-object metadata the strategy
	// currently holds (the ablation's bytes-per-live-object numerator).
	// Fixed-size structures that do not grow with the object population
	// (the stateless derivation memo, the offset cache) do not count.
	MetadataBytes() uint64
}

// metaRecordBytes approximates the footprint of one MetaStore record:
// unsafe.Sizeof(ObjectMeta) rounds to 48 bytes and the sharded map adds
// roughly a bucket slot (key + pointer) per entry.
const metaRecordBytes = 64

// metaResolver is the paper's table-backed strategy: MetaStore records
// plus the direct-mapped offset cache, with ghost records for UAF
// detection and keyed seals for metadata integrity. It is the only
// strategy that supports Config.DetectUAF and Config.MetadataIntegrity.
type metaResolver struct {
	rt *Runtime
}

func (m *metaResolver) Mode() LayoutMode { return LayoutModeMetadata }

// Resolve implements the cache → metadata → static fallback ladder
// (Fig. 4's olr_getptr(A, 2)). The cache is keyed by (base, class,
// field) and invalidated on free/re-registration, so a hit can only
// occur for a live, correctly-typed object — the slow path performs the
// UAF and type-confusion checks.
func (m *metaResolver) Resolve(v *vm.VM, base uint64, field int, classHash uint64) (int, exectrace.Resolution, error) {
	r := m.rt
	if off, hit := r.cache.get(base, classHash, field); hit {
		if r.tel != nil {
			r.histProbe.Observe(1)
			r.tel.Emit(telemetry.Event{Kind: telemetry.EvFieldHit, Addr: base, Class: classHash, Field: field})
		}
		// A cache hit is a clean, live, well-typed resolution (the slow
		// path enforced that before populating): safe to memoize at the
		// calling site's inline cache.
		r.curCall.Memoize(int64(off))
		return int(off), exectrace.ResCacheHit, nil
	}
	if r.prof != nil {
		r.profSite().IncProbe()
	}
	r.metaProbes++
	meta, ok := r.store.Lookup(base)
	if r.tel != nil {
		// Probe-length vocabulary: telemetry.ProbeLenBuckets is the one
		// canonical enumeration of these buckets across all strategies.
		if ok {
			r.histProbe.Observe(2)
		} else {
			r.histProbe.Observe(3)
		}
		r.tel.Emit(telemetry.Event{Kind: telemetry.EvFieldMiss, Addr: base, Class: classHash, Field: field})
	}
	if ok {
		if err := r.verifySeal(meta); err != nil {
			return 0, 0, err
		}
	}
	if ok && r.cfg.DetectUAF && meta.Freed {
		if err := r.violate(ViolationUAF, base, meta.ClassHash, meta); err != nil {
			return 0, 0, err
		}
		// Warn policy: fall through and resolve against the ghost layout,
		// which is what a real dangling access would touch.
	}
	if !ok {
		// Untracked object (stack/global instance of a randomized class,
		// or memory the pass could not see allocated): fall back to the
		// compiler's static layout.
		cls, found := r.table.ByHash(classHash)
		if !found {
			if err := r.violate(ViolationBadClass, base, classHash, nil); err != nil {
				return 0, 0, err
			}
			return 0, exectrace.ResStatic, nil
		}
		if field < 0 || field >= len(cls.Members) {
			return 0, 0, fmt.Errorf("polar: field %d out of range for %s", field, cls.Name())
		}
		return cls.Members[field].StaticOffset, exectrace.ResStatic, nil
	}
	if meta.ClassHash != classHash {
		// The access site was compiled against a different class than
		// the one recorded at allocation time — a type-confused access.
		// The metadata of Fig. 4 carries the allocation's class hash, so
		// this check is one compare on the lookup path.
		if err := r.violate(ViolationTypeConfusion, base, meta.ClassHash, meta); err != nil {
			return 0, 0, err
		}
		// Warn policy: fall through and resolve against the actual
		// object's randomized layout — the confused read lands on
		// whatever the allocation's layout put at that member index,
		// which is the nondeterminism §III.B.2 describes.
	}
	if field < 0 || field >= len(meta.Layout.Offsets) {
		// Confused index beyond the actual object's member count: land
		// on the object base (defined, harmless) rather than faulting.
		return 0, exectrace.ResStatic, nil
	}
	off, err := meta.Layout.FieldOffset(field)
	if err != nil {
		return 0, 0, fmt.Errorf("polar: %s: %w", r.className(meta.ClassHash), err)
	}
	// Only well-typed live accesses populate the cache; confused or
	// dangling resolutions must keep hitting the slow path. The same rule
	// gates the per-site inline cache — and the cache-size gate keeps the
	// "nocache" ablation arm free of inline caching too, so its probe
	// counts keep meaning what they measure.
	if meta.ClassHash == classHash && !meta.Freed {
		r.cache.put(base, classHash, field, int32(off))
		if r.cache.size > 0 {
			r.curCall.Memoize(int64(off))
		}
	}
	return off, exectrace.ResMetadata, nil
}

// Alloc generates a fresh per-allocation layout, allocates exactly its
// footprint, and registers (and seals) the metadata record.
func (m *metaResolver) Alloc(v *vm.VM, cls *classinfo.Class) (uint64, *layout.Layout, error) {
	r := m.rt
	l, err := r.generateLayout(cls)
	if err != nil {
		return 0, nil, fmt.Errorf("polar: layout for %s: %w", cls.Name(), err)
	}
	l = r.store.Intern(cls.Hash, l)
	base, err := v.Heap.Alloc(l.TotalSize)
	if err != nil {
		return 0, nil, err
	}
	meta, old := r.store.Register(base, cls.Hash, l, l.TotalSize)
	r.seal(meta)
	if old != nil {
		r.cache.invalidate(base, len(old.Layout.Offsets))
		// Re-registration of a recycled base: inline-cache entries keyed
		// to the old object must stop matching.
		r.layoutGen++
	}
	return base, l, nil
}

func (m *metaResolver) BeginFree(v *vm.VM, base uint64) (*layout.Layout, uint64, bool, error) {
	r := m.rt
	meta, ok := r.store.Lookup(base)
	if !ok {
		return nil, 0, false, r.violate(ViolationBadFree, base, 0, nil)
	}
	if err := r.verifySeal(meta); err != nil {
		return nil, 0, false, err
	}
	if meta.Freed {
		return nil, 0, false, r.violate(ViolationDoubleFree, base, meta.ClassHash, meta)
	}
	if bad, err := r.checkTraps(v, base, meta.Layout); err != nil {
		return nil, 0, false, err
	} else if bad >= 0 {
		if verr := r.violate(ViolationTrap, base+uint64(bad), meta.ClassHash, meta); verr != nil {
			return nil, 0, false, verr
		}
	}
	return meta.Layout, meta.ClassHash, true, nil
}

// FinishFree retires the record: the ghost (sealed with Freed set)
// stays behind for UAF detection, or the record is dropped outright.
func (m *metaResolver) FinishFree(v *vm.VM, base uint64) error {
	r := m.rt
	meta, ok := r.store.Lookup(base)
	if !ok {
		return nil
	}
	r.cache.invalidate(base, len(meta.Layout.Offsets))
	if r.cfg.DetectUAF {
		r.store.MarkFreed(base)
		r.seal(meta) // Freed participates in the MAC
	} else {
		r.store.Drop(base)
	}
	return nil
}

func (m *metaResolver) AfterFree(v *vm.VM) error { return nil }

// Memcpy implements the instrumented object copy (§IV.A.2): when the
// source is a tracked object, the copy is performed member-wise so the
// destination can carry its own (fresh or cloned) randomized layout.
func (m *metaResolver) Memcpy(v *vm.VM, dst, src uint64, n int, classHash uint64) error {
	r := m.rt
	srcMeta, srcTracked := r.store.Lookup(src)
	if srcTracked {
		if err := r.verifySeal(srcMeta); err != nil {
			return err
		}
	}
	if srcTracked && r.cfg.DetectUAF && srcMeta.Freed {
		if err := r.violate(ViolationUAF, src, srcMeta.ClassHash, srcMeta); err != nil {
			return err
		}
	}
	if !srcTracked {
		// Raw copy; if the destination is a tracked object we must write
		// member-wise into its randomized layout from a static-layout
		// source image.
		if dstMeta, ok := r.store.Lookup(dst); ok && !dstMeta.Freed {
			cls, ok := r.table.ByHash(dstMeta.ClassHash)
			if !ok {
				return v.Mem.Copy(dst, src, dstMeta.Size)
			}
			return r.copyStaticToRandom(v, dst, dstMeta.Layout, cls, src)
		}
		return v.Mem.Copy(dst, src, n)
	}
	cls, ok := r.table.ByHash(srcMeta.ClassHash)
	if !ok {
		return v.Mem.Copy(dst, src, n)
	}
	if bad, err := r.checkTraps(v, src, srcMeta.Layout); err != nil {
		return err
	} else if bad >= 0 {
		if verr := r.violate(ViolationTrap, src+uint64(bad), srcMeta.ClassHash, srcMeta); verr != nil {
			return verr
		}
	}
	dstMeta, dstTracked := r.store.Lookup(dst)
	if dstTracked && !dstMeta.Freed {
		if dstMeta.ClassHash != srcMeta.ClassHash {
			// Copying one class's image over a live object of another
			// class is a type-confused write (§III.A.1 in memcpy form).
			if err := r.violate(ViolationTypeConfusion, dst, dstMeta.ClassHash, dstMeta); err != nil {
				return err
			}
			// Warn policy: perform the raw copy the unprotected program
			// would have done — clobbering dst's randomized image — and
			// leave the booby traps to catch the damage later.
			return v.Mem.Copy(dst, src, n)
		}
		// Destination already has its own randomized layout: remap.
		return r.copyMemberwise(v, dst, dstMeta.Layout, src, srcMeta.Layout, cls)
	}
	// Destination is an untracked region (fresh raw chunk, stack or
	// global). Give it a layout of its own when it is a heap chunk large
	// enough; otherwise fall back to the static layout so subsequent
	// accesses still resolve via the static path.
	if size, live, isChunk := v.Heap.SizeOf(dst); isChunk && live {
		l, err := r.layoutFitting(cls, srcMeta.Layout, size)
		if err != nil {
			return err
		}
		if l != nil {
			l = r.store.Intern(srcMeta.ClassHash, l)
			dm, old := r.store.Register(dst, srcMeta.ClassHash, l, l.TotalSize)
			r.seal(dm)
			if old == nil {
				r.noteLiveObject()
			} else {
				r.cache.invalidate(dst, len(old.Layout.Offsets))
				r.layoutGen++ // re-registration, as in Alloc
			}
			v.TrackObject(dst, cls.Struct)
			if err := r.armTraps(v, dst, l); err != nil {
				return err
			}
			if r.tel != nil {
				r.tel.Emit(telemetry.Event{
					Kind: telemetry.EvMemcpyRerand, Addr: dst, Size: n,
					Class: srcMeta.ClassHash, Layout: l.Hash(), Detail: cls.Name(),
				})
			}
			return r.copyMemberwise(v, dst, l, src, srcMeta.Layout, cls)
		}
	}
	return r.copyRandomToStatic(v, dst, src, srcMeta.Layout, cls)
}

// Check forces a booby-trap sweep of one tracked object (ghosts
// included — a freed object's chunk may still hold its canaries).
func (m *metaResolver) Check(v *vm.VM, base uint64) (int64, error) {
	r := m.rt
	meta, ok := r.store.Lookup(base)
	if !ok {
		return 1, nil
	}
	bad, err := r.checkTraps(v, base, meta.Layout)
	if err != nil {
		return 0, err
	}
	if bad < 0 {
		return 1, nil
	}
	if verr := r.violate(ViolationTrap, base+uint64(bad), meta.ClassHash, meta); verr != nil {
		return 0, verr
	}
	return 0, nil
}

func (m *metaResolver) Rerandomize(v *vm.VM) (bool, error) { return false, nil }

func (m *metaResolver) MetadataBytes() uint64 {
	_, total := m.rt.store.Counts()
	return uint64(total) * metaRecordBytes
}
