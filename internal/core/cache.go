package core

// offsetCache is the hashtable-based lookup cache of §V.B: it memoizes
// the result of the member-offset resolution performed by olr_getptr.
// Table III's "cache hit" column counts successful probes of this
// structure.
//
// The cache is direct-mapped and sits in front of the metadata table:
// a hit resolves the member address with one probe and no metadata
// lookup. Entries carry the access-site class hash, so a type-confused
// access (different static class) misses and falls into the slow path
// where the hash check fires; entries for an object are explicitly
// invalidated when it is freed or its base address is re-registered, so
// dangling accesses also fall through to detection.
// The entry array (8192 entries ≈ 320 KB by default) is allocated
// lazily on the first put, so runtimes stamped out per-instance but
// never exercised (or exercised read-only) stay cheap to construct.
type offsetCache struct {
	entries []cacheEntry
	mask    uint64
	size    int // capacity (power of two); 0 = caching disabled
	hits    uint64
	misses  uint64
}

type cacheEntry struct {
	base   uint64
	class  uint64
	field  int32
	offset int32
	valid  bool
}

// newOffsetCache creates a cache with the given size rounded up to a
// power of two. Size 0 disables caching (for the ablation benchmark).
func newOffsetCache(size int) *offsetCache {
	if size <= 0 {
		return &offsetCache{}
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &offsetCache{size: n, mask: uint64(n - 1)}
}

func (c *offsetCache) slot(base uint64, field int) uint64 {
	h := base*0x9e3779b97f4a7c15 + uint64(field)*0xbf58476d1ce4e5b9
	h ^= h >> 29
	return h & c.mask
}

// get probes the cache; ok reports a hit. A disabled cache (size 0, the
// no-cache ablation) records no probes at all: counting those as misses
// would pollute Table III's hit-rate column with probes that were never
// made. An enabled-but-lazily-unallocated cache still counts the miss —
// the probe genuinely happened and fell through to the slow path.
func (c *offsetCache) get(base uint64, class uint64, field int) (int32, bool) {
	if c.entries == nil {
		if c.size > 0 {
			c.misses++
		}
		return 0, false
	}
	e := &c.entries[c.slot(base, field)]
	if e.valid && e.base == base && e.class == class && e.field == int32(field) {
		c.hits++
		return e.offset, true
	}
	c.misses++
	return 0, false
}

// put installs a resolution result, allocating the entry array on
// first use.
func (c *offsetCache) put(base uint64, class uint64, field int, offset int32) {
	if c.entries == nil {
		if c.size == 0 {
			return
		}
		c.entries = make([]cacheEntry, c.size)
	}
	c.entries[c.slot(base, field)] = cacheEntry{
		base: base, class: class, field: int32(field), offset: offset, valid: true,
	}
}

// invalidate drops any entries for fields [0, nFields) of base — called
// on free and on base re-registration so stale resolutions cannot serve
// dangling or confused accesses.
func (c *offsetCache) invalidate(base uint64, nFields int) {
	if c.entries == nil {
		return
	}
	for f := 0; f < nFields; f++ {
		e := &c.entries[c.slot(base, f)]
		if e.valid && e.base == base && e.field == int32(f) {
			e.valid = false
		}
	}
}
