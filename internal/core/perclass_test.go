package core_test

import (
	"testing"

	"polar/internal/core"
	"polar/internal/instrument"
	"polar/internal/ir"
	"polar/internal/layout"
	"polar/internal/vm"
)

// TestPerClassLayoutOverrides checks the §IV.B.1 feedback knob: one
// class runs with five dummies, another with none, under one runtime.
func TestPerClassLayoutOverrides(t *testing.T) {
	m := ir.NewModule("perclass")
	fat := m.MustStruct(ir.NewStruct("Fat",
		ir.Field{Name: "a", Type: ir.I64}, ir.Field{Name: "b", Type: ir.I64}))
	lean := m.MustStruct(ir.NewStruct("Lean",
		ir.Field{Name: "a", Type: ir.I64}, ir.Field{Name: "b", Type: ir.I64}))
	b := ir.NewFunc(m, "main", ir.I64)
	pf := b.Alloc(fat)
	pl := b.Alloc(lean)
	b.Store(ir.I64, ir.Const(1), b.FieldPtr(fat, pf, 0))
	b.Store(ir.I64, ir.Const(2), b.FieldPtr(lean, pl, 0))
	v1 := b.Load(ir.I64, b.FieldPtr(fat, pf, 0))
	v2 := b.Load(ir.I64, b.FieldPtr(lean, pl, 0))
	b.Ret(b.Bin(ir.BinAdd, v1, v2))

	ins, err := instrument.Apply(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	fatCls, _ := ins.Table.ByName("Fat")
	leanCls, _ := ins.Table.ByName("Lean")

	cfg := core.DefaultConfig(5)
	fatCfg := layout.DefaultConfig()
	fatCfg.MinDummies, fatCfg.MaxDummies = 5, 5
	leanCfg := layout.DefaultConfig()
	leanCfg.MinDummies, leanCfg.MaxDummies = 0, 0
	leanCfg.BoobyTraps = false
	cfg.PerClass = map[uint64]layout.Config{
		fatCls.Hash:  fatCfg,
		leanCls.Hash: leanCfg,
	}

	v, err := vm.New(ins.Module)
	if err != nil {
		t.Fatal(err)
	}
	rt := core.New(ins.Table, cfg)
	rt.Attach(v)
	got, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("result = %d, want 3", got)
	}

	// Inspect the two live objects' layouts via the metadata store.
	var fatDummies, leanDummies = -1, -1
	for _, base := range []uint64{vm.HeapBase, vm.HeapBase + 16, vm.HeapBase + 32, vm.HeapBase + 48, vm.HeapBase + 64, vm.HeapBase + 80, vm.HeapBase + 96} {
		meta, ok := rt.LookupObject(base)
		if !ok {
			continue
		}
		switch meta.ClassHash {
		case fatCls.Hash:
			fatDummies = meta.Layout.Dummies
		case leanCls.Hash:
			leanDummies = meta.Layout.Dummies
		}
	}
	if fatDummies != 5 {
		t.Errorf("Fat dummies = %d, want 5", fatDummies)
	}
	if leanDummies != 0 {
		t.Errorf("Lean dummies = %d, want 0", leanDummies)
	}
}

// TestConfusedMemcpyDetected: copying a live object of one class over a
// live object of another class is flagged as a type-confused write.
func TestConfusedMemcpyDetected(t *testing.T) {
	m := ir.NewModule("cmemcpy")
	a := m.MustStruct(ir.NewStruct("A",
		ir.Field{Name: "x", Type: ir.I64}, ir.Field{Name: "y", Type: ir.I64}))
	bb := m.MustStruct(ir.NewStruct("B",
		ir.Field{Name: "u", Type: ir.I64}, ir.Field{Name: "v", Type: ir.I64}))
	b := ir.NewFunc(m, "main", ir.I64)
	pa := b.Alloc(a)
	pb := b.Alloc(bb)
	b.Store(ir.I64, ir.Const(1), b.FieldPtr(a, pa, 0))
	b.Store(ir.I64, ir.Const(2), b.FieldPtr(bb, pb, 0))
	b.Memcpy(pb, pa, ir.Const(int64(a.Size()))) // A image over live B
	b.Ret(ir.Const(0))

	ins, err := instrument.Apply(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := vm.New(ins.Module)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(6)
	cfg.Policy = core.PolicyWarn
	rt := core.New(ins.Table, cfg)
	rt.Attach(v)
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if rt.ViolationCount(core.ViolationTypeConfusion) == 0 {
		t.Fatal("confused memcpy not flagged")
	}
}
