package core_test

import (
	"errors"
	"math/rand"
	"testing"

	"polar/internal/core"
	"polar/internal/instrument"
	"polar/internal/ir"
	"polar/internal/layout"
	"polar/internal/vm"
)

func buildIntegrityModule(t *testing.T) *ir.Module {
	t.Helper()
	m := ir.NewModule("integrity")
	st := m.MustStruct(ir.NewStruct("S",
		ir.Field{Name: "a", Type: ir.I64},
		ir.Field{Name: "b", Type: ir.I64},
	))
	b := ir.NewFunc(m, "main", ir.I64)
	p := b.Alloc(st)
	b.Store(ir.I64, ir.Const(5), b.FieldPtrName(st, p, "a"))
	b.CallVoid("taint_poke") // hook point: the test corrupts here
	v := b.Load(ir.I64, b.FieldPtrName(st, p, "a"))
	b.Free(p)
	b.Ret(v)
	return m
}

// TestMetadataIntegrityDetectsCorruption models the §VI.A attack: a
// "logical bug" rewrites an object's metadata record mid-execution.
// With MetadataIntegrity on, the next lookup flags the forged record.
func TestMetadataIntegrityDetectsCorruption(t *testing.T) {
	m := buildIntegrityModule(t)
	ins, err := instrument.Apply(m, nil)
	if err != nil {
		t.Fatal(err)
	}

	forged, err := layout.Generate(
		[]layout.FieldInfo{{Size: 8, Align: 8}, {Size: 8, Align: 8}},
		layout.Config{Mode: layout.ModeIdentity}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}

	run := func(integrity bool) error {
		v, err := vm.New(ir.Clone(ins.Module))
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig(7)
		cfg.MetadataIntegrity = integrity
		rt := core.New(ins.Table, cfg)
		rt.Attach(v)
		// taint_poke corrupts the (single) live object's metadata.
		v.RegisterBuiltin("taint_poke", func(c *vm.Call) (int64, error) {
			base := uint64(vm.HeapBase)
			if !rt.CorruptMetadataForTest(base, forged) {
				t.Fatal("no object at heap base to corrupt")
			}
			return 0, nil
		})
		_, err = v.Run()
		return err
	}

	// Integrity ON: the forged record is detected at the next access.
	err = run(true)
	var viol *core.Violation
	if !errors.As(err, &viol) {
		t.Fatalf("integrity on: want violation, got %v", err)
	}
	if viol.Kind != core.ViolationMetadata {
		t.Fatalf("violation kind = %v, want metadata-corruption", viol.Kind)
	}

	// Integrity OFF (the paper's current state): the forged layout is
	// silently used — the program still runs (identity layout resolves
	// field 0 to offset 0, which may or may not hold 5), demonstrating
	// the §VI.A exposure.
	if err := run(false); err != nil {
		var v2 *core.Violation
		if errors.As(err, &v2) && v2.Kind == core.ViolationMetadata {
			t.Fatal("integrity off but corruption was flagged")
		}
		// Other faults are acceptable: the forged layout can point reads
		// anywhere.
	}
}

// TestMetadataIntegrityNoFalsePositives: a clean run under integrity
// mode behaves exactly like the default across many seeds.
func TestMetadataIntegrityNoFalsePositives(t *testing.T) {
	m := buildIntegrityModule(t)
	ins, err := instrument.Apply(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 15; seed++ {
		v, err := vm.New(ir.Clone(ins.Module))
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig(seed)
		cfg.MetadataIntegrity = true
		rt := core.New(ins.Table, cfg)
		rt.Attach(v)
		v.RegisterBuiltin("taint_poke", func(c *vm.Call) (int64, error) { return 0, nil })
		got, err := v.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got != 5 {
			t.Fatalf("seed %d: result %d, want 5", seed, got)
		}
		if rt.ViolationCount(core.ViolationMetadata) != 0 {
			t.Fatalf("seed %d: spurious metadata violation", seed)
		}
	}
}
