package core

import (
	"testing"

	"polar/internal/telemetry"
)

// TestMetadataLoadFactorUnderReuse drives a free-then-realloc workload
// and pins the two slow-path metrics it shapes: the metadata-table
// load factor (ghost records from UAF detection drag it below 1) and
// the member-resolution probe-length histogram (first touch takes the
// metadata slow path, repeats hit the offset cache).
func TestMetadataLoadFactorUnderReuse(t *testing.T) {
	h := newViolationHarness(t, nil)
	const rounds = 32
	var bases []uint64
	for i := 0; i < rounds; i++ {
		base := h.alloc(h.hashA)
		for j := 0; j < 4; j++ {
			if _, err := h.r.olrGetptr(h.v, base, 1, h.hashA); err != nil {
				t.Fatalf("getptr: %v", err)
			}
		}
		// Reuse pressure: free-then-realloc recycles addresses, so each
		// re-registration replaces the previous ghost at the same base.
		if i%2 == 0 {
			if err := h.r.olrFree(h.v, base); err != nil {
				t.Fatalf("free: %v", err)
			}
		} else {
			bases = append(bases, base)
		}
	}
	// Retire half the survivors last, with no reallocation after: these
	// ghosts stay in the table and drag the load factor below 1.
	live := bases[:len(bases)/2]
	for _, base := range bases[len(bases)/2:] {
		if err := h.r.olrFree(h.v, base); err != nil {
			t.Fatalf("final free: %v", err)
		}
	}
	st := h.r.Stats() // publishes into the registry
	snap := h.r.Telemetry().Registry.Snapshot()

	lf, ok := snap.Gauges[telemetry.MetricMetaLoadFactor]
	if !ok {
		t.Fatalf("gauge %s not published", telemetry.MetricMetaLoadFactor)
	}
	if lf <= 0 || lf >= 1 {
		t.Fatalf("load factor = %v, want strictly between 0 and 1 (live objects + UAF ghosts)", lf)
	}
	storeLive, storeTotal := h.r.Store().Counts()
	if storeLive != len(live) {
		t.Fatalf("store live = %d, want %d survivors", storeLive, len(live))
	}
	if want := float64(storeLive) / float64(storeTotal); lf != want {
		t.Fatalf("load factor = %v, want live/total = %v", lf, want)
	}

	hist, ok := snap.Histograms[telemetry.MetricCacheProbeLen]
	if !ok {
		t.Fatalf("histogram %s not registered", telemetry.MetricCacheProbeLen)
	}
	if hist.Count != st.MemberAccess {
		t.Fatalf("probe histogram count = %d, want one observation per access (%d)", hist.Count, st.MemberAccess)
	}
	// ProbeLenBuckets = {0,1,2,3,4}: bucket 0 (stateless derivations)
	// stays empty in metadata mode, bucket 1 is cache hits (probe length
	// 1), bucket 2 is metadata-lookup misses (probe length 2). The
	// workload produces both in exact counter amounts.
	if hist.Counts[0] != 0 {
		t.Fatalf("probe-length-0 bucket = %d, want 0 in metadata mode", hist.Counts[0])
	}
	if hist.Counts[1] != st.CacheHits {
		t.Fatalf("probe-length-1 bucket = %d, want cache hits %d", hist.Counts[1], st.CacheHits)
	}
	if hist.Counts[2] != st.CacheMisses {
		t.Fatalf("probe-length-2 bucket = %d, want cache misses %d", hist.Counts[2], st.CacheMisses)
	}
	if st.CacheHits == 0 || st.CacheMisses == 0 {
		t.Fatalf("hits=%d misses=%d, want a workload exercising both paths", st.CacheHits, st.CacheMisses)
	}
}
