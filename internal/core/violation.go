// Package core implements the POLaR runtime — the per-allocation object
// layout randomization framework of §IV.A (the paper's primary
// contribution).
//
// The runtime exposes the olr_* ABI the instrumentation pass targets
// (Fig. 4): olr_malloc generates a fresh randomized layout per
// allocation and registers object metadata; olr_getptr resolves member
// addresses through that metadata (with a hashtable result cache, §V.B);
// olr_free validates booby traps and retires metadata; olr_memcpy
// re-randomizes duplicate copies (§IV.A.2). Dummy members double as
// booby traps in front of function pointers, and stale metadata exposes
// obvious use-after-free attempts (§IV.A.3).
package core

import (
	"errors"
	"fmt"
)

// ViolationKind classifies detected memory-error symptoms.
type ViolationKind int

// Violation kinds.
const (
	ViolationTrap          ViolationKind = iota + 1 // booby-trap canary corrupted
	ViolationUAF                                    // access through freed object metadata
	ViolationDoubleFree                             // olr_free on already-freed object
	ViolationBadFree                                // olr_free on unknown address
	ViolationBadClass                               // class hash not in CIE table
	ViolationTypeConfusion                          // access class hash != allocation class hash
	ViolationMetadata                               // metadata integrity MAC mismatch (§VI.A)
)

// String implements fmt.Stringer.
func (k ViolationKind) String() string {
	switch k {
	case ViolationTrap:
		return "booby-trap"
	case ViolationUAF:
		return "use-after-free"
	case ViolationDoubleFree:
		return "double-free"
	case ViolationBadFree:
		return "invalid-free"
	case ViolationBadClass:
		return "unknown-class"
	case ViolationTypeConfusion:
		return "type-confusion"
	case ViolationMetadata:
		return "metadata-corruption"
	default:
		return "?"
	}
}

// ErrViolation is the sentinel wrapped by all Violation errors.
var ErrViolation = errors.New("polar: security violation")

// Violation is the error returned (under PolicyAbort) when the runtime
// detects an attack symptom.
type Violation struct {
	Kind  ViolationKind
	Addr  uint64
	Class string
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("polar: %s detected at 0x%x (class %s)", v.Kind, v.Addr, v.Class)
}

// Unwrap lets errors.Is(err, ErrViolation) match.
func (v *Violation) Unwrap() error { return ErrViolation }

// Policy decides what the runtime does on detection.
type Policy int

// Policies. PolicyAbort terminates the program with a *Violation error
// (production behaviour); PolicyWarn counts the event and continues
// (used by experiments that measure detection rates without aborting).
const (
	PolicyAbort Policy = iota + 1
	PolicyWarn
)
