// Package core implements the POLaR runtime — the per-allocation object
// layout randomization framework of §IV.A (the paper's primary
// contribution).
//
// The runtime exposes the olr_* ABI the instrumentation pass targets
// (Fig. 4): olr_malloc generates a fresh randomized layout per
// allocation and registers object metadata; olr_getptr resolves member
// addresses through that metadata (with a hashtable result cache, §V.B);
// olr_free validates booby traps and retires metadata; olr_memcpy
// re-randomizes duplicate copies (§IV.A.2). Dummy members double as
// booby traps in front of function pointers, and stale metadata exposes
// obvious use-after-free attempts (§IV.A.3).
package core

import (
	"errors"
	"fmt"
)

// ViolationKind classifies detected memory-error symptoms.
type ViolationKind int

// Violation kinds.
const (
	ViolationTrap          ViolationKind = iota + 1 // booby-trap canary corrupted
	ViolationUAF                                    // access through freed object metadata
	ViolationDoubleFree                             // olr_free on already-freed object
	ViolationBadFree                                // olr_free on unknown address
	ViolationBadClass                               // class hash not in CIE table
	ViolationTypeConfusion                          // access class hash != allocation class hash
	ViolationMetadata                               // metadata integrity MAC mismatch (§VI.A)
)

// AllViolationKinds lists every kind in declaration order (report and
// registry iteration).
func AllViolationKinds() []ViolationKind {
	return []ViolationKind{
		ViolationTrap, ViolationUAF, ViolationDoubleFree, ViolationBadFree,
		ViolationBadClass, ViolationTypeConfusion, ViolationMetadata,
	}
}

// String implements fmt.Stringer.
func (k ViolationKind) String() string {
	switch k {
	case ViolationTrap:
		return "booby-trap"
	case ViolationUAF:
		return "use-after-free"
	case ViolationDoubleFree:
		return "double-free"
	case ViolationBadFree:
		return "invalid-free"
	case ViolationBadClass:
		return "unknown-class"
	case ViolationTypeConfusion:
		return "type-confusion"
	case ViolationMetadata:
		return "metadata-corruption"
	default:
		return "?"
	}
}

// ErrViolation is the sentinel wrapped by all Violation errors.
var ErrViolation = errors.New("polar: security violation")

// Violation is the error returned (under PolicyAbort) when the runtime
// detects an attack symptom. Beyond the historical Kind/Addr/Class it
// carries the full structured record (class hash, layout identity,
// instruction site) so forensics need not re-derive them.
type Violation struct {
	Kind  ViolationKind
	Addr  uint64
	Class string
	// ClassHash is the CIE hash of the class involved (0 if unknown).
	ClassHash uint64
	// LayoutID is the identity hash of the object's randomized layout
	// (0 when no metadata was involved).
	LayoutID uint64
	// Field is the member index the triggering access named (-1 for
	// operations that carry no member, e.g. free).
	Field int
	// Site is the instruction site "@fn.block" of the triggering olr_*
	// call ("" when unknown).
	Site string
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("polar: %s detected at 0x%x (class %s)", v.Kind, v.Addr, v.Class)
}

// Unwrap lets errors.Is(err, ErrViolation) match.
func (v *Violation) Unwrap() error { return ErrViolation }

// Record returns the violation as a structured record.
func (v *Violation) Record() ViolationRecord {
	return ViolationRecord{
		Kind: v.Kind, Addr: v.Addr, Class: v.Class,
		ClassHash: v.ClassHash, LayoutID: v.LayoutID, Field: v.Field, Site: v.Site,
	}
}

// ViolationRecord is the structured detection record the runtime
// accumulates under every policy (PolicyWarn keeps running but still
// records). Consumed by internal/exploit (per-kind attack accounting)
// and internal/evalrun (security report), and emitted on the telemetry
// bus as an EvViolation event.
type ViolationRecord struct {
	Kind      ViolationKind `json:"-"`
	KindName  string        `json:"kind"`
	Addr      uint64        `json:"addr"`
	Class     string        `json:"class"`
	ClassHash uint64        `json:"class_hash"`
	LayoutID  uint64        `json:"layout_id"`
	Field     int           `json:"field"`
	Site      string        `json:"site,omitempty"`
}

// RecordSet bundles the structured violation log with its truncation
// state. The log is capped (maxViolationRecords) so a warn-policy run
// under sustained attack cannot grow memory without bound; Truncated
// tells consumers the records are a prefix of the detection history,
// and Dropped says how many detections lost their per-record detail
// (the per-kind counters still include them).
type RecordSet struct {
	Records   []ViolationRecord `json:"records"`
	Truncated bool              `json:"truncated"`
	Dropped   uint64            `json:"dropped,omitempty"`
}

// Policy decides what the runtime does on detection.
type Policy int

// Policies. PolicyAbort terminates the program with a *Violation error
// (production behaviour); PolicyWarn counts the event and continues
// (used by experiments that measure detection rates without aborting).
const (
	PolicyAbort Policy = iota + 1
	PolicyWarn
)
