package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"polar/internal/telemetry"
)

// String renders the runtime counters as a one-line key=value summary.
// Violations are listed by kind name in declaration order; "violations=0"
// when none fired.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "allocs=%d frees=%d memcpys=%d member-access=%d cache-hits=%d cache-misses=%d",
		s.Allocs, s.Frees, s.Memcpys, s.MemberAccess, s.CacheHits, s.CacheMisses)
	total := uint64(0)
	for _, kind := range AllViolationKinds() {
		if n := s.Violations[kind]; n > 0 {
			fmt.Fprintf(&b, " %s=%d", kind, n)
			total += n
		}
	}
	if total == 0 {
		b.WriteString(" violations=0")
	}
	fmt.Fprintf(&b, " layouts-unique=%d layouts-shared=%d", s.Meta.LayoutsUnique, s.Meta.LayoutsShared)
	return b.String()
}

// MarshalJSON implements json.Marshaler with stable snake_case keys.
// The violations map is keyed by kind name (sorted by encoding/json),
// so equal states always encode identically.
func (s Stats) MarshalJSON() ([]byte, error) {
	viol := make(map[string]uint64, len(s.Violations))
	for k, v := range s.Violations {
		viol[k.String()] = v
	}
	return json.Marshal(map[string]any{
		"allocs":             s.Allocs,
		"frees":              s.Frees,
		"memcpys":            s.Memcpys,
		"member_access":      s.MemberAccess,
		"cache_hits":         s.CacheHits,
		"cache_misses":       s.CacheMisses,
		"violations":         viol,
		"violations_dropped": s.ViolationsDropped,
		"meta":               s.Meta,
	})
}

// Publish snapshots the counters into a telemetry registry under the
// "core." prefix. The runtime counts natively (the olr_getptr path is
// too hot for registry indirection); Publish is the registry bridge,
// called by Runtime.Stats() when telemetry is attached.
func (s Stats) Publish(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("core.allocs").Set(s.Allocs)
	reg.Counter("core.frees").Set(s.Frees)
	reg.Counter("core.memcpys").Set(s.Memcpys)
	reg.Counter("core.member_access").Set(s.MemberAccess)
	reg.Counter("core.cache_hits").Set(s.CacheHits)
	reg.Counter("core.cache_misses").Set(s.CacheMisses)
	reg.Counter("core.meta_probes").Set(s.MetaProbes)
	reg.Counter("core.peak_live_objects").Set(s.PeakLive)
	for _, kind := range AllViolationKinds() {
		if n := s.Violations[kind]; n > 0 {
			reg.Counter("core.violation." + kind.String()).Set(n)
		}
	}
	// Always published (even at zero) so dashboards can alert on any
	// transition away from "no detail lost".
	reg.Counter("core.violations_dropped").Set(s.ViolationsDropped)
	s.Meta.Publish(reg)
}

// TotalViolations sums detections across all kinds.
func (s Stats) TotalViolations() uint64 {
	var total uint64
	for _, n := range s.Violations {
		total += n
	}
	return total
}

// String renders the metadata-table counters as a one-line summary.
func (s MetaStats) String() string {
	return fmt.Sprintf("registered=%d retired=%d layouts-unique=%d layouts-shared=%d",
		s.Registered, s.Retired, s.LayoutsUnique, s.LayoutsShared)
}

// MarshalJSON implements json.Marshaler with stable snake_case keys.
func (s MetaStats) MarshalJSON() ([]byte, error) {
	out := map[string]any{
		"registered":     s.Registered,
		"retired":        s.Retired,
		"layouts_unique": s.LayoutsUnique,
		"layouts_shared": s.LayoutsShared,
	}
	if len(s.Shards) > 0 {
		shards := make([]map[string]uint64, len(s.Shards))
		for i, sh := range s.Shards {
			shards[i] = map[string]uint64{
				"registered": sh.Registered,
				"retired":    sh.Retired,
				"live":       sh.Live,
				"total":      sh.Total,
			}
		}
		out["shards"] = shards
	}
	return json.Marshal(out)
}

// Publish snapshots the counters into a telemetry registry under the
// "core.meta." prefix, including the per-shard breakdown
// ("core.meta.shard.NN.*") and a load-imbalance gauge (max/mean
// registrations across shards; 1.0 = perfectly even).
func (s MetaStats) Publish(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("core.meta.registered").Set(s.Registered)
	reg.Counter("core.meta.retired").Set(s.Retired)
	reg.Counter("core.meta.layouts_unique").Set(s.LayoutsUnique)
	reg.Counter("core.meta.layouts_shared").Set(s.LayoutsShared)
	if len(s.Shards) == 0 {
		return
	}
	var maxReg uint64
	for i, sh := range s.Shards {
		prefix := fmt.Sprintf("core.meta.shard.%02d.", i)
		reg.Counter(prefix + "registered").Set(sh.Registered)
		reg.Counter(prefix + "retired").Set(sh.Retired)
		reg.Gauge(prefix + "live").Set(float64(sh.Live))
		reg.Gauge(prefix + "total").Set(float64(sh.Total))
		if sh.Registered > maxReg {
			maxReg = sh.Registered
		}
	}
	if s.Registered > 0 {
		mean := float64(s.Registered) / float64(len(s.Shards))
		reg.Gauge("core.meta.shard_imbalance").Set(float64(maxReg) / mean)
	}
}

// SortedViolationNames returns the kind names present in the map,
// sorted — a stable iteration order for reports.
func (s Stats) SortedViolationNames() []string {
	names := make([]string, 0, len(s.Violations))
	for k := range s.Violations {
		names = append(names, k.String())
	}
	sort.Strings(names)
	return names
}
