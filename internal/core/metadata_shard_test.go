package core

import (
	"sync"
	"testing"
)

// TestMetaStoreConcurrentShards hammers one sharded store from 8
// goroutines, each working a disjoint address range so every record has
// a single writer while the shards themselves are contended. Run under
// -race this is the regression test for the per-shard locking; the
// final Stats must account for every registration and retirement
// exactly once across shards.
func TestMetaStoreConcurrentShards(t *testing.T) {
	s := NewMetaStore()
	l := genLayout(t, 1)
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w+1) << 32
			for i := 0; i < perWorker; i++ {
				addr := base + uint64(i)*64
				s.Register(addr, uint64(w), l, l.TotalSize)
				if m, ok := s.Lookup(addr); !ok || m.Base != addr {
					t.Errorf("worker %d: lookup(%#x) = %v, %v", w, addr, m, ok)
					return
				}
				switch i % 3 {
				case 0: // stays live
				case 1:
					s.MarkFreed(addr)
				case 2:
					s.MarkFreed(addr)
					s.Drop(addr)
				}
			}
		}(w)
	}
	wg.Wait()

	// Per worker: n0 indices stayed live, n1 were freed in place, n2
	// were freed then dropped.
	n0 := (perWorker + 2) / 3
	n1 := (perWorker + 1) / 3
	n2 := perWorker / 3
	st := s.Stats()
	if want := uint64(workers * perWorker); st.Registered != want {
		t.Errorf("Registered = %d, want %d", st.Registered, want)
	}
	if want := uint64(workers * (n1 + n2)); st.Retired != want {
		t.Errorf("Retired = %d, want %d", st.Retired, want)
	}
	if want := workers * n0; s.LiveCount() != want {
		t.Errorf("LiveCount = %d, want %d", s.LiveCount(), want)
	}
	live, total := s.Counts()
	if live != workers*n0 || total != workers*(n0+n1) {
		t.Errorf("Counts = (%d, %d), want (%d, %d)",
			live, total, workers*n0, workers*(n0+n1))
	}
}

// TestSharedInternerAcrossStores checks the cross-instance dedup pool:
// two stores built over one LayoutInterner share layout pointers, and
// registrations after the first are counted as shared.
func TestSharedInternerAcrossStores(t *testing.T) {
	in := NewLayoutInterner()
	s1 := NewSharedMetaStore(in)
	s2 := NewSharedMetaStore(in)
	l1 := genLayout(t, 7)
	l2 := genLayout(t, 7) // same seed: equal layout, distinct allocation

	got1 := s1.Intern(42, l1)
	got2 := s2.Intern(42, l2)
	if got1 != got2 {
		t.Fatal("equal layouts interned through a shared pool returned distinct pointers")
	}
	st := s2.Stats()
	if st.LayoutsUnique != 1 || st.LayoutsShared != 1 {
		t.Fatalf("interner stats unique=%d shared=%d, want 1/1", st.LayoutsUnique, st.LayoutsShared)
	}
}
