package core

import "polar/internal/layout"

// Metadata integrity (§VI.A). The paper observes that POLaR's metadata
// is itself a target: a logical bug that lets an attacker rewrite the
// base→layout table would redirect member resolution wholesale, and
// proposes hardware-backed isolation (MPX/SGX/MPK/TrustZone) as future
// work. In this reproduction the metadata already lives outside the
// simulated address space (the program cannot address it), but to make
// the discussion concrete the runtime can additionally seal every
// record with a keyed MAC and verify it on each slow-path lookup —
// modelling an integrity-protected metadata region. Enable with
// Config.MetadataIntegrity; corruption surfaces as ViolationMetadata.

// metaMAC computes the keyed MAC over the fields an attacker would
// need to forge coherently.
func (r *Runtime) metaMAC(m *ObjectMeta) uint64 {
	x := m.Base ^ r.secret
	x = mix64(x ^ m.ClassHash)
	x = mix64(x ^ m.Layout.Hash())
	x = mix64(x ^ uint64(m.Size))
	if m.Freed {
		x = mix64(x ^ 0xF5EE)
	}
	return x
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 29
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 32
	return x
}

// seal stamps the record's MAC (no-op when integrity is disabled).
func (r *Runtime) seal(m *ObjectMeta) {
	if !r.cfg.MetadataIntegrity || m == nil {
		return
	}
	m.mac = r.metaMAC(m)
}

// verifySeal checks the record and reports (possibly returning a
// violation error under PolicyAbort).
func (r *Runtime) verifySeal(m *ObjectMeta) error {
	if !r.cfg.MetadataIntegrity || m == nil {
		return nil
	}
	if m.mac != r.metaMAC(m) {
		return r.violate(ViolationMetadata, m.Base, m.ClassHash, m)
	}
	return nil
}

// CorruptMetadataForTest deliberately rewrites a record's layout (the
// attack §VI.A worries about) so tests can confirm detection. It is
// exported for test use only.
func (r *Runtime) CorruptMetadataForTest(base uint64, l *layout.Layout) bool {
	m, ok := r.store.Lookup(base)
	if !ok {
		return false
	}
	m.Layout = l
	// Note: deliberately NOT resealing — a real attacker without the
	// secret cannot produce a valid MAC.
	r.cache.invalidate(base, 64)
	return true
}
