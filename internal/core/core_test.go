package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"polar/internal/layout"
)

func genLayout(t testing.TB, seed int64) *layout.Layout {
	t.Helper()
	fields := []layout.FieldInfo{
		{Size: 8, Align: 8, IsFptr: true},
		{Size: 8, Align: 8},
		{Size: 4, Align: 4},
	}
	l, err := layout.Generate(fields, layout.DefaultConfig(), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestMetaStoreRegisterLookupFree(t *testing.T) {
	s := NewMetaStore()
	l := genLayout(t, 1)
	m, old := s.Register(0x1000, 42, l, l.TotalSize)
	if old != nil {
		t.Fatal("fresh base reported an old record")
	}
	got, ok := s.Lookup(0x1000)
	if !ok || got != m || got.ClassHash != 42 {
		t.Fatalf("lookup = %+v %v", got, ok)
	}
	if s.LiveCount() != 1 {
		t.Fatalf("live = %d", s.LiveCount())
	}
	s.MarkFreed(0x1000)
	ghost, ok := s.Lookup(0x1000)
	if !ok || !ghost.Freed {
		t.Fatal("ghost record missing after MarkFreed")
	}
	if s.LiveCount() != 0 {
		t.Fatalf("live after free = %d", s.LiveCount())
	}
	// Re-registration replaces the ghost and reports it.
	l2 := genLayout(t, 2)
	_, old = s.Register(0x1000, 43, l2, l2.TotalSize)
	if old == nil || !old.Freed {
		t.Fatal("re-registration did not surface the ghost")
	}
	st := s.Stats()
	if st.Registered != 2 || st.Retired != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMetaStoreDrop(t *testing.T) {
	s := NewMetaStore()
	l := genLayout(t, 1)
	s.Register(0x2000, 1, l, l.TotalSize)
	s.Drop(0x2000)
	if _, ok := s.Lookup(0x2000); ok {
		t.Fatal("dropped record still present")
	}
}

func TestLayoutInterning(t *testing.T) {
	s := NewMetaStore()
	// The same layout content must intern to one canonical instance.
	a := genLayout(t, 7)
	b := genLayout(t, 7) // same seed => same content, distinct pointer
	if a == b {
		t.Fatal("fixture broken: same pointer")
	}
	ca := s.Intern(99, a)
	cb := s.Intern(99, b)
	if ca != cb {
		t.Fatal("equal layouts not deduplicated")
	}
	st := s.Stats()
	if st.LayoutsUnique != 1 || st.LayoutsShared != 1 {
		t.Fatalf("dedup stats = %+v", st)
	}
	// Same layout under a different class hash is a separate entry
	// (classes never share metadata records).
	cc := s.Intern(100, genLayout(t, 7))
	if cc == ca {
		t.Fatal("layouts shared across classes")
	}
}

// TestInternQuick: intern many random layouts; the canonical instance
// always compares Equal to the input, and interning is idempotent.
func TestInternQuick(t *testing.T) {
	s := NewMetaStore()
	prop := func(seed int64, class uint8) bool {
		l := genLayout(t, seed%50)
		c := s.Intern(uint64(class%4), l)
		if !c.Equal(l) {
			return false
		}
		return s.Intern(uint64(class%4), l) == c
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOffsetCacheBasics(t *testing.T) {
	c := newOffsetCache(64)
	if _, hit := c.get(0x1000, 5, 0); hit {
		t.Fatal("empty cache hit")
	}
	c.put(0x1000, 5, 0, 24)
	off, hit := c.get(0x1000, 5, 0)
	if !hit || off != 24 {
		t.Fatalf("get = %d %v", off, hit)
	}
	// Different class hash (type-confused access) must miss.
	if _, hit := c.get(0x1000, 6, 0); hit {
		t.Fatal("confused class hit the cache")
	}
	// Different field must miss.
	if _, hit := c.get(0x1000, 5, 1); hit {
		t.Fatal("wrong field hit the cache")
	}
	c.invalidate(0x1000, 4)
	if _, hit := c.get(0x1000, 5, 0); hit {
		t.Fatal("invalidated entry still hit")
	}
	if c.hits != 1 || c.misses != 4 {
		t.Fatalf("counters = %d/%d", c.hits, c.misses)
	}
}

func TestOffsetCacheDisabled(t *testing.T) {
	c := newOffsetCache(0)
	c.put(1, 2, 3, 4)
	if _, hit := c.get(1, 2, 3); hit {
		t.Fatal("disabled cache hit")
	}
	c.invalidate(1, 8) // must not panic
	// A disabled cache makes no probes, so it must record none: the
	// no-cache ablation's Table III hit-rate column stays empty instead
	// of reporting a 0% rate over probes that never happened.
	if c.hits != 0 || c.misses != 0 {
		t.Fatalf("disabled cache counted probes: hits=%d misses=%d", c.hits, c.misses)
	}
}

// TestOffsetCacheLazyMissCounting: an enabled cache whose entry array has
// not been allocated yet (no put so far) still counts probes — those
// probes really happened and fell through to the metadata slow path.
func TestOffsetCacheLazyMissCounting(t *testing.T) {
	c := newOffsetCache(64)
	if _, hit := c.get(0x1000, 5, 0); hit {
		t.Fatal("unallocated cache hit")
	}
	if c.misses != 1 {
		t.Fatalf("pre-allocation probe not counted: misses=%d", c.misses)
	}
}

// TestOffsetCacheQuick: whatever was last put for (base, class, field)
// is what get returns, across random collisions.
func TestOffsetCacheQuick(t *testing.T) {
	c := newOffsetCache(16) // tiny: force collisions
	shadow := make(map[[3]uint64]int32)
	prop := func(baseSel, fieldSel uint8, off int32) bool {
		base := uint64(baseSel%8)*16 + 0x1000
		field := int(fieldSel % 4)
		key := [3]uint64{base, 7, uint64(field)}
		c.put(base, 7, field, off)
		shadow[key] = off
		got, hit := c.get(base, 7, field)
		// A hit must return the shadow value; a miss is allowed (another
		// key may have evicted the slot).
		if hit && got != shadow[key] {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestViolationErrorShape(t *testing.T) {
	v := &Violation{Kind: ViolationTrap, Addr: 0xdead, Class: "X"}
	if v.Error() == "" {
		t.Fatal("empty error message")
	}
	for _, k := range []ViolationKind{ViolationTrap, ViolationUAF, ViolationDoubleFree, ViolationBadFree, ViolationBadClass, ViolationTypeConfusion} {
		if k.String() == "?" {
			t.Errorf("kind %d has no name", k)
		}
	}
}
