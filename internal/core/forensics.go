package core

import (
	"polar/internal/telemetry/flight"
)

// neighborhoodRadius is how many address-adjacent chunks the forensic
// dump records on each side of the victim.
const neighborhoodRadius = 2

// captureForensics snapshots the flight recorder's event ring into a
// forensic dump for one detected violation. It resolves the victim's
// chunk base (the violation address may point into the middle of an
// object, e.g. a corrupted trap slot) and annotates the address-adjacent
// chunks with object metadata. Runs only on the violation path, and only
// when a flight recorder is configured.
func (r *Runtime) captureForensics(kind ViolationKind, addr uint64, class string, classHash, layoutID uint64, field int, site string, meta *ObjectMeta) {
	fv := flight.Violation{
		Kind: kind.String(), Addr: addr, Class: class,
		ClassHash: classHash, LayoutID: layoutID, Field: field, Site: site,
	}
	victim := addr
	if meta != nil {
		victim = meta.Base
	}
	var neighbors []flight.Neighbor
	if c := r.curCall; c != nil && c.VM != nil && c.VM.Heap != nil {
		h := c.VM.Heap
		if base, _, _, ok := h.FindChunk(addr); ok {
			victim = base
		}
		for _, ci := range h.Adjacent(victim, neighborhoodRadius) {
			n := flight.Neighbor{Base: ci.Base, Size: ci.Size, Live: ci.Live, Victim: ci.Base == victim}
			if m, ok := r.store.Lookup(ci.Base); ok {
				n.Class = r.className(m.ClassHash)
				n.Freed = m.Freed
				if m.Layout != nil {
					n.LayoutID = m.Layout.Hash()
				}
			}
			neighbors = append(neighbors, n)
		}
	}
	r.cfg.Flight.CaptureViolation(fv, victim, neighbors)
}
