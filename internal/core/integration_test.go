package core_test

import (
	"errors"
	"testing"

	"polar/internal/classinfo"
	"polar/internal/core"
	"polar/internal/instrument"
	"polar/internal/ir"
	"polar/internal/layout"
	"polar/internal/vm"
)

// buildPeopleModule constructs the paper's Fig. 1 example: a People
// class with a vtable pointer, age and height, allocated on the heap,
// written through fieldptr and read back.
func buildPeopleModule(t testing.TB) *ir.Module {
	t.Helper()
	m := ir.NewModule("people")
	people := m.MustStruct(ir.NewStruct("People",
		ir.Field{Name: "vtable", Type: ir.Fptr},
		ir.Field{Name: "age", Type: ir.I32},
		ir.Field{Name: "height", Type: ir.I32},
	))
	b := ir.NewFunc(m, "main", ir.I64)
	p := b.Alloc(people)
	hf := b.FieldPtrName(people, p, "height")
	b.Store(ir.I32, ir.Const(17), hf)
	af := b.FieldPtrName(people, p, "age")
	b.Store(ir.I32, ir.Const(42), af)
	h := b.Load(ir.I32, b.FieldPtrName(people, p, "height"))
	a := b.Load(ir.I32, b.FieldPtrName(people, p, "age"))
	sum := b.Bin(ir.BinAdd, h, a)
	b.Free(p)
	b.Ret(sum)
	if err := ir.Validate(m); err != nil {
		t.Fatalf("module invalid: %v", err)
	}
	return m
}

func hardened(t testing.TB, m *ir.Module, seed int64) (*vm.VM, *core.Runtime) {
	t.Helper()
	res, err := instrument.Apply(m, nil)
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	v, err := vm.New(res.Module)
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	rt := core.New(res.Table, core.DefaultConfig(seed))
	rt.Attach(v)
	return v, rt
}

func TestEndToEndSameResult(t *testing.T) {
	m := buildPeopleModule(t)

	base, err := vm.New(ir.Clone(m))
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	want, err := base.Run()
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	if want != 59 {
		t.Fatalf("baseline result = %d, want 59", want)
	}

	for seed := int64(1); seed <= 20; seed++ {
		v, _ := hardened(t, m, seed)
		got, err := v.Run()
		if err != nil {
			t.Fatalf("seed %d: hardened run: %v", seed, err)
		}
		if got != want {
			t.Fatalf("seed %d: hardened result = %d, want %d", seed, got, want)
		}
	}
}

func TestPerAllocationLayoutsDiffer(t *testing.T) {
	// Allocate many instances of the same type in one run and check the
	// layouts are not all identical — the property OLR lacks (§III.B).
	m := ir.NewModule("multi")
	obj := m.MustStruct(ir.NewStruct("Obj",
		ir.Field{Name: "fp", Type: ir.Fptr},
		ir.Field{Name: "a", Type: ir.I64},
		ir.Field{Name: "b", Type: ir.I64},
		ir.Field{Name: "c", Type: ir.I32},
		ir.Field{Name: "d", Type: ir.I32},
	))
	bd := ir.NewFunc(m, "main", ir.I64)
	keep := bd.Local(ir.ArrayOf(ir.I64, 64))
	bd.CountedLoop("alloc", ir.Const(64), func(i ir.Value) {
		p := bd.Alloc(obj)
		slot := bd.ElemPtr(ir.I64, keep, i)
		bd.Store(ir.I64, p, slot)
	})
	bd.Ret(ir.Const(0))

	res, err := instrument.Apply(m, nil)
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	v, err := vm.New(res.Module)
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	rt := core.New(res.Table, core.DefaultConfig(7))
	rt.Attach(v)
	if _, err := v.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}

	st := rt.Stats()
	if st.Allocs != 64 {
		t.Fatalf("allocs = %d, want 64", st.Allocs)
	}
	// The metadata store should show fewer unique layouts than
	// registrations only by chance; with 6-7 items the space is huge.
	if st.Meta.LayoutsUnique < 16 {
		t.Errorf("unique layouts = %d; per-allocation randomization looks broken", st.Meta.LayoutsUnique)
	}
}

func TestBoobyTrapDetectsOverflow(t *testing.T) {
	// Linear overflow from a buffer member into the object must corrupt
	// the canary in front of the function pointer with high probability.
	m := ir.NewModule("overflow")
	victim := m.MustStruct(ir.NewStruct("Victim",
		ir.Field{Name: "buf", Type: ir.ArrayOf(ir.I8, 16)},
		ir.Field{Name: "handler", Type: ir.Fptr},
	))
	bd := ir.NewFunc(m, "main", ir.I64)
	p := bd.Alloc(victim)
	bufp := bd.FieldPtrName(victim, p, "buf")
	// Overflow: write 64 bytes of 0x41 from the buffer start.
	bd.Memset(bufp, ir.Const(0x41), ir.Const(64))
	bd.Free(p) // trap check happens here
	bd.Ret(ir.Const(0))

	detected := 0
	for seed := int64(1); seed <= 30; seed++ {
		v, rt := hardened(t, m, seed)
		_, err := v.Run()
		if err != nil {
			var viol *core.Violation
			if !errors.As(err, &viol) {
				t.Fatalf("seed %d: unexpected error: %v", seed, err)
			}
			if viol.Kind != core.ViolationTrap {
				t.Fatalf("seed %d: violation kind = %v, want trap", seed, viol.Kind)
			}
			detected++
		}
		_ = rt
	}
	if detected == 0 {
		t.Fatal("overflow never detected by booby traps across 30 seeds")
	}
}

func TestUseAfterFreeDetected(t *testing.T) {
	m := ir.NewModule("uaf")
	obj := m.MustStruct(ir.NewStruct("S",
		ir.Field{Name: "x", Type: ir.I64},
		ir.Field{Name: "y", Type: ir.I64},
	))
	bd := ir.NewFunc(m, "main", ir.I64)
	p := bd.Alloc(obj)
	bd.Free(p)
	f := bd.FieldPtrName(obj, p, "y") // dangling access
	v := bd.Load(ir.I64, f)
	bd.Ret(v)

	vmach, _ := hardened(t, m, 3)
	_, err := vmach.Run()
	var viol *core.Violation
	if !errors.As(err, &viol) {
		t.Fatalf("expected violation, got %v", err)
	}
	if viol.Kind != core.ViolationUAF {
		t.Fatalf("violation kind = %v, want use-after-free", viol.Kind)
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	m := ir.NewModule("df")
	obj := m.MustStruct(ir.NewStruct("S", ir.Field{Name: "x", Type: ir.I64}))
	bd := ir.NewFunc(m, "main", ir.I64)
	p := bd.Alloc(obj)
	bd.Free(p)
	bd.Free(p)
	bd.Ret(ir.Const(0))

	v, _ := hardened(t, m, 3)
	_, err := v.Run()
	var viol *core.Violation
	if !errors.As(err, &viol) {
		t.Fatalf("expected violation, got %v", err)
	}
	if viol.Kind != core.ViolationDoubleFree {
		t.Fatalf("violation kind = %v, want double-free", viol.Kind)
	}
}

func TestMemcpyRerandomizesCopy(t *testing.T) {
	// Copy an object into a raw chunk; the copy must become a tracked,
	// independently-randomized object whose members read back correctly.
	m := ir.NewModule("copy")
	obj := m.MustStruct(ir.NewStruct("S",
		ir.Field{Name: "a", Type: ir.I64},
		ir.Field{Name: "b", Type: ir.I64},
		ir.Field{Name: "c", Type: ir.I64},
	))
	bd := ir.NewFunc(m, "main", ir.I64)
	src := bd.Alloc(obj)
	bd.Store(ir.I64, ir.Const(111), bd.FieldPtrName(obj, src, "a"))
	bd.Store(ir.I64, ir.Const(222), bd.FieldPtrName(obj, src, "b"))
	bd.Store(ir.I64, ir.Const(333), bd.FieldPtrName(obj, src, "c"))
	dst := bd.Alloc(ir.ArrayOf(ir.I8, 96)) // raw chunk, big enough
	bd.Memcpy(dst, src, ir.Const(int64(obj.Size())))
	// Read the copy's fields through the instrumented path: mov dst to a
	// struct-typed use by calling fieldptr on it directly.
	c := bd.Load(ir.I64, bd.FieldPtrName(obj, dst, "c"))
	b2 := bd.Load(ir.I64, bd.FieldPtrName(obj, dst, "b"))
	sum := bd.Bin(ir.BinAdd, c, b2)
	bd.Ret(sum)

	for seed := int64(1); seed <= 10; seed++ {
		v, rt := hardened(t, m, seed)
		got, err := v.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got != 555 {
			t.Fatalf("seed %d: got %d, want 555", seed, got)
		}
		if rt.Stats().Memcpys != 1 {
			t.Fatalf("seed %d: memcpys = %d, want 1", seed, rt.Stats().Memcpys)
		}
	}
}

func TestStaticFallbackForStackObjects(t *testing.T) {
	// A stack instance of a randomized class is not heap-tracked; the
	// instrumented getptr must fall back to the static layout.
	m := ir.NewModule("stack")
	obj := m.MustStruct(ir.NewStruct("S",
		ir.Field{Name: "a", Type: ir.I64},
		ir.Field{Name: "b", Type: ir.I64},
	))
	bd := ir.NewFunc(m, "main", ir.I64)
	p := bd.Local(obj)
	bd.Store(ir.I64, ir.Const(5), bd.FieldPtrName(obj, p, "b"))
	v := bd.Load(ir.I64, bd.FieldPtrName(obj, p, "b"))
	bd.Ret(v)

	vmach, _ := hardened(t, m, 9)
	got, err := vmach.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 5 {
		t.Fatalf("got %d, want 5", got)
	}
}

func TestCacheHitsAccumulate(t *testing.T) {
	m := ir.NewModule("cache")
	obj := m.MustStruct(ir.NewStruct("S",
		ir.Field{Name: "a", Type: ir.I64},
		ir.Field{Name: "n", Type: ir.I64},
	))
	bd := ir.NewFunc(m, "main", ir.I64)
	p := bd.Alloc(obj)
	bd.Store(ir.I64, ir.Const(0), bd.FieldPtrName(obj, p, "n"))
	bd.CountedLoop("hot", ir.Const(1000), func(i ir.Value) {
		f := bd.FieldPtrName(obj, p, "n")
		v := bd.Load(ir.I64, f)
		bd.Store(ir.I64, bd.Bin(ir.BinAdd, v, ir.Const(1)), f)
	})
	r := bd.Load(ir.I64, bd.FieldPtrName(obj, p, "n"))
	bd.Ret(r)

	v, rt := hardened(t, m, 4)
	got, err := v.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 1000 {
		t.Fatalf("got %d, want 1000", got)
	}
	st := rt.Stats()
	if st.CacheHits == 0 {
		t.Fatal("no cache hits recorded in hot member-access loop")
	}
	if st.CacheHits+st.CacheMisses != st.MemberAccess {
		t.Fatalf("hits(%d)+misses(%d) != accesses(%d)", st.CacheHits, st.CacheMisses, st.MemberAccess)
	}
}

func TestLayoutEntropyPositive(t *testing.T) {
	bits := layout.EntropyBits(6, 1, layout.DefaultConfig())
	if bits < 8 {
		t.Fatalf("entropy = %f bits for 6-field class, want >= 8", bits)
	}
}

func TestClassHashStability(t *testing.T) {
	a := ir.NewStruct("X", ir.Field{Name: "p", Type: ir.Fptr}, ir.Field{Name: "v", Type: ir.I32})
	b := ir.NewStruct("X", ir.Field{Name: "p", Type: ir.Fptr}, ir.Field{Name: "v", Type: ir.I32})
	c := ir.NewStruct("Y", ir.Field{Name: "p", Type: ir.Fptr}, ir.Field{Name: "v", Type: ir.I32})
	if classinfo.HashOf(a) != classinfo.HashOf(b) {
		t.Error("identical declarations must hash equal")
	}
	if classinfo.HashOf(a) == classinfo.HashOf(c) {
		t.Error("different class names must hash differently")
	}
}
