package core

import (
	"fmt"

	"polar/internal/classinfo"
	"polar/internal/ir"
	"polar/internal/layout"
	"polar/internal/telemetry"
	"polar/internal/telemetry/exectrace"
	"polar/internal/vm"
)

// epochMix spreads the re-randomization epoch across the SipHash key's
// second half so consecutive epochs select unrelated permutations.
const epochMix = 0x9e3779b97f4a7c15

// derivedEntry is one slot of the direct-mapped derivation memo.
// Derivation is a pure function of (key, epoch, class, base), so an
// evicted or missing entry is simply recomputed. A populated entry is
// additionally a liveness witness: it is only written while base is
// tracked as that class and is cleared on free (FinishFree), so a hit
// lets the resolve hot path skip the VM type-map lookup entirely — the
// stateless analogue of the metadata strategy's offset-cache hit.
type derivedEntry struct {
	base  uint64
	class uint64
	epoch uint64
	l     *layout.Layout
}

// statelessResolver derives each object's permutation from a SipHash of
// its base address under (seed, epoch) at access time — SPAM's design
// point (arXiv 2007.13808): no MetaStore record, no offset-cache probe,
// zero metadata bytes per live object. Objects are identified through
// the VM's type-tracking map (which both engines maintain identically),
// and chunks are sized by layout.MaxSize so every epoch's layout fits
// the same slab, which is what makes epoch-rekey remapping safe.
//
// Detection matrix (see DESIGN.md §12): bad-class, type confusion,
// booby traps, bad free and double free (via allocator liveness) still
// fire; UAF detection needs the ghost records only the metadata
// strategy keeps, and metadata-integrity seals have no metadata to
// seal — Config.DetectUAF and Config.MetadataIntegrity are therefore
// inert in this mode (documented, not silently skipped: New rejects no
// configuration, but a dangling access degrades to the static-fallback
// arm instead of a ViolationUAF).
type statelessResolver struct {
	rt *Runtime

	// k0/k1 are the SipHash key halves, drawn from the seeded run RNG;
	// the current epoch is folded into k1 at derivation time.
	k0, k1 uint64
	epoch  uint64

	// rekeyEvery triggers a global epoch advance (and live-object remap)
	// after that many instrumented frees; 0 disables rekeying.
	rekeyEvery uint64
	freeCount  uint64
	rekeys     uint64

	// Direct-mapped derivation memo (one entry covers every field of an
	// object, unlike the per-(base, field) offset cache). Sized like the
	// offset cache from Config.CacheSize; nil when the cache is disabled.
	memo     []derivedEntry
	memoMask uint64

	// maxSizes caches the per-class slab bound (layout.MaxSize).
	maxSizes map[uint64]int
}

func newStatelessResolver(r *Runtime) *statelessResolver {
	s := &statelessResolver{
		rt:       r,
		k0:       r.rng.Uint64(),
		k1:       r.rng.Uint64(),
		maxSizes: make(map[uint64]int),
	}
	if r.cfg.RekeyEvery > 0 {
		s.rekeyEvery = uint64(r.cfg.RekeyEvery)
	}
	if n := r.cfg.CacheSize; n > 0 {
		p := 1
		for p < n {
			p <<= 1
		}
		s.memo = make([]derivedEntry, p)
		s.memoMask = uint64(p - 1)
	}
	return s
}

func (s *statelessResolver) Mode() LayoutMode { return LayoutModeStateless }

// maxSize returns the class's slab bound: the chunk every stateless
// allocation of cls gets, large enough for the layout any (key, epoch,
// base) derives.
func (s *statelessResolver) maxSize(cls *classinfo.Class) int {
	if v, ok := s.maxSizes[cls.Hash]; ok {
		return v
	}
	fields, _ := fieldsOf(cls)
	v := layout.MaxSize(fields, s.rt.layoutConfigFor(cls))
	s.maxSizes[cls.Hash] = v
	return v
}

// deriveRaw recomputes the layout of (cls, base) under the given epoch
// with no telemetry side effects — the rekey path uses it to recover
// the outgoing epoch's layout.
func (s *statelessResolver) deriveRaw(cls *classinfo.Class, base, epoch uint64) (*layout.Layout, error) {
	cfg := s.rt.layoutConfigFor(cls)
	fields, _ := fieldsOf(cls)
	return layout.GenerateKeyed(fields, cfg, s.k0, s.k1^(epoch*epochMix), base^cls.Hash)
}

// layoutFor returns the current-epoch layout of (cls, base), memoized.
// A memo miss re-derives and re-emits the layout-generation telemetry —
// deterministically, since eviction order is a pure function of the
// access sequence.
func (s *statelessResolver) layoutFor(cls *classinfo.Class, base uint64) (*layout.Layout, error) {
	var e *derivedEntry
	if s.memo != nil {
		e = &s.memo[s.memoIdx(base)]
		if e.l != nil && e.base == base && e.class == cls.Hash && e.epoch == s.epoch {
			return e.l, nil
		}
	}
	l, err := s.deriveRaw(cls, base, s.epoch)
	if err != nil {
		return nil, err
	}
	r := s.rt
	_, nFptrs := fieldsOf(cls)
	r.noteLayoutGen(cls, r.layoutConfigFor(cls), nFptrs, l)
	if e != nil {
		*e = derivedEntry{base: base, class: cls.Hash, epoch: s.epoch, l: l}
	}
	return l, nil
}

// memoIdx maps a base address to its direct-mapped memo slot.
func (s *statelessResolver) memoIdx(base uint64) uint64 {
	h := base * 0x9e3779b97f4a7c15
	h ^= h >> 29
	return h & s.memoMask
}

// memoHit returns the memoized current-epoch layout when the slot
// witnesses (base, class) as live, nil otherwise.
func (s *statelessResolver) memoHit(base, class uint64) *layout.Layout {
	if s.memo == nil {
		return nil
	}
	e := &s.memo[s.memoIdx(base)]
	if e.l != nil && e.base == base && e.class == class && e.epoch == s.epoch {
		return e.l
	}
	return nil
}

// managed reports whether base is a live object this strategy lays out:
// a VM-tracked struct whose class is in the hardening table. Raw
// allocations of untable'd classes and non-heap memory fall out here
// and take the static arm, mirroring the metadata strategy's
// unregistered-object behavior.
func (s *statelessResolver) managed(v *vm.VM, base uint64) (*classinfo.Class, *layout.Layout, error) {
	st, ok := v.ObjectType(base)
	if !ok || st == nil {
		return nil, nil, nil
	}
	cls, ok := s.rt.table.ByName(st.Name)
	if !ok || cls.Struct != st {
		return nil, nil, nil
	}
	l, err := s.layoutFor(cls, base)
	if err != nil {
		return nil, nil, err
	}
	return cls, l, nil
}

// Resolve recomputes the member offset from the keyed hash — probe
// length 0: no metadata structure is consulted on any arm of this
// ladder (the static fallback observes 3, keeping the static-arm bucket
// meaning consistent across strategies).
func (s *statelessResolver) Resolve(v *vm.VM, base uint64, field int, classHash uint64) (int, exectrace.Resolution, error) {
	r := s.rt
	cls, found := r.table.ByHash(classHash)
	if !found {
		if r.tel != nil {
			r.histProbe.Observe(3)
			r.tel.Emit(telemetry.Event{Kind: telemetry.EvFieldMiss, Addr: base, Class: classHash, Field: field})
		}
		if err := r.violate(ViolationBadClass, base, classHash, nil); err != nil {
			return 0, 0, err
		}
		return 0, exectrace.ResStatic, nil
	}
	// Hot path: the memo witnesses (base, cls) live in this epoch — no
	// VM type-map lookup, no derivation, just the memoized permutation.
	if l := s.memoHit(base, classHash); l != nil {
		if field < 0 || field >= len(l.Offsets) {
			if r.tel != nil {
				r.histProbe.Observe(0)
				r.tel.Emit(telemetry.Event{Kind: telemetry.EvFieldMiss, Addr: base, Class: classHash, Field: field})
			}
			return 0, exectrace.ResStatic, nil
		}
		if r.tel != nil {
			r.histProbe.Observe(0)
			r.tel.Emit(telemetry.Event{Kind: telemetry.EvFieldHit, Addr: base, Class: classHash, Field: field})
		}
		// The memo witnessed (base, class) live this epoch — the same
		// clean-resolution guarantee the inline cache needs.
		r.curCall.Memoize(int64(l.Offsets[field]))
		return l.Offsets[field], exectrace.ResStateless, nil
	}
	st, tracked := v.ObjectType(base)
	if !tracked || st == nil || (cls.Struct != st && !s.inTable(st)) {
		// Untracked object: the compiler's static layout, same as the
		// metadata strategy's unregistered arm. A dangling pointer also
		// lands here — stateless mode keeps no ghost records, so this is
		// where UAF detection degrades (DESIGN.md §12).
		if r.tel != nil {
			r.histProbe.Observe(3)
			r.tel.Emit(telemetry.Event{Kind: telemetry.EvFieldMiss, Addr: base, Class: classHash, Field: field})
		}
		if field < 0 || field >= len(cls.Members) {
			return 0, 0, fmt.Errorf("polar: field %d out of range for %s", field, cls.Name())
		}
		return cls.Members[field].StaticOffset, exectrace.ResStatic, nil
	}
	if cls.Struct != st {
		// The access site was compiled against a different class than
		// the allocation's tracked type — type confusion, caught without
		// any metadata because the VM's type map is the discriminator.
		actual, ok := r.table.ByName(st.Name)
		if !ok {
			return 0, 0, fmt.Errorf("polar: tracked type %s not in table", st.Name)
		}
		l, err := s.layoutFor(actual, base)
		if err != nil {
			return 0, 0, err
		}
		if r.tel != nil {
			r.histProbe.Observe(0)
			r.tel.Emit(telemetry.Event{Kind: telemetry.EvFieldMiss, Addr: base, Class: classHash, Field: field})
		}
		if err := r.violate(ViolationTypeConfusion, base, actual.Hash, nil); err != nil {
			return 0, 0, err
		}
		// Warn policy: resolve against the actual object's derived
		// layout — the confused access touches whatever that permutation
		// put at this index (§III.B.2's nondeterminism).
		if field < 0 || field >= len(l.Offsets) {
			return 0, exectrace.ResStatic, nil
		}
		return l.Offsets[field], exectrace.ResStateless, nil
	}
	// Clean path: the expected class IS the tracked type (pointer
	// identity — no name lookup on the hot path).
	l, err := s.layoutFor(cls, base)
	if err != nil {
		return 0, 0, err
	}
	if field < 0 || field >= len(l.Offsets) {
		// Confused index beyond the member count: land on the base,
		// mirroring the metadata strategy.
		if r.tel != nil {
			r.histProbe.Observe(0)
			r.tel.Emit(telemetry.Event{Kind: telemetry.EvFieldMiss, Addr: base, Class: classHash, Field: field})
		}
		return 0, exectrace.ResStatic, nil
	}
	if r.tel != nil {
		r.histProbe.Observe(0)
		r.tel.Emit(telemetry.Event{Kind: telemetry.EvFieldHit, Addr: base, Class: classHash, Field: field})
	}
	// Clean tracked resolution. Gate on the memo so the nocache ablation
	// arm stays inline-cache-free, mirroring the metadata strategy.
	if s.memo != nil {
		r.curCall.Memoize(int64(l.Offsets[field]))
	}
	return l.Offsets[field], exectrace.ResStateless, nil
}

// inTable reports whether a tracked struct type is one this strategy
// lays out (identical to managed()'s discriminator, without deriving).
func (s *statelessResolver) inTable(st *ir.StructType) bool {
	cls, ok := s.rt.table.ByName(st.Name)
	return ok && cls.Struct == st
}

// Alloc carves a MaxSize slab — the address does not exist before the
// allocation, so the chunk must fit whatever layout the address then
// selects (and every later epoch's, for rekeying).
func (s *statelessResolver) Alloc(v *vm.VM, cls *classinfo.Class) (uint64, *layout.Layout, error) {
	base, err := v.Heap.Alloc(s.maxSize(cls))
	if err != nil {
		return 0, nil, err
	}
	l, err := s.layoutFor(cls, base)
	if err != nil {
		return 0, nil, fmt.Errorf("polar: layout for %s: %w", cls.Name(), err)
	}
	return base, l, nil
}

// BeginFree validates against the allocator itself — the only
// authority this strategy has. An address that was never a chunk is a
// bad free; a chunk that is no longer live is a double free (until the
// allocator recycles it, the same aliasing window the metadata
// strategy has once a ghost's base is re-registered).
func (s *statelessResolver) BeginFree(v *vm.VM, base uint64) (*layout.Layout, uint64, bool, error) {
	r := s.rt
	_, live, ok := v.Heap.SizeOf(base)
	if !ok {
		return nil, 0, false, r.violate(ViolationBadFree, base, 0, nil)
	}
	if !live {
		return nil, 0, false, r.violate(ViolationDoubleFree, base, 0, nil)
	}
	cls, l, err := s.managed(v, base)
	if err != nil {
		return nil, 0, false, err
	}
	if l == nil {
		// A live chunk the strategy does not lay out (raw allocation):
		// plain free, no sweep, no violation — the allocator vouches
		// for it.
		return nil, 0, true, nil
	}
	if bad, err := r.checkTraps(v, base, l); err != nil {
		return nil, 0, false, err
	} else if bad >= 0 {
		if verr := r.violateWith(ViolationTrap, base+uint64(bad), cls.Hash, l.Hash(), nil); verr != nil {
			return nil, 0, false, verr
		}
	}
	return l, cls.Hash, true, nil
}

// FinishFree clears the dying object's memo slot. Not for derivation
// correctness (a recycled base re-derives the same layout anyway) but
// for the liveness witness: a populated slot lets Resolve skip the VM
// type-map check, so it must never outlive the object it vouches for.
func (s *statelessResolver) FinishFree(v *vm.VM, base uint64) error {
	if s.memo != nil {
		if e := &s.memo[s.memoIdx(base)]; e.base == base {
			e.l = nil
		}
	}
	return nil
}

// AfterFree advances the epoch-rekey schedule. It runs after the chunk
// is back in the allocator, so a triggered rekey only remaps objects
// that are still alive.
func (s *statelessResolver) AfterFree(v *vm.VM) error {
	if s.rekeyEvery == 0 {
		return nil
	}
	s.freeCount++
	if s.freeCount%s.rekeyEvery != 0 {
		return nil
	}
	_, err := s.Rerandomize(v)
	return err
}

// Rerandomize advances the derivation epoch and remaps every live
// managed object from its outgoing layout to the incoming one — the
// stateless replacement for per-object ghost layouts: instead of
// remembering what a dangling pointer would see, the whole heap moves
// out from under it. The walk is in ascending base order, so the event
// and trace streams stay deterministic at any -parallel width.
func (s *statelessResolver) Rerandomize(v *vm.VM) (bool, error) {
	r := s.rt
	oldEpoch := s.epoch
	s.epoch++
	s.rekeys++
	// Every derived offset changes with the epoch: invalidate all
	// inline-cache entries before any object moves.
	r.layoutGen++
	for _, base := range v.TrackedBases() {
		st, ok := v.ObjectType(base)
		if !ok || st == nil {
			continue
		}
		cls, ok := r.table.ByName(st.Name)
		if !ok || cls.Struct != st {
			continue // raw allocation: not ours to move
		}
		ol, err := s.deriveRaw(cls, base, oldEpoch)
		if err != nil {
			return false, err
		}
		nl, err := s.layoutFor(cls, base)
		if err != nil {
			return false, err
		}
		if ol.Hash() != nl.Hash() {
			// Snapshot every member under the outgoing layout first —
			// old and new positions overlap arbitrarily.
			imgs := make([][]byte, len(cls.Members))
			for i, m := range cls.Members {
				b, err := v.Mem.ReadBytes(base+uint64(ol.Offsets[i]), m.Size)
				if err != nil {
					return false, err
				}
				imgs[i] = b
			}
			for i := range cls.Members {
				if err := v.Mem.WriteBytes(base+uint64(nl.Offsets[i]), imgs[i]); err != nil {
					return false, err
				}
			}
		}
		if err := r.armTraps(v, base, nl); err != nil {
			return false, err
		}
		if r.tel != nil {
			r.tel.Emit(telemetry.Event{
				Kind: telemetry.EvMemcpyRerand, Addr: base, Size: nl.TotalSize,
				Class: cls.Hash, Layout: nl.Hash(), Detail: cls.Name(),
			})
		}
	}
	return true, nil
}

// Memcpy mirrors the metadata strategy's §IV.A.2 semantics with derived
// layouts. RerandomizeOnCopy has no meaning here: the destination's
// layout is always the one its own address derives — re-randomization
// on copy is inherent, not optional.
func (s *statelessResolver) Memcpy(v *vm.VM, dst, src uint64, n int, classHash uint64) error {
	r := s.rt
	srcCls, srcL, err := s.managed(v, src)
	if err != nil {
		return err
	}
	if srcL == nil {
		// Raw source; if the destination is managed we must write
		// member-wise into its derived layout from a static-layout
		// source image.
		dstCls, dstL, err := s.managed(v, dst)
		if err != nil {
			return err
		}
		if dstL != nil {
			return r.copyStaticToRandom(v, dst, dstL, dstCls, src)
		}
		return v.Mem.Copy(dst, src, n)
	}
	if bad, err := r.checkTraps(v, src, srcL); err != nil {
		return err
	} else if bad >= 0 {
		if verr := r.violateWith(ViolationTrap, src+uint64(bad), srcCls.Hash, srcL.Hash(), nil); verr != nil {
			return verr
		}
	}
	dstCls, dstL, err := s.managed(v, dst)
	if err != nil {
		return err
	}
	if dstL != nil {
		if dstCls.Hash != srcCls.Hash {
			// Type-confused write, same as the metadata strategy.
			if err := r.violateWith(ViolationTypeConfusion, dst, dstCls.Hash, dstL.Hash(), nil); err != nil {
				return err
			}
			// Warn policy: the raw copy the unprotected program would do.
			return v.Mem.Copy(dst, src, n)
		}
		return r.copyMemberwise(v, dst, dstL, src, srcL, srcCls)
	}
	// Untracked destination. Adopt it only when the chunk can hold any
	// epoch's layout (the rekey invariant); otherwise copy out to the
	// static layout so static-arm accesses still resolve.
	if size, live, isChunk := v.Heap.SizeOf(dst); isChunk && live && size >= s.maxSize(srcCls) {
		v.TrackObject(dst, srcCls.Struct)
		r.layoutGen++ // dst's resolution path changed (static -> derived)
		dl, err := s.layoutFor(srcCls, dst)
		if err != nil {
			return err
		}
		r.noteLiveObject()
		if err := r.armTraps(v, dst, dl); err != nil {
			return err
		}
		if r.tel != nil {
			r.tel.Emit(telemetry.Event{
				Kind: telemetry.EvMemcpyRerand, Addr: dst, Size: n,
				Class: srcCls.Hash, Layout: dl.Hash(), Detail: srcCls.Name(),
			})
		}
		return r.copyMemberwise(v, dst, dl, src, srcL, srcCls)
	}
	return r.copyRandomToStatic(v, dst, src, srcL, srcCls)
}

// Check sweeps a managed object's derived booby traps.
func (s *statelessResolver) Check(v *vm.VM, base uint64) (int64, error) {
	r := s.rt
	cls, l, err := s.managed(v, base)
	if err != nil {
		return 0, err
	}
	if l == nil {
		return 1, nil
	}
	bad, err := r.checkTraps(v, base, l)
	if err != nil {
		return 0, err
	}
	if bad < 0 {
		return 1, nil
	}
	if verr := r.violateWith(ViolationTrap, base+uint64(bad), cls.Hash, l.Hash(), nil); verr != nil {
		return 0, verr
	}
	return 0, nil
}

// MetadataBytes is identically zero — the whole point. The derivation
// memo is a fixed-size cache that does not grow with the live-object
// population, so it does not count as per-object metadata.
func (s *statelessResolver) MetadataBytes() uint64 { return 0 }

// Epoch returns the current re-randomization epoch (tests, stats).
func (s *statelessResolver) Epoch() uint64 { return s.epoch }

// Rekeys returns how many epoch advances have run.
func (s *statelessResolver) Rekeys() uint64 { return s.rekeys }
