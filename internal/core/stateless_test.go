package core

import (
	"reflect"
	"testing"

	"polar/internal/telemetry"
)

// statelessHarness is newViolationHarness with the stateless resolver
// selected (and optionally a rekey schedule).
func statelessHarness(t *testing.T, rekeyEvery int, mod func(*Config)) *violationHarness {
	t.Helper()
	return newViolationHarness(t, func(c *Config) {
		c.LayoutMode = LayoutModeStateless
		c.RekeyEvery = rekeyEvery
		if mod != nil {
			mod(c)
		}
	})
}

// resolveAll returns the resolved address of every member of class hash
// on the object at base.
func resolveAll(t *testing.T, h *violationHarness, base, hash uint64, nFields int) []int64 {
	t.Helper()
	out := make([]int64, nFields)
	for f := 0; f < nFields; f++ {
		addr, err := h.r.olrGetptr(h.v, base, f, hash)
		if err != nil {
			t.Fatalf("olrGetptr(field %d): %v", f, err)
		}
		out[f] = addr
	}
	return out
}

// TestStatelessResolveDeterministic: the derivation is a pure function
// of (seed, epoch, class, base) — repeated resolution of the same object
// is stable, an identically-seeded runtime reproduces it exactly, and no
// metadata structure is ever consulted (MetaProbes == 0, zero metadata
// bytes, empty store).
func TestStatelessResolveDeterministic(t *testing.T) {
	h1 := statelessHarness(t, 0, nil)
	h2 := statelessHarness(t, 0, nil)

	base1 := h1.alloc(h1.hashA)
	base2 := h2.alloc(h2.hashA)
	if base1 != base2 {
		t.Fatalf("same seed allocated different bases: %#x vs %#x", base1, base2)
	}
	got1 := resolveAll(t, h1, base1, h1.hashA, 3)
	got2 := resolveAll(t, h2, base2, h2.hashA, 3)
	if !reflect.DeepEqual(got1, got2) {
		t.Fatalf("same seed resolved different offsets: %v vs %v", got1, got2)
	}
	// Repeated resolution is stable (memo hit or re-derivation — same answer).
	if again := resolveAll(t, h1, base1, h1.hashA, 3); !reflect.DeepEqual(again, got1) {
		t.Fatalf("re-resolution drifted: %v vs %v", again, got1)
	}
	// Distinct members land at distinct addresses.
	seen := map[int64]bool{}
	for _, a := range got1 {
		if seen[a] {
			t.Fatalf("two members resolved to the same address: %v", got1)
		}
		seen[a] = true
	}

	st := h1.r.Stats()
	if st.MetaProbes != 0 {
		t.Fatalf("MetaProbes = %d, want 0 in stateless mode", st.MetaProbes)
	}
	if st.CacheHits != 0 || st.CacheMisses != 0 {
		t.Fatalf("offset cache touched (hits=%d misses=%d) in stateless mode", st.CacheHits, st.CacheMisses)
	}
	if got := h1.r.Resolver().MetadataBytes(); got != 0 {
		t.Fatalf("MetadataBytes() = %d, want 0", got)
	}
	if got := h1.r.MetadataBytesPerLiveObject(); got != 0 {
		t.Fatalf("MetadataBytesPerLiveObject() = %v, want 0", got)
	}
	if live, total := h1.r.Store().Counts(); live != 0 || total != 0 {
		t.Fatalf("MetaStore populated (live=%d total=%d) in stateless mode", live, total)
	}
	if mode := h1.r.Resolver().Mode(); mode != LayoutModeStateless {
		t.Fatalf("resolver mode = %v", mode)
	}
}

// TestStatelessDistinctObjectsDistinctLayouts: two same-class objects at
// different bases usually derive different permutations — the point of
// keying the hash on the address. With only a handful of draws this is
// probabilistic, so the assertion is over several objects.
func TestStatelessDistinctObjectsDistinctLayouts(t *testing.T) {
	h := statelessHarness(t, 0, nil)
	s := h.r.resolver.(*statelessResolver)
	cls, ok := h.r.table.ByHash(h.hashA)
	if !ok {
		t.Fatal("class A missing")
	}
	seen := map[uint64]bool{}
	for i := 0; i < 16; i++ {
		base := h.alloc(h.hashA)
		l, err := s.layoutFor(cls, base)
		if err != nil {
			t.Fatalf("layoutFor: %v", err)
		}
		seen[l.Hash()] = true
	}
	if len(seen) < 2 {
		t.Fatalf("16 objects all derived the same layout — address not keyed in")
	}
}

// TestStatelessDetectionMatrix pins which ViolationKinds still fire
// without metadata (DESIGN.md §12): bad-class, bad-free, double-free,
// type-confusion and booby traps are caught; a use-after-free access
// instead degrades silently to the static-fallback arm.
func TestStatelessDetectionMatrix(t *testing.T) {
	cases := []struct {
		kind    ViolationKind
		trigger func(t *testing.T, h *violationHarness) error
		check   func(t *testing.T, h *violationHarness, rec ViolationRecord)
	}{
		{
			kind: ViolationBadClass,
			trigger: func(t *testing.T, h *violationHarness) error {
				_, err := h.r.olrMalloc(h.v, 0xdead)
				return err
			},
			check: func(t *testing.T, h *violationHarness, rec ViolationRecord) {
				if rec.Addr != 0 || rec.ClassHash != 0xdead {
					t.Fatalf("record = %+v", rec)
				}
			},
		},
		{
			kind: ViolationBadFree,
			trigger: func(t *testing.T, h *violationHarness) error {
				return h.r.olrFree(h.v, 0x12345)
			},
			check: func(t *testing.T, h *violationHarness, rec ViolationRecord) {
				// No allocator chunk at this address, and no metadata to
				// name a class: the record carries the address alone.
				if rec.Addr != 0x12345 || rec.ClassHash != 0 || rec.Class != "?" {
					t.Fatalf("record = %+v", rec)
				}
			},
		},
		{
			kind: ViolationDoubleFree,
			trigger: func(t *testing.T, h *violationHarness) error {
				base := h.alloc(h.hashA)
				if err := h.r.olrFree(h.v, base); err != nil {
					t.Fatalf("first free: %v", err)
				}
				return h.r.olrFree(h.v, base)
			},
			check: func(t *testing.T, h *violationHarness, rec ViolationRecord) {
				// The allocator knows the chunk is dead but not what class
				// lived there — liveness is the only authority in this mode.
				if rec.ClassHash != 0 || rec.Class != "?" {
					t.Fatalf("record = %+v", rec)
				}
			},
		},
		{
			kind: ViolationTypeConfusion,
			trigger: func(t *testing.T, h *violationHarness) error {
				base := h.alloc(h.hashA)
				_, err := h.r.olrGetptr(h.v, base, 0, h.hashB)
				return err
			},
			check: func(t *testing.T, h *violationHarness, rec ViolationRecord) {
				// Caught via the VM type map; the record carries the
				// ALLOCATION class, same forensic contract as metadata mode.
				if rec.ClassHash != h.hashA || rec.Class != "A" {
					t.Fatalf("record = %+v", rec)
				}
			},
		},
		{
			kind: ViolationTrap,
			trigger: func(t *testing.T, h *violationHarness) error {
				base := h.alloc(h.hashA)
				s := h.r.resolver.(*statelessResolver)
				cls, _ := h.r.table.ByHash(h.hashA)
				l, err := s.layoutFor(cls, base)
				if err != nil {
					t.Fatalf("layoutFor: %v", err)
				}
				off := -1
				for _, sl := range l.Slots {
					if sl.Trap {
						off = sl.Offset
						break
					}
				}
				if off < 0 {
					t.Fatal("no trap slot in derived layout")
				}
				cur, err := h.v.Mem.ReadU(base+uint64(off), 8)
				if err != nil {
					t.Fatalf("read canary: %v", err)
				}
				if err := h.v.Mem.WriteU(base+uint64(off), 8, cur^0xdeadbeef); err != nil {
					t.Fatalf("clobber canary: %v", err)
				}
				_, cerr := h.r.olrCheck(h.v, base)
				return cerr
			},
			check: func(t *testing.T, h *violationHarness, rec ViolationRecord) {
				if rec.ClassHash != h.hashA || rec.LayoutID == 0 {
					t.Fatalf("record = %+v", rec)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.kind.String(), func(t *testing.T) {
			h := statelessHarness(t, 0, nil)
			err := tc.trigger(t, h)
			rec := assertViolation(t, h, err, tc.kind)
			if tc.check != nil {
				tc.check(t, h, rec)
			}
		})
	}
}

// TestStatelessUAFDegradesToStaticArm: with no ghost records a dangling
// access cannot be flagged — it must resolve through the static fallback
// with NO violation, the documented degradation (Config.DetectUAF is
// inert in this mode).
func TestStatelessUAFDegradesToStaticArm(t *testing.T) {
	h := statelessHarness(t, 0, nil)
	base := h.alloc(h.hashA)
	if err := h.r.olrFree(h.v, base); err != nil {
		t.Fatalf("free: %v", err)
	}
	cls, _ := h.r.table.ByHash(h.hashA)
	addr, err := h.r.olrGetptr(h.v, base, 1, h.hashA)
	if err != nil {
		t.Fatalf("dangling access errored (want silent static-arm degrade): %v", err)
	}
	if want := int64(base) + int64(cls.Members[1].StaticOffset); addr != want {
		t.Fatalf("dangling access resolved %#x, want static offset %#x", addr, want)
	}
	if recs := h.r.ViolationRecords(); len(recs) != 0 {
		t.Fatalf("dangling access produced violations: %+v", recs)
	}
}

// TestStatelessEpochRekeyDeterminism drives the RekeyEvery schedule and
// pins the satellite contract: member values survive the remap, the
// epoch really advances, and an identically-seeded runtime replaying the
// same schedule produces byte-identical resolutions and the same event
// stream — the property that keeps the evalrun trace gate green at any
// -parallel width (each task re-derives everything from its own seed;
// nothing depends on scheduling).
func TestStatelessEpochRekeyDeterminism(t *testing.T) {
	run := func(h *violationHarness) ([]int64, []telemetry.Event, uint64) {
		// Three live A objects and one B; then four frees of throwaway
		// objects drive the epoch forward (RekeyEvery=2 → two rekeys).
		var live []uint64
		for i := 0; i < 3; i++ {
			live = append(live, h.alloc(h.hashA))
		}
		bObj := h.alloc(h.hashB)
		// Stamp recognizable values through resolved member addresses.
		for i, base := range live {
			addrs := resolveAll(t, h, base, h.hashA, 3)
			// Member 1 (x: i64) and 2 (y: i32) are data; member 0 is the fptr.
			if err := h.v.Mem.WriteU(uint64(addrs[1]), 8, 0xa0a0+uint64(i)); err != nil {
				t.Fatalf("write x: %v", err)
			}
			if err := h.v.Mem.WriteU(uint64(addrs[2]), 4, 0xb0b0+uint64(i)); err != nil {
				t.Fatalf("write y: %v", err)
			}
		}
		for i := 0; i < 4; i++ {
			tmp := h.alloc(h.hashA)
			if err := h.r.olrFree(h.v, tmp); err != nil {
				t.Fatalf("schedule free %d: %v", i, err)
			}
		}
		// After the rekeys: values must still read back through the
		// CURRENT epoch's derivation.
		var resolved []int64
		for i, base := range live {
			addrs := resolveAll(t, h, base, h.hashA, 3)
			resolved = append(resolved, addrs...)
			x, err := h.v.Mem.ReadU(uint64(addrs[1]), 8)
			if err != nil {
				t.Fatalf("read x: %v", err)
			}
			y, err := h.v.Mem.ReadU(uint64(addrs[2]), 4)
			if err != nil {
				t.Fatalf("read y: %v", err)
			}
			if x != 0xa0a0+uint64(i) || y != 0xb0b0+uint64(i) {
				t.Fatalf("object %d lost its values across rekey: x=%#x y=%#x", i, x, y)
			}
		}
		resolved = append(resolved, resolveAll(t, h, bObj, h.hashB, 2)...)
		s := h.r.resolver.(*statelessResolver)
		return resolved, h.rec.Events(), s.Epoch()
	}

	h1 := statelessHarness(t, 2, nil)
	h2 := statelessHarness(t, 2, nil)
	r1, ev1, ep1 := run(h1)
	r2, ev2, ep2 := run(h2)

	if ep1 == 0 {
		t.Fatal("epoch never advanced under RekeyEvery=2 with 4 frees")
	}
	if ep1 != ep2 {
		t.Fatalf("epochs diverged: %d vs %d", ep1, ep2)
	}
	if s := h1.r.resolver.(*statelessResolver); s.Rekeys() != ep1 {
		t.Fatalf("Rekeys() = %d, want %d", s.Rekeys(), ep1)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same seed + schedule resolved differently:\n%v\n%v", r1, r2)
	}
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatalf("same seed + schedule emitted different event streams (%d vs %d events)", len(ev1), len(ev2))
	}
	// The remap announced itself: at least one EvMemcpyRerand per live
	// object per rekey is too strong (identity-layout classes skip the
	// move but still emit), so just require the events exist.
	if n := len(h1.rec.ByKind(telemetry.EvMemcpyRerand)); n == 0 {
		t.Fatal("no EvMemcpyRerand events from the rekey walk")
	}
	if recs := h1.r.ViolationRecords(); len(recs) != 0 {
		t.Fatalf("rekey schedule produced violations: %+v", recs)
	}
}

// TestStatelessExplicitRerandomize: Runtime.Rerandomize reports true in
// stateless mode and re-resolution after it still works (fresh epoch).
func TestStatelessExplicitRerandomize(t *testing.T) {
	h := statelessHarness(t, 0, nil)
	base := h.alloc(h.hashA)
	before := resolveAll(t, h, base, h.hashA, 3)
	ok, err := h.r.Rerandomize(h.v)
	if err != nil {
		t.Fatalf("Rerandomize: %v", err)
	}
	if !ok {
		t.Fatal("stateless Rerandomize reported no-op")
	}
	after := resolveAll(t, h, base, h.hashA, 3)
	if len(before) != len(after) {
		t.Fatalf("member count changed: %v vs %v", before, after)
	}
	// Metadata mode has no global rekey: it must report (false, nil).
	hm := newViolationHarness(t, nil)
	ok, err = hm.r.Rerandomize(hm.v)
	if err != nil || ok {
		t.Fatalf("metadata Rerandomize = (%v, %v), want (false, nil)", ok, err)
	}
}

// TestProbeBucketsCanonical is the assertion promised at
// telemetry.ProbeLenBuckets: the bucket list is exactly {0,1,2,3,4},
// and each strategy's runtime paths observe only its documented buckets
// — stateless derivations land in bucket 0 (and 3 for the static arm),
// never 1 or 2; metadata mode never lands in 0.
func TestProbeBucketsCanonical(t *testing.T) {
	want := []float64{0, 1, 2, 3, 4}
	if !reflect.DeepEqual(telemetry.ProbeLenBuckets, want) {
		t.Fatalf("telemetry.ProbeLenBuckets = %v, want %v (update the doc comment AND this test together)",
			telemetry.ProbeLenBuckets, want)
	}

	// Stateless: derived resolutions observe 0, static-arm falls in 3.
	hs := statelessHarness(t, 0, nil)
	base := hs.alloc(hs.hashA)
	for i := 0; i < 8; i++ {
		if _, err := hs.r.olrGetptr(hs.v, base, 1, hs.hashA); err != nil {
			t.Fatalf("getptr: %v", err)
		}
	}
	if err := hs.r.olrFree(hs.v, base); err != nil {
		t.Fatalf("free: %v", err)
	}
	if _, err := hs.r.olrGetptr(hs.v, base, 1, hs.hashA); err != nil {
		t.Fatalf("static-arm getptr: %v", err)
	}
	snap := hs.r.Telemetry().Registry.Snapshot()
	hist, ok := snap.Histograms[telemetry.MetricCacheProbeLen]
	if !ok {
		t.Fatalf("histogram %s not registered", telemetry.MetricCacheProbeLen)
	}
	st := hs.r.Stats()
	if hist.Count != st.MemberAccess {
		t.Fatalf("stateless histogram count = %d, want one observation per access (%d)", hist.Count, st.MemberAccess)
	}
	if hist.Counts[0] != 8 {
		t.Fatalf("stateless bucket 0 = %d, want 8 derived resolutions", hist.Counts[0])
	}
	if hist.Counts[1] != 0 || hist.Counts[2] != 0 {
		t.Fatalf("stateless mode touched metadata buckets: 1=%d 2=%d", hist.Counts[1], hist.Counts[2])
	}
	if hist.Counts[3] != 1 {
		t.Fatalf("stateless bucket 3 = %d, want 1 static-arm access", hist.Counts[3])
	}

	// Metadata: bucket 0 must stay empty (cache hits are probe length 1).
	hm := newViolationHarness(t, nil)
	mbase := hm.alloc(hm.hashA)
	for i := 0; i < 8; i++ {
		if _, err := hm.r.olrGetptr(hm.v, mbase, 1, hm.hashA); err != nil {
			t.Fatalf("getptr: %v", err)
		}
	}
	msnap := hm.r.Telemetry().Registry.Snapshot()
	mhist := msnap.Histograms[telemetry.MetricCacheProbeLen]
	if mhist.Counts[0] != 0 {
		t.Fatalf("metadata bucket 0 = %d, want 0", mhist.Counts[0])
	}
	mst := hm.r.Stats()
	if mhist.Counts[1] != mst.CacheHits || mhist.Counts[2] != mst.CacheMisses {
		t.Fatalf("metadata buckets 1/2 = %d/%d, want hits/misses %d/%d",
			mhist.Counts[1], mhist.Counts[2], mst.CacheHits, mst.CacheMisses)
	}
}
