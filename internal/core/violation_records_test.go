package core

import (
	"errors"
	"math/rand"
	"testing"

	"polar/internal/classinfo"
	"polar/internal/ir"
	"polar/internal/layout"
	"polar/internal/telemetry"
	"polar/internal/vm"
)

// violationHarness wires a VM and a telemetry-recording runtime over two
// registered classes, so each ViolationKind can be triggered by calling
// the olr_* entry points directly (no IR program needed per trigger).
type violationHarness struct {
	t     *testing.T
	v     *vm.VM
	r     *Runtime
	rec   *telemetry.Recorder
	hashA uint64
	hashB uint64
}

func newViolationHarness(t *testing.T, mod func(*Config)) *violationHarness {
	t.Helper()
	m := ir.NewModule("viol")
	m.MustStruct(ir.NewStruct("A",
		ir.Field{Name: "fp", Type: ir.Fptr},
		ir.Field{Name: "x", Type: ir.I64},
		ir.Field{Name: "y", Type: ir.I32},
	))
	m.MustStruct(ir.NewStruct("B",
		ir.Field{Name: "u", Type: ir.I64},
		ir.Field{Name: "w", Type: ir.I64},
	))
	fb := ir.NewFunc(m, "main", ir.I64)
	fb.Ret(ir.Const(0))
	if err := ir.Validate(m); err != nil {
		t.Fatalf("module invalid: %v", err)
	}
	table, err := classinfo.FromModule(m, nil)
	if err != nil {
		t.Fatalf("classinfo: %v", err)
	}
	v, err := vm.New(m)
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	tel := telemetry.New()
	rec := telemetry.NewRecorder(0)
	tel.Bus.Attach(rec)
	cfg := DefaultConfig(7)
	cfg.Telemetry = tel
	if mod != nil {
		mod(&cfg)
	}
	r := New(table, cfg)
	a, ok := table.ByName("A")
	if !ok {
		t.Fatal("class A missing from table")
	}
	b, ok := table.ByName("B")
	if !ok {
		t.Fatal("class B missing from table")
	}
	return &violationHarness{t: t, v: v, r: r, rec: rec, hashA: a.Hash, hashB: b.Hash}
}

func (h *violationHarness) alloc(hash uint64) uint64 {
	h.t.Helper()
	base, err := h.r.olrMalloc(h.v, hash)
	if err != nil {
		h.t.Fatalf("olrMalloc: %v", err)
	}
	return uint64(base)
}

// assertViolation pins the full detection contract for one kind: the
// error wraps ErrViolation, exactly one structured record was logged,
// exactly one EvViolation event was emitted, and record/event/error all
// agree on address, class hash and layout id.
func assertViolation(t *testing.T, h *violationHarness, err error, kind ViolationKind) ViolationRecord {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: expected a violation error, got nil", kind)
	}
	if !errors.Is(err, ErrViolation) {
		t.Fatalf("%s: errors.Is(err, ErrViolation) = false for %v", kind, err)
	}
	var viol *Violation
	if !errors.As(err, &viol) {
		t.Fatalf("%s: errors.As(*Violation) failed for %v", kind, err)
	}
	if viol.Unwrap() != ErrViolation {
		t.Fatalf("%s: Unwrap() = %v, want ErrViolation", kind, viol.Unwrap())
	}
	if viol.Kind != kind {
		t.Fatalf("%s: violation kind = %v", kind, viol.Kind)
	}
	recs := h.r.ViolationRecords()
	if len(recs) != 1 {
		t.Fatalf("%s: %d violation records, want exactly 1 (%v)", kind, len(recs), recs)
	}
	rec := recs[0]
	if rec.Kind != kind || rec.KindName != kind.String() {
		t.Fatalf("%s: record kind = %v/%q", kind, rec.Kind, rec.KindName)
	}
	if rec.Addr != viol.Addr || rec.ClassHash != viol.ClassHash ||
		rec.LayoutID != viol.LayoutID || rec.Class != viol.Class || rec.Site != viol.Site {
		t.Fatalf("%s: record %+v disagrees with error %+v", kind, rec, viol)
	}
	evs := h.rec.ByKind(telemetry.EvViolation)
	if len(evs) != 1 {
		t.Fatalf("%s: %d EvViolation events, want exactly 1", kind, len(evs))
	}
	ev := evs[0]
	if ev.Detail != kind.String() || ev.Addr != rec.Addr ||
		ev.Class != rec.ClassHash || ev.Layout != rec.LayoutID || ev.Site != rec.Site {
		t.Fatalf("%s: event %+v disagrees with record %+v", kind, ev, rec)
	}
	return rec
}

// trapSlotOffset returns the byte offset of the object's first booby
// trap (guaranteed to exist: class A carries a function pointer and
// DefaultConfig arms traps).
func trapSlotOffset(t *testing.T, h *violationHarness, base uint64) uint64 {
	t.Helper()
	meta, ok := h.r.store.Lookup(base)
	if !ok {
		t.Fatalf("no metadata for %#x", base)
	}
	for _, s := range meta.Layout.Slots {
		if s.Trap {
			return uint64(s.Offset)
		}
	}
	t.Fatalf("no trap slot in layout of %#x", base)
	return 0
}

// TestViolationRecordsPerKind triggers every ViolationKind and pins the
// structured record and telemetry event each one produces. A guard at
// the top keeps the table in lockstep with AllViolationKinds.
func TestViolationRecordsPerKind(t *testing.T) {
	forged, err := layout.Generate(
		[]layout.FieldInfo{{Size: 8, Align: 8, IsFptr: true}, {Size: 8, Align: 8}, {Size: 4, Align: 4}},
		layout.Config{Mode: layout.ModeIdentity}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		kind    ViolationKind
		cfg     func(*Config)
		trigger func(t *testing.T, h *violationHarness) error
		check   func(t *testing.T, h *violationHarness, rec ViolationRecord)
	}{
		{
			kind: ViolationBadClass,
			trigger: func(t *testing.T, h *violationHarness) error {
				_, err := h.r.olrMalloc(h.v, 0xdead)
				return err
			},
			check: func(t *testing.T, h *violationHarness, rec ViolationRecord) {
				if rec.Addr != 0 || rec.ClassHash != 0xdead || rec.LayoutID != 0 {
					t.Fatalf("record = %+v", rec)
				}
				if rec.Class != "hash 0xdead" {
					t.Fatalf("class rendered %q", rec.Class)
				}
			},
		},
		{
			kind: ViolationBadFree,
			trigger: func(t *testing.T, h *violationHarness) error {
				return h.r.olrFree(h.v, 0x12345)
			},
			check: func(t *testing.T, h *violationHarness, rec ViolationRecord) {
				if rec.Addr != 0x12345 || rec.ClassHash != 0 || rec.LayoutID != 0 {
					t.Fatalf("record = %+v", rec)
				}
				if rec.Class != "?" {
					t.Fatalf("unknown class rendered %q", rec.Class)
				}
			},
		},
		{
			kind: ViolationDoubleFree,
			trigger: func(t *testing.T, h *violationHarness) error {
				base := h.alloc(h.hashA)
				if err := h.r.olrFree(h.v, base); err != nil {
					t.Fatalf("first free: %v", err)
				}
				return h.r.olrFree(h.v, base)
			},
			check: func(t *testing.T, h *violationHarness, rec ViolationRecord) {
				if rec.ClassHash != h.hashA || rec.Class != "A" || rec.LayoutID == 0 {
					t.Fatalf("record = %+v", rec)
				}
			},
		},
		{
			kind: ViolationUAF,
			trigger: func(t *testing.T, h *violationHarness) error {
				base := h.alloc(h.hashA)
				if err := h.r.olrFree(h.v, base); err != nil {
					t.Fatalf("free: %v", err)
				}
				_, err := h.r.olrGetptr(h.v, base, 1, h.hashA)
				return err
			},
			check: func(t *testing.T, h *violationHarness, rec ViolationRecord) {
				if rec.ClassHash != h.hashA || rec.Class != "A" || rec.LayoutID == 0 {
					t.Fatalf("record = %+v", rec)
				}
			},
		},
		{
			kind: ViolationTypeConfusion,
			trigger: func(t *testing.T, h *violationHarness) error {
				base := h.alloc(h.hashA)
				_, err := h.r.olrGetptr(h.v, base, 0, h.hashB)
				return err
			},
			check: func(t *testing.T, h *violationHarness, rec ViolationRecord) {
				// The record carries the ALLOCATION class, not the (bogus)
				// access class — that is the forensic datum.
				if rec.ClassHash != h.hashA || rec.Class != "A" || rec.LayoutID == 0 {
					t.Fatalf("record = %+v", rec)
				}
			},
		},
		{
			kind: ViolationTrap,
			trigger: func(t *testing.T, h *violationHarness) error {
				base := h.alloc(h.hashA)
				off := trapSlotOffset(t, h, base)
				cur, err := h.v.Mem.ReadU(base+off, 8)
				if err != nil {
					t.Fatalf("read canary: %v", err)
				}
				if err := h.v.Mem.WriteU(base+off, 8, cur^0xdeadbeef); err != nil {
					t.Fatalf("clobber canary: %v", err)
				}
				_, cerr := h.r.olrCheck(h.v, base)
				return cerr
			},
			check: func(t *testing.T, h *violationHarness, rec ViolationRecord) {
				// Addr points at the corrupted slot, inside the object.
				if rec.ClassHash != h.hashA || rec.LayoutID == 0 {
					t.Fatalf("record = %+v", rec)
				}
			},
		},
		{
			kind: ViolationMetadata,
			cfg:  func(c *Config) { c.MetadataIntegrity = true },
			trigger: func(t *testing.T, h *violationHarness) error {
				base := h.alloc(h.hashA)
				if !h.r.CorruptMetadataForTest(base, forged) {
					t.Fatal("CorruptMetadataForTest found no object")
				}
				_, err := h.r.olrGetptr(h.v, base, 1, h.hashA)
				return err
			},
			check: func(t *testing.T, h *violationHarness, rec ViolationRecord) {
				if rec.ClassHash != h.hashA || rec.LayoutID != forged.Hash() {
					t.Fatalf("record = %+v", rec)
				}
			},
		},
	}

	covered := make(map[ViolationKind]bool, len(cases))
	for _, tc := range cases {
		covered[tc.kind] = true
	}
	for _, k := range AllViolationKinds() {
		if !covered[k] {
			t.Fatalf("no test case for violation kind %v", k)
		}
	}

	for _, tc := range cases {
		t.Run(tc.kind.String(), func(t *testing.T) {
			h := newViolationHarness(t, tc.cfg)
			err := tc.trigger(t, h)
			rec := assertViolation(t, h, err, tc.kind)
			if tc.check != nil {
				tc.check(t, h, rec)
			}
		})
	}
}

// TestViolationRecordWarnPolicy: under PolicyWarn no error surfaces,
// but the structured record and the telemetry event still do.
func TestViolationRecordWarnPolicy(t *testing.T) {
	h := newViolationHarness(t, func(c *Config) { c.Policy = PolicyWarn })
	if err := h.r.olrFree(h.v, 0x777); err != nil {
		t.Fatalf("warn policy returned error: %v", err)
	}
	recs := h.r.ViolationRecords()
	if len(recs) != 1 || recs[0].Kind != ViolationBadFree || recs[0].Addr != 0x777 {
		t.Fatalf("records = %+v", recs)
	}
	if evs := h.rec.ByKind(telemetry.EvViolation); len(evs) != 1 {
		t.Fatalf("%d EvViolation events, want 1", len(evs))
	}
	if h.r.ViolationCount(ViolationBadFree) != 1 {
		t.Fatal("violation counter not incremented")
	}
	if vlog := h.r.ViolationLog(); vlog.Truncated || vlog.Dropped != 0 || len(vlog.Records) != 1 {
		t.Fatalf("ViolationLog() = truncated=%v dropped=%d records=%d, want untruncated single record",
			vlog.Truncated, vlog.Dropped, len(vlog.Records))
	}
}

// TestViolationRecordCap: the structured log stops at
// maxViolationRecords and counts the overflow instead of growing.
func TestViolationRecordCap(t *testing.T) {
	h := newViolationHarness(t, func(c *Config) { c.Policy = PolicyWarn })
	n := maxViolationRecords + 50
	for i := 0; i < n; i++ {
		if err := h.r.olrFree(h.v, uint64(0x1000+i)); err != nil {
			t.Fatalf("warn policy returned error: %v", err)
		}
	}
	if got := len(h.r.ViolationRecords()); got != maxViolationRecords {
		t.Fatalf("record log length %d, want cap %d", got, maxViolationRecords)
	}
	if got := h.r.DroppedViolations(); got != 50 {
		t.Fatalf("dropped = %d, want 50", got)
	}
	// The counter and the event stream keep full fidelity past the cap.
	if got := h.r.ViolationCount(ViolationBadFree); got != uint64(n) {
		t.Fatalf("counter = %d, want %d", got, n)
	}
	// The truncation is visible everywhere a consumer could look: the
	// record-set bundle, the stats snapshot and the published metric.
	vlog := h.r.ViolationLog()
	if !vlog.Truncated || vlog.Dropped != 50 || len(vlog.Records) != maxViolationRecords {
		t.Fatalf("ViolationLog() = truncated=%v dropped=%d records=%d",
			vlog.Truncated, vlog.Dropped, len(vlog.Records))
	}
	st := h.r.Stats()
	if st.ViolationsDropped != 50 {
		t.Fatalf("Stats().ViolationsDropped = %d, want 50", st.ViolationsDropped)
	}
	if got := h.r.Telemetry().Registry.Counter("core.violations_dropped").Value(); got != 50 {
		t.Fatalf("core.violations_dropped metric = %d, want 50", got)
	}
}
