package core_test

import (
	"testing"

	"polar/internal/core"
	"polar/internal/instrument"
	"polar/internal/ir"
	"polar/internal/vm"
)

// TestChurnStressBoundedMetadata runs a gcc-profile churn (tens of
// thousands of alloc/free pairs) and checks the runtime stays healthy:
// results correct, no metadata leak (ghost records are overwritten when
// chunks are recycled), layout dedup keeps the unique-layout population
// far below the allocation count.
func TestChurnStressBoundedMetadata(t *testing.T) {
	m := ir.NewModule("churn")
	st := m.MustStruct(ir.NewStruct("Node",
		ir.Field{Name: "a", Type: ir.I64},
		ir.Field{Name: "b", Type: ir.I32},
		ir.Field{Name: "c", Type: ir.I32},
	))
	const n = 30_000
	b := ir.NewFunc(m, "main", ir.I64)
	acc := b.Local(ir.I64)
	b.Store(ir.I64, ir.Const(0), acc)
	b.CountedLoop("churn", ir.Const(n), func(i ir.Value) {
		p := b.Alloc(st)
		b.Store(ir.I64, i, b.FieldPtr(st, p, 0))
		v := b.Load(ir.I64, b.FieldPtr(st, p, 0))
		s := b.Load(ir.I64, acc)
		b.Store(ir.I64, b.Bin(ir.BinAdd, s, v), acc)
		b.Free(p)
	})
	b.Ret(b.Load(ir.I64, acc))

	ins, err := instrument.Apply(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := vm.New(ins.Module)
	if err != nil {
		t.Fatal(err)
	}
	rt := core.New(ins.Table, core.DefaultConfig(21))
	rt.Attach(v)
	got, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := int64(n) * (n - 1) / 2
	if got != want {
		t.Fatalf("checksum = %d, want %d", got, want)
	}
	st2 := rt.Stats()
	if st2.Allocs != n || st2.Frees != n {
		t.Fatalf("counters = %+v", st2)
	}
	// LIFO reuse means the churn cycles through a handful of chunk
	// addresses; ghost records are overwritten on re-registration, so
	// the object table must stay tiny, not O(n).
	if live := rt.Store().LiveCount(); live != 0 {
		t.Errorf("live metadata after full churn = %d", live)
	}
	// Layout dedup: 4 placement items (3 fields + 1-2 dummies) admit
	// only a few hundred distinct layouts; 30k allocations must share.
	meta := st2.Meta
	if meta.LayoutsUnique > 2000 {
		t.Errorf("unique layouts = %d; dedup ineffective", meta.LayoutsUnique)
	}
	if meta.LayoutsShared < uint64(n)-2000 {
		t.Errorf("shared layouts = %d of %d registrations", meta.LayoutsShared, n)
	}
	if v.Heap.LiveCount() != 0 {
		t.Error("heap chunks leaked")
	}
}

// TestManyLiveObjects keeps thousands of objects alive simultaneously
// and verifies every field read resolves correctly through per-object
// layouts.
func TestManyLiveObjects(t *testing.T) {
	m := ir.NewModule("manylive")
	st := m.MustStruct(ir.NewStruct("Cell",
		ir.Field{Name: "idx", Type: ir.I64},
		ir.Field{Name: "sq", Type: ir.I64},
	))
	const n = 4000
	if _, err := m.AddGlobal("tab", 8*n, nil); err != nil {
		t.Fatal(err)
	}
	b := ir.NewFunc(m, "main", ir.I64)
	b.CountedLoop("mk", ir.Const(n), func(i ir.Value) {
		p := b.Alloc(st)
		b.Store(ir.I64, i, b.FieldPtr(st, p, 0))
		b.Store(ir.I64, b.Bin(ir.BinMul, i, i), b.FieldPtr(st, p, 1))
		b.Store(ir.I64, p, b.ElemPtr(ir.I64, ir.Global("tab"), i))
	})
	bad := b.Local(ir.I64)
	b.Store(ir.I64, ir.Const(0), bad)
	b.CountedLoop("check", ir.Const(n), func(i ir.Value) {
		p := b.Load(ir.PtrTo(st), b.ElemPtr(ir.I64, ir.Global("tab"), i))
		idx := b.Load(ir.I64, b.FieldPtr(st, p, 0))
		sq := b.Load(ir.I64, b.FieldPtr(st, p, 1))
		ok1 := b.Cmp(ir.CmpEq, idx, i)
		ok2 := b.Cmp(ir.CmpEq, sq, b.Bin(ir.BinMul, i, i))
		both := b.Bin(ir.BinAnd, ok1, ok2)
		wrong := b.Cmp(ir.CmpEq, both, ir.Const(0))
		b.If("mismatch", wrong, func() {
			cur := b.Load(ir.I64, bad)
			b.Store(ir.I64, b.Bin(ir.BinAdd, cur, ir.Const(1)), bad)
		}, nil)
	})
	b.Ret(b.Load(ir.I64, bad))

	ins, err := instrument.Apply(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := vm.New(ins.Module)
	if err != nil {
		t.Fatal(err)
	}
	rt := core.New(ins.Table, core.DefaultConfig(33))
	rt.Attach(v)
	got, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("%d of %d objects resolved a field wrongly", got, n)
	}
	if live := rt.Store().LiveCount(); live != n {
		t.Errorf("live metadata = %d, want %d", live, n)
	}
}
