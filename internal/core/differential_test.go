package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"polar/internal/core"
	"polar/internal/instrument"
	"polar/internal/ir"
	"polar/internal/vm"
)

// TestDifferentialRandomPrograms is the strongest compatibility check:
// generate random (but well-defined) object-manipulating programs and
// assert the hardened execution returns exactly the baseline result.
// Programs allocate objects of random classes, write random fields with
// known values, read them back into a checksum, occasionally copy one
// object over another of the same class, and free a random subset.
func TestDifferentialRandomPrograms(t *testing.T) {
	prop := func(seed int64) bool {
		m, err := buildRandomProgram(seed)
		if err != nil {
			t.Logf("seed %d: build: %v", seed, err)
			return false
		}
		base, err := vm.New(ir.Clone(m))
		if err != nil {
			t.Logf("seed %d: vm: %v", seed, err)
			return false
		}
		want, err := base.Run()
		if err != nil {
			t.Logf("seed %d: baseline: %v", seed, err)
			return false
		}
		for _, rtSeed := range []int64{seed + 1, seed + 2} {
			ins, err := instrument.Apply(m, nil)
			if err != nil {
				t.Logf("seed %d: instrument: %v", seed, err)
				return false
			}
			v, err := vm.New(ins.Module)
			if err != nil {
				return false
			}
			rt := core.New(ins.Table, core.DefaultConfig(rtSeed))
			rt.Attach(v)
			got, err := v.Run()
			if err != nil {
				t.Logf("seed %d rt %d: hardened: %v", seed, rtSeed, err)
				return false
			}
			if got != want {
				t.Logf("seed %d rt %d: got %d want %d", seed, rtSeed, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// buildRandomProgram emits a random straight-line object workout.
func buildRandomProgram(seed int64) (*ir.Module, error) {
	rng := rand.New(rand.NewSource(seed))
	m := ir.NewModule(fmt.Sprintf("rand%d", seed))

	// Random class set.
	nClasses := 1 + rng.Intn(3)
	classes := make([]*ir.StructType, nClasses)
	scalarPool := []ir.Type{ir.I8, ir.I16, ir.I32, ir.I64}
	for c := range classes {
		nf := 1 + rng.Intn(6)
		fields := make([]ir.Field, nf)
		for f := range fields {
			ty := scalarPool[rng.Intn(len(scalarPool))]
			if rng.Intn(8) == 0 {
				ty = ir.Fptr
			}
			fields[f] = ir.Field{Name: fmt.Sprintf("f%d", f), Type: ty}
		}
		classes[c] = m.MustStruct(ir.NewStruct(fmt.Sprintf("C%d", c), fields...))
	}

	b := ir.NewFunc(m, "main", ir.I64)
	acc := b.Local(ir.I64)
	b.Store(ir.I64, ir.Const(0), acc)
	mix := func(v ir.Value) {
		cur := b.Load(ir.I64, acc)
		b.Store(ir.I64, b.Bin(ir.BinXor, b.Bin(ir.BinMul, cur, ir.Const(1099511628211)), v), acc)
	}

	type obj struct {
		reg     ir.Value
		class   *ir.StructType
		written map[int]bool
		freed   bool
	}
	var objs []*obj
	alive := func() []*obj {
		var out []*obj
		for _, o := range objs {
			if !o.freed {
				out = append(out, o)
			}
		}
		return out
	}

	nOps := 10 + rng.Intn(40)
	for op := 0; op < nOps; op++ {
		switch rng.Intn(6) {
		case 0, 1: // alloc
			st := classes[rng.Intn(len(classes))]
			p := b.Alloc(st)
			o := &obj{reg: p, class: st, written: map[int]bool{}}
			// Initialize every field deterministically so copies and
			// reads are always defined.
			for fi, f := range st.Fields {
				val := int64(rng.Intn(120)) // small: survives i8 sign
				b.Store(storeType(f.Type), ir.Const(val), b.FieldPtr(st, p, fi))
				o.written[fi] = true
			}
			objs = append(objs, o)
		case 2: // store a random field
			live := alive()
			if len(live) == 0 {
				continue
			}
			o := live[rng.Intn(len(live))]
			fi := rng.Intn(len(o.class.Fields))
			ty := storeType(o.class.Fields[fi].Type)
			b.Store(ty, ir.Const(int64(rng.Intn(120))), b.FieldPtr(o.class, o.reg, fi))
			o.written[fi] = true
		case 3: // load a written field into the checksum
			live := alive()
			if len(live) == 0 {
				continue
			}
			o := live[rng.Intn(len(live))]
			fi := rng.Intn(len(o.class.Fields))
			if !o.written[fi] {
				continue
			}
			ty := storeType(o.class.Fields[fi].Type)
			mix(b.Load(ty, b.FieldPtr(o.class, o.reg, fi)))
		case 4: // copy between two same-class objects
			live := alive()
			if len(live) < 2 {
				continue
			}
			a := live[rng.Intn(len(live))]
			c := live[rng.Intn(len(live))]
			if a == c || a.class != c.class {
				continue
			}
			b.Memcpy(c.reg, a.reg, ir.Const(int64(a.class.Size())))
			for fi := range a.written {
				c.written[fi] = a.written[fi]
			}
		case 5: // free
			live := alive()
			if len(live) == 0 {
				continue
			}
			o := live[rng.Intn(len(live))]
			b.Free(o.reg)
			o.freed = true
		}
	}
	b.Ret(b.Load(ir.I64, acc))
	return m, ir.Validate(m)
}

func storeType(t ir.Type) ir.Type {
	if _, isF := t.(ir.FuncPtrType); isF {
		return ir.I64
	}
	return t
}
