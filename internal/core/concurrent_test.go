package core_test

import (
	"sync"
	"testing"

	"polar/internal/core"
	"polar/internal/instrument"
	"polar/internal/ir"
	"polar/internal/vm"
)

// TestConcurrentVMsShareHardenedModule runs many VMs in parallel, each
// with its own runtime, over one shared hardened module — the
// deployment shape of a forking server. Modules and class tables are
// read-only after instrumentation, so clones of the module (VM-local
// state) plus per-VM runtimes must be race-free and produce identical
// results for identical seeds.
func TestConcurrentVMsShareHardenedModule(t *testing.T) {
	m := buildPeopleModule(t)
	ins, err := instrument.Apply(m, nil)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 16
	results := make([]int64, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v, err := vm.New(ir.Clone(ins.Module))
			if err != nil {
				errs[w] = err
				return
			}
			rt := core.New(ins.Table, core.DefaultConfig(int64(w)+1))
			rt.Attach(v)
			results[w], errs[w] = v.Run()
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if results[w] != 59 {
			t.Fatalf("worker %d: result %d, want 59", w, results[w])
		}
	}
}
