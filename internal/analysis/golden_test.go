package analysis_test

import (
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"polar/internal/analysis"
)

var update = flag.Bool("update", false, "rewrite the golden findings files")

// TestGoldenFindings pins the full rendered analysis output for every
// committed .ir example. Any change to a rule's trigger conditions,
// severity, message wording or ordering shows up as a golden diff.
// Regenerate with: go test ./internal/analysis -run Golden -update
func TestGoldenFindings(t *testing.T) {
	root := filepath.Join("..", "..", "examples")
	var irFiles []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".ir") {
			irFiles = append(irFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(irFiles)
	if len(irFiles) == 0 {
		t.Fatal("no .ir examples found")
	}

	for _, path := range irFiles {
		rel, _ := filepath.Rel(root, path)
		name := strings.ReplaceAll(strings.TrimSuffix(rel, ".ir"), string(filepath.Separator), "_")
		t.Run(name, func(t *testing.T) {
			m := mustParseFile(t, path)
			res := analysis.Analyze(m, analysis.Options{})
			got := renderGolden(res)
			golden := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if string(want) != got {
				t.Errorf("findings drifted from %s; regenerate with -update if intended.\n--- want\n%s--- got\n%s",
					golden, want, got)
			}
		})
	}
}

// renderGolden is the pinned textual form: the ranked taint verdict
// followed by the findings, both deterministic.
func renderGolden(res *analysis.Result) string {
	var b strings.Builder
	b.WriteString("module: " + res.Module + "\n")
	b.WriteString("tainted classes:\n")
	if len(res.Taint.Classes) == 0 {
		b.WriteString("  (none)\n")
	}
	for _, c := range res.Taint.Classes {
		marks := ""
		if c.ContentTainted {
			marks += "C"
		}
		if c.AllocTainted {
			marks += "A"
		}
		if c.FreeTainted {
			marks += "F"
		}
		fields := make([]string, 0, len(c.Fields))
		for _, f := range c.Fields {
			n := f.Name
			if f.IsPointer {
				n += "*"
			}
			fields = append(fields, n)
		}
		b.WriteString("  %" + c.Class + " [" + marks + "] {" + strings.Join(fields, ",") + "}\n")
	}
	b.WriteString("findings:\n")
	if len(res.Findings) == 0 {
		b.WriteString("  (none)\n")
	}
	for _, f := range res.Findings {
		b.WriteString("  " + f.String() + "\n")
	}
	return b.String()
}
