package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"polar/internal/ir"
)

// Severity grades a finding. The order matters: FailOn gating compares
// numerically (error > warning > info).
type Severity int

// Severities, least to most severe.
const (
	SevInfo Severity = iota + 1
	SevWarn
	SevError
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarn:
		return "warning"
	case SevError:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON parses a severity name.
func (s *Severity) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	sev, err := ParseSeverity(name)
	if err != nil {
		return err
	}
	*s = sev
	return nil
}

// ParseSeverity resolves a severity name ("info", "warning"/"warn",
// "error").
func ParseSeverity(name string) (Severity, error) {
	switch strings.ToLower(name) {
	case "info":
		return SevInfo, nil
	case "warning", "warn":
		return SevWarn, nil
	case "error":
		return SevError, nil
	default:
		return 0, fmt.Errorf("analysis: unknown severity %q (info, warning, error)", name)
	}
}

// Site is the source position of a finding: function, block label and
// instruction index, plus the rendered instruction text so reports are
// readable without the module at hand.
type Site struct {
	Func  string `json:"func"`
	Block string `json:"block"`
	Index int    `json:"index"`
	Text  string `json:"text,omitempty"`
}

// Pos renders the position as "@func.block#index" — the same site
// vocabulary the profiler and violation records use.
func (s Site) Pos() string { return fmt.Sprintf("@%s.%s#%d", s.Func, s.Block, s.Index) }

// SiteOf builds a Site for instruction idx of block b in f.
func SiteOf(f *ir.Func, block, idx int) Site {
	s := Site{Func: f.Name, Index: idx}
	if block >= 0 && block < len(f.Blocks) {
		blk := f.Blocks[block]
		s.Block = blk.Name
		if idx >= 0 && idx < len(blk.Instrs) {
			s.Text = ir.FormatInstr(f, &blk.Instrs[idx])
		}
	}
	return s
}

// Finding is one analyzer diagnostic.
type Finding struct {
	// Pass names the producing pass ("lint", "uaf").
	Pass string `json:"pass"`
	// Rule is the stable machine-readable rule ID (kebab-case).
	Rule     string   `json:"rule"`
	Severity Severity `json:"severity"`
	// Class names the affected randomization class, when one is known.
	Class string `json:"class,omitempty"`
	Site  Site   `json:"site"`
	// Message is the human-readable explanation.
	Message string `json:"message"`
	// Contexts counts the distinct calling contexts the heap-cloning
	// analysis re-derived this finding under (omitted when 1): one
	// diagnostic line stands for that many context-cloned derivations.
	Contexts int `json:"contexts,omitempty"`
}

// String renders one line: pos: severity: [pass/rule] message.
func (f Finding) String() string {
	cls := ""
	if f.Class != "" {
		cls = " class=" + f.Class
	}
	ctxs := ""
	if f.Contexts > 1 {
		ctxs = fmt.Sprintf(" [%d contexts]", f.Contexts)
	}
	return fmt.Sprintf("%s: %s: [%s/%s]%s %s%s", f.Site.Pos(), f.Severity, f.Pass, f.Rule, cls, f.Message, ctxs)
}

// Findings is an ordered diagnostic list.
type Findings []Finding

// dedupeFindings merges findings that are identical up to the calling
// context they were derived under — same pass, rule, severity, class,
// site and message — into one finding carrying the context count. The
// first occurrence's position in the list is kept, so pass-internal
// emission order survives (Analyze sorts afterwards anyway).
func dedupeFindings(fs Findings) Findings {
	type key struct {
		pass, rule string
		sev        Severity
		class      string
		site       Site
		msg        string
	}
	idx := make(map[key]int)
	out := fs[:0]
	for _, f := range fs {
		k := key{f.Pass, f.Rule, f.Severity, f.Class, f.Site, f.Message}
		if i, ok := idx[k]; ok {
			if out[i].Contexts == 0 {
				out[i].Contexts = 1
			}
			out[i].Contexts++
			continue
		}
		idx[k] = len(out)
		out = append(out, f)
	}
	return out
}

// Sort orders findings by function, block, instruction index, pass,
// rule — a stable, module-order presentation that makes reports and
// golden files deterministic.
func (fs Findings) Sort(m *ir.Module) {
	fnOrder := make(map[string]int, len(m.Funcs))
	for i, fn := range m.Funcs {
		fnOrder[fn.Name] = i
	}
	blkOrder := func(fnName, blk string) int {
		if fn := m.Func(fnName); fn != nil {
			if i := fn.BlockIndex(blk); i >= 0 {
				return i
			}
		}
		return 1 << 30
	}
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Site.Func != b.Site.Func {
			ai, aok := fnOrder[a.Site.Func]
			bi, bok := fnOrder[b.Site.Func]
			if aok && bok && ai != bi {
				return ai < bi
			}
			return a.Site.Func < b.Site.Func
		}
		if a.Site.Block != b.Site.Block {
			return blkOrder(a.Site.Func, a.Site.Block) < blkOrder(b.Site.Func, b.Site.Block)
		}
		if a.Site.Index != b.Site.Index {
			return a.Site.Index < b.Site.Index
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Rule < b.Rule
	})
}

// MaxSeverity returns the highest severity present (0 when empty).
func (fs Findings) MaxSeverity() Severity {
	var max Severity
	for _, f := range fs {
		if f.Severity > max {
			max = f.Severity
		}
	}
	return max
}

// CountAtLeast counts findings of severity >= sev.
func (fs Findings) CountAtLeast(sev Severity) int {
	n := 0
	for _, f := range fs {
		if f.Severity >= sev {
			n++
		}
	}
	return n
}

// ByRule buckets the findings by rule ID.
func (fs Findings) ByRule() map[string]int {
	out := make(map[string]int)
	for _, f := range fs {
		out[f.Rule]++
	}
	return out
}

// Render writes the findings one per line, followed by a summary line.
func (fs Findings) Render() string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%d finding(s): %d error(s), %d warning(s), %d info\n",
		len(fs),
		fs.CountAtLeast(SevError),
		fs.CountAtLeast(SevWarn)-fs.CountAtLeast(SevError),
		fs.CountAtLeast(SevInfo)-fs.CountAtLeast(SevWarn))
	return b.String()
}

// EncodeJSON renders the findings as an indented JSON array (empty
// slice, not null, when there are none).
func (fs Findings) EncodeJSON() ([]byte, error) {
	if fs == nil {
		fs = Findings{}
	}
	return json.MarshalIndent(fs, "", "  ")
}
