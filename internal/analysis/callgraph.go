package analysis

import (
	"sort"

	"polar/internal/ir"
)

// CallSite is one call instruction.
type CallSite struct {
	Caller string
	Site   ir.SiteRef
	Callee string
	// Builtin marks callees resolved by the VM (input_*, print_*, …)
	// rather than module functions.
	Builtin bool
}

// CallGraph records who calls whom, at which sites. Function-pointer
// stores (&fn operands) are modeled as potential calls from the
// function taking the address — the conservative treatment for
// indirect calls through fptr members — and, for references stored
// into module globals, additionally from every function that loads
// that global, so a handler installed by one function and dispatched
// by another stays reachable even when the installer is dead code.
type CallGraph struct {
	// Callees maps a function to the module functions it may invoke
	// (direct calls plus any function whose address it takes), sorted
	// and deduplicated.
	Callees map[string][]string
	// Callers is the reverse relation.
	Callers map[string][]string
	// Sites lists every direct call instruction per caller, in module
	// order (builtin calls included).
	Sites map[string][]CallSite
}

// BuildCallGraph scans the module.
func BuildCallGraph(m *ir.Module) *CallGraph {
	cg := &CallGraph{
		Callees: make(map[string][]string),
		Callers: make(map[string][]string),
		Sites:   make(map[string][]CallSite),
	}
	seen := make(map[[2]string]bool)
	addEdge := func(caller, callee string) {
		key := [2]string{caller, callee}
		if seen[key] {
			return
		}
		seen[key] = true
		cg.Callees[caller] = append(cg.Callees[caller], callee)
		cg.Callers[callee] = append(cg.Callers[callee], caller)
	}
	// First sweep: direct calls, local address-taken edges, and the set
	// of globals a function reference is ever stored into. A function
	// stored into a global in one function and called indirectly from
	// another must get an edge from the LOADING function too — only
	// crediting the storer silently drops the callee from Reachable()
	// whenever the initializer itself is dead or unreachable.
	fnsInGlobal := make(map[string][]string)
	for _, f := range m.Funcs {
		for bi, blk := range f.Blocks {
			for ii := range blk.Instrs {
				in := &blk.Instrs[ii]
				if in.Op == ir.OpCall {
					builtin := m.Func(in.Callee) == nil
					cg.Sites[f.Name] = append(cg.Sites[f.Name], CallSite{
						Caller: f.Name, Site: ir.SiteRef{Block: bi, Index: ii},
						Callee: in.Callee, Builtin: builtin,
					})
					if !builtin {
						addEdge(f.Name, in.Callee)
					}
				}
				for _, a := range in.Args {
					if a.Kind == ir.ValFunc && m.Func(a.Sym) != nil {
						addEdge(f.Name, a.Sym)
					}
				}
				if in.Op == ir.OpStore &&
					in.Args[0].Kind == ir.ValFunc && m.Func(in.Args[0].Sym) != nil &&
					in.Args[1].Kind == ir.ValGlobal {
					fnsInGlobal[in.Args[1].Sym] = append(fnsInGlobal[in.Args[1].Sym], in.Args[0].Sym)
				}
			}
		}
	}
	// Second sweep: any function that loads from such a global may
	// invoke every function ref stored there.
	if len(fnsInGlobal) > 0 {
		for _, f := range m.Funcs {
			for _, blk := range f.Blocks {
				for ii := range blk.Instrs {
					in := &blk.Instrs[ii]
					if in.Op != ir.OpLoad || in.Args[0].Kind != ir.ValGlobal {
						continue
					}
					for _, callee := range fnsInGlobal[in.Args[0].Sym] {
						addEdge(f.Name, callee)
					}
				}
			}
		}
	}
	for _, edges := range cg.Callees {
		sort.Strings(edges)
	}
	for _, edges := range cg.Callers {
		sort.Strings(edges)
	}
	return cg
}

// Reachable returns the set of module functions transitively reachable
// from the named root (the root itself included when it exists).
func (cg *CallGraph) Reachable(root string) map[string]bool {
	out := make(map[string]bool)
	var walk func(string)
	walk = func(fn string) {
		if out[fn] {
			return
		}
		out[fn] = true
		for _, c := range cg.Callees[fn] {
			walk(c)
		}
	}
	walk(root)
	return out
}
