package analysis

import (
	"sort"

	"polar/internal/ir"
	"polar/internal/policy"
)

// The static TaintClass pass. Where the dynamic campaign (internal/
// taint driven by internal/fuzz) observes which classes input actually
// reaches, this pass computes which classes input MAY reach — a sound
// over-approximation of the same verdict, available without running a
// single input. It reads the converged abstract-interpreter state and
// emits the per-class content/alloc/free marks in the dynamic report's
// vocabulary so the policy layer can consume either.

// FieldTaintInfo names one may-tainted member of a class.
type FieldTaintInfo struct {
	Index     int    `json:"index"`
	Name      string `json:"name"`
	IsPointer bool   `json:"isPointer"`
}

// ClassTaint is the static verdict for one class.
type ClassTaint struct {
	Class          string           `json:"class"`
	ContentTainted bool             `json:"contentTainted"`
	AllocTainted   bool             `json:"allocTainted"`
	FreeTainted    bool             `json:"freeTainted"`
	Fields         []FieldTaintInfo `json:"fields,omitempty"`
	// Score ranks the class by how exposed it is to untrusted input;
	// higher means a stronger randomization candidate.
	Score float64 `json:"score"`
}

// PointerTainted reports whether any may-tainted member holds a
// pointer (data or function) — the §IV.B.1 signal that raises the
// dummy budget.
func (c *ClassTaint) PointerTainted() bool {
	for _, f := range c.Fields {
		if f.IsPointer {
			return true
		}
	}
	return false
}

// TaintResult is the ranked static TaintClass verdict.
type TaintResult struct {
	// Classes holds every may-tainted class, ranked by Score
	// descending (name ascending on ties).
	Classes []ClassTaint `json:"classes"`
}

// TaintedClasses returns the class names, sorted alphabetically — the
// same shape the dynamic report exposes, for direct comparison.
func (r *TaintResult) TaintedClasses() []string {
	out := make([]string, 0, len(r.Classes))
	for _, c := range r.Classes {
		out = append(out, c.Class)
	}
	sort.Strings(out)
	return out
}

// Class returns the verdict for one class, or nil.
func (r *TaintResult) Class(name string) *ClassTaint {
	for i := range r.Classes {
		if r.Classes[i].Class == name {
			return &r.Classes[i]
		}
	}
	return nil
}

// Policy converts the static verdict into a randomization policy using
// the same tuning rules the dynamic report goes through.
func (r *TaintResult) Policy(generator string) *policy.Policy {
	infos := make([]policy.ClassTaintInfo, 0, len(r.Classes))
	for _, c := range r.Classes {
		info := policy.ClassTaintInfo{
			Class:          c.Class,
			AllocTainted:   c.AllocTainted,
			FreeTainted:    c.FreeTainted,
			PointerTainted: c.PointerTainted(),
		}
		for _, f := range c.Fields {
			info.TaintedFields = append(info.TaintedFields, f.Name)
		}
		infos = append(infos, info)
	}
	return policy.FromClassTaints(infos, generator)
}

// taintPass folds the interpreter's class marks into the ranked result.
func taintPass(ip *interp) *TaintResult {
	names := make(map[string]bool)
	for n := range ip.classContent {
		names[n] = true
	}
	for n := range ip.classAlloc {
		names[n] = true
	}
	for n := range ip.classFree {
		names[n] = true
	}
	res := &TaintResult{Classes: []ClassTaint{}}
	for name := range names {
		ct := ClassTaint{
			Class:          name,
			ContentTainted: ip.classContent[name],
			AllocTainted:   ip.classAlloc[name],
			FreeTainted:    ip.classFree[name],
		}
		if st := ip.mi.M.Structs[name]; st != nil {
			idxs := make([]int, 0, len(ip.classFields[name]))
			for i := range ip.classFields[name] {
				idxs = append(idxs, i)
			}
			sort.Ints(idxs)
			for _, i := range idxs {
				if i < 0 || i >= len(st.Fields) {
					continue
				}
				fd := st.Fields[i]
				_, isPtr := fd.Type.(ir.PtrType)
				_, isFptr := fd.Type.(ir.FuncPtrType)
				ct.Fields = append(ct.Fields, FieldTaintInfo{
					Index: i, Name: fd.Name, IsPointer: isPtr || isFptr,
				})
			}
			ct.Score = scoreClass(&ct, len(st.Fields))
		} else {
			ct.Score = scoreClass(&ct, 0)
		}
		res.Classes = append(res.Classes, ct)
	}
	sort.Slice(res.Classes, func(i, j int) bool {
		a, b := res.Classes[i], res.Classes[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.Class < b.Class
	})
	return res
}

// scoreClass ranks exposure: tainted pointer members dominate (they
// are what an attacker corrupts for control flow), then content
// coverage, then an input-controlled life cycle.
func scoreClass(c *ClassTaint, totalFields int) float64 {
	s := 0.0
	if c.ContentTainted {
		s += 1
	}
	if totalFields > 0 {
		s += 2 * float64(len(c.Fields)) / float64(totalFields)
	}
	if c.PointerTainted() {
		s += 4
	}
	if c.AllocTainted {
		s += 1
	}
	if c.FreeTainted {
		s += 1
	}
	return s
}
