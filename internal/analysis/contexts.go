package analysis

import (
	"sort"

	"polar/internal/ir"
)

// k-limited call-string contexts (heap cloning, DESIGN.md §14).
//
// The abstract interpreter in interp.go used to keep exactly one region
// per allocation site and one summary per function — any object minted
// through a factory or wrapper helper collapsed into a single region
// shared by every caller, which is precisely where the paper's §V
// breaking idioms hide. This file adds the classic remedy: every
// function is analyzed once per abstract CALLING CONTEXT, a string of
// the k most recent call sites, and allocation sites are cloned per
// allocating context. The UAF and lint passes then see one region per
// (site, context) pair, so a helper that frees its heap argument in one
// caller no longer poisons (or, worse, silences) its other callers.
//
// Contexts are enumerated ahead of the fixpoint with a deterministic
// breadth-first walk so region numbering — and therefore every finding
// and every SiteFacts artifact — is a pure function of (module, k):
//
//   - Context 0 is always ε, the empty call string; k=0 reproduces the
//     context-insensitive analysis exactly (one ε context everywhere).
//   - The walk seeds every entry point (main plus any function without
//     a direct caller) with ε and extends contexts across direct call
//     sites: extend(c, s) = take_k(s · c).
//   - A function whose context set would exceed the per-function cap
//     is WIDENED: further contexts collapse into ε, which is then
//     analyzed as the function's catch-all summary. This bounds the
//     blowup on deep mutual recursion while staying monotone.
//   - Functions the walk never reaches (members of a caller cycle with
//     no external entry, or targets only ever reached through stored
//     function pointers) still get ε so their bodies are analyzed —
//     dropping them would lose findings the insensitive analysis had.
//
// At analysis time a call site resolves its callee context with the
// same extend function, falling back to the callee's ε (or its first
// enumerated context) when the extension was widened away. Argument
// facts are always joined into the RESOLVED context's parameter
// summary, so every concrete call remains covered by some analyzed
// context — the refinement is sound by construction.

// ctxID indexes ctxTable.ctxs. Context 0 is always ε, the empty call
// string: the context-insensitive summary.
type ctxID int32

const epsilonCtx ctxID = 0

// fnCtx keys one analysis unit: a function under one calling context.
type fnCtx struct {
	fn  string
	ctx ctxID
}

// defaultContextK is the call-string depth used when Options.ContextK
// is zero; defaultMaxContexts caps the enumerated contexts per function
// before widening collapses the overflow into ε.
const (
	defaultContextK    = 2
	defaultMaxContexts = 64
)

// ctxTable holds the interned call strings and the per-function context
// sets the enumeration produced.
type ctxTable struct {
	k   int
	cap int

	// ctxs[id] is the call string, most recent call site first, at most
	// k long. ctxs[0] is always nil (ε).
	ctxs  [][]int32
	index map[string]ctxID

	// sites lists every direct module-function call instruction in
	// module order; siteOf maps the instruction back to its index.
	sites  []CallSite
	siteOf map[*ir.Instr]int32

	// fnCtxs lists the contexts each function is analyzed under, in
	// ascending ctxID order; ctxSet is the membership index.
	fnCtxs map[string][]ctxID
	ctxSet map[fnCtx]bool

	// widened marks functions whose context set hit the cap.
	widened map[string]bool
}

// buildContexts enumerates the k-limited context sets for every
// function of m. k < 0 is clamped to 0 (context-insensitive);
// maxCtxs <= 0 selects the default per-function cap.
func buildContexts(m *ir.Module, k, maxCtxs int) *ctxTable {
	if k < 0 {
		k = 0
	}
	if maxCtxs <= 0 {
		maxCtxs = defaultMaxContexts
	}
	t := &ctxTable{
		k:       k,
		cap:     maxCtxs,
		ctxs:    [][]int32{nil},
		index:   map[string]ctxID{"": epsilonCtx},
		siteOf:  make(map[*ir.Instr]int32),
		fnCtxs:  make(map[string][]ctxID),
		ctxSet:  make(map[fnCtx]bool),
		widened: make(map[string]bool),
	}
	hasDirectCaller := make(map[string]bool)
	callSitesOf := make(map[string][]int32)
	for _, f := range m.Funcs {
		for bi, blk := range f.Blocks {
			for ii := range blk.Instrs {
				in := &blk.Instrs[ii]
				if in.Op != ir.OpCall || m.Func(in.Callee) == nil {
					continue
				}
				id := int32(len(t.sites))
				t.sites = append(t.sites, CallSite{
					Caller: f.Name, Site: ir.SiteRef{Block: bi, Index: ii}, Callee: in.Callee,
				})
				t.siteOf[in] = id
				callSitesOf[f.Name] = append(callSitesOf[f.Name], id)
				hasDirectCaller[in.Callee] = true
			}
		}
	}

	type item struct {
		fn  string
		ctx ctxID
	}
	var queue []item
	enqueue := func(fn string, cx ctxID) {
		if t.ctxSet[fnCtx{fn, cx}] {
			return
		}
		if len(t.fnCtxs[fn]) >= t.cap {
			// Widen: the overflowing context collapses into ε, the
			// function's catch-all summary.
			t.widened[fn] = true
			cx = epsilonCtx
			if t.ctxSet[fnCtx{fn, cx}] {
				return
			}
		}
		t.ctxSet[fnCtx{fn, cx}] = true
		t.fnCtxs[fn] = append(t.fnCtxs[fn], cx)
		queue = append(queue, item{fn, cx})
	}
	for _, f := range m.Funcs {
		if f.Name == "main" || !hasDirectCaller[f.Name] {
			enqueue(f.Name, epsilonCtx)
		}
	}
	for {
		for len(queue) > 0 {
			it := queue[0]
			queue = queue[1:]
			for _, sid := range callSitesOf[it.fn] {
				enqueue(t.sites[sid].Callee, t.extend(it.ctx, sid))
			}
		}
		// Caller cycles with no external entry (and functions reached
		// only through stored function pointers) are never walked; give
		// them ε and keep going until every function has a context.
		progressed := false
		for _, f := range m.Funcs {
			if len(t.fnCtxs[f.Name]) == 0 {
				enqueue(f.Name, epsilonCtx)
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	for _, cs := range t.fnCtxs {
		sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	}
	return t
}

// extend interns take_k(site · ctx) — the callee-side context of a call
// at site under caller context cx.
func (t *ctxTable) extend(cx ctxID, sid int32) ctxID {
	if t.k == 0 {
		return epsilonCtx
	}
	old := t.ctxs[cx]
	n := len(old) + 1
	if n > t.k {
		n = t.k
	}
	s := make([]int32, n)
	s[0] = sid
	copy(s[1:], old[:n-1])
	key := ctxKey(s)
	if id, ok := t.index[key]; ok {
		return id
	}
	id := ctxID(len(t.ctxs))
	t.ctxs = append(t.ctxs, s)
	t.index[key] = id
	return id
}

func ctxKey(s []int32) string {
	b := make([]byte, 0, len(s)*5)
	for _, x := range s {
		b = append(b, byte(x), byte(x>>8), byte(x>>16), byte(x>>24), '|')
	}
	return string(b)
}

// calleeCtx resolves the context a direct call executes its callee
// under: the k-limited extension when it was enumerated, the callee's
// widened ε otherwise, or — for callees only reachable through paths
// the walk widened entirely — the callee's first enumerated context.
// The result is always an analyzed context, so summary lookups never
// dangle.
func (t *ctxTable) calleeCtx(cx ctxID, in *ir.Instr) ctxID {
	sid, ok := t.siteOf[in]
	if !ok {
		return epsilonCtx
	}
	callee := t.sites[sid].Callee
	if cand := t.extend(cx, sid); t.ctxSet[fnCtx{callee, cand}] {
		return cand
	}
	if t.ctxSet[fnCtx{callee, epsilonCtx}] {
		return epsilonCtx
	}
	if cs := t.fnCtxs[callee]; len(cs) > 0 {
		return cs[0]
	}
	return epsilonCtx
}

// contextsOf returns the analyzed contexts of fn (ascending, never
// empty for module functions).
func (t *ctxTable) contextsOf(fn string) []ctxID { return t.fnCtxs[fn] }

// numContexts reports the total number of analysis units — Σ per
// function |contexts| — for diagnostics and the explosion tests.
func (t *ctxTable) numContexts() int {
	n := 0
	for _, cs := range t.fnCtxs {
		n += len(cs)
	}
	return n
}
