package analysis

import (
	"fmt"

	"polar/internal/ir"
)

// The definite use-after-free / double-free pass. POLaR's booby traps
// turn dangling dereferences into probabilistic crashes at run time;
// this pass finds the definite ones before the program ever runs.
//
// The abstraction is liveness-of-allocation over the interpreter's
// allocation-site regions: per function, two bit vectors flow through
// the CFG — MAY-freed (union at joins) and MUST-freed (intersection at
// joins). An allocation re-arms its own site (the site abstraction's
// strong update), a free of a singleton points-to set moves the site
// into MUST, and a dereference whose every possible target is in MUST
// is a definite use-after-free. Warnings cover the merely-possible
// cases, gated on the full points-to set being may-freed so benign
// workloads stay quiet.

const uafPass = "uaf"

// UAF rule IDs.
const (
	RuleUseAfterFree    = "use-after-free"
	RulePossibleUAF     = "possible-use-after-free"
	RuleDoubleFree      = "double-free"
	RulePossibleDouble  = "possible-double-free"
	RuleUninitFptrRead  = "uninit-fptr-read"
)

// freedFact pairs the may/must freed region sets. nil is the solver's
// Init ("unvisited"): top for MUST, identity for the meet.
type freedFact struct {
	may, must bitset
}

func (a *freedFact) clone() *freedFact {
	return &freedFact{may: a.may.clone(), must: a.must.clone()}
}

func freedEq(a, b *freedFact) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.may.eq(b.may) && a.must.eq(b.must)
}

func freedMeet(a, b *freedFact) *freedFact {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := a.clone()
	out.may.or(b.may)
	out.must.and(b.must)
	return out
}

// uafEvent is one instruction's effect on / query of the freed state.
type uafEvent struct {
	idx   int
	alloc int    // region re-armed, or -1
	free  bitset // pointer targets being freed (heap regions only)
	deref bitset // pointer targets being dereferenced (heap regions only)
	what  string // human description of the dereference
}

func uafPassRun(ip *interp) Findings {
	var out Findings
	for _, fi := range ip.mi.Funcs {
		for _, cx := range ip.ctxs.contextsOf(fi.Fn.Name) {
			out = append(out, uafFunc(ip, fi, cx)...)
		}
	}
	out = append(out, uninitFptrReads(ip)...)
	// One function analyzed under many contexts re-derives the same
	// diagnostic once per context; report each distinct finding once
	// with a context count instead.
	return dedupeFindings(out)
}

func uafFunc(ip *interp, fi *FuncInfo, cx ctxID) Findings {
	f := fi.Fn
	events := make([][]uafEvent, len(f.Blocks))
	ip.replay(fi, cx, func(b, i int, in *ir.Instr, fx *regFacts) {
		if ev, ok := ip.uafEventFor(in, cx, fx); ok {
			ev.idx = i
			events[b] = append(events[b], ev)
		}
	})

	nRegions := len(ip.regions)
	in, _ := FixedPoint(fi, Problem[*freedFact]{
		Dir:      Forward,
		Boundary: &freedFact{may: newBitset(nRegions), must: newBitset(nRegions)},
		Init:     nil,
		Meet:     freedMeet,
		Transfer: func(b int, in *freedFact) *freedFact {
			if in == nil {
				return nil
			}
			st := in.clone()
			for _, ev := range events[b] {
				applyUAFEvent(st, ev)
			}
			return st
		},
		Equal: freedEq,
	})

	var out Findings
	add := func(b, i int, rule string, sev Severity, class, msg string) {
		out = append(out, Finding{
			Pass: uafPass, Rule: rule, Severity: sev, Class: class,
			Site: SiteOf(f, b, i), Message: msg,
		})
	}
	for b := range f.Blocks {
		if in[b] == nil {
			continue
		}
		st := in[b].clone()
		for _, ev := range events[b] {
			switch {
			case !ev.free.empty():
				cls := ip.classOf(ev.free)
				if ev.free.subsetOf(st.must) {
					add(b, ev.idx, RuleDoubleFree, SevError, cls,
						"object is already freed on every path reaching this free")
				} else if ev.free.intersects(st.may) && ev.free.subsetOf(st.may) {
					add(b, ev.idx, RulePossibleDouble, SevWarn, cls,
						"object may already be freed on some path reaching this free")
				}
			case !ev.deref.empty():
				cls := ip.classOf(ev.deref)
				if ev.deref.subsetOf(st.must) {
					add(b, ev.idx, RuleUseAfterFree, SevError, cls, fmt.Sprintf(
						"%s of an object freed on every path reaching it", ev.what))
				} else if ev.deref.subsetOf(st.may) && ev.deref.intersects(st.may) {
					add(b, ev.idx, RulePossibleUAF, SevWarn, cls, fmt.Sprintf(
						"%s of an object that may be freed on some path reaching it", ev.what))
				}
			}
			applyUAFEvent(st, ev)
		}
	}
	return out
}

func applyUAFEvent(st *freedFact, ev uafEvent) {
	if ev.alloc >= 0 {
		st.may.clear(ev.alloc)
		st.must.clear(ev.alloc)
		return
	}
	if !ev.free.empty() {
		st.may.or(ev.free)
		if ri := ev.free.single(); ri >= 0 {
			st.must.set(ri)
		}
	}
}

// uafEventFor classifies one instruction under context cx. Only heap
// allocation-site regions participate: globals and stack locals cannot
// be freed.
func (ip *interp) uafEventFor(in *ir.Instr, cx ctxID, fx *regFacts) (uafEvent, bool) {
	heapOnly := func(pts bitset) bitset {
		var out bitset
		pts.forEach(func(ri int) {
			if ip.regions[ri].kind == regHeap {
				if out == nil {
					out = newBitset(len(ip.regions))
				}
				out.set(ri)
			}
		})
		// Mixed pointer sets (heap ∪ global) are dropped: the deref may
		// legitimately hit the non-heap target, so nothing is definite
		// and a warning would be noise.
		if out != nil && out.count() != pts.count() {
			return nil
		}
		return out
	}
	ev := uafEvent{alloc: -1}
	switch in.Op {
	case ir.OpAlloc:
		if ri, ok := ip.instrRegion[instrCtx{in, cx}]; ok {
			ev.alloc = ri
			return ev, true
		}
	case ir.OpFree:
		ev.free = heapOnly(ip.val(fx, in.Args[0]).pts)
		return ev, !ev.free.empty()
	case ir.OpLoad:
		ev.deref = heapOnly(ip.val(fx, in.Args[0]).pts)
		ev.what = "load"
		return ev, !ev.deref.empty()
	case ir.OpStore:
		ev.deref = heapOnly(ip.val(fx, in.Args[1]).pts)
		ev.what = "store"
		return ev, !ev.deref.empty()
	case ir.OpMemcpy:
		dst := heapOnly(ip.val(fx, in.Args[0]).pts)
		src := heapOnly(ip.val(fx, in.Args[1]).pts)
		if dst == nil {
			dst = src
		} else if src != nil {
			dst = dst.clone()
			dst.or(src)
		}
		ev.deref = dst
		ev.what = "memcpy"
		return ev, !ev.deref.empty()
	case ir.OpMemset:
		ev.deref = heapOnly(ip.val(fx, in.Args[0]).pts)
		ev.what = "memset"
		return ev, !ev.deref.empty()
	case ir.OpCall:
		if in.Callee == "input_read" && len(in.Args) == 3 {
			ev.deref = heapOnly(ip.val(fx, in.Args[0]).pts)
			ev.what = "input_read into"
			return ev, !ev.deref.empty()
		}
	}
	return ev, false
}

// uninitFptrReads flags function-pointer members that are read from a
// class object whose allocation site never initializes them — the
// use-before-init victim shape: with a deterministic heap the stale
// slot is attacker-groomable.
func uninitFptrReads(ip *interp) Findings {
	var out Findings
	for _, fi := range ip.mi.Funcs {
		f := fi.Fn
		for _, cx := range ip.ctxs.contextsOf(f.Name) {
			ip.replay(fi, cx, func(b, i int, in *ir.Instr, fx *regFacts) {
				if in.Op != ir.OpLoad {
					return
				}
				av := ip.val(fx, in.Args[0])
				ri := av.pts.single()
				if ri < 0 || av.off < 0 {
					return
				}
				r := ip.regions[ri]
				if r.kind != regHeap || r.class == nil {
					return
				}
				for fidx, fd := range r.class.Fields {
					if r.class.Offset(fidx) != av.off {
						continue
					}
					if _, isFptr := fd.Type.(ir.FuncPtrType); !isFptr {
						continue
					}
					if !ip.regFieldW[ri][fidx] {
						out = append(out, Finding{
							Pass: uafPass, Rule: RuleUninitFptrRead, Severity: SevError,
							Class: r.class.Name, Site: SiteOf(f, b, i),
							Message: fmt.Sprintf(
								"function-pointer member %s.%s is read but never written for %s; the slot holds stale heap bytes",
								r.class.Name, fd.Name, r.describe()),
						})
					}
				}
			})
		}
	}
	return out
}
