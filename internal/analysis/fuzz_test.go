package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"polar/internal/analysis"
	"polar/internal/ir"
)

// FuzzAnalyze feeds arbitrary text through the IR parser, the
// validator and every analysis pass. Three properties under fuzzing:
// nothing panics, invalid modules are rejected before the passes run,
// and analysis of a valid module is deterministic.
func FuzzAnalyze(f *testing.F) {
	seeds := []string{filepath.Join("..", "..", "examples", "quickstart", "quickstart.ir")}
	dumps, _ := filepath.Glob(filepath.Join("..", "..", "examples", "casestudies", "*.ir"))
	seeds = append(seeds, dumps...)
	for _, path := range seeds {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Add("struct %T { a: i64 }\nfunc @main() -> i64 {\nentry:\n  ret 0\n}\n")

	f.Fuzz(func(t *testing.T, src string) {
		m, err := ir.Parse(src)
		if err != nil {
			return
		}
		if err := ir.Validate(m); err != nil {
			return
		}
		res1 := analysis.Analyze(m, analysis.Options{})
		res2 := analysis.Analyze(m, analysis.Options{})
		if res1.Findings.Render() != res2.Findings.Render() {
			t.Fatalf("nondeterministic findings:\n--- run1\n%s--- run2\n%s",
				res1.Findings.Render(), res2.Findings.Render())
		}
		t1, t2 := res1.Taint.TaintedClasses(), res2.Taint.TaintedClasses()
		if len(t1) != len(t2) {
			t.Fatalf("nondeterministic taint verdict: %v vs %v", t1, t2)
		}
		for i := range t1 {
			if t1[i] != t2[i] {
				t.Fatalf("nondeterministic taint verdict: %v vs %v", t1, t2)
			}
		}
	})
}
