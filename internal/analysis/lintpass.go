package analysis

import (
	"fmt"
	"sort"
	"strings"

	"polar/internal/ir"
)

// The layout-compatibility lint pass: finds the idioms §VI.B of the
// paper calls out as incompatible with per-allocation layout
// randomization. Code that addresses randomized objects through raw
// pointer arithmetic instead of fieldptr (the POLaR pass rewrites only
// fieldptr), copies structs partially or across classes, or lets
// derived interior pointers outlive the operation that produced them
// will break — or silently read the wrong member — once layouts are
// randomized per allocation.

const lintPass = "lint"

// Lint rule IDs.
const (
	RulePtrAddIntoClass   = "ptradd-into-class"
	RuleElemPtrIntoClass  = "elemptr-into-class"
	RuleFieldPtrMismatch  = "fieldptr-class-mismatch"
	RuleMemcpyCrossClass  = "memcpy-cross-class"
	RuleMemcpyPartial     = "memcpy-partial-class"
	RuleMemfillOverflow   = "memfill-overflow"
	RuleOOBStore          = "oob-store"
	RuleFieldPtrEscape    = "fieldptr-escape"
	RuleFieldPtrPastFree  = "fieldptr-live-across-free"
)

// lintPassRun walks every function, under each of its analyzed calling
// contexts, with the converged facts and applies the rules. Findings
// that repeat across contexts are reported once with a context count.
func lintPassRun(ip *interp) Findings {
	var out Findings
	for _, fi := range ip.mi.Funcs {
		for _, cx := range ip.ctxs.contextsOf(fi.Fn.Name) {
			out = append(out, lintFunc(ip, fi, cx)...)
		}
	}
	return dedupeFindings(out)
}

type freeSite struct {
	block, idx int
	pts        bitset
}

func lintFunc(ip *interp, fi *FuncInfo, cx ctxID) Findings {
	var out Findings
	f := fi.Fn
	add := func(b, i int, rule string, sev Severity, class, msg string) {
		out = append(out, Finding{
			Pass: lintPass, Rule: rule, Severity: sev, Class: class,
			Site: SiteOf(f, b, i), Message: msg,
		})
	}

	// fieldptr defs (for the escape rules) and free sites (for the
	// live-across-free rule), collected in one replay.
	type fptrDef struct {
		block, idx int
		dest       int
		region     int // singleton heap-class region, or -1
		class      string
	}
	var fptrDefs []fptrDef
	var frees []freeSite

	ip.replay(fi, cx, func(b, i int, in *ir.Instr, fx *regFacts) {
		switch in.Op {
		case ir.OpPtrAdd:
			base := ip.val(fx, in.Args[0])
			if names := ip.classNamesIn(base.pts); len(names) > 0 {
				add(b, i, RulePtrAddIntoClass, SevWarn, names[0], fmt.Sprintf(
					"raw ptradd into randomized class %s bypasses fieldptr; the layout pass cannot rewrite this offset",
					nameList(names)))
			}
		case ir.OpElemPtr:
			base := ip.val(fx, in.Args[0])
			names := ip.classNamesIn(base.pts)
			// Indexing an array OF the class is fine; byte- or other-
			// typed indexing into a class interior is not.
			if st, ok := in.Type.(*ir.StructType); ok && len(names) == 1 && st.Name == names[0] {
				names = nil
			}
			if len(names) > 0 {
				add(b, i, RuleElemPtrIntoClass, SevWarn, names[0], fmt.Sprintf(
					"elemptr with element type %s indexes into randomized class %s; use fieldptr for member access",
					in.Type, nameList(names)))
			}
		case ir.OpFieldPtr:
			base := ip.val(fx, in.Args[0])
			if in.Struct != nil {
				if cls, bad := ip.fieldPtrMismatch(base.pts, in.Struct); bad {
					add(b, i, RuleFieldPtrMismatch, SevError, in.Struct.Name, fmt.Sprintf(
						"fieldptr declares class %%%s but the pointer can only address %s; with randomized layouts the offsets disagree",
						in.Struct.Name, cls))
				}
				region := -1
				if ri := base.pts.single(); ri >= 0 {
					if r := ip.regions[ri]; r.kind == regHeap && r.class != nil {
						region = ri
					}
				}
				fptrDefs = append(fptrDefs, fptrDef{
					block: b, idx: i, dest: in.Dest, region: region, class: in.Struct.Name,
				})
			}
		case ir.OpMemcpy:
			dst := ip.val(fx, in.Args[0])
			src := ip.val(fx, in.Args[1])
			dstN := ip.classNamesIn(dst.pts)
			srcN := ip.classNamesIn(src.pts)
			if len(dstN) > 0 && len(srcN) > 0 && !overlap(dstN, srcN) {
				add(b, i, RuleMemcpyCrossClass, SevWarn, dstN[0], fmt.Sprintf(
					"memcpy from class %s into class %s copies members laid out under different random orders",
					nameList(srcN), nameList(dstN)))
			}
			if n, ok := constOf(in.Args[2]); ok {
				for _, av := range []absVal{dst, src} {
					if ri := av.pts.single(); ri >= 0 && av.off == 0 {
						r := ip.regions[ri]
						if r.kind == regHeap && r.class != nil && int(n) != r.class.Size() && int(n) < r.class.Size() {
							add(b, i, RuleMemcpyPartial, SevWarn, r.class.Name, fmt.Sprintf(
								"memcpy of %d bytes covers only part of class %%%s (%d bytes); under randomization the prefix holds different members per allocation",
								n, r.class.Name, r.class.Size()))
							break
						}
					}
				}
				if msg := ip.oobFill(dst, int(n)); msg != "" {
					add(b, i, RuleMemfillOverflow, SevError, ip.classOf(dst.pts), msg)
				}
			}
		case ir.OpMemset:
			if n, ok := constOf(in.Args[2]); ok {
				dst := ip.val(fx, in.Args[0])
				if msg := ip.oobFill(dst, int(n)); msg != "" {
					add(b, i, RuleMemfillOverflow, SevError, ip.classOf(dst.pts), msg)
				}
			}
		case ir.OpStore:
			av := ip.val(fx, in.Args[1])
			if msg := ip.oobAccess(av, in.Type.Size()); msg != "" {
				add(b, i, RuleOOBStore, SevError, ip.classOf(av.pts), msg)
			}
		case ir.OpFree:
			av := ip.val(fx, in.Args[0])
			if !av.pts.empty() {
				frees = append(frees, freeSite{block: b, idx: i, pts: av.pts})
			}
		}
	})

	// Escape analysis for fieldptr results: a derived interior pointer
	// is only safe while the deriving object's layout is the one it
	// was computed against — storing it, returning it, or passing it
	// to another function extends its life beyond the access idiom the
	// instrumentation pass can see.
	before := func(ab, ai, bb, bi int) bool {
		if ab == bb {
			return ai < bi
		}
		return fi.Dominates(ab, bb)
	}
	for _, d := range fptrDefs {
		if d.dest < 0 || d.dest >= len(fi.DU.Uses) {
			continue
		}
		for _, u := range fi.DU.Uses[d.dest] {
			use := &f.Blocks[u.Block].Instrs[u.Index]
			switch {
			case use.Op == ir.OpStore && use.Args[0].Kind == ir.ValReg && use.Args[0].Reg == d.dest:
				add(u.Block, u.Index, RuleFieldPtrEscape, SevInfo, d.class,
					"fieldptr result stored to memory; the saved interior pointer encodes one allocation's layout")
			case use.Op == ir.OpRet:
				add(u.Block, u.Index, RuleFieldPtrEscape, SevInfo, d.class,
					"fieldptr result returned; the caller receives an interior pointer bound to one allocation's layout")
			case use.Op == ir.OpCall && ip.mi.M.Func(use.Callee) != nil:
				add(u.Block, u.Index, RuleFieldPtrEscape, SevInfo, d.class,
					fmt.Sprintf("fieldptr result passed to @%s; interior pointers crossing calls outlive the deriving access", use.Callee))
			}
			if d.region >= 0 {
				for _, fr := range frees {
					if fr.pts.has(d.region) &&
						before(d.block, d.idx, fr.block, fr.idx) &&
						before(fr.block, fr.idx, u.Block, u.Index) {
						add(u.Block, u.Index, RuleFieldPtrPastFree, SevWarn, d.class, fmt.Sprintf(
							"fieldptr derived at %s is used after its object may be freed at %s",
							SiteOf(f, d.block, d.idx).Pos(), SiteOf(f, fr.block, fr.idx).Pos()))
						break
					}
				}
			}
		}
	}
	return out
}

// classNamesIn returns the sorted class names of heap regions in pts.
func (ip *interp) classNamesIn(pts bitset) []string {
	seen := map[string]bool{}
	pts.forEach(func(ri int) {
		r := ip.regions[ri]
		if r.kind == regHeap && r.class != nil {
			seen[r.class.Name] = true
		}
	})
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (ip *interp) classOf(pts bitset) string {
	if names := ip.classNamesIn(pts); len(names) > 0 {
		return names[0]
	}
	return ""
}

// fieldPtrMismatch reports a definite class confusion: the pointer's
// targets include allocation-site regions, and none of them is an
// instance of the declared struct.
func (ip *interp) fieldPtrMismatch(pts bitset, declared *ir.StructType) (string, bool) {
	sawAlloc := false
	var classes []string
	match := false
	pts.forEach(func(ri int) {
		r := ip.regions[ri]
		if r.kind == regGlobal {
			return
		}
		sawAlloc = true
		if r.class != nil && r.class.Name == declared.Name {
			match = true
		}
		if r.class != nil {
			classes = append(classes, "%"+r.class.Name)
		} else {
			classes = append(classes, "a raw buffer")
		}
	})
	if !sawAlloc || match {
		return "", false
	}
	sort.Strings(classes)
	return nameList(dedupe(classes)), true
}

// oobFill checks a constant-length fill/copy against the target
// region's static size. Definite only: singleton target, known size,
// known offset.
func (ip *interp) oobFill(av absVal, n int) string {
	ri := av.pts.single()
	if ri < 0 || av.off < 0 || n <= 0 {
		return ""
	}
	r := ip.regions[ri]
	if r.size < 0 || av.off+n <= r.size {
		return ""
	}
	return fmt.Sprintf("fill of %d bytes at offset %d overruns %s (%d bytes)", n, av.off, r.describe(), r.size)
}

// oobAccess checks a fixed-size store against the target bounds.
func (ip *interp) oobAccess(av absVal, size int) string {
	ri := av.pts.single()
	if ri < 0 || av.off < 0 || size <= 0 {
		return ""
	}
	r := ip.regions[ri]
	if r.size < 0 || av.off+size <= r.size {
		return ""
	}
	return fmt.Sprintf("%d-byte store at offset %d overruns %s (%d bytes)", size, av.off, r.describe(), r.size)
}

func overlap(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

func dedupe(xs []string) []string {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || xs[i-1] != x {
			out = append(out, x)
		}
	}
	return out
}

func nameList(names []string) string {
	quoted := make([]string, len(names))
	for i, n := range names {
		if strings.HasPrefix(n, "%") || strings.Contains(n, " ") {
			quoted[i] = n
		} else {
			quoted[i] = "%" + n
		}
	}
	return strings.Join(quoted, ", ")
}
