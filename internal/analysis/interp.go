package analysis

import (
	"fmt"

	"polar/internal/ir"
)

// This file implements the whole-module abstract interpreter the three
// analysis passes share. The abstraction mirrors the dynamic taint
// engine (internal/taint) closely enough that every class the dynamic
// campaign can mark is also marked statically:
//
//   - Memory is partitioned into REGIONS: one per allocation site
//     (heap alloc and stack local) plus one per module global. A
//     pointer value abstracts to the set of regions it may address
//     plus, when derivable, a constant byte offset into them.
//   - Register facts are flow-sensitive per function (solved with the
//     generic FixedPoint engine); memory facts are flow-insensitive
//     and monotonic — a region accumulates taint, stored pointers and
//     written-field marks for the whole run.
//   - Functions are joined interprocedurally: call sites merge
//     argument facts into the callee's parameter summary, returns
//     merge back, and the per-frame control-taint bit is inherited by
//     callees exactly like the dynamic engine's frame.control.
//
// Taint sources match internal/taint: the input_* builtins. The main
// entry's parameters are additionally treated as untrusted (the static
// analysis cannot know how the host invokes main), which can only add
// classes — recall against the dynamic report is preserved.

// ---------------------------------------------------------------------
// bitset

// bitset is a fixed-width bit vector over region (or block) indexes.
// The zero value (nil) is the empty set and is shared freely; all
// mutating methods require a non-nil receiver sized by newBitset.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) has(i int) bool {
	w := i >> 6
	return w < len(b) && b[w]&(1<<uint(i&63)) != 0
}

// set adds i and reports whether the set changed.
func (b bitset) set(i int) bool {
	w, m := i>>6, uint64(1)<<uint(i&63)
	if b[w]&m != 0 {
		return false
	}
	b[w] |= m
	return true
}

func (b bitset) clear(i int) {
	if w := i >> 6; w < len(b) {
		b[w] &^= 1 << uint(i&63)
	}
}

// or folds o into b and reports whether b grew.
func (b bitset) or(o bitset) bool {
	changed := false
	for i := range o {
		if o[i]&^b[i] != 0 {
			b[i] |= o[i]
			changed = true
		}
	}
	return changed
}

func (b bitset) and(o bitset) {
	for i := range b {
		var w uint64
		if i < len(o) {
			w = o[i]
		}
		b[i] &= w
	}
}

func (b bitset) clone() bitset {
	if b == nil {
		return nil
	}
	out := make(bitset, len(b))
	copy(out, b)
	return out
}

func (b bitset) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

func (b bitset) eq(o bitset) bool {
	n := len(b)
	if len(o) > n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		var x, y uint64
		if i < len(b) {
			x = b[i]
		}
		if i < len(o) {
			y = o[i]
		}
		if x != y {
			return false
		}
	}
	return true
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

func (b bitset) subsetOf(o bitset) bool {
	for i, w := range b {
		var y uint64
		if i < len(o) {
			y = o[i]
		}
		if w&^y != 0 {
			return false
		}
	}
	return true
}

func (b bitset) intersects(o bitset) bool {
	n := len(b)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if b[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

// forEach visits the members in ascending order.
func (b bitset) forEach(f func(int)) {
	for wi, w := range b {
		for ; w != 0; w &= w - 1 {
			bit := 0
			for t := w & (-w); t > 1; t >>= 1 {
				bit++
			}
			f(wi*64 + bit)
		}
	}
}

// single returns the sole member, or -1 if the set is not a singleton.
func (b bitset) single() int {
	found := -1
	for wi, w := range b {
		if w == 0 {
			continue
		}
		if found != -1 || w&(w-1) != 0 {
			return -1
		}
		bit := 0
		for t := w & (-w); t > 1; t >>= 1 {
			bit++
		}
		found = wi*64 + bit
	}
	return found
}

// ---------------------------------------------------------------------
// regions

type regionKind int

const (
	regHeap regionKind = iota + 1 // heap allocation site
	regStack
	regGlobal
)

// region is one abstract memory object: an allocation site under one
// calling context, or a module global. Heap cloning means pointers
// derived from the same syntactic site in different contexts get
// DIFFERENT regions; the context-insensitive k=0 mode degenerates to
// one region per site.
type region struct {
	kind   regionKind
	class  *ir.StructType // non-nil for struct allocations
	size   int            // byte size when statically known, else -1
	fn     string         // owning function, for alloc sites
	site   ir.SiteRef     // alloc instruction, for alloc sites
	ctx    ctxID          // allocating context, for alloc sites
	global string
}

func (r *region) describe() string {
	switch r.kind {
	case regGlobal:
		return "global @" + r.global
	case regStack:
		return fmt.Sprintf("local at @%s #%d.%d%s", r.fn, r.site.Block, r.site.Index, r.classSuffix())
	default:
		return fmt.Sprintf("alloc at @%s #%d.%d%s", r.fn, r.site.Block, r.site.Index, r.classSuffix())
	}
}

func (r *region) classSuffix() string {
	if r.class != nil {
		return " (%" + r.class.Name + ")"
	}
	return ""
}

// ---------------------------------------------------------------------
// abstract values and register facts

const offUnknown = -1

// absVal abstracts one register: may the value carry input taint, and
// — when it is used as an address — which regions may it point into,
// at which constant byte offset (offUnknown when not derivable).
type absVal struct {
	taint bool
	off   int
	pts   bitset
}

func (a absVal) eq(b absVal) bool {
	return a.taint == b.taint && a.off == b.off && a.pts.eq(b.pts)
}

// joinVal is the lattice join. Inputs are treated as immutable; the
// result may alias an input's pts set.
func joinVal(a, b absVal) absVal {
	out := absVal{taint: a.taint || b.taint}
	switch {
	case a.pts.empty():
		out.pts, out.off = b.pts, b.off
	case b.pts.empty():
		out.pts, out.off = a.pts, a.off
	case a.pts.eq(b.pts):
		out.pts = a.pts
		out.off = a.off
		if a.off != b.off {
			out.off = offUnknown
		}
	default:
		u := a.pts.clone()
		u.or(b.pts)
		out.pts = u
		out.off = a.off
		if a.off != b.off {
			out.off = offUnknown
		}
	}
	return out
}

// regFacts is the per-program-point fact: one absVal per register plus
// the frame's accumulated control-taint bit.
type regFacts struct {
	regs []absVal
	ctl  bool
}

func (fx *regFacts) clone() *regFacts {
	out := &regFacts{regs: make([]absVal, len(fx.regs)), ctl: fx.ctl}
	copy(out.regs, fx.regs)
	return out
}

func factsEq(a, b *regFacts) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.ctl != b.ctl || len(a.regs) != len(b.regs) {
		return false
	}
	for i := range a.regs {
		if !a.regs[i].eq(b.regs[i]) {
			return false
		}
	}
	return true
}

func joinFacts(a, b *regFacts) *regFacts {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := &regFacts{regs: make([]absVal, len(a.regs)), ctl: a.ctl || b.ctl}
	for i := range a.regs {
		out.regs[i] = joinVal(a.regs[i], b.regs[i])
	}
	return out
}

// ---------------------------------------------------------------------
// the interpreter

// instrCtx keys a per-context fact about one instruction (an alloc
// site's cloned region).
type instrCtx struct {
	in  *ir.Instr
	ctx ctxID
}

type interp struct {
	mi   *ModuleInfo
	ctxs *ctxTable

	regions     []*region
	instrRegion map[instrCtx]int
	globalReg   map[string]int

	// Flow-insensitive, monotonic memory state.
	regTaint  []bool   // some byte of the region may be tainted
	regFieldT [][]bool // class regions: per-field may-taint
	regFieldW [][]bool // class regions: per-field ever-written
	regPts    []bitset // pointers that may be stored in the region

	// Interprocedural summaries, one per (function, context).
	params map[fnCtx][]absVal
	rets   map[fnCtx]absVal
	ctlIn  map[fnCtx]bool

	// Class verdicts (the static TaintClass output).
	classContent map[string]bool
	classAlloc   map[string]bool
	classFree    map[string]bool
	classFields  map[string]map[int]bool

	// Converged per-block entry facts, per (function, context).
	blockIn map[fnCtx][]*regFacts

	// version counts monotonic state growth; the outer fixpoint stops
	// on a sweep that leaves it unchanged.
	version int
}

func newInterp(mi *ModuleInfo, opts Options) *interp {
	k := opts.ContextK
	switch {
	case k == 0:
		k = defaultContextK
	case k < 0: // ContextInsensitive
		k = 0
	}
	ip := &interp{
		mi:           mi,
		ctxs:         buildContexts(mi.M, k, opts.MaxContexts),
		instrRegion:  make(map[instrCtx]int),
		globalReg:    make(map[string]int),
		params:       make(map[fnCtx][]absVal),
		rets:         make(map[fnCtx]absVal),
		ctlIn:        make(map[fnCtx]bool),
		classContent: make(map[string]bool),
		classAlloc:   make(map[string]bool),
		classFree:    make(map[string]bool),
		classFields:  make(map[string]map[int]bool),
		blockIn:      make(map[fnCtx][]*regFacts),
	}
	for _, f := range mi.M.Funcs {
		for bi, blk := range f.Blocks {
			for ii := range blk.Instrs {
				in := &blk.Instrs[ii]
				if in.Op != ir.OpAlloc && in.Op != ir.OpLocal {
					continue
				}
				// Heap cloning: one region per (site, calling context).
				for _, cx := range ip.ctxs.contextsOf(f.Name) {
					r := &region{fn: f.Name, site: ir.SiteRef{Block: bi, Index: ii}, ctx: cx, class: in.Struct}
					if in.Op == ir.OpAlloc {
						r.kind = regHeap
						r.size = in.Type.Size()
						if len(in.Args) == 1 { // alloc N instances
							if c, ok := constOf(in.Args[0]); ok && c > 0 {
								r.size *= int(c)
							} else {
								r.size = -1
							}
						}
					} else {
						r.kind = regStack
						r.size = in.Type.Size()
					}
					ip.instrRegion[instrCtx{in, cx}] = len(ip.regions)
					ip.regions = append(ip.regions, r)
				}
			}
		}
	}
	for _, g := range mi.M.Globals {
		ip.globalReg[g.Name] = len(ip.regions)
		ip.regions = append(ip.regions, &region{kind: regGlobal, global: g.Name, size: g.Size})
	}
	n := len(ip.regions)
	ip.regTaint = make([]bool, n)
	ip.regFieldT = make([][]bool, n)
	ip.regFieldW = make([][]bool, n)
	ip.regPts = make([]bitset, n)
	for i, r := range ip.regions {
		if r.class != nil {
			ip.regFieldT[i] = make([]bool, len(r.class.Fields))
			ip.regFieldW[i] = make([]bool, len(r.class.Fields))
		}
		ip.regPts[i] = newBitset(n)
	}
	// Seed the taint sources: the entry function's parameters, in every
	// context main is analyzed under (the static analysis cannot know
	// how the host invokes main).
	for _, f := range mi.M.Funcs {
		for _, cx := range ip.ctxs.contextsOf(f.Name) {
			ps := make([]absVal, len(f.Params))
			if f.Name == "main" {
				for i := range ps {
					ps[i].taint = true
				}
			}
			ip.params[fnCtx{f.Name, cx}] = ps
		}
	}
	return ip
}

func constOf(v ir.Value) (int64, bool) {
	if v.Kind == ir.ValConst {
		return v.Int, true
	}
	return 0, false
}

// run iterates all (function, context) units to a global fixed point.
// Memory, summary and class state only ever grow, so termination is
// guaranteed; the sweep bound is a safety valve for the fuzzer, scaled
// with the module since summary chains now traverse context-cloned
// units.
func (ip *interp) run() {
	maxSweeps := 64 + 4*len(ip.mi.Funcs)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		before := ip.version
		factsChanged := false
		for _, fi := range ip.mi.Funcs {
			for _, cx := range ip.ctxs.contextsOf(fi.Fn.Name) {
				if ip.solveFunc(fi, cx) {
					factsChanged = true
				}
			}
		}
		if ip.version == before && !factsChanged {
			return
		}
	}
}

// solveFunc runs the flow-sensitive register analysis for one function
// under one calling context, against the current memory/summary state,
// and stores the per-block entry facts. Reports whether any stored fact
// changed.
func (ip *interp) solveFunc(fi *FuncInfo, cx ctxID) bool {
	f := fi.Fn
	key := fnCtx{f.Name, cx}
	boundary := &regFacts{regs: make([]absVal, f.NumRegs), ctl: ip.ctlIn[key]}
	copy(boundary.regs, ip.params[key])
	in, _ := FixedPoint(fi, Problem[*regFacts]{
		Dir:      Forward,
		Boundary: boundary,
		Init:     nil,
		Meet:     joinFacts,
		Transfer: func(b int, in *regFacts) *regFacts {
			if in == nil {
				return nil
			}
			fx := in.clone()
			for ii := range f.Blocks[b].Instrs {
				ip.step(f, cx, &f.Blocks[b].Instrs[ii], fx)
			}
			return fx
		},
		Equal: factsEq,
	})
	old := ip.blockIn[key]
	changed := old == nil
	for b := range in {
		if old != nil && !factsEq(old[b], in[b]) {
			changed = true
		}
	}
	ip.blockIn[key] = in
	return changed
}

// replay walks every reachable block of fi under context cx with the
// converged facts, invoking visit with the fact state in force BEFORE
// each instruction. The passes build their reports on top of this.
func (ip *interp) replay(fi *FuncInfo, cx ctxID, visit func(b, i int, in *ir.Instr, fx *regFacts)) {
	f := fi.Fn
	blockIn := ip.blockIn[fnCtx{f.Name, cx}]
	if blockIn == nil {
		return
	}
	for _, b := range fi.CFG.ReversePostorder() {
		if blockIn[b] == nil {
			continue
		}
		fx := blockIn[b].clone()
		for ii := range f.Blocks[b].Instrs {
			in := &f.Blocks[b].Instrs[ii]
			visit(b, ii, in, fx)
			ip.step(f, cx, in, fx)
		}
	}
}

// val evaluates an operand under the current facts.
func (ip *interp) val(fx *regFacts, v ir.Value) absVal {
	switch v.Kind {
	case ir.ValReg:
		if v.Reg >= 0 && v.Reg < len(fx.regs) {
			return fx.regs[v.Reg]
		}
	case ir.ValGlobal:
		if ri, ok := ip.globalReg[v.Sym]; ok {
			pts := newBitset(len(ip.regions))
			pts.set(ri)
			return absVal{pts: pts, off: 0}
		}
	}
	return absVal{}
}

func (ip *interp) setReg(fx *regFacts, dest int, v absVal) {
	if dest >= 0 && dest < len(fx.regs) {
		fx.regs[dest] = v
	}
}

// step applies one instruction's transfer function under context cx:
// updates fx's register facts and folds memory effects into the global
// state.
func (ip *interp) step(f *ir.Func, cx ctxID, in *ir.Instr, fx *regFacts) {
	switch in.Op {
	case ir.OpAlloc, ir.OpLocal:
		pts := newBitset(len(ip.regions))
		if ri, ok := ip.instrRegion[instrCtx{in, cx}]; ok {
			pts.set(ri)
		}
		ip.setReg(fx, in.Dest, absVal{pts: pts, off: 0})
		if in.Op == ir.OpAlloc && in.Struct != nil && fx.ctl {
			ip.markClassLifecycle(ip.classAlloc, in.Struct.Name)
		}
	case ir.OpFree:
		if fx.ctl {
			av := ip.val(fx, in.Args[0])
			av.pts.forEach(func(ri int) {
				r := ip.regions[ri]
				if r.kind == regHeap && r.class != nil {
					ip.markClassLifecycle(ip.classFree, r.class.Name)
				}
			})
		}
	case ir.OpLoad:
		av := ip.val(fx, in.Args[0])
		ip.setReg(fx, in.Dest, ip.loadFrom(av, in.Type.Size()))
	case ir.OpStore:
		sv := ip.val(fx, in.Args[0])
		av := ip.val(fx, in.Args[1])
		ip.writeTo(av, in.Type.Size(), sv)
	case ir.OpMemcpy:
		dst := ip.val(fx, in.Args[0])
		src := ip.val(fx, in.Args[1])
		n := -1
		if c, ok := constOf(in.Args[2]); ok {
			n = int(c)
		}
		loaded := ip.loadFrom(src, n)
		ip.writeTo(dst, n, loaded)
	case ir.OpMemset:
		// The dynamic engine clears labels on constant fills; the
		// static memory state cannot shrink, so a memset only marks
		// when the fill byte itself is tainted.
		dst := ip.val(fx, in.Args[0])
		fill := ip.val(fx, in.Args[1])
		n := -1
		if c, ok := constOf(in.Args[2]); ok {
			n = int(c)
		}
		ip.writeTo(dst, n, absVal{taint: fill.taint})
	case ir.OpFieldPtr:
		base := ip.val(fx, in.Args[0])
		out := absVal{taint: base.taint, pts: base.pts, off: offUnknown}
		if in.Struct != nil && in.Field >= 0 && in.Field < len(in.Struct.Fields) {
			out.off = in.Struct.Offset(in.Field)
		}
		ip.setReg(fx, in.Dest, out)
	case ir.OpElemPtr:
		base := ip.val(fx, in.Args[0])
		out := absVal{taint: base.taint, pts: base.pts, off: offUnknown}
		if c, ok := constOf(in.Args[1]); ok && base.off != offUnknown {
			out.off = base.off + int(c)*in.Type.Size()
		}
		ip.setReg(fx, in.Dest, out)
	case ir.OpPtrAdd:
		base := ip.val(fx, in.Args[0])
		out := absVal{taint: base.taint, pts: base.pts, off: offUnknown}
		if c, ok := constOf(in.Args[1]); ok && base.off != offUnknown {
			out.off = base.off + int(c)
		}
		ip.setReg(fx, in.Dest, out)
	case ir.OpBin, ir.OpFBin, ir.OpCmp, ir.OpFCmp:
		a := ip.val(fx, in.Args[0])
		b := ip.val(fx, in.Args[1])
		out := absVal{taint: a.taint || b.taint, off: offUnknown}
		// Integer arithmetic on a pointer keeps the base's region set
		// (mirrors PtrDerive keeping the base label).
		switch {
		case !a.pts.empty() && b.pts.empty():
			out.pts = a.pts
		case a.pts.empty() && !b.pts.empty():
			out.pts = b.pts
		case !a.pts.empty():
			u := a.pts.clone()
			u.or(b.pts)
			out.pts = u
		}
		ip.setReg(fx, in.Dest, out)
	case ir.OpItoF, ir.OpFtoI, ir.OpMov:
		ip.setReg(fx, in.Dest, ip.val(fx, in.Args[0]))
	case ir.OpCondBr:
		if ip.val(fx, in.Args[0]).taint {
			fx.ctl = true
		}
	case ir.OpCall:
		ip.stepCall(f, cx, in, fx)
	case ir.OpRet:
		if len(in.Args) == 1 {
			key := fnCtx{f.Name, cx}
			old := ip.rets[key]
			nv := joinVal(old, ip.val(fx, in.Args[0]))
			if !nv.eq(old) {
				ip.rets[key] = nv
				ip.version++
			}
		}
	}
}

func (ip *interp) stepCall(f *ir.Func, cx ctxID, in *ir.Instr, fx *regFacts) {
	callee := ip.mi.M.Func(in.Callee)
	if callee == nil { // builtin, resolved by the VM
		switch in.Callee {
		case "input_read":
			// input_read(dst, off, n): tainted bytes land at dst.
			dst := ip.val(fx, in.Args[0])
			n := -1
			if len(in.Args) == 3 {
				if c, ok := constOf(in.Args[2]); ok {
					n = int(c)
				}
			}
			ip.writeTo(dst, n, absVal{taint: true})
			ip.setReg(fx, in.Dest, absVal{taint: true})
		case "input_len", "input_byte":
			ip.setReg(fx, in.Dest, absVal{taint: true})
		default:
			// Like the dynamic hook: result = union of argument labels.
			out := absVal{}
			for _, a := range in.Args {
				out.taint = out.taint || ip.val(fx, a).taint
			}
			ip.setReg(fx, in.Dest, out)
		}
		return
	}
	// Module call: join arguments into the callee's parameter summary
	// UNDER THE EXTENDED CONTEXT, inherit control taint, read back that
	// context's return summary. This is the heap-cloning step: distinct
	// callers stop sharing one merged summary.
	key := fnCtx{callee.Name, ip.ctxs.calleeCtx(cx, in)}
	ps := ip.params[key]
	for i := range ps {
		if i >= len(in.Args) {
			break
		}
		nv := joinVal(ps[i], ip.val(fx, in.Args[i]))
		if !nv.eq(ps[i]) {
			ps[i] = nv
			ip.version++
		}
	}
	if fx.ctl && !ip.ctlIn[key] {
		ip.ctlIn[key] = true
		ip.version++
	}
	ip.setReg(fx, in.Dest, ip.rets[key])
}

// loadFrom abstracts a read of size bytes through pointer av: the
// result carries any taint the addressed range may hold plus every
// pointer any addressed region may store. size -1 means unknown.
func (ip *interp) loadFrom(av absVal, size int) absVal {
	if av.pts.empty() {
		// Unknown target (forged address): fall back to the pointer's
		// own taint so data cannot silently launder through it.
		return absVal{taint: av.taint}
	}
	out := absVal{off: offUnknown}
	av.pts.forEach(func(ri int) {
		if ip.rangeTainted(ri, av.off, size) {
			out.taint = true
		}
		if !ip.regPts[ri].empty() {
			if out.pts == nil {
				out.pts = newBitset(len(ip.regions))
			}
			out.pts.or(ip.regPts[ri])
		}
	})
	return out
}

// writeTo abstracts a write of size bytes of value sv through pointer
// av (size -1 = unknown).
func (ip *interp) writeTo(av absVal, size int, sv absVal) {
	av.pts.forEach(func(ri int) {
		ip.markWrite(ri, av.off, size, sv)
	})
}

// fieldRange maps a byte range of a class region to field indexes
// [lo, hi); off -1 or n -1 selects all fields.
func fieldRange(st *ir.StructType, off, n int) (lo, hi int) {
	if off < 0 || n < 0 {
		return 0, len(st.Fields)
	}
	lo = -1
	for i, fd := range st.Fields {
		fo := st.Offset(i)
		if fo+fd.Type.Size() <= off || fo >= off+n {
			continue
		}
		if lo == -1 {
			lo = i
		}
		hi = i + 1
	}
	if lo == -1 {
		return 0, 0
	}
	return lo, hi
}

func (ip *interp) rangeTainted(ri, off, n int) bool {
	r := ip.regions[ri]
	if r.class == nil || off < 0 || n < 0 {
		return ip.regTaint[ri]
	}
	lo, hi := fieldRange(r.class, off, n)
	for i := lo; i < hi; i++ {
		if ip.regFieldT[ri][i] {
			return true
		}
	}
	return false
}

// markWrite records sv landing at [off, off+n) of region ri: written
// fields, taint and stored pointers, and the class content verdict.
func (ip *interp) markWrite(ri, off, n int, sv absVal) {
	r := ip.regions[ri]
	if !sv.pts.empty() && ip.regPts[ri].or(sv.pts) {
		ip.version++
	}
	if r.class != nil {
		lo, hi := fieldRange(r.class, off, n)
		for i := lo; i < hi; i++ {
			if !ip.regFieldW[ri][i] {
				ip.regFieldW[ri][i] = true
				ip.version++
			}
			if sv.taint && !ip.regFieldT[ri][i] {
				ip.regFieldT[ri][i] = true
				ip.version++
			}
		}
	}
	if !sv.taint {
		return
	}
	if !ip.regTaint[ri] {
		ip.regTaint[ri] = true
		ip.version++
	}
	// Content attribution follows the dynamic engine: only live heap
	// objects with a known class are attributed.
	if r.kind == regHeap && r.class != nil {
		if !ip.classContent[r.class.Name] {
			ip.classContent[r.class.Name] = true
			ip.version++
		}
		lo, hi := fieldRange(r.class, off, n)
		fs := ip.classFields[r.class.Name]
		if fs == nil {
			fs = make(map[int]bool)
			ip.classFields[r.class.Name] = fs
		}
		for i := lo; i < hi; i++ {
			if !fs[i] {
				fs[i] = true
				ip.version++
			}
		}
	}
}

func (ip *interp) markClassLifecycle(m map[string]bool, class string) {
	if !m[class] {
		m[class] = true
		ip.version++
	}
}
