package analysis_test

import (
	"testing"

	"polar/internal/analysis"
	"polar/internal/workload"
)

// The norandom advisor on the shipped example: WireHeader's only
// findings are fixed-prefix wire copies and no input reaches it, so it
// is suggested; Packet carries the same copy findings but IS tainted,
// so it must never appear.
func TestSuggestWireHeaderNotPacket(t *testing.T) {
	m := mustParseFile(t, "../../examples/norandom/wire.ir")
	res := analysis.Analyze(m, analysis.Options{EnableAll: true})
	sugg := analysis.SuggestNoRandom(m, res, nil)
	byClass := map[string]analysis.Suggestion{}
	for _, s := range sugg {
		byClass[s.Class] = s
	}
	if _, ok := byClass["WireHeader"]; !ok {
		t.Errorf("WireHeader not suggested; got %+v\nfindings:\n%s", sugg, res.Findings.Render())
	}
	if _, ok := byClass["Packet"]; ok {
		t.Errorf("tainted class Packet suggested for norandom — the veto failed")
	}
	for _, s := range sugg {
		if s.Findings == 0 || len(s.Rules) == 0 {
			t.Errorf("suggestion without supporting findings: %+v", s)
		}
	}
}

// A dynamic TaintClass report vetoes even when the static pass sees no
// taint: the advisor must drop any class the campaign names.
func TestSuggestDynamicReportVetoes(t *testing.T) {
	m := mustParseFile(t, "../../examples/norandom/wire.ir")
	res := analysis.Analyze(m, analysis.Options{EnableAll: true})
	for _, s := range analysis.SuggestNoRandom(m, res, []string{"WireHeader"}) {
		if s.Class == "WireHeader" {
			t.Fatalf("dynamically-reported class still suggested: %+v", s)
		}
	}
}

// Self-host property over the whole corpus: across every workload, no
// suggestion may ever name a class that static taint marks or the
// workload's dynamic expectation lists — suggesting norandom for a
// tainted class would trade away exactly the protection POLaR provides.
func TestSuggestNeverNamesTaintedClass(t *testing.T) {
	for _, w := range workload.All() {
		res := analysis.Analyze(w.Module, analysis.Options{EnableAll: true})
		static := map[string]bool{}
		for _, c := range res.Taint.TaintedClasses() {
			static[c] = true
		}
		dyn := map[string]bool{}
		for _, c := range w.ExpectedTainted {
			dyn[c] = true
		}
		for _, s := range analysis.SuggestNoRandom(w.Module, res, w.ExpectedTainted) {
			if static[s.Class] || dyn[s.Class] {
				t.Errorf("%s: tainted class %q suggested for norandom", w.Name, s.Class)
			}
			if st := w.Module.Structs[s.Class]; st == nil || st.NoRandom {
				t.Errorf("%s: suggestion for missing or already-tagged class %q", w.Name, s.Class)
			}
		}
	}
}
