package analysis

import "polar/internal/ir"

// FuncInfo bundles the per-function graphs every pass needs: the CFG
// and def-use chains (built by internal/ir, shared with ir.Validate)
// plus the immediate-dominator tree computed here.
type FuncInfo struct {
	Fn  *ir.Func
	CFG *ir.CFG
	DU  *ir.DefUse
	// IDom[b] is the immediate dominator of block b, -1 for the entry
	// and for unreachable blocks.
	IDom []int
}

// ForFunc builds the structural info for one function.
func ForFunc(f *ir.Func) *FuncInfo {
	cfg := ir.BuildCFG(f)
	return &FuncInfo{
		Fn:   f,
		CFG:  cfg,
		DU:   ir.BuildDefUse(f),
		IDom: dominators(cfg),
	}
}

// Dominates reports whether block a dominates block b (every path from
// the entry to b passes through a). A block dominates itself.
func (fi *FuncInfo) Dominates(a, b int) bool {
	if !fi.CFG.Reachable(a) || !fi.CFG.Reachable(b) {
		return false
	}
	for b != -1 {
		if a == b {
			return true
		}
		b = fi.IDom[b]
	}
	return false
}

// dominators computes immediate dominators with the Cooper–Harvey–
// Kennedy iterative algorithm over the reverse postorder.
func dominators(c *ir.CFG) []int {
	n := len(c.Succs)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	rpo := c.ReversePostorder()
	if len(rpo) == 0 {
		return idom
	}
	idom[0] = 0 // temporary self-link simplifies intersect
	intersect := func(a, b int) int {
		for a != b {
			for c.RPOIndex(a) > c.RPOIndex(b) {
				a = idom[a]
			}
			for c.RPOIndex(b) > c.RPOIndex(a) {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range c.Preds[b] {
				if !c.Reachable(p) || idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	idom[0] = -1
	return idom
}

// ModuleInfo holds the per-function info for a whole module plus its
// call graph, in deterministic function order.
type ModuleInfo struct {
	M     *ir.Module
	Funcs []*FuncInfo
	byNm  map[string]*FuncInfo
	CG    *CallGraph
}

// BuildModuleInfo analyzes every function of m.
func BuildModuleInfo(m *ir.Module) *ModuleInfo {
	mi := &ModuleInfo{M: m, byNm: make(map[string]*FuncInfo, len(m.Funcs))}
	for _, f := range m.Funcs {
		fi := ForFunc(f)
		mi.Funcs = append(mi.Funcs, fi)
		mi.byNm[f.Name] = fi
	}
	mi.CG = BuildCallGraph(m)
	return mi
}

// Func returns the info for the named function, or nil.
func (mi *ModuleInfo) Func(name string) *FuncInfo { return mi.byNm[name] }
