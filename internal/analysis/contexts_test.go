package analysis

import (
	"reflect"
	"sync"
	"testing"

	"polar/internal/ir"
)

// mutualRecursion builds main plus n mutually recursive functions,
// each calling the next one twice and the one after that once — three
// call sites per function, so the k-limited context space grows
// exponentially in k until the per-function cap widens it.
func mutualRecursion(t *testing.T, n int) *ir.Module {
	t.Helper()
	m := ir.NewModule("mutrec")
	name := func(i int) string { return "f" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) }
	for i := 0; i < n; i++ {
		b := ir.NewFunc(m, name(i), ir.I64)
		x := b.Call(name((i + 1) % n))
		y := b.Call(name((i + 1) % n))
		z := b.Call(name((i + 2) % n))
		b.Ret(b.Bin(ir.BinAdd, b.Bin(ir.BinAdd, x, y), z))
	}
	b := ir.NewFunc(m, "main", ir.I64)
	b.Ret(b.Call(name(0)))
	if err := ir.Validate(m); err != nil {
		t.Fatal(err)
	}
	return m
}

// Deep mutual recursion must terminate under every k with the context
// count bounded by the per-function cap (+1 for the widened ε), every
// function analyzed under at least one context, and — once the cap
// bites — the widened set non-empty.
func TestContextExplosionBounded(t *testing.T) {
	m := mutualRecursion(t, 6)
	for _, tc := range []struct {
		k, cap int
		// widen: each function has 3 incoming call sites, so ~3^k
		// contexts per function — the cap must bite once that passes it.
		widen bool
	}{{2, 0, false}, {3, 0, false}, {5, 0, true}, {8, 16, true}, {16, 8, true}} {
		cap := tc.cap
		if cap == 0 {
			cap = defaultMaxContexts
		}
		tab := buildContexts(m, tc.k, tc.cap)
		if got, max := tab.numContexts(), len(m.Funcs)*(cap+1); got > max {
			t.Errorf("k=%d cap=%d: numContexts = %d, want <= %d", tc.k, tc.cap, got, max)
		}
		if tc.widen && len(tab.widened) == 0 {
			t.Errorf("k=%d cap=%d: deep mutual recursion did not widen any function", tc.k, tc.cap)
		}
		for _, f := range m.Funcs {
			cs := tab.contextsOf(f.Name)
			if len(cs) == 0 {
				t.Fatalf("k=%d: %s analyzed under no context", tc.k, f.Name)
			}
			if len(cs) > cap+1 {
				t.Errorf("k=%d: %s has %d contexts, cap is %d", tc.k, f.Name, len(cs), cap)
			}
			// A widened function must have its catch-all ε summary.
			if tab.widened[f.Name] && !tab.ctxSet[fnCtx{f.Name, epsilonCtx}] {
				t.Errorf("k=%d: widened %s lacks the ε context", tc.k, f.Name)
			}
		}
	}
}

// k=0 must reproduce the context-insensitive analysis exactly: one ε
// context per function, nothing else interned.
func TestContextK0IsInsensitive(t *testing.T) {
	m := mutualRecursion(t, 4)
	tab := buildContexts(m, 0, 0)
	if got := tab.numContexts(); got != len(m.Funcs) {
		t.Fatalf("k=0 numContexts = %d, want %d (one ε per function)", got, len(m.Funcs))
	}
	for _, f := range m.Funcs {
		if cs := tab.contextsOf(f.Name); len(cs) != 1 || cs[0] != epsilonCtx {
			t.Errorf("k=0: %s contexts = %v, want [ε]", f.Name, cs)
		}
	}
	if len(tab.ctxs) != 1 {
		t.Errorf("k=0 interned %d call strings, want just ε", len(tab.ctxs))
	}
}

// Context enumeration is a pure function of (module, k): repeated and
// concurrent builds must produce identical tables — region numbering,
// and with it every finding and SiteFacts artifact, depends on it.
func TestContextEnumerationDeterministic(t *testing.T) {
	m := mutualRecursion(t, 6)
	base := buildContexts(m, 3, 0)
	check := func(tab *ctxTable) {
		t.Helper()
		if !reflect.DeepEqual(tab.ctxs, base.ctxs) {
			t.Errorf("interned call strings differ across runs")
		}
		if !reflect.DeepEqual(tab.fnCtxs, base.fnCtxs) {
			t.Errorf("per-function context sets differ across runs")
		}
	}
	for i := 0; i < 3; i++ {
		check(buildContexts(m, 3, 0))
	}
	var wg sync.WaitGroup
	tabs := make([]*ctxTable, 8)
	for i := range tabs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each goroutine parses its own module? No — buildContexts
			// only reads m, so sharing is the realistic evalrun shape
			// (worker pools analyze one shared module).
			tabs[i] = buildContexts(m, 3, 0)
		}(i)
	}
	wg.Wait()
	for _, tab := range tabs {
		check(tab)
	}
}

// The full analysis must be deterministic across repeated runs and
// worker-pool-style concurrency: identical findings and an identical
// serialized SiteFacts artifact every time.
func TestAnalyzeDeterministicUnderConcurrency(t *testing.T) {
	m := mutualRecursion(t, 5)
	run := func() ([]byte, string) {
		res := Analyze(m, Options{EnableAll: true, SiteFacts: true})
		js, err := res.Sites.EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		return js, res.Findings.Render()
	}
	baseJS, baseFindings := run()
	type out struct {
		js       []byte
		findings string
	}
	outs := make([]out, 6)
	var wg sync.WaitGroup
	for i := range outs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			js, f := run()
			outs[i] = out{js, f}
		}(i)
	}
	wg.Wait()
	for i, o := range outs {
		if string(o.js) != string(baseJS) {
			t.Errorf("run %d: SiteFacts JSON differs across concurrent runs", i)
		}
		if o.findings != baseFindings {
			t.Errorf("run %d: findings differ across concurrent runs", i)
		}
	}
}
