// Package analysis is the static-analysis counterpart to the dynamic
// TaintClass campaign: a reusable dataflow framework over the IR (CFG,
// dominators, call graph, def-use chains, a generic fixed-point
// solver) plus three passes built on a shared abstract interpreter —
//
//   - static TaintClass: which classes untrusted input may reach,
//     ranked, convertible into a randomization policy without running
//     a single input;
//   - the layout-compatibility lint: the §VI.B idioms (raw interior
//     arithmetic, cross-class and partial struct copies, escaping
//     interior pointers) that break under per-allocation layouts;
//   - definite use-after-free / double-free detection over
//     liveness-of-allocation.
//
// cmd/polarlint is the command-line surface; polarc -lint runs the
// same passes before instrumentation.
package analysis

import (
	"time"

	"polar/internal/ir"
	"polar/internal/telemetry"
)

// ContextInsensitive is the Options.ContextK value that disables heap
// cloning entirely (one region per allocation site, one summary per
// function — the pre-context analysis).
const ContextInsensitive = -1

// Options configures Analyze.
type Options struct {
	// Taint, Lint, UAF select the passes; EnableAll turns on all
	// three regardless.
	Taint, Lint, UAF bool
	EnableAll        bool
	// SiteFacts additionally classifies every member-access site as
	// monomorphic / polymorphic / unknown (Result.Sites) — the artifact
	// vm.CompileOpts consumes for static inline-cache seeding.
	SiteFacts bool
	// ContextK is the call-string depth of the heap-cloning contexts:
	// 0 selects the default (2), ContextInsensitive (-1) disables
	// cloning, any positive k analyzes each function once per k-limited
	// calling context.
	ContextK int
	// MaxContexts caps the enumerated contexts per function before the
	// enumeration widens into the empty context (0 = default 64).
	MaxContexts int
	// Metrics, when non-nil, receives per-pass timing and finding
	// counts (analysis.<pass>.seconds, analysis.<pass>.findings).
	Metrics *telemetry.Registry
}

// Result is one module's full analysis output.
type Result struct {
	Module string `json:"module"`
	// Taint is the static TaintClass verdict (nil if the pass was off).
	Taint *TaintResult `json:"taint,omitempty"`
	// Findings are the lint + UAF diagnostics in module order.
	Findings Findings `json:"findings"`
	// PassSeconds records wall time per pass (including "interp", the
	// shared abstract-interpretation fixpoint).
	PassSeconds map[string]float64 `json:"passSeconds,omitempty"`
	// Sites is the member-access site classification (nil unless
	// Options.SiteFacts was set).
	Sites *SiteFacts `json:"sites,omitempty"`
}

// Analyze runs the selected passes over m. The module should be
// uninstrumented (polarc -lint runs this before the layout pass); on
// instrumented modules the fieldptr-level rules have nothing left to
// look at.
func Analyze(m *ir.Module, opts Options) *Result {
	if opts.EnableAll || (!opts.Taint && !opts.Lint && !opts.UAF) {
		opts.Taint, opts.Lint, opts.UAF = true, true, true
	}
	res := &Result{Module: m.Name, PassSeconds: make(map[string]float64)}

	timed := func(name string, f func()) {
		start := time.Now()
		f()
		secs := time.Since(start).Seconds()
		res.PassSeconds[name] = secs
		if opts.Metrics != nil {
			opts.Metrics.Gauge("analysis." + name + ".seconds").Set(secs)
		}
	}

	mi := BuildModuleInfo(m)
	var ip *interp
	timed("interp", func() {
		ip = newInterp(mi, opts)
		ip.run()
	})
	if opts.Taint {
		timed("taint", func() { res.Taint = taintPass(ip) })
		if opts.Metrics != nil {
			opts.Metrics.Counter("analysis.taint.classes").Set(uint64(len(res.Taint.Classes)))
		}
	}
	if opts.Lint {
		var fs Findings
		timed("lint", func() { fs = lintPassRun(ip) })
		res.Findings = append(res.Findings, fs...)
		if opts.Metrics != nil {
			opts.Metrics.Counter("analysis.lint.findings").Set(uint64(len(fs)))
		}
	}
	if opts.UAF {
		var fs Findings
		timed("uaf", func() { fs = uafPassRun(ip) })
		res.Findings = append(res.Findings, fs...)
		if opts.Metrics != nil {
			opts.Metrics.Counter("analysis.uaf.findings").Set(uint64(len(fs)))
		}
	}
	if opts.SiteFacts {
		timed("sitefacts", func() { res.Sites = siteFactsPass(ip) })
		if opts.Metrics != nil {
			opts.Metrics.Counter("analysis.sitefacts.sites").Set(uint64(len(res.Sites.Sites)))
		}
	}
	res.Findings.Sort(m)
	return res
}
