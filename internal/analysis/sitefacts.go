package analysis

import (
	"encoding/json"
	"fmt"
	"sort"

	"polar/internal/ir"
	"polar/internal/vm"
)

// Static site classification (analysis-guided compilation, DESIGN.md
// §14). Every member access the instrumentation pass will rewrite into
// olr_getptr is classified across ALL calling contexts:
//
//   - monomorphic: every context agrees the receiver is a heap object
//     of the declared class — the site's inline layout cache will see
//     one (class, field) forever;
//   - polymorphic: some context routes a different class, a raw
//     buffer, a stack object or a global through the site — the IC
//     entry would thrash, so the compiler skips the slot;
//   - unknown: the analysis never saw a concrete receiver (forged or
//     external pointers) — the compiler keeps the default slot.
//
// Positions use the "@fn.block#idx" vocabulary shared with the
// profiler and violation records. instrument.Apply rewrites
// instructions strictly in place, so a classification computed on the
// uninstrumented module keys correctly against the instrumented
// olr_getptr sites vm.Compile lowers.
//
// Monomorphic sites additionally get a SHARE KEY when the analysis can
// prove they all dereference the same single concrete object: the
// receiver set is one allocation site, allocated at most once (plain
// single-struct alloc, acyclic block, in a function that provably runs
// at most once). Sites sharing a key are compiled onto ONE IC slot, so
// the first access memoizes for all of them — the compile-time
// equivalent of inline-cache pre-seeding, with no new runtime
// machinery. Slot entries validate (base, class, field, generation) on
// every hit, so sharing is always safe; the runs-once proof is what
// makes it always profitable (a shared hit corresponds exactly to an
// unseeded run's resolver offset-cache hit).

// Site classification kinds, serialized by name.
const (
	SiteMonomorphic = "monomorphic"
	SitePolymorphic = "polymorphic"
	SiteUnknown     = "unknown"
)

// SiteFact classifies one fieldptr site.
type SiteFact struct {
	// Pos is the "@fn.block#idx" position, stable across instrument.Apply.
	Pos string `json:"pos"`
	// Class and Field are the access as declared at the site.
	Class string `json:"class"`
	Field int    `json:"field"`
	Kind  string `json:"kind"`
	// Receivers lists the concrete allocation sites the base may
	// address, context-stripped and sorted (heap receivers only).
	Receivers []string `json:"receivers,omitempty"`
	// ShareKey groups monomorphic sites proven to address the same
	// single runs-once object; equal keys may share one IC slot.
	ShareKey string `json:"shareKey,omitempty"`
	// Churn marks a site whose inline-cache entry provably cannot
	// survive consecutive executions: the innermost natural loop
	// containing the site also frees objects (directly or through a
	// callee), and every instrumented free advances the runtime's
	// layout generation, invalidating all IC entries at once. A slot on
	// such a site is written each iteration and dead before the next
	// reads it, so the compiler suppresses it.
	Churn bool `json:"churn,omitempty"`
}

// SiteFacts is the serializable artifact: the wire format polarlint
// -facts writes and vm.CompileOpts consumes (via CompileFacts).
type SiteFacts struct {
	Module string `json:"module"`
	// K is the call-string depth the classification was computed under.
	K     int        `json:"k"`
	Sites []SiteFact `json:"sites"`
}

// EncodeJSON renders the artifact for -facts output.
func (sf *SiteFacts) EncodeJSON() ([]byte, error) {
	return json.MarshalIndent(sf, "", "  ")
}

// DecodeSiteFacts parses a -facts artifact.
func DecodeSiteFacts(data []byte) (*SiteFacts, error) {
	var sf SiteFacts
	if err := json.Unmarshal(data, &sf); err != nil {
		return nil, fmt.Errorf("analysis: parsing site facts: %w", err)
	}
	return &sf, nil
}

// ByKind counts the sites per classification kind.
func (sf *SiteFacts) ByKind() map[string]int {
	out := make(map[string]int)
	for _, s := range sf.Sites {
		out[s.Kind]++
	}
	return out
}

// CompileFacts converts the artifact into the neutral form vm.Compile
// consumes: churned sites suppress their IC slot (their entries are
// generation-invalidated before every reuse, so the slot is pure
// overhead), share keys unify slots. Everything else needs no entry —
// the compiler's default (a fresh slot) is already right for it. The
// class-purity verdict (Kind) deliberately does NOT drive suppression:
// the inline cache validates (base, class, field, generation) on every
// hit, so a class-polymorphic site with a loop-invariant receiver still
// hits almost always — suppressing on Kind alone measurably destroys
// those hits (mcf's arc sweep) while churn suppression only ever
// removes guaranteed misses.
func (sf *SiteFacts) CompileFacts() *vm.StaticFacts {
	out := &vm.StaticFacts{Sites: make(map[string]vm.SiteSeed)}
	for _, s := range sf.Sites {
		switch {
		case s.Churn:
			out.Sites[s.Pos] = vm.SiteSeed{Suppress: true}
		case s.ShareKey != "":
			out.Sites[s.Pos] = vm.SiteSeed{ShareKey: s.ShareKey}
		}
	}
	return out
}

// siteFactsPass folds every context's converged facts into one
// classification per fieldptr site.
func siteFactsPass(ip *interp) *SiteFacts {
	type acc struct {
		class     string
		field     int
		fn        string // containing function and block, for the churn test
		block     int
		sawAny    bool // some context produced a non-empty points-to set
		conflict  bool // some receiver is not a heap object of the class
		receivers map[string]int // concrete site key -> region index (any ctx)
	}
	accs := make(map[string]*acc)
	var order []string

	for _, fi := range ip.mi.Funcs {
		for _, cx := range ip.ctxs.contextsOf(fi.Fn.Name) {
			f := fi.Fn
			ip.replay(fi, cx, func(b, i int, in *ir.Instr, fx *regFacts) {
				if in.Op != ir.OpFieldPtr || in.Struct == nil {
					return
				}
				pos := SiteOf(f, b, i).Pos()
				a := accs[pos]
				if a == nil {
					a = &acc{class: in.Struct.Name, field: in.Field, fn: f.Name, block: b, receivers: make(map[string]int)}
					accs[pos] = a
					order = append(order, pos)
				}
				base := ip.val(fx, in.Args[0])
				if base.pts.empty() {
					return
				}
				a.sawAny = true
				base.pts.forEach(func(ri int) {
					r := ip.regions[ri]
					if r.kind != regHeap || r.class == nil || r.class.Name != a.class {
						a.conflict = true
						return
					}
					key := fmt.Sprintf("@%s#%d.%d", r.fn, r.site.Block, r.site.Index)
					a.receivers[key] = ri
				})
			})
		}
	}

	once := runsOnceFuncs(ip.mi)
	cyc := newCycleIndex(ip.mi)
	churn := newChurnIndex(ip.mi)
	sf := &SiteFacts{Module: ip.mi.M.Name, K: ip.ctxs.k}
	for _, pos := range order {
		a := accs[pos]
		fact := SiteFact{Pos: pos, Class: a.class, Field: a.field, Churn: churn.churned(a.fn, a.block)}
		for key := range a.receivers {
			fact.Receivers = append(fact.Receivers, key)
		}
		sort.Strings(fact.Receivers)
		switch {
		case !a.sawAny:
			fact.Kind = SiteUnknown
		case a.conflict:
			fact.Kind = SitePolymorphic
		default:
			fact.Kind = SiteMonomorphic
			if len(fact.Receivers) == 1 {
				r := ip.regions[a.receivers[fact.Receivers[0]]]
				if allocRunsOnce(ip.mi, r, once, cyc) {
					fact.ShareKey = fmt.Sprintf("%s#%d%s", a.class, a.field, fact.Receivers[0])
				}
			}
		}
		sf.Sites = append(sf.Sites, fact)
	}
	return sf
}

// allocRunsOnce reports whether region r's allocation site provably
// executes at most once per program run: a plain single-struct alloc,
// in a block outside every CFG cycle, in a function that runs at most
// once.
func allocRunsOnce(mi *ModuleInfo, r *region, once map[string]bool, cyc *cycleIndex) bool {
	if !once[r.fn] {
		return false
	}
	fi := mi.Func(r.fn)
	if fi == nil || r.site.Block >= len(fi.Fn.Blocks) {
		return false
	}
	in := &fi.Fn.Blocks[r.site.Block].Instrs[r.site.Index]
	if in.Op != ir.OpAlloc || in.Struct == nil || len(in.Args) != 0 {
		return false
	}
	return !cyc.cyclic(r.fn, r.site.Block)
}

// runsOnceFuncs computes the set of functions that provably execute at
// most once per program run: main when nothing in the module calls it,
// and any function whose address is never taken with exactly one
// direct call site, in an acyclic block of a runs-once caller. The set
// grows monotonically from main outward.
func runsOnceFuncs(mi *ModuleInfo) map[string]bool {
	addressTaken := make(map[string]bool)
	type callerSite struct {
		caller string
		block  int
	}
	callsTo := make(map[string][]callerSite)
	for _, f := range mi.M.Funcs {
		for bi, blk := range f.Blocks {
			for ii := range blk.Instrs {
				in := &blk.Instrs[ii]
				if in.Op == ir.OpCall && mi.M.Func(in.Callee) != nil {
					callsTo[in.Callee] = append(callsTo[in.Callee], callerSite{f.Name, bi})
				}
				for _, a := range in.Args {
					if a.Kind == ir.ValFunc {
						addressTaken[a.Sym] = true
					}
				}
			}
		}
	}
	cyc := newCycleIndex(mi)
	once := make(map[string]bool)
	for changed := true; changed; {
		changed = false
		for _, f := range mi.M.Funcs {
			if once[f.Name] || addressTaken[f.Name] {
				continue
			}
			sites := callsTo[f.Name]
			ok := false
			if f.Name == "main" {
				ok = len(sites) == 0
			} else if len(sites) == 1 {
				s := sites[0]
				ok = s.caller != f.Name && once[s.caller] && !cyc.cyclic(s.caller, s.block)
			}
			if ok {
				once[f.Name] = true
				changed = true
			}
		}
	}
	return once
}

// cycleIndex lazily answers "is block b of function fn inside a CFG
// cycle" — i.e. can b re-execute within one activation of fn.
type cycleIndex struct {
	mi   *ModuleInfo
	memo map[string][]bool
}

func newCycleIndex(mi *ModuleInfo) *cycleIndex {
	return &cycleIndex{mi: mi, memo: make(map[string][]bool)}
}

func (c *cycleIndex) cyclic(fn string, b int) bool {
	marks, ok := c.memo[fn]
	if !ok {
		marks = c.compute(fn)
		c.memo[fn] = marks
	}
	return b < len(marks) && marks[b]
}

// churnIndex decides the per-site Churn verdict: block b of fn is
// churned when the INNERMOST natural loop containing b also frees
// objects — directly (an OpFree in the loop body) or through a call to
// a function that may transitively free. The runtime advances one
// global layout generation on every instrumented free, invalidating
// every IC entry at once, so a slot inside such a loop is rewritten
// each iteration and never read while valid.
//
// Innermost matters: in `for { p = alloc; for { p.f } ; free p }` the
// inner loop is free-less and its site's entry survives the inner
// iterations — only the outer loop churns, and the site still earns
// its hits. Natural-loop bodies of a reducible CFG nest or are
// disjoint, so "smallest body containing b" is the innermost loop.
type churnIndex struct {
	mi      *ModuleInfo
	mayFree map[string]bool
	memo    map[string][]bool
}

func newChurnIndex(mi *ModuleInfo) *churnIndex {
	// May-free summaries: a function frees if it contains OpFree or
	// calls (directly, transitively) one that does. Calls to names
	// outside the module are VM builtins (input_read and friends),
	// which never free, and the IR has no indirect calls.
	mayFree := make(map[string]bool)
	for changed := true; changed; {
		changed = false
		for _, f := range mi.M.Funcs {
			if mayFree[f.Name] {
				continue
			}
			for _, blk := range f.Blocks {
				for ii := range blk.Instrs {
					in := &blk.Instrs[ii]
					if in.Op == ir.OpFree || (in.Op == ir.OpCall && mayFree[in.Callee]) {
						mayFree[f.Name] = true
						changed = true
					}
				}
			}
		}
	}
	return &churnIndex{mi: mi, mayFree: mayFree, memo: make(map[string][]bool)}
}

func (c *churnIndex) churned(fn string, b int) bool {
	marks, ok := c.memo[fn]
	if !ok {
		marks = c.compute(fn)
		c.memo[fn] = marks
	}
	return b < len(marks) && marks[b]
}

// compute finds the natural loops of fn (back edges u->v with v
// dominating u, bodies flood-filled over predecessors, merged per
// header) and marks every block whose innermost containing loop frees.
func (c *churnIndex) compute(fn string) []bool {
	fi := c.mi.Func(fn)
	if fi == nil {
		return nil
	}
	n := len(fi.Fn.Blocks)
	frees := make([]bool, n)
	for bi, blk := range fi.Fn.Blocks {
		for ii := range blk.Instrs {
			in := &blk.Instrs[ii]
			if in.Op == ir.OpFree || (in.Op == ir.OpCall && c.mayFree[in.Callee]) {
				frees[bi] = true
			}
		}
	}
	var bodies []map[int]bool
	byHeader := make(map[int]map[int]bool)
	for u := 0; u < n; u++ {
		if !fi.CFG.Reachable(u) {
			continue
		}
		for _, v := range fi.CFG.Succs[u] {
			if !fi.Dominates(v, u) {
				continue
			}
			body := byHeader[v]
			if body == nil {
				body = map[int]bool{v: true}
				byHeader[v] = body
				bodies = append(bodies, body)
			}
			stack := []int{u}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if body[x] {
					continue
				}
				body[x] = true
				for _, p := range fi.CFG.Preds[x] {
					if fi.CFG.Reachable(p) {
						stack = append(stack, p)
					}
				}
			}
		}
	}
	marks := make([]bool, n)
	for b := 0; b < n; b++ {
		innermost := -1
		for li, body := range bodies {
			if !body[b] {
				continue
			}
			if innermost < 0 || len(body) < len(bodies[innermost]) {
				innermost = li
			}
		}
		if innermost < 0 {
			continue
		}
		for blk := range bodies[innermost] {
			if frees[blk] {
				marks[b] = true
				break
			}
		}
	}
	return marks
}

// compute marks every block that is reachable from itself via at least
// one CFG edge.
func (c *cycleIndex) compute(fn string) []bool {
	fi := c.mi.Func(fn)
	if fi == nil {
		return nil
	}
	n := len(fi.Fn.Blocks)
	marks := make([]bool, n)
	for b := 0; b < n; b++ {
		seen := make([]bool, n)
		stack := append([]int(nil), fi.CFG.Succs[b]...)
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if x == b {
				marks[b] = true
				break
			}
			if seen[x] {
				continue
			}
			seen[x] = true
			stack = append(stack, fi.CFG.Succs[x]...)
		}
	}
	return marks
}
