package analysis

import (
	"reflect"
	"testing"

	"polar/internal/ir"
)

// diamond builds main with a diamond CFG:
// entry -> (then | else) -> join.
func diamond(t *testing.T) *FuncInfo {
	t.Helper()
	m := ir.NewModule("diamond")
	b := ir.NewFunc(m, "main", ir.I64, ir.Param{Name: "x", Type: ir.I64})
	c := b.Cmp(ir.CmpGt, b.ParamReg(0), ir.Const(0))
	v := b.Mov(ir.Const(0))
	b.If("d", c, func() { b.Store(ir.I64, ir.Const(1), v) }, func() { b.Store(ir.I64, ir.Const(2), v) })
	b.Ret(v)
	if err := ir.Validate(m); err != nil {
		t.Fatal(err)
	}
	return ForFunc(m.Func("main"))
}

func TestDominatorsDiamond(t *testing.T) {
	fi := diamond(t)
	f := fi.Fn
	entry := 0
	then := f.BlockIndex("d.then")
	els := f.BlockIndex("d.else")
	join := f.BlockIndex("d.join")
	if then < 0 || els < 0 || join < 0 {
		t.Fatalf("missing diamond blocks: %v", f.Blocks)
	}
	for _, b := range []int{then, els, join} {
		if fi.IDom[b] != entry {
			t.Errorf("idom[%s] = %d, want entry", f.Blocks[b].Name, fi.IDom[b])
		}
	}
	if !fi.Dominates(entry, join) {
		t.Error("entry must dominate join")
	}
	if fi.Dominates(then, join) || fi.Dominates(els, join) {
		t.Error("neither arm dominates the join")
	}
	if !fi.Dominates(join, join) {
		t.Error("a block dominates itself")
	}
}

func TestDominatorsLoop(t *testing.T) {
	m := ir.NewModule("loop")
	b := ir.NewFunc(m, "main", ir.I64, ir.Param{Name: "n", Type: ir.I64})
	b.CountedLoop("l", b.ParamReg(0), func(i ir.Value) {})
	b.Ret(ir.Const(0))
	fi := ForFunc(m.Func("main"))
	f := fi.Fn
	head := f.BlockIndex("l.head")
	body := f.BlockIndex("l.body")
	exit := f.BlockIndex("l.exit")
	if fi.IDom[body] != head || fi.IDom[exit] != head {
		t.Errorf("idom body=%d exit=%d, want head=%d", fi.IDom[body], fi.IDom[exit], head)
	}
	if !fi.Dominates(head, body) || !fi.Dominates(head, exit) {
		t.Error("loop head must dominate body and exit")
	}
	if fi.Dominates(body, exit) {
		t.Error("body must not dominate exit (zero-trip path skips it)")
	}
}

// TestFixedPointForward: reaching-"defined" over a diamond — a forward
// may-problem whose fact is a set of block ids seen on some path.
func TestFixedPointForward(t *testing.T) {
	fi := diamond(t)
	f := fi.Fn
	union := func(a, b map[int]bool) map[int]bool {
		out := map[int]bool{}
		for k := range a {
			out[k] = true
		}
		for k := range b {
			out[k] = true
		}
		return out
	}
	in, out := FixedPoint(fi, Problem[map[int]bool]{
		Dir:      Forward,
		Boundary: map[int]bool{},
		Init:     nil,
		Meet:     union,
		Transfer: func(b int, in map[int]bool) map[int]bool {
			return union(in, map[int]bool{b: true})
		},
		Equal: func(a, b map[int]bool) bool { return reflect.DeepEqual(a, b) },
	})
	join := f.BlockIndex("d.join")
	then := f.BlockIndex("d.then")
	els := f.BlockIndex("d.else")
	if !in[join][then] || !in[join][els] || !in[join][0] {
		t.Errorf("join IN = %v, want union of both arms and entry", in[join])
	}
	if !out[join][join] {
		t.Errorf("join OUT must contain itself: %v", out[join])
	}
	if in[then][els] {
		t.Errorf("then must not see else: %v", in[then])
	}
}

// TestFixedPointBackward: "blocks on some path to exit" — a backward
// may-problem; every block must reach the exit set.
func TestFixedPointBackward(t *testing.T) {
	fi := diamond(t)
	f := fi.Fn
	union := func(a, b map[int]bool) map[int]bool {
		out := map[int]bool{}
		for k := range a {
			out[k] = true
		}
		for k := range b {
			out[k] = true
		}
		return out
	}
	in, _ := FixedPoint(fi, Problem[map[int]bool]{
		Dir:      Backward,
		Boundary: map[int]bool{},
		Init:     nil,
		Meet:     union,
		Transfer: func(b int, in map[int]bool) map[int]bool {
			return union(in, map[int]bool{b: true})
		},
		Equal: func(a, b map[int]bool) bool { return reflect.DeepEqual(a, b) },
	})
	join := f.BlockIndex("d.join")
	// Entry's "exit-side" fact must include both arms and the join.
	if !in[0][join] || !in[0][f.BlockIndex("d.then")] || !in[0][f.BlockIndex("d.else")] {
		t.Errorf("entry backward IN = %v", in[0])
	}
}

func TestCallGraph(t *testing.T) {
	m := ir.NewModule("cg")
	cb := ir.NewFunc(m, "callee", ir.I64, ir.Param{Name: "x", Type: ir.I64})
	cb.Ret(cb.ParamReg(0))
	hb := ir.NewFunc(m, "handler", ir.I64)
	hb.Ret(ir.Const(7))
	bb := ir.NewFunc(m, "main", ir.I64)
	bb.Call("callee", ir.Const(1))
	bb.Call("print_i64", ir.Const(2))
	// Address-taken: &handler stored somewhere counts as a potential
	// indirect call from main.
	g := bb.Local(ir.I64)
	bb.Store(ir.I64, ir.FuncRef("handler"), g)
	bb.Ret(ir.Const(0))
	if err := ir.Validate(m); err != nil {
		t.Fatal(err)
	}
	cg := BuildCallGraph(m)
	if got := cg.Callees["main"]; !reflect.DeepEqual(got, []string{"callee", "handler"}) {
		t.Errorf("main callees = %v", got)
	}
	if got := cg.Callers["callee"]; !reflect.DeepEqual(got, []string{"main"}) {
		t.Errorf("callee callers = %v", got)
	}
	sites := cg.Sites["main"]
	if len(sites) != 2 {
		t.Fatalf("main sites = %v, want direct call + builtin call", sites)
	}
	if !sites[1].Builtin || sites[1].Callee != "print_i64" {
		t.Errorf("builtin site = %+v", sites[1])
	}
	reach := cg.Reachable("main")
	if !reach["main"] || !reach["callee"] || !reach["handler"] {
		t.Errorf("reachable = %v", reach)
	}
	if cg.Reachable("callee")["main"] {
		t.Error("callee must not reach main")
	}
}

func TestFindingsSortAndRender(t *testing.T) {
	m := ir.NewModule("srt")
	b := ir.NewFunc(m, "main", ir.I64)
	b.Ret(ir.Const(0))
	fs := Findings{
		{Pass: "uaf", Rule: "b-rule", Severity: SevWarn, Site: Site{Func: "main", Block: "entry", Index: 3}},
		{Pass: "lint", Rule: "a-rule", Severity: SevError, Site: Site{Func: "main", Block: "entry", Index: 0}},
	}
	fs.Sort(m)
	if fs[0].Rule != "a-rule" {
		t.Errorf("sort order wrong: %v", fs)
	}
	if fs.MaxSeverity() != SevError {
		t.Errorf("max severity = %v", fs.MaxSeverity())
	}
	if fs.CountAtLeast(SevWarn) != 2 || fs.CountAtLeast(SevError) != 1 {
		t.Error("CountAtLeast wrong")
	}
	if got := fs.ByRule(); got["a-rule"] != 1 || got["b-rule"] != 1 {
		t.Errorf("ByRule = %v", got)
	}
	data, err := fs.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[0] != '[' {
		t.Errorf("EncodeJSON = %s", data)
	}
	var empty Findings
	data, err = empty.EncodeJSON()
	if err != nil || string(data) != "[]" {
		t.Errorf("empty EncodeJSON = %q, %v", data, err)
	}
}

func TestSeverityRoundTrip(t *testing.T) {
	for _, s := range []Severity{SevInfo, SevWarn, SevError} {
		got, err := ParseSeverity(s.String())
		if err != nil || got != s {
			t.Errorf("round trip %v: got %v, %v", s, got, err)
		}
	}
	if _, err := ParseSeverity("fatal"); err == nil {
		t.Error("ParseSeverity must reject unknown names")
	}
}
