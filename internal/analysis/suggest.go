package analysis

import (
	"fmt"
	"sort"

	"polar/internal/ir"
)

// The norandom advisor (polarlint -suggest). A class whose ONLY
// findings are wire-format copies — whole-struct exchanges with other
// classes or fixed-prefix partial copies — is being treated as an
// externally-defined layout: randomizing it breaks the copy, and the
// copy is the only thing the analysis holds against it. For such
// classes the right fix is usually the paper's __no_randomize_layout
// analogue (the IR's `norandom` struct tag), not a rewrite.
//
// The advisor is deliberately one-sided: a class that untrusted input
// may reach is NEVER suggested, no matter what its findings look like
// — exempting a tainted class from randomization trades away exactly
// the protection POLaR exists to provide. Both the static TaintClass
// verdict and (when supplied) the dynamic campaign's report are
// consulted; either one vetoes.

// wireFormatRules are the lint rules that read as "this struct is a
// wire format": raw copies that only make sense against a fixed,
// externally-agreed layout.
var wireFormatRules = map[string]bool{
	RuleMemcpyCrossClass: true,
	RuleMemcpyPartial:    true,
}

// Suggestion proposes the norandom tag for one class.
type Suggestion struct {
	Class string `json:"class"`
	// Rules lists the distinct wire-format rules observed, sorted.
	Rules []string `json:"rules"`
	// Findings counts the supporting findings.
	Findings int    `json:"findings"`
	Reason   string `json:"reason"`
}

// SuggestNoRandom proposes norandom tags for classes of m whose only
// findings in res are wire-format copies. dynTainted is the dynamic
// TaintClass verdict (class names; nil when no report is available);
// any class it names — like any class the static taint pass marks —
// is vetoed. Classes already tagged norandom are skipped.
func SuggestNoRandom(m *ir.Module, res *Result, dynTainted []string) []Suggestion {
	type acc struct {
		rules    map[string]bool
		findings int
		other    bool // a non-wire-format finding names the class
	}
	byClass := make(map[string]*acc)
	for _, f := range res.Findings {
		if f.Class == "" {
			continue
		}
		a := byClass[f.Class]
		if a == nil {
			a = &acc{rules: make(map[string]bool)}
			byClass[f.Class] = a
		}
		if wireFormatRules[f.Rule] {
			a.rules[f.Rule] = true
			a.findings++
		} else {
			a.other = true
		}
	}
	tainted := make(map[string]bool)
	if res.Taint != nil {
		for _, c := range res.Taint.TaintedClasses() {
			tainted[c] = true
		}
	}
	dyn := make(map[string]bool, len(dynTainted))
	for _, c := range dynTainted {
		dyn[c] = true
	}

	var out []Suggestion
	for name, a := range byClass {
		if a.other || a.findings == 0 {
			continue
		}
		if st := m.Structs[name]; st == nil || st.NoRandom {
			continue
		}
		if tainted[name] || dyn[name] {
			continue
		}
		rules := make([]string, 0, len(a.rules))
		for r := range a.rules {
			rules = append(rules, r)
		}
		sort.Strings(rules)
		out = append(out, Suggestion{
			Class: name, Rules: rules, Findings: a.findings,
			Reason: fmt.Sprintf(
				"all %d finding(s) are wire-format copies and no input taint reaches the class",
				a.findings),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}
