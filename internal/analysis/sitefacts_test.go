package analysis_test

import (
	"strings"
	"testing"

	"polar/internal/analysis"
	"polar/internal/ir"
)

func siteFacts(t *testing.T, m *ir.Module) map[string]analysis.SiteFact {
	t.Helper()
	if err := ir.Validate(m); err != nil {
		t.Fatalf("test module invalid: %v", err)
	}
	res := analysis.Analyze(m, analysis.Options{SiteFacts: true})
	out := make(map[string]analysis.SiteFact, len(res.Sites.Sites))
	for _, s := range res.Sites.Sites {
		out[s.Pos] = s
	}
	return out
}

// one returns the single fact whose position contains sub.
func one(t *testing.T, facts map[string]analysis.SiteFact, sub string) analysis.SiteFact {
	t.Helper()
	var got *analysis.SiteFact
	for pos, f := range facts {
		if strings.Contains(pos, sub) {
			if got != nil {
				t.Fatalf("multiple sites match %q", sub)
			}
			f := f
			got = &f
		}
	}
	if got == nil {
		t.Fatalf("no site matches %q in %d facts", sub, len(facts))
	}
	return *got
}

// The churn verdict is about the INNERMOST loop: in
//
//	for { q = alloc; for { p.f } ; free q }
//
// the inner loop never frees, so its site's IC entry survives every
// inner iteration and earns its hits — only sites in the outer body,
// where the free bumps the layout generation each trip, are churned.
func TestChurnMarksInnermostLoopOnly(t *testing.T) {
	m := ir.NewModule("churninner")
	st := testStruct(m)
	b := ir.NewFunc(m, "main", ir.I64)
	p := b.Alloc(st)
	b.CountedLoop("outer", ir.Const(3), func(_ ir.Value) {
		q := b.Alloc(st)
		b.CountedLoop("inner", ir.Const(4), func(_ ir.Value) {
			b.Load(ir.I64, b.FieldPtr(st, p, 0))
		})
		b.Load(ir.I64, b.FieldPtr(st, q, 2))
		b.Free(q)
	})
	b.Ret(ir.Const(0))

	facts := siteFacts(t, m)
	inner := one(t, facts, "inner.body")
	if inner.Churn {
		t.Errorf("inner-loop site churned: its innermost loop never frees\n%+v", inner)
	}
	// The q access sits in inner.exit — past the inner loop, but still
	// inside the outer loop whose body frees every iteration.
	outer := one(t, facts, "inner.exit")
	if !outer.Churn {
		t.Errorf("outer-loop site not churned despite the per-iteration free\n%+v", outer)
	}
}

// Frees reached through a callee churn too: the may-free summary must
// see through direct calls (here two levels deep).
func TestChurnSeesTransitiveFrees(t *testing.T) {
	m := ir.NewModule("churncall")
	st := testStruct(m)

	b := ir.NewFunc(m, "drop", ir.I64, ir.Param{Name: "p", Type: ir.Raw})
	b.Free(b.ParamReg(0))
	b.Ret(ir.Const(0))

	b = ir.NewFunc(m, "reap", ir.I64, ir.Param{Name: "p", Type: ir.Raw})
	b.Ret(b.Call("drop", b.ParamReg(0)))

	b = ir.NewFunc(m, "main", ir.I64)
	p := b.Alloc(st)
	b.CountedLoop("gen", ir.Const(5), func(_ ir.Value) {
		q := b.Alloc(st)
		b.Load(ir.I64, b.FieldPtr(st, p, 0))
		b.CallVoid("reap", q)
	})
	b.Ret(ir.Const(0))

	facts := siteFacts(t, m)
	site := one(t, facts, "gen.body")
	if !site.Churn {
		t.Errorf("site in a loop that frees through reap→drop not churned\n%+v", site)
	}
}

// Monomorphic sites addressing one runs-once allocation share a key —
// the compiler unifies them onto one IC slot — while loop-minted
// objects, which are not runs-once, never get one.
func TestShareKeyUnifiesRunsOnceObject(t *testing.T) {
	m := ir.NewModule("sharekey")
	st := testStruct(m)
	b := ir.NewFunc(m, "main", ir.I64)
	p := b.Alloc(st)
	b.Load(ir.I64, b.FieldPtr(st, p, 0))
	b.Load(ir.I64, b.FieldPtr(st, p, 0))
	b.CountedLoop("mint", ir.Const(2), func(_ ir.Value) {
		q := b.Alloc(st)
		b.Load(ir.I64, b.FieldPtr(st, q, 0))
		b.Free(q)
	})
	b.Ret(ir.Const(0))

	if err := ir.Validate(m); err != nil {
		t.Fatal(err)
	}
	res := analysis.Analyze(m, analysis.Options{SiteFacts: true})
	var keys []string
	for _, s := range res.Sites.Sites {
		if s.Kind != analysis.SiteMonomorphic {
			t.Errorf("%s: kind = %s, want monomorphic", s.Pos, s.Kind)
		}
		if strings.Contains(s.Pos, "mint.body") {
			if s.ShareKey != "" {
				t.Errorf("loop-minted object's site %s got share key %q", s.Pos, s.ShareKey)
			}
			continue
		}
		keys = append(keys, s.ShareKey)
	}
	if len(keys) != 2 || keys[0] == "" || keys[0] != keys[1] {
		t.Errorf("straight-line sites on the runs-once object: share keys = %v, want two equal non-empty", keys)
	}
}

// CompileFacts maps the artifact onto compiler seeds: churn suppresses
// (and wins over a share key), share keys pass through, and everything
// else — including class-polymorphic sites, whose loop-invariant
// receivers still hit — keeps the default fresh slot by having NO entry.
func TestCompileFactsMapping(t *testing.T) {
	sf := &analysis.SiteFacts{Sites: []analysis.SiteFact{
		{Pos: "@a.entry#0", Kind: analysis.SiteMonomorphic, Churn: true, ShareKey: "k"},
		{Pos: "@a.entry#1", Kind: analysis.SiteMonomorphic, ShareKey: "k"},
		{Pos: "@a.entry#2", Kind: analysis.SitePolymorphic},
		{Pos: "@a.entry#3", Kind: analysis.SiteMonomorphic},
		{Pos: "@a.entry#4", Kind: analysis.SiteUnknown},
	}}
	cf := sf.CompileFacts()
	if got := cf.Sites["@a.entry#0"]; !got.Suppress {
		t.Errorf("churned site not suppressed: %+v", got)
	}
	if got := cf.Sites["@a.entry#1"]; got.Suppress || got.ShareKey != "k" {
		t.Errorf("share-keyed site mis-seeded: %+v", got)
	}
	for _, pos := range []string{"@a.entry#2", "@a.entry#3", "@a.entry#4"} {
		if _, ok := cf.Sites[pos]; ok {
			t.Errorf("%s: unchurned unshared site got a seed; default slot expected", pos)
		}
	}
}

// The wire artifact round-trips: encode → decode preserves every fact,
// including the churn bit the compiler keys on.
func TestSiteFactsJSONRoundTrip(t *testing.T) {
	m := ir.NewModule("rt")
	st := testStruct(m)
	b := ir.NewFunc(m, "main", ir.I64)
	p := b.Alloc(st)
	b.CountedLoop("l", ir.Const(2), func(_ ir.Value) {
		b.Load(ir.I64, b.FieldPtr(st, p, 0))
		b.Free(b.Alloc(st))
	})
	b.Ret(ir.Const(0))
	if err := ir.Validate(m); err != nil {
		t.Fatal(err)
	}
	res := analysis.Analyze(m, analysis.Options{SiteFacts: true})
	js, err := res.Sites.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := analysis.DecodeSiteFacts(js)
	if err != nil {
		t.Fatal(err)
	}
	if back.Module != res.Sites.Module || back.K != res.Sites.K || len(back.Sites) != len(res.Sites.Sites) {
		t.Fatalf("round trip changed shape: %+v vs %+v", back, res.Sites)
	}
	for i, s := range back.Sites {
		o := res.Sites.Sites[i]
		if s.Pos != o.Pos || s.Churn != o.Churn || s.ShareKey != o.ShareKey || s.Kind != o.Kind {
			t.Errorf("site %d changed across round trip: %+v vs %+v", i, s, o)
		}
	}
	seeds := back.CompileFacts()
	if len(seeds.Sites) == 0 {
		t.Errorf("loop with a free produced no suppressions: %s", js)
	}
}
