package analysis_test

import (
	"os"
	"testing"

	"polar/internal/analysis"
	"polar/internal/exploit"
	"polar/internal/ir"
	"polar/internal/telemetry"
	"polar/internal/workload"
)

func analyze(t *testing.T, m *ir.Module) *analysis.Result {
	t.Helper()
	if err := ir.Validate(m); err != nil {
		t.Fatalf("test module invalid: %v", err)
	}
	return analysis.Analyze(m, analysis.Options{})
}

func rules(res *analysis.Result) map[string]int { return res.Findings.ByRule() }

// Every exploit case study must be flagged, by the rule that names its
// root cause.
func TestCaseStudiesFlagged(t *testing.T) {
	for _, cs := range exploit.CaseStudies() {
		res := analysis.Analyze(cs.Build(), analysis.Options{})
		if rules(res)[cs.ExpectedRule] == 0 {
			t.Errorf("%s: expected rule %q, got:\n%s", cs.Name, cs.ExpectedRule, res.Findings.Render())
		}
		if res.Findings.MaxSeverity() < analysis.SevWarn {
			t.Errorf("%s: no warning-or-worse finding:\n%s", cs.Name, res.Findings.Render())
		}
	}
}

// The definite-UAF pass must stay silent on every benign workload —
// no use-after-free, double-free or uninit reads, definite or
// possible, across the whole corpus.
func TestUAFPassCleanOnBenignWorkloads(t *testing.T) {
	for _, w := range append(workload.All(), workload.V8Orinoco()) {
		res := analysis.Analyze(w.Module, analysis.Options{UAF: true})
		if len(res.Findings) != 0 {
			t.Errorf("%s: UAF pass flagged a benign workload:\n%s", w.Name, res.Findings.Render())
		}
	}
}

// Class-level recall against each workload's dynamic expectation: the
// static set must cover every class the dynamic campaign marks.
func TestStaticTaintCoversDynamicExpectations(t *testing.T) {
	for _, w := range workload.All() {
		res := analysis.Analyze(w.Module, analysis.Options{Taint: true})
		static := map[string]bool{}
		for _, c := range res.Taint.TaintedClasses() {
			static[c] = true
		}
		for _, c := range w.ExpectedTainted {
			if !static[c] {
				t.Errorf("%s: dynamic-tainted class %q missed by the static pass (recall < 1)", w.Name, c)
			}
		}
	}
}

// The §V.A V8/Orinoco incompatibility: manual mark-word offset
// arithmetic must produce a ptradd-into-class warning.
func TestV8OrinocoManualOffsetFlagged(t *testing.T) {
	res := analysis.Analyze(workload.V8Orinoco().Module, analysis.Options{Lint: true})
	if rules(res)[analysis.RulePtrAddIntoClass] == 0 {
		t.Errorf("v8 manual offset not flagged:\n%s", res.Findings.Render())
	}
}

// libpng's three deliberately modeled CVE overflow paths are constant-
// length fills past a known bound — all must be caught.
func TestLibPNGOverflowPathsFlagged(t *testing.T) {
	res := analysis.Analyze(workload.LibPNG().Module, analysis.Options{Lint: true})
	if got := rules(res)[analysis.RuleMemfillOverflow]; got != 3 {
		t.Errorf("libpng memfill-overflow findings = %d, want 3:\n%s", got, res.Findings.Render())
	}
}

func testStruct(m *ir.Module) *ir.StructType {
	return m.MustStruct(ir.NewStruct("Box",
		ir.Field{Name: "a", Type: ir.I64},
		ir.Field{Name: "cb", Type: ir.Fptr},
		ir.Field{Name: "b", Type: ir.I64},
	))
}

func TestDoubleFreeDetected(t *testing.T) {
	m := ir.NewModule("df")
	st := testStruct(m)
	b := ir.NewFunc(m, "main", ir.I64)
	v := b.Alloc(st)
	b.Free(v)
	b.Free(v)
	b.Ret(ir.Const(0))
	res := analyze(t, m)
	if rules(res)[analysis.RuleDoubleFree] == 0 {
		t.Errorf("double free not flagged:\n%s", res.Findings.Render())
	}
}

func TestFreeOnOnePathWarnsOnly(t *testing.T) {
	m := ir.NewModule("maybe")
	st := testStruct(m)
	b := ir.NewFunc(m, "main", ir.I64, ir.Param{Name: "x", Type: ir.I64})
	v := b.Alloc(st)
	b.Store(ir.I64, ir.Const(1), b.FieldPtrName(st, v, "a"))
	c := b.Cmp(ir.CmpGt, b.ParamReg(0), ir.Const(0))
	b.If("maybe", c, func() { b.Free(v) }, nil)
	got := b.Load(ir.I64, b.FieldPtrName(st, v, "a")) // freed on one path only
	b.Ret(got)
	res := analyze(t, m)
	if rules(res)[analysis.RuleUseAfterFree] != 0 {
		t.Errorf("one-path free reported as definite UAF:\n%s", res.Findings.Render())
	}
	if rules(res)[analysis.RulePossibleUAF] == 0 {
		t.Errorf("one-path free not reported as possible UAF:\n%s", res.Findings.Render())
	}
}

func TestAllocInLoopNotFlagged(t *testing.T) {
	m := ir.NewModule("loopalloc")
	st := testStruct(m)
	b := ir.NewFunc(m, "main", ir.I64)
	b.CountedLoop("l", ir.Const(4), func(i ir.Value) {
		v := b.Alloc(st)
		b.Store(ir.I64, i, b.FieldPtrName(st, v, "a"))
		b.Free(v)
	})
	b.Ret(ir.Const(0))
	res := analyze(t, m)
	for _, f := range res.Findings {
		if f.Pass == "uaf" {
			t.Errorf("alloc/use/free loop flagged: %s", f)
		}
	}
}

func TestMemcpyCrossClassWarns(t *testing.T) {
	m := ir.NewModule("xcopy")
	a := m.MustStruct(ir.NewStruct("A", ir.Field{Name: "x", Type: ir.I64}, ir.Field{Name: "y", Type: ir.I64}))
	c := m.MustStruct(ir.NewStruct("C", ir.Field{Name: "p", Type: ir.I64}, ir.Field{Name: "q", Type: ir.I64}))
	b := ir.NewFunc(m, "main", ir.I64)
	va := b.Alloc(a)
	vc := b.Alloc(c)
	b.Store(ir.I64, ir.Const(1), b.FieldPtrName(a, va, "x"))
	b.Memcpy(vc, va, ir.Const(int64(a.Size())))
	b.Ret(ir.Const(0))
	res := analyze(t, m)
	if rules(res)[analysis.RuleMemcpyCrossClass] == 0 {
		t.Errorf("cross-class memcpy not flagged:\n%s", res.Findings.Render())
	}
}

func TestMemcpyPartialClassWarns(t *testing.T) {
	m := ir.NewModule("partial")
	st := testStruct(m)
	b := ir.NewFunc(m, "main", ir.I64)
	v := b.Alloc(st)
	w := b.Alloc(st)
	b.Store(ir.I64, ir.Const(1), b.FieldPtrName(st, v, "a"))
	b.Memcpy(w, v, ir.Const(8)) // first 8 bytes of a 24-byte class
	b.Ret(ir.Const(0))
	res := analyze(t, m)
	if rules(res)[analysis.RuleMemcpyPartial] == 0 {
		t.Errorf("partial struct copy not flagged:\n%s", res.Findings.Render())
	}
	// Full-size copy between same-class objects stays clean.
	m2 := ir.NewModule("full")
	st2 := testStruct(m2)
	b2 := ir.NewFunc(m2, "main", ir.I64)
	v2 := b2.Alloc(st2)
	w2 := b2.Alloc(st2)
	b2.Store(ir.I64, ir.Const(1), b2.FieldPtrName(st2, v2, "a"))
	b2.Memcpy(w2, v2, ir.Const(int64(st2.Size())))
	b2.Ret(ir.Const(0))
	res2 := analyze(t, m2)
	if n := rules(res2)[analysis.RuleMemcpyPartial] + rules(res2)[analysis.RuleMemcpyCrossClass]; n != 0 {
		t.Errorf("full same-class copy flagged:\n%s", res2.Findings.Render())
	}
}

func TestOOBStoreDetected(t *testing.T) {
	m := ir.NewModule("oob")
	b := ir.NewFunc(m, "main", ir.I64)
	buf := b.AllocN(ir.I8, ir.Const(16))
	b.Store(ir.I64, ir.Const(7), b.PtrAdd(buf, ir.Const(12))) // bytes 12..20 of 16
	b.Ret(ir.Const(0))
	res := analyze(t, m)
	if rules(res)[analysis.RuleOOBStore] == 0 {
		t.Errorf("out-of-bounds store not flagged:\n%s", res.Findings.Render())
	}
}

func TestFieldPtrEscapes(t *testing.T) {
	m := ir.NewModule("esc")
	st := testStruct(m)
	sink := ir.NewFunc(m, "sink", ir.I64, ir.Param{Name: "p", Type: ir.I64})
	sink.Ret(sink.ParamReg(0))
	b := ir.NewFunc(m, "main", ir.I64)
	v := b.Alloc(st)
	fp := b.FieldPtrName(st, v, "a")
	g := b.Local(ir.I64)
	b.Store(ir.I64, fp, g)   // escape: stored
	b.Call("sink", fp)       // escape: passed across a call
	b.Ret(fp)                // escape: returned
	res := analyze(t, m)
	if got := rules(res)[analysis.RuleFieldPtrEscape]; got != 3 {
		t.Errorf("fieldptr escapes = %d, want 3 (store, call, return):\n%s", got, res.Findings.Render())
	}
}

func TestFieldPtrLiveAcrossFree(t *testing.T) {
	m := ir.NewModule("dangling")
	st := testStruct(m)
	b := ir.NewFunc(m, "main", ir.I64)
	v := b.Alloc(st)
	b.Store(ir.I64, ir.Const(1), b.FieldPtrName(st, v, "a"))
	fp := b.FieldPtrName(st, v, "a") // derived before the free...
	b.Free(v)
	got := b.Load(ir.I64, fp) // ...used after it
	b.Ret(got)
	res := analyze(t, m)
	if rules(res)[analysis.RuleFieldPtrPastFree] == 0 {
		t.Errorf("dangling fieldptr not flagged:\n%s", res.Findings.Render())
	}
	if rules(res)[analysis.RuleUseAfterFree] == 0 {
		t.Errorf("deref through dangling fieldptr not flagged as UAF:\n%s", res.Findings.Render())
	}
}

func TestElemPtrIntoClassWarns(t *testing.T) {
	m := ir.NewModule("idx")
	st := testStruct(m)
	b := ir.NewFunc(m, "main", ir.I64, ir.Param{Name: "i", Type: ir.I64})
	v := b.Alloc(st)
	b.Store(ir.I64, ir.Const(1), b.FieldPtrName(st, v, "a"))
	got := b.Load(ir.I8, b.ElemPtr(ir.I8, v, b.ParamReg(0))) // byte-scans the class
	b.Ret(got)
	res := analyze(t, m)
	if rules(res)[analysis.RuleElemPtrIntoClass] == 0 {
		t.Errorf("byte-indexing into class not flagged:\n%s", res.Findings.Render())
	}
	// Indexing an array OF the class is the legitimate idiom.
	m2 := ir.NewModule("arr")
	st2 := testStruct(m2)
	b2 := ir.NewFunc(m2, "main", ir.I64, ir.Param{Name: "i", Type: ir.I64})
	arr := b2.AllocN(st2, ir.Const(4))
	one := b2.ElemPtr(st2, arr, b2.ParamReg(0))
	b2.Store(ir.I64, ir.Const(1), b2.FieldPtrName(st2, one, "a"))
	b2.Ret(ir.Const(0))
	res2 := analyze(t, m2)
	if rules(res2)[analysis.RuleElemPtrIntoClass] != 0 {
		t.Errorf("array-of-class indexing flagged:\n%s", res2.Findings.Render())
	}
}

// Static taint: input_read into a heap object's member marks class,
// field, pointer taint, and the policy conversion applies the §IV.B.1
// tuning.
func TestStaticTaintToPolicy(t *testing.T) {
	m := ir.NewModule("tp")
	st := testStruct(m)
	b := ir.NewFunc(m, "main", ir.I64)
	v := b.Alloc(st)
	b.Call("input_read", b.FieldPtrName(st, v, "cb"), ir.Const(0), ir.Const(8))
	n := b.Call("input_len")
	c := b.Cmp(ir.CmpGt, n, ir.Const(4))
	b.If("bigger", c, func() {
		w := b.Alloc(st) // allocation under tainted control
		b.Store(ir.I64, ir.Const(0), b.FieldPtrName(st, w, "a"))
		b.Free(w)
	}, nil)
	b.Ret(ir.Const(0))
	res := analyze(t, m)
	ct := res.Taint.Class("Box")
	if ct == nil {
		t.Fatalf("Box not tainted: %+v", res.Taint)
	}
	if !ct.ContentTainted || !ct.AllocTainted || !ct.FreeTainted {
		t.Errorf("Box marks = %+v, want content+alloc+free", ct)
	}
	if !ct.PointerTainted() {
		t.Errorf("cb (fptr) member not marked pointer-tainted: %+v", ct.Fields)
	}
	pol := res.Taint.Policy("test")
	cp, ok := pol.Classes["Box"]
	if !ok {
		t.Fatalf("policy missing Box: %+v", pol)
	}
	if len(cp.TaintedFields) == 0 || cp.Why != "input-tainted pointer members" {
		t.Errorf("policy tuning = %+v", cp)
	}
}

// Taint must flow interprocedurally: through a helper's parameter and
// return value, and control taint must be inherited by callees.
func TestInterproceduralTaint(t *testing.T) {
	m := ir.NewModule("ip")
	st := testStruct(m)
	hb := ir.NewFunc(m, "mix", ir.I64, ir.Param{Name: "x", Type: ir.I64})
	hb.Ret(hb.Bin(ir.BinAdd, hb.ParamReg(0), ir.Const(1)))
	ab := ir.NewFunc(m, "spawn", ir.I64)
	av := ab.Alloc(st) // allocation in a callee under tainted control
	ab.Store(ir.I64, ir.Const(0), ab.FieldPtrName(st, av, "a"))
	ab.Ret(ir.Const(0))
	b := ir.NewFunc(m, "main", ir.I64)
	v := b.Alloc(st)
	tainted := b.Call("mix", b.Call("input_len"))
	b.Store(ir.I64, tainted, b.FieldPtrName(st, v, "a"))
	c := b.Cmp(ir.CmpGt, tainted, ir.Const(0))
	b.If("branch", c, func() { b.Call("spawn") }, nil)
	b.Ret(ir.Const(0))
	res := analyze(t, m)
	ct := res.Taint.Class("Box")
	if ct == nil || !ct.ContentTainted {
		t.Fatalf("taint did not flow through @mix: %+v", res.Taint)
	}
	if !ct.AllocTainted {
		t.Errorf("control taint not inherited by @spawn: %+v", ct)
	}
}

// Per-pass timing and finding counts must land in the registry.
func TestAnalyzeMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	for _, cs := range exploit.CaseStudies() {
		analysis.Analyze(cs.Build(), analysis.Options{Metrics: reg})
	}
	snap := reg.Snapshot()
	for _, name := range []string{"analysis.interp.seconds", "analysis.lint.seconds", "analysis.uaf.seconds", "analysis.taint.seconds"} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("missing gauge %s", name)
		}
	}
	if _, ok := snap.Counters["analysis.lint.findings"]; !ok {
		t.Error("missing counter analysis.lint.findings")
	}
}

// Determinism: two runs over the same module render identically.
func TestAnalyzeDeterministic(t *testing.T) {
	for _, cs := range exploit.CaseStudies() {
		a := analysis.Analyze(cs.Build(), analysis.Options{}).Findings.Render()
		b := analysis.Analyze(cs.Build(), analysis.Options{}).Findings.Render()
		if a != b {
			t.Errorf("%s: nondeterministic findings:\n--- run1\n%s--- run2\n%s", cs.Name, a, b)
		}
	}
}

// The quickstart example must stay clean at the CI gate severity.
func TestQuickstartCleanAtErrorGate(t *testing.T) {
	res := analysis.Analyze(mustParseFile(t, "../../examples/quickstart/quickstart.ir"), analysis.Options{})
	if res.Findings.CountAtLeast(analysis.SevError) != 0 {
		t.Errorf("quickstart has error findings:\n%s", res.Findings.Render())
	}
}

func mustParseFile(t *testing.T, path string) *ir.Module {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ir.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	return m
}
