package analysis

// Direction selects how a dataflow problem walks the CFG.
type Direction int

// Dataflow directions.
const (
	Forward Direction = iota + 1
	Backward
)

// Problem describes a monotone dataflow problem over one function's
// CFG for the generic fixed-point solver. F is the per-block fact type.
// The solver shares fact values freely between blocks, so Meet and
// Transfer must treat their inputs as immutable: return a fresh fact
// (or an input unchanged), never write through an argument.
type Problem[F any] struct {
	Dir Direction
	// Boundary is the fact entering the entry block (Forward) or
	// leaving every exit block (Backward).
	Boundary F
	// Init is the starting fact for all other blocks — the lattice top
	// for must-problems, bottom for may-problems.
	Init F
	// Meet combines facts where paths join.
	Meet func(a, b F) F
	// Transfer applies block b's effect to the incoming fact.
	Transfer func(b int, in F) F
	// Equal detects convergence.
	Equal func(a, b F) bool
}

// FixedPoint iterates the problem to convergence and returns the per-
// block input and output facts (indexed by block). Unreachable blocks
// keep Init on both sides. For Forward problems In[b] is the fact at
// block entry; for Backward problems In[b] is the fact at block *exit*
// (the side facts flow in from), mirroring the usual convention.
func FixedPoint[F any](fi *FuncInfo, p Problem[F]) (in, out []F) {
	n := len(fi.Fn.Blocks)
	in = make([]F, n)
	out = make([]F, n)
	for i := 0; i < n; i++ {
		in[i] = p.Init
		out[i] = p.Init
	}
	rpo := fi.CFG.ReversePostorder()
	if len(rpo) == 0 {
		return in, out
	}

	// order is the sweep order; sources(b) yields the blocks whose OUT
	// feeds block b's IN under the chosen direction.
	order := rpo
	if p.Dir == Backward {
		order = make([]int, len(rpo))
		for i, b := range rpo {
			order[len(rpo)-1-i] = b
		}
	}
	sources := func(b int) []int {
		if p.Dir == Forward {
			return fi.CFG.Preds[b]
		}
		return fi.CFG.Succs[b]
	}
	isBoundary := func(b int) bool {
		if p.Dir == Forward {
			return b == 0
		}
		return len(fi.CFG.Succs[b]) == 0
	}

	for changed := true; changed; {
		changed = false
		for _, b := range order {
			acc := p.Init
			seeded := false
			if isBoundary(b) {
				acc = p.Boundary
				seeded = true
			}
			for _, s := range sources(b) {
				if !fi.CFG.Reachable(s) {
					continue
				}
				if !seeded {
					acc = out[s]
					seeded = true
				} else {
					acc = p.Meet(acc, out[s])
				}
			}
			in[b] = acc
			next := p.Transfer(b, acc)
			if !p.Equal(next, out[b]) {
				out[b] = next
				changed = true
			}
		}
	}
	return in, out
}
