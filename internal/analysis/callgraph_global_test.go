package analysis

import (
	"slices"
	"testing"

	"polar/internal/ir"
)

// Regression: a handler stored into a module global by one function
// and dispatched by another must stay reachable from the DISPATCHING
// side — even when the installer itself is dead code. The original
// call graph only credited the storer, so Reachable("main") silently
// dropped such handlers and every pass downstream of reachability
// ignored their bodies.
func TestCallGraphHandlerStoredInGlobalReachableFromLoader(t *testing.T) {
	m := ir.NewModule("globalhandler")
	if _, err := m.AddGlobal("slot", 8, nil); err != nil {
		t.Fatal(err)
	}

	b := ir.NewFunc(m, "handler", ir.I64)
	b.Ret(ir.Const(1))

	// install is never called: a dead initializer, the worst case.
	b = ir.NewFunc(m, "install", ir.I64)
	b.Store(ir.Fptr, ir.FuncRef("handler"), ir.Global("slot"))
	b.Ret(ir.Const(0))

	b = ir.NewFunc(m, "main", ir.I64)
	h := b.Load(ir.Fptr, ir.Global("slot"))
	b.Ret(b.Mov(h))

	if err := ir.Validate(m); err != nil {
		t.Fatal(err)
	}

	cg := BuildCallGraph(m)
	if !slices.Contains(cg.Callees["main"], "handler") {
		t.Errorf("main loads @slot but has no edge to handler: %v", cg.Callees["main"])
	}
	reach := cg.Reachable("main")
	if !reach["handler"] {
		t.Errorf("handler not reachable from main; reachable = %v", reach)
	}
	// The dead installer must NOT ride along: reachability is about who
	// can run, and nothing calls install.
	if reach["install"] {
		t.Errorf("dead installer reported reachable from main")
	}
	// The installer keeps its own address-taken edge to the handler.
	if !slices.Contains(cg.Callees["install"], "handler") {
		t.Errorf("install's address-taken edge to handler missing: %v", cg.Callees["install"])
	}
}
