package telemetry

import (
	"context"
	"log/slog"
)

// SlogSink forwards selected events to a structured logger. It exists
// for the operator-facing path — violations and other rare,
// security-relevant events — not for bulk event logging; attach a
// JSONLSink or the tracer for that. Kinds outside the configured set
// are dropped before any attribute is built.
type SlogSink struct {
	log   *slog.Logger
	kinds [maxEventKind + 1]bool
}

// NewSlogSink returns a sink logging the given kinds through log. With
// no kinds, it logs only EvViolation.
func NewSlogSink(log *slog.Logger, kinds ...EventKind) *SlogSink {
	s := &SlogSink{log: log}
	if len(kinds) == 0 {
		kinds = []EventKind{EvViolation}
	}
	for _, k := range kinds {
		if k >= 1 && k <= maxEventKind {
			s.kinds[k] = true
		}
	}
	return s
}

// Event implements Sink.
func (s *SlogSink) Event(e Event) {
	if int(e.Kind) >= len(s.kinds) || !s.kinds[e.Kind] {
		return
	}
	level := slog.LevelInfo
	if e.Kind == EvViolation {
		level = slog.LevelWarn
	}
	attrs := []slog.Attr{
		slog.String("kind", e.Kind.String()),
	}
	if e.Addr != 0 {
		attrs = append(attrs, slog.Uint64("addr", e.Addr))
	}
	if e.Size != 0 {
		attrs = append(attrs, slog.Int("size", e.Size))
	}
	if e.Class != 0 {
		attrs = append(attrs, slog.Uint64("class", e.Class))
	}
	if e.Layout != 0 {
		attrs = append(attrs, slog.Uint64("layout", e.Layout))
	}
	if e.Field != 0 {
		attrs = append(attrs, slog.Int("field", e.Field))
	}
	if e.Site != "" {
		attrs = append(attrs, slog.String("site", e.Site))
	}
	if e.Detail != "" {
		attrs = append(attrs, slog.String("detail", e.Detail))
	}
	s.log.LogAttrs(context.Background(), level, "polar event", attrs...)
}
