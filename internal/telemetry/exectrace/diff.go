package exectrace

import (
	"fmt"
	"strings"
)

// contextRadius is how many records before the divergence Diff keeps
// on each side — enough to see the block/call neighborhood that led
// into the first differing event without dumping whole traces.
const contextRadius = 5

// Divergence localizes the first difference between two traces.
type Divergence struct {
	// Index is the position of the first differing record (also valid
	// when one trace is a strict prefix of the other: it is then the
	// length of the shorter trace).
	Index int
	// A and B are the records at Index; nil means that trace ended
	// before the other.
	A, B *Record
	// ContextA and ContextB are up to contextRadius records preceding
	// Index on each side. They are equal unless the traces were
	// unequal before Index (they never are — Diff stops at the first
	// difference), so one is enough for display; both are kept for
	// symmetry in programmatic use.
	ContextA, ContextB []Record
}

// Diff compares two traces record-by-record and returns the first
// divergence, or nil when the event sequences are identical. Footer
// counters are not compared — a capped trace that dropped records
// already differs in its record sequence, and drop counts legitimately
// differ between bounded and unbounded writers observing one run.
func Diff(a, b *Trace) *Divergence {
	n := len(a.Records)
	if len(b.Records) < n {
		n = len(b.Records)
	}
	for i := 0; i < n; i++ {
		if a.Records[i] != b.Records[i] {
			return &Divergence{
				Index:    i,
				A:        &a.Records[i],
				B:        &b.Records[i],
				ContextA: tail(a.Records, i),
				ContextB: tail(b.Records, i),
			}
		}
	}
	if len(a.Records) == len(b.Records) {
		return nil
	}
	d := &Divergence{Index: n, ContextA: tail(a.Records, n), ContextB: tail(b.Records, n)}
	if len(a.Records) > n {
		d.A = &a.Records[n]
	}
	if len(b.Records) > n {
		d.B = &b.Records[n]
	}
	return d
}

func tail(recs []Record, end int) []Record {
	start := end - contextRadius
	if start < 0 {
		start = 0
	}
	return append([]Record(nil), recs[start:end]...)
}

// Format renders the divergence as the report `polartrace diff`
// prints: shared context, then the two records side by side.
func (d *Divergence) Format(nameA, nameB string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "traces diverge at record %d\n", d.Index)
	if len(d.ContextA) > 0 {
		sb.WriteString("shared context before divergence:\n")
		for i, r := range d.ContextA {
			fmt.Fprintf(&sb, "  [%d] %s\n", d.Index-len(d.ContextA)+i, r.Format())
		}
	}
	if d.A != nil {
		fmt.Fprintf(&sb, "%s[%d]: %s\n", nameA, d.Index, d.A.Format())
	} else {
		fmt.Fprintf(&sb, "%s[%d]: <end of trace>\n", nameA, d.Index)
	}
	if d.B != nil {
		fmt.Fprintf(&sb, "%s[%d]: %s\n", nameB, d.Index, d.B.Format())
	} else {
		fmt.Fprintf(&sb, "%s[%d]: <end of trace>\n", nameB, d.Index)
	}
	return sb.String()
}
