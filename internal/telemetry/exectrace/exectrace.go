// Package exectrace records a deterministic, full-fidelity execution
// trace: every allocation, free, olr_getptr resolution, block entry,
// call, fuel checkpoint and violation, in program order, as compact
// length-prefixed binary records (schema polar-exectrace/v1).
//
// The format deliberately carries no wall-clock timestamps and no
// host-dependent state: the same module run under the same seed
// produces a byte-identical trace, which is what makes `polartrace
// diff` a divergence localizer — the first differing record IS the
// first differing runtime event, whether the two traces came from the
// bytecode vs. legacy engine, from two -parallel widths, or from a
// future stateless-layout arm vs. the metadata table.
//
// # Wire format
//
// A trace is:
//
//	magic   8 bytes  "POLARXT1"
//	schema  uvarint length + bytes ("polar-exectrace/v1")
//	records uvarint payload length + payload, repeated
//
// Every payload starts with one kind byte; all integer fields are
// unsigned varints (encoding/binary uvarint). Strings never appear
// inline in event records: a recString record (id, bytes) defines each
// string the first time it is interned, and events reference strings
// by id. Id 0 is reserved for "no string". Interning is
// first-use-ordered, so two runs that intern the same strings in the
// same order produce identical tables — part of the determinism
// contract, and the reason per-VM site tables hand out ids through the
// Writer rather than locally.
//
// # Concurrency
//
// A Writer is intentionally lock-free and owned by one goroutine at a
// time, exactly like vm.VM: bus delivery is synchronous on the VM
// goroutine, and parallel harnesses give every task its own Writer
// (see evalrun.WriteWorkloadTraces). A mutex on the block/call hot
// path would cost more than the entire <5% tracing budget.
package exectrace

import (
	"encoding/binary"
	"io"
	"sync/atomic"

	"polar/internal/telemetry"
)

// Magic opens every trace file.
const Magic = "POLARXT1"

// Schema identifies the record format version.
const Schema = "polar-exectrace/v1"

// Record kinds. recString and recEOF are structural; the rest are
// events. Keep the reader's decode table in sync.
const (
	recString    byte = 1  // id, bytes           — string-table definition
	recAlloc     byte = 2  // site, class, base, size, layout, detail
	recFree      byte = 3  // site, class, base, layout
	recGetptr    byte = 4  // site, class, field+1, base, off, res
	recBlock     byte = 5  // site                — block entry
	recCall      byte = 6  // fn                  — function entry
	recFuel      byte = 7  // remaining, detail   — run boundary checkpoint
	recViolation byte = 8  // detail, addr, class, layout, field+1, site
	recLayoutGen byte = 9  // class, layout, size, detail
	recRerand    byte = 10 // addr, size, class, layout, detail — memcpy re-randomization
	recEvent     byte = 11 // evkind, addr, size, class, layout, field+1, label, site, detail
	recEOF       byte = 12 // records, dropped    — footer, written by Close
)

// Resolution says how an olr_getptr call found its offset.
type Resolution uint8

const (
	// ResCacheHit: the per-runtime offset cache had (class, layout, field).
	ResCacheHit Resolution = 1
	// ResMetadata: the slow path consulted the MetaStore layout record.
	ResMetadata Resolution = 2
	// ResStatic: no per-allocation metadata applied (unknown class,
	// untracked address, or confused member index) — the static or base
	// offset was returned.
	ResStatic Resolution = 3
	// ResStateless: the offset was recomputed from the keyed hash of the
	// base address (SPAM-style stateless mode) — no metadata probe at all.
	ResStateless Resolution = 4
)

// String implements fmt.Stringer.
func (r Resolution) String() string {
	switch r {
	case ResCacheHit:
		return "cache-hit"
	case ResMetadata:
		return "metadata"
	case ResStatic:
		return "static"
	case ResStateless:
		return "stateless"
	default:
		return "?"
	}
}

// flushThreshold bounds buffered bytes between Write calls to the
// underlying stream. 32 KiB amortizes syscalls without letting a long
// run hold megabytes of pending trace.
const flushThreshold = 32 << 10

// Writer streams trace records to an io.Writer. Not safe for
// concurrent use (see the package comment); the telemetry.Sink methods
// are only ever invoked synchronously from the traced goroutine.
type Writer struct {
	w       io.Writer
	buf     []byte
	strings map[string]uint32
	nextStr uint32
	// live short-circuits the hot path: true while the writer is
	// unbounded, open and error-free, in which case records are tallied
	// in the owner-only pending counter and folded into the atomic on
	// every flush. Capped writers (max != 0) keep live false and count
	// every record exactly through the atomics.
	live    bool
	pending uint64 // records since the last fold (owner goroutine only)
	// records/dropped are atomics ONLY so a live metrics scrape
	// (introspect.SetExecTrace) can read them while the owning
	// goroutine writes; all mutation stays single-owner. For an
	// unbounded writer the scraped value trails by at most one flush
	// window; Close folds the remainder, so post-run reads are exact.
	records atomic.Uint64 // event records written (strings and EOF excluded)
	dropped atomic.Uint64 // event records discarded (cap reached or sticky error)
	max     uint64        // 0 = unbounded
	err     error
	closed  bool
	buses   []*telemetry.Bus // AttachOnce guard
}

// NewWriter returns an unbounded trace writer over w.
func NewWriter(w io.Writer) *Writer { return NewWriterLimit(w, 0) }

// NewWriterLimit returns a writer that stops recording events after
// maxRecords (0 = unbounded) and counts the overflow in Dropped. The
// header, string table and footer are exempt, so a capped trace still
// parses and still reports exactly how much it lost.
func NewWriterLimit(w io.Writer, maxRecords uint64) *Writer {
	xw := &Writer{
		w:       w,
		buf:     make([]byte, 0, flushThreshold+512),
		strings: make(map[string]uint32),
		nextStr: 1,
		max:     maxRecords,
		live:    maxRecords == 0,
	}
	xw.buf = append(xw.buf, Magic...)
	xw.buf = binary.AppendUvarint(xw.buf, uint64(len(Schema)))
	xw.buf = append(xw.buf, Schema...)
	return xw
}

// AttachOnce subscribes the writer to bus exactly once; further calls
// with the same bus are no-ops. Mirrors flight.Recorder.AttachOnce so
// core and the VM can both defensively attach the shared writer.
func (w *Writer) AttachOnce(bus *telemetry.Bus) {
	if w == nil || bus == nil {
		return
	}
	for _, b := range w.buses {
		if b == bus {
			return
		}
	}
	w.buses = append(w.buses, bus)
	bus.Attach(w)
}

// Intern returns the id for s, defining it in the trace's string table
// on first use. The empty string is id 0 and is never defined.
func (w *Writer) Intern(s string) uint32 {
	if s == "" {
		return 0
	}
	if id, ok := w.strings[s]; ok {
		return id
	}
	id := w.nextStr
	w.nextStr++
	w.strings[s] = id
	if w.err == nil && !w.closed {
		// String definitions bypass the record cap: a capped trace must
		// still resolve every id the surviving records reference.
		w.buf = binary.AppendUvarint(w.buf, uint64(1+uvarintLen(uint64(id))+uvarintLen(uint64(len(s)))+len(s)))
		w.buf = append(w.buf, recString)
		w.buf = binary.AppendUvarint(w.buf, uint64(id))
		w.buf = binary.AppendUvarint(w.buf, uint64(len(s)))
		w.buf = append(w.buf, s...)
		if len(w.buf) >= flushThreshold {
			w.flush()
		}
	}
	return id
}

// uvarintLen returns the encoded size of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// emit frames and buffers one event payload, honoring the cap and the
// sticky error.
func (w *Writer) emit(payload []byte) {
	if w.live {
		w.pending++
	} else {
		if w.err != nil || w.closed || (w.max != 0 && w.records.Load() >= w.max) {
			w.dropped.Add(1)
			return
		}
		w.records.Add(1)
	}
	w.buf = binary.AppendUvarint(w.buf, uint64(len(payload)))
	w.buf = append(w.buf, payload...)
	if len(w.buf) >= flushThreshold {
		w.flush()
	}
}

// fold publishes the pending fast-path tally into the atomic counter.
// Owner goroutine only.
func (w *Writer) fold() {
	if w.pending != 0 {
		w.records.Add(w.pending)
		w.pending = 0
	}
}

func (w *Writer) flush() {
	w.fold()
	if w.err != nil || len(w.buf) == 0 {
		return
	}
	_, err := w.w.Write(w.buf)
	w.buf = w.buf[:0]
	if err != nil {
		w.err = err
		w.live = false
	}
}

// Block records entry into a basic block. site is an id from Intern
// ("@fn.block"). This is the hottest record by far (one per
// interpreted block); interpreter loops precompute BlockFrame per
// block and feed FastAppend4/BlockFrameSlow directly, which is the
// same encoding this method produces.
func (w *Writer) Block(site uint32) {
	f := BlockFrame(site)
	if !w.FastAppend4(f) {
		w.BlockFrameSlow(f)
	}
}

// BlockFrame packs the complete wire frame of a block record — length
// byte 3, kind byte, and a fixed-width two-byte varint of site — into
// a uint32 (bytes in stream order, low byte first). The two-byte
// varint is non-minimal for site < 128; uvarint readers accept it, and
// the fixed width is what lets interpreter loops precompute one word
// per block and append it with no encoder on the hot path. Sites that
// don't fit 14 bits (which would take >16K interned strings) return a
// tagged fallback value instead: frame words always have low bits 11
// (length 3), the fallback site<<2 has low bits 00, and
// FastAppend4/BlockFrameSlow dispatch on that tag.
func BlockFrame(site uint32) uint32 {
	if site < 1<<14 {
		return 3 | uint32(recBlock)<<8 | (site&0x7f|0x80)<<16 | (site>>7)<<24
	}
	return site << 2
}

// FastAppend4 appends a precomputed BlockFrame word in the common case
// — live writer, real frame word, room in the buffer — and reports
// whether it did. Callers must invoke BlockFrameSlow(f) when it
// returns false. Deliberately tiny so it inlines into interpreter
// dispatch loops: this one call is most of the tracing overhead
// budget.
func (w *Writer) FastAppend4(f uint32) bool {
	if !w.live || f&3 != 3 || len(w.buf)+4 > flushThreshold {
		return false
	}
	w.pending++
	w.buf = append(w.buf, byte(f), byte(f>>8), byte(f>>16), byte(f>>24))
	return true
}

// BlockFrameSlow is the cold path behind FastAppend4: it flushes a
// full buffer, routes capped/errored writers through emit (which
// counts drops), and decodes the site<<2 fallback tag for block sites
// too large to pack.
func (w *Writer) BlockFrameSlow(f uint32) {
	if f&3 != 3 {
		w.blockSlow(f >> 2)
		return
	}
	if !w.live {
		w.emit([]byte{byte(f >> 8), byte(f >> 16), byte(f >> 24)})
		return
	}
	w.flush()
	if !w.FastAppend4(f) {
		w.emit([]byte{byte(f >> 8), byte(f >> 16), byte(f >> 24)})
	}
}

func (w *Writer) blockSlow(site uint32) {
	var p [1 + binary.MaxVarintLen32]byte
	n := 1
	p[0] = recBlock
	n += binary.PutUvarint(p[n:], uint64(site))
	w.emit(p[:n])
}

// Call records entry into a function. fn is an interned function name.
func (w *Writer) Call(fn uint32) {
	var p [1 + binary.MaxVarintLen32]byte
	n := 1
	p[0] = recCall
	n += binary.PutUvarint(p[n:], uint64(fn))
	w.emit(p[:n])
}

// Alloc records an allocation: raw VM allocs (class 0) and hardened
// olr_malloc allocs (class hash + layout generation) share the record.
func (w *Writer) Alloc(site uint32, class, base uint64, size int, layout uint64, detail uint32) {
	var p [1 + 6*binary.MaxVarintLen64]byte
	n := 1
	p[0] = recAlloc
	n += binary.PutUvarint(p[n:], uint64(site))
	n += binary.PutUvarint(p[n:], class)
	n += binary.PutUvarint(p[n:], base)
	n += binary.PutUvarint(p[n:], uint64(int64(size)))
	n += binary.PutUvarint(p[n:], layout)
	n += binary.PutUvarint(p[n:], uint64(detail))
	w.emit(p[:n])
}

// Free records a deallocation.
func (w *Writer) Free(site uint32, class, base, layout uint64) {
	var p [1 + 4*binary.MaxVarintLen64]byte
	n := 1
	p[0] = recFree
	n += binary.PutUvarint(p[n:], uint64(site))
	n += binary.PutUvarint(p[n:], class)
	n += binary.PutUvarint(p[n:], base)
	n += binary.PutUvarint(p[n:], layout)
	w.emit(p[:n])
}

// Getptr records one olr_getptr resolution: which member of which
// class, against which base, what offset came back, and through which
// path (cache hit / metadata / static fallback). field is the member
// index (-1 for none — encoded +1 so it stays unsigned).
func (w *Writer) Getptr(site uint32, class uint64, field int, base uint64, off int, res Resolution) {
	var p [1 + 6*binary.MaxVarintLen64]byte
	n := 1
	p[0] = recGetptr
	n += binary.PutUvarint(p[n:], uint64(site))
	n += binary.PutUvarint(p[n:], class)
	n += binary.PutUvarint(p[n:], uint64(int64(field)+1))
	n += binary.PutUvarint(p[n:], base)
	n += binary.PutUvarint(p[n:], uint64(int64(off)))
	n += binary.PutUvarint(p[n:], uint64(res))
	w.emit(p[:n])
}

// Event implements telemetry.Sink: the writer rides the existing bus
// for everything that is not hot enough (or not precise enough) to
// deserve a direct hook. The split is deliberate:
//
//   - EvAlloc/EvFree with Class != 0 are olr_malloc/olr_free — core
//     writes richer direct records (site id, layout) itself, so the
//     bus copy is skipped to avoid double-counting.
//   - EvFieldHit/EvFieldMiss are skipped for the same reason: the
//     direct Getptr record carries the chosen offset, which the bus
//     event does not.
//   - Everything else (layout generation, memcpy re-randomization,
//     violations, fuel checkpoints, taint/corpus events) is recorded
//     from the bus so any future emitter is traced for free.
func (w *Writer) Event(e telemetry.Event) {
	switch e.Kind {
	case telemetry.EvAlloc:
		if e.Class != 0 {
			return
		}
		w.Alloc(w.Intern(e.Site), 0, e.Addr, e.Size, 0, w.Intern(e.Detail))
	case telemetry.EvFree:
		if e.Class != 0 {
			return
		}
		w.Free(w.Intern(e.Site), 0, e.Addr, 0)
	case telemetry.EvFieldHit, telemetry.EvFieldMiss:
		return
	case telemetry.EvLayoutGen:
		detail := w.Intern(e.Detail)
		var p [1 + 4*binary.MaxVarintLen64]byte
		n := 1
		p[0] = recLayoutGen
		n += binary.PutUvarint(p[n:], e.Class)
		n += binary.PutUvarint(p[n:], e.Layout)
		n += binary.PutUvarint(p[n:], uint64(int64(e.Size)))
		n += binary.PutUvarint(p[n:], uint64(detail))
		w.emit(p[:n])
	case telemetry.EvMemcpyRerand:
		detail := w.Intern(e.Detail)
		var p [1 + 5*binary.MaxVarintLen64]byte
		n := 1
		p[0] = recRerand
		n += binary.PutUvarint(p[n:], e.Addr)
		n += binary.PutUvarint(p[n:], uint64(int64(e.Size)))
		n += binary.PutUvarint(p[n:], e.Class)
		n += binary.PutUvarint(p[n:], e.Layout)
		n += binary.PutUvarint(p[n:], uint64(detail))
		w.emit(p[:n])
	case telemetry.EvViolation:
		detail := w.Intern(e.Detail)
		site := w.Intern(e.Site)
		var p [1 + 6*binary.MaxVarintLen64]byte
		n := 1
		p[0] = recViolation
		n += binary.PutUvarint(p[n:], uint64(detail))
		n += binary.PutUvarint(p[n:], e.Addr)
		n += binary.PutUvarint(p[n:], e.Class)
		n += binary.PutUvarint(p[n:], e.Layout)
		n += binary.PutUvarint(p[n:], uint64(int64(e.Field)+1))
		n += binary.PutUvarint(p[n:], uint64(site))
		w.emit(p[:n])
	case telemetry.EvFuelCheckpoint:
		detail := w.Intern(e.Detail)
		var p [1 + 2*binary.MaxVarintLen64]byte
		n := 1
		p[0] = recFuel
		n += binary.PutUvarint(p[n:], uint64(int64(e.Size)))
		n += binary.PutUvarint(p[n:], uint64(detail))
		w.emit(p[:n])
	default:
		// Generic carrier for kinds the format has no dedicated record
		// for (taint-union, corpus-add, and any kind added later): new
		// emitters are traced without a format revision.
		site := w.Intern(e.Site)
		detail := w.Intern(e.Detail)
		var p [1 + 9*binary.MaxVarintLen64]byte
		n := 1
		p[0] = recEvent
		n += binary.PutUvarint(p[n:], uint64(e.Kind))
		n += binary.PutUvarint(p[n:], e.Addr)
		n += binary.PutUvarint(p[n:], uint64(int64(e.Size)))
		n += binary.PutUvarint(p[n:], e.Class)
		n += binary.PutUvarint(p[n:], e.Layout)
		n += binary.PutUvarint(p[n:], uint64(int64(e.Field)+1))
		n += binary.PutUvarint(p[n:], e.Label)
		n += binary.PutUvarint(p[n:], uint64(site))
		n += binary.PutUvarint(p[n:], uint64(detail))
		w.emit(p[:n])
	}
}

// Records reports how many event records were written so far. Owner
// goroutine only (live scrapes go through Publish).
func (w *Writer) Records() uint64 { return w.records.Load() + w.pending }

// Dropped reports how many event records were discarded (cap reached
// or write error).
func (w *Writer) Dropped() uint64 { return w.dropped.Load() }

// Err returns the sticky write error, if any.
func (w *Writer) Err() error { return w.err }

// Publish snapshots the writer's own counters into a metrics registry
// so the OpenMetrics exposition can surface trace loss
// (polar_exectrace_records_total / polar_exectrace_dropped_total).
// Safe from a scrape goroutine; for an unbounded writer mid-run the
// record count trails by at most one flush window (exact after Close).
func (w *Writer) Publish(reg *telemetry.Registry) {
	if w == nil || reg == nil {
		return
	}
	reg.Counter("exectrace.records").Set(w.records.Load())
	reg.Counter("exectrace.dropped").Set(w.dropped.Load())
}

// Close writes the footer (event count + dropped count), flushes, and
// makes further records no-ops. Safe to call more than once; only the
// first call writes the footer. Close never closes the underlying
// writer — the caller owns the file.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	w.live = false
	w.fold()
	if w.err == nil {
		var p [1 + 2*binary.MaxVarintLen64]byte
		n := 1
		p[0] = recEOF
		n += binary.PutUvarint(p[n:], w.records.Load())
		n += binary.PutUvarint(p[n:], w.dropped.Load())
		w.buf = binary.AppendUvarint(w.buf, uint64(n))
		w.buf = append(w.buf, p[:n]...)
	}
	w.flush()
	return w.err
}
