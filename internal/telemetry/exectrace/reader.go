package exectrace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"polar/internal/telemetry"
)

// Kind names a decoded record's type.
type Kind uint8

// Decoded record kinds (the wire kind bytes, re-exported as a typed
// enum so consumers never touch raw bytes).
const (
	KindAlloc     Kind = Kind(recAlloc)
	KindFree      Kind = Kind(recFree)
	KindGetptr    Kind = Kind(recGetptr)
	KindBlock     Kind = Kind(recBlock)
	KindCall      Kind = Kind(recCall)
	KindFuel      Kind = Kind(recFuel)
	KindViolation Kind = Kind(recViolation)
	KindLayoutGen Kind = Kind(recLayoutGen)
	KindRerand    Kind = Kind(recRerand)
	KindEvent     Kind = Kind(recEvent)
)

// String implements fmt.Stringer; the names are what `polartrace
// inspect -kind` matches against.
func (k Kind) String() string {
	switch k {
	case KindAlloc:
		return "alloc"
	case KindFree:
		return "free"
	case KindGetptr:
		return "getptr"
	case KindBlock:
		return "block"
	case KindCall:
		return "call"
	case KindFuel:
		return "fuel"
	case KindViolation:
		return "violation"
	case KindLayoutGen:
		return "layout-gen"
	case KindRerand:
		return "rerand"
	case KindEvent:
		return "event"
	default:
		return "?"
	}
}

// Record is one decoded trace event with string ids resolved. All
// fields are comparable, so Record == Record is exactly "same event" —
// the property Diff is built on.
type Record struct {
	Kind   Kind
	Site   string // "@fn.block" site, or "" when unknown
	Fn     string // callee name (KindCall)
	Class  uint64 // class hash (0 = raw VM object)
	Base   uint64 // object base / event address
	Size   int64  // bytes, or remaining fuel for KindFuel
	Layout uint64 // layout identity hash
	Field  int64  // member index, -1 when n/a
	Off    int64  // resolved offset (KindGetptr)
	Res    Resolution
	Ev     telemetry.EventKind // original bus kind (KindEvent)
	Label  uint64              // taint label bitmask (KindEvent)
	Detail string              // kind-specific tag (class name, violation kind, ...)
}

// Format renders the record for `polartrace inspect`: one line, stable
// field order, no indices — purely a function of the record.
func (r Record) Format() string {
	switch r.Kind {
	case KindAlloc:
		return fmt.Sprintf("alloc site=%s class=%#x base=%#x size=%d layout=%#x detail=%s", orDash(r.Site), r.Class, r.Base, r.Size, r.Layout, orDash(r.Detail))
	case KindFree:
		return fmt.Sprintf("free site=%s class=%#x base=%#x layout=%#x", orDash(r.Site), r.Class, r.Base, r.Layout)
	case KindGetptr:
		return fmt.Sprintf("getptr site=%s class=%#x field=%d base=%#x off=%d res=%s", orDash(r.Site), r.Class, r.Field, r.Base, r.Off, r.Res)
	case KindBlock:
		return fmt.Sprintf("block site=%s", orDash(r.Site))
	case KindCall:
		return fmt.Sprintf("call fn=%s", orDash(r.Fn))
	case KindFuel:
		return fmt.Sprintf("fuel remaining=%d detail=%s", r.Size, orDash(r.Detail))
	case KindViolation:
		return fmt.Sprintf("violation kind=%s addr=%#x class=%#x layout=%#x field=%d site=%s", orDash(r.Detail), r.Base, r.Class, r.Layout, r.Field, orDash(r.Site))
	case KindLayoutGen:
		return fmt.Sprintf("layout-gen class=%#x layout=%#x size=%d detail=%s", r.Class, r.Layout, r.Size, orDash(r.Detail))
	case KindRerand:
		return fmt.Sprintf("rerand addr=%#x size=%d class=%#x layout=%#x detail=%s", r.Base, r.Size, r.Class, r.Layout, orDash(r.Detail))
	case KindEvent:
		return fmt.Sprintf("event kind=%s addr=%#x size=%d class=%#x label=%#x site=%s detail=%s", r.Ev, r.Base, r.Size, r.Class, r.Label, orDash(r.Site), orDash(r.Detail))
	default:
		return fmt.Sprintf("?kind=%d", r.Kind)
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// Trace is a fully decoded trace file.
type Trace struct {
	Schema  string
	Records []Record
	// Count and Dropped come from the footer; Complete reports whether
	// the footer was present at all (a crashed producer leaves it off).
	Count    uint64
	Dropped  uint64
	Complete bool
}

// ReadFile decodes the trace at path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Read(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// Read decodes a trace from r.
func Read(r io.Reader) (*Trace, error) {
	br, ok := r.(io.ByteReader)
	if !ok {
		br2 := bufio.NewReader(r)
		r, br = br2, br2
	}
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("exectrace: read magic: %w", err)
	}
	if string(magic[:]) != Magic {
		return nil, fmt.Errorf("exectrace: bad magic %q (not a polar-exectrace file)", magic[:])
	}
	schema, err := readString(r, br)
	if err != nil {
		return nil, fmt.Errorf("exectrace: read schema: %w", err)
	}
	if schema != Schema {
		return nil, fmt.Errorf("exectrace: unsupported schema %q (want %q)", schema, Schema)
	}

	t := &Trace{Schema: schema}
	strs := map[uint64]string{}
	lookup := func(id uint64) string { return strs[id] }
	var payload []byte
	for {
		size, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("exectrace: record %d: length: %w", len(t.Records), err)
		}
		if size == 0 || size > 1<<20 {
			return nil, fmt.Errorf("exectrace: record %d: implausible length %d", len(t.Records), size)
		}
		if uint64(cap(payload)) < size {
			payload = make([]byte, size)
		}
		payload = payload[:size]
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("exectrace: record %d: body: %w", len(t.Records), err)
		}
		kind := payload[0]
		fields := payload[1:]
		if kind == recString {
			id, rest, err := uv(fields)
			if err != nil {
				return nil, fmt.Errorf("exectrace: string def: %w", err)
			}
			slen, rest, err := uv(rest)
			if err != nil {
				return nil, fmt.Errorf("exectrace: string def %d: %w", id, err)
			}
			if uint64(len(rest)) != slen {
				return nil, fmt.Errorf("exectrace: string def %d: %d bytes, want %d", id, len(rest), slen)
			}
			strs[id] = string(rest)
			continue
		}
		if kind == recEOF {
			count, rest, err := uv(fields)
			if err != nil {
				return nil, fmt.Errorf("exectrace: footer: %w", err)
			}
			dropped, _, err := uv(rest)
			if err != nil {
				return nil, fmt.Errorf("exectrace: footer: %w", err)
			}
			t.Count, t.Dropped, t.Complete = count, dropped, true
			continue // tolerate trailing bytes only if a reader concatenated; loop exits on EOF
		}
		rec, err := decodeRecord(kind, fields, lookup)
		if err != nil {
			return nil, fmt.Errorf("exectrace: record %d: %w", len(t.Records), err)
		}
		t.Records = append(t.Records, rec)
	}
}

// uv decodes one uvarint from b.
func uv(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("truncated varint")
	}
	return v, b[n:], nil
}

func decodeRecord(kind byte, b []byte, str func(uint64) string) (Record, error) {
	// want decodes a fixed sequence of uvarints; every record body is
	// exactly its field list, so leftovers mean corruption.
	want := func(n int) ([]uint64, error) {
		out := make([]uint64, n)
		var err error
		for i := 0; i < n; i++ {
			out[i], b, err = uv(b)
			if err != nil {
				return nil, err
			}
		}
		if len(b) != 0 {
			return nil, fmt.Errorf("%d trailing bytes", len(b))
		}
		return out, nil
	}
	switch kind {
	case recAlloc:
		f, err := want(6)
		if err != nil {
			return Record{}, err
		}
		return Record{Kind: KindAlloc, Site: str(f[0]), Class: f[1], Base: f[2], Size: int64(f[3]), Layout: f[4], Detail: str(f[5])}, nil
	case recFree:
		f, err := want(4)
		if err != nil {
			return Record{}, err
		}
		return Record{Kind: KindFree, Site: str(f[0]), Class: f[1], Base: f[2], Layout: f[3]}, nil
	case recGetptr:
		f, err := want(6)
		if err != nil {
			return Record{}, err
		}
		return Record{Kind: KindGetptr, Site: str(f[0]), Class: f[1], Field: int64(f[2]) - 1, Base: f[3], Off: int64(f[4]), Res: Resolution(f[5])}, nil
	case recBlock:
		f, err := want(1)
		if err != nil {
			return Record{}, err
		}
		return Record{Kind: KindBlock, Site: str(f[0])}, nil
	case recCall:
		f, err := want(1)
		if err != nil {
			return Record{}, err
		}
		return Record{Kind: KindCall, Fn: str(f[0])}, nil
	case recFuel:
		f, err := want(2)
		if err != nil {
			return Record{}, err
		}
		return Record{Kind: KindFuel, Size: int64(f[0]), Detail: str(f[1])}, nil
	case recViolation:
		f, err := want(6)
		if err != nil {
			return Record{}, err
		}
		return Record{Kind: KindViolation, Detail: str(f[0]), Base: f[1], Class: f[2], Layout: f[3], Field: int64(f[4]) - 1, Site: str(f[5])}, nil
	case recLayoutGen:
		f, err := want(4)
		if err != nil {
			return Record{}, err
		}
		return Record{Kind: KindLayoutGen, Class: f[0], Layout: f[1], Size: int64(f[2]), Detail: str(f[3])}, nil
	case recRerand:
		f, err := want(5)
		if err != nil {
			return Record{}, err
		}
		return Record{Kind: KindRerand, Base: f[0], Size: int64(f[1]), Class: f[2], Layout: f[3], Detail: str(f[4])}, nil
	case recEvent:
		f, err := want(9)
		if err != nil {
			return Record{}, err
		}
		return Record{
			Kind: KindEvent, Ev: telemetry.EventKind(f[0]), Base: f[1], Size: int64(f[2]),
			Class: f[3], Layout: f[4], Field: int64(f[5]) - 1, Label: f[6], Site: str(f[7]), Detail: str(f[8]),
		}, nil
	default:
		return Record{}, fmt.Errorf("unknown record kind %d", kind)
	}
}

// readString reads uvarint-length-prefixed bytes.
func readString(r io.Reader, br io.ByteReader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
