package exectrace

import (
	"bytes"
	"errors"
	"testing"

	"polar/internal/telemetry"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)

	site := w.Intern("@main.entry")
	cls := w.Intern("Victim")
	fn := w.Intern("@main")

	w.Call(fn)
	w.Block(site)
	w.Alloc(site, 0xabc, 0x10000, 64, 0xdef, cls)
	w.Getptr(site, 0xabc, 2, 0x10000, 24, ResMetadata)
	w.Getptr(site, 0xabc, 2, 0x10000, 24, ResCacheHit)
	w.Free(site, 0xabc, 0x10000, 0xdef)
	// Bus-fed records.
	w.Event(telemetry.Event{Kind: telemetry.EvFuelCheckpoint, Size: 999, Detail: "run-start"})
	w.Event(telemetry.Event{Kind: telemetry.EvAlloc, Addr: 0x2000, Size: 16, Detail: "Raw"}) // raw VM alloc
	w.Event(telemetry.Event{Kind: telemetry.EvAlloc, Addr: 0x3000, Size: 16, Class: 7})      // hardened: skipped (direct record covers it)
	w.Event(telemetry.Event{Kind: telemetry.EvFieldHit, Addr: 0x3000, Class: 7, Field: 1})   // skipped
	w.Event(telemetry.Event{Kind: telemetry.EvLayoutGen, Class: 0xabc, Layout: 0xdef, Size: 64, Detail: "Victim"})
	w.Event(telemetry.Event{Kind: telemetry.EvViolation, Addr: 0x10010, Class: 0xabc, Layout: 0xdef, Field: 3, Site: "@main.entry", Detail: "use-after-free"})
	w.Event(telemetry.Event{Kind: telemetry.EvTaintUnion, Addr: 0x4000, Label: 0b101, Size: 8})
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got, want := w.Records(), uint64(11); got != want {
		t.Fatalf("records = %d, want %d", got, want)
	}

	tr, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !tr.Complete || tr.Count != 11 || tr.Dropped != 0 {
		t.Fatalf("footer: complete=%v count=%d dropped=%d", tr.Complete, tr.Count, tr.Dropped)
	}
	want := []Record{
		{Kind: KindCall, Fn: "@main"},
		{Kind: KindBlock, Site: "@main.entry"},
		{Kind: KindAlloc, Site: "@main.entry", Class: 0xabc, Base: 0x10000, Size: 64, Layout: 0xdef, Detail: "Victim"},
		{Kind: KindGetptr, Site: "@main.entry", Class: 0xabc, Field: 2, Base: 0x10000, Off: 24, Res: ResMetadata},
		{Kind: KindGetptr, Site: "@main.entry", Class: 0xabc, Field: 2, Base: 0x10000, Off: 24, Res: ResCacheHit},
		{Kind: KindFree, Site: "@main.entry", Class: 0xabc, Base: 0x10000, Layout: 0xdef},
		{Kind: KindFuel, Size: 999, Detail: "run-start"},
		{Kind: KindAlloc, Base: 0x2000, Size: 16, Detail: "Raw"},
		{Kind: KindLayoutGen, Class: 0xabc, Layout: 0xdef, Size: 64, Detail: "Victim"},
		{Kind: KindViolation, Base: 0x10010, Class: 0xabc, Layout: 0xdef, Field: 3, Site: "@main.entry", Detail: "use-after-free"},
		{Kind: KindEvent, Ev: telemetry.EvTaintUnion, Base: 0x4000, Size: 8, Field: 0, Label: 0b101},
	}
	if len(tr.Records) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(tr.Records), len(want))
	}
	for i := range want {
		if tr.Records[i] != want[i] {
			t.Errorf("record %d:\n got %+v\nwant %+v", i, tr.Records[i], want[i])
		}
	}
}

func TestFieldMinusOneRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Getptr(0, 1, -1, 0x10, 0, ResStatic)
	w.Event(telemetry.Event{Kind: telemetry.EvViolation, Field: -1, Detail: "bad-free"})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Records[0].Field != -1 || tr.Records[1].Field != -1 {
		t.Fatalf("field -1 did not round-trip: %+v %+v", tr.Records[0], tr.Records[1])
	}
}

func TestInterningIsStable(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	a := w.Intern("@f.b0")
	b := w.Intern("@f.b1")
	if a2 := w.Intern("@f.b0"); a2 != a {
		t.Fatalf("re-intern changed id: %d vs %d", a2, a)
	}
	if a == b || a == 0 || b == 0 {
		t.Fatalf("ids must be distinct and nonzero: %d %d", a, b)
	}
	if w.Intern("") != 0 {
		t.Fatal("empty string must intern to 0")
	}
}

func TestDeterministicBytes(t *testing.T) {
	emit := func() []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		s := w.Intern("@main.loop")
		for i := 0; i < 1000; i++ {
			w.Block(s)
			w.Getptr(s, 42, i%3, uint64(0x1000+i), i, ResMetadata)
		}
		w.Close()
		return buf.Bytes()
	}
	if !bytes.Equal(emit(), emit()) {
		t.Fatal("identical record sequences must serialize byte-identically")
	}
}

func TestRecordCap(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriterLimit(&buf, 2)
	s := w.Intern("@m.e")
	for i := 0; i < 5; i++ {
		w.Block(s)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 2 || w.Dropped() != 3 {
		t.Fatalf("records=%d dropped=%d, want 2/3", w.Records(), w.Dropped())
	}
	tr, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 2 || tr.Dropped != 3 || !tr.Complete {
		t.Fatalf("decoded %d records, footer dropped=%d complete=%v", len(tr.Records), tr.Dropped, tr.Complete)
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

func TestStickyWriteError(t *testing.T) {
	w := NewWriterLimit(&failWriter{n: 0}, 0)
	s := w.Intern("@m.e")
	// Force enough volume to trigger a flush.
	for i := 0; i < 100000; i++ {
		w.Block(s)
	}
	if err := w.Close(); err == nil {
		t.Fatal("expected sticky write error")
	}
	if w.Dropped() == 0 {
		t.Fatal("records after the failure must count as dropped")
	}
}

func TestWriterAfterCloseDrops(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Close()
	n := buf.Len()
	w.Block(w.Intern("@x.y"))
	w.Close()
	if buf.Len() != n {
		t.Fatal("writes after Close must not change the stream")
	}
	if w.Dropped() != 1 {
		t.Fatalf("dropped=%d, want 1", w.Dropped())
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace at all"))); err == nil {
		t.Fatal("expected magic error")
	}
}

func TestPublish(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriterLimit(&buf, 1)
	s := w.Intern("@m.e")
	w.Block(s)
	w.Block(s)
	reg := telemetry.NewRegistry()
	w.Publish(reg)
	snap := reg.Snapshot()
	if snap.Counters["exectrace.records"] != 1 || snap.Counters["exectrace.dropped"] != 1 {
		t.Fatalf("published counters wrong: %+v", snap.Counters)
	}
}

func mkTrace(recs ...Record) *Trace {
	return &Trace{Schema: Schema, Records: recs, Count: uint64(len(recs)), Complete: true}
}

func TestDiffIdentical(t *testing.T) {
	a := mkTrace(Record{Kind: KindBlock, Site: "@m.e"}, Record{Kind: KindCall, Fn: "@f"})
	b := mkTrace(Record{Kind: KindBlock, Site: "@m.e"}, Record{Kind: KindCall, Fn: "@f"})
	if d := Diff(a, b); d != nil {
		t.Fatalf("expected no divergence, got %+v", d)
	}
}

func TestDiffLocalizesExactRecord(t *testing.T) {
	base := []Record{
		{Kind: KindCall, Fn: "@main"},
		{Kind: KindBlock, Site: "@main.entry"},
		{Kind: KindAlloc, Site: "@main.entry", Class: 1, Base: 0x1000, Size: 8},
		{Kind: KindGetptr, Site: "@main.entry", Class: 1, Field: 0, Base: 0x1000, Off: 0, Res: ResMetadata},
		{Kind: KindBlock, Site: "@main.exit"},
	}
	perturbed := append([]Record(nil), base...)
	perturbed[3].Off = 8 // the seeded perturbation: one resolved offset differs
	d := Diff(mkTrace(base...), mkTrace(perturbed...))
	if d == nil {
		t.Fatal("expected divergence")
	}
	if d.Index != 3 {
		t.Fatalf("divergence index = %d, want 3", d.Index)
	}
	if d.A == nil || d.B == nil || d.A.Off != 0 || d.B.Off != 8 {
		t.Fatalf("divergent records wrong: %+v vs %+v", d.A, d.B)
	}
	if len(d.ContextA) != 3 || d.ContextA[0].Kind != KindCall {
		t.Fatalf("context wrong: %+v", d.ContextA)
	}
	out := d.Format("a", "b")
	if !bytes.Contains([]byte(out), []byte("diverge at record 3")) {
		t.Fatalf("report missing index: %s", out)
	}
}

func TestDiffPrefix(t *testing.T) {
	long := mkTrace(Record{Kind: KindBlock, Site: "@m.e"}, Record{Kind: KindBlock, Site: "@m.x"})
	short := mkTrace(Record{Kind: KindBlock, Site: "@m.e"})
	d := Diff(long, short)
	if d == nil || d.Index != 1 || d.A == nil || d.B != nil {
		t.Fatalf("prefix divergence wrong: %+v", d)
	}
}

func TestStatsAndCrossCheck(t *testing.T) {
	tr := mkTrace(
		Record{Kind: KindCall, Fn: "@main"},
		Record{Kind: KindBlock, Site: "@main.entry"},
		Record{Kind: KindAlloc, Site: "@main.entry", Class: 5, Base: 0x1000, Size: 32, Layout: 9, Detail: "Victim"},
		Record{Kind: KindGetptr, Site: "@main.entry", Class: 5, Field: 1, Base: 0x1000, Off: 8, Res: ResMetadata},
		Record{Kind: KindGetptr, Site: "@main.entry", Class: 5, Field: 1, Base: 0x1000, Off: 8, Res: ResCacheHit},
		Record{Kind: KindFree, Site: "@main.entry", Class: 5, Base: 0x1000, Layout: 9},
		Record{Kind: KindAlloc, Base: 0x2000, Size: 8, Detail: "Raw"},
	)
	s := Compute(tr)
	if s.Allocs != 2 || s.Frees != 1 || s.Getptrs != 2 || s.CacheHits != 1 || s.Metadata != 1 {
		t.Fatalf("rollups wrong: %+v", s)
	}
	if c := s.ByClass["Victim"]; c == nil || c.Allocs != 1 || c.Getptrs != 2 || len(c.Layouts) != 1 {
		t.Fatalf("class rollup wrong: %+v", s.ByClass)
	}
	if s.BySite["@main.entry"] != 2 {
		t.Fatalf("site rollup wrong: %+v", s.BySite)
	}

	reg := telemetry.NewRegistry()
	reg.Counter("event.alloc").Add(2)
	reg.Counter("event.free").Add(1)
	reg.Counter("event.fieldptr-hit").Add(1)
	reg.Counter("event.fieldptr-miss").Add(1)
	if msgs := CrossCheck(s, reg.Snapshot()); len(msgs) != 0 {
		t.Fatalf("cross-check should pass: %v", msgs)
	}
	reg.Counter("event.alloc").Add(1)
	if msgs := CrossCheck(s, reg.Snapshot()); len(msgs) != 1 {
		t.Fatalf("cross-check should flag alloc mismatch: %v", msgs)
	}
}
