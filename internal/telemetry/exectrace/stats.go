package exectrace

import (
	"fmt"
	"sort"
	"strings"

	"polar/internal/telemetry"
)

// TraceStats aggregates one trace into the rollups `polartrace stats`
// prints and CrossCheck validates against the metrics registry.
type TraceStats struct {
	Total    int    // decoded event records
	Count    uint64 // footer record count
	Dropped  uint64 // footer drop count
	Complete bool

	ByKind map[string]int

	Allocs, Frees int
	Getptrs       int
	CacheHits     int // getptr res=cache-hit
	Metadata      int // getptr res=metadata
	Static        int // getptr res=static
	Blocks, Calls int
	Violations    int

	// ByClass keys on the class detail name when the trace carries one
	// (hardened allocs record the class name as Detail), else the hash.
	ByClass map[string]*ClassStats
	// BySite counts getptr resolutions per site — the trace-level
	// analogue of the hot-site profiler.
	BySite map[string]int
}

// ClassStats is the per-class rollup.
type ClassStats struct {
	Allocs, Frees int
	Getptrs       int
	Layouts       map[uint64]struct{}
}

// Compute aggregates t.
func Compute(t *Trace) *TraceStats {
	s := &TraceStats{
		Count: t.Count, Dropped: t.Dropped, Complete: t.Complete,
		ByKind:  map[string]int{},
		ByClass: map[string]*ClassStats{},
		BySite:  map[string]int{},
	}
	classKey := func(r Record) string {
		if r.Detail != "" {
			return r.Detail
		}
		return fmt.Sprintf("%#x", r.Class)
	}
	cls := func(key string) *ClassStats {
		c := s.ByClass[key]
		if c == nil {
			c = &ClassStats{Layouts: map[uint64]struct{}{}}
			s.ByClass[key] = c
		}
		return c
	}
	// classNames remembers hash -> detail-name bindings seen on allocs
	// so frees and getptrs (which carry only the hash) fold into the
	// same row.
	classNames := map[uint64]string{}
	for _, r := range t.Records {
		s.Total++
		s.ByKind[r.Kind.String()]++
		switch r.Kind {
		case KindAlloc:
			s.Allocs++
			key := classKey(r)
			if r.Class != 0 && r.Detail != "" {
				classNames[r.Class] = r.Detail
			}
			c := cls(key)
			c.Allocs++
			if r.Layout != 0 {
				c.Layouts[r.Layout] = struct{}{}
			}
		case KindFree:
			s.Frees++
			key := classNames[r.Class]
			if key == "" {
				key = fmt.Sprintf("%#x", r.Class)
			}
			cls(key).Frees++
		case KindGetptr:
			s.Getptrs++
			switch r.Res {
			case ResCacheHit:
				s.CacheHits++
			case ResMetadata:
				s.Metadata++
			case ResStatic:
				s.Static++
			}
			key := classNames[r.Class]
			if key == "" {
				key = fmt.Sprintf("%#x", r.Class)
			}
			cls(key).Getptrs++
			if r.Site != "" {
				s.BySite[r.Site]++
			}
		case KindBlock:
			s.Blocks++
		case KindCall:
			s.Calls++
		case KindViolation:
			s.Violations++
		}
	}
	return s
}

// Format renders the stats report: deterministic order (sorted keys),
// no timestamps.
func (s *TraceStats) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "records: %d (footer: %d, dropped: %d, complete: %v)\n", s.Total, s.Count, s.Dropped, s.Complete)
	sb.WriteString("by kind:\n")
	for _, k := range sortedKeys(s.ByKind) {
		fmt.Fprintf(&sb, "  %-12s %d\n", k, s.ByKind[k])
	}
	fmt.Fprintf(&sb, "getptr: %d (cache-hit %d, metadata %d, static %d)\n", s.Getptrs, s.CacheHits, s.Metadata, s.Static)
	if len(s.ByClass) > 0 {
		sb.WriteString("by class:\n")
		keys := make([]string, 0, len(s.ByClass))
		for k := range s.ByClass {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			c := s.ByClass[k]
			fmt.Fprintf(&sb, "  %-16s allocs=%d frees=%d getptrs=%d layouts=%d\n", k, c.Allocs, c.Frees, c.Getptrs, len(c.Layouts))
		}
	}
	if len(s.BySite) > 0 {
		sb.WriteString("hot getptr sites:\n")
		type kv struct {
			site string
			n    int
		}
		rows := make([]kv, 0, len(s.BySite))
		for k, v := range s.BySite {
			rows = append(rows, kv{k, v})
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].n != rows[j].n {
				return rows[i].n > rows[j].n
			}
			return rows[i].site < rows[j].site
		})
		if len(rows) > 10 {
			rows = rows[:10]
		}
		for _, r := range rows {
			fmt.Fprintf(&sb, "  %-24s %d\n", r.site, r.n)
		}
	}
	return sb.String()
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CrossCheck validates the trace rollups against a metrics snapshot
// taken from the same run: every runtime operation the trace claims
// must match the "event.*" counters the bus-level counting sink saw.
// It returns one message per mismatch (empty = consistent).
//
// The check is exact for completed runs. A run aborted mid-operation
// (abort-policy violation) can legitimately count one more bus event
// than trace records, because the bus event fires before the aborting
// error return skips the trace write — callers cross-checking aborted
// runs should expect an off-by-one on the violated operation.
func CrossCheck(s *TraceStats, snap telemetry.Snapshot) []string {
	var out []string
	check := func(what string, traced int, counter string) {
		if got, ok := snap.Counters[counter]; ok || traced != 0 {
			if uint64(traced) != got {
				out = append(out, fmt.Sprintf("%s: trace has %d, registry %s=%d", what, traced, counter, got))
			}
		}
	}
	check("allocs", s.Allocs, "event.alloc")
	check("frees", s.Frees, "event.free")
	check("getptr cache hits", s.CacheHits, "event.fieldptr-hit")
	check("getptr misses", s.Metadata+s.Static, "event.fieldptr-miss")
	check("violations", s.Violations, "event.violation")
	check("layout generations", s.ByKind["layout-gen"], "event.layout-gen")
	check("memcpy re-randomizations", s.ByKind["rerand"], "event.memcpy-rerand")
	return out
}
