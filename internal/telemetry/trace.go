package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Tracer emits Chrome trace-event–format JSON: an array of event
// objects, one per line, loadable in chrome://tracing and Perfetto.
// The stream stays valid-by-line (JSONL inside the array) and the
// array is closed by Close; Chrome also tolerates an unclosed array if
// the process dies mid-run.
//
// Spans model pipeline phases (parse → CIE → instrument → run → eval)
// as complete ("X") events; violations arriving via the event bus
// become instant ("i") events on the same timeline.
type Tracer struct {
	mu     sync.Mutex
	w      io.Writer
	clock  func() time.Duration // elapsed since tracer start
	n      int
	closed bool
	err    error
}

// traceEvent is one Chrome trace-event object.
type traceEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Phase string            `json:"ph"`
	TS    int64             `json:"ts"` // microseconds
	Dur   int64             `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"` // instant-event scope
	Args  map[string]string `json:"args,omitempty"`
}

// NewTracer returns a tracer writing to w. The opening bracket is
// written immediately.
func NewTracer(w io.Writer) *Tracer {
	start := time.Now()
	t := &Tracer{w: w, clock: func() time.Duration { return time.Since(start) }}
	_, t.err = io.WriteString(w, "[\n")
	return t
}

// SetClock replaces the elapsed-time source (tests pin it for
// deterministic output).
func (t *Tracer) SetClock(clock func() time.Duration) {
	t.mu.Lock()
	t.clock = clock
	t.mu.Unlock()
}

func (t *Tracer) emit(e traceEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.err != nil {
		return
	}
	data, err := json.Marshal(e)
	if err != nil {
		t.err = err
		return
	}
	sep := ",\n"
	if t.n == 0 {
		sep = ""
	}
	if _, err := fmt.Fprintf(t.w, "%s%s", sep, data); err != nil {
		t.err = err
		return
	}
	t.n++
}

func (t *Tracer) now() int64 {
	t.mu.Lock()
	clock := t.clock
	t.mu.Unlock()
	return clock().Microseconds()
}

// Span is an open phase; End closes it and emits the complete event.
type Span struct {
	t     *Tracer
	name  string
	cat   string
	start int64
	done  bool
}

// Begin opens a span in category cat (e.g. "pipeline").
func (t *Tracer) Begin(name, cat string) *Span {
	return &Span{t: t, name: name, cat: cat, start: t.now()}
}

// End closes the span. Idempotent.
func (s *Span) End() {
	if s == nil || s.done {
		return
	}
	s.done = true
	end := s.t.now()
	dur := end - s.start
	if dur < 1 {
		dur = 1 // chrome://tracing drops zero-width slices
	}
	s.t.emit(traceEvent{
		Name: s.name, Cat: s.cat, Phase: "X",
		TS: s.start, Dur: dur, PID: 1, TID: 1,
	})
}

// Instant emits a zero-duration marker with optional args.
func (t *Tracer) Instant(name, cat string, args map[string]string) {
	t.emit(traceEvent{
		Name: name, Cat: cat, Phase: "i", TS: t.now(),
		PID: 1, TID: 1, Scope: "g", Args: args,
	})
}

// Event implements Sink: violation events become instant markers on the
// timeline; every other kind is ignored (per-allocation events would
// drown the trace — the registry counts those).
func (t *Tracer) Event(e Event) {
	if e.Kind != EvViolation {
		return
	}
	t.Instant("violation:"+e.Detail, "violation", map[string]string{
		"addr":   fmt.Sprintf("0x%x", e.Addr),
		"class":  fmt.Sprintf("0x%x", e.Class),
		"layout": fmt.Sprintf("0x%x", e.Layout),
		"site":   e.Site,
	})
}

// Close terminates the JSON array. Further emissions are dropped.
func (t *Tracer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return t.err
	}
	t.closed = true
	if t.err == nil {
		_, t.err = io.WriteString(t.w, "\n]\n")
	}
	return t.err
}

// InstrLog is the line-oriented instruction tracer behind vm.WithTrace:
// it preserves the historical "@fn.block\tinstr" text format (one line
// per executed instruction, stopping after max lines) while living in
// the telemetry layer so the VM has a single tracing seam.
type InstrLog struct {
	w   io.Writer
	max int
	n   int
}

// NewInstrLog returns a tracer writing at most max lines to w
// (0 = unlimited).
func NewInstrLog(w io.Writer, max int) *InstrLog {
	return &InstrLog{w: w, max: max}
}

// Emit writes one instruction line unless the budget is exhausted.
func (l *InstrLog) Emit(fn, block, instr string) {
	if l.max > 0 && l.n >= l.max {
		return
	}
	l.n++
	fmt.Fprintf(l.w, "@%s.%s\t%s\n", fn, block, instr)
}

// Lines returns how many lines were written.
func (l *InstrLog) Lines() int { return l.n }
