package sample

import (
	"reflect"
	"testing"

	"polar/internal/telemetry"
)

// stream fabricates n events of kind k with distinguishable payloads.
func stream(k telemetry.EventKind, n int) []telemetry.Event {
	evs := make([]telemetry.Event, n)
	for i := range evs {
		evs[i] = telemetry.Event{Kind: k, Addr: uint64(0x1000 + i)}
	}
	return evs
}

func TestRatedForwardsFirstThenEveryNth(t *testing.T) {
	rec := telemetry.NewRecorder(0)
	r := NewRated(rec, 10)
	for _, e := range stream(telemetry.EvFieldHit, 25) {
		r.Event(e)
	}
	got := rec.Events()
	if len(got) != 3 {
		t.Fatalf("forwarded %d events, want 3 (first, 11th, 21st)", len(got))
	}
	for i, wantAddr := range []uint64{0x1000, 0x100a, 0x1014} {
		if got[i].Addr != wantAddr {
			t.Errorf("forwarded[%d].Addr = %#x, want %#x", i, got[i].Addr, wantAddr)
		}
	}
	kept, dropped := r.Counts()
	if kept != 3 || dropped != 22 {
		t.Errorf("Counts() = %d kept, %d dropped; want 3, 22", kept, dropped)
	}
}

func TestRatedPerKindRates(t *testing.T) {
	rec := telemetry.NewRecorder(0)
	r := NewRated(rec, 1).SetKindRate(telemetry.EvFieldHit, 100)
	for i := 0; i < 200; i++ {
		r.Event(telemetry.Event{Kind: telemetry.EvFieldHit})
		r.Event(telemetry.Event{Kind: telemetry.EvViolation})
	}
	if n := len(rec.ByKind(telemetry.EvFieldHit)); n != 2 {
		t.Errorf("fieldptr-hit forwarded %d, want 2 (1 in 100 of 200)", n)
	}
	if n := len(rec.ByKind(telemetry.EvViolation)); n != 200 {
		t.Errorf("violation forwarded %d, want all 200 (default rate 1)", n)
	}
}

func TestRatedPublish(t *testing.T) {
	r := NewRated(telemetry.FuncSink(func(telemetry.Event) {}), 4)
	for _, e := range stream(telemetry.EvAlloc, 9) {
		r.Event(e)
	}
	reg := telemetry.NewRegistry()
	r.Publish(reg)
	snap := reg.Snapshot()
	if snap.Counters["sample.rated_kept"] != 3 || snap.Counters["sample.rated_dropped"] != 6 {
		t.Fatalf("published kept/dropped = %d/%d, want 3/6",
			snap.Counters["sample.rated_kept"], snap.Counters["sample.rated_dropped"])
	}
}

func TestFilterSelectsKinds(t *testing.T) {
	rec := telemetry.NewRecorder(0)
	f := NewFilter(rec, telemetry.EvViolation)
	f.Event(telemetry.Event{Kind: telemetry.EvAlloc})
	f.Event(telemetry.Event{Kind: telemetry.EvViolation})
	f.Event(telemetry.Event{Kind: telemetry.EvFree})
	if got := rec.Events(); len(got) != 1 || got[0].Kind != telemetry.EvViolation {
		t.Fatalf("filtered events = %+v, want the one violation", got)
	}
	// No kinds configured = pass everything.
	rec2 := telemetry.NewRecorder(0)
	all := NewFilter(rec2)
	all.Event(telemetry.Event{Kind: telemetry.EvAlloc})
	all.Event(telemetry.Event{Kind: telemetry.EvFree})
	if len(rec2.Events()) != 2 {
		t.Fatal("kindless filter should forward everything")
	}
}

// TestReservoirDeterministicUnderSeed is the reproducibility contract:
// the same seed and event order give byte-identical samples, and a
// different seed gives a different one (for a stream long enough that
// replacement must occur).
func TestReservoirDeterministicUnderSeed(t *testing.T) {
	run := func(seed int64) []telemetry.Event {
		r := NewReservoir(32, seed)
		for _, e := range stream(telemetry.EvFieldHit, 5000) {
			r.Event(e)
		}
		return r.Events()
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed, same stream: samples differ")
	}
	if c := run(43); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical samples over 5000 events")
	}
	if len(a) != 32 {
		t.Fatalf("sample size = %d, want cap 32", len(a))
	}
}

func TestReservoirShortStreamKeepsEverything(t *testing.T) {
	r := NewReservoir(64, 1)
	in := stream(telemetry.EvAlloc, 10)
	for _, e := range in {
		r.Event(e)
	}
	if got := r.Events(); !reflect.DeepEqual(got, in) {
		t.Fatalf("short stream mangled: got %d events", len(got))
	}
	if r.Seen() != 10 {
		t.Fatalf("Seen() = %d, want 10", r.Seen())
	}
}

// TestReservoirUniformity sanity-checks algorithm R: over many trials,
// early and late stream positions survive at comparable rates.
func TestReservoirUniformity(t *testing.T) {
	const n, capacity, trials = 400, 40, 200
	surv := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir(capacity, int64(trial))
		for _, e := range stream(telemetry.EvFieldHit, n) {
			r.Event(e)
		}
		for _, e := range r.Events() {
			surv[e.Addr-0x1000]++
		}
	}
	firstHalf, secondHalf := 0, 0
	for i, c := range surv {
		if i < n/2 {
			firstHalf += c
		} else {
			secondHalf += c
		}
	}
	// Expected share is 50/50 (=4000 each); allow ±15% relative skew.
	ratio := float64(firstHalf) / float64(secondHalf)
	if ratio < 0.85 || ratio > 1.18 {
		t.Fatalf("first/second half survival ratio %.3f — not uniform (first=%d second=%d)",
			ratio, firstHalf, secondHalf)
	}
}
