// Package sample provides sampling sinks for the telemetry event bus,
// so high-rate event kinds (fieldptr-hit, cache-probe) can carry full
// payloads at bounded cost instead of being count-only.
//
// Two strategies are provided, mirroring the standard trade-off between
// stream sampling and retained sampling:
//
//   - Rated forwards one event in every N of a kind to a downstream
//     sink — constant per-event cost, unbounded stream, deterministic
//     (counter-based, no randomness), so two same-seed runs forward the
//     identical event subsequence. This is what the live introspection
//     endpoint streams.
//   - Reservoir retains a fixed-size uniform sample of the whole stream
//     (Vitter's algorithm R) under a seeded RNG — bounded memory, every
//     event equally likely to survive, deterministic under a fixed seed
//     and event order. This is what offline analysis snapshots.
//
// Both are telemetry.Sinks: attach them to a Bus (optionally behind a
// Filter that selects only the high-rate kinds) and detach when done.
package sample

import (
	"math/rand"
	"sync"

	"polar/internal/telemetry"
)

// Filter forwards only the configured kinds to the downstream sink.
// With no kinds configured it forwards everything.
type Filter struct {
	sink  telemetry.Sink
	kinds map[telemetry.EventKind]bool
}

// NewFilter returns a filter passing only the listed kinds to sink.
func NewFilter(sink telemetry.Sink, kinds ...telemetry.EventKind) *Filter {
	f := &Filter{sink: sink}
	if len(kinds) > 0 {
		f.kinds = make(map[telemetry.EventKind]bool, len(kinds))
		for _, k := range kinds {
			f.kinds[k] = true
		}
	}
	return f
}

// Event implements telemetry.Sink.
func (f *Filter) Event(e telemetry.Event) {
	if f.kinds == nil || f.kinds[e.Kind] {
		f.sink.Event(e)
	}
}

// Rated forwards one event in every N per kind to the downstream sink.
// The first event of a kind is always forwarded (so short streams are
// never empty), then every Nth after it. Selection is a per-kind
// counter — no randomness — so the forwarded subsequence is a
// deterministic function of the event stream.
type Rated struct {
	mu   sync.Mutex
	sink telemetry.Sink
	// every[k] is the sampling period for kind k; 0 falls back to def.
	every map[telemetry.EventKind]uint64
	def   uint64
	seen  map[telemetry.EventKind]uint64
	kept  uint64
	drop  uint64
}

// NewRated returns a rate sink forwarding 1-in-every to sink for every
// kind (every <= 1 forwards everything).
func NewRated(sink telemetry.Sink, every int) *Rated {
	if every < 1 {
		every = 1
	}
	return &Rated{
		sink:  sink,
		def:   uint64(every),
		every: make(map[telemetry.EventKind]uint64),
		seen:  make(map[telemetry.EventKind]uint64),
	}
}

// SetKindRate overrides the sampling period for one kind (every <= 1
// forwards all events of the kind).
func (r *Rated) SetKindRate(kind telemetry.EventKind, every int) *Rated {
	if every < 1 {
		every = 1
	}
	r.mu.Lock()
	r.every[kind] = uint64(every)
	r.mu.Unlock()
	return r
}

// Event implements telemetry.Sink.
func (r *Rated) Event(e telemetry.Event) {
	r.mu.Lock()
	n := r.seen[e.Kind]
	r.seen[e.Kind] = n + 1
	period := r.every[e.Kind]
	if period == 0 {
		period = r.def
	}
	forward := n%period == 0
	if forward {
		r.kept++
	} else {
		r.drop++
	}
	r.mu.Unlock()
	// Deliver outside the lock: the downstream sink may be slow (an HTTP
	// stream); only the counters need the mutex.
	if forward {
		r.sink.Event(e)
	}
}

// Counts returns how many events were forwarded and suppressed.
func (r *Rated) Counts() (kept, dropped uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.kept, r.drop
}

// Publish snapshots the sampler counters into a registry so metrics
// consumers can tell a sampled stream from a complete one.
func (r *Rated) Publish(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	kept, dropped := r.Counts()
	reg.Counter("sample.rated_kept").Set(kept)
	reg.Counter("sample.rated_dropped").Set(dropped)
}

// Reservoir retains a uniform fixed-size sample of every event it sees
// (algorithm R). Deterministic under a fixed seed and event order.
type Reservoir struct {
	mu     sync.Mutex
	cap    int
	rng    *rand.Rand
	seen   uint64
	events []telemetry.Event
}

// NewReservoir returns a reservoir keeping at most cap events (cap <= 0
// defaults to 256), sampled under the given seed.
func NewReservoir(cap int, seed int64) *Reservoir {
	if cap <= 0 {
		cap = 256
	}
	return &Reservoir{cap: cap, rng: rand.New(rand.NewSource(seed))}
}

// Event implements telemetry.Sink.
func (r *Reservoir) Event(e telemetry.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seen++
	if len(r.events) < r.cap {
		r.events = append(r.events, e)
		return
	}
	if j := r.rng.Int63n(int64(r.seen)); j < int64(r.cap) {
		r.events[j] = e
	}
}

// Events returns a copy of the current sample.
func (r *Reservoir) Events() []telemetry.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]telemetry.Event(nil), r.events...)
}

// Seen returns how many events flowed through the reservoir.
func (r *Reservoir) Seen() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen
}
