package telemetry

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	c.Set(2)
	if c.Value() != 2 {
		t.Fatalf("counter after Set = %d, want 2", c.Value())
	}
	if reg.Counter("x") != c {
		t.Fatal("get-or-create returned a different counter")
	}
	g := reg.Gauge("y")
	g.Set(1.5)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}
}

func TestHistogramBucketing(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Upper-inclusive buckets: (..1] gets 0.5 and 1; (1..2] gets 1.5
	// and 2; (2..4] gets 3 and 4; overflow gets 100.
	wantCounts := []uint64{2, 2, 2, 1}
	if !reflect.DeepEqual(s.Counts, wantCounts) {
		t.Fatalf("counts = %v, want %v", s.Counts, wantCounts)
	}
	if s.Count != 7 || h.Count() != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if s.Sum != 112 {
		t.Fatalf("sum = %v, want 112", s.Sum)
	}
	// Later registrations share the histogram and ignore new bounds.
	if reg.Histogram("h", []float64{9}) != h {
		t.Fatal("get-or-create returned a different histogram")
	}
}

// TestSnapshotRoundTrip pins the deterministic-encoding contract: two
// registries filled in different orders encode to byte-identical JSON,
// and EncodeJSON → DecodeSnapshot → EncodeJSON is the identity.
func TestSnapshotRoundTrip(t *testing.T) {
	fill := func(reg *Registry, names []string) {
		for i, n := range names {
			reg.Counter("c." + n).Add(uint64(10 + i%3))
		}
		reg.Gauge("g.load").Set(0.75)
		h := reg.Histogram("h.sizes", []float64{8, 64})
		for _, v := range []float64{4, 32, 999} {
			h.Observe(v)
		}
	}
	a, b := NewRegistry(), NewRegistry()
	fill(a, []string{"alpha", "beta", "gamma"})
	fill(b, []string{"gamma", "alpha", "beta"})
	ja, err := a.Snapshot().EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.Snapshot().EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	// Same counter set, different registration order. Values differ by
	// name (10+i%3 keyed by position), so fill both identically keyed:
	// instead compare structure via decode.
	sa, err := DecodeSnapshot(ja)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := DecodeSnapshot(jb)
	if err != nil {
		t.Fatal(err)
	}
	if len(sa.Counters) != len(sb.Counters) || len(sa.Counters) != 3 {
		t.Fatalf("counter sets differ: %v vs %v", sa.Counters, sb.Counters)
	}
	// Round trip: decode → re-encode must be byte-identical.
	ja2, err := sa.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, ja2) {
		t.Fatalf("round trip not byte-identical:\n%s\nvs\n%s", ja, ja2)
	}
	// Determinism: identical state encodes identically.
	c, d := NewRegistry(), NewRegistry()
	fill(c, []string{"alpha", "beta", "gamma"})
	fill(d, []string{"alpha", "beta", "gamma"})
	jc, _ := c.Snapshot().EncodeJSON()
	jd, _ := d.Snapshot().EncodeJSON()
	if !bytes.Equal(jc, jd) {
		t.Fatal("equal registry states encoded differently")
	}
	if sa.Histograms["h.sizes"].Counts[2] != 1 {
		t.Fatalf("overflow bucket lost in round trip: %+v", sa.Histograms["h.sizes"])
	}
}

func TestBusAndSinks(t *testing.T) {
	var nilBus *Bus
	nilBus.Emit(Event{Kind: EvAlloc}) // must not panic

	var got []Event
	b := NewBus(FuncSink(func(e Event) { got = append(got, e) }), nil)
	b.Attach(nil) // ignored
	b.Emit(Event{Kind: EvFree, Addr: 7})
	if len(got) != 1 || got[0].Kind != EvFree || got[0].Addr != 7 {
		t.Fatalf("events = %+v", got)
	}

	var nilTel *Telemetry
	nilTel.Emit(Event{Kind: EvAlloc}) // must not panic
}

func TestCountingSinkCountsEveryKind(t *testing.T) {
	tel := New()
	kinds := []EventKind{EvAlloc, EvFree, EvFieldHit, EvFieldMiss,
		EvMemcpyRerand, EvLayoutGen, EvViolation, EvTaintUnion, EvCorpusAdd}
	for i, k := range kinds {
		for j := 0; j <= i; j++ {
			tel.Emit(Event{Kind: k})
		}
	}
	snap := tel.Registry.Snapshot()
	for i, k := range kinds {
		name := "event." + k.String()
		if got := snap.Counters[name]; got != uint64(i+1) {
			t.Fatalf("%s = %d, want %d", name, got, i+1)
		}
	}
}

func TestRecorderCapAndByKind(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		k := EvAlloc
		if i%2 == 1 {
			k = EvFree
		}
		r.Event(Event{Kind: k, Addr: uint64(i)})
	}
	if len(r.Events()) != 3 || r.Dropped() != 2 {
		t.Fatalf("events=%d dropped=%d, want 3/2", len(r.Events()), r.Dropped())
	}
	frees := r.ByKind(EvFree)
	if len(frees) != 1 || frees[0].Addr != 1 {
		t.Fatalf("ByKind(EvFree) = %+v", frees)
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Event(Event{Kind: EvAlloc, Addr: 16, Size: 32})
	s.Event(Event{Kind: EvViolation, Detail: "use-after-free"})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != EvViolation || e.Detail != "use-after-free" {
		t.Fatalf("decoded %+v", e)
	}
}

// fixedClock returns a clock that advances stepMicros per call.
func fixedClock(stepMicros int64) func() time.Duration {
	var n int64
	return func() time.Duration {
		n++
		return time.Duration(n*stepMicros) * time.Microsecond
	}
}

// TestTracerChromeFormat pins the trace output under a deterministic
// clock: a valid JSON array whose events carry the Chrome trace-event
// required fields.
func TestTracerChromeFormat(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.SetClock(fixedClock(100))

	sp := tr.Begin("parse", "pipeline")
	sp.End()
	sp.End() // idempotent: must not emit twice
	var nilSpan *Span
	nilSpan.End() // must not panic
	tr.Instant("mark", "test", map[string]string{"k": "v"})
	tr.Event(Event{Kind: EvAlloc})                                           // ignored: not a violation
	tr.Event(Event{Kind: EvViolation, Addr: 0x10, Detail: "use-after-free"}) // instant marker
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	tr.Instant("late", "test", nil) // dropped after Close

	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(events) != 3 {
		t.Fatalf("%d events, want 3: %s", len(events), buf.String())
	}
	span := events[0]
	if span["name"] != "parse" || span["cat"] != "pipeline" || span["ph"] != "X" {
		t.Fatalf("span = %v", span)
	}
	if span["ts"] != float64(100) || span["dur"] != float64(100) {
		t.Fatalf("span timing = ts %v dur %v", span["ts"], span["dur"])
	}
	for _, e := range events {
		for _, field := range []string{"name", "cat", "ph", "ts", "pid", "tid"} {
			if _, ok := e[field]; !ok {
				t.Fatalf("event %v missing required field %q", e, field)
			}
		}
	}
	viol := events[2]
	if viol["ph"] != "i" || viol["name"] != "violation:use-after-free" {
		t.Fatalf("violation event = %v", viol)
	}
	args, ok := viol["args"].(map[string]any)
	if !ok || args["addr"] != "0x10" {
		t.Fatalf("violation args = %v", viol["args"])
	}
}

// TestTelemetryWithTracer: a tracer attached via WithTracer receives
// violation events from the bus.
func TestTelemetryWithTracer(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.SetClock(fixedClock(1))
	tel := New().WithTracer(tr)
	if tel.Tracer != tr {
		t.Fatal("tracer not installed")
	}
	tel.Emit(Event{Kind: EvFieldHit}) // not traced
	tel.Emit(Event{Kind: EvViolation, Detail: "booby-trap"})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0]["name"] != "violation:booby-trap" {
		t.Fatalf("events = %v", events)
	}
	// The counting sink still saw both.
	snap := tel.Registry.Snapshot()
	if snap.Counters["event.fieldptr-hit"] != 1 || snap.Counters["event.violation"] != 1 {
		t.Fatalf("counters = %v", snap.Counters)
	}
}

func TestInstrLog(t *testing.T) {
	var buf bytes.Buffer
	l := NewInstrLog(&buf, 2)
	l.Emit("main", "entry", "alloc %People")
	l.Emit("main", "entry", "ret")
	l.Emit("main", "entry", "dropped")
	if l.Lines() != 2 {
		t.Fatalf("lines = %d, want 2", l.Lines())
	}
	want := "@main.entry\talloc %People\n@main.entry\tret\n"
	if buf.String() != want {
		t.Fatalf("output %q, want %q", buf.String(), want)
	}
	unlimited := NewInstrLog(&buf, 0)
	for i := 0; i < 10; i++ {
		unlimited.Emit("f", "b", "i")
	}
	if unlimited.Lines() != 10 {
		t.Fatalf("unlimited lines = %d", unlimited.Lines())
	}
}
