package profile

import (
	"encoding/json"
	"fmt"
	"os"
)

// PGO is a hot-site profile in the shape the bytecode compiler's fusion
// selector consumes: dynamic weight (interpreted cycles) per
// "@fn.block" site. It is the persistent, re-loadable distillation of a
// SiteProfiler run — record once with the profiler on, feed back into
// later compiles so superinstruction selection follows measured heat
// instead of the static loop-depth estimate.
type PGO struct {
	// Weights maps "@fn.block" -> interpreted cycles observed there.
	Weights map[string]uint64 `json:"weights"`
}

// ExportPGO distills a profiler's snapshot into a PGO profile. Sites
// with zero cycles are kept: their presence marks the function as
// covered, which tells the fusion selector to trust the profile (cold
// block) rather than fall back to the static estimate.
func (p *SiteProfiler) ExportPGO() *PGO {
	out := &PGO{Weights: make(map[string]uint64)}
	for _, s := range p.Snapshot() {
		out.Weights[s.Site] = s.Cycles
	}
	return out
}

// WritePGOFile writes the profile as JSON. encoding/json sorts map keys,
// so the same profile always serializes byte-identically — the
// PGO-determinism gate depends on that.
func WritePGOFile(path string, p *PGO) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return fmt.Errorf("profile: marshal pgo: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("profile: write pgo: %w", err)
	}
	return nil
}

// ReadPGOFile loads a profile written by WritePGOFile.
func ReadPGOFile(path string) (*PGO, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("profile: read pgo: %w", err)
	}
	var p PGO
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("profile: parse pgo %s: %w", path, err)
	}
	if p.Weights == nil {
		p.Weights = make(map[string]uint64)
	}
	return &p, nil
}
