// Package profile is the continuous-profiling layer: a VM-level
// hot-site profiler that attributes interpreted cycles and
// metadata-table probes to IR instruction sites ("@fn.block"), plus
// thin wrappers over Go's runtime profilers (CPU, allocations) so one
// -profile flag captures both the interpreted program and the
// interpreter itself.
//
// Per-access-path attribution is the point: aggregate counters say the
// offset cache hit 97% of the time, but only a site profile says which
// loop paid for the other 3%. The profiler exports both a human text
// report (Report) and pprof-compatible gzipped protobuf (WritePprof),
// so `go tool pprof` and its whole ecosystem work on interpreted code.
package profile

import (
	"fmt"
	"io"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// SiteCounts accumulates per-site costs. Fields are atomics so one
// profiler may serve concurrent VMs; the single-VM hot path is one
// atomic add per basic-block entry.
type SiteCounts struct {
	site    string
	cycles  atomic.Uint64 // interpreted instructions executed at the site
	getptrs atomic.Uint64 // olr_getptr resolutions issued from the site
	probes  atomic.Uint64 // metadata-table probes (offset-cache misses)
}

// AddCycles charges n interpreted instructions to the site.
func (c *SiteCounts) AddCycles(n uint64) { c.cycles.Add(n) }

// IncGetptr counts one member resolution issued from the site.
func (c *SiteCounts) IncGetptr() { c.getptrs.Add(1) }

// IncProbe counts one metadata-table probe (offset-cache miss) from the
// site.
func (c *SiteCounts) IncProbe() { c.probes.Add(1) }

// SiteSample is one row of a profiler snapshot.
type SiteSample struct {
	Site    string `json:"site"`
	Cycles  uint64 `json:"cycles"`
	Getptrs uint64 `json:"getptrs"`
	Probes  uint64 `json:"probes"`
}

// GenCounts counts layout generations charged to one class. Atomic for
// the same reason as SiteCounts: one profiler may serve concurrent
// runtimes.
type GenCounts struct {
	class string
	gens  atomic.Uint64
}

// Inc counts one layout generation for the class.
func (c *GenCounts) Inc() { c.gens.Add(1) }

// GenSample is one row of the per-class layout-generation snapshot.
type GenSample struct {
	Class string `json:"class"`
	Gens  uint64 `json:"layout_gen"`
}

// SiteProfiler aggregates SiteCounts by instruction site. Callers
// (the VM, the POLaR runtime) resolve a *SiteCounts once per site via
// Site and then count lock-free.
type SiteProfiler struct {
	mu        sync.Mutex
	sites     map[string]*SiteCounts
	classGens map[string]*GenCounts
}

// NewSiteProfiler returns an empty profiler.
func NewSiteProfiler() *SiteProfiler {
	return &SiteProfiler{
		sites:     make(map[string]*SiteCounts),
		classGens: make(map[string]*GenCounts),
	}
}

// Site returns the counter cell for an instruction site ("@fn.block"),
// creating it if needed. Callers should cache the pointer — this method
// takes the profiler lock.
func (p *SiteProfiler) Site(site string) *SiteCounts {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.sites[site]
	if !ok {
		c = &SiteCounts{site: site}
		p.sites[site] = c
	}
	return c
}

// ClassGen returns the layout-generation counter cell for a class,
// creating it if needed. Callers should cache the pointer — this method
// takes the profiler lock.
func (p *SiteProfiler) ClassGen(class string) *GenCounts {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.classGens[class]
	if !ok {
		c = &GenCounts{class: class}
		p.classGens[class] = c
	}
	return c
}

// ClassGens returns the per-class layout-generation counts, most
// generations first; ties break on class name.
func (p *SiteProfiler) ClassGens() []GenSample {
	p.mu.Lock()
	out := make([]GenSample, 0, len(p.classGens))
	for _, c := range p.classGens {
		out = append(out, GenSample{Class: c.class, Gens: c.gens.Load()})
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Gens != out[j].Gens {
			return out[i].Gens > out[j].Gens
		}
		return out[i].Class < out[j].Class
	})
	return out
}

// Snapshot returns every site's counts, hottest (most cycles) first;
// ties break on site name so equal profiles render identically.
func (p *SiteProfiler) Snapshot() []SiteSample {
	p.mu.Lock()
	out := make([]SiteSample, 0, len(p.sites))
	for _, c := range p.sites {
		out = append(out, SiteSample{
			Site: c.site, Cycles: c.cycles.Load(),
			Getptrs: c.getptrs.Load(), Probes: c.probes.Load(),
		})
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].Site < out[j].Site
	})
	return out
}

// Totals sums the counters across all sites.
func (p *SiteProfiler) Totals() (cycles, getptrs, probes uint64) {
	for _, s := range p.Snapshot() {
		cycles += s.Cycles
		getptrs += s.Getptrs
		probes += s.Probes
	}
	return
}

// Report renders the top-N hot sites as a text table: interpreted
// cycles with cumulative percentage, member resolutions and
// metadata-probe counts with the per-site cache-hit rate.
func (p *SiteProfiler) Report(topN int) string {
	samples := p.Snapshot()
	totalCycles, _, _ := p.Totals()
	var b strings.Builder
	fmt.Fprintf(&b, "hot sites (%d total, %d interpreted cycles):\n", len(samples), totalCycles)
	fmt.Fprintf(&b, "  %-32s %12s %6s %6s %10s %10s %7s\n",
		"site", "cycles", "flat%", "cum%", "getptrs", "probes", "hit%")
	if topN <= 0 || topN > len(samples) {
		topN = len(samples)
	}
	cum := uint64(0)
	for _, s := range samples[:topN] {
		cum += s.Cycles
		flat, cumPct := 0.0, 0.0
		if totalCycles > 0 {
			flat = 100 * float64(s.Cycles) / float64(totalCycles)
			cumPct = 100 * float64(cum) / float64(totalCycles)
		}
		hit := "-"
		if s.Getptrs > 0 {
			hit = fmt.Sprintf("%.1f", 100*float64(s.Getptrs-s.Probes)/float64(s.Getptrs))
		}
		fmt.Fprintf(&b, "  %-32s %12d %5.1f%% %5.1f%% %10d %10d %7s\n",
			s.Site, s.Cycles, flat, cumPct, s.Getptrs, s.Probes, hit)
	}
	if gens := p.ClassGens(); len(gens) > 0 {
		fmt.Fprintf(&b, "layout generations by class:\n")
		fmt.Fprintf(&b, "  %-32s %12s\n", "class", "layout_gen")
		for _, g := range gens {
			fmt.Fprintf(&b, "  %-32s %12d\n", g.Class, g.Gens)
		}
	}
	return b.String()
}

// StartCPUProfile begins a Go CPU profile of the host process written
// to w; the returned stop function ends it. This profiles the
// interpreter (and everything around it) at the native level — the
// companion to the VM-level site profile.
func StartCPUProfile(w io.Writer) (stop func(), err error) {
	if err := pprof.StartCPUProfile(w); err != nil {
		return nil, fmt.Errorf("profile: start cpu: %w", err)
	}
	return pprof.StopCPUProfile, nil
}

// WriteAllocProfile writes a Go allocation (heap) profile to w after
// forcing a GC so the numbers reflect live retained memory accurately.
func WriteAllocProfile(w io.Writer) error {
	runtime.GC()
	if err := pprof.Lookup("allocs").WriteTo(w, 0); err != nil {
		return fmt.Errorf("profile: write alloc: %w", err)
	}
	return nil
}
