package profile

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"strings"
	"testing"
)

// fill charges a fixed workload to three sites with distinct heat so
// ordering assertions are unambiguous.
func fill(p *SiteProfiler) {
	hot := p.Site("@main.loop.body")
	hot.AddCycles(800)
	for i := 0; i < 40; i++ {
		hot.IncGetptr()
	}
	for i := 0; i < 10; i++ {
		hot.IncProbe()
	}
	warm := p.Site("@main.entry")
	warm.AddCycles(150)
	warm.IncGetptr()
	cold := p.Site("@helper.entry")
	cold.AddCycles(50)
}

func TestSnapshotOrdering(t *testing.T) {
	p := NewSiteProfiler()
	fill(p)
	// Equal-cycle sites must tie-break on name.
	p.Site("@tie.b").AddCycles(150)
	p.Site("@tie.a").AddCycles(150)

	var sites []string
	for _, s := range p.Snapshot() {
		sites = append(sites, s.Site)
	}
	want := []string{"@main.loop.body", "@main.entry", "@tie.a", "@tie.b", "@helper.entry"}
	if fmt.Sprint(sites) != fmt.Sprint(want) {
		t.Fatalf("snapshot order = %v, want %v", sites, want)
	}
}

func TestSiteReturnsSameCell(t *testing.T) {
	p := NewSiteProfiler()
	a := p.Site("@f.b")
	b := p.Site("@f.b")
	if a != b {
		t.Fatal("Site returned distinct cells for the same site")
	}
	a.AddCycles(3)
	b.AddCycles(4)
	if got := p.Snapshot()[0].Cycles; got != 7 {
		t.Fatalf("cycles = %d, want 7 (both cells alias)", got)
	}
}

func TestTotals(t *testing.T) {
	p := NewSiteProfiler()
	fill(p)
	cycles, getptrs, probes := p.Totals()
	if cycles != 1000 || getptrs != 41 || probes != 10 {
		t.Fatalf("Totals() = %d/%d/%d, want 1000/41/10", cycles, getptrs, probes)
	}
}

func TestReport(t *testing.T) {
	p := NewSiteProfiler()
	fill(p)
	rep := p.Report(2)
	if !strings.Contains(rep, "3 total, 1000 interpreted cycles") {
		t.Errorf("report header missing totals:\n%s", rep)
	}
	if !strings.Contains(rep, "@main.loop.body") || !strings.Contains(rep, "@main.entry") {
		t.Errorf("report missing top-2 sites:\n%s", rep)
	}
	if strings.Contains(rep, "@helper.entry") {
		t.Errorf("report includes site beyond top-2:\n%s", rep)
	}
	// hit% for the hot site: (40-10)/40 = 75.0.
	if !strings.Contains(rep, "75.0") {
		t.Errorf("report missing cache hit rate 75.0:\n%s", rep)
	}
	// topN beyond the site count clamps rather than panics.
	if full := p.Report(100); !strings.Contains(full, "@helper.entry") {
		t.Errorf("Report(100) should include every site:\n%s", full)
	}
}

// TestWritePprofRoundTrip gunzips the emitted profile and walks the
// protobuf with an independent minimal decoder: the string table must
// carry the site names and the sample types, and each sample's packed
// values must match the profiler counters.
func TestWritePprofRoundTrip(t *testing.T) {
	p := NewSiteProfiler()
	fill(p)
	var buf bytes.Buffer
	if err := p.WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatalf("output is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	if len(raw) == 0 {
		t.Fatal("empty profile payload")
	}

	var (
		strTable    []string
		sampleTypes int
		samples     [][]int64
	)
	if err := walkFields(raw, func(field int, wire int, varint uint64, body []byte) error {
		switch field {
		case 1: // sample_type
			sampleTypes++
		case 2: // sample
			var values []int64
			err := walkFields(body, func(f, w int, v uint64, b []byte) error {
				if f == 2 && w == wireBytes { // packed value
					return walkVarints(b, func(u uint64) {
						values = append(values, int64(u))
					})
				}
				return nil
			})
			if err != nil {
				return err
			}
			samples = append(samples, values)
		case 6: // string_table
			strTable = append(strTable, string(body))
		}
		return nil
	}); err != nil {
		t.Fatalf("protobuf walk: %v", err)
	}

	if sampleTypes != 3 {
		t.Errorf("sample_type entries = %d, want 3 (cycles/getptrs/probes)", sampleTypes)
	}
	if len(strTable) == 0 || strTable[0] != "" {
		t.Fatalf("string_table[0] = %q, must be empty string", strTable)
	}
	have := make(map[string]bool, len(strTable))
	for _, s := range strTable {
		have[s] = true
	}
	for _, want := range []string{"cycles", "getptrs", "probes", "@main.loop.body", "@main.entry", "@helper.entry"} {
		if !have[want] {
			t.Errorf("string table missing %q (table: %q)", want, strTable)
		}
	}
	if len(samples) != 3 {
		t.Fatalf("samples = %d, want one per site", len(samples))
	}
	// Snapshot order is deterministic, so sample rows line up with it.
	for i, s := range p.Snapshot() {
		want := []int64{int64(s.Cycles), int64(s.Getptrs), int64(s.Probes)}
		if fmt.Sprint(samples[i]) != fmt.Sprint(want) {
			t.Errorf("sample[%d] values = %v, want %v (%s)", i, samples[i], want, s.Site)
		}
	}
}

func TestWritePprofEmptyProfiler(t *testing.T) {
	var buf bytes.Buffer
	if err := NewSiteProfiler().WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatalf("empty profile is not gzip: %v", err)
	}
	if _, err := io.ReadAll(zr); err != nil {
		t.Fatalf("empty profile body corrupt: %v", err)
	}
}

func TestWriteAllocProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAllocProfile(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := gzip.NewReader(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("alloc profile is not gzipped pprof: %v", err)
	}
}

// walkFields iterates the top-level fields of one protobuf message.
// For varint fields body is nil; for length-delimited fields varint is 0.
func walkFields(b []byte, visit func(field, wire int, varint uint64, body []byte) error) error {
	for len(b) > 0 {
		key, n := readVarint(b)
		if n == 0 {
			return fmt.Errorf("truncated tag")
		}
		b = b[n:]
		field, wire := int(key>>3), int(key&7)
		switch wire {
		case wireVarint:
			v, n := readVarint(b)
			if n == 0 {
				return fmt.Errorf("truncated varint in field %d", field)
			}
			b = b[n:]
			if err := visit(field, wire, v, nil); err != nil {
				return err
			}
		case wireBytes:
			l, n := readVarint(b)
			if n == 0 || uint64(len(b)-n) < l {
				return fmt.Errorf("truncated bytes in field %d", field)
			}
			if err := visit(field, wire, 0, b[n:n+int(l)]); err != nil {
				return err
			}
			b = b[n+int(l):]
		default:
			return fmt.Errorf("unexpected wire type %d for field %d", wire, field)
		}
	}
	return nil
}

func walkVarints(b []byte, visit func(uint64)) error {
	for len(b) > 0 {
		v, n := readVarint(b)
		if n == 0 {
			return fmt.Errorf("truncated packed varint")
		}
		visit(v)
		b = b[n:]
	}
	return nil
}

func readVarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i]&0x80 == 0 {
			return v, i + 1
		}
	}
	return 0, 0
}
