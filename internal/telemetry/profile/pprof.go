package profile

import (
	"compress/gzip"
	"fmt"
	"io"
	"time"
)

// WritePprof encodes the site profile as gzipped pprof protobuf
// (https://github.com/google/pprof/blob/main/proto/profile.proto) so
// `go tool pprof` can open it. Each IR site becomes one function +
// location with a single-frame sample carrying three values:
// [cycles, getptrs, probes]; "cycles" is the default sample type.
//
// The encoder below is a hand-rolled subset of protobuf (varint,
// length-delimited submessages, packed repeated scalars) — the pprof
// wire format is small and fixed, and the repository is stdlib-only by
// design, so depending on a protobuf library for five message types
// would be all cost.
func (p *SiteProfiler) WritePprof(w io.Writer) error {
	samples := p.Snapshot()

	// String table: index 0 must be "".
	strs := []string{""}
	idx := map[string]int64{"": 0}
	intern := func(s string) int64 {
		if i, ok := idx[s]; ok {
			return i
		}
		i := int64(len(strs))
		strs = append(strs, s)
		idx[s] = i
		return i
	}
	cyclesStr := intern("cycles")
	countStr := intern("count")
	getptrStr := intern("getptrs")
	probesStr := intern("probes")
	fileStr := intern("polar-ir")

	var prof msg
	// sample_type = 1: cycles/count, getptrs/count, probes/count.
	for _, typ := range []int64{cyclesStr, getptrStr, probesStr} {
		var vt msg
		vt.int64Field(1, typ)
		vt.int64Field(2, countStr)
		prof.subMsg(1, &vt)
	}
	for i, s := range samples {
		id := uint64(i + 1)
		nameStr := intern(s.Site)

		var fn msg
		fn.uint64Field(1, id)     // id
		fn.int64Field(2, nameStr) // name
		fn.int64Field(3, nameStr) // system_name
		fn.int64Field(4, fileStr) // filename
		prof.subMsg(5, &fn)       // function = 5

		var line msg
		line.uint64Field(1, id) // function_id
		var loc msg
		loc.uint64Field(1, id) // id
		loc.subMsg(4, &line)   // line = 4
		prof.subMsg(4, &loc)   // location = 4

		var sm msg
		sm.packedUint64(1, []uint64{id}) // location_id
		sm.packedInt64(2, []int64{int64(s.Cycles), int64(s.Getptrs), int64(s.Probes)})
		prof.subMsg(2, &sm) // sample = 2
	}
	for _, s := range strs {
		prof.stringField(6, s) // string_table = 6
	}
	prof.int64Field(9, time.Now().UnixNano()) // time_nanos
	var period msg
	period.int64Field(1, cyclesStr)
	period.int64Field(2, countStr)
	prof.subMsg(11, &period)       // period_type = 11
	prof.int64Field(12, 1)         // period = 12
	prof.int64Field(14, cyclesStr) // default_sample_type = 14

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(prof.buf); err != nil {
		return fmt.Errorf("profile: write pprof: %w", err)
	}
	if err := gz.Close(); err != nil {
		return fmt.Errorf("profile: close pprof stream: %w", err)
	}
	return nil
}

// msg accumulates one protobuf message.
type msg struct {
	buf []byte
}

const (
	wireVarint = 0
	wireBytes  = 2
)

func (m *msg) tag(field, wire int) {
	m.varint(uint64(field)<<3 | uint64(wire))
}

func (m *msg) varint(v uint64) {
	for v >= 0x80 {
		m.buf = append(m.buf, byte(v)|0x80)
		v >>= 7
	}
	m.buf = append(m.buf, byte(v))
}

func (m *msg) uint64Field(field int, v uint64) {
	if v == 0 {
		return
	}
	m.tag(field, wireVarint)
	m.varint(v)
}

func (m *msg) int64Field(field int, v int64) {
	if v == 0 {
		return
	}
	m.tag(field, wireVarint)
	m.varint(uint64(v))
}

func (m *msg) stringField(field int, s string) {
	// Zero-length strings are still emitted: string_table[0] must be ""
	// and present so indices stay aligned.
	m.tag(field, wireBytes)
	m.varint(uint64(len(s)))
	m.buf = append(m.buf, s...)
}

func (m *msg) subMsg(field int, sub *msg) {
	m.tag(field, wireBytes)
	m.varint(uint64(len(sub.buf)))
	m.buf = append(m.buf, sub.buf...)
}

func (m *msg) packedUint64(field int, vs []uint64) {
	var body msg
	for _, v := range vs {
		body.varint(v)
	}
	m.tag(field, wireBytes)
	m.varint(uint64(len(body.buf)))
	m.buf = append(m.buf, body.buf...)
}

func (m *msg) packedInt64(field int, vs []int64) {
	var body msg
	for _, v := range vs {
		body.varint(uint64(v))
	}
	m.tag(field, wireBytes)
	m.varint(uint64(len(body.buf)))
	m.buf = append(m.buf, body.buf...)
}
