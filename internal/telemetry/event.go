package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// EventKind enumerates the typed events the stack emits.
type EventKind uint8

// Event kinds. The taxonomy follows the runtime operations the paper's
// evaluation accounts for (Table III, §V.B, §V.C) plus the analysis
// front end.
const (
	// EvAlloc: an object was allocated (VM raw allocs and olr_malloc).
	EvAlloc EventKind = iota + 1
	// EvFree: an object was freed.
	EvFree
	// EvFieldHit: olr_getptr resolved through the offset cache.
	EvFieldHit
	// EvFieldMiss: olr_getptr took the metadata slow path.
	EvFieldMiss
	// EvMemcpyRerand: olr_memcpy gave a duplicate a fresh layout (§IV.A.2).
	EvMemcpyRerand
	// EvLayoutGen: a randomized layout was generated.
	EvLayoutGen
	// EvViolation: the runtime detected an attack symptom.
	EvViolation
	// EvTaintUnion: tainted bytes landed in a tracked object (a taint
	// label union into object state).
	EvTaintUnion
	// EvCorpusAdd: the fuzzer kept an input that found new coverage.
	EvCorpusAdd
	// EvFuelCheckpoint: a VM run boundary; Size carries the remaining
	// fuel, Detail distinguishes "run-start" from "run-end". The flight
	// recorder uses these to delimit call windows in forensic dumps.
	EvFuelCheckpoint

	// maxEventKind is the highest defined kind; keep it in sync when
	// adding kinds above.
	maxEventKind = EvFuelCheckpoint
)

// AllEventKinds returns every defined kind in declaration order. New
// kinds are picked up automatically by callers that enumerate (the
// counting sink, the events endpoint's name table).
func AllEventKinds() []EventKind {
	kinds := make([]EventKind, 0, int(maxEventKind))
	for k := EvAlloc; k <= maxEventKind; k++ {
		kinds = append(kinds, k)
	}
	return kinds
}

// String implements fmt.Stringer; the names double as the counter
// suffixes CountingSink uses ("event.<kind>").
func (k EventKind) String() string {
	switch k {
	case EvAlloc:
		return "alloc"
	case EvFree:
		return "free"
	case EvFieldHit:
		return "fieldptr-hit"
	case EvFieldMiss:
		return "fieldptr-miss"
	case EvMemcpyRerand:
		return "memcpy-rerand"
	case EvLayoutGen:
		return "layout-gen"
	case EvViolation:
		return "violation"
	case EvTaintUnion:
		return "taint-union"
	case EvCorpusAdd:
		return "corpus-add"
	case EvFuelCheckpoint:
		return "fuel-checkpoint"
	default:
		return "?"
	}
}

// Event is one observation. Fields are a union over kinds; unused
// fields are zero. No pointers — an Event never retains program state.
type Event struct {
	Kind EventKind `json:"kind"`
	// Addr is the object base (alloc/free/violation) or the written
	// address (taint-union).
	Addr uint64 `json:"addr,omitempty"`
	// Size in bytes: allocation size, copy length, input length.
	Size int `json:"size,omitempty"`
	// Class is the CIE class hash involved.
	Class uint64 `json:"class,omitempty"`
	// Layout is the layout identity hash (dedup key).
	Layout uint64 `json:"layout,omitempty"`
	// Field is the member index (fieldptr events; -1 when n/a).
	Field int `json:"field,omitempty"`
	// Label is the taint label bitmask (taint-union).
	Label uint64 `json:"label,omitempty"`
	// Site is the instruction site "@fn.block" that triggered the event,
	// when known.
	Site string `json:"site,omitempty"`
	// Detail is a kind-specific tag: the violation kind name, the class
	// name for VM-level allocs, "seed"/"mutant" for corpus adds.
	Detail string `json:"detail,omitempty"`
}

// Sink consumes events. Implementations must be safe for concurrent
// use when the Telemetry is shared across VMs.
type Sink interface {
	Event(e Event)
}

// Bus fans events out to its sinks. A nil *Bus is a valid no-op, but
// hot paths should guard with a nil check on the owning *Telemetry so
// the Event is never constructed when telemetry is disabled — that is
// the "one branch" cost contract benchmarked in BenchmarkTelemetryOverhead.
type Bus struct {
	mu    sync.Mutex
	sinks []Sink
}

// NewBus returns a bus over the given sinks.
func NewBus(sinks ...Sink) *Bus {
	b := &Bus{}
	for _, s := range sinks {
		if s != nil {
			b.sinks = append(b.sinks, s)
		}
	}
	return b
}

// Attach subscribes an additional sink.
func (b *Bus) Attach(s Sink) {
	if s == nil {
		return
	}
	b.mu.Lock()
	b.sinks = append(b.sinks, s)
	b.mu.Unlock()
}

// Detach unsubscribes a sink previously passed to Attach (identity
// comparison). Transient subscribers — the live event-stream endpoint
// attaches one sink per HTTP client — must detach on disconnect or the
// bus would deliver into dead streams forever. The sink list is
// copy-on-write so a concurrent Emit keeps its own snapshot.
func (b *Bus) Detach(s Sink) {
	if b == nil || s == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, have := range b.sinks {
		if have == s {
			b.sinks = append(append([]Sink(nil), b.sinks[:i]...), b.sinks[i+1:]...)
			return
		}
	}
}

// Emit delivers e to every sink. Safe on a nil bus.
func (b *Bus) Emit(e Event) {
	if b == nil {
		return
	}
	b.mu.Lock()
	sinks := b.sinks
	b.mu.Unlock()
	for _, s := range sinks {
		s.Event(e)
	}
}

// FuncSink adapts a function to the Sink interface.
type FuncSink func(Event)

// Event implements Sink.
func (f FuncSink) Event(e Event) { f(e) }

// countingSink tallies events by kind into a registry.
type countingSink struct {
	reg *Registry
	// counters caches the per-kind counter pointers so steady-state
	// counting takes no map lookups or locks.
	counters [maxEventKind + 1]*Counter
}

// CountingSink returns a sink that increments reg's "event.<kind>"
// counter for every event.
func CountingSink(reg *Registry) Sink {
	s := &countingSink{reg: reg}
	for _, k := range AllEventKinds() {
		s.counters[k] = reg.Counter("event." + k.String())
	}
	return s
}

// Event implements Sink.
func (s *countingSink) Event(e Event) {
	if int(e.Kind) < len(s.counters) && s.counters[e.Kind] != nil {
		s.counters[e.Kind].Inc()
	}
}

// Recorder retains events for inspection (tests, violation forensics).
// Retention is capped; Dropped counts what fell off the end.
type Recorder struct {
	mu      sync.Mutex
	cap     int
	events  []Event
	dropped int
}

// NewRecorder returns a recorder keeping at most cap events (0 means
// a generous default of 4096).
func NewRecorder(cap int) *Recorder {
	if cap <= 0 {
		cap = 4096
	}
	return &Recorder{cap: cap}
}

// Event implements Sink.
func (r *Recorder) Event(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.events) >= r.cap {
		r.dropped++
		return
	}
	r.events = append(r.events, e)
}

// Events returns a copy of the retained events.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// ByKind returns the retained events of one kind.
func (r *Recorder) ByKind(k EventKind) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, e := range r.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Dropped reports how many events exceeded the retention cap.
func (r *Recorder) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// JSONLSink streams every event as one JSON object per line — the
// event-log analogue of the tracer's timeline (useful for offline
// analysis of violation records).
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONLSink returns a sink writing JSONL to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Event implements Sink. Encoding errors are deliberately swallowed:
// observability must never fail the observed program.
func (s *JSONLSink) Event(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.enc.Encode(e)
}
