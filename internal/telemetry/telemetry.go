// Package telemetry is the unified observability layer of the POLaR
// reproduction: a typed event bus, a metrics registry and a span
// tracer, threaded through the VM, the POLaR runtime, the heap, the
// taint engine, the fuzzer and the instrumentation pass.
//
// The paper's whole evaluation (Table III cache-hit counts, the Fig. 6
// overhead shape, the §V.C violation rates) is driven by runtime
// counters; this package gives those counters one home instead of three
// ad-hoc Stats structs, and adds what the structs could not express:
// histograms (offset-cache probe length, allocation-size distribution,
// layout entropy), structured violation events, and phase spans for the
// parse → CIE → instrument → run → eval pipeline.
//
// Design rules:
//
//   - Zero dependencies beyond the standard library.
//   - Disabled telemetry costs one branch: subsystems hold a *Telemetry
//     that is nil by default and guard every emission with a nil check,
//     so no Event is even constructed when observability is off.
//   - Deterministic output: registry snapshots encode with sorted keys,
//     so two runs with the same seed produce byte-identical JSON.
//   - Concurrency-safe: counters, gauges and histogram buckets are
//     atomics; the registry, recorder and tracer are mutex-protected.
//     One Telemetry may serve many VMs.
package telemetry

// Telemetry bundles the three facilities a subsystem may use. Bus and
// Registry are always non-nil on a value built by New; Tracer is
// optional (nil unless span tracing was requested).
type Telemetry struct {
	Bus      *Bus
	Registry *Registry
	Tracer   *Tracer
}

// New returns a Telemetry with a fresh registry and an event bus wired
// to count every event kind into the registry (counter "event.<kind>").
func New() *Telemetry {
	reg := NewRegistry()
	bus := NewBus(CountingSink(reg))
	return &Telemetry{Bus: bus, Registry: reg}
}

// WithTracer attaches tr and subscribes it to the bus so violation
// events appear as instant events on the trace timeline. It returns t
// for chaining.
func (t *Telemetry) WithTracer(tr *Tracer) *Telemetry {
	t.Tracer = tr
	if tr != nil {
		t.Bus.Attach(tr)
	}
	return t
}

// Emit forwards to the bus; safe on a nil receiver so call sites can
// collapse the guard and the emission when the Event is cheap to build.
// Hot paths should still guard with `if tel != nil` before constructing
// the Event.
func (t *Telemetry) Emit(e Event) {
	if t == nil {
		return
	}
	t.Bus.Emit(e)
}

// Canonical metric names. Subsystems register these so dashboards and
// tests have one vocabulary; see DESIGN.md "Observability".
const (
	// Histograms.
	MetricHeapAllocSize  = "heap.alloc_size_bytes"       // allocation-size distribution
	MetricCacheProbeLen  = "core.offset_cache_probe_len" // member-resolution probe length
	MetricLayoutEntropy  = "core.layout_entropy_bits"    // entropy of each generated layout
	MetricInternChainLen = "core.layout_intern_chain"    // dedup-bucket scan length

	// Gauges.
	MetricMetaLoadFactor = "core.metadata_load_factor" // live records / total records
)

// Standard fixed bucket bounds (upper-inclusive; an implicit +Inf
// bucket catches the rest).
var (
	// AllocSizeBuckets mirrors the heap's size classes.
	AllocSizeBuckets = []float64{16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 1024, 2048, 4096, 8192, 16384, 32768}
	// ProbeLenBuckets is the canonical vocabulary for the
	// member-resolution probe-length histogram — every observation the
	// core runtime makes lands in exactly one of these documented
	// buckets (asserted by TestProbeBucketsCanonical in internal/core):
	//   0 = stateless keyed derivation — no metadata structure probed,
	//   1 = offset-cache hit,
	//   2 = cache miss + metadata-table hit,
	//   3 = metadata miss (or stateless fallback) + static-table arm,
	//   4+ = degenerate paths, reserved.
	ProbeLenBuckets = []float64{0, 1, 2, 3, 4}
	// EntropyBuckets covers the bit range of Fig. 2-scale classes.
	EntropyBuckets = []float64{0, 2, 4, 6, 8, 10, 12, 16, 20, 24, 32}
	// ChainLenBuckets for dedup-bucket scans.
	ChainLenBuckets = []float64{0, 1, 2, 4, 8, 16}
)
