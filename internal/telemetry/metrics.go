package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. Safe for concurrent
// use; Set exists only for snapshot-publishing external counters.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Set overwrites the value. Intended for publishing a snapshot of a
// counter maintained elsewhere (vm.Stats, heap.Stats); metric sources
// that increment through the registry never call it.
func (c *Counter) Set(n uint64) { c.v.Store(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative-count-free histogram: counts[i]
// tallies observations v <= Bounds[i]; counts[len(Bounds)] is the
// overflow bucket. Buckets are fixed at creation — no resizing, no
// allocation on Observe.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket lists are short (<= ~16) and the scan is
	// branch-predictable; a binary search costs more below ~32 bounds.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the running sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Snapshot captures the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.Count(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Registry holds named counters, gauges and histograms. Get-or-create
// accessors make wiring order-independent: the first caller of a name
// defines it, later callers share it.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it if
// needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds if needed. The first registration
// fixes the buckets; later calls ignore bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Merge folds src's metrics into r: counters add (commutative, so any
// merge order yields the same totals), gauges take src's value (last
// writer wins — gauges are instantaneous, not additive), histograms add
// bucket-wise when the bounds match and are adopted wholesale when r
// has no histogram of that name. Merging a histogram whose bounds
// disagree with an existing one returns an error rather than silently
// mixing incomparable buckets.
//
// This is how per-worker registries fold into one deterministic
// snapshot after a parallel run: each worker records into a private
// registry, and the coordinator merges them in worker order.
func (r *Registry) Merge(src Snapshot) error {
	for name, v := range src.Counters {
		r.Counter(name).Add(v)
	}
	for name, v := range src.Gauges {
		r.Gauge(name).Set(v)
	}
	for name, hs := range src.Histograms {
		h := r.Histogram(name, hs.Bounds)
		if len(h.bounds) != len(hs.Bounds) {
			return fmt.Errorf("telemetry: merge histogram %q: bounds mismatch (%d vs %d)", name, len(h.bounds), len(hs.Bounds))
		}
		for i, b := range h.bounds {
			if b != hs.Bounds[i] {
				return fmt.Errorf("telemetry: merge histogram %q: bounds mismatch at %d (%g vs %g)", name, i, b, hs.Bounds[i])
			}
		}
		if len(hs.Counts) != len(h.counts) {
			return fmt.Errorf("telemetry: merge histogram %q: %d counts for %d buckets", name, len(hs.Counts), len(h.counts))
		}
		for i, n := range hs.Counts {
			h.counts[i].Add(n)
		}
		h.count.Add(hs.Count)
		for {
			old := h.sum.Load()
			new := math.Float64bits(math.Float64frombits(old) + hs.Sum)
			if h.sum.CompareAndSwap(old, new) {
				break
			}
		}
	}
	return nil
}

// HistogramSnapshot is the serialized form of one histogram.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"` // len(bounds)+1; last is overflow
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot is a point-in-time copy of a registry. encoding/json sorts
// map keys, so marshaling a Snapshot is deterministic: equal registry
// states produce byte-identical JSON.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// EncodeJSON renders the snapshot as indented, deterministic JSON.
func (s Snapshot) EncodeJSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// DecodeSnapshot parses JSON produced by EncodeJSON (the round-trip
// tests and external consumers use it).
func DecodeSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("telemetry: decode snapshot: %w", err)
	}
	return s, nil
}
