package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestRegistryMerge(t *testing.T) {
	dst := NewRegistry()
	dst.Counter("runs").Add(3)
	dst.Gauge("ratio").Set(0.25)
	h := dst.Histogram("lat", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)

	src := NewRegistry()
	src.Counter("runs").Add(2)
	src.Counter("new").Inc()
	src.Gauge("ratio").Set(0.75)
	sh := src.Histogram("lat", []float64{1, 10})
	sh.Observe(50)

	if err := dst.Merge(src.Snapshot()); err != nil {
		t.Fatal(err)
	}
	snap := dst.Snapshot()
	if snap.Counters["runs"] != 5 {
		t.Errorf("runs = %d, want 5 (counters add)", snap.Counters["runs"])
	}
	if snap.Counters["new"] != 1 {
		t.Errorf("new = %d, want 1 (missing counters created)", snap.Counters["new"])
	}
	if snap.Gauges["ratio"] != 0.75 {
		t.Errorf("ratio = %v, want 0.75 (gauges take the merged value)", snap.Gauges["ratio"])
	}
	hs := snap.Histograms["lat"]
	if hs.Count != 3 || hs.Sum != 55.5 {
		t.Errorf("lat count=%d sum=%v, want 3/55.5", hs.Count, hs.Sum)
	}
	if hs.Counts[0] != 1 || hs.Counts[1] != 1 || hs.Counts[2] != 1 {
		t.Errorf("lat buckets = %v, want one observation per bucket", hs.Counts)
	}
}

func TestRegistryMergeBoundsMismatch(t *testing.T) {
	dst := NewRegistry()
	dst.Histogram("lat", []float64{1, 10}).Observe(2)
	src := NewRegistry()
	src.Histogram("lat", []float64{1, 100}).Observe(2)
	if err := dst.Merge(src.Snapshot()); err == nil {
		t.Fatal("merging histograms with different bounds must fail")
	}
}

// TestRegistryMergeOrderDeterminism is the property the parallel
// harness relies on: per-worker registries merged in task order yield
// the same snapshot regardless of how the work was scheduled.
func TestRegistryMergeOrderDeterminism(t *testing.T) {
	build := func(seedOrder []int) Snapshot {
		workers := make([]*Registry, len(seedOrder))
		var wg sync.WaitGroup
		for i, seed := range seedOrder {
			wg.Add(1)
			go func(i, seed int) {
				defer wg.Done()
				r := NewRegistry()
				r.Counter("ops").Add(uint64(seed) * 10)
				r.Histogram("v", []float64{5}).Observe(float64(seed))
				workers[i] = r
			}(i, seed)
		}
		wg.Wait()
		// Merge in index order, never completion order.
		dst := NewRegistry()
		for _, w := range workers {
			if err := dst.Merge(w.Snapshot()); err != nil {
				t.Fatal(err)
			}
		}
		return dst.Snapshot()
	}
	a := build([]int{1, 2, 3, 4})
	b := build([]int{1, 2, 3, 4})
	if a.Counters["ops"] != b.Counters["ops"] || a.Histograms["v"].Count != b.Histograms["v"].Count ||
		math.Float64bits(a.Histograms["v"].Sum) != math.Float64bits(b.Histograms["v"].Sum) {
		t.Fatalf("merged snapshots differ across runs: %+v vs %+v", a, b)
	}
}
