package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestRegistryMerge(t *testing.T) {
	dst := NewRegistry()
	dst.Counter("runs").Add(3)
	dst.Gauge("ratio").Set(0.25)
	h := dst.Histogram("lat", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)

	src := NewRegistry()
	src.Counter("runs").Add(2)
	src.Counter("new").Inc()
	src.Gauge("ratio").Set(0.75)
	sh := src.Histogram("lat", []float64{1, 10})
	sh.Observe(50)

	if err := dst.Merge(src.Snapshot()); err != nil {
		t.Fatal(err)
	}
	snap := dst.Snapshot()
	if snap.Counters["runs"] != 5 {
		t.Errorf("runs = %d, want 5 (counters add)", snap.Counters["runs"])
	}
	if snap.Counters["new"] != 1 {
		t.Errorf("new = %d, want 1 (missing counters created)", snap.Counters["new"])
	}
	if snap.Gauges["ratio"] != 0.75 {
		t.Errorf("ratio = %v, want 0.75 (gauges take the merged value)", snap.Gauges["ratio"])
	}
	hs := snap.Histograms["lat"]
	if hs.Count != 3 || hs.Sum != 55.5 {
		t.Errorf("lat count=%d sum=%v, want 3/55.5", hs.Count, hs.Sum)
	}
	if hs.Counts[0] != 1 || hs.Counts[1] != 1 || hs.Counts[2] != 1 {
		t.Errorf("lat buckets = %v, want one observation per bucket", hs.Counts)
	}
}

func TestRegistryMergeBoundsMismatch(t *testing.T) {
	dst := NewRegistry()
	dst.Histogram("lat", []float64{1, 10}).Observe(2)
	src := NewRegistry()
	src.Histogram("lat", []float64{1, 100}).Observe(2)
	if err := dst.Merge(src.Snapshot()); err == nil {
		t.Fatal("merging histograms with different bounds must fail")
	}
}

// TestRegistryMergeUnderConcurrentPublish: the coordinator may fold
// worker snapshots into the shared registry while live subsystems are
// still publishing into it (the introspection endpoint snapshots on
// every request). Merge and Publish-style writes must not race or lose
// updates.
func TestRegistryMergeUnderConcurrentPublish(t *testing.T) {
	dst := NewRegistry()
	const publishers, rounds, sources = 4, 200, 8

	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			// The same shape Stats.Publish uses: Set on counters and
			// gauges, Observe on histograms.
			c := dst.Counter("pub.allocs")
			g := dst.Gauge("pub.live")
			h := dst.Histogram("pub.lat", []float64{1, 10})
			for i := 1; i <= rounds; i++ {
				c.Set(uint64(i))
				g.Set(float64(i))
				h.Observe(float64(i % 20))
				// Interleave snapshots, as the HTTP endpoint would.
				_ = dst.Snapshot()
			}
		}(p)
	}
	mergeErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for s := 0; s < sources; s++ {
			src := NewRegistry()
			src.Counter("merged.runs").Add(1)
			src.Histogram("merged.v", []float64{5}).Observe(float64(s))
			if err := dst.Merge(src.Snapshot()); err != nil {
				select {
				case mergeErr <- err:
				default:
				}
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-mergeErr:
		t.Fatal(err)
	default:
	}

	snap := dst.Snapshot()
	if snap.Counters["merged.runs"] != sources {
		t.Errorf("merged.runs = %d, want %d (merge lost updates under concurrent publish)",
			snap.Counters["merged.runs"], sources)
	}
	if snap.Histograms["merged.v"].Count != sources {
		t.Errorf("merged.v count = %d, want %d", snap.Histograms["merged.v"].Count, sources)
	}
	if snap.Counters["pub.allocs"] != rounds {
		t.Errorf("pub.allocs = %d, want %d (publishers Set the final value)", snap.Counters["pub.allocs"], rounds)
	}
	if snap.Histograms["pub.lat"].Count != publishers*rounds {
		t.Errorf("pub.lat count = %d, want %d", snap.Histograms["pub.lat"].Count, publishers*rounds)
	}
}

// TestRegistryMergeOrderDeterminism is the property the parallel
// harness relies on: per-worker registries merged in task order yield
// the same snapshot regardless of how the work was scheduled.
func TestRegistryMergeOrderDeterminism(t *testing.T) {
	build := func(seedOrder []int) Snapshot {
		workers := make([]*Registry, len(seedOrder))
		var wg sync.WaitGroup
		for i, seed := range seedOrder {
			wg.Add(1)
			go func(i, seed int) {
				defer wg.Done()
				r := NewRegistry()
				r.Counter("ops").Add(uint64(seed) * 10)
				r.Histogram("v", []float64{5}).Observe(float64(seed))
				workers[i] = r
			}(i, seed)
		}
		wg.Wait()
		// Merge in index order, never completion order.
		dst := NewRegistry()
		for _, w := range workers {
			if err := dst.Merge(w.Snapshot()); err != nil {
				t.Fatal(err)
			}
		}
		return dst.Snapshot()
	}
	a := build([]int{1, 2, 3, 4})
	b := build([]int{1, 2, 3, 4})
	if a.Counters["ops"] != b.Counters["ops"] || a.Histograms["v"].Count != b.Histograms["v"].Count ||
		math.Float64bits(a.Histograms["v"].Sum) != math.Float64bits(b.Histograms["v"].Sum) {
		t.Fatalf("merged snapshots differ across runs: %+v vs %+v", a, b)
	}
}
