package flight_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"polar"
	"polar/internal/exploit"
	"polar/internal/ir"
	"polar/internal/telemetry/flight"
	"polar/internal/telemetry/health"
)

var update = flag.Bool("update", false, "rewrite the committed forensic-dump goldens")

// goldenSeed pins the layout randomization for the golden dumps; any
// seed works, the goldens just have to agree with it.
const goldenSeed = 42

// replay executes one committed case-study program (the .ir artifact,
// not the builder — the dump must derive from what CI ships) under the
// hardened runtime with a flight recorder and health monitor attached,
// and closes the run with an end-of-run capture so even the
// detection-evading scenarios (info-leak, use-before-init) produce a
// forensic artifact.
func replay(t *testing.T, cs exploit.CaseStudy) (*flight.Recorder, *health.Monitor, *polar.Result) {
	t.Helper()
	m := cs.Build()
	src, err := os.ReadFile(filepath.Join("..", "..", "..", "examples", "casestudies", m.Name+".ir"))
	if err != nil {
		t.Fatalf("%s: committed IR missing: %v", cs.Name, err)
	}
	mod, err := polar.Parse(string(src))
	if err != nil {
		t.Fatalf("%s: parse: %v", cs.Name, err)
	}
	h, err := polar.Harden(mod, []string{"Victim", "Attacker"})
	if err != nil {
		t.Fatalf("%s: harden: %v", cs.Name, err)
	}
	tel := polar.NewTelemetry()
	rec := polar.NewFlightRecorder(0)
	hm := health.NewMonitor(nil)
	hm.AttachOnce(tel.Bus)
	res, err := polar.RunHardened(h,
		polar.WithSeed(goldenSeed),
		polar.WithWarnPolicy(),
		polar.WithTelemetry(tel),
		polar.WithFlightRecorder(rec),
		polar.WithArgs(cs.AttackArgs...),
	)
	if err != nil {
		t.Fatalf("%s: run: %v", cs.Name, err)
	}
	rec.CaptureFinal()
	return rec, hm, res
}

// TestGoldenDumps replays every committed case study and diffs the
// flight recorder's full forensic report against a committed golden.
// Regenerate with: go test ./internal/telemetry/flight -run Golden -update
func TestGoldenDumps(t *testing.T) {
	for _, cs := range exploit.CaseStudies() {
		cs := cs
		t.Run(cs.Name, func(t *testing.T) {
			rec, _, _ := replay(t, cs)
			got, err := rec.Encode()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", cs.Name+".golden.json")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("forensic dump drifted from %s; regenerate with -update\ngot:\n%s", path, got)
			}
		})
	}
}

// TestGoldenDumpsDeterministic: same seed, same program, byte-identical
// report — the property that makes committed goldens meaningful.
func TestGoldenDumpsDeterministic(t *testing.T) {
	for _, cs := range exploit.CaseStudies() {
		cs := cs
		t.Run(cs.Name, func(t *testing.T) {
			recA, _, _ := replay(t, cs)
			recB, _, _ := replay(t, cs)
			a, err := recA.Encode()
			if err != nil {
				t.Fatal(err)
			}
			b, err := recB.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatal("two identically-seeded replays encode different reports")
			}
		})
	}
}

// TestDumpsNameTheAttack: every violation dump must identify the victim
// class, the offending site and the layout generation — the triage
// facts a security engineer needs first.
func TestDumpsNameTheAttack(t *testing.T) {
	// The scenarios the runtime detects (info-leak and use-before-init
	// evade detection by design and only get end-of-run dumps).
	detected := map[string]bool{
		"use-after-free": true,
		"type-confusion": true,
		"heap-overflow":  true,
		"offset-probe":   true,
	}
	for _, cs := range exploit.CaseStudies() {
		cs := cs
		t.Run(cs.Name, func(t *testing.T) {
			rec, _, _ := replay(t, cs)
			dumps := rec.Dumps()
			if len(dumps) == 0 {
				t.Fatal("no dumps captured (CaptureFinal should guarantee at least one)")
			}
			if !detected[cs.Name] {
				return
			}
			var viol *flight.Dump
			for _, d := range dumps {
				if d.Violation != nil {
					viol = d
					break
				}
			}
			if viol == nil {
				t.Fatal("detected scenario produced no violation dump")
			}
			if !strings.Contains(viol.Violation.Class, "Victim") && viol.Violation.Class != "Attacker" {
				t.Errorf("violation names class %q, want the victim or confused class", viol.Violation.Class)
			}
			if viol.Violation.Site == "" {
				t.Error("violation dump has no offending site")
			}
			if viol.Violation.LayoutID == 0 {
				t.Error("violation dump has no layout generation")
			}
			if len(viol.Window) == 0 {
				t.Error("violation dump has an empty event window")
			}
		})
	}
}

// TestScanDetectorFlagsProbe: the offset-probe case study must drive
// the health monitor to CRITICAL with the scan-alert reason, while the
// single-guess attacks and a benign workload must not.
func TestScanDetectorFlagsProbe(t *testing.T) {
	for _, cs := range exploit.CaseStudies() {
		cs := cs
		t.Run(cs.Name, func(t *testing.T) {
			_, hm, _ := replay(t, cs)
			rep := hm.Report()
			scan := false
			for _, c := range rep.Classes {
				if c.ScanAlert {
					scan = true
				}
			}
			if cs.Name == "offset-probe" {
				if !scan || hm.Status() != health.StatusCritical {
					t.Errorf("offset probe: status=%v scan=%v, want CRITICAL with scan alert (reasons: %v)",
						rep.Status, scan, rep.Reasons)
				}
			} else if scan {
				t.Errorf("scan alert latched on %s (reasons: %v) — detector too eager", cs.Name, rep.Reasons)
			}
		})
	}
}

// TestBenignWorkloadStaysOK: a healthy hardened program must report OK
// — zero false positives from either detector.
func TestBenignWorkloadStaysOK(t *testing.T) {
	m := ir.NewModule("benign")
	node := m.MustStruct(ir.NewStruct("Node",
		ir.Field{Name: "val", Type: ir.I64},
		ir.Field{Name: "next", Type: ir.I64},
	))
	b := ir.NewFunc(m, "main", ir.I64, ir.Param{Name: "n", Type: ir.I64})
	n := b.ParamReg(0)
	sum := ir.Value(ir.Const(0))
	for i := 0; i < 8; i++ {
		p := b.Alloc(node)
		vp := b.FieldPtrName(node, p, "val")
		b.Store(ir.I64, b.Bin(ir.BinAdd, n, ir.Const(int64(i))), vp)
		sum = b.Bin(ir.BinAdd, sum, b.Load(ir.I64, vp))
		b.Free(p)
	}
	b.Ret(sum)

	h, err := polar.Harden(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	tel := polar.NewTelemetry()
	hm := health.NewMonitor(nil)
	hm.AttachOnce(tel.Bus)
	res, err := polar.RunHardened(h,
		polar.WithSeed(goldenSeed), polar.WithTelemetry(tel), polar.WithArgs(10))
	if err != nil {
		t.Fatal(err)
	}
	want := int64(8*10 + (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7))
	if res.Value != want {
		t.Fatalf("benign program computed %d, want %d", res.Value, want)
	}
	rep := hm.Report()
	if hm.Status() != health.StatusOK {
		t.Errorf("benign workload health = %v (reasons %v), want OK", rep.Status, rep.Reasons)
	}
}
