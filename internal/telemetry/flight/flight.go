// Package flight implements the security flight recorder: a fixed-size
// ring buffer of recent runtime events that can be snapshotted into a
// deterministic forensic dump when the POLaR runtime detects a
// violation (or on demand at end of run).
//
// The paper's evaluation counts detections; an operator responding to
// one needs the story — which object was hit, what its allocation and
// layout-generation history was, what sat next to it on the heap, and
// what the program was doing in the moments before. Heelan et al.
// (arXiv 1804.08470) frame heap exploitation as a search problem, so
// the interesting defender-side signal is a *sequence* of events, not
// a counter tick; the ring buffer preserves exactly that sequence.
//
// Design rules follow the telemetry package: standard library only,
// deterministic output under fixed seeds (events carry sequence
// numbers, never wall-clock timestamps), and cost proportional to
// events only when attached — an unattached recorder costs nothing.
package flight

import (
	"encoding/json"
	"sync"

	"polar/internal/telemetry"
)

// Default capacities. The ring is deliberately small: forensics wants
// the recent window, not the full history (that is what JSONLSink and
// the tracer are for).
const (
	DefaultRingCap = 256
	maxDumps       = 16
)

// RecordedEvent is one bus event plus its global sequence number (the
// recorder's own monotonic count, which substitutes for a timestamp so
// dumps stay byte-identical across runs with the same seed).
type RecordedEvent struct {
	Seq uint64 `json:"seq"`
	telemetry.Event
}

// Violation mirrors the runtime's structured violation record. The
// flight recorder defines its own type so the core runtime can depend
// on this package without a cycle.
type Violation struct {
	Kind      string `json:"kind"`
	Addr      uint64 `json:"addr"`
	Class     string `json:"class"`
	ClassHash uint64 `json:"class_hash"`
	LayoutID  uint64 `json:"layout_id"`
	Field     int    `json:"field"`
	Site      string `json:"site,omitempty"`
}

// Neighbor is one address-adjacent heap chunk in the victim's
// neighborhood, annotated with object metadata when the runtime tracks
// the chunk.
type Neighbor struct {
	Base     uint64 `json:"base"`
	Size     int    `json:"size"`
	Live     bool   `json:"live"`
	Class    string `json:"class,omitempty"`
	LayoutID uint64 `json:"layout_id,omitempty"`
	Freed    bool   `json:"freed,omitempty"`
	// Victim marks the chunk the violation hit.
	Victim bool `json:"victim,omitempty"`
}

// Dump is one forensic snapshot: the offending access, the victim's
// event timeline, its heap neighborhood, and the trailing event window
// that led up to the detection.
type Dump struct {
	// Reason is "violation" or "end-of-run".
	Reason string `json:"reason"`
	// Violation is the offending access (nil for end-of-run dumps).
	Violation *Violation `json:"violation,omitempty"`
	// VictimBase is the base address of the object the violation hit
	// (0 when unknown).
	VictimBase uint64 `json:"victim_base,omitempty"`
	// VictimTimeline is the subset of the window involving the victim:
	// its allocations, layout generations, member resolutions, frees and
	// violations, in sequence order.
	VictimTimeline []RecordedEvent `json:"victim_timeline,omitempty"`
	// Neighborhood lists address-adjacent chunks around the victim.
	Neighborhood []Neighbor `json:"neighborhood,omitempty"`
	// Window is the full retained event window, oldest first.
	Window []RecordedEvent `json:"window"`
	// EventsSeen counts every event the recorder observed up to the
	// capture; EventsDropped says how many had already fallen off the
	// ring (window completeness indicator).
	EventsSeen    uint64 `json:"events_seen"`
	EventsDropped uint64 `json:"events_dropped"`
}

// Recorder is the per-VM flight recorder. It implements telemetry.Sink;
// attach it to the bus (AttachOnce) and hand it to the runtime so the
// violation path can capture dumps. Safe for concurrent use.
type Recorder struct {
	mu       sync.Mutex
	cap      int
	ring     []RecordedEvent // grows to cap, then wraps
	next     int             // write index once len(ring) == cap
	seq      uint64          // events seen
	dumps    []*Dump
	dropped  int // dumps beyond maxDumps
	attached bool
}

// NewRecorder returns a recorder retaining the last cap events
// (<= 0 means DefaultRingCap).
func NewRecorder(cap int) *Recorder {
	if cap <= 0 {
		cap = DefaultRingCap
	}
	return &Recorder{cap: cap, ring: make([]RecordedEvent, 0, cap)}
}

// AttachOnce subscribes the recorder to the bus exactly once; repeated
// calls (one per run when a recorder outlives a Prepared program's
// runs) are no-ops.
func (r *Recorder) AttachOnce(bus *telemetry.Bus) {
	if bus == nil {
		return
	}
	r.mu.Lock()
	already := r.attached
	r.attached = true
	r.mu.Unlock()
	if !already {
		bus.Attach(r)
	}
}

// Event implements telemetry.Sink.
func (r *Recorder) Event(e telemetry.Event) {
	r.mu.Lock()
	r.seq++
	re := RecordedEvent{Seq: r.seq, Event: e}
	if len(r.ring) < r.cap {
		r.ring = append(r.ring, re)
	} else {
		r.ring[r.next] = re
		r.next = (r.next + 1) % r.cap
	}
	r.mu.Unlock()
}

// window returns the retained events oldest-first. Caller holds r.mu.
func (r *Recorder) window() []RecordedEvent {
	if len(r.ring) < r.cap {
		return append([]RecordedEvent(nil), r.ring...)
	}
	out := make([]RecordedEvent, 0, r.cap)
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// EventsSeen returns the total number of events observed.
func (r *Recorder) EventsSeen() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Window returns a copy of the retained events, oldest first.
func (r *Recorder) Window() []RecordedEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.window()
}

// Publish snapshots the recorder's loss/occupancy state into a metrics
// registry, for the OpenMetrics exposition: "flight.dropped" counts
// events that have fallen off the ring (total seen minus retained),
// "flight.dumps_dropped" counts forensic dumps discarded past the dump
// cap, and the "flight.ring_occupancy" gauge is the retained fraction
// of capacity (1.0 = full window).
func (r *Recorder) Publish(reg *telemetry.Registry) {
	if r == nil || reg == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	reg.Counter("flight.dropped").Set(r.seq - uint64(len(r.ring)))
	reg.Counter("flight.dumps_dropped").Set(uint64(r.dropped))
	reg.Gauge("flight.ring_occupancy").Set(float64(len(r.ring)) / float64(r.cap))
}

// victimTimeline extracts the events involving the victim object from
// the window: events addressed at its base, plus layout-generation
// events for any layout those events carry (layout generation precedes
// allocation and has no address yet).
func victimTimeline(window []RecordedEvent, base uint64) []RecordedEvent {
	if base == 0 {
		return nil
	}
	layouts := make(map[uint64]bool)
	for _, re := range window {
		if re.Addr == base && re.Layout != 0 {
			layouts[re.Layout] = true
		}
	}
	var out []RecordedEvent
	for _, re := range window {
		switch {
		case re.Addr == base:
			out = append(out, re)
		case re.Kind == telemetry.EvLayoutGen && layouts[re.Layout]:
			out = append(out, re)
		}
	}
	return out
}

// CaptureViolation snapshots the ring into a forensic dump for one
// detected violation. victimBase is the base address of the object hit
// (0 if unknown); neighbors is its heap neighborhood, as resolved by
// the runtime. The dump is retained (up to maxDumps) and returned.
func (r *Recorder) CaptureViolation(v Violation, victimBase uint64, neighbors []Neighbor) *Dump {
	r.mu.Lock()
	defer r.mu.Unlock()
	window := r.window()
	d := &Dump{
		Reason:         "violation",
		Violation:      &v,
		VictimBase:     victimBase,
		VictimTimeline: victimTimeline(window, victimBase),
		Neighborhood:   neighbors,
		Window:         window,
		EventsSeen:     r.seq,
		EventsDropped:  r.seq - uint64(len(window)),
	}
	r.keep(d)
	return d
}

// CaptureFinal snapshots the current window without a violation — the
// end-of-run dump for scenarios that evade runtime detection (the
// paper's honest negative results: an info leak through untracked
// loads touches no booby trap and consults no metadata, so no
// violation ever fires, yet the event window still tells the story).
func (r *Recorder) CaptureFinal() *Dump {
	r.mu.Lock()
	defer r.mu.Unlock()
	window := r.window()
	d := &Dump{
		Reason:        "end-of-run",
		Window:        window,
		EventsSeen:    r.seq,
		EventsDropped: r.seq - uint64(len(window)),
	}
	r.keep(d)
	return d
}

// keep retains d up to maxDumps. Caller holds r.mu.
func (r *Recorder) keep(d *Dump) {
	if len(r.dumps) < maxDumps {
		r.dumps = append(r.dumps, d)
	} else {
		r.dropped++
	}
}

// Dumps returns the retained dumps in capture order.
func (r *Recorder) Dumps() []*Dump {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Dump(nil), r.dumps...)
}

// DroppedDumps reports how many captures exceeded the retention cap.
func (r *Recorder) DroppedDumps() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Reset clears the ring and the retained dumps (the attachment state is
// kept — the recorder stays subscribed to its bus).
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ring = r.ring[:0]
	r.next = 0
	r.seq = 0
	r.dumps = nil
	r.dropped = 0
}

// Report is the serialized form of a recorder's retained dumps.
type Report struct {
	Schema       string  `json:"schema"`
	Dumps        []*Dump `json:"dumps"`
	DumpsDropped int     `json:"dumps_dropped"`
}

// SchemaVersion identifies the dump format for external consumers.
const SchemaVersion = "polar-flight-dump/v1"

// Encode renders every retained dump as deterministic indented JSON:
// field order is fixed by the struct definitions and all identifiers
// are seeds-and-sequence derived, so two runs with the same seed
// produce byte-identical output.
func (r *Recorder) Encode() ([]byte, error) {
	r.mu.Lock()
	rep := Report{Schema: SchemaVersion, Dumps: append([]*Dump(nil), r.dumps...), DumpsDropped: r.dropped}
	r.mu.Unlock()
	if rep.Dumps == nil {
		rep.Dumps = []*Dump{}
	}
	return json.MarshalIndent(rep, "", "  ")
}
