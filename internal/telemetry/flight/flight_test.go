package flight

import (
	"bytes"
	"testing"

	"polar/internal/telemetry"
)

func TestRingWraparound(t *testing.T) {
	r := NewRecorder(4)
	for i := 1; i <= 10; i++ {
		r.Event(telemetry.Event{Kind: telemetry.EvAlloc, Addr: uint64(i)})
	}
	if got := r.EventsSeen(); got != 10 {
		t.Fatalf("EventsSeen = %d, want 10", got)
	}
	w := r.Window()
	if len(w) != 4 {
		t.Fatalf("window length = %d, want 4", len(w))
	}
	for i, re := range w {
		wantSeq := uint64(7 + i)
		if re.Seq != wantSeq || re.Addr != wantSeq {
			t.Errorf("window[%d] = seq %d addr %d, want seq/addr %d", i, re.Seq, re.Addr, wantSeq)
		}
	}
	d := r.CaptureFinal()
	if d.EventsSeen != 10 || d.EventsDropped != 6 {
		t.Errorf("dump seen/dropped = %d/%d, want 10/6", d.EventsSeen, d.EventsDropped)
	}
}

func TestCaptureViolationTimeline(t *testing.T) {
	r := NewRecorder(16)
	// Victim at 0x100 with layout 0xAA; a bystander at 0x200.
	r.Event(telemetry.Event{Kind: telemetry.EvLayoutGen, Class: 1, Layout: 0xAA})
	r.Event(telemetry.Event{Kind: telemetry.EvAlloc, Addr: 0x100, Class: 1, Layout: 0xAA, Detail: "Victim"})
	r.Event(telemetry.Event{Kind: telemetry.EvAlloc, Addr: 0x200, Class: 2, Layout: 0xBB})
	r.Event(telemetry.Event{Kind: telemetry.EvFree, Addr: 0x100, Class: 1, Layout: 0xAA})
	r.Event(telemetry.Event{Kind: telemetry.EvViolation, Addr: 0x100, Class: 1, Layout: 0xAA, Detail: "use-after-free"})
	d := r.CaptureViolation(
		Violation{Kind: "use-after-free", Addr: 0x100, Class: "Victim", ClassHash: 1, LayoutID: 0xAA, Field: 2},
		0x100,
		[]Neighbor{{Base: 0x100, Size: 64, Live: false, Class: "Victim", Victim: true}},
	)
	if len(d.Window) != 5 {
		t.Fatalf("window length = %d, want 5", len(d.Window))
	}
	// Timeline: layout-gen (matching layout), alloc, free, violation — not
	// the bystander alloc.
	if len(d.VictimTimeline) != 4 {
		t.Fatalf("victim timeline length = %d, want 4: %+v", len(d.VictimTimeline), d.VictimTimeline)
	}
	if d.VictimTimeline[0].Kind != telemetry.EvLayoutGen {
		t.Errorf("timeline[0] kind = %v, want layout-gen", d.VictimTimeline[0].Kind)
	}
	for _, re := range d.VictimTimeline[1:] {
		if re.Addr != 0x100 {
			t.Errorf("timeline event at addr %#x, want 0x100", re.Addr)
		}
	}
	if got := r.Dumps(); len(got) != 1 || got[0] != d {
		t.Errorf("Dumps() = %v, want the one capture", got)
	}
}

func TestAttachOnce(t *testing.T) {
	r := NewRecorder(8)
	bus := telemetry.NewBus()
	r.AttachOnce(bus)
	r.AttachOnce(bus)
	bus.Emit(telemetry.Event{Kind: telemetry.EvAlloc})
	if got := r.EventsSeen(); got != 1 {
		t.Fatalf("EventsSeen = %d after double attach, want 1 (attached twice?)", got)
	}
}

func TestDumpCap(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < maxDumps+3; i++ {
		r.CaptureFinal()
	}
	if len(r.Dumps()) != maxDumps {
		t.Errorf("retained %d dumps, want %d", len(r.Dumps()), maxDumps)
	}
	if r.DroppedDumps() != 3 {
		t.Errorf("dropped = %d, want 3", r.DroppedDumps())
	}
}

func TestEncodeDeterministic(t *testing.T) {
	build := func() *Recorder {
		r := NewRecorder(8)
		for i := 1; i <= 12; i++ {
			r.Event(telemetry.Event{Kind: telemetry.EvAlloc, Addr: uint64(i), Class: 7})
		}
		r.CaptureViolation(Violation{Kind: "booby-trap", Addr: 5, Class: "V", Field: -1}, 5, nil)
		return r
	}
	a, err := build().Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := build().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two identical recorders encode differently")
	}
}

func TestResetClears(t *testing.T) {
	r := NewRecorder(4)
	r.Event(telemetry.Event{Kind: telemetry.EvAlloc})
	r.CaptureFinal()
	r.Reset()
	if r.EventsSeen() != 0 || len(r.Window()) != 0 || len(r.Dumps()) != 0 {
		t.Fatal("Reset did not clear state")
	}
}
