package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// OpenMetrics exposition of a registry snapshot. The renderer targets
// the subset of the OpenMetrics 1.0 text format that Prometheus'
// promtool accepts: one `# TYPE` line per family, counters with a
// `_total` sample suffix, gauges as bare samples, histograms as
// cumulative `_bucket{le="..."}` series plus `_sum`/`_count`, and a
// terminal `# EOF`. Families are emitted in sorted name order and
// float formatting is locale-independent, so output is deterministic:
// equal snapshots render byte-identically.

// openMetricsName maps a registry name ("core.meta.load_factor",
// "heap.alloc_size_bytes") onto a legal metric name: every character
// outside [a-zA-Z0-9_] becomes '_' and the whole name gains a
// "polar_" namespace prefix.
func openMetricsName(name string) string {
	var b strings.Builder
	b.WriteString("polar_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// openMetricsFloat renders a float64 sample value. OpenMetrics floats
// must not be locale-dependent and must spell infinities as +Inf/-Inf.
func openMetricsFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return fmt.Sprintf("%g", v)
}

// WriteOpenMetrics renders the snapshot in OpenMetrics text format.
func (s Snapshot) WriteOpenMetrics(w io.Writer) error {
	// Sanitization can collide distinct registry names ("a.b" and
	// "a_b"); last-sorted wins within a family map, which keeps output
	// deterministic even then.
	type counterSample struct {
		name string
		v    uint64
	}
	counters := make(map[string]counterSample, len(s.Counters))
	for name, v := range s.Counters {
		counters[openMetricsName(name)] = counterSample{name, v}
	}
	gauges := make(map[string]float64, len(s.Gauges))
	for name, v := range s.Gauges {
		gauges[openMetricsName(name)] = v
	}
	hists := make(map[string]HistogramSnapshot, len(s.Histograms))
	for name, h := range s.Histograms {
		hists[openMetricsName(name)] = h
	}

	var names []string
	for n := range counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s_total %d\n", n, n, counters[n].v); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, openMetricsFloat(gauges[n])); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := hists[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		// Registry buckets count v <= bounds[i] per bucket; OpenMetrics
		// buckets are cumulative.
		var cum uint64
		for i, bound := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", n, openMetricsFloat(bound), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", n, openMetricsFloat(h.Sum), n, h.Count); err != nil {
			return err
		}
	}

	_, err := fmt.Fprint(w, "# EOF\n")
	return err
}
