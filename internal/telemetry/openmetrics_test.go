package telemetry

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// populateRegistry builds a registry exercising all three metric
// families, including names needing sanitization.
func populateRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("core.allocs").Add(42)
	reg.Counter("event.fieldptr-hit").Add(7)
	reg.Gauge("core.metadata_load_factor").Set(0.75)
	reg.Gauge("security.repeat.polar.identical_rate").Set(0)
	h := reg.Histogram(MetricCacheProbeLen, ProbeLenBuckets)
	for _, v := range []float64{1, 1, 1, 2, 3, 9} {
		h.Observe(v)
	}
	return reg
}

var (
	typeLine   = regexp.MustCompile(`^# TYPE ([a-zA-Z_][a-zA-Z0-9_]*) (counter|gauge|histogram)$`)
	sampleLine = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)(\{le="[^"]+"\})? (-?[0-9.eE+-]+|\+Inf|-Inf|NaN)$`)
)

// validateOpenMetrics is a promtool-shaped format checker with no
// external dependency: every line must be a TYPE line, a sample of an
// already-declared family, or the terminal EOF; histogram buckets must
// be cumulative (monotone nondecreasing) and end with le="+Inf".
func validateOpenMetrics(t *testing.T, text string) {
	t.Helper()
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) == 0 || lines[len(lines)-1] != "# EOF" {
		t.Fatalf("exposition must end with '# EOF', got %q", lines[len(lines)-1])
	}
	families := make(map[string]string) // name -> type
	lastBucket := make(map[string]uint64)
	sawInf := make(map[string]bool)
	for i, line := range lines[:len(lines)-1] {
		if m := typeLine.FindStringSubmatch(line); m != nil {
			if _, dup := families[m[1]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", i+1, m[1])
			}
			families[m[1]] = m[2]
			continue
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: not a valid TYPE or sample line: %q", i+1, line)
		}
		name, label, value := m[1], m[2], m[3]
		base := name
		for _, suffix := range []string{"_total", "_bucket", "_sum", "_count"} {
			if s, ok := strings.CutSuffix(name, suffix); ok {
				base = s
				break
			}
		}
		typ, ok := families[base]
		if !ok {
			// Gauges sample under the bare family name.
			typ, ok = families[name]
			base = name
		}
		if !ok {
			t.Fatalf("line %d: sample %q before its TYPE line", i+1, name)
		}
		switch typ {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				t.Fatalf("line %d: counter sample %q lacks _total suffix", i+1, name)
			}
		case "histogram":
			if strings.HasSuffix(name, "_bucket") {
				if label == "" {
					t.Fatalf("line %d: bucket sample without le label", i+1)
				}
				n, err := strconv.ParseUint(value, 10, 64)
				if err != nil {
					t.Fatalf("line %d: bucket count %q not an integer", i+1, value)
				}
				if n < lastBucket[base] {
					t.Fatalf("line %d: bucket counts not cumulative for %s", i+1, base)
				}
				lastBucket[base] = n
				if label == `{le="+Inf"}` {
					sawInf[base] = true
				}
			}
		}
		if typ != "histogram" && label != "" {
			t.Fatalf("line %d: unexpected label on %s sample", i+1, typ)
		}
	}
	for name, typ := range families {
		if typ == "histogram" && !sawInf[name] {
			t.Fatalf("histogram %s has no +Inf bucket", name)
		}
	}
}

func TestWriteOpenMetricsFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := populateRegistry().Snapshot().WriteOpenMetrics(&buf); err != nil {
		t.Fatalf("WriteOpenMetrics: %v", err)
	}
	text := buf.String()
	validateOpenMetrics(t, text)

	for _, want := range []string{
		"polar_core_allocs_total 42",
		"polar_event_fieldptr_hit_total 7",
		"polar_core_metadata_load_factor 0.75",
		`polar_core_offset_cache_probe_len_bucket{le="1"} 3`,
		`polar_core_offset_cache_probe_len_bucket{le="+Inf"} 6`,
		"polar_core_offset_cache_probe_len_count 6",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
}

func TestWriteOpenMetricsDeterministic(t *testing.T) {
	snap := populateRegistry().Snapshot()
	var a, b bytes.Buffer
	if err := snap.WriteOpenMetrics(&a); err != nil {
		t.Fatal(err)
	}
	if err := snap.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two renders of the same snapshot differ")
	}
}
