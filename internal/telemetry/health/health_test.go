package health

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"testing"

	"polar/internal/telemetry"
)

// The default thresholds, as ints for loop bounds: the tests exercise
// the monitor at its default configuration.
var (
	defaults           = DefaultConfig()
	recomputeEvery     = int(defaults.RecomputeEvery)
	depletionMinAllocs = int(defaults.DepletionMinAllocs)
	depletionMinLive   = int(defaults.DepletionMinLive)
)

func alloc(m *Monitor, class, layout uint64, name string) {
	m.Event(telemetry.Event{Kind: telemetry.EvAlloc, Class: class, Layout: layout, Detail: name})
}

func free(m *Monitor, class, layout uint64) {
	m.Event(telemetry.Event{Kind: telemetry.EvFree, Class: class, Layout: layout})
}

func violate(m *Monitor, class uint64, field int) {
	m.Event(telemetry.Event{Kind: telemetry.EvViolation, Class: class, Field: field})
}

func TestScanDetectorDistinctOffsets(t *testing.T) {
	m := NewMonitor(nil)
	alloc(m, 1, 0xA, "Victim")
	violate(m, 1, 0)
	violate(m, 1, 1)
	if m.Status() != StatusDegraded {
		t.Fatalf("after 2 distinct-offset violations status = %v, want DEGRADED (not yet a scan)", m.Status())
	}
	violate(m, 1, 2)
	if m.Status() != StatusCritical {
		t.Fatalf("after 3 distinct-offset violations status = %v, want CRITICAL", m.Status())
	}
	rep := m.Report()
	if len(rep.Classes) != 1 || !rep.Classes[0].ScanAlert {
		t.Fatalf("scan alert not reported: %+v", rep.Classes)
	}
	if got := rep.Classes[0].ProbedOffsets; len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("probed offsets = %v, want [0 1 2]", got)
	}
}

func TestScanDetectorIgnoresRepeatedOffset(t *testing.T) {
	m := NewMonitor(nil)
	alloc(m, 1, 0xA, "Victim")
	// A benign recurring bug: many violations, all at one offset.
	for i := 0; i < 10; i++ {
		violate(m, 1, 2)
	}
	if m.Status() != StatusDegraded {
		t.Fatalf("status = %v, want DEGRADED (violations present, but no scan)", m.Status())
	}
	for _, c := range m.Report().Classes {
		if c.ScanAlert {
			t.Fatal("scan alert latched on a single-offset violation stream")
		}
	}
}

func TestScanAlertLatches(t *testing.T) {
	m := NewMonitor(nil)
	violate(m, 1, 0)
	violate(m, 1, 1)
	violate(m, 1, 2)
	if m.Status() != StatusCritical {
		t.Fatal("scan alert did not fire")
	}
	// Later benign traffic must not clear it.
	for i := 0; i < 2*recomputeEvery; i++ {
		alloc(m, 2, uint64(1000+i), "Bystander")
	}
	if m.Status() != StatusCritical {
		t.Fatal("scan alert un-latched after benign traffic")
	}
}

func TestEntropyDepletion(t *testing.T) {
	m := NewMonitor(nil)
	// A diverse class: every allocation gets its own layout.
	for i := 0; i < depletionMinAllocs; i++ {
		alloc(m, 1, uint64(0x100+i), "Diverse")
	}
	if m.Status() != StatusOK {
		t.Fatalf("diverse class status = %v, want OK", m.Status())
	}
	// A depleted class: many live objects on two layouts.
	for i := 0; i < depletionMinAllocs; i++ {
		alloc(m, 2, uint64(0xA+i%2), "Depleted")
	}
	if m.Status() != StatusDegraded {
		t.Fatalf("depleted class status = %v, want DEGRADED (reasons %v)", m.Status(), m.Report().Reasons)
	}
	rep := m.Report()
	var dep *ClassReport
	for i := range rep.Classes {
		if rep.Classes[i].Class == "Depleted" {
			dep = &rep.Classes[i]
		}
	}
	if dep == nil {
		t.Fatal("Depleted class missing from report")
	}
	if dep.DistinctLiveLayouts != 2 || dep.EffectiveEntropyBits != 1 {
		t.Errorf("depleted class live-layouts=%d entropy=%v, want 2 layouts / 1.0 bits",
			dep.DistinctLiveLayouts, dep.EffectiveEntropyBits)
	}
}

func TestEntropyRecoversOnFree(t *testing.T) {
	m := NewMonitor(nil)
	for i := 0; i < depletionMinAllocs; i++ {
		alloc(m, 1, uint64(0xA+i%2), "C")
	}
	if m.Status() != StatusDegraded {
		t.Fatal("setup: depletion did not trigger")
	}
	// Free enough that the live population drops below the floor.
	for i := 0; i < depletionMinAllocs-depletionMinLive+1; i++ {
		free(m, 1, uint64(0xA+i%2))
	}
	if m.Status() != StatusOK {
		t.Fatalf("after frees status = %v, want OK (live population below detector floor)", m.Status())
	}
}

func TestCacheHitRate(t *testing.T) {
	m := NewMonitor(nil)
	for i := 0; i < 3; i++ {
		m.Event(telemetry.Event{Kind: telemetry.EvFieldHit})
	}
	m.Event(telemetry.Event{Kind: telemetry.EvFieldMiss})
	rep := m.Report()
	if rep.CacheHits != 3 || rep.CacheMisses != 1 || rep.CacheHitRate != 0.75 {
		t.Errorf("cache hits/misses/rate = %d/%d/%v, want 3/1/0.75",
			rep.CacheHits, rep.CacheMisses, rep.CacheHitRate)
	}
}

func TestReportDeterministic(t *testing.T) {
	build := func() []byte {
		m := NewMonitor(nil)
		alloc(m, 7, 0x1, "B")
		alloc(m, 3, 0x2, "A")
		violate(m, 7, 1)
		violate(m, 3, 0)
		b, err := json.Marshal(m.Report())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := build(), build(); !bytes.Equal(a, b) {
		t.Fatalf("reports differ:\n%s\n%s", a, b)
	}
}

func TestSlogTransitions(t *testing.T) {
	var buf bytes.Buffer
	m := NewMonitor(slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{
		// Strip time so the assertion is deterministic.
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey {
				return slog.Attr{}
			}
			return a
		},
	})))
	violate(m, 1, 0) // OK -> DEGRADED
	violate(m, 1, 1)
	violate(m, 1, 2) // DEGRADED -> CRITICAL
	out := buf.String()
	if !bytes.Contains([]byte(out), []byte(`"to":"DEGRADED"`)) ||
		!bytes.Contains([]byte(out), []byte(`"to":"CRITICAL"`)) {
		t.Fatalf("missing transition records in slog output:\n%s", out)
	}
}

func TestAttachOnce(t *testing.T) {
	m := NewMonitor(nil)
	bus := telemetry.NewBus()
	m.AttachOnce(bus)
	m.AttachOnce(bus)
	bus.Emit(telemetry.Event{Kind: telemetry.EvAlloc, Class: 1, Layout: 2})
	if rep := m.Report(); len(rep.Classes) != 1 || rep.Classes[0].Allocs != 1 {
		t.Fatalf("double attach double-counted: %+v", rep.Classes)
	}
}

func TestConfigurableThresholds(t *testing.T) {
	// A stricter scan detector: 5 violations across 5 distinct offsets.
	m := NewMonitorWith(Config{ScanMinViolations: 5, ScanMinOffsets: 5}, nil)
	alloc(m, 1, 0xA, "Victim")
	for f := 0; f < 4; f++ {
		violate(m, 1, f)
	}
	if m.Status() != StatusDegraded {
		t.Fatalf("4 probes under a 5/5 threshold = %v, want DEGRADED (violations only)", m.Status())
	}
	violate(m, 1, 4)
	if m.Status() != StatusCritical {
		t.Fatalf("5 probes under a 5/5 threshold = %v, want CRITICAL", m.Status())
	}
	// Zero-valued fields fall back to the defaults.
	if got := NewMonitorWith(Config{}, nil).Config(); got != DefaultConfig() {
		t.Fatalf("zero config sanitized to %+v, want defaults", got)
	}
}
