// Package health derives a live health verdict from the telemetry
// event stream: per-class effective layout entropy, cache hit rates,
// and two anomaly detectors aimed at the attacker behaviours the paper
// argues POLaR forces (§III, §VII).
//
//   - Offset-probe scan: per-allocation randomization turns member
//     offsets into secrets, so an attacker reduced to guessing (the
//     heap-layout-as-search-problem framing of Heelan et al.,
//     arXiv 1804.08470) produces a burst of violations at *distinct*
//     member offsets within one class. Benign bugs repeat one offset;
//     a scan walks many.
//   - Entropy depletion: a class whose live objects collapse onto very
//     few distinct layouts has lost the diversity the defense depends
//     on (spray pressure, tiny classes, or a misconfigured generator).
//
// The monitor is a bus sink like any other: attach it and every verdict
// derives deterministically from the event sequence — same seed, same
// report. Off by default; costs nothing unless attached.
package health

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"sync"

	"polar/internal/telemetry"
)

// Status is the overall health verdict.
type Status int

// Verdicts, ordered by severity.
const (
	StatusOK Status = iota
	StatusDegraded
	StatusCritical
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusDegraded:
		return "DEGRADED"
	case StatusCritical:
		return "CRITICAL"
	default:
		return "?"
	}
}

// Config carries the detector thresholds. The zero value of any field
// selects the corresponding default, so a partially filled Config is
// always usable; deployments facing noisier workloads raise the
// thresholds (polarun -health-scan-violations etc.) instead of
// patching constants.
type Config struct {
	// ScanMinOffsets / ScanMinViolations: a class must accumulate this
	// many violations touching this many distinct member offsets before
	// the offset-probe-scan alert latches. Three distinct offsets is
	// already well past what a single recurring bug produces.
	ScanMinOffsets    int
	ScanMinViolations uint64
	// DepletionMinAllocs / DepletionMinLive / DepletionMaxLayouts: a
	// class with a real allocation history whose live population sits on
	// almost no distinct layouts has lost its diversity.
	DepletionMinAllocs  uint64
	DepletionMinLive    uint64
	DepletionMaxLayouts int
	// RecomputeEvery bounds how stale the cached verdict can get between
	// violations (violations always recompute).
	RecomputeEvery uint64
}

// DefaultConfig returns the thresholds the monitor has always used.
func DefaultConfig() Config {
	return Config{
		ScanMinOffsets:      3,
		ScanMinViolations:   3,
		DepletionMinAllocs:  16,
		DepletionMinLive:    8,
		DepletionMaxLayouts: 2,
		RecomputeEvery:      256,
	}
}

// sanitized fills zero fields with their defaults.
func (c Config) sanitized() Config {
	d := DefaultConfig()
	if c.ScanMinOffsets <= 0 {
		c.ScanMinOffsets = d.ScanMinOffsets
	}
	if c.ScanMinViolations == 0 {
		c.ScanMinViolations = d.ScanMinViolations
	}
	if c.DepletionMinAllocs == 0 {
		c.DepletionMinAllocs = d.DepletionMinAllocs
	}
	if c.DepletionMinLive == 0 {
		c.DepletionMinLive = d.DepletionMinLive
	}
	if c.DepletionMaxLayouts <= 0 {
		c.DepletionMaxLayouts = d.DepletionMaxLayouts
	}
	if c.RecomputeEvery == 0 {
		c.RecomputeEvery = d.RecomputeEvery
	}
	return c
}

// classState accumulates per-class observations.
type classState struct {
	name         string
	allocs       uint64
	frees        uint64
	violations   uint64
	liveLayouts  map[uint64]uint64 // layout hash -> live object count
	layoutsSeen  map[uint64]bool   // all-time distinct layouts
	probeOffsets map[int]bool      // distinct member offsets with violations
	scanAlert    bool              // latched
}

// Monitor is the health evaluator. It implements telemetry.Sink.
// Safe for concurrent use.
type Monitor struct {
	mu      sync.Mutex
	cfg     Config
	classes map[uint64]*classState
	// objects maps live object bases to their (class, layout) so a
	// re-randomization event (olr_memcpy adoption or a stateless epoch
	// rekey) can move the object between layout populations — without
	// it, liveLayouts would keep counting the outgoing layout forever.
	objects    map[uint64]objIdentity
	hits       uint64
	misses     uint64
	violations uint64
	events     uint64
	status     Status
	reasons    []string
	log        *slog.Logger
	attached   bool
}

// objIdentity is one live object's current class and layout identity.
type objIdentity struct {
	class  uint64
	layout uint64
}

// NewMonitor returns an idle monitor with the default thresholds. log,
// when non-nil, receives a structured record on every health-status
// transition.
func NewMonitor(log *slog.Logger) *Monitor {
	return NewMonitorWith(DefaultConfig(), log)
}

// NewMonitorWith returns an idle monitor with the given thresholds
// (zero fields fall back to their defaults).
func NewMonitorWith(cfg Config, log *slog.Logger) *Monitor {
	return &Monitor{
		cfg:     cfg.sanitized(),
		classes: make(map[uint64]*classState),
		objects: make(map[uint64]objIdentity),
		log:     log,
	}
}

// Config returns the (sanitized) thresholds the monitor runs with.
func (m *Monitor) Config() Config { return m.cfg }

// AttachOnce subscribes the monitor to the bus exactly once.
func (m *Monitor) AttachOnce(bus *telemetry.Bus) {
	if bus == nil {
		return
	}
	m.mu.Lock()
	already := m.attached
	m.attached = true
	m.mu.Unlock()
	if !already {
		bus.Attach(m)
	}
}

func (m *Monitor) class(hash uint64, name string) *classState {
	cs, ok := m.classes[hash]
	if !ok {
		cs = &classState{
			liveLayouts:  make(map[uint64]uint64),
			layoutsSeen:  make(map[uint64]bool),
			probeOffsets: make(map[int]bool),
		}
		m.classes[hash] = cs
	}
	if cs.name == "" && name != "" {
		cs.name = name
	}
	return cs
}

// Event implements telemetry.Sink.
func (m *Monitor) Event(e telemetry.Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.events++
	switch e.Kind {
	case telemetry.EvAlloc:
		if e.Class == 0 {
			break // VM raw alloc; layout monitoring applies to tracked classes
		}
		cs := m.class(e.Class, e.Detail)
		cs.allocs++
		if e.Layout != 0 {
			cs.liveLayouts[e.Layout]++
			cs.layoutsSeen[e.Layout] = true
			m.objects[e.Addr] = objIdentity{class: e.Class, layout: e.Layout}
		}
	case telemetry.EvFree:
		if e.Class == 0 {
			break
		}
		cs := m.class(e.Class, "")
		cs.frees++
		if e.Layout != 0 && cs.liveLayouts[e.Layout] > 0 {
			if cs.liveLayouts[e.Layout]--; cs.liveLayouts[e.Layout] == 0 {
				delete(cs.liveLayouts, e.Layout)
			}
		}
		delete(m.objects, e.Addr)
	case telemetry.EvMemcpyRerand:
		// The object at e.Addr now lives under a new layout (memcpy
		// adoption of an untracked chunk, or a stateless epoch rekey):
		// retire its previous layout identity and count the new one, so
		// entropy reflects the *effective* layouts, not registration
		// history.
		if e.Class == 0 || e.Layout == 0 {
			break
		}
		if prev, ok := m.objects[e.Addr]; ok && prev.layout != 0 {
			pcs := m.class(prev.class, "")
			if pcs.liveLayouts[prev.layout] > 0 {
				if pcs.liveLayouts[prev.layout]--; pcs.liveLayouts[prev.layout] == 0 {
					delete(pcs.liveLayouts, prev.layout)
				}
			}
		}
		cs := m.class(e.Class, e.Detail)
		cs.liveLayouts[e.Layout]++
		cs.layoutsSeen[e.Layout] = true
		m.objects[e.Addr] = objIdentity{class: e.Class, layout: e.Layout}
	case telemetry.EvFieldHit:
		m.hits++
	case telemetry.EvFieldMiss:
		m.misses++
	case telemetry.EvViolation:
		m.violations++
		if e.Class != 0 {
			cs := m.class(e.Class, "")
			cs.violations++
			if e.Field >= 0 {
				cs.probeOffsets[e.Field] = true
			}
			if !cs.scanAlert && cs.violations >= m.cfg.ScanMinViolations && len(cs.probeOffsets) >= m.cfg.ScanMinOffsets {
				cs.scanAlert = true
			}
		}
		m.recomputeLocked()
		return
	}
	if m.events%m.cfg.RecomputeEvery == 0 {
		m.recomputeLocked()
	}
}

// entropyBits computes the Shannon entropy (bits) of the live layout
// population.
func entropyBits(live map[uint64]uint64) float64 {
	var total float64
	for _, n := range live {
		total += float64(n)
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, n := range live {
		p := float64(n) / total
		h -= p * math.Log2(p)
	}
	return h
}

// sortedHashes returns class hashes ordered by (name, hash) so reports
// and reasons are deterministic.
func (m *Monitor) sortedHashes() []uint64 {
	hashes := make([]uint64, 0, len(m.classes))
	for h := range m.classes {
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool {
		a, b := m.classes[hashes[i]], m.classes[hashes[j]]
		if a.name != b.name {
			return a.name < b.name
		}
		return hashes[i] < hashes[j]
	})
	return hashes
}

func classLabel(hash uint64, cs *classState) string {
	if cs.name != "" {
		return cs.name
	}
	return fmt.Sprintf("hash %#x", hash)
}

// recomputeLocked re-derives the verdict and logs transitions. Caller
// holds m.mu.
func (m *Monitor) recomputeLocked() {
	status := StatusOK
	var reasons []string
	for _, hash := range m.sortedHashes() {
		cs := m.classes[hash]
		if cs.scanAlert {
			status = StatusCritical
			offs := make([]int, 0, len(cs.probeOffsets))
			for o := range cs.probeOffsets {
				offs = append(offs, o)
			}
			sort.Ints(offs)
			reasons = append(reasons, fmt.Sprintf(
				"offset-probe-scan: class %s hit %d violations across %d distinct member offsets %v",
				classLabel(hash, cs), cs.violations, len(offs), offs))
		}
		live := cs.allocs - cs.frees
		if cs.allocs >= m.cfg.DepletionMinAllocs && live >= m.cfg.DepletionMinLive && len(cs.liveLayouts) <= m.cfg.DepletionMaxLayouts {
			if status < StatusDegraded {
				status = StatusDegraded
			}
			reasons = append(reasons, fmt.Sprintf(
				"entropy-depletion: class %s has %d distinct live layouts across %d live objects",
				classLabel(hash, cs), len(cs.liveLayouts), live))
		}
	}
	if m.violations > 0 && status == StatusOK {
		status = StatusDegraded
		reasons = append(reasons, fmt.Sprintf("violations: %d detections recorded", m.violations))
	}
	if status != m.status && m.log != nil {
		m.log.LogAttrs(context.Background(), slog.LevelWarn, "polar health transition",
			slog.String("from", m.status.String()),
			slog.String("to", status.String()),
			slog.Any("reasons", reasons),
		)
	}
	m.status = status
	m.reasons = reasons
}

// ClassReport is the per-class section of a health report.
type ClassReport struct {
	Class                string  `json:"class"`
	ClassHash            uint64  `json:"class_hash"`
	Allocs               uint64  `json:"allocs"`
	Frees                uint64  `json:"frees"`
	Live                 uint64  `json:"live"`
	DistinctLiveLayouts  int     `json:"distinct_live_layouts"`
	DistinctLayoutsSeen  int     `json:"distinct_layouts_seen"`
	EffectiveEntropyBits float64 `json:"effective_entropy_bits"`
	Violations           uint64  `json:"violations"`
	ProbedOffsets        []int   `json:"probed_offsets,omitempty"`
	ScanAlert            bool    `json:"scan_alert,omitempty"`
}

// Report is the full health verdict.
type Report struct {
	Status       string        `json:"status"`
	Reasons      []string      `json:"reasons"`
	Violations   uint64        `json:"violations"`
	CacheHits    uint64        `json:"cache_hits"`
	CacheMisses  uint64        `json:"cache_misses"`
	CacheHitRate float64       `json:"cache_hit_rate"`
	Classes      []ClassReport `json:"classes"`
}

// Report recomputes and returns the current verdict. Deterministic:
// classes sort by (name, hash) and reasons follow that order.
func (m *Monitor) Report() Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recomputeLocked()
	rep := Report{
		Status:      m.status.String(),
		Reasons:     append([]string(nil), m.reasons...),
		Violations:  m.violations,
		CacheHits:   m.hits,
		CacheMisses: m.misses,
	}
	if rep.Reasons == nil {
		rep.Reasons = []string{}
	}
	if total := m.hits + m.misses; total > 0 {
		rep.CacheHitRate = float64(m.hits) / float64(total)
	}
	for _, hash := range m.sortedHashes() {
		cs := m.classes[hash]
		cr := ClassReport{
			Class:                classLabel(hash, cs),
			ClassHash:            hash,
			Allocs:               cs.allocs,
			Frees:                cs.frees,
			Live:                 cs.allocs - cs.frees,
			DistinctLiveLayouts:  len(cs.liveLayouts),
			DistinctLayoutsSeen:  len(cs.layoutsSeen),
			EffectiveEntropyBits: entropyBits(cs.liveLayouts),
			Violations:           cs.violations,
			ScanAlert:            cs.scanAlert,
		}
		for o := range cs.probeOffsets {
			cr.ProbedOffsets = append(cr.ProbedOffsets, o)
		}
		sort.Ints(cr.ProbedOffsets)
		rep.Classes = append(rep.Classes, cr)
	}
	return rep
}

// Status returns the current verdict without building a full report.
func (m *Monitor) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recomputeLocked()
	return m.status
}
