package introspect

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"polar/internal/core"
	"polar/internal/telemetry"
	"polar/internal/telemetry/exectrace"
	"polar/internal/telemetry/flight"
	"polar/internal/telemetry/health"
	"polar/internal/telemetry/profile"
	"polar/internal/telemetry/sample"
	"polar/internal/vm"
)

func newServer(t *testing.T, prof *profile.SiteProfiler) (*telemetry.Telemetry, *httptest.Server) {
	t.Helper()
	tel := telemetry.New()
	srv := httptest.NewServer(New(tel, prof).Mux())
	t.Cleanup(srv.Close)
	return tel, srv
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	tel, srv := newServer(t, nil)
	tel.Registry.Counter("test.hits").Add(7)
	tel.Registry.Gauge("test.level").Set(0.5)

	resp, body := get(t, srv.URL+"/debug/polar/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics body is not a Snapshot: %v\n%s", err, body)
	}
	if snap.Counters["test.hits"] != 7 {
		t.Errorf("counter through endpoint = %d, want 7", snap.Counters["test.hits"])
	}
	if snap.Gauges["test.level"] != 0.5 {
		t.Errorf("gauge through endpoint = %v, want 0.5", snap.Gauges["test.level"])
	}
}

// TestEventsEndpoint emits events onto the live bus while a client
// streams /debug/polar/events, and checks the JSONL lines, the max
// bound, and the kind filter.
func TestEventsEndpoint(t *testing.T) {
	tel, srv := newServer(t, nil)

	resp, err := http.Get(srv.URL + "/debug/polar/events?max=3&kinds=violation")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	// The handler attaches its sink after WriteHeader, so keep emitting
	// until the client has its three lines.
	done := make(chan []telemetry.Event, 1)
	go func() {
		var got []telemetry.Event
		sc := bufio.NewScanner(resp.Body)
		for len(got) < 3 && sc.Scan() {
			var e telemetry.Event
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				t.Errorf("bad JSONL line %q: %v", sc.Text(), err)
				break
			}
			got = append(got, e)
		}
		done <- got
	}()

	deadline := time.After(5 * time.Second)
	var got []telemetry.Event
	addr := uint64(0x9000)
emit:
	for {
		tel.Bus.Emit(telemetry.Event{Kind: telemetry.EvAlloc, Addr: 0xbad})
		tel.Bus.Emit(telemetry.Event{Kind: telemetry.EvViolation, Addr: addr})
		addr++
		select {
		case got = <-done:
			break emit
		case <-deadline:
			t.Fatal("client never received 3 violation events")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if len(got) != 3 {
		t.Fatalf("streamed %d events, want 3", len(got))
	}
	for _, e := range got {
		if e.Kind != telemetry.EvViolation {
			t.Errorf("kind filter leaked %v", e.Kind)
		}
		if e.Addr == 0xbad {
			t.Error("filtered alloc event leaked through")
		}
	}
}

func TestEventsEndpointBadParams(t *testing.T) {
	_, srv := newServer(t, nil)
	for _, q := range []string{"every=0", "every=x", "max=-1", "kinds=nonsense"} {
		resp, body := get(t, srv.URL+"/debug/polar/events?"+q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("?%s: status = %d, want 400 (body %q)", q, resp.StatusCode, body)
		}
	}
}

func TestHotsitesEndpoint(t *testing.T) {
	// Without a profiler the route 404s with a hint.
	_, bare := newServer(t, nil)
	resp, body := get(t, bare.URL+"/debug/polar/hotsites")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("no-profiler status = %d, want 404", resp.StatusCode)
	}
	if !strings.Contains(body, "-profile") {
		t.Errorf("404 body should point at the -profile flag: %q", body)
	}

	prof := profile.NewSiteProfiler()
	prof.Site("@main.loop.body").AddCycles(99)
	_, srv := newServer(t, prof)
	resp, body = get(t, srv.URL+"/debug/polar/hotsites?top=5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !strings.Contains(body, "@main.loop.body") || !strings.Contains(body, "hot sites") {
		t.Errorf("hotsites report malformed:\n%s", body)
	}
}

func TestPprofIndexMounted(t *testing.T) {
	_, srv := newServer(t, nil)
	resp, body := get(t, srv.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status = %d", resp.StatusCode)
	}
	if !strings.Contains(body, "profile") {
		t.Errorf("pprof index missing profile links:\n%.200s", body)
	}
}

type fakeViolations struct{ rs core.RecordSet }

func (f fakeViolations) ViolationLog() core.RecordSet { return f.rs }

func TestViolationsEndpoint(t *testing.T) {
	// Without a source (baseline runs) the route 404s with a hint.
	tel := telemetry.New()
	h := New(tel, nil)
	srv := httptest.NewServer(h.Mux())
	t.Cleanup(srv.Close)
	resp, body := get(t, srv.URL+"/debug/polar/violations")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("no-source status = %d, want 404", resp.StatusCode)
	}
	if !strings.Contains(body, "hardened") {
		t.Errorf("404 body should point at hardened runs: %q", body)
	}

	h.SetViolations(fakeViolations{rs: core.RecordSet{
		Records: []core.ViolationRecord{{KindName: "uaf", Addr: 0x4000, Class: "Widget", Site: "@main.entry"}},
		Dropped: 2, Truncated: true,
	}})
	resp, body = get(t, srv.URL+"/debug/polar/violations")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var rs core.RecordSet
	if err := json.Unmarshal([]byte(body), &rs); err != nil {
		t.Fatalf("violations body is not a RecordSet: %v\n%s", err, body)
	}
	if len(rs.Records) != 1 || rs.Records[0].KindName != "uaf" || rs.Records[0].Addr != 0x4000 {
		t.Errorf("records through endpoint = %+v", rs.Records)
	}
	if !rs.Truncated || rs.Dropped != 2 {
		t.Errorf("truncation through endpoint = %v/%d, want true/2", rs.Truncated, rs.Dropped)
	}
}

func TestReservoirEndpoint(t *testing.T) {
	tel := telemetry.New()
	h := New(tel, nil)
	srv := httptest.NewServer(h.Mux())
	t.Cleanup(srv.Close)
	if resp, _ := get(t, srv.URL+"/debug/polar/reservoir"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("no-reservoir status = %d, want 404", resp.StatusCode)
	}

	rsv := sample.NewReservoir(8, 1)
	tel.Bus.Attach(rsv)
	h.SetReservoir(rsv)
	for i := 0; i < 20; i++ {
		tel.Bus.Emit(telemetry.Event{Kind: telemetry.EvAlloc, Addr: uint64(i)})
	}
	resp, body := get(t, srv.URL+"/debug/polar/reservoir")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, "reservoir.json") {
		t.Errorf("Content-Disposition = %q, want an attachment filename", cd)
	}
	var dl struct {
		Seen   uint64            `json:"seen"`
		Kept   int               `json:"kept"`
		Events []telemetry.Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &dl); err != nil {
		t.Fatalf("reservoir body: %v\n%s", err, body)
	}
	if dl.Seen != 20 || dl.Kept != 8 || len(dl.Events) != 8 {
		t.Errorf("reservoir download seen=%d kept=%d events=%d, want 20/8/8", dl.Seen, dl.Kept, len(dl.Events))
	}
}

func TestMetricsPromEndpoint(t *testing.T) {
	tel, srv := newServer(t, nil)
	tel.Registry.Counter("test.hits").Add(7)

	resp, body := get(t, srv.URL+"/debug/polar/metrics.prom")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Errorf("content type = %q, want openmetrics-text", ct)
	}
	if !strings.Contains(body, "polar_test_hits_total 7") {
		t.Errorf("exposition missing counter:\n%s", body)
	}
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Error("exposition does not end with # EOF")
	}

	// The engine performance counters publish under fixed names that
	// dashboards depend on; pin the OpenMetrics spellings.
	vm.Perf{InlineHits: 3, InlineMisses: 2, FusedDispatches: 5}.Publish(tel.Registry)
	_, body = get(t, srv.URL+"/debug/polar/metrics.prom")
	for _, want := range []string{
		"polar_vm_inline_cache_hits_total 3",
		"polar_vm_inline_cache_misses_total 2",
		"polar_vm_fused_dispatches_total 5",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestHealthEndpoint(t *testing.T) {
	tel := telemetry.New()
	h := New(tel, nil)
	srv := httptest.NewServer(h.Mux())
	t.Cleanup(srv.Close)

	// Without a monitor the endpoint must say so, not 500 or lie.
	resp, _ := get(t, srv.URL+"/debug/polar/health")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("no-monitor status = %d, want 404", resp.StatusCode)
	}

	hm := health.NewMonitor(nil)
	hm.AttachOnce(tel.Bus)
	h.SetHealth(hm)
	resp, body := get(t, srv.URL+"/debug/polar/health")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy status = %d, body %s", resp.StatusCode, body)
	}
	var rep health.Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("health body is not a Report: %v\n%s", err, body)
	}
	if rep.Status != "OK" {
		t.Errorf("status = %q, want OK", rep.Status)
	}

	// Drive the monitor CRITICAL: the endpoint must turn 503 so load
	// balancers and probes see the degradation without parsing JSON.
	for f := 0; f < 3; f++ {
		tel.Bus.Emit(telemetry.Event{Kind: telemetry.EvViolation, Class: 1, Field: f})
	}
	resp, body = get(t, srv.URL+"/debug/polar/health")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("critical status = %d, want 503 (body %s)", resp.StatusCode, body)
	}
	if err := json.Unmarshal([]byte(body), &rep); err != nil || rep.Status != "CRITICAL" {
		t.Errorf("critical report = %q err=%v", rep.Status, err)
	}
}

func TestFlightEndpoint(t *testing.T) {
	tel := telemetry.New()
	h := New(tel, nil)
	srv := httptest.NewServer(h.Mux())
	t.Cleanup(srv.Close)

	resp, _ := get(t, srv.URL+"/debug/polar/flight")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("no-recorder status = %d, want 404", resp.StatusCode)
	}

	rec := flight.NewRecorder(8)
	rec.AttachOnce(tel.Bus)
	h.SetFlight(rec)
	tel.Bus.Emit(telemetry.Event{Kind: telemetry.EvAlloc, Addr: 0x100, Class: 1})
	rec.CaptureFinal()

	resp, body := get(t, srv.URL+"/debug/polar/flight")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var report flight.Report
	if err := json.Unmarshal([]byte(body), &report); err != nil {
		t.Fatalf("flight body is not a Report: %v\n%s", err, body)
	}
	if report.Schema != flight.SchemaVersion || len(report.Dumps) != 1 {
		t.Errorf("schema=%q dumps=%d, want %q/1", report.Schema, len(report.Dumps), flight.SchemaVersion)
	}
}

// TestMetricsSurfaceAttachedCounters checks that a metrics scrape
// refreshes the loss counters owned by attached components: the flight
// recorder's ring-drop counters and occupancy gauge, and the exectrace
// writer's record/drop counters, all without any explicit Publish call
// by the harness.
func TestMetricsSurfaceAttachedCounters(t *testing.T) {
	tel := telemetry.New()
	h := New(tel, nil)
	srv := httptest.NewServer(h.Mux())
	t.Cleanup(srv.Close)

	// A 2-slot ring observing 5 events has dropped 3 and sits full.
	rec := flight.NewRecorder(2)
	rec.AttachOnce(tel.Bus)
	h.SetFlight(rec)
	for i := 0; i < 5; i++ {
		tel.Bus.Emit(telemetry.Event{Kind: telemetry.EvAlloc, Addr: uint64(0x100 + i)})
	}

	// A capped trace writer that recorded 1 block and dropped 2.
	xw := exectrace.NewWriterLimit(io.Discard, 1)
	for i := 0; i < 3; i++ {
		xw.Block(xw.Intern("@main.entry"))
	}
	h.SetExecTrace(xw)

	resp, body := get(t, srv.URL+"/debug/polar/metrics.prom")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	for _, want := range []string{
		"polar_flight_dropped_total 3",
		"polar_flight_dumps_dropped_total 0",
		"polar_flight_ring_occupancy 1",
		"polar_exectrace_records_total 1",
		"polar_exectrace_dropped_total 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}

	// The JSON snapshot sees the same refreshed values.
	_, jsonBody := get(t, srv.URL+"/debug/polar/metrics")
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(jsonBody), &snap); err != nil {
		t.Fatalf("metrics body is not a Snapshot: %v", err)
	}
	if snap.Counters["exectrace.dropped"] != 2 || snap.Counters["flight.dropped"] != 3 {
		t.Errorf("snapshot counters = %v", snap.Counters)
	}
}
