// Package introspect serves the live observability surface over HTTP:
//
//	/debug/polar/metrics     deterministic JSON snapshot of the registry
//	/debug/polar/events      sampled JSONL event stream (rate-limited,
//	                         optional kind filter, bounded count)
//	/debug/polar/hotsites    text hot-site profile (when a profiler is
//	                         attached)
//	/debug/polar/violations  the structured violation log as JSON (when
//	                         a violation source is attached)
//	/debug/polar/reservoir   download of the reservoir event sample
//	                         (when a reservoir is attached)
//	/debug/polar/metrics.prom OpenMetrics (Prometheus text) rendering of
//	                         the registry snapshot
//	/debug/polar/health      live health verdict (OK/DEGRADED/CRITICAL
//	                         plus reasons; when a monitor is attached)
//	/debug/polar/flight      forensic dumps of the flight recorder
//	                         (when one is attached)
//	/debug/pprof/*           the standard Go pprof endpoints
//
// The handler holds references, not copies: every request observes the
// telemetry of the run in flight, which is the whole point of a live
// endpoint. All endpoints are read-only.
package introspect

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"

	"polar/internal/core"
	"polar/internal/telemetry"
	"polar/internal/telemetry/exectrace"
	"polar/internal/telemetry/flight"
	"polar/internal/telemetry/health"
	"polar/internal/telemetry/profile"
	"polar/internal/telemetry/sample"
)

// ViolationSource provides the live structured violation log.
// *core.Runtime satisfies it.
type ViolationSource interface {
	ViolationLog() core.RecordSet
}

// Handler is the introspection surface for one telemetry instance.
type Handler struct {
	tel  *telemetry.Telemetry
	prof *profile.SiteProfiler

	mu     sync.RWMutex
	viol   ViolationSource
	res    *sample.Reservoir
	hmon   *health.Monitor
	flight *flight.Recorder
	xt     *exectrace.Writer
}

// New builds the introspection handler. prof may be nil (the hotsites
// endpoint then reports 404).
func New(tel *telemetry.Telemetry, prof *profile.SiteProfiler) *Handler {
	return &Handler{tel: tel, prof: prof}
}

// SetViolations attaches the live violation source (typically the
// *core.Runtime of the run in flight). The violations endpoint reports
// 404 until one is attached.
func (h *Handler) SetViolations(src ViolationSource) {
	h.mu.Lock()
	h.viol = src
	h.mu.Unlock()
}

// SetReservoir attaches a reservoir sampler whose current sample the
// reservoir endpoint serves. 404 until one is attached.
func (h *Handler) SetReservoir(r *sample.Reservoir) {
	h.mu.Lock()
	h.res = r
	h.mu.Unlock()
}

// SetHealth attaches the live health monitor. The health endpoint
// reports 404 until one is attached.
func (h *Handler) SetHealth(m *health.Monitor) {
	h.mu.Lock()
	h.hmon = m
	h.mu.Unlock()
}

// SetFlight attaches the flight recorder whose forensic dumps the
// flight endpoint serves. 404 until one is attached.
func (h *Handler) SetFlight(r *flight.Recorder) {
	h.mu.Lock()
	h.flight = r
	h.mu.Unlock()
}

// SetExecTrace attaches the execution-trace writer so the metrics
// endpoints can surface its record/drop counters
// (polar_exectrace_records_total, polar_exectrace_dropped_total).
//
// Reading counters off a single-owner writer from the HTTP goroutine
// is a benign data race in the Go-memory-model sense but a sound one
// operationally (monotonic uint64 reads); callers who need exactness
// scrape after the run.
func (h *Handler) SetExecTrace(w *exectrace.Writer) {
	h.mu.Lock()
	h.xt = w
	h.mu.Unlock()
}

// publishAttached refreshes registry entries that mirror state owned
// by attached components (flight recorder loss counters, exectrace
// drop counters) so every metrics scrape reflects them.
func (h *Handler) publishAttached() {
	h.mu.RLock()
	fr, xt := h.flight, h.xt
	h.mu.RUnlock()
	fr.Publish(h.tel.Registry)
	xt.Publish(h.tel.Registry)
}

// Mux returns a ServeMux with every introspection route registered.
func (h *Handler) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/polar/metrics", h.metrics)
	mux.HandleFunc("/debug/polar/metrics.prom", h.metricsProm)
	mux.HandleFunc("/debug/polar/health", h.health)
	mux.HandleFunc("/debug/polar/flight", h.flightDumps)
	mux.HandleFunc("/debug/polar/events", h.events)
	mux.HandleFunc("/debug/polar/hotsites", h.hotsites)
	mux.HandleFunc("/debug/polar/violations", h.violations)
	mux.HandleFunc("/debug/polar/reservoir", h.reservoir)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// metrics serves the registry snapshot as deterministic JSON.
func (h *Handler) metrics(w http.ResponseWriter, r *http.Request) {
	h.publishAttached()
	data, err := h.tel.Registry.Snapshot().EncodeJSON()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
	w.Write([]byte("\n"))
}

// metricsProm serves the registry snapshot in OpenMetrics text format.
func (h *Handler) metricsProm(w http.ResponseWriter, r *http.Request) {
	h.publishAttached()
	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	if err := h.tel.Registry.Snapshot().WriteOpenMetrics(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// health serves the live health report. The status also maps onto the
// HTTP code (200 OK / 200 DEGRADED / 503 CRITICAL) so dumb probes can
// alert without parsing JSON.
func (h *Handler) health(w http.ResponseWriter, r *http.Request) {
	h.mu.RLock()
	mon := h.hmon
	h.mu.RUnlock()
	if mon == nil {
		http.Error(w, "no health monitor attached (run with -health)", http.StatusNotFound)
		return
	}
	rep := mon.Report()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if rep.Status == health.StatusCritical.String() {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	w.Write(data)
	w.Write([]byte("\n"))
}

// flightDumps serves the flight recorder's forensic dumps as JSON.
func (h *Handler) flightDumps(w http.ResponseWriter, r *http.Request) {
	h.mu.RLock()
	rec := h.flight
	h.mu.RUnlock()
	if rec == nil {
		http.Error(w, "no flight recorder attached (run with -flight)", http.StatusNotFound)
		return
	}
	data, err := rec.Encode()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
	w.Write([]byte("\n"))
}

// events streams sampled events as JSONL until the client disconnects
// or `max` events have been written.
//
// Query parameters:
//
//	every=N   forward 1 in N events (default 1 = everything)
//	kinds=a,b comma-separated kind names (default all kinds)
//	max=N     stop after N forwarded events (default 4096, 0 = unbounded)
func (h *Handler) events(w http.ResponseWriter, r *http.Request) {
	every := 1
	if s := r.URL.Query().Get("every"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			http.Error(w, "bad every parameter", http.StatusBadRequest)
			return
		}
		every = v
	}
	max := 4096
	if s := r.URL.Query().Get("max"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			http.Error(w, "bad max parameter", http.StatusBadRequest)
			return
		}
		max = v
	}
	var kinds []telemetry.EventKind
	if s := r.URL.Query().Get("kinds"); s != "" {
		byName := make(map[string]telemetry.EventKind)
		for _, k := range telemetry.AllEventKinds() {
			byName[k.String()] = k
		}
		for _, name := range strings.Split(s, ",") {
			k, ok := byName[strings.TrimSpace(name)]
			if !ok {
				http.Error(w, fmt.Sprintf("unknown event kind %q", name), http.StatusBadRequest)
				return
			}
			kinds = append(kinds, k)
		}
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	// Push the header out now: net/http buffers it until the first body
	// write, which for a quiet bus could be arbitrarily far away — a
	// streaming client should see the 200 immediately.
	if flusher != nil {
		flusher.Flush()
	}
	done := r.Context().Done()
	limit := make(chan struct{})

	// The chain bus → filter → rate sampler → JSONL-over-HTTP. The
	// terminal sink stops counting once the context is cancelled or the
	// budget is spent, and trips `limit` so the handler can return (which
	// detaches the chain from the bus).
	// Events may arrive from any VM goroutine; the mutex serializes
	// writes into the response.
	var mu sync.Mutex
	enc := json.NewEncoder(w)
	written := 0
	closed := false
	stop := func() {
		closed = true
		close(limit)
	}
	var terminal telemetry.FuncSink = func(e telemetry.Event) {
		mu.Lock()
		defer mu.Unlock()
		if closed {
			return
		}
		select {
		case <-done:
			stop()
			return
		default:
		}
		if err := enc.Encode(e); err != nil {
			stop()
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		written++
		if max > 0 && written >= max {
			stop()
		}
	}
	var chain telemetry.Sink = sample.NewRated(terminal, every)
	if len(kinds) > 0 {
		chain = sample.NewFilter(chain, kinds...)
	}
	h.tel.Bus.Attach(chain)
	defer h.tel.Bus.Detach(chain)
	select {
	case <-done:
	case <-limit:
	}
}

// violations serves the structured violation log as JSON. The
// RecordSet's Truncated/Dropped fields ride along, so a client cannot
// mistake a capped log for the complete detection history.
func (h *Handler) violations(w http.ResponseWriter, r *http.Request) {
	h.mu.RLock()
	src := h.viol
	h.mu.RUnlock()
	if src == nil {
		http.Error(w, "no violation source attached (violations exist only on hardened runs)", http.StatusNotFound)
		return
	}
	data, err := json.MarshalIndent(src.ViolationLog(), "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
	w.Write([]byte("\n"))
}

// reservoir serves a download of the current reservoir sample: the
// retained events plus how many were seen in total (so clients can
// compute the sampling fraction).
func (h *Handler) reservoir(w http.ResponseWriter, r *http.Request) {
	h.mu.RLock()
	res := h.res
	h.mu.RUnlock()
	if res == nil {
		http.Error(w, "no reservoir attached", http.StatusNotFound)
		return
	}
	events := res.Events()
	if events == nil {
		events = []telemetry.Event{}
	}
	out := struct {
		Seen   uint64            `json:"seen"`
		Kept   int               `json:"kept"`
		Events []telemetry.Event `json:"events"`
	}{Seen: res.Seen(), Kept: len(events), Events: events}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="reservoir.json"`)
	w.Write(data)
	w.Write([]byte("\n"))
}

// hotsites serves the text top-N site report.
func (h *Handler) hotsites(w http.ResponseWriter, r *http.Request) {
	if h.prof == nil {
		http.Error(w, "no site profiler attached (run with -profile)", http.StatusNotFound)
		return
	}
	topN := 30
	if s := r.URL.Query().Get("top"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			topN = v
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, h.prof.Report(topN))
}
