package workload

import (
	"fmt"

	"polar/internal/ir"
)

// JSKernel is one bar of Fig. 7: a named benchmark from one of the four
// ChakraCore suites, realized as a compute kernel over the script-engine
// object model. Suites with time-based results (SunSpider, Kraken)
// report milliseconds (lower is better); score-based suites (Octane,
// JetStream) report a rate (higher is better).
type JSKernel struct {
	Name       string
	Suite      string
	Template   string
	Module     *ir.Module
	Input      []byte
	ScoreBased bool
}

// jsEntry maps a benchmark name to its kernel template and scale.
type jsEntry struct {
	name     string
	template string
	iters    int64
}

// The suite rosters of Fig. 7 (a)–(d).
var krakenEntries = []jsEntry{
	{"ai-astar", "grid", 60},
	{"audio-beat-detection", "float", 2600},
	{"audio-dft", "float", 3000},
	{"audio-fft", "float", 2800},
	{"audio-oscillator", "float", 2400},
	{"imaging-darkroom", "pixel", 2200},
	{"imaging-desaturate", "pixel", 2600},
	{"imaging-gaussian-blur", "pixel", 3200},
	{"json-parse-financial", "parse", 900},
	{"json-stringify-tinderbox", "parse", 800},
	{"stanford-crypto-aes", "crypto", 2400},
	{"stanford-crypto-ccm", "crypto", 2000},
	{"stanford-crypto-pbkdf2", "crypto", 2800},
	{"stanford-crypto-sha256-i", "crypto", 2600},
}

var sunspiderEntries = []jsEntry{
	{"3d-cube", "float", 900},
	{"3d-morph", "float", 1000},
	{"3d-raytrace", "float", 1100},
	{"access-binary-trees", "tree", 260},
	{"access-fannkuch", "numeric", 1400},
	{"access-nbody", "float", 1000},
	{"access-nsieve", "numeric", 1200},
	{"bitops-3bit-bits-in-byte", "bitops", 1500},
	{"bitops-bits-in-byte", "bitops", 1400},
	{"bitops-bitwise-and", "bitops", 1600},
	{"bitops-nsieve-bits", "bitops", 1300},
	{"controlflow-recursive", "recurse", 200},
	{"crypto-aes", "crypto", 900},
	{"crypto-md5", "crypto", 850},
	{"crypto-sha1", "crypto", 800},
	{"date-format-tofte", "string", 700},
	{"date-format-xparb", "string", 650},
	{"math-cordic", "numeric", 1200},
	{"math-partial-sums", "float", 900},
	{"math-spectral-norm", "float", 850},
	{"regexp-dna", "scan", 1000},
	{"string-base64", "string", 900},
	{"string-fasta", "string", 950},
	{"string-tagcloud", "parse", 550},
	{"string-unpack-code", "string", 850},
	{"string-validate-input", "scan", 800},
}

var octaneEntries = []jsEntry{
	{"box2d", "float", 2000},
	{"code-load", "parse", 1200},
	{"crypto", "crypto", 2400},
	{"deltablue", "tree", 420},
	{"earley-boyer", "tree", 500},
	{"gbemu", "numeric", 2400},
	{"mandreel", "numeric", 2200},
	{"mandreelLatency", "numeric", 900},
	{"navier-stokes", "float", 2600},
	{"pdfjs", "parse", 1400},
	{"raytrace", "float", 1800},
	{"regexp", "scan", 1600},
	{"richards", "tree", 480},
	{"splay", "tree", 520},
	{"splayLatency", "tree", 300},
	{"typescript", "parse", 1600},
	{"zlib", "numeric", 2600},
}

var jetstreamEntries = []jsEntry{
	{"bigfib.cpp", "numeric", 1800},
	{"container.cpp", "tree", 420},
	{"dry.c", "numeric", 1600},
	{"float-mm.c", "float", 2200},
	{"gcc-loops.cpp", "numeric", 2400},
	{"hash-map", "hash", 900},
	{"n-body.c", "float", 1900},
	{"quicksort.c", "sort", 1200},
	{"towers.c", "recurse", 260},
	{"cdjs", "float", 1700},
}

// JSBenchmarks builds all 67 kernels of Fig. 7.
func JSBenchmarks() []*JSKernel {
	var out []*JSKernel
	add := func(suite string, entries []jsEntry, score bool) {
		for _, e := range entries {
			out = append(out, buildJSKernel(suite, e, score))
		}
	}
	add("Kraken", krakenEntries, false)
	add("Sunspider", sunspiderEntries, false)
	add("Octane", octaneEntries, true)
	add("Jetstream", jetstreamEntries, true)
	return out
}

// JSSuites returns the suite names in Table II order.
func JSSuites() []string { return []string{"Sunspider", "Kraken", "Octane", "Jetstream"} }

// engineTypes declares the small per-kernel engine object model (a slice
// of the ChakraModel inventory) and returns the three hot types.
func engineTypes(m *ir.Module) (fnBody, arr, str *ir.StructType) {
	fnBody = m.MustStruct(ir.NewStruct("Js_FunctionBody",
		ir.Field{Name: "vtable", Type: ir.Fptr},
		ir.Field{Name: "byte_code_size", Type: ir.I32},
		ir.Field{Name: "call_count", Type: ir.I32},
		ir.Field{Name: "flags", Type: ir.I64},
	))
	arr = m.MustStruct(ir.NewStruct("Js_JavascriptArray",
		ir.Field{Name: "vtable", Type: ir.Fptr},
		ir.Field{Name: "length", Type: ir.I32},
		ir.Field{Name: "head_seg", Type: ir.Raw},
		ir.Field{Name: "checksum", Type: ir.I64},
	))
	str = m.MustStruct(ir.NewStruct("Js_JavascriptString",
		ir.Field{Name: "vtable", Type: ir.Fptr},
		ir.Field{Name: "length", Type: ir.I32},
		ir.Field{Name: "hash", Type: ir.I64},
	))
	return fnBody, arr, str
}

// buildJSKernel assembles one kernel module: the engine prologue
// (script-byte-tainted object creation) plus the template loop.
func buildJSKernel(suite string, e jsEntry, score bool) *JSKernel {
	m := ir.NewModule(suite + "/" + e.name)
	fnBody, arr, str := engineTypes(m)
	mustGlobal(m, "script", 1024)
	mustGlobal(m, "data", 16384)

	b := ir.NewFunc(m, "main", ir.I64)
	n := readInputTo(b, "script")
	// Engine prologue: function body + array + string objects populated
	// from the script bytes.
	fb := b.Alloc(fnBody)
	b.Store(ir.I32, n, b.FieldPtrName(fnBody, fb, "byte_code_size"))
	b.Store(ir.I32, ir.Const(0), b.FieldPtrName(fnBody, fb, "call_count"))
	b.Store(ir.I64, b.Call("input_byte", ir.Const(0)), b.FieldPtrName(fnBody, fb, "flags"))
	av := b.Alloc(arr)
	b.Store(ir.I32, ir.Const(2048), b.FieldPtrName(arr, av, "length"))
	b.Store(ir.I64, ir.Const(0), b.FieldPtrName(arr, av, "checksum"))
	sv := b.Alloc(str)
	b.Store(ir.I32, n, b.FieldPtrName(str, sv, "length"))
	b.Store(ir.I64, b.Call("input_byte", ir.Const(1)), b.FieldPtrName(str, sv, "hash"))

	emitJSTemplate(b, m, e, fnBody, fb, arr, av)

	// Epilogue: checksum via the engine objects.
	cc := b.Load(ir.I32, b.FieldPtrName(fnBody, fb, "call_count"))
	ck := b.Load(ir.I64, b.FieldPtrName(arr, av, "checksum"))
	res := b.Bin(ir.BinXor, ck, cc)
	b.CallVoid("print_i64", res)
	b.Ret(res)

	return &JSKernel{
		Name: e.name, Suite: suite, Template: e.template,
		Module: m, Input: defaultInput(512, hashName(e.name)), ScoreBased: score,
	}
}

func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range s {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h | 1
}

// emitJSTemplate emits the kernel body. Every template touches the
// engine objects once per outer iteration (the interpreter bookkeeping a
// real engine performs) and spends the rest of the iteration in
// un-instrumented compute — which is why POLaR costs ~1% here (§V.B).
func emitJSTemplate(b *ir.Builder, m *ir.Module, e jsEntry, fnBody *ir.StructType, fb ir.Value, arr *ir.StructType, av ir.Value) {
	// Engine-object bookkeeping is gated to every 64th iteration: a real
	// engine's JITed loops touch the randomized engine objects rarely
	// relative to their compute, which is why Table II's overheads are
	// ~1% (§V.B).
	gateN := 0
	bumpUngated := func() {
		c := b.Load(ir.I32, b.FieldPtrName(fnBody, fb, "call_count"))
		b.Store(ir.I32, b.Bin(ir.BinAdd, c, ir.Const(1)), b.FieldPtrName(fnBody, fb, "call_count"))
	}
	mixUngated := func(v ir.Value) {
		ck := b.Load(ir.I64, b.FieldPtrName(arr, av, "checksum"))
		b.Store(ir.I64, b.Bin(ir.BinXor, b.Bin(ir.BinMul, ck, ir.Const(31)), v), b.FieldPtrName(arr, av, "checksum"))
	}
	gated := func(i ir.Value, mask int64, body func()) {
		gateN++
		cond := b.Cmp(ir.CmpEq, b.Bin(ir.BinAnd, i, ir.Const(mask)), ir.Const(0))
		b.If(fmt.Sprintf("gate%d", gateN), cond, body, nil)
	}
	var pendingI ir.Value
	bump := func() { /* recorded; emitted with mix */ }
	mix := func(v ir.Value) {
		gated(pendingI, 63, func() {
			bumpUngated()
			mixUngated(v)
		})
	}
	_ = bump
	// Kernels are scaled ×4 so each run is long enough (a few ms) for
	// stable wall-clock measurement on noisy machines.
	iters := ir.Const(e.iters * 4)
	switch e.template {
	case "crypto":
		b.CountedLoop("outer", iters, func(i ir.Value) {
			pendingI = i
			st := b.Local(ir.I64)
			b.Store(ir.I64, b.Bin(ir.BinAdd, i, ir.Const(0x6a09e667)), st)
			b.CountedLoop("rounds", ir.Const(24), func(r ir.Value) {
				v := b.Load(ir.I64, st)
				v = b.Bin(ir.BinXor, v, b.Bin(ir.BinShl, v, ir.Const(7)))
				v = b.Bin(ir.BinXor, v, b.Bin(ir.BinShr, v, ir.Const(9)))
				v = b.Bin(ir.BinAdd, v, r)
				b.Store(ir.I64, v, st)
			})
			mix(b.Load(ir.I64, st))
		})
	case "float":
		b.CountedLoop("outer", iters, func(i ir.Value) {
			pendingI = i
			x := b.FBin(ir.BinMul, b.ItoF(i), ir.ConstF(0.001))
			acc := b.Local(ir.F64)
			b.Store(ir.F64, x, acc)
			b.CountedLoop("steps", ir.Const(16), func(s ir.Value) {
				v := b.Load(ir.F64, acc)
				v = b.FBin(ir.BinAdd, b.FBin(ir.BinMul, v, ir.ConstF(1.000001)), ir.ConstF(0.5))
				v = b.FBin(ir.BinDiv, v, ir.ConstF(1.0000007))
				b.Store(ir.F64, v, acc)
			})
			mix(b.FtoI(b.FBin(ir.BinMul, b.Load(ir.F64, acc), ir.ConstF(1000))))
		})
	case "pixel":
		b.CountedLoop("outer", iters, func(i ir.Value) {
			pendingI = i
			b.CountedLoop("px", ir.Const(24), func(p ir.Value) {
				idx := b.Bin(ir.BinAnd, b.Bin(ir.BinAdd, b.Bin(ir.BinMul, i, ir.Const(7)), p), ir.Const(16383))
				old := b.Load(ir.I8, b.ElemPtr(ir.I8, ir.Global("data"), idx))
				nv := b.Bin(ir.BinAnd, b.Bin(ir.BinAdd, b.Bin(ir.BinMul, old, ir.Const(3)), p), ir.Const(0xff))
				b.Store(ir.I8, nv, b.ElemPtr(ir.I8, ir.Global("data"), idx))
			})
			mix(i)
		})
	case "parse":
		// Tokenize the script repeatedly, allocating a transient string
		// object per token batch (object churn, like JSON parsing).
		str := m.Structs["Js_JavascriptString"]
		b.CountedLoop("outer", iters, func(i ir.Value) {
			pendingI = i
			// Token-object churn every 8th batch (engines pool/intern
			// strings; object churn is rare relative to scanning).
			gated(i, 15, func() {
				tok := b.Alloc(str)
				c := b.Call("input_byte", b.Bin(ir.BinAnd, i, ir.Const(255)))
				b.Store(ir.I64, c, b.FieldPtrName(str, tok, "hash"))
				b.Store(ir.I32, ir.Const(1), b.FieldPtrName(str, tok, "length"))
				h := b.Load(ir.I64, b.FieldPtrName(str, tok, "hash"))
				mixUngated(h)
				b.Free(tok)
			})
			// Un-instrumented scanning work.
			acc := b.Local(ir.I64)
			b.CountedLoop("scan", ir.Const(48), func(s ir.Value) {
				v := b.Bin(ir.BinMul, b.Bin(ir.BinAdd, s, i), ir.Const(131))
				pv := b.Load(ir.I64, acc)
				b.Store(ir.I64, b.Bin(ir.BinXor, pv, v), acc)
			})
			mix(b.Load(ir.I64, acc))
		})
	case "tree":
		// Splay-flavoured churn: allocate a node object, link it through
		// a raw slot chain, free the previous node.
		node := m.MustStruct(ir.NewStruct("Js_SplayNode",
			ir.Field{Name: "key", Type: ir.I64},
			ir.Field{Name: "left", Type: ir.Raw},
			ir.Field{Name: "right", Type: ir.Raw},
		))
		prev := b.Local(ir.I64)
		b.Store(ir.I64, ir.Const(0), prev)
		b.CountedLoop("outer", iters, func(i ir.Value) {
			pendingI = i
			gated(i, 15, func() {
				nd := b.Alloc(node)
				b.Store(ir.I64, b.Bin(ir.BinMul, i, ir.Const(2654435761)), b.FieldPtrName(node, nd, "key"))
				b.Store(ir.Raw, ir.Const(0), b.FieldPtrName(node, nd, "left"))
				b.Store(ir.Raw, ir.Const(0), b.FieldPtrName(node, nd, "right"))
				k := b.Load(ir.I64, b.FieldPtrName(node, nd, "key"))
				mixUngated(k)
				pv := b.Load(ir.PtrTo(node), prev)
				notNull := b.Cmp(ir.CmpNe, pv, ir.Const(0))
				b.If("freeprev", notNull, func() { b.Free(pv) }, nil)
				b.Store(ir.I64, nd, prev)
			})
			reb := b.Local(ir.I64)
			b.CountedLoop("rebal", ir.Const(48), func(s ir.Value) {
				v := b.Bin(ir.BinXor, b.Bin(ir.BinShl, s, ir.Const(2)), i)
				pv := b.Load(ir.I64, reb)
				b.Store(ir.I64, b.Bin(ir.BinAdd, pv, v), reb)
			})
			mix(b.Load(ir.I64, reb))
		})
	case "numeric":
		b.CountedLoop("outer", iters, func(i ir.Value) {
			pendingI = i
			acc := b.Local(ir.I64)
			b.Store(ir.I64, i, acc)
			b.CountedLoop("inner", ir.Const(20), func(s ir.Value) {
				v := b.Load(ir.I64, acc)
				v = b.Bin(ir.BinAdd, b.Bin(ir.BinMul, v, ir.Const(6364136223846793005)), ir.Const(1442695040888963407))
				b.Store(ir.I64, v, acc)
			})
			mix(b.Load(ir.I64, acc))
		})
	case "bitops":
		b.CountedLoop("outer", iters, func(i ir.Value) {
			pendingI = i
			acc := b.Local(ir.I64)
			b.Store(ir.I64, i, acc)
			b.CountedLoop("inner", ir.Const(18), func(s ir.Value) {
				v := b.Load(ir.I64, acc)
				v = b.Bin(ir.BinAnd, b.Bin(ir.BinOr, v, b.Bin(ir.BinShl, v, ir.Const(1))), ir.Const(0x5555555555555555))
				v = b.Bin(ir.BinXor, v, b.Bin(ir.BinShr, v, ir.Const(3)))
				b.Store(ir.I64, v, acc)
			})
			mix(b.Load(ir.I64, acc))
		})
	case "string":
		b.CountedLoop("outer", iters, func(i ir.Value) {
			pendingI = i
			h := b.Local(ir.I64)
			b.Store(ir.I64, ir.Const(5381), h)
			b.CountedLoop("chars", ir.Const(20), func(s ir.Value) {
				off := b.Bin(ir.BinAnd, b.Bin(ir.BinAdd, i, s), ir.Const(511))
				c := b.Load(ir.I8, b.ElemPtr(ir.I8, ir.Global("script"), off))
				hv := b.Load(ir.I64, h)
				b.Store(ir.I64, b.Bin(ir.BinAdd, b.Bin(ir.BinMul, hv, ir.Const(33)), c), h)
			})
			mix(b.Load(ir.I64, h))
		})
	case "scan":
		// Regexp-flavoured state machine over the script bytes.
		b.CountedLoop("outer", iters, func(i ir.Value) {
			pendingI = i
			state := b.Local(ir.I64)
			b.Store(ir.I64, ir.Const(0), state)
			b.CountedLoop("chars", ir.Const(22), func(s ir.Value) {
				off := b.Bin(ir.BinAnd, b.Bin(ir.BinAdd, b.Bin(ir.BinMul, i, ir.Const(3)), s), ir.Const(511))
				c := b.Load(ir.I8, b.ElemPtr(ir.I8, ir.Global("script"), off))
				st := b.Load(ir.I64, state)
				isAlpha := b.Cmp(ir.CmpGt, c, ir.Const(96))
				b.Store(ir.I64, b.Bin(ir.BinAdd, b.Bin(ir.BinMul, st, ir.Const(2)), isAlpha), state)
			})
			mix(b.Load(ir.I64, state))
		})
	case "hash":
		mustGlobal(m, "htab", 8*512)
		b.CountedLoop("outer", iters, func(i ir.Value) {
			pendingI = i
			b.CountedLoop("ops", ir.Const(16), func(s ir.Value) {
				k := b.Bin(ir.BinMul, b.Bin(ir.BinAdd, i, s), ir.Const(0x9E3779B1))
				slot := b.Bin(ir.BinAnd, b.Bin(ir.BinShr, k, ir.Const(16)), ir.Const(511))
				old := b.Load(ir.I64, b.ElemPtr(ir.I64, ir.Global("htab"), slot))
				b.Store(ir.I64, b.Bin(ir.BinAdd, old, k), b.ElemPtr(ir.I64, ir.Global("htab"), slot))
			})
			mix(i)
		})
	case "sort":
		mustGlobal(m, "sarr", 8*256)
		b.CountedLoop("outer", iters, func(i ir.Value) {
			pendingI = i
			// Partial insertion pass over a 32-slot window.
			b.CountedLoop("ins", ir.Const(31), func(s ir.Value) {
				base := b.Bin(ir.BinAnd, i, ir.Const(223))
				a0 := b.ElemPtr(ir.I64, ir.Global("sarr"), b.Bin(ir.BinAdd, base, s))
				a1 := b.ElemPtr(ir.I64, ir.Global("sarr"), b.Bin(ir.BinAdd, base, b.Bin(ir.BinAdd, s, ir.Const(1))))
				v0 := b.Load(ir.I64, a0)
				v1 := b.Load(ir.I64, a1)
				gt := b.Cmp(ir.CmpGt, v0, v1)
				b.If("swap", gt, func() {
					b.Store(ir.I64, v1, a0)
					b.Store(ir.I64, v0, a1)
				}, nil)
			})
			mix(i)
		})
	case "recurse":
		// Recursive fib-flavoured control flow.
		rb := ir.NewFunc(m, "rec", ir.I64, ir.Param{Name: "n", Type: ir.I64})
		nn := rb.ParamReg(0)
		small := rb.Cmp(ir.CmpLt, nn, ir.Const(2))
		rb.If("base", small, func() { rb.Ret(nn) }, nil)
		r1 := rb.Call("rec", rb.Bin(ir.BinSub, nn, ir.Const(1)))
		r2 := rb.Call("rec", rb.Bin(ir.BinSub, nn, ir.Const(2)))
		rb.Ret(rb.Bin(ir.BinAdd, r1, r2))
		b.CountedLoop("outer", iters, func(i ir.Value) {
			pendingI = i
			v := b.Call("rec", ir.Const(10))
			mix(b.Bin(ir.BinAdd, v, i))
		})
	case "grid":
		mustGlobal(m, "jgrid", 1024)
		b.CountedLoop("outer", iters, func(i ir.Value) {
			pendingI = i
			b.CountedLoop("cells", ir.Const(1000), func(cpos ir.Value) {
				cell := b.ElemPtr(ir.I8, ir.Global("jgrid"), cpos)
				v := b.Load(ir.I8, cell)
				nb := b.Load(ir.I8, b.ElemPtr(ir.I8, ir.Global("jgrid"), b.Bin(ir.BinAdd, cpos, ir.Const(1))))
				b.Store(ir.I8, b.Bin(ir.BinAnd, b.Bin(ir.BinAdd, v, nb), ir.Const(0x7f)), cell)
			})
			mix(i)
		})
	default:
		panic(fmt.Sprintf("jsbench: unknown template %q", e.template))
	}
}
