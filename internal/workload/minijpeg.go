package workload

import "polar/internal/ir"

// Mini-libjpeg: a JPEG marker-segment parser standing in for
// libjpeg-turbo 1.5.2. The marker framing is real (0xFF-prefixed codes,
// big-endian segment lengths) and each segment handler populates the
// corresponding libjpeg object type from Table I.
func LibJPEG() *Workload {
	m := buildJPEGModule()
	return &Workload{
		Name:        "libjpeg-turbo-1.5.2",
		Description: "JPEG marker parser: per-segment decoder object population",
		Module:      m,
		Input:       CanonicalJPEG(),
		ExpectedTainted: []string{
			"bitread_working_state", "huff_entropy_decoder", "jpeg_component_info",
			"jpeg_color_deconverter", "jpeg_decompress_struct", "jpeg_error_mgr",
			"savable_state", "tjinstance",
		},
		PaperTaintedCount: 8,
		PaperOverheadPct:  -1,
	}
}

func buildJPEGModule() *ir.Module {
	m := ir.NewModule("libjpeg")
	tj := m.MustStruct(ir.NewStruct("tjinstance",
		ir.Field{Name: "handle", Type: ir.Raw},
		ir.Field{Name: "width", Type: ir.I32},
		ir.Field{Name: "height", Type: ir.I32},
		ir.Field{Name: "subsamp", Type: ir.I32},
		ir.Field{Name: "flags", Type: ir.I32},
	))
	dec := m.MustStruct(ir.NewStruct("jpeg_decompress_struct",
		ir.Field{Name: "err", Type: ir.Raw},
		ir.Field{Name: "image_width", Type: ir.I32},
		ir.Field{Name: "image_height", Type: ir.I32},
		ir.Field{Name: "num_components", Type: ir.I32},
		ir.Field{Name: "restart_interval", Type: ir.I32},
		ir.Field{Name: "marker_count", Type: ir.I64},
	))
	comp := m.MustStruct(ir.NewStruct("jpeg_component_info",
		ir.Field{Name: "component_id", Type: ir.I32},
		ir.Field{Name: "h_samp_factor", Type: ir.I32},
		ir.Field{Name: "v_samp_factor", Type: ir.I32},
		ir.Field{Name: "quant_tbl_no", Type: ir.I32},
	))
	errMgr := m.MustStruct(ir.NewStruct("jpeg_error_mgr",
		ir.Field{Name: "error_exit", Type: ir.Fptr},
		ir.Field{Name: "msg_code", Type: ir.I32},
		ir.Field{Name: "num_warnings", Type: ir.I64},
	))
	huff := m.MustStruct(ir.NewStruct("huff_entropy_decoder",
		ir.Field{Name: "decode_mcu", Type: ir.Fptr},
		ir.Field{Name: "table_class", Type: ir.I32},
		ir.Field{Name: "table_id", Type: ir.I32},
		ir.Field{Name: "nsymbols", Type: ir.I32},
	))
	bread := m.MustStruct(ir.NewStruct("bitread_working_state",
		ir.Field{Name: "get_buffer", Type: ir.I64},
		ir.Field{Name: "bits_left", Type: ir.I32},
		ir.Field{Name: "next_input_byte", Type: ir.Raw},
	))
	sav := m.MustStruct(ir.NewStruct("savable_state",
		ir.Field{Name: "last_dc_val0", Type: ir.I32},
		ir.Field{Name: "last_dc_val1", Type: ir.I32},
		ir.Field{Name: "last_dc_val2", Type: ir.I32},
	))
	deconv := m.MustStruct(ir.NewStruct("jpeg_color_deconverter",
		ir.Field{Name: "color_convert", Type: ir.Fptr},
		ir.Field{Name: "out_color_components", Type: ir.I32},
	))
	// Untainted: the memory manager is configured before any input.
	m.MustStruct(ir.NewStruct("jpeg_memory_mgr",
		ir.Field{Name: "alloc_small", Type: ir.Fptr},
		ir.Field{Name: "pool_size", Type: ir.I64},
	))

	mustGlobal(m, "jbuf", 8192)

	b := ir.NewFunc(m, "main", ir.I64)
	mm := m.Structs["jpeg_memory_mgr"]
	mp := b.Alloc(mm)
	b.Store(ir.I64, ir.Const(4096), b.FieldPtrName(mm, mp, "pool_size"))

	n := readInputTo(b, "jbuf")
	rd8 := func(off ir.Value) ir.Value {
		return b.Bin(ir.BinAnd, b.Load(ir.I8, b.ElemPtr(ir.I8, ir.Global("jbuf"), off)), ir.Const(0xff))
	}
	rd16 := func(off ir.Value) ir.Value {
		hi := rd8(off)
		lo := rd8(b.Bin(ir.BinAdd, off, ir.Const(1)))
		return b.Bin(ir.BinOr, b.Bin(ir.BinShl, hi, ir.Const(8)), lo)
	}

	// SOI check.
	soi0 := rd8(ir.Const(0))
	soi1 := rd8(ir.Const(1))
	bad := b.Bin(ir.BinOr, b.Cmp(ir.CmpNe, soi0, ir.Const(0xFF)), b.Cmp(ir.CmpNe, soi1, ir.Const(0xD8)))
	b.If("soi", b.Cmp(ir.CmpNe, bad, ir.Const(0)), func() { b.Ret(ir.Const(-1)) }, nil)

	inst := b.Alloc(tj)
	cinfo := b.Alloc(dec)
	em := b.Alloc(errMgr)
	b.Store(ir.Raw, em, b.FieldPtrName(dec, cinfo, "err"))
	b.Store(ir.I64, ir.Const(0), b.FieldPtrName(dec, cinfo, "marker_count"))
	b.Store(ir.I64, ir.Const(0), b.FieldPtrName(errMgr, em, "num_warnings"))
	b.Store(ir.I32, ir.Const(0), b.FieldPtrName(tj, inst, "flags"))

	pos := b.Local(ir.I64)
	b.Store(ir.I64, ir.Const(2), pos)
	b.Br("mk.head")
	b.Block("mk.head")
	p := b.Load(ir.I64, pos)
	more := b.Cmp(ir.CmpLe, p, b.Bin(ir.BinSub, n, ir.Const(4)))
	b.CondBr(more, "mk.body", "mk.done")

	b.Block("mk.body")
	p2 := b.Load(ir.I64, pos)
	ff := rd8(p2)
	code := rd8(b.Bin(ir.BinAdd, p2, ir.Const(1)))
	seglen := rd16(b.Bin(ir.BinAdd, p2, ir.Const(2)))
	dataOff := b.Bin(ir.BinAdd, p2, ir.Const(4))
	mc := b.Load(ir.I64, b.FieldPtrName(dec, cinfo, "marker_count"))
	b.Store(ir.I64, b.Bin(ir.BinAdd, mc, ir.Const(1)), b.FieldPtrName(dec, cinfo, "marker_count"))
	// Bad framing counts a warning via the error manager.
	b.If("frame", b.Cmp(ir.CmpNe, ff, ir.Const(0xFF)), func() {
		w := b.Load(ir.I64, b.FieldPtrName(errMgr, em, "num_warnings"))
		b.Store(ir.I64, b.Bin(ir.BinAdd, w, ir.Const(1)), b.FieldPtrName(errMgr, em, "num_warnings"))
		b.Store(ir.I32, code, b.FieldPtrName(errMgr, em, "msg_code"))
	}, nil)

	// SOF0 (0xC0): frame header -> decompress struct + component info.
	b.If("sof", b.Cmp(ir.CmpEq, code, ir.Const(0xC0)), func() {
		h := rd16(b.Bin(ir.BinAdd, dataOff, ir.Const(1)))
		w := rd16(b.Bin(ir.BinAdd, dataOff, ir.Const(3)))
		nc := rd8(b.Bin(ir.BinAdd, dataOff, ir.Const(5)))
		b.Store(ir.I32, w, b.FieldPtrName(dec, cinfo, "image_width"))
		b.Store(ir.I32, h, b.FieldPtrName(dec, cinfo, "image_height"))
		b.Store(ir.I32, nc, b.FieldPtrName(dec, cinfo, "num_components"))
		b.Store(ir.I32, w, b.FieldPtrName(tj, inst, "width"))
		b.Store(ir.I32, h, b.FieldPtrName(tj, inst, "height"))
		b.If("nccap", b.Cmp(ir.CmpGt, nc, ir.Const(4)), func() {
			b.Store(ir.I32, ir.Const(4), b.FieldPtrName(dec, cinfo, "num_components"))
		}, nil)
		b.CountedLoop("comps", b.Load(ir.I32, b.FieldPtrName(dec, cinfo, "num_components")), func(i ir.Value) {
			ci := b.Alloc(comp)
			base := b.Bin(ir.BinAdd, dataOff, b.Bin(ir.BinAdd, ir.Const(6), b.Bin(ir.BinMul, i, ir.Const(3))))
			b.Store(ir.I32, rd8(base), b.FieldPtrName(comp, ci, "component_id"))
			samp := rd8(b.Bin(ir.BinAdd, base, ir.Const(1)))
			b.Store(ir.I32, b.Bin(ir.BinShr, samp, ir.Const(4)), b.FieldPtrName(comp, ci, "h_samp_factor"))
			b.Store(ir.I32, b.Bin(ir.BinAnd, samp, ir.Const(15)), b.FieldPtrName(comp, ci, "v_samp_factor"))
			b.Store(ir.I32, rd8(b.Bin(ir.BinAdd, base, ir.Const(2))), b.FieldPtrName(comp, ci, "quant_tbl_no"))
		})
		cd := b.Alloc(deconv)
		b.Store(ir.I32, nc, b.FieldPtrName(deconv, cd, "out_color_components"))
	}, nil)

	// DHT (0xC4): Huffman table -> entropy decoder.
	b.If("dht", b.Cmp(ir.CmpEq, code, ir.Const(0xC4)), func() {
		hd := b.Alloc(huff)
		tc := rd8(dataOff)
		b.Store(ir.I32, b.Bin(ir.BinShr, tc, ir.Const(4)), b.FieldPtrName(huff, hd, "table_class"))
		b.Store(ir.I32, b.Bin(ir.BinAnd, tc, ir.Const(15)), b.FieldPtrName(huff, hd, "table_id"))
		nsym := b.Local(ir.I64)
		b.Store(ir.I64, ir.Const(0), nsym)
		b.CountedLoop("bits", ir.Const(16), func(i ir.Value) {
			c := rd8(b.Bin(ir.BinAdd, dataOff, b.Bin(ir.BinAdd, i, ir.Const(1))))
			s := b.Load(ir.I64, nsym)
			b.Store(ir.I64, b.Bin(ir.BinAdd, s, c), nsym)
		})
		b.Store(ir.I32, b.Load(ir.I64, nsym), b.FieldPtrName(huff, hd, "nsymbols"))
	}, nil)

	// DRI (0xDD): restart interval.
	b.If("dri", b.Cmp(ir.CmpEq, code, ir.Const(0xDD)), func() {
		b.Store(ir.I32, rd16(dataOff), b.FieldPtrName(dec, cinfo, "restart_interval"))
	}, nil)

	// SOS (0xDA): entropy-decode loop with bit-reader state objects.
	b.If("sos", b.Cmp(ir.CmpEq, code, ir.Const(0xDA)), func() {
		br := b.Alloc(bread)
		sv := b.Alloc(sav)
		b.Store(ir.I64, ir.Const(0), b.FieldPtrName(bread, br, "get_buffer"))
		b.Store(ir.I32, ir.Const(0), b.FieldPtrName(bread, br, "bits_left"))
		b.Store(ir.I32, ir.Const(0), b.FieldPtrName(sav, sv, "last_dc_val0"))
		scanEnd := b.Bin(ir.BinSub, n, ir.Const(2))
		b.CountedLoop("scan", b.Bin(ir.BinSub, scanEnd, dataOff), func(i ir.Value) {
			c := rd8(b.Bin(ir.BinAdd, dataOff, i))
			buf := b.Load(ir.I64, b.FieldPtrName(bread, br, "get_buffer"))
			b.Store(ir.I64, b.Bin(ir.BinXor, b.Bin(ir.BinShl, buf, ir.Const(3)), c), b.FieldPtrName(bread, br, "get_buffer"))
			dc := b.Load(ir.I32, b.FieldPtrName(sav, sv, "last_dc_val0"))
			b.Store(ir.I32, b.Bin(ir.BinAdd, dc, c), b.FieldPtrName(sav, sv, "last_dc_val0"))
		})
		b.Store(ir.I64, scanEnd, pos) // scan consumes to EOI
	}, nil)

	p3 := b.Load(ir.I64, pos)
	same := b.Cmp(ir.CmpEq, p3, p2)
	b.If("adv", same, func() {
		b.Store(ir.I64, b.Bin(ir.BinAdd, p2, b.Bin(ir.BinAdd, seglen, ir.Const(2))), pos)
	}, nil)
	b.If("eoi", b.Cmp(ir.CmpEq, code, ir.Const(0xD9)), func() { b.Br("mk.done") }, nil)
	b.Br("mk.head")

	b.Block("mk.done")
	chk := b.Load(ir.I64, b.FieldPtrName(dec, cinfo, "marker_count"))
	w := b.Load(ir.I32, b.FieldPtrName(tj, inst, "width"))
	res := b.Bin(ir.BinXor, b.Bin(ir.BinMul, chk, ir.Const(31)), w)
	b.CallVoid("print_i64", res)
	b.Ret(res)
	return m
}

// CanonicalJPEG returns a well-formed marker stream exercising every
// handler.
func CanonicalJPEG() []byte {
	seg := func(code byte, data []byte) []byte {
		l := len(data) + 2
		out := []byte{0xFF, code, byte(l >> 8), byte(l)}
		return append(out, data...)
	}
	var out []byte
	out = append(out, 0xFF, 0xD8) // SOI
	out = append(out, seg(0xE0, []byte("JFIF\x00\x01\x02"))...)
	sof := []byte{8, 0, 48, 0, 64, 3, 1, 0x22, 0, 2, 0x11, 1, 3, 0x11, 1}
	out = append(out, seg(0xC0, sof)...)
	dht := make([]byte, 17+12)
	dht[0] = 0x10
	for i := 1; i <= 16; i++ {
		dht[i] = byte(i % 3)
	}
	out = append(out, seg(0xC4, dht)...)
	out = append(out, seg(0xDD, []byte{0, 8})...)
	out = append(out, seg(0xDA, []byte{3, 1, 0, 2, 0x11, 3, 0x11, 0, 63, 0})...)
	out = append(out, defaultInput(256, 41)...) // entropy-coded data
	out = append(out, 0xFF, 0xD9)               // EOI
	return out
}
