package workload

import (
	"fmt"
	"hash/fnv"

	"polar/internal/ir"
)

// fillerStructs declares struct types with deterministic pseudo-random
// field inventories (3–8 fields mixing integers, floats, pointers and a
// function pointer). The real applications' type inventories are
// unavailable, so the Table I object lists are reproduced by name with
// synthetic bodies; what matters to every experiment is the number of
// classes, their member kinds, and which of them input data reaches.
func fillerStructs(m *ir.Module, names []string) []*ir.StructType {
	out := make([]*ir.StructType, 0, len(names))
	for _, name := range names {
		h := fnv.New64a()
		h.Write([]byte(name))
		seed := h.Sum64()
		nf := 3 + int(seed%6)
		fields := make([]ir.Field, 0, nf)
		for i := 0; i < nf; i++ {
			seed = seed*6364136223846793005 + 1442695040888963407
			var t ir.Type
			switch (seed >> 33) % 7 {
			case 0:
				t = ir.I32
			case 1, 2:
				t = ir.I64
			case 3:
				t = ir.F64
			case 4:
				t = ir.I16
			case 5:
				t = ir.Raw
			default:
				if i == 0 {
					t = ir.Fptr // vtable-like first member
				} else {
					t = ir.I64
				}
			}
			fields = append(fields, ir.Field{Name: fmt.Sprintf("m%d", i), Type: t})
		}
		out = append(out, m.MustStruct(ir.NewStruct(name, fields...)))
	}
	return out
}

// firstFieldOfKind returns the index of the first field whose type size
// is at least minSize and which is a plain integer/float, or 0.
func firstDataField(st *ir.StructType) int {
	for i, f := range st.Fields {
		switch f.Type.(type) {
		case ir.IntType, ir.FloatType:
			return i
		}
	}
	return 0
}

// secondDataField returns a second distinct data field index, or the
// first one if none exists.
func secondDataField(st *ir.StructType) int {
	first := firstDataField(st)
	for i := first + 1; i < len(st.Fields); i++ {
		switch st.Fields[i].Type.(type) {
		case ir.IntType, ir.FloatType:
			return i
		}
	}
	return first
}

func storeTypeFor(st *ir.StructType, field int) ir.Type {
	if t, ok := st.Fields[field].Type.(ir.IntType); ok {
		return t
	}
	if _, ok := st.Fields[field].Type.(ir.FloatType); ok {
		return ir.I64 // bit-pattern store is fine for taint purposes
	}
	return ir.I64
}

// app is the common scaffold for a SPEC mini-app. Build order inside
// @main:
//
//	call @setup()    — allocates the untainted (config/UI-like) objects
//	call @parse()    — reads input, populates the tainted inventory
//	call @compute(). — the app's algorithm core (per-app kernel)
//	ret checksum
type app struct {
	m        *ir.Module
	name     string
	tainted  []*ir.StructType
	untained []*ir.StructType
	objtab   ir.Value // global: pointer table for tainted objects
}

// newApp declares the object inventories and emits setup() and parse().
//
// parse() allocates one instance of every tainted class, stores
// input-derived bytes into its first two data members, and for every
// third class frees + reallocates it under an input-dependent branch
// (life-cycle taint). setup() allocates the untainted classes and
// initializes them with constants only.
func newApp(name string, taintedNames, untaintedNames []string) *app {
	m := ir.NewModule(name)
	a := &app{m: m, name: name}
	a.tainted = fillerStructs(m, taintedNames)
	a.untained = fillerStructs(m, untaintedNames)
	if _, err := m.AddGlobal("objtab", 8*maxInt(1, len(a.tainted)), nil); err != nil {
		panic(err)
	}
	if _, err := m.AddGlobal("cfgtab", 8*maxInt(1, len(a.untained)), nil); err != nil {
		panic(err)
	}

	// setup(): constant-initialized config objects.
	sb := ir.NewFunc(m, "setup", ir.Void)
	for i, st := range a.untained {
		p := sb.Alloc(st)
		fd := firstDataField(st)
		sb.Store(storeTypeFor(st, fd), ir.Const(int64(1000+i)), sb.FieldPtr(st, p, fd))
		slot := sb.ElemPtr(ir.I64, ir.Global("cfgtab"), ir.Const(int64(i)))
		sb.Store(ir.I64, p, slot)
	}
	sb.Ret()

	// parse(): input-driven population of the tainted inventory.
	pb := ir.NewFunc(m, "parse", ir.Void)
	for i, st := range a.tainted {
		p := pb.Alloc(st)
		slot := pb.ElemPtr(ir.I64, ir.Global("objtab"), ir.Const(int64(i)))
		pb.Store(ir.I64, p, slot)
		v := pb.Call("input_byte", ir.Const(int64(i)))
		fd := firstDataField(st)
		pb.Store(storeTypeFor(st, fd), v, pb.FieldPtr(st, p, fd))
		sd := secondDataField(st)
		if sd != fd {
			mixed := pb.Bin(ir.BinMul, v, ir.Const(int64(7+i)))
			pb.Store(storeTypeFor(st, sd), mixed, pb.FieldPtr(st, p, sd))
		}
		if i%3 == 0 {
			// Input-dependent life cycle: free + realloc when the input
			// byte is large.
			cond := pb.Cmp(ir.CmpGt, v, ir.Const(96))
			stLocal := st
			idx := int64(i)
			pb.If(fmt.Sprintf("lc%d", i), cond, func() {
				old := pb.Load(ir.PtrTo(stLocal), pb.ElemPtr(ir.I64, ir.Global("objtab"), ir.Const(idx)))
				pb.Free(old)
				np := pb.Alloc(stLocal)
				fd2 := firstDataField(stLocal)
				pb.Store(storeTypeFor(stLocal, fd2), v, pb.FieldPtr(stLocal, np, fd2))
				pb.Store(ir.I64, np, pb.ElemPtr(ir.I64, ir.Global("objtab"), ir.Const(idx)))
			}, nil)
		}
	}
	pb.Ret()
	a.objtab = ir.Global("objtab")
	return a
}

// finish emits @main and returns the workload. compute must already be
// defined as @compute returning i64 (the checksum).
func (a *app) finish(desc string, input []byte, paperCount int, paperOverhead float64) *Workload {
	b := ir.NewFunc(a.m, "main", ir.I64)
	b.CallVoid("setup")
	b.CallVoid("parse")
	sum := b.Call("compute")
	b.CallVoid("print_i64", sum)
	b.Ret(sum)

	names := make([]string, len(a.tainted))
	for i, st := range a.tainted {
		names[i] = st.Name
	}
	return &Workload{
		Name:              a.name,
		Description:       desc,
		Module:            a.m,
		Input:             input,
		ExpectedTainted:   names,
		PaperTaintedCount: paperCount,
		PaperOverheadPct:  paperOverhead,
	}
}

// loadObj emits a typed load of tainted-object pointer i from the
// table. The static pointer type lets the instrumentation pass see
// subsequent free/memcpy uses of the register.
func (a *app) loadObj(b *ir.Builder, i int) ir.Value {
	return b.Load(ir.PtrTo(a.tainted[i]), b.ElemPtr(ir.I64, a.objtab, ir.Const(int64(i))))
}

// emitFiller emits n iterations of un-instrumented arithmetic work (the
// I/O-and-arithmetic share of a real application, §V.B: "the performance
// impact ... will be low for applications that focus on other
// operations, such as I/O or arithmetics").
func emitFiller(b *ir.Builder, label string, n int64) ir.Value {
	acc := b.Local(ir.I64)
	b.Store(ir.I64, ir.Const(0x9e37), acc)
	b.CountedLoop(label, ir.Const(n), func(i ir.Value) {
		v := b.Load(ir.I64, acc)
		v = b.Bin(ir.BinXor, v, b.Bin(ir.BinShl, v, ir.Const(13)))
		v = b.Bin(ir.BinXor, v, b.Bin(ir.BinShr, v, ir.Const(7)))
		v = b.Bin(ir.BinAdd, v, i)
		b.Store(ir.I64, v, acc)
	})
	return b.Load(ir.I64, acc)
}

// readInputTo emits: copy the whole input into the named global buffer,
// returning the length register.
func readInputTo(b *ir.Builder, global string) ir.Value {
	n := b.Call("input_len")
	b.Call("input_read", ir.Global(global), ir.Const(0), n)
	return n
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
