package workload

import "polar/internal/ir"

// chakraTaintedNames is the 42-class inventory Table I reports for
// ChakraCore 1.10 (named samples from the paper plus representative
// engine types; '::' becomes '_').
func chakraTaintedNames() []string {
	return []string{
		"Js_HashedCharacterBuffer", "Js_OpLayoutT_Reg1", "JsUtil_CharacterBuffer",
		"Js_FunctionBody", "Js_JavascriptFunction", "Js_DynamicObject",
		"Js_DynamicTypeHandler", "Js_PathTypeHandler", "Js_SimpleDictionaryTypeHandler",
		"Js_JavascriptArray", "Js_JavascriptNativeIntArray", "Js_JavascriptNativeFloatArray",
		"Js_SparseArraySegment", "Js_JavascriptString", "Js_ConcatString",
		"Js_CompoundString", "Js_PropertyRecord", "Js_PropertyString",
		"Js_RecyclableObject", "Js_Type", "Js_DynamicType", "Js_ScriptContext",
		"Js_ByteCodeReader", "Js_ByteCodeWriter", "Js_OpLayoutT_Reg2",
		"Js_OpLayoutT_Reg3", "Js_OpLayoutCallI", "Js_OpLayoutElementI",
		"Js_InterpreterStackFrame", "Js_JavascriptNumber", "Js_TaggedInt",
		"Js_FrameDisplay", "Js_ScopeObject", "Js_ActivationObject", "Js_Arguments",
		"Js_FunctionInfo", "Js_ParseableFunctionInfo", "Js_DeferDeserializeFunctionInfo",
		"JsUtil_GrowingArray", "JsUtil_List", "JsUtil_BaseDictionary", "Memory_Recycler",
	}
}

// ChakraModel builds the ChakraCore stand-in used for the Table I row:
// a script-runtime object model whose "script loading" phase populates
// the engine types from untrusted script bytes, followed by a bytecode
// dispatch loop over interpreter frame objects. The per-benchmark JS
// kernels of Fig. 7 / Table II live in jsbench.go and share this object
// model's allocation style.
func ChakraModel() *Workload {
	a := newApp("chakracore-1.10", chakraTaintedNames(),
		[]string{"ThreadContext_cfg", "JITManager_cfg", "Output_cfg"})
	m := a.m
	fnBody := a.tainted[3]  // Js_FunctionBody
	frame := a.tainted[28]  // Js_InterpreterStackFrame
	reader := a.tainted[22] // Js_ByteCodeReader
	if _, err := m.AddGlobal("bytecode", 2048, nil); err != nil {
		panic(err)
	}

	b := ir.NewFunc(m, "compute", ir.I64)
	n := readInputTo(b, "bytecode")
	fb := a.loadObj(b, 3)
	fr := a.loadObj(b, 28)
	rd := a.loadObj(b, 22)
	fdB := firstDataField(fnBody)
	fdF := firstDataField(frame)
	fdR := firstDataField(reader)
	b.Store(storeTypeFor(fnBody, fdB), ir.Const(0), b.FieldPtr(fnBody, fb, fdB))
	b.Store(storeTypeFor(frame, fdF), ir.Const(0), b.FieldPtr(frame, fr, fdF))
	b.Store(storeTypeFor(reader, fdR), ir.Const(0), b.FieldPtr(reader, rd, fdR))
	// Dispatch loop: 3 passes over the bytecode, updating the reader
	// cursor and the frame accumulator per opcode.
	b.CountedLoop("pass", ir.Const(3), func(pass ir.Value) {
		b.CountedLoop("dispatch", n, func(i ir.Value) {
			op := b.Load(ir.I8, b.ElemPtr(ir.I8, ir.Global("bytecode"), i))
			cur := b.Load(storeTypeFor(reader, fdR), b.FieldPtr(reader, rd, fdR))
			b.Store(storeTypeFor(reader, fdR), b.Bin(ir.BinAdd, cur, ir.Const(1)), b.FieldPtr(reader, rd, fdR))
			acc := b.Load(storeTypeFor(frame, fdF), b.FieldPtr(frame, fr, fdF))
			b.Store(storeTypeFor(frame, fdF), b.Bin(ir.BinXor, b.Bin(ir.BinShl, acc, ir.Const(1)), op), b.FieldPtr(frame, fr, fdF))
		})
	})
	f := emitFiller(b, "jit", 100_000)
	res := b.Load(storeTypeFor(frame, fdF), b.FieldPtr(frame, fr, fdF))
	b.Ret(b.Bin(ir.BinXor, res, f))

	return a.finish(
		"script-engine object model: loader-populated engine types + dispatch loop",
		defaultInput(1200, 43), 42, -1)
}
