package workload

import (
	"bytes"
	"testing"

	"polar/internal/core"
	"polar/internal/instrument"
	"polar/internal/ir"
	"polar/internal/taint"
	"polar/internal/vm"
)

func runBaseline(t *testing.T, w *Workload) (int64, []byte) {
	t.Helper()
	v, err := vm.New(ir.Clone(w.Module), vm.WithInput(w.Input))
	if err != nil {
		t.Fatalf("%s: vm: %v", w.Name, err)
	}
	res, err := v.Run(w.Args...)
	if err != nil {
		t.Fatalf("%s: baseline run: %v", w.Name, err)
	}
	return res, v.Output()
}

func runHardened(t *testing.T, w *Workload, seed int64) (int64, []byte, *core.Runtime) {
	t.Helper()
	ins, err := instrument.Apply(w.Module, nil)
	if err != nil {
		t.Fatalf("%s: instrument: %v", w.Name, err)
	}
	v, err := vm.New(ins.Module, vm.WithInput(w.Input))
	if err != nil {
		t.Fatalf("%s: vm: %v", w.Name, err)
	}
	rt := core.New(ins.Table, core.DefaultConfig(seed))
	rt.Attach(v)
	res, err := v.Run(w.Args...)
	if err != nil {
		t.Fatalf("%s: hardened run (seed %d): %v", w.Name, seed, err)
	}
	return res, v.Output(), rt
}

// TestWorkloadsValidate checks every registered workload builds a valid
// module with the advertised tainted-type inventory size.
func TestWorkloadsValidate(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			if err := w.Validate(); err != nil {
				t.Fatal(err)
			}
			if w.PaperTaintedCount >= 0 && w.Name != "libpng-1.6.34" {
				if got := len(w.ExpectedTainted); got != w.PaperTaintedCount {
					t.Errorf("inventory size = %d, want Table I count %d", got, w.PaperTaintedCount)
				}
			}
		})
	}
}

// TestWorkloadsDeterministicUnderPOLaR is the compatibility experiment
// (§V.A): every workload must produce the same result hardened as
// unhardened, across several randomization seeds.
func TestWorkloadsDeterministicUnderPOLaR(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			want, wantOut := runBaseline(t, w)
			for seed := int64(1); seed <= 3; seed++ {
				got, gotOut, _ := runHardened(t, w, seed)
				if got != want {
					t.Fatalf("seed %d: hardened result %d != baseline %d", seed, got, want)
				}
				if !bytes.Equal(gotOut, wantOut) {
					t.Fatalf("seed %d: hardened output differs from baseline", seed)
				}
			}
		})
	}
}

// TestTaintClassMatchesTableI runs the TaintClass analysis on each
// workload's canonical input and compares the discovered object set with
// the expected inventory (Table I).
func TestTaintClassMatchesTableI(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			rep, err := taint.AnalyzeOne(w.Module, w.Input, taint.RunOptions{IgnoreRunErrors: true})
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			got := rep.TaintedClasses()
			want := append([]string(nil), w.ExpectedTainted...)
			sortStrings(want)
			if !equalStrings(got, want) {
				t.Errorf("tainted set mismatch:\n got  %v\n want %v", got, want)
			}
		})
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
