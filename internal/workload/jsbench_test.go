package workload

import (
	"testing"

	"polar/internal/core"
	"polar/internal/instrument"
	"polar/internal/ir"
	"polar/internal/vm"
)

func TestJSKernelsRunAndMatch(t *testing.T) {
	ks := JSBenchmarks()
	if len(ks) != 67 {
		t.Fatalf("kernel count = %d, want 67", len(ks))
	}
	for _, k := range ks {
		k := k
		t.Run(k.Suite+"/"+k.Name, func(t *testing.T) {
			if err := ir.Validate(k.Module); err != nil {
				t.Fatal(err)
			}
			v, err := vm.New(ir.Clone(k.Module), vm.WithInput(k.Input))
			if err != nil {
				t.Fatal(err)
			}
			want, err := v.Run()
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			ins, err := instrument.Apply(k.Module, nil)
			if err != nil {
				t.Fatal(err)
			}
			hv, err := vm.New(ins.Module, vm.WithInput(k.Input))
			if err != nil {
				t.Fatal(err)
			}
			rt := core.New(ins.Table, core.DefaultConfig(5))
			rt.Attach(hv)
			got, err := hv.Run()
			if err != nil {
				t.Fatalf("hardened: %v", err)
			}
			if got != want {
				t.Fatalf("hardened %d != baseline %d", got, want)
			}
		})
	}
}

func TestJSSuiteRosterSizes(t *testing.T) {
	// Fig. 7's panel sizes: Kraken 14, SunSpider 26, Octane 17, JetStream 10.
	counts := map[string]int{}
	templates := map[string]bool{}
	for _, k := range JSBenchmarks() {
		counts[k.Suite]++
		templates[k.Template] = true
	}
	want := map[string]int{"Kraken": 14, "Sunspider": 26, "Octane": 17, "Jetstream": 10}
	for suite, n := range want {
		if counts[suite] != n {
			t.Errorf("%s roster = %d, want %d", suite, counts[suite], n)
		}
	}
	// Every kernel template is exercised by at least one benchmark.
	for _, tmpl := range []string{"crypto", "float", "pixel", "parse", "tree", "numeric", "bitops", "string", "scan", "hash", "sort", "recurse", "grid"} {
		if !templates[tmpl] {
			t.Errorf("template %q unused", tmpl)
		}
	}
}

func TestJSScoreBasedFlagMatchesSuite(t *testing.T) {
	for _, k := range JSBenchmarks() {
		wantScore := k.Suite == "Octane" || k.Suite == "Jetstream"
		if k.ScoreBased != wantScore {
			t.Errorf("%s/%s: ScoreBased = %v", k.Suite, k.Name, k.ScoreBased)
		}
	}
}

func TestJSKernelsHaveEngineObjects(t *testing.T) {
	// Every kernel must allocate the engine object model (the thing
	// POLaR randomizes) — otherwise its POLaR column measures nothing.
	for _, k := range JSBenchmarks() {
		if k.Module.Structs["Js_FunctionBody"] == nil || k.Module.Structs["Js_JavascriptArray"] == nil {
			t.Errorf("%s/%s: engine object model missing", k.Suite, k.Name)
		}
	}
}
