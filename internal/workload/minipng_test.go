package workload

import (
	"errors"
	"strings"
	"testing"

	"polar/internal/heap"
	"polar/internal/ir"
	"polar/internal/vm"
)

func runPNG(t *testing.T, input []byte) (int64, error) {
	t.Helper()
	png := LibPNG()
	v, err := vm.New(ir.Clone(png.Module), vm.WithInput(input), vm.WithFuel(20_000_000))
	if err != nil {
		t.Fatal(err)
	}
	return v.Run()
}

func TestCanonicalPNGParses(t *testing.T) {
	res, err := runPNG(t, CanonicalPNG())
	if err != nil {
		t.Fatalf("canonical input crashed: %v", err)
	}
	if res == -1 {
		t.Fatal("canonical input rejected as bad signature")
	}
}

func TestBadSignatureRejected(t *testing.T) {
	res, err := runPNG(t, []byte("not a png at all"))
	if err != nil {
		t.Fatalf("bad signature crashed instead of returning: %v", err)
	}
	if res != -1 {
		t.Fatalf("bad signature returned %d, want -1", res)
	}
}

func TestEmptyAndTruncatedInputsSafe(t *testing.T) {
	for _, in := range [][]byte{nil, {137}, pngSig, append(append([]byte{}, pngSig...), 0, 0)} {
		if _, err := runPNG(t, in); err != nil {
			t.Fatalf("input %v crashed: %v", in, err)
		}
	}
}

// TestCVEBugShapesTrigger verifies each CVE input actually drives its
// bug path (crash or survivable corruption), not just taint.
func TestCVEBugShapesTrigger(t *testing.T) {
	byCVE := map[string]PNGCase{}
	for _, c := range LibPNGCVECases() {
		byCVE[c.CVE] = c
	}

	// 2016-10087: null dereference must fault.
	_, err := runPNG(t, byCVE["2016-10087"].Input)
	if !errors.Is(err, vm.ErrNullDeref) {
		t.Errorf("2016-10087: want null-deref fault, got %v", err)
	}

	// 2013-7353: the unchecked allocation must blow out the heap.
	_, err = runPNG(t, byCVE["2013-7353"].Input)
	if !errors.Is(err, heap.ErrOutOfMemory) {
		t.Errorf("2013-7353: want out-of-memory, got %v", err)
	}

	// The overflow-shaped inputs corrupt globals/heap but survive (the
	// simulated overflow is bounded), so they must parse to completion.
	for _, cve := range []string{"2015-8126", "2015-7981", "2015-0973", "2011-3048"} {
		if _, err := runPNG(t, byCVE[cve].Input); err != nil {
			t.Errorf("%s: unexpected crash: %v", cve, err)
		}
	}
}

func TestCVEExpectationsSubsetOfInventory(t *testing.T) {
	inv := map[string]bool{}
	for _, n := range pngTaintedNames() {
		inv[n] = true
	}
	for _, c := range LibPNGCVECases() {
		for _, o := range c.ExpectedObjects {
			if !inv[o] {
				t.Errorf("CVE-%s expects unknown object %q", c.CVE, o)
			}
		}
	}
}

func TestChunkHelpers(t *testing.T) {
	c := chunk("tEXt", []byte("ab"))
	if len(c) != 4+4+2+4 {
		t.Fatalf("chunk len = %d", len(c))
	}
	if string(c[4:8]) != "tEXt" {
		t.Fatalf("chunk tag = %q", c[4:8])
	}
	if c[3] != 2 {
		t.Fatalf("chunk len byte = %d", c[3])
	}
	r := rawChunk("spAM", 0x01020304, nil)
	if r[0] != 1 || r[1] != 2 || r[2] != 3 || r[3] != 4 {
		t.Fatalf("rawChunk length bytes = %v", r[:4])
	}
}

func TestJPEGCanonicalParses(t *testing.T) {
	jpeg := LibJPEG()
	v, err := vm.New(ir.Clone(jpeg.Module), vm.WithInput(jpeg.Input))
	if err != nil {
		t.Fatal(err)
	}
	res, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res == -1 {
		t.Fatal("canonical JPEG rejected")
	}
	// The width parsed from the SOF0 header is 64 (see CanonicalJPEG).
	out := string(v.Output())
	if !strings.Contains(out, "\n") {
		t.Fatalf("no checksum printed: %q", out)
	}
}

func TestJPEGRejectsBadSOI(t *testing.T) {
	jpeg := LibJPEG()
	v, err := vm.New(ir.Clone(jpeg.Module), vm.WithInput([]byte{0x00, 0x11, 0x22}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res != -1 {
		t.Fatalf("bad SOI returned %d, want -1", res)
	}
}

func TestJPEGTruncatedSegmentsSafe(t *testing.T) {
	jpeg := LibJPEG()
	full := CanonicalJPEG()
	for _, cut := range []int{2, 3, 6, 10, 20, len(full) / 2} {
		if cut > len(full) {
			continue
		}
		v, err := vm.New(ir.Clone(jpeg.Module), vm.WithInput(full[:cut]), vm.WithFuel(5_000_000))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := v.Run(); err != nil {
			t.Fatalf("truncation at %d crashed: %v", cut, err)
		}
	}
}

func TestInputGenerators(t *testing.T) {
	if len(defaultInput(100, 1)) != 100 {
		t.Error("defaultInput length")
	}
	a, b := defaultInput(64, 1), defaultInput(64, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("defaultInput not deterministic")
		}
	}
	c := compressibleInput(200, 3)
	if len(c) != 200 {
		t.Error("compressibleInput length")
	}
	runs := 0
	for i := 1; i < len(c); i++ {
		if c[i] == c[i-1] {
			runs++
		}
	}
	if runs < 50 {
		t.Errorf("compressibleInput has only %d repeated-byte positions", runs)
	}
	x := xmlishInput(300)
	if len(x) != 300 {
		t.Error("xmlishInput length")
	}
	if !strings.Contains(string(x), "<") || !strings.Contains(string(x), ">") {
		t.Error("xmlishInput lacks markup characters")
	}
}
