package workload

import "polar/internal/ir"

// Scale note: operation counts are the Table III profiles scaled down
// (roughly 1/1000–1/2000, capped so each app stays around a million
// interpreted instructions). Ratios between the columns — which app is
// allocation-bound, which is member-access-bound — are what the
// experiments reproduce; see DESIGN.md §5.

// Perlbench builds 400.perlbench: an interpreter-flavoured kernel that
// arena-allocates scalar-value (sv) objects per "opcode" and repeatedly
// walks them updating reference counts. Profile: many allocations, no
// frees (perl's arena), very member-access-heavy.
func Perlbench() *Workload {
	a := newApp("400.perlbench",
		[]string{
			"sv", "stat", "cop", "sublex_info", "jmpenv", "logop", "unop",
			"scan_data_t", "RExC_state_t", "op", "svop", "listop", "pmop",
			"gv", "hv", "av", "cv", "he", "xpv", "regnode",
		},
		[]string{"PerlInterpreter_cfg", "perl_debug_pad", "perlio_funcs"})
	m := a.m
	sv := a.tainted[0]
	const nSV = 700
	if _, err := m.AddGlobal("svtab", 8*nSV, nil); err != nil {
		panic(err)
	}

	b := ir.NewFunc(m, "compute", ir.I64)
	// Arena-allocate nSV scalar values seeded from the input.
	seed0 := b.Call("input_byte", ir.Const(2))
	b.CountedLoop("mk", ir.Const(nSV), func(i ir.Value) {
		p := b.Alloc(sv)
		fd := firstDataField(sv)
		v := b.Bin(ir.BinXor, seed0, b.Bin(ir.BinMul, i, ir.Const(2654435761)))
		b.Store(storeTypeFor(sv, fd), v, b.FieldPtr(sv, p, fd))
		sd := secondDataField(sv)
		b.Store(storeTypeFor(sv, sd), ir.Const(1), b.FieldPtr(sv, p, sd))
		b.Store(ir.I64, p, b.ElemPtr(ir.I64, ir.Global("svtab"), i))
	})
	// 20 refcount sweeps over the arena: 2 member accesses per sv.
	acc := b.Local(ir.I64)
	b.Store(ir.I64, ir.Const(0), acc)
	b.CountedLoop("sweep", ir.Const(10), func(pass ir.Value) {
		b.CountedLoop("walk", ir.Const(nSV), func(i ir.Value) {
			p := b.Load(ir.PtrTo(sv), b.ElemPtr(ir.I64, ir.Global("svtab"), i))
			sd := secondDataField(sv)
			rc := b.Load(storeTypeFor(sv, sd), b.FieldPtr(sv, p, sd))
			b.Store(storeTypeFor(sv, sd), b.Bin(ir.BinAdd, rc, ir.Const(1)), b.FieldPtr(sv, p, sd))
			s := b.Load(ir.I64, acc)
			b.Store(ir.I64, b.Bin(ir.BinAdd, s, rc), acc)
		})
	})
	f := emitFiller(b, "opdispatch", 300_000)
	b.Ret(b.Bin(ir.BinXor, b.Load(ir.I64, acc), f))

	return a.finish(
		"interpreter-style arena: per-op sv allocation, hot refcount sweeps",
		defaultInput(2048, 11), 20, 5.0)
}

// Bzip2 builds 401.bzip2: run-length encoding over the input with
// stream-state counters kept in a bzFile object. Profile: almost no
// allocation, heavy member access in the byte loop.
func Bzip2() *Workload {
	a := newApp("401.bzip2",
		[]string{"bzFile", "UInt64", "spec_fd_t"},
		[]string{"bz_config", "bz_huff_tables"})
	m := a.m
	bz := a.tainted[0]
	if _, err := m.AddGlobal("inbuf", 4096, nil); err != nil {
		panic(err)
	}
	if _, err := m.AddGlobal("outbuf", 8192, nil); err != nil {
		panic(err)
	}

	b := ir.NewFunc(m, "compute", ir.I64)
	n := readInputTo(b, "inbuf")
	st := a.loadObj(b, 0)
	fd := firstDataField(bz)
	sd := secondDataField(bz)
	b.Store(storeTypeFor(bz, fd), ir.Const(0), b.FieldPtr(bz, st, fd))
	b.Store(storeTypeFor(bz, sd), ir.Const(0), b.FieldPtr(bz, st, sd))
	// Temp stream objects churned per block (36 in the paper's count).
	b.CountedLoop("blocks", ir.Const(36), func(i ir.Value) {
		t := b.Alloc(a.tainted[1]) // UInt64 work item
		fdt := firstDataField(a.tainted[1])
		b.Store(storeTypeFor(a.tainted[1], fdt), i, b.FieldPtr(a.tainted[1], t, fdt))
		b.Free(t)
	})
	// 6 RLE passes: per byte, update run counters in the bzFile object.
	outp := b.Local(ir.I64)
	b.Store(ir.I64, ir.Const(0), outp)
	b.CountedLoop("pass", ir.Const(6), func(pass ir.Value) {
		prev := b.Local(ir.I64)
		run := b.Local(ir.I64)
		b.Store(ir.I64, ir.Const(-1), prev)
		b.Store(ir.I64, ir.Const(0), run)
		b.CountedLoop("bytes", n, func(i ir.Value) {
			c := b.Load(ir.I8, b.ElemPtr(ir.I8, ir.Global("inbuf"), i))
			pv := b.Load(ir.I64, prev)
			same := b.Cmp(ir.CmpEq, c, pv)
			b.If("run", same, func() {
				r := b.Load(ir.I64, run)
				b.Store(ir.I64, b.Bin(ir.BinAdd, r, ir.Const(1)), run)
			}, func() {
				// Flush run: two member updates on the stream object.
				tot := b.Load(storeTypeFor(bz, fd), b.FieldPtr(bz, st, fd))
				r := b.Load(ir.I64, run)
				b.Store(storeTypeFor(bz, fd), b.Bin(ir.BinAdd, tot, r), b.FieldPtr(bz, st, fd))
				b.Store(ir.I64, c, prev)
				b.Store(ir.I64, ir.Const(1), run)
			})
		})
	})
	f := emitFiller(b, "huffman", 300_000)
	crc := b.Load(storeTypeFor(bz, fd), b.FieldPtr(bz, st, fd))
	b.Ret(b.Bin(ir.BinXor, crc, f))

	return a.finish(
		"run-length encoder with stream counters in a bzFile object",
		compressibleInput(3000, 5), 3, 5.0)
}

// GCC builds 403.gcc: IR-node churn — thousands of short-lived typed
// node allocations whose members are barely touched (Table III shows
// gcc with 51M allocs/50M frees and zero instrumented member accesses).
func GCC() *Workload {
	a := newApp("403.gcc",
		[]string{
			"realvaluetype", "ix86_address", "type_hash", "stat", "cb_args",
			"mem_attrs", "addr_const", "ix86_args", "tree_node", "rtx_def",
			"basic_block_def", "edge_def", "loop", "et_node", "function",
			"expr_status", "emit_status", "varasm_status", "sequence_stack",
			"rtvec_def", "machine_function", "stack_local_entry", "ix86_frame",
			"reg_stat_struct", "insn_link", "df_ref_info", "df_insn_info",
			"value_data", "value_data_entry", "elt_list", "elt_loc_list",
			"cselib_val_struct", "attr_desc",
		},
		[]string{"gcc_options", "lang_hooks", "target_globals"})
	m := a.m

	b := ir.NewFunc(m, "compute", ir.I64)
	churn := []*ir.StructType{a.tainted[2], a.tainted[8], a.tainted[9]} // type_hash, tree_node, rtx_def
	acc := b.Local(ir.I64)
	b.Store(ir.I64, ir.Const(0), acc)
	for ci, st := range churn {
		stl := st
		b.CountedLoop(fmt2("churn", ci), ir.Const(1000), func(i ir.Value) {
			p := b.Alloc(stl)
			b.Free(p)
			s := b.Load(ir.I64, acc)
			b.Store(ir.I64, b.Bin(ir.BinAdd, s, ir.Const(1)), acc)
		})
	}
	f := emitFiller(b, "fold", 800_000)
	b.Ret(b.Bin(ir.BinXor, b.Load(ir.I64, acc), f))

	return a.finish(
		"compiler-style node churn: 12k short-lived typed allocations",
		defaultInput(1024, 3), 33, 5.0)
}

// MCF builds 429.mcf: a single long-lived network object whose cost and
// flow members are hammered in the arc-scanning loop. Profile: one
// allocation, pure member access, ~100% cache hit (Table III).
func MCF() *Workload {
	a := newApp("429.mcf",
		[]string{"network", "basket"},
		[]string{"mcf_params"})
	m := a.m
	net := a.tainted[0]
	const nArcs = 2048
	if _, err := m.AddGlobal("arcs", 16*nArcs, nil); err != nil {
		panic(err)
	}

	b := ir.NewFunc(m, "compute", ir.I64)
	p := a.loadObj(b, 0)
	fd := firstDataField(net)
	sd := secondDataField(net)
	b.Store(storeTypeFor(net, fd), ir.Const(0), b.FieldPtr(net, p, fd))
	b.Store(storeTypeFor(net, sd), ir.Const(0), b.FieldPtr(net, p, sd))
	// Initialize arc costs (raw array: un-instrumented).
	b.CountedLoop("initarcs", ir.Const(nArcs), func(i ir.Value) {
		c := b.Bin(ir.BinRem, b.Bin(ir.BinMul, i, ir.Const(48271)), ir.Const(9973))
		b.Store(ir.I64, c, b.ElemPtr(ir.I64, ir.Global("arcs"), b.Bin(ir.BinMul, i, ir.Const(2))))
	})
	// 5 simplex-ish sweeps: per arc, two member accesses on the network.
	b.CountedLoop("sweep", ir.Const(3), func(pass ir.Value) {
		b.CountedLoop("arcs", ir.Const(nArcs), func(i ir.Value) {
			c := b.Load(ir.I64, b.ElemPtr(ir.I64, ir.Global("arcs"), b.Bin(ir.BinMul, i, ir.Const(2))))
			tot := b.Load(storeTypeFor(net, fd), b.FieldPtr(net, p, fd))
			b.Store(storeTypeFor(net, fd), b.Bin(ir.BinAdd, tot, c), b.FieldPtr(net, p, fd))
		})
	})
	f := emitFiller(b, "pricing", 400_000)
	res := b.Load(storeTypeFor(net, fd), b.FieldPtr(net, p, fd))
	b.Ret(b.Bin(ir.BinXor, res, f))

	return a.finish(
		"min-cost-flow arc sweeps against one long-lived network object",
		defaultInput(512, 7), 2, 5.0)
}

// Gobmk builds 445.gobmk: board-scanning evaluation with dragon/worm
// statistics objects updated per point — the most member-access-heavy
// app of Table III after sjeng.
func Gobmk() *Workload {
	a := newApp("445.gobmk",
		[]string{
			"move_data", "SGFTree_t", "gg_rand_state", "worm_data", "dragon_data",
			"Hash_data", "string_data", "board_state", "eye_data", "half_eye_data",
			"surround_data", "dfa_rt_t", "pattern_data", "connection_data",
			"readresult", "hashnode", "cache_stats", "SGFProperty_t", "SGFNode_t",
			"gomoku_state", "owl_move_data",
		},
		[]string{"gobmk_ui", "sgf_renderer"})
	m := a.m
	dragon := a.tainted[4]
	const board = 361 // 19x19
	if _, err := m.AddGlobal("board", board, nil); err != nil {
		panic(err)
	}

	b := ir.NewFunc(m, "compute", ir.I64)
	// Seed the board from input bytes.
	b.CountedLoop("seed", ir.Const(board), func(i ir.Value) {
		v := b.Call("input_byte", b.Bin(ir.BinRem, i, ir.Const(64)))
		st3 := b.Bin(ir.BinRem, v, ir.Const(3))
		b.Store(ir.I8, st3, b.ElemPtr(ir.I8, ir.Global("board"), i))
	})
	// 40 small per-move scratch allocations.
	mv := a.tainted[0]
	b.CountedLoop("moves", ir.Const(40), func(i ir.Value) {
		p := b.Alloc(mv)
		fd := firstDataField(mv)
		b.Store(storeTypeFor(mv, fd), i, b.FieldPtr(mv, p, fd))
	})
	// 40 evaluation passes; per point, update dragon statistics (two
	// member accesses).
	d := a.loadObj(b, 4)
	fd := firstDataField(dragon)
	b.Store(storeTypeFor(dragon, fd), ir.Const(0), b.FieldPtr(dragon, d, fd))
	b.CountedLoop("eval", ir.Const(20), func(pass ir.Value) {
		b.CountedLoop("pts", ir.Const(board), func(i ir.Value) {
			s := b.Load(ir.I8, b.ElemPtr(ir.I8, ir.Global("board"), i))
			cur := b.Load(storeTypeFor(dragon, fd), b.FieldPtr(dragon, d, fd))
			b.Store(storeTypeFor(dragon, fd), b.Bin(ir.BinAdd, cur, s), b.FieldPtr(dragon, d, fd))
		})
	})
	f := emitFiller(b, "patterns", 400_000)
	res := b.Load(storeTypeFor(dragon, fd), b.FieldPtr(dragon, d, fd))
	b.Ret(b.Bin(ir.BinXor, res, f))

	return a.finish(
		"Go board evaluation sweeps updating dragon statistics objects",
		defaultInput(512, 13), 21, 5.0)
}

// Hmmer builds 456.hmmer: a Viterbi-flavoured dynamic program over a
// raw score matrix, with per-cell accumulator updates in one long-lived
// comp object. Profile: one allocation, member-access-heavy.
func Hmmer() *Workload {
	a := newApp("456.hmmer",
		[]string{"seqinfo_s", "comp", "exec", "ssifile_s"},
		[]string{"hmmer_alphabet"})
	m := a.m
	comp := a.tainted[1]
	const rows, cols = 64, 96
	if _, err := m.AddGlobal("dp", 8*cols, nil); err != nil {
		panic(err)
	}
	if _, err := m.AddGlobal("seq", 256, nil); err != nil {
		panic(err)
	}

	b := ir.NewFunc(m, "compute", ir.I64)
	b.Call("input_read", ir.Global("seq"), ir.Const(0), ir.Const(256))
	c := a.loadObj(b, 1)
	fd := firstDataField(comp)
	b.Store(storeTypeFor(comp, fd), ir.Const(0), b.FieldPtr(comp, c, fd))
	b.CountedLoop("row", ir.Const(rows), func(r ir.Value) {
		b.CountedLoop("col", ir.Const(cols), func(j ir.Value) {
			prev := b.Load(ir.I64, b.ElemPtr(ir.I64, ir.Global("dp"), j))
			sc := b.Load(ir.I8, b.ElemPtr(ir.I8, ir.Global("seq"), b.Bin(ir.BinRem, b.Bin(ir.BinAdd, r, j), ir.Const(256))))
			nv := b.Bin(ir.BinAdd, prev, sc)
			b.Store(ir.I64, nv, b.ElemPtr(ir.I64, ir.Global("dp"), j))
			// Best-score accumulator in the comp object (2 accesses).
			best := b.Load(storeTypeFor(comp, fd), b.FieldPtr(comp, c, fd))
			gt := b.Cmp(ir.CmpGt, nv, best)
			b.If("best", gt, func() {
				b.Store(storeTypeFor(comp, fd), nv, b.FieldPtr(comp, c, fd))
			}, nil)
		})
	})
	f := emitFiller(b, "posterior", 300_000)
	res := b.Load(storeTypeFor(comp, fd), b.FieldPtr(comp, c, fd))
	b.Ret(b.Bin(ir.BinXor, res, f))

	return a.finish(
		"profile-HMM dynamic program with score accumulators in a comp object",
		defaultInput(256, 17), 4, 5.0)
}

// Sjeng builds 458.sjeng: the paper's worst case (~30% overhead) — a
// move-generation loop that allocates, copies and frees a move object
// per candidate move. "The major bottleneck of the program's
// performance is object allocation/deallocation" (§V.B).
func Sjeng() *Workload {
	a := newApp("458.sjeng",
		[]string{"move_s", "move_x"},
		[]string{"sjeng_book"})
	m := a.m
	moveS := a.tainted[0]
	moveX := a.tainted[1]

	b := ir.NewFunc(m, "compute", ir.I64)
	acc := b.Local(ir.I64)
	b.Store(ir.I64, ir.Const(0), acc)
	scratch := a.loadObj(b, 1) // long-lived move_x the generator copies into
	fdX := firstDataField(moveX)
	b.Store(storeTypeFor(moveX, fdX), ir.Const(0), b.FieldPtr(moveX, scratch, fdX))
	b.CountedLoop("gen", ir.Const(4000), func(i ir.Value) {
		p := b.Alloc(moveS)
		fd := firstDataField(moveS)
		sd := secondDataField(moveS)
		from := b.Bin(ir.BinRem, b.Bin(ir.BinMul, i, ir.Const(0x45d9f3b)), ir.Const(64))
		to := b.Bin(ir.BinRem, b.Bin(ir.BinMul, i, ir.Const(0x119de1f3)), ir.Const(64))
		b.Store(storeTypeFor(moveS, fd), from, b.FieldPtr(moveS, p, fd))
		b.Store(storeTypeFor(moveS, sd), to, b.FieldPtr(moveS, p, sd))
		// Copy the candidate into the scratch move (typed memcpy).
		q := b.Alloc(moveS)
		b.Memcpy(q, p, ir.Const(int64(moveS.Size())))
		got := b.Load(storeTypeFor(moveS, sd), b.FieldPtr(moveS, q, sd))
		s := b.Load(ir.I64, acc)
		b.Store(ir.I64, b.Bin(ir.BinAdd, s, got), acc)
		// Board-state updates against the long-lived scratch move: the
		// repeated same-object accesses behind sjeng's high cache-hit
		// rate in Table III.
		for u := 0; u < 4; u++ {
			cur := b.Load(storeTypeFor(moveX, fdX), b.FieldPtr(moveX, scratch, fdX))
			b.Store(storeTypeFor(moveX, fdX), b.Bin(ir.BinAdd, cur, got), b.FieldPtr(moveX, scratch, fdX))
		}
		b.Free(p)
		b.Free(q)
	})
	f := emitFiller(b, "evalboard", 500_000)
	b.Ret(b.Bin(ir.BinXor, b.Load(ir.I64, acc), f))

	return a.finish(
		"chess move generation: per-move object alloc/copy/free churn (worst case)",
		defaultInput(128, 19), 2, 30.0)
}

func fmt2(prefix string, i int) string {
	return prefix + string(rune('a'+i))
}
