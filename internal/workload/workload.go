// Package workload provides the benchmark programs of the paper's
// evaluation (§V) as IR modules: miniature applications with the
// allocation / member-access / memcpy profiles of the SPEC CPU2006 apps
// (profiles from Table III), a mini-PNG chunk parser and mini-JPEG
// marker parser standing in for libpng/libjpeg-turbo, and a
// script-runtime object model with the JavaScript benchmark kernels of
// Fig. 7 standing in for ChakraCore.
//
// These are synthetic equivalents, not the real programs (see DESIGN.md
// §1): each mini-app implements a genuine small algorithm in the same
// domain, declares the object-type inventory Table I reports for the
// real app, parses untrusted input into those objects (driving the
// TaintClass experiments) and then runs a compute core whose mix of
// object operations matches the real app's profile, so the *shape* of
// the paper's overhead results is preserved.
package workload

import (
	"fmt"

	"polar/internal/ir"
)

// Workload is one benchmark program.
type Workload struct {
	// Name as the paper reports it (e.g. "458.sjeng").
	Name string
	// Description summarizes the mini-app's algorithm.
	Description string
	// Module is the program (uninstrumented).
	Module *ir.Module
	// Input is the canonical untrusted input.
	Input []byte
	// Args are passed to @main.
	Args []int64
	// ExpectedTainted is the exact set of class names TaintClass should
	// report (the Table I object list for this app).
	ExpectedTainted []string
	// PaperTaintedCount is Table I's "# of tainted objects" column.
	PaperTaintedCount int
	// PaperOverheadPct is the approximate Fig. 6 overhead for SPEC apps
	// (negative = not reported).
	PaperOverheadPct float64
}

// Validate builds and validates the module (panics are construction
// bugs; this returns errors for tests).
func (w *Workload) Validate() error {
	if err := ir.Validate(w.Module); err != nil {
		return fmt.Errorf("workload %s: %w", w.Name, err)
	}
	return nil
}

// SPEC returns the twelve SPEC CPU2006 mini-apps in Table I order.
func SPEC() []*Workload {
	return []*Workload{
		Perlbench(),
		Bzip2(),
		GCC(),
		MCF(),
		Gobmk(),
		Hmmer(),
		Sjeng(),
		Libquantum(),
		H264ref(),
		Omnetpp(),
		Astar(),
		Xalancbmk(),
	}
}

// SPECFig6 returns the eleven apps of Fig. 6 (libquantum is excluded
// there because TaintClass marks no objects — nothing to randomize).
func SPECFig6() []*Workload {
	var out []*Workload
	for _, w := range SPEC() {
		if w.Name != "462.libquantum" {
			out = append(out, w)
		}
	}
	return out
}

// ByName returns a workload from the full registry (SPEC, libpng,
// libjpeg, chakra-model) by its paper name.
func ByName(name string) (*Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown workload %q", name)
}

// All returns every non-JS workload.
func All() []*Workload {
	out := SPEC()
	out = append(out, LibPNG(), LibJPEG(), ChakraModel())
	return out
}
