package workload

import "polar/internal/ir"

// V8Orinoco models the one compatibility failure the paper reports
// (§V.A): V8's Orinoco garbage collector walks and relocates objects by
// computing member offsets *manually* from object base addresses —
// exactly the raw pointer arithmetic the POLaR pass cannot rewrite
// (§VI.B). The mini-GC below allocates HeapObject instances, then a
// "scavenger" pass reads each object's mark word via ptradd(base, 8)
// instead of fieldptr.
//
// Expected behaviour (demonstrated by TestV8OrinocoIncompatibility):
//   - the instrumenter leaves the raw accesses alone and counts them in
//     SkippedRawAccess;
//   - the hardened binary's GC reads the wrong bytes (the mark word is
//     no longer at +8), so the program's result DIVERGES from baseline —
//     the reproduction of "we excluded V8 at this point".
func V8Orinoco() *Workload {
	m := ir.NewModule("v8-orinoco")
	obj := m.MustStruct(ir.NewStruct("HeapObject",
		ir.Field{Name: "map_ptr", Type: ir.Raw},
		ir.Field{Name: "mark_word", Type: ir.I64},
		ir.Field{Name: "payload", Type: ir.I64},
	))
	const nObjs = 32
	mustGlobal(m, "roots", 8*nObjs)

	b := ir.NewFunc(m, "main", ir.I64)
	// Mutator: allocate objects, set mark words through proper member
	// accesses.
	b.CountedLoop("mk", ir.Const(nObjs), func(i ir.Value) {
		p := b.Alloc(obj)
		b.Store(ir.Raw, ir.Const(0), b.FieldPtrName(obj, p, "map_ptr"))
		mark := b.Bin(ir.BinAnd, i, ir.Const(1))
		b.Store(ir.I64, mark, b.FieldPtrName(obj, p, "mark_word"))
		b.Store(ir.I64, b.Bin(ir.BinMul, i, ir.Const(3)), b.FieldPtrName(obj, p, "payload"))
		b.Store(ir.I64, p, b.ElemPtr(ir.I64, ir.Global("roots"), i))
	})
	// Scavenger: count marked objects — but via the GC's manual offset
	// computation (mark word assumed at base+8), not fieldptr.
	live := b.Local(ir.I64)
	b.Store(ir.I64, ir.Const(0), live)
	b.CountedLoop("scan", ir.Const(nObjs), func(i ir.Value) {
		p := b.Load(ir.PtrTo(obj), b.ElemPtr(ir.I64, ir.Global("roots"), i))
		rawMark := b.Load(ir.I64, b.PtrAdd(p, ir.Const(8))) // manual offset!
		isMarked := b.Cmp(ir.CmpEq, rawMark, ir.Const(1))
		b.If("marked", isMarked, func() {
			cur := b.Load(ir.I64, live)
			b.Store(ir.I64, b.Bin(ir.BinAdd, cur, ir.Const(1)), live)
		}, nil)
	})
	b.Ret(b.Load(ir.I64, live))

	return &Workload{
		Name:              "v8-orinoco-model",
		Description:       "GC with manual member-offset computation — the paper's V8 incompatibility",
		Module:            m,
		Input:             nil,
		ExpectedTainted:   nil,
		PaperTaintedCount: -1,
		PaperOverheadPct:  -1,
	}
}
