package workload

import (
	"encoding/binary"

	"polar/internal/ir"
)

// Mini-libpng: a PNG-style chunk parser standing in for libpng 1.6.34.
// The container format is real (signature, length/type/data/crc chunks,
// big-endian lengths) and each chunk handler populates the corresponding
// libpng object type, so TaintClass sees exactly the object flow the
// paper's Table I row reports. Six deliberately preserved bug patterns
// reproduce the shape of the CVEs in Table IV; see LibPNGCVECases.
//
// Deviation note: Table I counts 8 tainted libpng objects; our parser
// has 9 because Table IV requires both png_color (CVE-2015-8126) and
// png_unknown_chunk (CVE-2013-7353) to exist, and we keep the 7
// explicitly named Table I types too. CVE-2015-0973's "png_byte" is a
// scalar typedef in libpng and has no struct analogue here.

func le32(tag string) int64 {
	return int64(int32(binary.LittleEndian.Uint32([]byte(tag))))
}

var (
	tagIHDR = le32("IHDR")
	tagPLTE = le32("PLTE")
	tagCHRM = le32("cHRM")
	tagBKGD = le32("bKGD")
	tagTEXT = le32("tEXt")
	tagTIME = le32("tIME")
	tagIDAT = le32("IDAT")
	tagIEND = le32("IEND")
)

// pngTaintedNames lists the randomization-candidate object types.
func pngTaintedNames() []string {
	return []string{
		"png_struct_def", "png_info_def", "png_xy", "png_XYZ",
		"png_color16_struct", "png_text", "png_time_struct", "png_color",
		"png_unknown_chunk",
	}
}

// LibPNG builds the mini-libpng workload with its well-formed canonical
// input (every chunk type present → all 9 object types tainted).
func LibPNG() *Workload {
	m := buildPNGModule()
	return &Workload{
		Name:              "libpng-1.6.34",
		Description:       "PNG chunk parser: per-chunk object population, preserved CVE bug shapes",
		Module:            m,
		Input:             CanonicalPNG(),
		ExpectedTainted:   pngTaintedNames(),
		PaperTaintedCount: 8,
		PaperOverheadPct:  -1,
	}
}

func buildPNGModule() *ir.Module {
	m := ir.NewModule("libpng")
	pngStruct := m.MustStruct(ir.NewStruct("png_struct_def",
		ir.Field{Name: "error_fn", Type: ir.Fptr},
		ir.Field{Name: "width", Type: ir.I32},
		ir.Field{Name: "height", Type: ir.I32},
		ir.Field{Name: "bit_depth", Type: ir.I32},
		ir.Field{Name: "color_type", Type: ir.I32},
		ir.Field{Name: "chunk_count", Type: ir.I64},
		ir.Field{Name: "crc", Type: ir.I64},
	))
	pngInfo := m.MustStruct(ir.NewStruct("png_info_def",
		ir.Field{Name: "width", Type: ir.I32},
		ir.Field{Name: "height", Type: ir.I32},
		ir.Field{Name: "num_text", Type: ir.I32},
		ir.Field{Name: "num_palette", Type: ir.I32},
		ir.Field{Name: "valid", Type: ir.I64},
		ir.Field{Name: "text_ptr", Type: ir.Raw},
	))
	pngXY := m.MustStruct(ir.NewStruct("png_xy",
		ir.Field{Name: "redx", Type: ir.I32}, ir.Field{Name: "redy", Type: ir.I32},
		ir.Field{Name: "greenx", Type: ir.I32}, ir.Field{Name: "greeny", Type: ir.I32},
		ir.Field{Name: "bluex", Type: ir.I32}, ir.Field{Name: "bluey", Type: ir.I32},
		ir.Field{Name: "whitex", Type: ir.I32}, ir.Field{Name: "whitey", Type: ir.I32},
	))
	pngXYZ := m.MustStruct(ir.NewStruct("png_XYZ",
		ir.Field{Name: "redX", Type: ir.F64}, ir.Field{Name: "redY", Type: ir.F64},
		ir.Field{Name: "greenX", Type: ir.F64}, ir.Field{Name: "greenY", Type: ir.F64},
		ir.Field{Name: "blueX", Type: ir.F64}, ir.Field{Name: "blueY", Type: ir.F64},
	))
	pngColor16 := m.MustStruct(ir.NewStruct("png_color16_struct",
		ir.Field{Name: "index", Type: ir.I8},
		ir.Field{Name: "red", Type: ir.I16}, ir.Field{Name: "green", Type: ir.I16},
		ir.Field{Name: "blue", Type: ir.I16}, ir.Field{Name: "gray", Type: ir.I16},
	))
	pngText := m.MustStruct(ir.NewStruct("png_text",
		ir.Field{Name: "compression", Type: ir.I32},
		ir.Field{Name: "key", Type: ir.I64},
		ir.Field{Name: "text_length", Type: ir.I64},
		ir.Field{Name: "text", Type: ir.Raw},
	))
	pngTime := m.MustStruct(ir.NewStruct("png_time_struct",
		ir.Field{Name: "year", Type: ir.I16},
		ir.Field{Name: "month", Type: ir.I8}, ir.Field{Name: "day", Type: ir.I8},
		ir.Field{Name: "hour", Type: ir.I8}, ir.Field{Name: "minute", Type: ir.I8},
		ir.Field{Name: "second", Type: ir.I8},
	))
	pngColor := m.MustStruct(ir.NewStruct("png_color",
		ir.Field{Name: "red", Type: ir.I8},
		ir.Field{Name: "green", Type: ir.I8},
		ir.Field{Name: "blue", Type: ir.I8},
	))
	pngUnknown := m.MustStruct(ir.NewStruct("png_unknown_chunk",
		ir.Field{Name: "name", Type: ir.I64},
		ir.Field{Name: "data", Type: ir.Raw},
		ir.Field{Name: "size", Type: ir.I64},
		ir.Field{Name: "location", Type: ir.I8},
	))
	// Untainted setup type: the error-message table libpng keeps.
	m.MustStruct(ir.NewStruct("png_msg_table",
		ir.Field{Name: "count", Type: ir.I64},
		ir.Field{Name: "buf", Type: ir.Raw},
	))

	mustGlobal(m, "doc", 8192)
	mustGlobal(m, "palette", 768)
	mustGlobal(m, "textbuf", 512)
	mustGlobal(m, "infoptr", 8) // lazily created png_info_def

	// @be32(off) i64: big-endian 32-bit read from @doc.
	be := ir.NewFunc(m, "be32", ir.I64, ir.Param{Name: "off", Type: ir.I64})
	off := be.ParamReg(0)
	b0 := be.Load(ir.I8, be.ElemPtr(ir.I8, ir.Global("doc"), off))
	b1 := be.Load(ir.I8, be.ElemPtr(ir.I8, ir.Global("doc"), be.Bin(ir.BinAdd, off, ir.Const(1))))
	b2 := be.Load(ir.I8, be.ElemPtr(ir.I8, ir.Global("doc"), be.Bin(ir.BinAdd, off, ir.Const(2))))
	b3 := be.Load(ir.I8, be.ElemPtr(ir.I8, ir.Global("doc"), be.Bin(ir.BinAdd, off, ir.Const(3))))
	v := be.Bin(ir.BinOr,
		be.Bin(ir.BinOr,
			be.Bin(ir.BinShl, be.Bin(ir.BinAnd, b0, ir.Const(0xff)), ir.Const(24)),
			be.Bin(ir.BinShl, be.Bin(ir.BinAnd, b1, ir.Const(0xff)), ir.Const(16))),
		be.Bin(ir.BinOr,
			be.Bin(ir.BinShl, be.Bin(ir.BinAnd, b2, ir.Const(0xff)), ir.Const(8)),
			be.Bin(ir.BinAnd, b3, ir.Const(0xff))))
	be.Ret(v)

	buildPNGMain(m, pngStruct, pngInfo, pngXY, pngXYZ, pngColor16, pngText, pngTime, pngColor, pngUnknown)
	return m
}

func mustGlobal(m *ir.Module, name string, size int) {
	if _, err := m.AddGlobal(name, size, nil); err != nil {
		panic(err)
	}
}

func buildPNGMain(m *ir.Module, pngStruct, pngInfo, pngXY, pngXYZ, pngColor16, pngText, pngTime, pngColor, pngUnknown *ir.StructType) {
	b := ir.NewFunc(m, "main", ir.I64)

	// Untainted setup object.
	msg, _ := m.Structs["png_msg_table"], 0
	mp := b.Alloc(msg)
	b.Store(ir.I64, ir.Const(47), b.FieldPtrName(msg, mp, "count"))

	n := readInputTo(b, "doc")
	// Signature check (137 'P' 'N' 'G').
	s0 := b.Load(ir.I8, b.ElemPtr(ir.I8, ir.Global("doc"), ir.Const(0)))
	badSig := b.Cmp(ir.CmpNe, b.Bin(ir.BinAnd, s0, ir.Const(0xff)), ir.Const(137))
	b.If("sig", badSig, func() { b.Ret(ir.Const(-1)) }, nil)

	png := b.Alloc(pngStruct)
	b.Store(ir.I64, ir.Const(0), b.FieldPtrName(pngStruct, png, "chunk_count"))
	b.Store(ir.I64, ir.Const(0), b.FieldPtrName(pngStruct, png, "crc"))
	b.Store(ir.I32, ir.Const(0), b.FieldPtrName(pngStruct, png, "width"))
	b.Store(ir.I64, ir.Const(0), b.ElemPtr(ir.I64, ir.Global("infoptr"), ir.Const(0)))

	pos := b.Local(ir.I64)
	b.Store(ir.I64, ir.Const(8), pos)

	b.Br("chunk.head")
	b.Block("chunk.head")
	p := b.Load(ir.I64, pos)
	limit := b.Bin(ir.BinSub, n, ir.Const(8))
	more := b.Cmp(ir.CmpLe, p, limit)
	b.CondBr(more, "chunk.body", "chunk.done")

	b.Block("chunk.body")
	p2 := b.Load(ir.I64, pos)
	clen := b.Call("be32", p2)
	ctyp := b.Load(ir.I32, b.ElemPtr(ir.I8, ir.Global("doc"), b.Bin(ir.BinAdd, p2, ir.Const(4))))
	dataOff := b.Bin(ir.BinAdd, p2, ir.Const(8))
	// Bookkeeping on the png struct (tainted by the length word).
	cc := b.Load(ir.I64, b.FieldPtrName(pngStruct, png, "chunk_count"))
	b.Store(ir.I64, b.Bin(ir.BinAdd, cc, ir.Const(1)), b.FieldPtrName(pngStruct, png, "chunk_count"))
	crc := b.Load(ir.I64, b.FieldPtrName(pngStruct, png, "crc"))
	b.Store(ir.I64, b.Bin(ir.BinXor, crc, clen), b.FieldPtrName(pngStruct, png, "crc"))

	loadInfo := func() ir.Value {
		return b.Load(ir.PtrTo(pngInfo), b.ElemPtr(ir.I64, ir.Global("infoptr"), ir.Const(0)))
	}

	// ---- IHDR ----
	isIHDR := b.Cmp(ir.CmpEq, ctyp, ir.Const(tagIHDR))
	b.If("ihdr", isIHDR, func() {
		info := b.Alloc(pngInfo)
		b.Store(ir.I64, info, b.ElemPtr(ir.I64, ir.Global("infoptr"), ir.Const(0)))
		w := b.Call("be32", dataOff)
		h := b.Call("be32", b.Bin(ir.BinAdd, dataOff, ir.Const(4)))
		depth := b.Load(ir.I8, b.ElemPtr(ir.I8, ir.Global("doc"), b.Bin(ir.BinAdd, dataOff, ir.Const(8))))
		ct := b.Load(ir.I8, b.ElemPtr(ir.I8, ir.Global("doc"), b.Bin(ir.BinAdd, dataOff, ir.Const(9))))
		b.Store(ir.I32, w, b.FieldPtrName(pngStruct, png, "width"))
		b.Store(ir.I32, h, b.FieldPtrName(pngStruct, png, "height"))
		b.Store(ir.I32, depth, b.FieldPtrName(pngStruct, png, "bit_depth"))
		b.Store(ir.I32, ct, b.FieldPtrName(pngStruct, png, "color_type"))
		b.Store(ir.I32, w, b.FieldPtrName(pngInfo, info, "width"))
		b.Store(ir.I32, h, b.FieldPtrName(pngInfo, info, "height"))
		b.Store(ir.I64, ir.Const(0), b.FieldPtrName(pngInfo, info, "valid"))
		b.Store(ir.I32, ir.Const(0), b.FieldPtrName(pngInfo, info, "num_text"))
		b.Store(ir.Raw, ir.Const(0), b.FieldPtrName(pngInfo, info, "text_ptr"))
	}, nil)

	// ---- PLTE ---- (CVE-2015-8126 shape: no bound check on num_palette)
	isPLTE := b.Cmp(ir.CmpEq, ctyp, ir.Const(tagPLTE))
	b.If("plte", isPLTE, func() {
		num := b.Bin(ir.BinDiv, clen, ir.Const(3))
		info := loadInfo()
		b.Store(ir.I32, num, b.FieldPtrName(pngInfo, info, "num_palette"))
		// First entry becomes a png_color object.
		c := b.Alloc(pngColor)
		r0 := b.Load(ir.I8, b.ElemPtr(ir.I8, ir.Global("doc"), dataOff))
		g0 := b.Load(ir.I8, b.ElemPtr(ir.I8, ir.Global("doc"), b.Bin(ir.BinAdd, dataOff, ir.Const(1))))
		bl0 := b.Load(ir.I8, b.ElemPtr(ir.I8, ir.Global("doc"), b.Bin(ir.BinAdd, dataOff, ir.Const(2))))
		b.Store(ir.I8, r0, b.FieldPtrName(pngColor, c, "red"))
		b.Store(ir.I8, g0, b.FieldPtrName(pngColor, c, "green"))
		b.Store(ir.I8, bl0, b.FieldPtrName(pngColor, c, "blue"))
		// Copy all declared entries into the 256-entry palette WITHOUT a
		// bound check — num > 256 overflows the palette global.
		cap3 := b.Bin(ir.BinMul, num, ir.Const(3))
		tooBig := b.Cmp(ir.CmpGt, cap3, ir.Const(2000))
		b.If("pltecap", tooBig, func() {
			// Keep the simulated overflow finite.
			b.Memcpy(ir.Global("palette"), b.PtrAdd(ir.Global("doc"), dataOff), ir.Const(2000))
		}, func() {
			b.Memcpy(ir.Global("palette"), b.PtrAdd(ir.Global("doc"), dataOff), cap3)
		})
	}, nil)

	// ---- cHRM ----
	isCHRM := b.Cmp(ir.CmpEq, ctyp, ir.Const(tagCHRM))
	b.If("chrm", isCHRM, func() {
		xy := b.Alloc(pngXY)
		for i, fn := range []string{"whitex", "whitey", "redx", "redy", "greenx", "greeny", "bluex", "bluey"} {
			vv := b.Call("be32", b.Bin(ir.BinAdd, dataOff, ir.Const(int64(i*4))))
			b.Store(ir.I32, vv, b.FieldPtrName(pngXY, xy, fn))
		}
		xyz := b.Alloc(pngXYZ)
		for i, fn := range []string{"redX", "redY", "greenX", "greenY", "blueX", "blueY"} {
			vv := b.Call("be32", b.Bin(ir.BinAdd, dataOff, ir.Const(int64(8+i*4))))
			fv := b.FBin(ir.BinDiv, b.ItoF(vv), ir.ConstF(100000))
			b.Store(ir.F64, fv, b.FieldPtrName(pngXYZ, xyz, fn))
		}
	}, nil)

	// ---- bKGD ----
	isBKGD := b.Cmp(ir.CmpEq, ctyp, ir.Const(tagBKGD))
	b.If("bkgd", isBKGD, func() {
		c16 := b.Alloc(pngColor16)
		idx := b.Load(ir.I8, b.ElemPtr(ir.I8, ir.Global("doc"), dataOff))
		b.Store(ir.I8, idx, b.FieldPtrName(pngColor16, c16, "index"))
		for i, fn := range []string{"red", "green", "blue", "gray"} {
			vv := b.Load(ir.I8, b.ElemPtr(ir.I8, ir.Global("doc"), b.Bin(ir.BinAdd, dataOff, ir.Const(int64(1+i)))))
			b.Store(ir.I16, vv, b.FieldPtrName(pngColor16, c16, fn))
		}
	}, nil)

	// ---- tEXt ---- (CVE-2016-10087 shape: text before IHDR follows a
	// null info pointer; CVE-2011-3048 shape: length-unchecked copy)
	isTEXT := b.Cmp(ir.CmpEq, ctyp, ir.Const(tagTEXT))
	b.If("text", isTEXT, func() {
		info := loadInfo()
		noInfo := b.Cmp(ir.CmpEq, info, ir.Const(0))
		b.If("lateinfo", noInfo, func() {
			// png_set_text_2 null-deref shape: allocate info lazily, then
			// chase its (null) text pointer.
			li := b.Alloc(pngInfo)
			b.Store(ir.I64, li, b.ElemPtr(ir.I64, ir.Global("infoptr"), ir.Const(0)))
			b.Store(ir.I32, ir.Const(1), b.FieldPtrName(pngInfo, li, "num_text"))
			b.Store(ir.Raw, ir.Const(0), b.FieldPtrName(pngInfo, li, "text_ptr"))
			tp := b.Load(ir.Raw, b.FieldPtrName(pngInfo, li, "text_ptr"))
			key := b.Load(ir.I8, b.ElemPtr(ir.I8, ir.Global("doc"), dataOff))
			b.Store(ir.I8, key, tp) // faults: null dereference
		}, nil)
		info2 := loadInfo()
		txt := b.Alloc(pngText)
		key := b.Load(ir.I8, b.ElemPtr(ir.I8, ir.Global("doc"), dataOff))
		b.Store(ir.I64, key, b.FieldPtrName(pngText, txt, "key"))
		b.Store(ir.I64, clen, b.FieldPtrName(pngText, txt, "text_length"))
		b.Store(ir.I32, ir.Const(0), b.FieldPtrName(pngText, txt, "compression"))
		nt := b.Load(ir.I32, b.FieldPtrName(pngInfo, info2, "num_text"))
		b.Store(ir.I32, b.Bin(ir.BinAdd, nt, ir.Const(1)), b.FieldPtrName(pngInfo, info2, "num_text"))
		// Length-unchecked copy into the 512-byte text buffer (bounded
		// only by a far-too-large cap — the 2011-3048 shape).
		capped := b.Mov(clen)
		huge := b.Cmp(ir.CmpGt, clen, ir.Const(2048))
		b.If("textcap", huge, func() {
			b.Memcpy(ir.Global("textbuf"), b.PtrAdd(ir.Global("doc"), dataOff), ir.Const(2048))
		}, func() {
			b.Memcpy(ir.Global("textbuf"), b.PtrAdd(ir.Global("doc"), dataOff), capped)
		})
	}, nil)

	// ---- tIME ---- (CVE-2015-7981 shape: reads 7 bytes regardless of
	// the declared chunk length — an out-of-bounds read for short chunks)
	isTIME := b.Cmp(ir.CmpEq, ctyp, ir.Const(tagTIME))
	b.If("time", isTIME, func() {
		tm := b.Alloc(pngTime)
		yr := b.Bin(ir.BinOr,
			b.Bin(ir.BinShl, b.Bin(ir.BinAnd, b.Load(ir.I8, b.ElemPtr(ir.I8, ir.Global("doc"), dataOff)), ir.Const(0xff)), ir.Const(8)),
			b.Bin(ir.BinAnd, b.Load(ir.I8, b.ElemPtr(ir.I8, ir.Global("doc"), b.Bin(ir.BinAdd, dataOff, ir.Const(1)))), ir.Const(0xff)))
		b.Store(ir.I16, yr, b.FieldPtrName(pngTime, tm, "year"))
		for i, fn := range []string{"month", "day", "hour", "minute", "second"} {
			vv := b.Load(ir.I8, b.ElemPtr(ir.I8, ir.Global("doc"), b.Bin(ir.BinAdd, dataOff, ir.Const(int64(2+i)))))
			b.Store(ir.I8, vv, b.FieldPtrName(pngTime, tm, fn))
		}
	}, nil)

	// ---- IDAT ---- (CVE-2015-0973 shape: row buffer sized by a
	// constant, row copy driven by the attacker-controlled width)
	isIDAT := b.Cmp(ir.CmpEq, ctyp, ir.Const(tagIDAT))
	b.If("idat", isIDAT, func() {
		row := b.AllocN(ir.I8, ir.Const(1024))
		w := b.Load(ir.I32, b.FieldPtrName(pngStruct, png, "width"))
		cappedW := b.Mov(w)
		huge := b.Cmp(ir.CmpGt, w, ir.Const(4096))
		b.If("rowcap", huge, func() {
			b.Memset(row, ir.Const(0xAA), ir.Const(4096)) // heap overflow: 4096 into 1024
		}, func() {
			b.Memset(row, ir.Const(0xAA), cappedW)
		})
		b.Free(row)
	}, nil)

	// ---- unknown chunks ---- (CVE-2013-7353 shape: allocation sized by
	// the unchecked declared length)
	known := b.Local(ir.I64)
	b.Store(ir.I64, ir.Const(0), known)
	for _, t := range []int64{tagIHDR, tagPLTE, tagCHRM, tagBKGD, tagTEXT, tagTIME, tagIDAT, tagIEND} {
		is := b.Cmp(ir.CmpEq, ctyp, ir.Const(t))
		k := b.Load(ir.I64, known)
		b.Store(ir.I64, b.Bin(ir.BinOr, k, is), known)
	}
	unk := b.Cmp(ir.CmpEq, b.Load(ir.I64, known), ir.Const(0))
	b.If("unknown", unk, func() {
		u := b.Alloc(pngUnknown)
		b.Store(ir.I64, ctyp, b.FieldPtrName(pngUnknown, u, "name"))
		b.Store(ir.I64, clen, b.FieldPtrName(pngUnknown, u, "size"))
		b.Store(ir.I8, ir.Const(1), b.FieldPtrName(pngUnknown, u, "location"))
		// png_cache_unknown_chunks integer-overflow shape: the data copy
		// buffer is sized straight from the chunk length.
		data := b.AllocN(ir.I8, clen) // huge length => out-of-memory fault
		b.Store(ir.Raw, data, b.FieldPtrName(pngUnknown, u, "data"))
	}, nil)

	// Advance past data + crc.
	isEND := b.Cmp(ir.CmpEq, ctyp, ir.Const(tagIEND))
	b.If("end", isEND, func() { b.Br("chunk.done") }, nil)
	p3 := b.Load(ir.I64, pos)
	next := b.Bin(ir.BinAdd, p3, b.Bin(ir.BinAdd, clen, ir.Const(12)))
	b.Store(ir.I64, next, pos)
	b.Br("chunk.head")

	b.Block("chunk.done")
	chk := b.Load(ir.I64, b.FieldPtrName(pngStruct, png, "crc"))
	cnt := b.Load(ir.I64, b.FieldPtrName(pngStruct, png, "chunk_count"))
	res := b.Bin(ir.BinXor, chk, b.Bin(ir.BinMul, cnt, ir.Const(0x10001)))
	b.CallVoid("print_i64", res)
	b.Ret(res)
}

// chunk assembles one PNG chunk.
func chunk(typ string, data []byte) []byte {
	out := make([]byte, 0, len(data)+12)
	var lenb [4]byte
	binary.BigEndian.PutUint32(lenb[:], uint32(len(data)))
	out = append(out, lenb[:]...)
	out = append(out, typ...)
	out = append(out, data...)
	out = append(out, 0xDE, 0xAD, 0xBE, 0xEF) // crc placeholder
	return out
}

// rawChunk assembles a chunk with an arbitrary declared length
// (possibly inconsistent with the actual data — how the CVE inputs lie).
func rawChunk(typ string, declaredLen uint32, data []byte) []byte {
	out := make([]byte, 0, len(data)+12)
	var lenb [4]byte
	binary.BigEndian.PutUint32(lenb[:], declaredLen)
	out = append(out, lenb[:]...)
	out = append(out, typ...)
	out = append(out, data...)
	out = append(out, 0xDE, 0xAD, 0xBE, 0xEF)
	return out
}

var pngSig = []byte{137, 'P', 'N', 'G', 13, 10, 26, 10}

func ihdr(w, h uint32, depth, colorType byte) []byte {
	d := make([]byte, 13)
	binary.BigEndian.PutUint32(d[0:], w)
	binary.BigEndian.PutUint32(d[4:], h)
	d[8], d[9] = depth, colorType
	return chunk("IHDR", d)
}

// CanonicalPNG returns the well-formed reference input exercising every
// chunk handler.
func CanonicalPNG() []byte {
	var out []byte
	out = append(out, pngSig...)
	out = append(out, ihdr(64, 48, 8, 3)...)
	chrm := make([]byte, 32)
	for i := 0; i < 8; i++ {
		binary.BigEndian.PutUint32(chrm[i*4:], uint32(31270+i*1000))
	}
	out = append(out, chunk("cHRM", chrm)...)
	out = append(out, chunk("PLTE", []byte{10, 20, 30, 40, 50, 60, 70, 80, 90})...)
	out = append(out, chunk("bKGD", []byte{1, 2, 3, 4, 5})...)
	out = append(out, chunk("tEXt", []byte("Title\x00mini png"))...)
	out = append(out, chunk("tIME", []byte{0x07, 0xE3, 5, 17, 12, 30, 45})...)
	out = append(out, chunk("prIV", []byte{1, 2, 3, 4})...)
	out = append(out, chunk("IDAT", []byte{0, 1, 2, 3, 4, 5, 6, 7})...)
	out = append(out, chunk("IEND", nil)...)
	return out
}

// PNGCase is one Table IV row: a CVE-shaped input and the objects the
// exploit interacts with (which TaintClass must discover).
type PNGCase struct {
	CVE             string
	Description     string
	Input           []byte
	ExpectedObjects []string
	// PaperObjects is the Table IV wording, for the report.
	PaperObjects string
}

// LibPNGCVECases returns the six Table IV case studies.
func LibPNGCVECases() []PNGCase {
	cases := []PNGCase{
		{
			CVE:         "2016-10087",
			Description: "null pointer dereference (text chunk before IHDR)",
			Input: concat(pngSig,
				chunk("tEXt", []byte("Boom\x00payload"))),
			ExpectedObjects: []string{"png_info_def", "png_struct_def"},
			PaperObjects:    "png_{info,struct}_def",
		},
		{
			CVE:         "2015-8126",
			Description: "heap overflow (oversized palette)",
			Input: concat(pngSig,
				ihdr(8, 8, 8, 3),
				chunk("PLTE", bytesN(3*400, 0x55)), // 400 entries > 256
				chunk("IEND", nil)),
			ExpectedObjects: []string{"png_color", "png_info_def", "png_struct_def"},
			PaperObjects:    "png_{info,struct}_def, png_color",
		},
		{
			CVE:         "2015-7981",
			Description: "out of bounds read (short tIME chunk)",
			Input: concat(pngSig,
				rawChunk("tIME", 2, []byte{0x07, 0xE3}),
				chunk("IEND", nil)),
			ExpectedObjects: []string{"png_struct_def", "png_time_struct"},
			PaperObjects:    "png_{struct_def, time_struct}",
		},
		{
			CVE:         "2015-0973",
			Description: "heap overflow (row buffer vs declared width)",
			Input: concat(pngSig,
				ihdr(1<<20, 4, 8, 0), // absurd width drives the row copy
				chunk("IDAT", bytesN(16, 0x00)),
				chunk("IEND", nil)),
			ExpectedObjects: []string{"png_info_def", "png_struct_def"},
			PaperObjects:    "png_{struct_def, byte}",
		},
		{
			CVE:         "2013-7353",
			Description: "integer overflow (unknown chunk length drives allocation)",
			Input: concat(pngSig,
				ihdr(8, 8, 8, 0),
				rawChunk("spAM", 0x7fffffff, bytesN(8, 0x11))),
			ExpectedObjects: []string{"png_info_def", "png_struct_def", "png_unknown_chunk"},
			PaperObjects:    "png_{struct,info}_def, png_unknown_chunk",
		},
		{
			CVE:         "2011-3048",
			Description: "heap overflow (oversized tEXt payload)",
			Input: concat(pngSig,
				ihdr(8, 8, 8, 0),
				chunk("tEXt", bytesN(1500, 'A')),
				chunk("IEND", nil)),
			ExpectedObjects: []string{"png_info_def", "png_struct_def", "png_text"},
			PaperObjects:    "png_{struct,info}_def, png_text",
		},
	}
	return cases
}

func concat(parts ...[]byte) []byte {
	var out []byte
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

func bytesN(n int, v byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = v
	}
	return out
}
