package workload

// Canonical inputs are deterministic pseudo-random byte streams: the
// stand-ins for the reference inputs of the real benchmark suites.

// defaultInput returns n bytes of seeded xorshift noise.
func defaultInput(n int, seed uint64) []byte {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	out := make([]byte, n)
	s := seed
	for i := range out {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		out[i] = byte(s >> 32)
	}
	return out
}

// compressibleInput returns n bytes with long runs (an input an RLE
// compressor actually compresses).
func compressibleInput(n int, seed uint64) []byte {
	src := defaultInput(n, seed)
	out := make([]byte, 0, n)
	i := 0
	for len(out) < n {
		b := src[i%len(src)]
		run := 1 + int(src[(i+1)%len(src)]%9)
		for r := 0; r < run && len(out) < n; r++ {
			out = append(out, b)
		}
		i += 2
	}
	return out
}

// xmlishInput returns n bytes shaped like markup (angle brackets, tag
// names, text runs) so the tokenizer-flavoured workloads see realistic
// token boundaries.
func xmlishInput(n int) []byte {
	tags := []string{"para", "item", "ref", "section", "title", "xsl", "value-of", "template"}
	out := make([]byte, 0, n)
	s := uint64(0x2545F4914F6CDD1D)
	for len(out) < n {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		tag := tags[s%uint64(len(tags))]
		out = append(out, '<')
		out = append(out, tag...)
		out = append(out, '>')
		for t := 0; t < int(s>>60)+3 && len(out) < n; t++ {
			out = append(out, byte('a'+(s>>uint(8+t*3))%26))
		}
		out = append(out, '<', '/')
		out = append(out, tag...)
		out = append(out, '>')
	}
	return out[:n]
}
