package workload

import "polar/internal/ir"

// Libquantum builds 462.libquantum: quantum-gate simulation over a raw
// floating-point state vector. The real app takes its input as main()
// parameters and propagates it straight into float operations, so
// TaintClass marks no objects (Table I) and the app is absent from
// Fig. 6.
func Libquantum() *Workload {
	a := newApp("462.libquantum",
		nil, // no tainted object types — the paper's key negative result
		[]string{"quantum_reg_desc", "spec_timer"})
	m := a.m
	const n = 2048
	if _, err := m.AddGlobal("state", 8*n, nil); err != nil {
		panic(err)
	}

	b := ir.NewFunc(m, "compute", ir.I64)
	// Initialize amplitudes from the main() argument (register 0 of
	// main is forwarded through a global set in main; here we just use a
	// constant seed — the point is that no input bytes are read).
	b.CountedLoop("init", ir.Const(n), func(i ir.Value) {
		fi := b.ItoF(i)
		amp := b.FBin(ir.BinMul, fi, ir.ConstF(0.00048828125))
		b.Store(ir.F64, amp, b.ElemPtr(ir.F64, ir.Global("state"), i))
	})
	// 24 Hadamard-flavoured passes mixing adjacent amplitudes.
	b.CountedLoop("gates", ir.Const(24), func(g ir.Value) {
		b.CountedLoop("amp", ir.Const(n/2), func(i ir.Value) {
			i2 := b.Bin(ir.BinMul, i, ir.Const(2))
			a0 := b.Load(ir.F64, b.ElemPtr(ir.F64, ir.Global("state"), i2))
			a1 := b.Load(ir.F64, b.ElemPtr(ir.F64, ir.Global("state"), b.Bin(ir.BinAdd, i2, ir.Const(1))))
			s := b.FBin(ir.BinMul, b.FBin(ir.BinAdd, a0, a1), ir.ConstF(0.7071067811865476))
			d := b.FBin(ir.BinMul, b.FBin(ir.BinSub, a0, a1), ir.ConstF(0.7071067811865476))
			b.Store(ir.F64, s, b.ElemPtr(ir.F64, ir.Global("state"), i2))
			b.Store(ir.F64, d, b.ElemPtr(ir.F64, ir.Global("state"), b.Bin(ir.BinAdd, i2, ir.Const(1))))
		})
	})
	// Checksum: integerized probability mass of the first amplitudes.
	acc := b.Local(ir.I64)
	b.Store(ir.I64, ir.Const(0), acc)
	b.CountedLoop("sum", ir.Const(64), func(i ir.Value) {
		av := b.Load(ir.F64, b.ElemPtr(ir.F64, ir.Global("state"), i))
		scaled := b.FtoI(b.FBin(ir.BinMul, av, ir.ConstF(1e6)))
		s := b.Load(ir.I64, acc)
		b.Store(ir.I64, b.Bin(ir.BinAdd, s, scaled), acc)
	})
	b.Ret(b.Load(ir.I64, acc))

	return a.finish(
		"quantum register simulation: pure float ops, no input-dependent objects",
		nil, 0, -1)
}

// H264ref builds 464.h264ref: motion-compensation-flavoured kernel whose
// profile is dominated by typed object copies (Table III: 298M memcpys)
// between picture-buffer objects.
func H264ref() *Workload {
	a := newApp("464.h264ref",
		[]string{
			"InputParameters", "decoded_picture_buffer", "pic_parameter_set_rbsp_t",
			"ImageParameters", "seq_parameter_set_rbsp_t", "frame_store",
			"storable_picture", "slice_t", "macroblock_t", "syntaxelement_t",
			"bitstream_t", "datapartition_t", "motion_params", "colocated_params",
			"wp_params", "decoding_environment_t", "nalu_t",
		},
		[]string{"h264_encoder_ui", "rate_control_cfg"})
	m := a.m
	pic := a.tainted[6] // storable_picture
	const frames = 40
	if _, err := m.AddGlobal("pictab", 8*frames, nil); err != nil {
		panic(err)
	}

	b := ir.NewFunc(m, "compute", ir.I64)
	// Allocate a small decoded-picture buffer of storable_picture
	// objects, initializing every field so copies are deterministic.
	b.CountedLoop("mkpics", ir.Const(frames), func(i ir.Value) {
		p := b.Alloc(pic)
		for fi := range pic.Fields {
			ft := storeTypeFor(pic, fi)
			b.Store(ft, b.Bin(ir.BinMul, i, ir.Const(int64(fi+3))), b.FieldPtr(pic, p, fi))
		}
		b.Store(ir.I64, p, b.ElemPtr(ir.I64, ir.Global("pictab"), i))
	})
	// Motion compensation: 12k typed object copies between pictures,
	// with member reads verifying the copied data.
	acc := b.Local(ir.I64)
	b.Store(ir.I64, ir.Const(0), acc)
	fd := firstDataField(pic)
	b.CountedLoop("mc", ir.Const(6_000), func(i ir.Value) {
		si := b.Bin(ir.BinRem, i, ir.Const(frames))
		di := b.Bin(ir.BinRem, b.Bin(ir.BinAdd, i, ir.Const(7)), ir.Const(frames))
		src := b.Load(ir.PtrTo(pic), b.ElemPtr(ir.I64, ir.Global("pictab"), si))
		dst := b.Load(ir.PtrTo(pic), b.ElemPtr(ir.I64, ir.Global("pictab"), di))
		b.Memcpy(dst, src, ir.Const(int64(pic.Size())))
		v := b.Load(storeTypeFor(pic, fd), b.FieldPtr(pic, dst, fd))
		s := b.Load(ir.I64, acc)
		b.Store(ir.I64, b.Bin(ir.BinAdd, s, v), acc)
	})
	f := emitFiller(b, "dct", 400_000)
	b.Ret(b.Bin(ir.BinXor, b.Load(ir.I64, acc), f))

	return a.finish(
		"motion compensation: hot typed copies across picture-buffer objects",
		defaultInput(1024, 23), 17, 5.0)
}

// Omnetpp builds 471.omnetpp: a tiny discrete-event simulation. Profile:
// very few object operations of any kind (Table III row is almost
// empty) — overhead should be negligible.
func Omnetpp() *Workload {
	a := newApp("471.omnetpp",
		[]string{
			"cSimulation", "cHead", "Task", "TOmnetApp", "cPar", "cArray",
			"cPar_ExprElem", "MACAddress", "cMessage", "cQueue",
		},
		[]string{"omnet_envir", "tkenv_cfg"})
	m := a.m
	task := a.tainted[2]
	const qcap = 256
	if _, err := m.AddGlobal("evq", 16*qcap, nil); err != nil {
		panic(err)
	}

	b := ir.NewFunc(m, "compute", ir.I64)
	// ~120 Task allocations enqueued into a raw ring buffer.
	b.CountedLoop("spawn", ir.Const(120), func(i ir.Value) {
		p := b.Alloc(task)
		fd := firstDataField(task)
		b.Store(storeTypeFor(task, fd), b.Bin(ir.BinMul, i, ir.Const(37)), b.FieldPtr(task, p, fd))
		slot := b.Bin(ir.BinRem, i, ir.Const(qcap))
		b.Store(ir.I64, p, b.ElemPtr(ir.I64, ir.Global("evq"), b.Bin(ir.BinMul, slot, ir.Const(2))))
	})
	// Drain: ~650 member accesses total across the event loop.
	acc := b.Local(ir.I64)
	b.Store(ir.I64, ir.Const(0), acc)
	fd := firstDataField(task)
	b.CountedLoop("drain", ir.Const(650), func(i ir.Value) {
		slot := b.Bin(ir.BinRem, i, ir.Const(120))
		p := b.Load(ir.PtrTo(task), b.ElemPtr(ir.I64, ir.Global("evq"), b.Bin(ir.BinMul, slot, ir.Const(2))))
		v := b.Load(storeTypeFor(task, fd), b.FieldPtr(task, p, fd))
		s := b.Load(ir.I64, acc)
		b.Store(ir.I64, b.Bin(ir.BinAdd, s, v), acc)
	})
	// One task retires (Table III: a single free).
	first := b.Load(ir.PtrTo(task), b.ElemPtr(ir.I64, ir.Global("evq"), ir.Const(0)))
	b.Free(first)
	f := emitFiller(b, "fes", 400_000)
	b.Ret(b.Bin(ir.BinXor, b.Load(ir.I64, acc), f))

	return a.finish(
		"discrete-event simulation: sparse object activity, arithmetic-bound",
		defaultInput(512, 29), 10, 5.0)
}

// Astar builds 473.astar: breadth-first flood over a raw grid with a
// handful of region-management objects and a few hundred typed buffer
// copies (Table III: 12 allocs, 354K memcpys scaled down, 204 member
// accesses).
func Astar() *Workload {
	a := newApp("473.astar",
		[]string{
			"wayobj", "way2obj", "regmngobj", "workinfot",
			"createwaymnginfot", "regboundobj", "regobj",
		},
		[]string{"astar_mapcfg"})
	m := a.m
	work := a.tainted[3] // workinfot
	const side = 48
	if _, err := m.AddGlobal("grid", side*side, nil); err != nil {
		panic(err)
	}
	if _, err := m.AddGlobal("dist", 8*side*side, nil); err != nil {
		panic(err)
	}

	b := ir.NewFunc(m, "compute", ir.I64)
	// Obstacles from input.
	b.CountedLoop("map", ir.Const(side*side), func(i ir.Value) {
		v := b.Call("input_byte", b.Bin(ir.BinRem, i, ir.Const(200)))
		wall := b.Cmp(ir.CmpGt, v, ir.Const(230))
		b.Store(ir.I8, wall, b.ElemPtr(ir.I8, ir.Global("grid"), i))
	})
	// Relaxation sweeps (un-instrumented grid work).
	b.CountedLoop("sweeps", ir.Const(6), func(s ir.Value) {
		b.CountedLoop("cells", ir.Const(side*side-1), func(i ir.Value) {
			w := b.Load(ir.I8, b.ElemPtr(ir.I8, ir.Global("grid"), i))
			open := b.Cmp(ir.CmpEq, w, ir.Const(0))
			b.If("relax", open, func() {
				d0 := b.Load(ir.I64, b.ElemPtr(ir.I64, ir.Global("dist"), i))
				d1 := b.Load(ir.I64, b.ElemPtr(ir.I64, ir.Global("dist"), b.Bin(ir.BinAdd, i, ir.Const(1))))
				nv := b.Bin(ir.BinAdd, d0, ir.Const(1))
				lt := b.Cmp(ir.CmpLt, nv, d1)
				b.If("upd", lt, func() {
					b.Store(ir.I64, nv, b.ElemPtr(ir.I64, ir.Global("dist"), b.Bin(ir.BinAdd, i, ir.Const(1))))
				}, nil)
			}, nil)
		})
	})
	// ~350 typed copies of the work-info object (snapshotting state).
	snap := b.Alloc(work)
	for fi := range work.Fields {
		b.Store(storeTypeFor(work, fi), ir.Const(int64(fi)), b.FieldPtr(work, snap, fi))
	}
	wsrc := a.loadObj(b, 3)
	for fi := range work.Fields {
		b.Store(storeTypeFor(work, fi), ir.Const(int64(fi*3)), b.FieldPtr(work, wsrc, fi))
	}
	b.CountedLoop("snapshots", ir.Const(350), func(i ir.Value) {
		b.Memcpy(snap, wsrc, ir.Const(int64(work.Size())))
	})
	b.Free(snap)
	// ~200 member reads of the snapshot source.
	acc := b.Local(ir.I64)
	b.Store(ir.I64, ir.Const(0), acc)
	fd := firstDataField(work)
	b.CountedLoop("reads", ir.Const(200), func(i ir.Value) {
		v := b.Load(storeTypeFor(work, fd), b.FieldPtr(work, wsrc, fd))
		s := b.Load(ir.I64, acc)
		b.Store(ir.I64, b.Bin(ir.BinAdd, s, v), acc)
	})
	f := emitFiller(b, "heur", 80_000)
	total := b.Load(ir.I64, b.ElemPtr(ir.I64, ir.Global("dist"), ir.Const(side*side-1)))
	chk := b.Bin(ir.BinAdd, total, b.Load(ir.I64, acc))
	b.Ret(b.Bin(ir.BinXor, chk, f))

	return a.finish(
		"grid path relaxation with region-management object snapshots",
		defaultInput(256, 31), 7, 5.0)
}

// Xalancbmk builds 483.xalancbmk: XML-ish tokenizer that allocates a
// string object per token and frees most of them — the app with the
// largest tainted-type inventory of Table I (59 classes).
func Xalancbmk() *Workload {
	a := newApp("483.xalancbmk", xalanTaintedNames(), []string{"xalan_platform", "icu_converter_cfg"})
	m := a.m
	str := a.tainted[0] // XalanDOMString
	if _, err := m.AddGlobal("doc", 2048, nil); err != nil {
		panic(err)
	}
	if _, err := m.AddGlobal("livestr", 8*1024, nil); err != nil {
		panic(err)
	}

	b := ir.NewFunc(m, "compute", ir.I64)
	n := readInputTo(b, "doc")
	acc := b.Local(ir.I64)
	live := b.Local(ir.I64)
	b.Store(ir.I64, ir.Const(0), acc)
	b.Store(ir.I64, ir.Const(0), live)
	fd := firstDataField(str)
	sd := secondDataField(str)
	// Tokenize: 2500 tokens; each allocates a string object; ~70% are
	// transient (freed immediately), the rest kept.
	b.CountedLoop("tok", ir.Const(900), func(i ir.Value) {
		off := b.Bin(ir.BinRem, b.Bin(ir.BinMul, i, ir.Const(131)), n)
		c := b.Load(ir.I8, b.ElemPtr(ir.I8, ir.Global("doc"), off))
		p := b.Alloc(str)
		b.Store(storeTypeFor(str, fd), c, b.FieldPtr(str, p, fd))
		b.Store(storeTypeFor(str, sd), i, b.FieldPtr(str, p, sd))
		v := b.Load(storeTypeFor(str, fd), b.FieldPtr(str, p, fd))
		v2 := b.Load(storeTypeFor(str, sd), b.FieldPtr(str, p, sd))
		v3 := b.Load(storeTypeFor(str, fd), b.FieldPtr(str, p, fd))
		s := b.Load(ir.I64, acc)
		mixv := b.Bin(ir.BinAdd, v, b.Bin(ir.BinXor, v2, v3))
		b.Store(ir.I64, b.Bin(ir.BinAdd, s, mixv), acc)
		transient := b.Cmp(ir.CmpNe, b.Bin(ir.BinRem, i, ir.Const(10)), ir.Const(7))
		pl := p
		b.If("keep", transient, func() {
			b.Free(pl)
		}, func() {
			li := b.Load(ir.I64, live)
			b.Store(ir.I64, pl, b.ElemPtr(ir.I64, ir.Global("livestr"), li))
			b.Store(ir.I64, b.Bin(ir.BinAdd, li, ir.Const(1)), live)
		})
	})
	f := emitFiller(b, "xpath", 400_000)
	b.Ret(b.Bin(ir.BinXor, b.Load(ir.I64, acc), f))

	return a.finish(
		"XML tokenizer: per-token string-object allocation, mostly transient",
		xmlishInput(2048), 59, 5.0)
}

func xalanTaintedNames() []string {
	return []string{
		"XalanDOMString", "XObjectPtr", "XalanQNameByValue", "XalanQNameByReference",
		"MutableNodeRefList", "XalanNode", "XalanElement", "XalanText", "XalanAttr",
		"XalanDocument", "XPathExecutionContextDefault", "XObjectFactoryDefault",
		"XalanSourceTreeElementA", "XalanSourceTreeText", "XalanSourceTreeAttr",
		"XalanSourceTreeDocument", "XStringCached", "XNumber", "XBoolean", "XNodeSet",
		"NodeRefList", "XPathProcessorImpl", "XPathFactoryDefault", "XalanDOMStringCache",
		"XalanDOMStringPool", "XalanDOMStringHashTable", "FormatterToXML",
		"FormatterToText", "XalanOutputStream", "XalanTranscodingServices",
		"ElemTemplate", "ElemTemplateElement", "ElemApplyTemplates", "ElemValueOf",
		"ElemChoose", "ElemForEach", "ElemLiteralResult", "StylesheetRoot",
		"StylesheetHandler", "Stylesheet", "AVT", "AVTPartSimple", "AVTPartXPath",
		"XPath", "XPathEnvSupportDefault", "XObjectResultTreeFragProxy",
		"ResultTreeFragBase", "XalanSourceTreeParserLiaison",
		"XalanDocumentPrefixResolver", "ElemAttributeSet", "NamespacesHandler",
		"KeyTable", "MutableNodeRefListCache", "FunctionSubstring", "FunctionConcat",
		"FunctionTranslate", "CountersTable", "ElemNumber", "XalanNumberFormat",
	}
}
