package workload

import (
	"testing"

	"polar/internal/core"
	"polar/internal/instrument"
	"polar/internal/ir"
	"polar/internal/vm"
)

// TestV8OrinocoIncompatibility reproduces §V.A's compatibility failure:
// code that computes member offsets manually breaks under POLaR — the
// pass cannot see the access, so the GC reads stale static offsets into
// randomized objects and the program's behaviour diverges.
func TestV8OrinocoIncompatibility(t *testing.T) {
	w := V8Orinoco()
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}

	base, err := vm.New(ir.Clone(w.Module))
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	if want != 16 { // half of 32 objects have mark word 1
		t.Fatalf("baseline live count = %d, want 16", want)
	}

	ins, err := instrument.Apply(w.Module, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The pass must report the accesses it could not make safe.
	if ins.Rewrites.SkippedRawAccess == 0 {
		t.Fatal("instrumenter did not flag the manual offset computation")
	}

	// Across seeds, the hardened GC usually miscounts: the mark word is
	// rarely at static offset 8 in the randomized layout.
	diverged := 0
	for seed := int64(1); seed <= 12; seed++ {
		v, err := vm.New(ir.Clone(ins.Module))
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig(seed)
		cfg.Policy = core.PolicyWarn
		core.New(ins.Table, cfg).Attach(v)
		got, err := v.Run()
		if err != nil {
			// A fault is also a divergence (reading junk as a pointer
			// elsewhere would crash real V8 too).
			diverged++
			continue
		}
		if got != want {
			diverged++
		}
	}
	if diverged == 0 {
		t.Fatal("hardened GC never diverged — the incompatibility model is broken")
	}
}
