// Package layout generates randomized in-object layouts — the
// randomization heart of POLaR (§IV.A).
//
// A Layout maps each original field of a class to a randomized offset.
// Generation permutes member order, optionally inserts dummy members to
// raise entropy, and plants booby-trap dummies directly in front of
// function-pointer members so that a linear overflow reaching the
// function pointer must first corrupt a canary (§IV.A.3, after Crane et
// al.'s booby trapping). A cache-line-bounded mode reproduces the
// partial randomization of Linux randstruct (§II.C) for the static-OLR
// baseline.
package layout

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Mode selects the permutation strategy.
type Mode int

// Modes. ModeIdentity emits the compiler layout (useful as a control in
// ablation benchmarks).
const (
	ModeIdentity Mode = iota + 1
	ModeFull
	ModeCacheLine
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeIdentity:
		return "identity"
	case ModeFull:
		return "full"
	case ModeCacheLine:
		return "cacheline"
	default:
		return "?"
	}
}

// FieldInfo is the minimal per-member description the generator needs;
// the CIE's Member satisfies it via Adapt.
type FieldInfo struct {
	Size   int
	Align  int
	IsFptr bool
}

// Config controls generation.
type Config struct {
	Mode Mode
	// MinDummies/MaxDummies bound the number of extra dummy members
	// inserted per object ("optionally adding unused member variables to
	// increase the entropy", §III.B).
	MinDummies int
	MaxDummies int
	// BoobyTraps plants a canary dummy immediately before each
	// function-pointer member (§IV.A.3).
	BoobyTraps bool
	// CacheLineSize bounds permutation groups in ModeCacheLine
	// (default 64).
	CacheLineSize int
	// DummySize is the byte size of each dummy slot (default 8).
	DummySize int
}

// DefaultConfig is the configuration used throughout the paper's
// evaluation: full permutation, 1–2 dummies, booby traps on.
func DefaultConfig() Config {
	return Config{Mode: ModeFull, MinDummies: 1, MaxDummies: 2, BoobyTraps: true}
}

func (c *Config) cacheLine() int {
	if c.CacheLineSize <= 0 {
		return 64
	}
	return c.CacheLineSize
}

func (c *Config) dummySize() int {
	if c.DummySize <= 0 {
		return 8
	}
	return c.DummySize
}

// Slot is one randomized layout position.
type Slot struct {
	// Field is the original field index, or -1 for a dummy.
	Field  int
	Offset int
	Size   int
	// Trap marks a dummy carrying a canary checked on free/copy.
	Trap bool
}

// Layout is a concrete randomized object layout.
type Layout struct {
	Slots     []Slot
	Offsets   []int // original field index -> randomized offset
	TotalSize int
	Dummies   int

	hash uint64
}

// Hash is a cheap identity hash used by the layout deduplication table
// ("Polar removes the duplicate metadata when two objects have the same
// randomized memory layout", §V.B). Equal layouts hash equal; collisions
// are resolved with Equal.
func (l *Layout) Hash() uint64 { return l.hash }

// Equal reports structural equality of two layouts.
func (l *Layout) Equal(o *Layout) bool {
	if l.TotalSize != o.TotalSize || len(l.Slots) != len(o.Slots) {
		return false
	}
	for i := range l.Slots {
		if l.Slots[i] != o.Slots[i] {
			return false
		}
	}
	return true
}

// Key renders a canonical identity string (diagnostics and tests; the
// hot dedup path uses Hash/Equal).
func (l *Layout) Key() string { return canonicalKey(l) }

// TrapSlots returns the booby-trap slots.
func (l *Layout) TrapSlots() []Slot {
	var out []Slot
	for _, s := range l.Slots {
		if s.Trap {
			out = append(out, s)
		}
	}
	return out
}

// FieldOffset returns the randomized offset of original field i.
func (l *Layout) FieldOffset(i int) (int, error) {
	if i < 0 || i >= len(l.Offsets) {
		return 0, fmt.Errorf("layout: field %d out of range (%d fields)", i, len(l.Offsets))
	}
	return l.Offsets[i], nil
}

// part is one member or dummy inside a placement unit.
type part struct {
	slot  Slot // Field/Size/Trap set; Offset assigned at placement
	align int
}

// item is a placement unit: a run of members that must stay adjacent
// (a booby trap fused to its function pointer) or a single member/dummy.
type item struct {
	parts []part
	align int
}

// Generate builds a randomized layout for the given fields.
func Generate(fields []FieldInfo, cfg Config, rng *rand.Rand) (*Layout, error) {
	if rng == nil && cfg.Mode != ModeIdentity {
		return nil, fmt.Errorf("layout: nil rng for mode %v", cfg.Mode)
	}
	switch cfg.Mode {
	case ModeIdentity:
		return identityLayout(fields), nil
	case ModeFull:
		return fullLayout(fields, cfg, rng), nil
	case ModeCacheLine:
		return cacheLineLayout(fields, cfg, rng), nil
	default:
		return nil, fmt.Errorf("layout: unknown mode %d", cfg.Mode)
	}
}

func identityLayout(fields []FieldInfo) *Layout {
	l := &Layout{Offsets: make([]int, len(fields))}
	off, maxAlign := 0, 1
	for i, f := range fields {
		off = alignUp(off, f.Align)
		l.Offsets[i] = off
		l.Slots = append(l.Slots, Slot{Field: i, Offset: off, Size: f.Size})
		off += f.Size
		if f.Align > maxAlign {
			maxAlign = f.Align
		}
	}
	l.TotalSize = alignUp(off, maxAlign)
	if l.TotalSize == 0 {
		l.TotalSize = 1
	}
	l.hash = slotHash(l)
	return l
}

func buildItems(fields []FieldInfo, cfg Config, rng *rand.Rand) []item {
	items := make([]item, 0, len(fields)+cfg.MaxDummies)
	for i, f := range fields {
		it := item{align: f.Align}
		if cfg.BoobyTraps && f.IsFptr {
			ds := cfg.dummySize()
			if ds < f.Align {
				ds = f.Align
			}
			it.parts = append(it.parts, part{slot: Slot{Field: -1, Size: ds, Trap: true}, align: ds})
			if ds > it.align {
				it.align = ds
			}
		}
		it.parts = append(it.parts, part{slot: Slot{Field: i, Size: f.Size}, align: f.Align})
		items = append(items, it)
	}
	nd := cfg.MinDummies
	if cfg.MaxDummies > cfg.MinDummies {
		nd += rng.Intn(cfg.MaxDummies - cfg.MinDummies + 1)
	}
	ds := cfg.dummySize()
	for d := 0; d < nd; d++ {
		items = append(items, item{
			parts: []part{{slot: Slot{Field: -1, Size: ds}, align: ds}},
			align: ds,
		})
	}
	return items
}

func placeItems(items []item, nFields int) *Layout {
	l := &Layout{Offsets: make([]int, nFields)}
	off, maxAlign := 0, 1
	for _, it := range items {
		if it.align > maxAlign {
			maxAlign = it.align
		}
		off = alignUp(off, it.align)
		for _, p := range it.parts {
			off = alignUp(off, p.align)
			s := p.slot
			s.Offset = off
			l.Slots = append(l.Slots, s)
			if s.Field >= 0 {
				l.Offsets[s.Field] = off
			} else {
				l.Dummies++
			}
			off += s.Size
		}
	}
	l.TotalSize = alignUp(off, maxAlign)
	if l.TotalSize == 0 {
		l.TotalSize = 1
	}
	l.hash = slotHash(l)
	return l
}

func fullLayout(fields []FieldInfo, cfg Config, rng *rand.Rand) *Layout {
	items := buildItems(fields, cfg, rng)
	rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
	return placeItems(items, len(fields))
}

// cacheLineLayout shuffles members only within cache-line-sized groups
// of the original order (randstruct's "partially randomized considering
// the cache line", §II.C). Dummies are not inserted in this mode.
func cacheLineLayout(fields []FieldInfo, cfg Config, rng *rand.Rand) *Layout {
	line := cfg.cacheLine()
	var items []item
	for i, f := range fields {
		items = append(items, item{
			parts: []part{{slot: Slot{Field: i, Size: f.Size}, align: f.Align}},
			align: f.Align,
		})
	}
	// Group by cumulative static size.
	var groups [][]item
	cum := 0
	cur := []item{}
	for i, it := range items {
		if cum+fields[i].Size > line && len(cur) > 0 {
			groups = append(groups, cur)
			cur = nil
			cum = 0
		}
		cur = append(cur, it)
		cum += fields[i].Size
	}
	if len(cur) > 0 {
		groups = append(groups, cur)
	}
	var shuffled []item
	for _, g := range groups {
		rng.Shuffle(len(g), func(i, j int) { g[i], g[j] = g[j], g[i] })
		shuffled = append(shuffled, g...)
	}
	return placeItems(shuffled, len(fields))
}

func canonicalKey(l *Layout) string {
	var b strings.Builder
	for _, s := range l.Slots {
		fmt.Fprintf(&b, "%d@%d+%d", s.Field, s.Offset, s.Size)
		if s.Trap {
			b.WriteByte('t')
		}
		b.WriteByte(';')
	}
	fmt.Fprintf(&b, "=%d", l.TotalSize)
	return b.String()
}

// EntropyBits estimates the layout entropy for a class under cfg: the
// base-2 log of the number of distinct placements (item permutations ×
// dummy count choices). This is the "randomness entropy" the dummy
// members increase (§IV.A.3).
func EntropyBits(nFields, nFptrs int, cfg Config) float64 {
	switch cfg.Mode {
	case ModeIdentity:
		return 0
	case ModeCacheLine:
		// Approximation: permutations within one line of all fields.
		return lgFactorial(nFields)
	}
	choices := float64(cfg.MaxDummies - cfg.MinDummies + 1)
	// Booby traps fuse with their fptr, so items = fields + dummies.
	bits := 0.0
	for d := cfg.MinDummies; d <= cfg.MaxDummies; d++ {
		items := nFields + d
		b := lgFactorial(items)
		if b > bits {
			bits = b
		}
	}
	if choices > 1 {
		bits += math.Log2(choices)
	}
	return bits
}

func lgFactorial(n int) float64 {
	s := 0.0
	for i := 2; i <= n; i++ {
		s += math.Log2(float64(i))
	}
	return s
}

func alignUp(n, a int) int {
	if a <= 1 {
		return n
	}
	return (n + a - 1) / a * a
}

// slotHash is FNV-1a over the slot tuples plus total size.
func slotHash(l *Layout) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h = (h ^ v) * 1099511628211
	}
	for _, s := range l.Slots {
		mix(uint64(uint32(s.Field + 1)))
		mix(uint64(s.Offset))
		mix(uint64(s.Size))
		if s.Trap {
			mix(0x7472)
		}
	}
	mix(uint64(l.TotalSize))
	return h
}
