package layout

import "math/rand"

// Keyed (stateless) layout derivation — the SPAM-style alternative to
// table-backed per-allocation metadata (arXiv 2007.13808): an object's
// permutation is a pure function of a secret key and its base address,
// so the runtime can recompute the layout at access time instead of
// storing it. The permutation itself is the same Fisher–Yates shuffle
// Generate performs (rng.Shuffle); only the randomness source changes —
// a SipHash-style keyed PRF in counter mode replaces the sequential
// run-level stream, making every (key, message) pair an independent,
// reproducible shuffle.

// sipround is one SipHash ARX round.
func sipround(v0, v1, v2, v3 uint64) (uint64, uint64, uint64, uint64) {
	v0 += v1
	v1 = v1<<13 | v1>>51
	v1 ^= v0
	v0 = v0<<32 | v0>>32
	v2 += v3
	v3 = v3<<16 | v3>>48
	v3 ^= v2
	v0 += v3
	v3 = v3<<21 | v3>>43
	v3 ^= v0
	v2 += v1
	v1 = v1<<17 | v1>>47
	v1 ^= v2
	v2 = v2<<32 | v2>>32
	return v0, v1, v2, v3
}

// sipHash24 is SipHash-2-4 over a fixed 16-byte message (m0, m1) under
// the 128-bit key (k0, k1). A fixed-width message avoids the tail
// handling of the general algorithm; the length byte is folded into the
// final block as the spec does.
func sipHash24(k0, k1, m0, m1 uint64) uint64 {
	v0 := k0 ^ 0x736f6d6570736575
	v1 := k1 ^ 0x646f72616e646f6d
	v2 := k0 ^ 0x6c7967656e657261
	v3 := k1 ^ 0x7465646279746573

	v3 ^= m0
	v0, v1, v2, v3 = sipround(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipround(v0, v1, v2, v3)
	v0 ^= m0

	v3 ^= m1
	v0, v1, v2, v3 = sipround(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipround(v0, v1, v2, v3)
	v0 ^= m1

	b := uint64(16) << 56 // message length, final block
	v3 ^= b
	v0, v1, v2, v3 = sipround(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipround(v0, v1, v2, v3)
	v0 ^= b

	v2 ^= 0xff
	v0, v1, v2, v3 = sipround(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipround(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipround(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipround(v0, v1, v2, v3)
	return v0 ^ v1 ^ v2 ^ v3
}

// keyedSource is the keyed PRF as a rand.Source64. The first draw runs
// SipHash-2-4(key, msg) once to whiten (key, message) into a stream
// seed; subsequent draws expand that seed with splitmix64. The secrecy
// of the permutation choice rests entirely on the keyed hash — the
// expansion is a plain PRG, the standard extract-then-expand shape —
// which keeps the per-draw cost at a few ALU ops instead of a full
// SipHash, since the resolver re-derives layouts on the access path.
// It allocates nothing, so a derivation is reproducible from (k0, k1,
// msg) alone.
type keyedSource struct {
	k0, k1 uint64
	msg    uint64
	state  uint64
	primed bool
}

// Uint64 implements rand.Source64.
func (s *keyedSource) Uint64() uint64 {
	if !s.primed {
		s.state = sipHash24(s.k0, s.k1, s.msg, 0)
		s.primed = true
	}
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *keyedSource) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed implements rand.Source; the PRF is keyed at construction, so
// reseeding is meaningless and deliberately a no-op.
func (s *keyedSource) Seed(int64) {}

// GenerateKeyed builds the randomized layout that (k0, k1, msg)
// deterministically selects for the given fields: the Fisher–Yates
// shuffle inside Generate runs on the keyed PRF instead of a run-level
// stream. Callers derive msg from the object's base address (and k0/k1
// from the run seed and re-randomization epoch), which is what makes
// the resolution stateless: any party holding the key recomputes the
// same layout from the address alone.
func GenerateKeyed(fields []FieldInfo, cfg Config, k0, k1, msg uint64) (*Layout, error) {
	if cfg.Mode == ModeIdentity {
		// Identity (pinned) classes are key-independent by definition.
		return identityLayout(fields), nil
	}
	rng := rand.New(&keyedSource{k0: k0, k1: k1, msg: msg})
	return Generate(fields, cfg, rng)
}

// MaxSize returns an upper bound on TotalSize over every layout any
// key, message or dummy-count draw can produce for (fields, cfg). The
// stateless resolver sizes heap chunks with it before the base address
// — and therefore the concrete layout — exists, and the epoch-rekey
// path relies on it so any future epoch's layout fits the chunk.
//
// The bound charges each placement unit its worst-case alignment
// padding (align-1 at the item boundary plus align-1 per part) and
// assumes the maximum dummy count with booby traps present; it
// therefore dominates every mode, including the identity and
// cache-line layouts, at the cost of a few bytes of slack.
func MaxSize(fields []FieldInfo, cfg Config) int {
	ds := cfg.dummySize()
	bound, maxAlign := 0, 1
	note := func(a int) {
		if a > maxAlign {
			maxAlign = a
		}
	}
	for _, f := range fields {
		itAlign := f.Align
		if f.IsFptr {
			// Trap dummy fused in front of the function pointer.
			t := ds
			if t < f.Align {
				t = f.Align
			}
			if t > 1 {
				bound += t - 1
			}
			bound += t
			if t > itAlign {
				itAlign = t
			}
		}
		if itAlign > 1 {
			bound += itAlign - 1 // item-boundary alignment
		}
		if f.Align > 1 {
			bound += f.Align - 1 // member-part alignment
		}
		bound += f.Size
		note(itAlign)
	}
	nd := cfg.MaxDummies
	if cfg.MinDummies > nd {
		nd = cfg.MinDummies
	}
	for i := 0; i < nd; i++ {
		if ds > 1 {
			bound += 2 * (ds - 1)
		}
		bound += ds
		note(ds)
	}
	if maxAlign > 1 {
		bound += maxAlign - 1 // trailing struct alignment
	}
	if bound < 1 {
		bound = 1
	}
	return bound
}
